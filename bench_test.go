// Package benches regenerates every table and figure of the paper's
// evaluation as Go benchmarks: `go test -bench=. -benchmem` prints, for
// each experiment, the series the paper plots (via ReportMetric) so the
// shape — who wins, by what factor, where the crossovers fall — can be
// compared against Section V directly. EXPERIMENTS.md records the
// paper-vs-measured numbers.
//
// Monte-Carlo experiments run at the ratio-preserving scaled geometry
// (see DESIGN.md, "Scale policy"); closed-form experiments run at the
// paper's full 1 GB geometry. cmd/figgen -full reproduces the
// Monte-Carlo figures at full scale.
package benches

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"securityrbsg/internal/analytic"
	"securityrbsg/internal/attack"
	"securityrbsg/internal/core"
	"securityrbsg/internal/detector"
	"securityrbsg/internal/exactsim"
	"securityrbsg/internal/feistel"
	"securityrbsg/internal/lifetime"
	"securityrbsg/internal/pcm"
	"securityrbsg/internal/perfmodel"
	"securityrbsg/internal/rbsg"
	"securityrbsg/internal/secref"
	"securityrbsg/internal/startgap"
	"securityrbsg/internal/stats"
	"securityrbsg/internal/tablewl"
	"securityrbsg/internal/wear"
	"securityrbsg/internal/workload"
)

// BenchmarkFig4_RemapLatency measures the remapping-latency table of
// Fig 4 on the live device model: Start-Gap moves at 250/1125 ns and
// Security Refresh swaps at 500/1375/2250 ns.
func BenchmarkFig4_RemapLatency(b *testing.B) {
	bank := pcm.MustNewBank(pcm.Config{Lines: 4, Endurance: 1 << 40})
	var move0, move1, swap00, swap01, swap11 uint64
	for i := 0; i < b.N; i++ {
		bank.Write(0, pcm.Zeros)
		bank.Write(1, pcm.Ones)
		move0 = bank.Move(0, 3)
		move1 = bank.Move(1, 3)
		bank.Write(0, pcm.Zeros)
		bank.Write(1, pcm.Zeros)
		swap00 = bank.Swap(0, 1)
		bank.Write(0, pcm.Ones)
		swap01 = bank.Swap(0, 1)
		bank.Write(0, pcm.Ones)
		bank.Write(1, pcm.Ones)
		swap11 = bank.Swap(0, 1)
	}
	b.ReportMetric(float64(move0), "move_all0_ns")
	b.ReportMetric(float64(move1), "move_all1_ns")
	b.ReportMetric(float64(swap00), "swap_00_ns")
	b.ReportMetric(float64(swap01), "swap_01_ns")
	b.ReportMetric(float64(swap11), "swap_11_ns")
}

// BenchmarkFig11_RBSG_RTAvsRAA evaluates the Fig 11 grid at full paper
// scale and reports the headline cell (32 regions, ψ=100): the paper
// finds RTA kills in 478 s, 27435× faster than RAA.
func BenchmarkFig11_RBSG_RTAvsRAA(b *testing.B) {
	d := lifetime.PaperDevice()
	var rta, raa lifetime.Estimate
	for i := 0; i < b.N; i++ {
		for _, r := range []uint64{32, 64, 128} {
			for _, psi := range []uint64{16, 32, 64, 100} {
				p := lifetime.RBSGParams{Regions: r, Interval: psi}
				e1, e2 := lifetime.RTAOnRBSG(d, p), lifetime.RAAOnRBSG(d, p)
				if r == 32 && psi == 100 {
					rta, raa = e1, e2
				}
			}
		}
	}
	b.ReportMetric(rta.Seconds, "rta_seconds")
	b.ReportMetric(raa.Seconds/86400, "raa_days")
	b.ReportMetric(raa.Seconds/rta.Seconds, "raa_over_rta")
}

// BenchmarkFig12_SR_RTA evaluates the Table-I grid for two-level SR under
// RTA and reports the suggested configuration: the paper finds ≈178.8 h.
func BenchmarkFig12_SR_RTA(b *testing.B) {
	d := lifetime.PaperDevice()
	var at lifetime.Estimate
	for i := 0; i < b.N; i++ {
		for _, regions := range []uint64{256, 512, 1024} {
			for _, inner := range []uint64{16, 32, 64, 128} {
				for _, outer := range []uint64{16, 32, 64, 128, 256} {
					p := lifetime.SRParams{Regions: regions, InnerInterval: inner, OuterInterval: outer}
					e := lifetime.RTAOnTwoLevelSRAvg(d, p, 5, 1)
					if regions == 512 && inner == 64 && outer == 128 {
						at = e
					}
				}
			}
		}
	}
	b.ReportMetric(at.Seconds/3600, "suggested_hours")
}

// BenchmarkFig13_SR_RAA evaluates the same grid under RAA: the paper
// finds ≈105 months at the suggested configuration, 322× the RTA number.
func BenchmarkFig13_SR_RAA(b *testing.B) {
	d := lifetime.PaperDevice()
	var raa, rta lifetime.Estimate
	for i := 0; i < b.N; i++ {
		for _, regions := range []uint64{256, 512, 1024} {
			for _, inner := range []uint64{16, 32, 64, 128} {
				for _, outer := range []uint64{16, 32, 64, 128, 256} {
					p := lifetime.SRParams{Regions: regions, InnerInterval: inner, OuterInterval: outer}
					e := lifetime.RAAOnTwoLevelSR(d, p)
					if regions == 512 && inner == 64 && outer == 128 {
						raa = e
						rta = lifetime.RTAOnTwoLevelSRAvg(d, p, 5, 1)
					}
				}
			}
		}
	}
	b.ReportMetric(raa.Seconds/86400/30, "suggested_months")
	b.ReportMetric(raa.FractionOfIdeal*100, "pct_of_ideal")
	b.ReportMetric(raa.Seconds/rta.Seconds, "raa_over_rta")
}

// BenchmarkFig14_Stages sweeps the DFN stage count with the real cipher
// at the scaled geometry: the paper reports ≈20% of ideal at 3 stages and
// 67.2% (RAA) / 66.4% (BPA) at 7.
func BenchmarkFig14_Stages(b *testing.B) {
	fracs := map[int]float64{}
	var bpa float64
	for i := 0; i < b.N; i++ {
		for _, s := range []int{3, 5, 7, 14} {
			d, p := lifetime.ScaledSRBSGExperiment(s)
			e, err := lifetime.RAAOnSecurityRBSGAvg(d, p, 3, 42)
			if err != nil {
				b.Fatal(err)
			}
			fracs[s] = e.FractionOfIdeal
			if s == 7 {
				bpa = lifetime.BPAOnSecurityRBSG(d, p).FractionOfIdeal
			}
		}
	}
	for _, s := range []int{3, 5, 7, 14} {
		b.ReportMetric(fracs[s]*100, fmt.Sprintf("pct_ideal_s%d", s))
	}
	b.ReportMetric(bpa*100, "pct_ideal_bpa")
}

// BenchmarkFig14_FullScalePoint runs the paper-geometry (1 GB) 7-stage
// point of Fig 14 — the headline 67.2%-of-ideal cell — with the real DFN.
// One RAASim is reused across iterations, so the benchmark measures the
// simulation itself, not the (megabytes-at-full-scale) state allocation.
func BenchmarkFig14_FullScalePoint(b *testing.B) {
	d := lifetime.PaperDevice()
	p := lifetime.SuggestedSRBSGParams()
	sim, err := lifetime.NewRAASim(d, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var frac float64
	for i := 0; i < b.N; i++ {
		frac = sim.Run(uint64(i) + 1).FractionOfIdeal
	}
	b.ReportMetric(frac*100, "pct_of_ideal")
	b.ReportMetric(frac*d.IdealSeconds()/86400/30, "months")
}

// BenchmarkFig15_SRBSG_RAA sweeps the outer interval at the scaled
// geometry: the paper's distinguishing trend is that lifetime *rises*
// with the outer interval.
func BenchmarkFig15_SRBSG_RAA(b *testing.B) {
	fracs := map[uint64]float64{}
	for i := 0; i < b.N; i++ {
		for _, outer := range []uint64{16, 64, 256} {
			d, p := lifetime.ScaledSRBSGExperiment(7)
			p.OuterInterval = outer
			e, err := lifetime.RAAOnSecurityRBSGAvg(d, p, 3, 7)
			if err != nil {
				b.Fatal(err)
			}
			fracs[outer] = e.FractionOfIdeal
		}
	}
	for _, outer := range []uint64{16, 64, 256} {
		b.ReportMetric(fracs[outer]*100, fmt.Sprintf("pct_ideal_outer%d", outer))
	}
}

// BenchmarkFig16_WriteDistribution measures how evenly RAA traffic is
// spread after increasing write totals: the paper's curve approaches the
// diagonal (uniformity error → 0) by 10^13 writes.
func BenchmarkFig16_WriteDistribution(b *testing.B) {
	d, p := lifetime.ScaledSRBSGExperiment(7)
	var early, late float64
	for i := 0; i < b.N; i++ {
		c1, err := lifetime.WriteDistribution(d, p, 1e10/16, 11)
		if err != nil {
			b.Fatal(err)
		}
		c2, err := lifetime.WriteDistribution(d, p, 1e12/16, 11)
		if err != nil {
			b.Fatal(err)
		}
		early, late = stats.UniformityError(c1), stats.UniformityError(c2)
	}
	b.ReportMetric(early, "uniformity_err_1e10")
	b.ReportMetric(late, "uniformity_err_1e12")
}

// BenchmarkTableOverhead evaluates the Section V-C-3 hardware model at
// the recommended configuration: ≈2 KB registers, 0.5 MB SRAM.
func BenchmarkTableOverhead(b *testing.B) {
	var o analytic.Overhead
	for i := 0; i < b.N; i++ {
		o = analytic.ComputeOverhead(analytic.OverheadParams{
			Lines: 1 << 22, Regions: 512,
			InnerInterval: 64, OuterInterval: 128,
			Stages: 7, LineBytes: 256,
		})
	}
	b.ReportMetric(float64(o.RegisterBits)/8/1024, "register_kb")
	b.ReportMetric(float64(o.SRAMBits)/8/1024/1024, "sram_mb")
	b.ReportMetric(float64(o.Gates), "gates")
}

// BenchmarkPerfImpact runs the Section V-C-4 experiment on a PARSEC
// subset at ψ_inner = 64: the paper reports 1.02% average degradation.
func BenchmarkPerfImpact(b *testing.B) {
	cfg := perfmodel.DefaultConfig()
	cfg.RequestsPerCore = 4000
	factory := func(lines uint64) (wear.Scheme, error) {
		return core.New(core.Config{
			Lines: lines, Regions: 64, InnerInterval: 64,
			OuterInterval: 128, Stages: 7, Seed: 7,
		})
	}
	var avg float64
	for i := 0; i < b.N; i++ {
		var err error
		_, avg, err = perfmodel.RunSuite(cfg, workload.PARSEC[:6], factory)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(avg, "parsec_degradation_pct")
}

// BenchmarkRTAEndToEnd runs the complete Section III-B timing attack
// against a small RBSG instance — alignment, full sequence recovery and
// wear-out — and reports the attacker's write budget.
func BenchmarkRTAEndToEnd(b *testing.B) {
	var writes uint64
	for i := 0; i < b.N; i++ {
		s := rbsg.MustNew(rbsg.Config{Lines: 256, Regions: 8, Interval: 4, Seed: 5})
		c := wear.MustNewController(pcm.Config{
			LineBytes: 256, Endurance: 500, Timing: pcm.DefaultTiming,
		}, s)
		a := &attack.RTARBSG{
			Target: c, Lines: 256, Regions: 8, Interval: 4, Li: 17, SeqLen: 6,
			Oracle: func() bool { return c.Bank().Failed() },
		}
		res, err := a.Run()
		if err != nil || !res.Failed {
			b.Fatalf("attack failed: %v", err)
		}
		writes = res.Writes
	}
	b.ReportMetric(float64(writes), "attacker_writes")
}

// --- microbenchmarks: the per-access costs of each translation layer ---

func benchScheme(b *testing.B, s wear.Scheme) {
	b.Helper()
	n := s.LogicalLines()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Translate(uint64(i) & (n - 1))
	}
	_ = sink
}

// BenchmarkTranslateStartGap measures the plain Start-Gap lookup.
func BenchmarkTranslateStartGap(b *testing.B) {
	s, _ := startgap.NewSingle(1<<16, 100)
	benchScheme(b, s)
}

// BenchmarkTranslateRBSG measures RBSG (3-stage static Feistel + region
// Start-Gap).
func BenchmarkTranslateRBSG(b *testing.B) {
	benchScheme(b, rbsg.MustNew(rbsg.Config{Lines: 1 << 16, Regions: 64, Interval: 100, Seed: 1}))
}

// BenchmarkTranslateTwoLevelSR measures two-level Security Refresh.
func BenchmarkTranslateTwoLevelSR(b *testing.B) {
	benchScheme(b, secref.MustNewTwoLevel(secref.TwoLevelConfig{
		Lines: 1 << 16, Regions: 64, InnerInterval: 64, OuterInterval: 128, Seed: 1,
	}))
}

// BenchmarkTranslateSecurityRBSG measures the full 7-stage DFN + isRemap
// + inner Start-Gap path (the paper budgets 10 ns in hardware).
func BenchmarkTranslateSecurityRBSG(b *testing.B) {
	benchScheme(b, core.MustNew(core.Config{
		Lines: 1 << 16, Regions: 64, InnerInterval: 64,
		OuterInterval: 128, Stages: 7, Seed: 1,
	}))
}

// BenchmarkControllerWrite measures the simulator's full write path
// (translate + device + wear + remap bookkeeping).
func BenchmarkControllerWrite(b *testing.B) {
	s := core.MustNew(core.Config{
		Lines: 1 << 16, Regions: 64, InnerInterval: 64,
		OuterInterval: 128, Stages: 7, Seed: 1,
	})
	c := wear.MustNewController(pcm.Config{
		LineBytes: 256, Endurance: 1 << 40, Timing: pcm.DefaultTiming,
	}, s)
	for i := 0; i < b.N; i++ {
		c.Write(uint64(i)&(1<<16-1), pcm.Mixed)
	}
}

// --- perf-gate guard benchmarks (see scripts/bench_gate.sh) ---
//
// The six benchmarks guarded by the CI regression gate are
// BenchmarkFeistelMapTable, BenchmarkTranslateSecurityRBSG,
// BenchmarkControllerWrite, BenchmarkLifetimeRAAScaled,
// BenchmarkBankWriteN and BenchmarkExactEpochFastForward — the pure
// mapping kernel, both ends of the per-access path, the end-to-end
// Monte-Carlo kernel, and the exact tier's bulk-write and epoch
// fast-forward kernels. They avoid HTTP/network layers so the gate
// measures our code, not the harness.

// BenchmarkFeistelMapDirect evaluates the 7-stage cube-function Feistel
// network directly — the per-access cost Security RBSG would pay with
// no materialized tables.
func BenchmarkFeistelMapDirect(b *testing.B) {
	n := feistel.MustRandom(16, 7, stats.NewRNG(1))
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += n.Encrypt(uint64(i) & (1<<16 - 1))
	}
	_ = sink
}

// BenchmarkFeistelMapTable evaluates the same permutation through the
// materialized lookup table — the per-access cost after this PR.
func BenchmarkFeistelMapTable(b *testing.B) {
	t := feistel.MustNewTable(feistel.MustRandom(16, 7, stats.NewRNG(1)))
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += t.Encrypt(uint64(i) & (1<<16 - 1))
	}
	_ = sink
}

// BenchmarkFeistelTableFill measures the per-remapping-round cost the
// table trades for: one full rebuild of both directions.
func BenchmarkFeistelTableFill(b *testing.B) {
	rng := stats.NewRNG(1)
	n := feistel.MustRandom(16, 7, rng)
	t := feistel.MustNewTable(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.RekeyRandom(rng)
		t.MustFill(n)
	}
}

// BenchmarkLifetimeRAAScaled is the designated end-to-end Monte-Carlo
// guard: one full RAA trial against Security RBSG at the scaled
// geometry, reusing the simulator's flat arrays (~0 allocs/op).
func BenchmarkLifetimeRAAScaled(b *testing.B) {
	d, p := lifetime.ScaledSRBSGExperiment(7)
	sim, err := lifetime.NewRAASim(d, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var frac float64
	for i := 0; i < b.N; i++ {
		frac = sim.Run(uint64(i) + 42).FractionOfIdeal
	}
	b.ReportMetric(frac*100, "pct_of_ideal")
}

// BenchmarkBankWriteN measures the bulk demand-write kernel the exact
// tier batches pinned write streams through: each op applies 1000
// writes to one line — clock, wear and first-failure accounting exact —
// in O(1). A regression here means WriteN lost its constant-time path.
func BenchmarkBankWriteN(b *testing.B) {
	bank := pcm.MustNewBank(pcm.Config{
		Lines: 1 << 10, LineBytes: 256, Endurance: 1 << 40, Timing: pcm.DefaultTiming,
	})
	for i := 0; i < b.N; i++ {
		bank.WriteN(uint64(i)&(1<<10-1), pcm.Mixed, 1000)
	}
	b.ReportMetric(1000*float64(b.N)/b.Elapsed().Seconds(), "line_writes_per_sec")
}

// exactEpochTarget is a plain attack.Target wrapper hiding the batch
// capabilities, so the naive reference below takes the write-by-write
// paths everywhere.
type exactEpochTarget struct{ c *wear.Controller }

func (t exactEpochTarget) Write(la uint64, content pcm.Content) uint64 {
	return t.c.Write(la, content)
}
func (t exactEpochTarget) Read(la uint64) (pcm.Content, uint64) { return t.c.Read(la) }

// exactEpochRun executes the full RTA against RBSG at 2^18 lines —
// alignment, sequence recovery, wear-out to device failure.
func exactEpochRun(b *testing.B, fast bool) attack.Result {
	b.Helper()
	const lines, regions, interval, endurance = 1 << 18, 32, 100, 10_000_000
	s := rbsg.MustNew(rbsg.Config{Lines: lines, Regions: regions, Interval: interval, Seed: 42})
	c := wear.MustNewController(pcm.Config{
		LineBytes: 256, Endurance: endurance, Timing: pcm.DefaultTiming,
	}, s)
	var target attack.Target = exactEpochTarget{c}
	if fast {
		target = exactsim.NewFastTarget(c, 0)
	}
	// n_seq = ceil(E/((n+1)·ψ)) plus one spare predecessor, as in
	// cmd/lifetime -exact.
	per := uint64(lines / regions)
	seqLen := (endurance+(per+1)*interval-1)/((per+1)*interval) + 1
	a := &attack.RTARBSG{
		Target: target, Lines: lines, Regions: regions, Interval: interval,
		Li: 17, SeqLen: seqLen,
		Oracle: func() bool { return c.Bank().Failed() },
	}
	res, err := a.Run()
	if err != nil || !res.Failed {
		b.Fatalf("attack failed: %v", err)
	}
	return res
}

// exactEpochNaive memoizes the naive reference, which is too slow to
// rerun per benchmark invocation.
var exactEpochNaive struct {
	once   sync.Once
	secs   float64
	writes uint64
}

// BenchmarkExactEpochFastForward is the exact tier's headline guard: the
// complete RTA-on-RBSG at 2^18 lines through the acceleration layer
// (parallel sweep kernels + batched hammer epochs), with the naive
// write-by-write run measured once as the reference. The PR's
// acceptance floor is speedup_vs_naive >= 5; identical attacker write
// counts double-check exactness (the differential suite in
// internal/exactsim proves full bit-identity).
func BenchmarkExactEpochFastForward(b *testing.B) {
	exactEpochNaive.once.Do(func() {
		start := time.Now()
		res := exactEpochRun(b, false)
		exactEpochNaive.secs = time.Since(start).Seconds()
		exactEpochNaive.writes = res.Writes
	})
	b.ResetTimer()
	var res attack.Result
	for i := 0; i < b.N; i++ {
		res = exactEpochRun(b, true)
	}
	if res.Writes != exactEpochNaive.writes {
		b.Fatalf("fast attack issued %d writes, naive %d: exactness broken",
			res.Writes, exactEpochNaive.writes)
	}
	fastSecs := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(exactEpochNaive.secs/fastSecs, "speedup_vs_naive")
	b.ReportMetric(float64(res.Writes), "attacker_writes")
}

// --- ablations: the design choices DESIGN.md calls out ---

// BenchmarkAblation_MigrationSpareWear compares the two outer-level
// migration strategies of Security RBSG: the paper's spare-line walk
// (MigrationMove) concentrates one write per permutation cycle on the
// spare, while the default swap walk spreads remap wear evenly. The
// reported ratio is the spare line's wear over the average line's after
// ten remapping rounds.
func BenchmarkAblation_MigrationSpareWear(b *testing.B) {
	var hotspot float64
	for i := 0; i < b.N; i++ {
		s := core.MustNew(core.Config{
			Lines: 256, Regions: 8, InnerInterval: 3,
			OuterInterval: 5, Stages: 7, Migration: core.MigrationMove, Seed: 15,
		})
		c := wear.MustNewController(pcm.Config{
			LineBytes: 256, Endurance: 1 << 30, Timing: pcm.DefaultTiming,
		}, s)
		for s.Rounds() < 10 {
			c.Write(0, pcm.Mixed)
		}
		sparePA := s.PhysicalLines() - 1
		var sum uint64
		for pa := uint64(0); pa < sparePA; pa++ {
			sum += c.Bank().Wear(pa)
		}
		hotspot = float64(c.Bank().Wear(sparePA)) / (float64(sum) / float64(sparePA))
	}
	b.ReportMetric(hotspot, "spare_wear_over_avg")
}

// BenchmarkAblation_DetectorVsBPA measures the HPCA'11-style online
// detector: Birthday-Paradox writes to failure with and without the
// remapping-rate boost.
func BenchmarkAblation_DetectorVsBPA(b *testing.B) {
	const endurance = 3000
	bankCfg := pcm.Config{LineBytes: 256, Endurance: endurance, Timing: pcm.DefaultTiming}
	mkBase := func() *rbsg.Scheme {
		return rbsg.MustNew(rbsg.Config{Lines: 256, Regions: 8, Interval: 8, Seed: 7})
	}
	var plainW, detW float64
	for i := 0; i < b.N; i++ {
		plain := wear.MustNewController(bankCfg, mkBase())
		plainW = float64(attack.BPA(plain, mkBase().LineVulnerabilityFactor(), pcm.Mixed, 1, 0).Writes)
		det, err := detector.NewAdaptiveRBSG(mkBase(), detector.Config{Window: 256, AlarmShare: 0.6, Boost: 8})
		if err != nil {
			b.Fatal(err)
		}
		dc := wear.MustNewController(bankCfg, det)
		detW = float64(attack.BPA(dc, mkBase().LineVulnerabilityFactor(), pcm.Mixed, 1, 0).Writes)
	}
	b.ReportMetric(plainW, "bpa_writes_plain")
	b.ReportMetric(detW, "bpa_writes_detector")
	b.ReportMetric(detW/plainW, "detector_gain")
}

// BenchmarkAblation_TableWLvsAIA quantifies the paper's Section II-B
// point against deterministic table-based wear leveling: blind hammering
// is leveled away, an informed adversary is not.
func BenchmarkAblation_TableWLvsAIA(b *testing.B) {
	const endurance = 3000
	bankCfg := pcm.Config{LineBytes: 256, Endurance: endurance, Timing: pcm.DefaultTiming}
	mk := func() *wear.Controller {
		return wear.MustNewController(bankCfg,
			tablewl.MustNew(tablewl.Config{Lines: 64, Interval: 8, HotThreshold: 4}))
	}
	var aiaW, raaW float64
	for i := 0; i < b.N; i++ {
		aiaW = float64(attack.AIA(mk(), 42, pcm.Mixed, 0).Writes)
		raaW = float64(attack.RAA(mk(), 13, pcm.Mixed, 0).Writes)
	}
	b.ReportMetric(aiaW, "aia_writes")
	b.ReportMetric(raaW, "raa_writes")
	b.ReportMetric(raaW/aiaW, "determinism_penalty")
}

// BenchmarkAblation_RandomizerKind compares RBSG's two static
// randomizers (Feistel network vs random invertible binary matrix): both
// spread a spatially local write burst across regions about equally —
// the choice is a hardware-cost question, not a leveling one.
func BenchmarkAblation_RandomizerKind(b *testing.B) {
	spread := func(useMatrix bool) float64 {
		s := rbsg.MustNew(rbsg.Config{
			Lines: 1 << 14, Regions: 64, Interval: 64, UseMatrix: useMatrix, Seed: 3,
		})
		counts := make([]int, 64)
		for la := uint64(0); la < 4096; la++ { // one dense 1 MB burst
			counts[s.Intermediate(la)/s.LinesPerRegion()]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return float64(max) / (4096.0 / 64.0)
	}
	var f, m float64
	for i := 0; i < b.N; i++ {
		f, m = spread(false), spread(true)
	}
	b.ReportMetric(f, "feistel_max_over_mean")
	b.ReportMetric(m, "ribm_max_over_mean")
}

#!/usr/bin/env bash
# Server smoke test: the CI job and `make serve-smoke` both run this.
#
# Boots memctld on random ports (JSON and binary listeners both live),
# drives it with loadgen for ~2s under the benign and the attack-shaped
# stream over each transport, asserts the detector told them apart,
# probes the binary listener with binprobe (round trip + version skew),
# and checks the daemon drains cleanly on SIGTERM with both listeners
# up.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/memctld" ./cmd/memctld
go build -o "$tmp/loadgen" ./cmd/loadgen
go build -o "$tmp/binprobe" ./cmd/binprobe

"$tmp/memctld" -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
    -binary-addr 127.0.0.1:0 -binary-addr-file "$tmp/binaddr" \
    -banks 8 -lines $((1 << 20)) 2>"$tmp/server.log" &
pid=$!

for _ in $(seq 100); do
    [ -s "$tmp/addr" ] && [ -s "$tmp/binaddr" ] && break
    sleep 0.1
done
[ -s "$tmp/addr" ] && [ -s "$tmp/binaddr" ] \
    || { echo "FAIL: server never bound"; cat "$tmp/server.log"; exit 1; }
addr="http://$(cat "$tmp/addr")"
binaddr="$(cat "$tmp/binaddr")"
echo "== memctld up at $addr (binary $binaddr)"

echo "== binary probe: round trip and version skew"
"$tmp/binprobe" -addr "$binaddr"
"$tmp/binprobe" -addr "$binaddr" -skew

echo "== uniform stream (detector must stay quiet)"
"$tmp/loadgen" -addr "$addr" -workers 8 -duration 2s -pattern uniform | tee "$tmp/uniform.out"
grep -q "detector alarms: 0 (run)" "$tmp/uniform.out" \
    || { echo "FAIL: uniform traffic raised alarms"; exit 1; }
ops=$(sed -n 's/^sustained: \([0-9]*\) line-ops.*/\1/p' "$tmp/uniform.out")
[ -n "$ops" ] && [ "$ops" -gt 0 ] \
    || { echo "FAIL: no sustained throughput reported"; exit 1; }

echo "== binary uniform stream (same machine, faster wire)"
"$tmp/loadgen" -addr "$addr" -proto binary -binary-addr "$binaddr" \
    -workers 8 -duration 2s -pattern uniform | tee "$tmp/binary.out"
grep -q "detector alarms: 0 (run)" "$tmp/binary.out" \
    || { echo "FAIL: binary uniform traffic raised alarms"; exit 1; }
binops=$(sed -n 's/^sustained: \([0-9]*\) line-ops.*/\1/p' "$tmp/binary.out")
[ -n "$binops" ] && [ "$binops" -gt 0 ] \
    || { echo "FAIL: no sustained binary throughput reported"; exit 1; }

echo "== attack-shaped stream over the binary wire (detector must alarm)"
"$tmp/loadgen" -addr "$addr" -proto binary -binary-addr "$binaddr" \
    -workers 8 -duration 2s -pattern attack | tee "$tmp/attack.out"
grep -q "detector alarms: 0 (run)" "$tmp/attack.out" \
    && { echo "FAIL: attack stream raised no alarm"; exit 1; }

echo "== scraping /metrics"
if command -v curl >/dev/null 2>&1; then
    curl -fsS "$addr/metrics" > "$tmp/metrics.out"
else
    wget -qO- "$addr/metrics" > "$tmp/metrics.out"
fi
grep -q '^memctld_demand_writes_total' "$tmp/metrics.out" \
    || { echo "FAIL: /metrics missing counters"; exit 1; }
awk '/^memctld_detector_alarms_total{/ { sum += $2 } END { exit !(sum > 0) }' "$tmp/metrics.out" \
    || { echo "FAIL: /metrics detector-alarm counter still zero"; exit 1; }
awk '/^memctld_binary_line_ops_total / { sum += $2 } END { exit !(sum > 0) }' "$tmp/metrics.out" \
    || { echo "FAIL: /metrics binary line-op counter still zero"; exit 1; }
awk '/^memctld_json_line_ops_total / { sum += $2 } END { exit !(sum > 0) }' "$tmp/metrics.out" \
    || { echo "FAIL: /metrics json line-op counter still zero"; exit 1; }

echo "== SIGTERM → graceful drain (both listeners live)"
kill -TERM "$pid"
wait "$pid" || { echo "FAIL: memctld exited non-zero"; cat "$tmp/server.log"; exit 1; }
pid=""
grep -q "drained cleanly" "$tmp/server.log" \
    || { echo "FAIL: no clean-drain marker"; cat "$tmp/server.log"; exit 1; }

echo "== server smoke OK"

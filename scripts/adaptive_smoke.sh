#!/usr/bin/env bash
# Adaptive-level smoke test: the CI job and `make adaptive-smoke` both
# run this.
#
# Boots memctld with the adaptive security level (-scheme
# srbsg+adaptive), then drives it with loadgen twice: a benign uniform
# stream (the level must not move) and the escalating attack stream
# (the level must escalate at least once, and loadgen must report the
# time to first escalation). Finishes with a SIGTERM drain and checks
# the daemon printed its adaptive-level summary.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/memctld" ./cmd/memctld
go build -o "$tmp/loadgen" ./cmd/loadgen

# One bank keeps every write in one controller's monitor; the short
# interval closes remap rounds (the only instants the level can move)
# every few thousand writes, so a 2s stream crosses many boundaries.
"$tmp/memctld" -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
    -scheme srbsg+adaptive -banks 1 -lines 4096 \
    -regions 16 -interval 8 -stages 4 2>"$tmp/server.log" &
pid=$!

for _ in $(seq 100); do
    [ -s "$tmp/addr" ] && break
    sleep 0.1
done
[ -s "$tmp/addr" ] || { echo "FAIL: server never bound"; cat "$tmp/server.log"; exit 1; }
addr="http://$(cat "$tmp/addr")"
echo "== memctld (srbsg+adaptive) up at $addr"

scrape() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$addr/metrics"
    else
        wget -qO- "$addr/metrics"
    fi
}
metric() { # sum a counter/gauge over banks
    scrape | awk -v name="$1" 'index($0, "memctld_" name "{") == 1 { sum += $2 } END { print sum + 0 }'
}

echo "== benign uniform stream (level must never rise)"
"$tmp/loadgen" -addr "$addr" -workers 4 -duration 2s -pattern uniform | tee "$tmp/uniform.out"
raises=$(metric level_raises_total)
[ "$raises" = "0" ] || { echo "FAIL: benign traffic escalated the level $raises times"; exit 1; }
level=$(metric security_level)
# Quiet traffic may relax the level toward -level-min; it must not rise.
[ "$level" -le 4 ] || { echo "FAIL: level is $level after benign traffic, want at most the boot level 4"; exit 1; }

echo "== escalating attack stream (level must escalate)"
"$tmp/loadgen" -addr "$addr" -workers 4 -duration 2s -pattern escalate -ramp 20000 | tee "$tmp/escalate.out"
grep -q "first escalation after" "$tmp/escalate.out" \
    || { echo "FAIL: loadgen reported no escalation under attack"; exit 1; }
raises=$(metric level_raises_total)
[ "$raises" != "0" ] || { echo "FAIL: attack stream left level_raises_total at zero"; exit 1; }
level=$(metric security_level)
[ "$level" -gt 4 ] || { echo "FAIL: level is $level under attack, want above the boot level 4"; exit 1; }
echo "== level escalated to $level after $raises raises"

echo "== SIGTERM → graceful drain"
kill -TERM "$pid"
wait "$pid" || { echo "FAIL: memctld exited non-zero"; cat "$tmp/server.log"; exit 1; }
pid=""
grep -q "drained cleanly" "$tmp/server.log" \
    || { echo "FAIL: no clean-drain marker"; cat "$tmp/server.log"; exit 1; }
grep -q "adaptive level:" "$tmp/server.log" \
    || { echo "FAIL: drain summary missing the adaptive-level line"; cat "$tmp/server.log"; exit 1; }
grep -q "level change:" "$tmp/server.log" \
    || { echo "FAIL: no level-change events logged"; cat "$tmp/server.log"; exit 1; }

echo "== adaptive smoke OK"

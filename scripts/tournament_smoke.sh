#!/usr/bin/env bash
# Tournament smoke test: the CI job and `make tournament-smoke` both run
# this.
#
# Plays the full registered scheme×attack matrix through cmd/tournament
# at 2^10 lines, asserts that every playable cell of the plugin registry
# completed, and proves the checkpoint/resume path by re-running the
# grid and requiring a byte-identical CSV. The output directory can be
# pinned with TOURNAMENT_OUT (CI does, to upload the CSV as an
# artifact); otherwise everything lands in a temp dir.
set -euo pipefail
cd "$(dirname "$0")/.."

LINES=${TOURNAMENT_LINES:-1024}
ENDURANCE=${TOURNAMENT_ENDURANCE:-3000}

tmp=$(mktemp -d)
out=${TOURNAMENT_OUT:-$tmp/out}
mkdir -p "$out"
cleanup() { rm -rf "$tmp"; }
trap cleanup EXIT

go build -o "$tmp/tournament" ./cmd/tournament

echo "== playable matrix"
"$tmp/tournament" -list | tee "$tmp/list.out"
expected=$(grep -c 'playable$' "$tmp/list.out")
[ "$expected" -gt 0 ] || { echo "FAIL: registry lists no playable cells"; exit 1; }

echo "== full matrix at $LINES lines (expecting $expected cells)"
"$tmp/tournament" -lines "$LINES" -endurance "$ENDURANCE" -quiet \
    -ckpt "$tmp/ckpt" -out "$out/tournament.csv" -meta "$out/runmeta.json"

# Every playable cell must appear in the CSV, and every one of them must
# have completed: the status column is looked up from the header so the
# check survives metric additions.
status_col=$(head -1 "$out/tournament.csv" | tr ',' '\n' | grep -n '^status$' | cut -d: -f1)
[ -n "$status_col" ] || { echo "FAIL: CSV has no status column"; exit 1; }
rows=$(tail -n +2 "$out/tournament.csv" | wc -l)
done_rows=$(tail -n +2 "$out/tournament.csv" | awk -F, -v c="$status_col" '$c == "done"' | wc -l)
echo "== $done_rows/$rows cells done ($expected registered)"
[ "$rows" -eq "$expected" ] || { echo "FAIL: CSV has $rows cells, registry plays $expected"; exit 1; }
[ "$done_rows" -eq "$expected" ] || { echo "FAIL: only $done_rows/$expected cells completed"; exit 1; }

echo "== resume must be byte-identical"
"$tmp/tournament" -lines "$LINES" -endurance "$ENDURANCE" -quiet \
    -ckpt "$tmp/ckpt" -resume -out "$tmp/resumed.csv"
cmp "$out/tournament.csv" "$tmp/resumed.csv" \
    || { echo "FAIL: resumed CSV differs from the fresh run"; exit 1; }

echo "== tournament smoke OK"

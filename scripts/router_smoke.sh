#!/usr/bin/env bash
# Router smoke test: the CI job and `make router-smoke` both run this.
#
# Boots a real distributed deployment — three memctld shard PROCESSES
# plus a memrouterd in front — using waitready on the daemons' address
# files instead of sleep loops. Then, entirely through the router:
# probes the wire protocol (round trip + version skew), drives a benign
# uniform stream (no detector alarms, frames split across shards) and
# an attack-shaped stream (the shard 0 detector must alarm, and ONLY
# shard 0's — the router's shard-labeled metric passthrough proves
# where the traffic landed). Finally drains the topology in the only
# correct order: router first (its in-flight frames need live shards),
# shards after.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pids=()
cleanup() {
    for p in "${pids[@]:-}"; do [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/memctld" ./cmd/memctld
go build -o "$tmp/memrouterd" ./cmd/memrouterd
go build -o "$tmp/waitready" ./cmd/waitready
go build -o "$tmp/loadgen" ./cmd/loadgen
go build -o "$tmp/binprobe" ./cmd/binprobe

fetch() { # fetch URL OUTFILE
    if command -v curl >/dev/null 2>&1; then curl -fsS "$1" > "$2"
    else wget -qO- "$1" > "$2"; fi
}

echo "== booting 3 shards"
shard_lines=$((1 << 18))
for i in 0 1 2; do
    "$tmp/memctld" -addr 127.0.0.1:0 -addr-file "$tmp/s$i.ctl" \
        -binary-addr 127.0.0.1:0 -binary-addr-file "$tmp/s$i.bin" \
        -banks 4 -lines "$shard_lines" -seed $((5 + i)) \
        2>"$tmp/s$i.log" &
    pids+=($!)
done
"$tmp/waitready" -timeout 30s "$tmp/s0.bin" "$tmp/s1.bin" "$tmp/s2.bin" \
    "$tmp/s0.ctl" "$tmp/s1.ctl" "$tmp/s2.ctl" >/dev/null

echo "== booting the router"
"$tmp/memrouterd" -addr 127.0.0.1:0 -addr-file "$tmp/r.ctl" \
    -binary-addr 127.0.0.1:0 -binary-addr-file "$tmp/r.bin" \
    -shards "$(cat "$tmp/s0.bin"),$(cat "$tmp/s1.bin"),$(cat "$tmp/s2.bin")" \
    -shard-control "$(cat "$tmp/s0.ctl"),$(cat "$tmp/s1.ctl"),$(cat "$tmp/s2.ctl")" \
    -lines $((3 * shard_lines)) -group-map 0,1,2 \
    -health-every 250ms 2>"$tmp/r.log" &
rpid=$!
pids+=("$rpid")
# -healthz makes readiness mean "every shard passed its probe", not
# merely "the router's port is bound".
"$tmp/waitready" -timeout 30s -healthz "$tmp/r.ctl" >/dev/null
addr="http://$(cat "$tmp/r.ctl")"
binaddr="$(cat "$tmp/r.bin")"
echo "== router up at $addr (binary $binaddr)"

echo "== binary probe through the router: round trip and version skew"
"$tmp/binprobe" -addr "$binaddr"
"$tmp/binprobe" -addr "$binaddr" -skew

echo "== uniform stream through the router (detector must stay quiet)"
"$tmp/loadgen" -addr "$addr" -proto binary -binary-addr "$binaddr" \
    -workers 4 -window 4 -duration 2s -pattern uniform | tee "$tmp/uniform.out"
grep -q "detector alarms: 0 (run)" "$tmp/uniform.out" \
    || { echo "FAIL: uniform traffic through the router raised alarms"; exit 1; }
ops=$(sed -n 's/^sustained: \([0-9]*\) line-ops.*/\1/p' "$tmp/uniform.out")
[ -n "$ops" ] && [ "$ops" -gt 0 ] \
    || { echo "FAIL: no sustained throughput through the router"; exit 1; }

echo "== router /metrics after the benign leg: every shard served, frames split"
fetch "$addr/metrics" "$tmp/benign.metrics"
for i in 0 1 2; do
    awk -v s="$i" '$0 ~ "^router_shard_line_ops_total{shard=\"" s "\"}" { n = $2 } END { exit !(n > 0) }' \
        "$tmp/benign.metrics" \
        || { echo "FAIL: shard $i served no ops under the uniform stream"; exit 1; }
done
awk '/^router_split_frames_total / { n = $2 } END { exit !(n > 0) }' "$tmp/benign.metrics" \
    || { echo "FAIL: uniform batches never split across shards"; exit 1; }
awk -v want=$((3 * shard_lines)) \
    '/^memctld_lines{/ { sum += $2 } END { exit !(sum == want) }' "$tmp/benign.metrics" \
    || { echo "FAIL: aggregated memctld_lines != 3 shards' worth"; exit 1; }

echo "== attack-shaped stream through the router (shard 0 must alarm)"
"$tmp/loadgen" -addr "$addr" -proto binary -binary-addr "$binaddr" \
    -workers 4 -window 4 -duration 2s -pattern attack | tee "$tmp/attack.out"
grep -q "detector alarms: 0 (run)" "$tmp/attack.out" \
    && { echo "FAIL: attack stream through the router raised no alarm"; exit 1; }

echo "== router /metrics after the attack: alarms localized to shard 0"
fetch "$addr/metrics" "$tmp/attack.metrics"
awk '/^memctld_detector_alarms_total{shard="0"/ { sum += $2 } END { exit !(sum > 0) }' \
    "$tmp/attack.metrics" \
    || { echo "FAIL: shard 0 detector never alarmed"; exit 1; }
for i in 1 2; do
    awk -v s="$i" '$0 ~ "^memctld_detector_alarms_total{shard=\"" s "\"" { sum += $2 } END { exit !(sum == 0) }' \
        "$tmp/attack.metrics" \
        || { echo "FAIL: attack traffic leaked an alarm onto shard $i"; exit 1; }
done

echo "== SIGTERM → graceful drain, router FIRST, shards after"
kill -TERM "$rpid"
wait "$rpid" || { echo "FAIL: memrouterd exited non-zero"; cat "$tmp/r.log"; exit 1; }
grep -q "drained cleanly" "$tmp/r.log" \
    || { echo "FAIL: no clean-drain marker from the router"; cat "$tmp/r.log"; exit 1; }
for i in 0 1 2; do
    kill -TERM "${pids[$i]}"
    wait "${pids[$i]}" || { echo "FAIL: shard $i exited non-zero"; cat "$tmp/s$i.log"; exit 1; }
    grep -q "drained cleanly" "$tmp/s$i.log" \
        || { echo "FAIL: no clean-drain marker from shard $i"; cat "$tmp/s$i.log"; exit 1; }
done
pids=()

echo "== router smoke OK"

#!/usr/bin/env bash
# Capture a CPU profile of memctld under load (`make profile`).
#
# Boots memctld with its -pprof listener on a random loopback port,
# drives it with loadgen, and fetches /debug/pprof/profile for the
# duration of the stream. Inspect the result with:
#
#	go tool pprof -top cpu.pprof
#
# Knobs: PROFILE_SECONDS (default 10), PROFILE_PATTERN (uniform|attack),
# PROFILE_OUT (default cpu.pprof).
set -euo pipefail
cd "$(dirname "$0")/.."

seconds="${PROFILE_SECONDS:-10}"
pattern="${PROFILE_PATTERN:-uniform}"
out="${PROFILE_OUT:-cpu.pprof}"

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/memctld" ./cmd/memctld
go build -o "$tmp/loadgen" ./cmd/loadgen

"$tmp/memctld" -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
    -pprof 127.0.0.1:0 -banks 8 -lines $((1 << 20)) 2>"$tmp/server.log" &
pid=$!

for _ in $(seq 100); do
    [ -s "$tmp/addr" ] && grep -q "pprof on" "$tmp/server.log" && break
    sleep 0.1
done
[ -s "$tmp/addr" ] || { echo "FAIL: server never bound"; cat "$tmp/server.log"; exit 1; }
addr="http://$(cat "$tmp/addr")"
ppurl=$(sed -n 's#.*pprof on \(http://[^/]*\)/.*#\1#p' "$tmp/server.log")
[ -n "$ppurl" ] || { echo "FAIL: pprof listener not announced"; cat "$tmp/server.log"; exit 1; }
echo "== memctld at $addr, pprof at $ppurl, profiling ${seconds}s of '$pattern' load"

# Start the profile first so it brackets the whole load window.
fetch() {
    if command -v curl >/dev/null 2>&1; then curl -fsS "$1" -o "$2"; else wget -qO "$2" "$1"; fi
}
fetch "$ppurl/debug/pprof/profile?seconds=$seconds" "$out" &
profpid=$!

"$tmp/loadgen" -addr "$addr" -workers 8 -duration "${seconds}s" -pattern "$pattern" \
    | tee "$tmp/loadgen.out"

wait "$profpid" || { echo "FAIL: profile fetch failed"; exit 1; }
kill -TERM "$pid"; wait "$pid" || true; pid=""

echo "== wrote $out — inspect with: go tool pprof -top $out"

#!/usr/bin/env bash
# CI perf-regression gate: re-run the guard benchmarks and compare
# against the committed baseline. Fails when a guard's ns/op regresses
# more than 15% (or its allocs/op grows at all).
#
# Overrides (documented in DESIGN.md "Performance engineering"):
#   BENCHGATE_SKIP=1            skip the gate (e.g. known-noisy runner)
#   BENCHGATE_MAX_REGRESS=0.30  widen the ns/op threshold
#   BENCH_BASELINE=BENCH_9.json compare against a different baseline
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${BENCHGATE_SKIP:-0}" = "1" ]; then
    echo "bench-gate: skipped (BENCHGATE_SKIP=1)"
    exit 0
fi

baseline="${BENCH_BASELINE:-BENCH_9.json}"
# The designated guards (see bench_test.go and
# internal/memserver/bench_test.go "perf-gate guard benchmarks"): pure
# mapping kernel, both per-access paths, the end-to-end Monte-Carlo
# kernel, the exact tier's bulk-write and epoch fast-forward kernels,
# the two /v1/batch service paths, and the two binary-protocol paths.
# The batch pair is gated mostly for its allocs/op (exact match
# required): the adaptive controller must add zero allocations over
# the static scheme's 27-alloc path, and the binary frame/decode paths
# must stay at zero allocs/op outright.
guards='BenchmarkFeistelMapTable,BenchmarkTranslateSecurityRBSG,BenchmarkControllerWrite,BenchmarkLifetimeRAAScaled,BenchmarkBankWriteN,BenchmarkExactEpochFastForward,BenchmarkMemserverBatchWrite,BenchmarkMemserverBatchWriteAdaptive,BenchmarkBinaryBatchWrite,BenchmarkBinaryDecodeFrame'
regex="^($(echo "$guards" | tr ',' '|'))\$"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$regex" -benchmem \
    -benchtime "${BENCH_TIME:-1s}" -count "${BENCH_COUNT:-3}" \
    . ./internal/memserver/ | tee "$tmp"
go run ./cmd/benchdiff -baseline "$baseline" -guard "$guards" "$tmp"

# The binary protocol's reason to exist: on the same banks and batch
# shape it must move ≥3× the lines/s of the JSON path (best of the
# recorded repetitions; both benches skip sockets, so this is pure
# serving-path overhead).
awk '
$1 ~ /^BenchmarkMemserverBatchWrite(-[0-9]+)?$/ {
    for (i = 1; i < NF; i++) if ($(i+1) == "lines/s" && $i + 0 > json) json = $i + 0
}
$1 ~ /^BenchmarkBinaryBatchWrite(-[0-9]+)?$/ {
    for (i = 1; i < NF; i++) if ($(i+1) == "lines/s" && $i + 0 > bin) bin = $i + 0
}
END {
    if (json <= 0 || bin <= 0) { print "bench-gate: FAIL: lines/s series missing for the batch benches"; exit 1 }
    printf "bench-gate: binary %.0f lines/s vs json %.0f lines/s (%.1fx)\n", bin, json, bin / json
    if (bin < 3 * json) { print "bench-gate: FAIL: binary batch path below 3x the JSON path"; exit 1 }
}' "$tmp"

#!/usr/bin/env bash
# CI perf-regression gate: re-run the guard benchmarks and compare
# against the committed baseline. Fails when a guard's ns/op regresses
# more than 15% (or its allocs/op grows at all).
#
# Overrides (documented in DESIGN.md "Performance engineering"):
#   BENCHGATE_SKIP=1            skip the gate (e.g. known-noisy runner)
#   BENCHGATE_MAX_REGRESS=0.30  widen the ns/op threshold
#   BENCH_BASELINE=BENCH_9.json compare against a different baseline
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${BENCHGATE_SKIP:-0}" = "1" ]; then
    echo "bench-gate: skipped (BENCHGATE_SKIP=1)"
    exit 0
fi

baseline="${BENCH_BASELINE:-BENCH_10.json}"
# The designated guards (see bench_test.go and the per-package
# bench/clientbench files, "perf-gate guard benchmarks"): pure mapping
# kernel, both per-access paths, the end-to-end Monte-Carlo kernel, the
# exact tier's bulk-write and epoch fast-forward kernels, the two
# /v1/batch service paths, the two binary-protocol paths, the lockstep
# and pipelined wire clients (real loopback TCP), and the router in
# front of 1 and 3 shards. The batch pair is gated mostly for its
# allocs/op (exact match required): the adaptive controller must add
# zero allocations over the static scheme's 27-alloc path, and the
# binary frame/decode, client, and router paths must stay at zero
# allocs/op outright.
guards='BenchmarkFeistelMapTable,BenchmarkTranslateSecurityRBSG,BenchmarkControllerWrite,BenchmarkLifetimeRAAScaled,BenchmarkBankWriteN,BenchmarkExactEpochFastForward,BenchmarkMemserverBatchWrite,BenchmarkMemserverBatchWriteAdaptive,BenchmarkBinaryBatchWrite,BenchmarkBinaryDecodeFrame,BenchmarkBinaryClientLockstep,BenchmarkBinaryClientPipelined,BenchmarkRouterBatch1Shard,BenchmarkRouterBatch3Shards'
regex="^($(echo "$guards" | tr ',' '|'))\$"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$regex" -benchmem \
    -benchtime "${BENCH_TIME:-1s}" -count "${BENCH_COUNT:-3}" \
    . ./internal/memserver/ ./internal/memrouter/ | tee "$tmp"
go run ./cmd/benchdiff -baseline "$baseline" -guard "$guards" "$tmp"

# The binary protocol's reason to exist: on the same banks and batch
# shape it must move ≥3× the lines/s of the JSON path (best of the
# recorded repetitions; both benches skip sockets, so this is pure
# serving-path overhead).
awk '
$1 ~ /^BenchmarkMemserverBatchWrite(-[0-9]+)?$/ {
    for (i = 1; i < NF; i++) if ($(i+1) == "lines/s" && $i + 0 > json) json = $i + 0
}
$1 ~ /^BenchmarkBinaryBatchWrite(-[0-9]+)?$/ {
    for (i = 1; i < NF; i++) if ($(i+1) == "lines/s" && $i + 0 > bin) bin = $i + 0
}
END {
    if (json <= 0 || bin <= 0) { print "bench-gate: FAIL: lines/s series missing for the batch benches"; exit 1 }
    printf "bench-gate: binary %.0f lines/s vs json %.0f lines/s (%.1fx)\n", bin, json, bin / json
    if (bin < 3 * json) { print "bench-gate: FAIL: binary batch path below 3x the JSON path"; exit 1 }
}' "$tmp"

# The distribution asserts need cores to scale onto: pipelining hides
# round-trip latency only when client and server can overlap, and three
# shards beat one only when the shard actors actually run in parallel.
# On starved runners (this repo is developed on a 1-CPU box) both
# ratios still get RECORDED via the baseline — the asserts skip LOUDLY
# rather than fail on physics.
cores="$(nproc 2>/dev/null || echo 1)"

# Client pipelining: a 16-frame window must beat lockstep on ≥2 cores.
# Single-core sanity floor either way: the windowed client must never
# fall more than 15% behind lockstep — that would mean the window is
# adding work, not hiding latency.
awk -v cores="$cores" '
$1 ~ /^BenchmarkBinaryClientLockstep(-[0-9]+)?$/ {
    for (i = 1; i < NF; i++) if ($(i+1) == "lines/s" && $i + 0 > lock) lock = $i + 0
}
$1 ~ /^BenchmarkBinaryClientPipelined(-[0-9]+)?$/ {
    for (i = 1; i < NF; i++) if ($(i+1) == "lines/s" && $i + 0 > pipe) pipe = $i + 0
}
END {
    if (lock <= 0 || pipe <= 0) { print "bench-gate: FAIL: lines/s series missing for the client benches"; exit 1 }
    printf "bench-gate: pipelined client %.0f lines/s vs lockstep %.0f lines/s (%.2fx, %d cores)\n", pipe, lock, pipe / lock, cores
    if (pipe < 0.85 * lock) { print "bench-gate: FAIL: pipelined client below 0.85x lockstep — the window is adding overhead"; exit 1 }
    if (cores < 2) { print "bench-gate: SKIPPED pipelined>lockstep assert: " cores " core(s), no overlap to exploit"; exit 0 }
    if (pipe <= lock) { print "bench-gate: FAIL: pipelined client not faster than lockstep on a multi-core host"; exit 1 }
}' "$tmp"

# Router scaling: 3 shards must serve ≥2.5x the line-ops/s of 1 shard —
# the tentpole claim — when the host has enough cores to run three
# shard servers, the router, and the client concurrently (≥6).
awk -v cores="$cores" '
$1 ~ /^BenchmarkRouterBatch1Shard(-[0-9]+)?$/ {
    for (i = 1; i < NF; i++) if ($(i+1) == "lines/s" && $i + 0 > one) one = $i + 0
}
$1 ~ /^BenchmarkRouterBatch3Shards(-[0-9]+)?$/ {
    for (i = 1; i < NF; i++) if ($(i+1) == "lines/s" && $i + 0 > three) three = $i + 0
}
END {
    if (one <= 0 || three <= 0) { print "bench-gate: FAIL: lines/s series missing for the router benches"; exit 1 }
    printf "bench-gate: router 3 shards %.0f lines/s vs 1 shard %.0f lines/s (%.2fx, %d cores)\n", three, one, three / one, cores
    if (cores < 6) { print "bench-gate: SKIPPED 3-shard>=2.5x assert: " cores " core(s), need >=6 to run the topology in parallel"; exit 0 }
    if (three < 2.5 * one) { print "bench-gate: FAIL: 3-shard router below 2.5x the 1-shard throughput"; exit 1 }
}' "$tmp"

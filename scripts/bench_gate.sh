#!/usr/bin/env bash
# CI perf-regression gate: re-run the guard benchmarks and compare
# against the committed baseline. Fails when a guard's ns/op regresses
# more than 15% (or its allocs/op grows at all).
#
# Overrides (documented in DESIGN.md "Performance engineering"):
#   BENCHGATE_SKIP=1            skip the gate (e.g. known-noisy runner)
#   BENCHGATE_MAX_REGRESS=0.30  widen the ns/op threshold
#   BENCH_BASELINE=BENCH_7.json compare against a different baseline
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${BENCHGATE_SKIP:-0}" = "1" ]; then
    echo "bench-gate: skipped (BENCHGATE_SKIP=1)"
    exit 0
fi

baseline="${BENCH_BASELINE:-BENCH_7.json}"
# The designated guards (see bench_test.go and
# internal/memserver/bench_test.go "perf-gate guard benchmarks"): pure
# mapping kernel, both per-access paths, the end-to-end Monte-Carlo
# kernel, the exact tier's bulk-write and epoch fast-forward kernels,
# and the two /v1/batch service paths. The batch pair is gated mostly
# for its allocs/op (exact match required): the adaptive controller
# must add zero allocations over the static scheme's 27-alloc path.
guards='BenchmarkFeistelMapTable,BenchmarkTranslateSecurityRBSG,BenchmarkControllerWrite,BenchmarkLifetimeRAAScaled,BenchmarkBankWriteN,BenchmarkExactEpochFastForward,BenchmarkMemserverBatchWrite,BenchmarkMemserverBatchWriteAdaptive'
regex="^($(echo "$guards" | tr ',' '|'))\$"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$regex" -benchmem \
    -benchtime "${BENCH_TIME:-1s}" -count "${BENCH_COUNT:-3}" \
    . ./internal/memserver/ | tee "$tmp"
go run ./cmd/benchdiff -baseline "$baseline" -guard "$guards" "$tmp"

#!/usr/bin/env bash
# Record the repo's benchmark baseline (BENCH_10.json): run every
# benchmark with -benchmem and fold the output — ns/op, B/op,
# allocs/op and each ReportMetric figure series — into a committed
# JSON baseline via cmd/benchdiff.
#
# Usage: scripts/bench_record.sh [out.json]
#   BENCH_TIME=2s   per-benchmark time budget (default 1s)
#   BENCH_COUNT=3   repetitions; the baseline keeps the fastest
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_10.json}"
benchtime="${BENCH_TIME:-1s}"
count="${BENCH_COUNT:-3}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench . -benchmem -benchtime "$benchtime" -count "$count" \
    . ./internal/memserver/ ./internal/memrouter/ | tee "$tmp"
# The core count is provenance that matters: the router scaling and
# client pipelining series are parallelism measurements, and a baseline
# recorded on a starved box (cores=1: no overlap, 3 shards slower than
# 1) must say so before anyone reads its ratios as the hardware truth.
go run ./cmd/benchdiff -record -out "$out" \
    -note "benchtime=$benchtime count=$count cores=$(nproc 2>/dev/null || echo 1) $(go version | awk '{print $3"/"$4}')" "$tmp"

// Leveling: the original, non-adversarial motivation for wear leveling —
// real applications write unevenly (here: a zipf-skewed stream), so a few
// hot lines would die long before the rest of the device. This example
// measures how much lifetime each translation layer recovers and what it
// costs in write overhead.
package main

import (
	"fmt"

	"securityrbsg/internal/core"
	"securityrbsg/internal/pcm"
	"securityrbsg/internal/rbsg"
	"securityrbsg/internal/secref"
	"securityrbsg/internal/startgap"
	"securityrbsg/internal/stats"
	"securityrbsg/internal/tablewl"
	"securityrbsg/internal/wear"
	"securityrbsg/internal/workload"
)

// Geometry note: rotation-based leveling only works when the Line
// Vulnerability Factor ((region+1)·ψ writes before a hot line moves) is
// far below the endurance — at paper scale E/LVF ≈ 190. These parameters
// keep that ratio healthy at example size.
const (
	lines     = 1 << 10
	endurance = 20000
)

func main() {
	fmt.Printf("zipf(1.2) write stream over %d lines, endurance %d per line\n", lines, endurance)
	fmt.Printf("ideal lifetime: %d writes (perfectly uniform wear)\n\n", uint64(lines)*endurance)
	fmt.Printf("%-22s %14s %12s %10s\n", "scheme", "writes to fail", "% of ideal", "overhead")

	run("none", func() (wear.Scheme, error) {
		return wear.NewPassthrough(lines), nil
	})
	run("start-gap ψ=4", func() (wear.Scheme, error) {
		return startgap.NewSingle(lines, 4)
	})
	run("table-wl ψ=16", func() (wear.Scheme, error) {
		return tablewl.New(tablewl.Config{Lines: lines, Interval: 16})
	})
	run("rbsg 16r ψ=8", func() (wear.Scheme, error) {
		return rbsg.New(rbsg.Config{Lines: lines, Regions: 16, Interval: 8, Seed: 1})
	})
	run("two-level-sr", func() (wear.Scheme, error) {
		return secref.NewTwoLevel(secref.TwoLevelConfig{
			Lines: lines, Regions: 16, InnerInterval: 8, OuterInterval: 16, Seed: 1,
		})
	})
	run("security-rbsg S=7", func() (wear.Scheme, error) {
		return core.New(core.Config{
			Lines: lines, Regions: 16, InnerInterval: 8,
			OuterInterval: 16, Stages: 7, Seed: 1,
		})
	})
}

func run(label string, factory func() (wear.Scheme, error)) {
	scheme, err := factory()
	if err != nil {
		panic(err)
	}
	ctrl, err := wear.NewController(pcm.Config{
		LineBytes: 256, Endurance: endurance, Timing: pcm.DefaultTiming,
	}, scheme)
	if err != nil {
		panic(err)
	}
	z := workload.NewZipf(lines, 1.2, 7)
	rng := stats.NewRNG(3)
	var writes uint64
	for !ctrl.Bank().Failed() {
		la := z.Next()
		// Occasional uniform traffic mixed in, like a real working set.
		if rng.Float64() < 0.2 {
			la = rng.Uint64n(lines)
		}
		ctrl.Write(la, pcm.Mixed)
		writes++
	}
	ideal := float64(uint64(lines) * endurance)
	fmt.Printf("%-22s %14d %11.1f%% %9.2f%%\n",
		label, writes, 100*float64(writes)/ideal, 100*ctrl.WriteOverhead())
}

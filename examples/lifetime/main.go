// Lifetime comparison: exercise the lifetime estimators across every
// scheme and attack at the paper's 1 GB scale, and verify one of them
// against a real write-by-write simulation at small scale.
package main

import (
	"fmt"

	"securityrbsg/internal/analytic"
	"securityrbsg/internal/attack"
	"securityrbsg/internal/lifetime"
	"securityrbsg/internal/pcm"
	"securityrbsg/internal/rbsg"
	"securityrbsg/internal/wear"
)

func main() {
	d := lifetime.PaperDevice()
	fmt.Printf("device: 1 GB bank, %d lines, endurance %g, ideal lifetime %s\n\n",
		d.Lines, float64(d.Endurance), analytic.HumanDuration(d.IdealSeconds()))

	fmt.Println("How long until a malicious writer kills a line?")
	show := func(label string, e lifetime.Estimate) {
		fmt.Printf("  %-38s %12s  (%.1f%% of ideal)\n",
			label, analytic.HumanDuration(e.Seconds), 100*e.FractionOfIdeal)
	}

	show("no wear leveling, RAA", lifetime.Baseline(d))
	rb := lifetime.RBSGParams{Regions: 32, Interval: 100}
	show("RBSG (32 regions, ψ=100), RAA", lifetime.RAAOnRBSG(d, rb))
	show("RBSG (32 regions, ψ=100), RTA", lifetime.RTAOnRBSG(d, rb))
	sr := lifetime.SuggestedSRParams()
	show("two-level SR (512/64/128), RAA", lifetime.RAAOnTwoLevelSR(d, sr))
	show("two-level SR (512/64/128), RTA", lifetime.RTAOnTwoLevelSRAvg(d, sr, 5, 1))

	sp := lifetime.SuggestedSRBSGParams()
	raa, err := lifetime.RAAOnSecurityRBSGAvg(d, sp, 3, 42)
	if err != nil {
		panic(err)
	}
	show("Security RBSG (512/64/128, S=7), RAA", raa)
	show("Security RBSG (512/64/128, S=7), BPA", lifetime.BPAOnSecurityRBSG(d, sp))
	rta, secure, err := lifetime.RTAOnSecurityRBSG(d, sp, 42)
	if err != nil {
		panic(err)
	}
	show(fmt.Sprintf("Security RBSG, RTA (secure=%v)", secure), rta)

	// The estimators are models; show one being validated against the
	// real simulator at a size where a write-by-write run is feasible.
	fmt.Println("\nModel vs exact simulation (RBSG under RAA, 256 lines, endurance 2000):")
	small := lifetime.Device{Lines: 256, Endurance: 2000, Timing: pcm.DefaultTiming}
	model := lifetime.RAAOnRBSG(small, lifetime.RBSGParams{Regions: 8, Interval: 4})
	s := rbsg.MustNew(rbsg.Config{Lines: 256, Regions: 8, Interval: 4, Seed: 1})
	c := wear.MustNewController(pcm.Config{
		LineBytes: 256, Endurance: 2000, Timing: pcm.DefaultTiming,
	}, s)
	res := attack.RAA(c, 3, pcm.Mixed, 0)
	fmt.Printf("  closed form: %.0f writes   simulator: %d writes   (%.1f%% apart)\n",
		model.Writes, res.Writes,
		100*(model.Writes-float64(res.Writes))/float64(res.Writes))
}

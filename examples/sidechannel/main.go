// Sidechannel: the smallest possible demonstration of the observation the
// whole paper is built on — PCM write latency depends on the data, and a
// wear-leveling movement's latency therefore leaks the *content* of the
// line being moved, which a crafted memory image turns into an address
// oracle.
package main

import (
	"fmt"

	"securityrbsg/internal/attack"
	"securityrbsg/internal/pcm"
	"securityrbsg/internal/startgap"
	"securityrbsg/internal/wear"
)

func main() {
	// A single Start-Gap region of 16 lines, remapping every 4 writes.
	scheme, err := startgap.NewSingle(16, 4)
	if err != nil {
		panic(err)
	}
	ctrl, err := wear.NewController(pcm.Config{
		LineBytes: 256, Endurance: 1 << 30, Timing: pcm.DefaultTiming,
	}, scheme)
	if err != nil {
		panic(err)
	}

	fmt.Println("1. The device asymmetry (Fig 1 / Section II-C):")
	fmt.Printf("   write ALL-0: %4d ns (RESET pulses only)\n", ctrl.Write(0, pcm.Zeros))
	fmt.Printf("   write ALL-1: %4d ns (SET pulses, 8x slower)\n", ctrl.Write(0, pcm.Ones))

	// Craft the memory image: every line ALL-0 except line 9's data.
	fmt.Println("\n2. Craft an image: ALL-0 everywhere, ALL-1 at the secret line (LA 9):")
	attack.SweepZeros(ctrl, 16)
	ctrl.Write(9, pcm.Ones)

	// Now hammer any address and watch the remap latencies: every fourth
	// write triggers a gap movement whose cost names the moved content.
	fmt.Println("\n3. Hammer LA 0 and watch each movement's extra latency:")
	for i := 0; i < 17*4; i++ {
		ns := ctrl.Write(0, pcm.Zeros)
		if extra := ns - 125; extra > 0 {
			content := "ALL-0 line   (read+RESET)"
			if extra >= 1125 {
				content = "ALL-1 line!  (read+SET — that's LA 9 moving)"
			}
			fmt.Printf("   write %3d: movement cost %4d ns → moved an %s\n", i+1, extra, content)
		}
	}

	fmt.Println("\nThe attacker never read anything — latency alone revealed when the")
	fmt.Println("marked line was remapped, which is the primitive the Remapping Timing")
	fmt.Println("Attack builds into full address recovery (see cmd/attackdemo).")
}

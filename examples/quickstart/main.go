// Quickstart: put a PCM bank behind Security RBSG, write to it, watch the
// dynamic mapping migrate, and check the wear-leveling overhead.
package main

import (
	"fmt"

	"securityrbsg/internal/core"
	"securityrbsg/internal/pcm"
	"securityrbsg/internal/wear"
)

func main() {
	// A small PCM bank: 16 Ki lines × 256 B = 4 MB, endurance 10^6.
	bank := pcm.Config{
		LineBytes: 256,
		Endurance: 1_000_000,
		Timing:    pcm.DefaultTiming, // SET 1000 ns, RESET/READ 125 ns
	}

	// Security RBSG with the paper's recommended shape: inner Start-Gap
	// sub-regions under a 7-stage dynamic Feistel network.
	scheme, err := core.New(core.Config{
		Lines:         1 << 14,
		Regions:       32,
		InnerInterval: 64,
		OuterInterval: 128,
		Stages:        7,
		Seed:          42,
	})
	if err != nil {
		panic(err)
	}

	ctrl, err := wear.NewController(bank, scheme)
	if err != nil {
		panic(err)
	}
	ctrl.TranslationNs = 10 // the paper's DFN + SRAM lookup latency

	// Ordinary traffic: the controller translates logical addresses,
	// accounts asymmetric write latency, and remaps behind the scenes.
	la := uint64(12345)
	fmt.Printf("LA %d starts at PA %d\n", la, scheme.Translate(la))
	ns := ctrl.Write(la, pcm.Mixed)
	fmt.Printf("write latency: %d ns (translation 10 + SET 1000)\n", ns)
	content, ns := ctrl.Read(la)
	fmt.Printf("read back: %v in %d ns\n", content, ns)

	// Drive enough writes for remapping rounds to complete; the logical
	// line's physical home keeps moving.
	before := scheme.Translate(la)
	for i := 0; i < 5_000_000; i++ {
		ctrl.Write(uint64(i)&(1<<14-1), pcm.Mixed)
	}
	fmt.Printf("\nafter 5M writes and %d DFN rounds: LA %d moved PA %d → %d\n",
		scheme.Rounds(), la, before, scheme.Translate(la))

	// Wear-leveling bookkeeping.
	_, maxWear := ctrl.Bank().MaxWear()
	fmt.Printf("demand writes: %d, remap movements: %d\n",
		ctrl.DemandWrites(), ctrl.RemapEvents())
	fmt.Printf("write overhead: %.2f%% (remap device writes per demand write)\n",
		100*ctrl.WriteOverhead())
	fmt.Printf("max line wear: %d of %d endurance\n", maxWear, bank.Endurance)
	fmt.Printf("device time elapsed: %.2f ms\n", float64(ctrl.Bank().ElapsedNs())/1e6)
}

// Tuning: the security level of Security RBSG is its Dynamic Feistel
// Network stage count. This example walks the trade-off the paper's
// Section V-C-1 makes: enough stages to outrun RTA key detection, enough
// to randomize RAA traffic, at acceptable hardware cost.
package main

import (
	"fmt"

	"securityrbsg/internal/analytic"
	"securityrbsg/internal/lifetime"
)

func main() {
	paper := lifetime.PaperDevice()
	bits := paper.AddressBits()
	outer := uint64(128)

	fmt.Printf("Choosing the DFN stage count for a 1 GB bank (B=%d bits, ψ_outer=%d)\n\n", bits, outer)

	// Constraint 1: security. The keys must rotate before RTA extracts
	// them: S·B ≥ ψ_outer.
	min := analytic.MinStages(outer, bits)
	fmt.Printf("security floor: S ≥ %d (S·B ≥ ψ_outer keeps key detection behind re-keying)\n\n", min)

	// Constraint 2: lifetime under RAA (measured with the real cipher at
	// the ratio-preserving scaled geometry) and hardware cost.
	fmt.Printf("%-8s %-10s %-16s %-14s %-10s\n",
		"stages", "secure?", "RAA lifetime", "(fraction)", "DFN gates")
	for _, s := range []int{3, 4, 5, 6, 7, 8, 10, 14, 20} {
		d, p := lifetime.ScaledSRBSGExperiment(s)
		e, err := lifetime.RAAOnSecurityRBSGAvg(d, p, 3, 42)
		if err != nil {
			panic(err)
		}
		o := analytic.ComputeOverhead(analytic.OverheadParams{
			Lines: paper.Lines, Regions: 512,
			InnerInterval: 64, OuterInterval: outer,
			Stages: s, LineBytes: 256,
		})
		secure := !analytic.DetectionOutrunsKeys(s, bits, outer)
		fmt.Printf("%-8d %-10v %-16s %-14s %-10d\n",
			s, secure,
			analytic.HumanDuration(e.FractionOfIdeal*paper.IdealSeconds()),
			fmt.Sprintf("(%.0f%% ideal)", 100*e.FractionOfIdeal),
			o.Gates)
	}

	fmt.Println("\nThe paper picks 7: one above the security floor, at the knee of the")
	fmt.Println("lifetime curve, for ~1.3k gates of cubing logic.")
}

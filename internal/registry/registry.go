// Package registry is the plugin registry that turns the paper's
// scheme×attack cross-product into data. Wear-leveling schemes (core,
// rbsg, secref, startgap, detector) and attacks (internal/attack)
// register named constructors from their own init() functions; closed-form
// lifetime models and the exact-tier accelerator (internal/exactsim)
// register alongside them. Everything downstream — cmd/tournament's full
// matrix, cmd/lifetime's single-cell evaluation, cmd/figgen's closed-form
// figures — composes cells by name out of this registry instead of
// hand-wiring each combination, so a new scenario from PAPERS.md is one
// registration plus tests, not a new command.
//
// Two tiers share the same names:
//
//   - The model tier evaluates a (scheme, attack) pair in closed form or
//     by Monte-Carlo visit simulation (internal/lifetime), at any device
//     geometry, in microseconds to seconds. Models are registered per
//     pair because that is what a closed form is: RegisterModel.
//
//   - The exact tier builds the real scheme (wear.Scheme), wires it to a
//     simulated pcm.Bank through wear.Controller, and runs the real
//     attack write by write (accelerated bit-identically by the
//     registered exactsim fast path). Schemes declare the capability with
//     SchemeCaps.Exact; attacks with AttackCaps.Exact.
//
// Capability flags gate composition before any simulation state is
// built: an exact-tier attack against a model-only scheme, or a timing
// attack against a scheme with no timing channel, is rejected by
// CompatibleExact with an error naming the missing capability.
//
// Registration contract: names are non-empty, contain no '/', ',' or
// whitespace (they appear in cell IDs, CSV rows and checkpoint paths),
// and are registered exactly once — a duplicate registration panics at
// init time, because two packages claiming one name is a programming
// error no run should paper over.
package registry

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"securityrbsg/internal/lifetime"
	"securityrbsg/internal/pcm"
	"securityrbsg/internal/wear"
)

// Config is the declarative cell configuration every plugin consumes: the
// device geometry, the scheme knobs (sub-regions, intervals, security
// level) and the attacker's budget. Zero fields mean "use the plugin's
// recommended default" — each scheme's Defaults hook fills them in, so a
// tournament cell can be as small as (lines, endurance, seed).
type Config struct {
	// Lines is the logical line count N (schemes require a power of two).
	Lines uint64
	// Endurance is the per-line write endurance E.
	Endurance uint64
	// Timing is the device timing; the zero value means pcm.DefaultTiming.
	Timing pcm.Timing

	// Regions is the sub-region count R (0 = scheme default).
	Regions uint64
	// InnerInterval is the inner remapping interval ψ_i — for single-level
	// schemes, the only interval (0 = scheme default).
	InnerInterval uint64
	// OuterInterval is the outer remapping interval ψ_o (0 = scheme
	// default; ignored by single-level schemes).
	OuterInterval uint64
	// Stages is the DFN stage count — the paper's adjustable security
	// level (0 = scheme default).
	Stages int

	// Seed derives all randomness: scheme keys and any attack RNG.
	Seed uint64
	// Runs is the number of random-key trials model-tier Monte-Carlo
	// estimators average (0 = 1).
	Runs int

	// MaxWrites is the attacker's write budget on the exact tier
	// (0 = unbounded; attacks that never succeed impose their own bound).
	MaxWrites uint64
	// Workers caps the parallelism of accelerated sweep kernels
	// (0 = GOMAXPROCS). Grid harnesses that already shard cells across
	// workers should pass 1.
	Workers int
}

// timing returns the configured device timing, defaulting to the paper's.
func (c Config) timing() pcm.Timing {
	if c.Timing == (pcm.Timing{}) {
		return pcm.DefaultTiming
	}
	return c.Timing
}

// Device returns the lifetime-model device for this configuration.
func (c Config) Device() lifetime.Device {
	return lifetime.Device{Lines: c.Lines, Endurance: c.Endurance, Timing: c.timing()}
}

// runs returns the trial count, at least 1.
func (c Config) runs() int {
	if c.Runs <= 0 {
		return 1
	}
	return c.Runs
}

// SchemeCaps are a scheme plugin's declared capabilities.
type SchemeCaps struct {
	// Exact: New builds a real wear.Scheme for write-by-write simulation.
	// Model-only schemes (closed forms with no implementation in tree)
	// leave it false and are rejected from exact-tier cells.
	Exact bool
	// TimingOracle: the scheme performs remapping movements whose latency
	// is visible on the triggering request — the side channel the
	// Remapping Timing Attack needs. The passthrough baseline never
	// remaps, so it has no channel to attack.
	TimingOracle bool
	// AdjustableLevel: instances support live security-level transitions
	// (core.Scheme.SetStages-style, applied at remap-round boundaries),
	// so the adaptive controller (internal/seclevel) can drive them.
	// Requires Exact — a level only a model could hold has nothing to
	// adjust.
	AdjustableLevel bool
}

// Scheme is a named wear-leveling scheme plugin.
type Scheme struct {
	// Name is the registry key, e.g. "security-rbsg".
	Name string
	// Doc is a one-line description for listings.
	Doc string
	// Caps declare what the scheme supports.
	Caps SchemeCaps
	// Defaults fills zero Config fields with the scheme's recommended
	// configuration at the given geometry (optional).
	Defaults func(cfg Config) Config
	// New builds the scheme instance. Required when Caps.Exact.
	New func(cfg Config) (wear.Scheme, error)
}

// AttackCaps are an attack plugin's declared capabilities and needs.
type AttackCaps struct {
	// Exact: RunExact drives the real attack against a wear.Controller.
	Exact bool
	// NeedsTimingOracle: the attack reads mapping secrets out of
	// per-request latency and requires SchemeCaps.TimingOracle.
	NeedsTimingOracle bool
	// NeedsSchemeOracle: the attack assumes insider knowledge of the
	// current logical→physical mapping (the paper's Address Inference
	// adversary) and queries the scheme instance directly.
	NeedsSchemeOracle bool
	// ExactTargets, when non-empty, names the only schemes this attack's
	// shadow model is wired for; other pairings are rejected. Attacks
	// with generic write streams (RAA, BPA) leave it empty.
	ExactTargets []string
}

// Attack is a named attack plugin.
type Attack struct {
	// Name is the registry key, e.g. "rta".
	Name string
	// Doc is a one-line description for listings.
	Doc string
	// Caps declare what the attack needs from its target.
	Caps AttackCaps
	// Prepare adjusts the resolved configuration for this attack —
	// raising endurance to the attack's documented minimum, bounding an
	// otherwise non-terminating budget — or rejects the geometry with an
	// error before any simulation state is built (optional).
	Prepare func(s *Scheme, cfg Config) (Config, error)
	// RunExact executes the attack against env. Required when Caps.Exact.
	RunExact func(env *Env) (Result, error)
}

// ModelFunc evaluates a (scheme, attack) pair's closed-form or
// Monte-Carlo lifetime model at the configured geometry.
type ModelFunc func(cfg Config) (lifetime.Estimate, error)

// Target is the attacker's view of memory, identical to attack.Target
// (declared here so the registry does not import the attack package it
// is registered from): logical reads and writes with observed latency.
type Target interface {
	Write(la uint64, content pcm.Content) uint64
	Read(la uint64) (pcm.Content, uint64)
}

// Accelerator wraps a controller in an accelerated attack target (the
// exact-simulation fast path); workers caps its internal parallelism.
type Accelerator func(c *wear.Controller, workers int) Target

// Registry holds named scheme, attack and model plugins. The zero value
// is not usable; use New. Registration is expected at init() time but is
// safe concurrently; lookups may run from many goroutines.
type Registry struct {
	mu      sync.RWMutex
	schemes map[string]*Scheme
	attacks map[string]*Attack
	models  map[string]ModelFunc // keyed "scheme/attack"
	accel   Accelerator
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		schemes: map[string]*Scheme{},
		attacks: map[string]*Attack{},
		models:  map[string]ModelFunc{},
	}
}

// Default is the process-wide registry every in-tree plugin registers
// into (importing securityrbsg/internal/plugins pulls them all in).
var Default = New()

// checkName panics unless name is usable as a registry key.
func checkName(kind, name string) {
	if name == "" || strings.ContainsAny(name, "/, \t\n") {
		panic(fmt.Sprintf("registry: invalid %s name %q (must be non-empty, no '/', ',' or whitespace)", kind, name))
	}
}

// RegisterScheme adds s, panicking on an invalid or duplicate name or a
// capability/constructor mismatch.
func (r *Registry) RegisterScheme(s Scheme) {
	checkName("scheme", s.Name)
	if s.Caps.Exact && s.New == nil {
		panic(fmt.Sprintf("registry: scheme %q declares Exact but has no constructor", s.Name))
	}
	if !s.Caps.Exact && s.New != nil {
		panic(fmt.Sprintf("registry: scheme %q has a constructor but does not declare Exact", s.Name))
	}
	if s.Caps.AdjustableLevel && !s.Caps.Exact {
		panic(fmt.Sprintf("registry: scheme %q declares AdjustableLevel without Exact (nothing to adjust)", s.Name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.schemes[s.Name]; dup {
		panic(fmt.Sprintf("registry: duplicate scheme registration %q", s.Name))
	}
	r.schemes[s.Name] = &s
}

// RegisterAttack adds a, panicking on an invalid or duplicate name or a
// capability/runner mismatch.
func (r *Registry) RegisterAttack(a Attack) {
	checkName("attack", a.Name)
	if a.Caps.Exact && a.RunExact == nil {
		panic(fmt.Sprintf("registry: attack %q declares Exact but has no runner", a.Name))
	}
	if !a.Caps.Exact && a.RunExact != nil {
		panic(fmt.Sprintf("registry: attack %q has a runner but does not declare Exact", a.Name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.attacks[a.Name]; dup {
		panic(fmt.Sprintf("registry: duplicate attack registration %q", a.Name))
	}
	r.attacks[a.Name] = &a
}

// RegisterModel adds the model for one (scheme, attack) pair, panicking
// on a duplicate. The names need not be registered yet — models and
// implementations live in different packages and init order between them
// is not fixed — but lookups through EvalModel require both.
func (r *Registry) RegisterModel(scheme, attack string, fn ModelFunc) {
	checkName("scheme", scheme)
	checkName("attack", attack)
	if fn == nil {
		panic(fmt.Sprintf("registry: nil model for %s/%s", scheme, attack))
	}
	key := scheme + "/" + attack
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.models[key]; dup {
		panic(fmt.Sprintf("registry: duplicate model registration %s", key))
	}
	r.models[key] = fn
}

// RegisterAccelerator installs the exact-tier target accelerator,
// panicking if one is already installed.
func (r *Registry) RegisterAccelerator(fn Accelerator) {
	if fn == nil {
		panic("registry: nil accelerator")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.accel != nil {
		panic("registry: duplicate accelerator registration")
	}
	r.accel = fn
}

// Scheme resolves a scheme by name; the error lists what is registered.
func (r *Registry) Scheme(name string) (*Scheme, error) {
	r.mu.RLock()
	s, ok := r.schemes[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("registry: unknown scheme %q (registered: %s)",
			name, strings.Join(r.SchemeNames(), ", "))
	}
	return s, nil
}

// Attack resolves an attack by name; the error lists what is registered.
func (r *Registry) Attack(name string) (*Attack, error) {
	r.mu.RLock()
	a, ok := r.attacks[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("registry: unknown attack %q (registered: %s)",
			name, strings.Join(r.AttackNames(), ", "))
	}
	return a, nil
}

// SchemeNames lists registered schemes in sorted order.
func (r *Registry) SchemeNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.schemes))
	for n := range r.schemes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AttackNames lists registered attacks in sorted order.
func (r *Registry) AttackNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.attacks))
	for n := range r.attacks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ModelPairs lists "scheme/attack" keys with registered models, sorted.
func (r *Registry) ModelPairs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	pairs := make([]string, 0, len(r.models))
	for k := range r.models {
		pairs = append(pairs, k)
	}
	sort.Strings(pairs)
	return pairs
}

// Model returns the registered model for the pair, if any.
func (r *Registry) Model(scheme, attack string) (ModelFunc, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.models[scheme+"/"+attack]
	return fn, ok
}

// EvalModel resolves both names and evaluates the pair's model. Unknown
// names and unmodeled pairs return listable errors.
func (r *Registry) EvalModel(scheme, attack string, cfg Config) (lifetime.Estimate, error) {
	s, err := r.Scheme(scheme)
	if err != nil {
		return lifetime.Estimate{}, err
	}
	a, err := r.Attack(attack)
	if err != nil {
		return lifetime.Estimate{}, err
	}
	fn, ok := r.Model(s.Name, a.Name)
	if !ok {
		return lifetime.Estimate{}, fmt.Errorf("registry: no lifetime model for scheme %q under attack %q (modeled pairs: %s)",
			s.Name, a.Name, strings.Join(r.ModelPairs(), ", "))
	}
	if s.Defaults != nil {
		cfg = s.Defaults(cfg)
	}
	return fn(cfg)
}

// CompatibleExact reports whether attack a can run against scheme s on
// the exact tier. It is evaluated before any simulation state is built;
// a non-nil error names the missing capability.
func CompatibleExact(s *Scheme, a *Attack) error {
	if !a.Caps.Exact {
		return fmt.Errorf("registry: attack %q is model-only (no exact-tier runner)", a.Name)
	}
	if !s.Caps.Exact {
		return fmt.Errorf("registry: scheme %q is model-only; exact-tier attack %q rejected", s.Name, a.Name)
	}
	if a.Caps.NeedsTimingOracle && !s.Caps.TimingOracle {
		return fmt.Errorf("registry: attack %q needs a timing oracle but scheme %q exposes no remapping timing channel", a.Name, s.Name)
	}
	if len(a.Caps.ExactTargets) > 0 {
		for _, t := range a.Caps.ExactTargets {
			if t == s.Name {
				return nil
			}
		}
		return fmt.Errorf("registry: attack %q has no shadow model for scheme %q (wired for: %s)",
			a.Name, s.Name, strings.Join(a.Caps.ExactTargets, ", "))
	}
	return nil
}

// Package-level helpers delegating to Default — what plugin init()
// functions call.

// RegisterScheme registers into the Default registry.
func RegisterScheme(s Scheme) { Default.RegisterScheme(s) }

// RegisterAttack registers into the Default registry.
func RegisterAttack(a Attack) { Default.RegisterAttack(a) }

// RegisterModel registers into the Default registry.
func RegisterModel(scheme, attack string, fn ModelFunc) { Default.RegisterModel(scheme, attack, fn) }

// RegisterAccelerator registers into the Default registry.
func RegisterAccelerator(fn Accelerator) { Default.RegisterAccelerator(fn) }

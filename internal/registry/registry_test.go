package registry

import (
	"strings"
	"testing"

	"securityrbsg/internal/lifetime"
	"securityrbsg/internal/pcm"
	"securityrbsg/internal/wear"
)

// passthroughScheme is a minimal valid exact-tier scheme registration.
func passthroughScheme(name string) Scheme {
	return Scheme{
		Name: name,
		Caps: SchemeCaps{Exact: true},
		New: func(cfg Config) (wear.Scheme, error) {
			return wear.NewPassthrough(cfg.Lines), nil
		},
	}
}

// hammerAttack is a minimal valid exact-tier attack: write one address
// until the bank fails.
func hammerAttack(name string) Attack {
	return Attack{
		Name: name,
		Caps: AttackCaps{Exact: true},
		RunExact: func(env *Env) (Result, error) {
			var r Result
			for !env.Controller.Bank().Failed() {
				r.AttackNs += env.Target.Write(0, pcm.Mixed)
				r.Writes++
			}
			r.Failed = true
			r.FailedPA, _, _ = env.Controller.Bank().FirstFailure()
			return r, nil
		},
	}
}

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic (want one containing %q)", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v, want one containing %q", r, want)
		}
	}()
	fn()
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := New()
	r.RegisterScheme(passthroughScheme("s"))
	mustPanic(t, `duplicate scheme registration "s"`, func() {
		r.RegisterScheme(passthroughScheme("s"))
	})
	r.RegisterAttack(hammerAttack("a"))
	mustPanic(t, `duplicate attack registration "a"`, func() {
		r.RegisterAttack(hammerAttack("a"))
	})
	model := func(cfg Config) (lifetime.Estimate, error) {
		return lifetime.Baseline(cfg.Device()), nil
	}
	r.RegisterModel("s", "a", model)
	mustPanic(t, "duplicate model registration s/a", func() {
		r.RegisterModel("s", "a", model)
	})
	accel := func(c *wear.Controller, workers int) Target { return c }
	r.RegisterAccelerator(accel)
	mustPanic(t, "duplicate accelerator registration", func() {
		r.RegisterAccelerator(accel)
	})
}

func TestInvalidNamesPanic(t *testing.T) {
	r := New()
	for _, bad := range []string{"", "a/b", "a,b", "a b", "a\tb"} {
		mustPanic(t, "invalid scheme name", func() {
			r.RegisterScheme(passthroughScheme(bad))
		})
	}
}

func TestCapabilityConstructorMismatchPanics(t *testing.T) {
	r := New()
	mustPanic(t, "declares Exact but has no constructor", func() {
		r.RegisterScheme(Scheme{Name: "x", Caps: SchemeCaps{Exact: true}})
	})
	mustPanic(t, "has a constructor but does not declare Exact", func() {
		s := passthroughScheme("x")
		s.Caps.Exact = false
		r.RegisterScheme(s)
	})
	mustPanic(t, "declares Exact but has no runner", func() {
		r.RegisterAttack(Attack{Name: "y", Caps: AttackCaps{Exact: true}})
	})
	mustPanic(t, "has a runner but does not declare Exact", func() {
		a := hammerAttack("y")
		a.Caps.Exact = false
		r.RegisterAttack(a)
	})
	mustPanic(t, "nil model", func() { r.RegisterModel("s", "a", nil) })
	mustPanic(t, "nil accelerator", func() { r.RegisterAccelerator(nil) })
}

func TestAdjustableLevelRequiresExact(t *testing.T) {
	r := New()
	mustPanic(t, "declares AdjustableLevel without Exact", func() {
		r.RegisterScheme(Scheme{
			Name: "model-only-adjustable",
			Caps: SchemeCaps{AdjustableLevel: true},
		})
	})
	// The flag composes fine with Exact.
	s := passthroughScheme("adjustable")
	s.Caps.AdjustableLevel = true
	r.RegisterScheme(s)
	got, err := r.Scheme("adjustable")
	if err != nil || !got.Caps.AdjustableLevel {
		t.Fatalf("registered adjustable scheme lost its capability: %+v, %v", got, err)
	}
}

func TestUnknownNamesReturnListableErrors(t *testing.T) {
	r := New()
	r.RegisterScheme(passthroughScheme("alpha"))
	r.RegisterScheme(passthroughScheme("beta"))
	r.RegisterAttack(hammerAttack("hammer"))

	if _, err := r.Scheme("gamma"); err == nil ||
		!strings.Contains(err.Error(), "registered: alpha, beta") {
		t.Fatalf("scheme error not listable: %v", err)
	}
	if _, err := r.Attack("nope"); err == nil ||
		!strings.Contains(err.Error(), "registered: hammer") {
		t.Fatalf("attack error not listable: %v", err)
	}
	// EvalModel on an unmodeled (but registered) pair lists modeled pairs.
	r.RegisterModel("alpha", "hammer", func(cfg Config) (lifetime.Estimate, error) {
		return lifetime.Baseline(cfg.Device()), nil
	})
	if _, err := r.EvalModel("beta", "hammer", Config{Lines: 8, Endurance: 10}); err == nil ||
		!strings.Contains(err.Error(), "modeled pairs: alpha/hammer") {
		t.Fatalf("model error not listable: %v", err)
	}
	// Unknown names propagate through the composing entry points too.
	if _, err := r.EvalModel("gamma", "hammer", Config{}); err == nil ||
		!strings.Contains(err.Error(), `unknown scheme "gamma"`) {
		t.Fatalf("EvalModel scheme error: %v", err)
	}
	if _, err := r.RunExact("gamma", "hammer", Config{Lines: 8, Endurance: 10}); err == nil ||
		!strings.Contains(err.Error(), `unknown scheme "gamma"`) {
		t.Fatalf("RunExact scheme error: %v", err)
	}
}

func TestCompatibleExactGates(t *testing.T) {
	exact := passthroughScheme("exact-scheme")
	modelOnly := Scheme{Name: "model-only"}
	timing := hammerAttack("timing")
	timing.Caps.NeedsTimingOracle = true
	wired := hammerAttack("wired")
	wired.Caps.ExactTargets = []string{"other"}
	modelAttack := Attack{Name: "paper-only"}

	cases := []struct {
		s    *Scheme
		a    *Attack
		want string
	}{
		{&exact, &modelAttack, "model-only (no exact-tier runner)"},
		{&modelOnly, ptrAttack(hammerAttack("h")), `scheme "model-only" is model-only`},
		{&exact, &timing, "needs a timing oracle"},
		{&exact, &wired, "no shadow model"},
	}
	for _, c := range cases {
		err := CompatibleExact(c.s, c.a)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("CompatibleExact(%s, %s) = %v, want error containing %q",
				c.s.Name, c.a.Name, err, c.want)
		}
	}
	if err := CompatibleExact(&exact, ptrAttack(hammerAttack("h"))); err != nil {
		t.Fatalf("compatible pair rejected: %v", err)
	}
}

func ptrAttack(a Attack) *Attack { return &a }

// TestMismatchRejectedBeforeSimulation: a capability-gated pairing must
// be rejected before the scheme constructor (i.e. any simulation state)
// runs.
func TestMismatchRejectedBeforeSimulation(t *testing.T) {
	r := New()
	built := false
	s := passthroughScheme("plain")
	inner := s.New
	s.New = func(cfg Config) (wear.Scheme, error) {
		built = true
		return inner(cfg)
	}
	r.RegisterScheme(s)
	timing := hammerAttack("timing")
	timing.Caps.NeedsTimingOracle = true
	r.RegisterAttack(timing)

	if _, err := r.RunExact("plain", "timing", Config{Lines: 8, Endurance: 5}); err == nil {
		t.Fatal("incompatible pairing accepted")
	}
	if built {
		t.Fatal("scheme constructor ran for a rejected pairing")
	}
}

func TestRunExactValidatesGeometry(t *testing.T) {
	r := New()
	r.RegisterScheme(passthroughScheme("s"))
	r.RegisterAttack(hammerAttack("a"))
	if _, err := r.RunExact("s", "a", Config{Lines: 3, Endurance: 5}); err == nil ||
		!strings.Contains(err.Error(), "power of two") {
		t.Fatalf("non-power-of-two lines: %v", err)
	}
	if _, err := r.RunExact("s", "a", Config{Lines: 8}); err == nil ||
		!strings.Contains(err.Error(), "endurance") {
		t.Fatalf("zero endurance: %v", err)
	}
}

func TestRunExactEndToEnd(t *testing.T) {
	r := New()
	r.RegisterScheme(passthroughScheme("s"))
	r.RegisterAttack(hammerAttack("a"))
	out, err := r.RunExact("s", "a", Config{Lines: 8, Endurance: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Result.Failed || out.Result.Writes != 6 {
		t.Fatalf("hammering a passthrough: %+v", out.Result)
	}
	m := out.Metrics()
	if m["defense_held"] != 0 || m["writes"] != 6 {
		t.Fatalf("metrics: %v", m)
	}
	// All wear on one of 8 lines: Gini = (n-1)/n.
	if g := m["wear_gini"]; g < 0.87 || g > 0.88 {
		t.Fatalf("wear gini %v, want 7/8", g)
	}
	if _, ok := m["first_alarm_write"]; ok {
		t.Fatal("passthrough must not report a defender-side alarm")
	}
}

// TestBuiltinNone: the registry self-registers the baseline scheme.
func TestBuiltinNone(t *testing.T) {
	s, err := Default.Scheme("none")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Caps.Exact || s.Caps.TimingOracle {
		t.Fatalf("none caps: %+v", s.Caps)
	}
}

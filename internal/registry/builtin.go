package registry

import "securityrbsg/internal/wear"

// The "none" baseline registers here rather than in internal/wear:
// wear is below the registry in the import graph (the registry's Env and
// Accelerator are built from wear types), so it cannot import the
// registry the way the scheme packages do.
func init() {
	RegisterScheme(Scheme{
		Name: "none",
		Doc:  "identity mapping, no wear leveling — the paper's baseline",
		// Never remaps, so there is no remapping-latency side channel for
		// timing attacks to read.
		Caps: SchemeCaps{Exact: true, TimingOracle: false},
		New: func(cfg Config) (wear.Scheme, error) {
			return wear.NewPassthrough(cfg.Lines), nil
		},
	})
}

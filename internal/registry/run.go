package registry

import (
	"fmt"

	"securityrbsg/internal/lifetime"
	"securityrbsg/internal/pcm"
	"securityrbsg/internal/stats"
	"securityrbsg/internal/wear"
)

// Env is everything an exact-tier attack runner receives: the resolved
// cell configuration, the plugin descriptors, the live scheme instance
// wired to a simulated bank, and the attacker-facing target (the
// registered accelerator's wrapper when one is installed, else the
// controller itself).
type Env struct {
	Cfg        Config
	Scheme     *Scheme
	Attack     *Attack
	Instance   wear.Scheme
	Controller *wear.Controller
	Target     Target
}

// Result is an exact-tier attack outcome as the adapter reports it.
type Result struct {
	// Writes is the number of demand writes the attacker issued.
	Writes uint64
	// AttackNs is the attacker-observed elapsed time.
	AttackNs uint64
	// Failed reports whether the attacker wore a line past endurance;
	// FailedPA is that line.
	Failed   bool
	FailedPA uint64
	// Aborted reports that the attack gave up — budget exhausted or its
	// shadow model broke down against this scheme — without failing a
	// line: the defense held. Note records why.
	Aborted bool
	Note    string
	// Phase accounting, where the attack distinguishes phases (zero
	// otherwise). DetectWrites is the attacker-side detection latency:
	// writes spent aligning with and extracting the scheme's mapping
	// secrets before targeted wear-out could begin.
	AlignWrites  uint64
	DetectWrites uint64
	WearWrites   uint64
}

// AlarmReporter is an optional wear.Scheme capability: a scheme with an
// online attack detector reports the index (in demand writes since boot)
// of the write that raised its first alarm — the defender-side detection
// latency.
type AlarmReporter interface {
	FirstAlarmWrite() (write uint64, ok bool)
}

// ExactOutcome is one exact-tier cell's full result: the attack outcome,
// the controller's closing statistics, and the derived per-cell metrics.
type ExactOutcome struct {
	SchemeName, AttackName string
	// Cfg is the fully resolved configuration the cell actually ran
	// (scheme defaults and attack preparation applied).
	Cfg    Config
	Result Result
	Stats  wear.Stats
	// WearGini is the Gini coefficient of the bank's closing wear
	// distribution: 0 = perfectly even leveling, →1 = all wear on one
	// line.
	WearGini float64
	// FirstAlarmWrite is the defender-side detection latency, when the
	// scheme carries an online detector that alarmed (FirstAlarmOK).
	FirstAlarmWrite uint64
	FirstAlarmOK    bool
}

// Metrics flattens the outcome into the per-cell metric map the runner
// records: everything deterministic, nothing wall-clock.
func (o *ExactOutcome) Metrics() map[string]float64 {
	d := o.Cfg.Device()
	m := map[string]float64{
		"writes":       float64(o.Result.Writes),
		"seconds":      float64(o.Result.AttackNs) * 1e-9,
		"fraction":     float64(o.Result.Writes) / d.IdealWrites(),
		"defense_held": 0,
		"detect_writes": float64(o.Result.AlignWrites +
			o.Result.DetectWrites),
		"wear_gini": o.WearGini,
		"max_wear":  float64(o.Stats.MaxWear),
		"endurance": float64(o.Cfg.Endurance),
	}
	if !o.Result.Failed {
		m["defense_held"] = 1
	}
	if o.FirstAlarmOK {
		m["first_alarm_write"] = float64(o.FirstAlarmWrite)
	}
	return m
}

// Device returns the lifetime-model device of the resolved configuration.
func (o *ExactOutcome) Device() lifetime.Device { return o.Cfg.Device() }

// RunExact composes and runs one exact-tier cell: resolve both plugins,
// gate on capabilities (before any simulation state exists), resolve the
// configuration (scheme defaults, then attack preparation), build the
// scheme on a fresh simulated bank, wrap it in the registered accelerator
// and execute the attack.
func (r *Registry) RunExact(scheme, attack string, cfg Config) (*ExactOutcome, error) {
	s, err := r.Scheme(scheme)
	if err != nil {
		return nil, err
	}
	a, err := r.Attack(attack)
	if err != nil {
		return nil, err
	}
	if err := CompatibleExact(s, a); err != nil {
		return nil, err
	}
	if cfg.Lines == 0 || cfg.Lines&(cfg.Lines-1) != 0 {
		return nil, fmt.Errorf("registry: lines must be a power of two, got %d", cfg.Lines)
	}
	if cfg.Endurance == 0 {
		return nil, fmt.Errorf("registry: endurance must be positive")
	}
	if s.Defaults != nil {
		cfg = s.Defaults(cfg)
	}
	if a.Prepare != nil {
		cfg, err = a.Prepare(s, cfg)
		if err != nil {
			return nil, fmt.Errorf("registry: %s vs %s: %w", a.Name, s.Name, err)
		}
	}

	inst, err := s.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("registry: scheme %s: %w", s.Name, err)
	}
	ctrl, err := wear.NewController(pcm.Config{
		LineBytes: 256, Endurance: cfg.Endurance, Timing: cfg.timing(),
	}, inst)
	if err != nil {
		return nil, fmt.Errorf("registry: scheme %s: %w", s.Name, err)
	}

	env := &Env{Cfg: cfg, Scheme: s, Attack: a, Instance: inst, Controller: ctrl, Target: ctrl}
	r.mu.RLock()
	accel := r.accel
	r.mu.RUnlock()
	if accel != nil {
		env.Target = accel(ctrl, cfg.Workers)
	}

	res, err := a.RunExact(env)
	if err != nil {
		return nil, fmt.Errorf("registry: %s vs %s: %w", a.Name, s.Name, err)
	}
	if !res.Failed && !res.Aborted {
		return nil, fmt.Errorf("registry: %s vs %s: attack finished after %d writes with no failure and no abort",
			a.Name, s.Name, res.Writes)
	}

	out := &ExactOutcome{
		SchemeName: s.Name, AttackName: a.Name,
		Cfg: cfg, Result: res,
		Stats:    ctrl.Stats(),
		WearGini: stats.Gini(ctrl.Bank().WearCounts()),
	}
	if ar, ok := inst.(AlarmReporter); ok {
		out.FirstAlarmWrite, out.FirstAlarmOK = ar.FirstAlarmWrite()
	}
	return out, nil
}

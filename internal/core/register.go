package core

import (
	"securityrbsg/internal/registry"
	"securityrbsg/internal/wear"
)

// The registry entry for Security RBSG, the paper's contribution. The
// defaults are the paper's suggested configuration (512 sub-regions,
// ψ_i=64, ψ_o=128, 7 DFN stages), with the region count scaled down on
// small tournament geometries so each inner Start-Gap region keeps at
// least 16 lines.
func init() {
	registry.RegisterScheme(registry.Scheme{
		Name: "security-rbsg",
		Doc:  "Security RBSG: dynamic Feistel outer mapping + per-region Start-Gap",
		Caps: registry.SchemeCaps{Exact: true, TimingOracle: true},
		Defaults: func(cfg registry.Config) registry.Config {
			if cfg.Regions == 0 {
				cfg.Regions = 512
				for cfg.Regions > 1 && cfg.Lines/cfg.Regions < 16 {
					cfg.Regions /= 2
				}
			}
			if cfg.InnerInterval == 0 {
				cfg.InnerInterval = 64
			}
			if cfg.OuterInterval == 0 {
				cfg.OuterInterval = 128
			}
			if cfg.Stages == 0 {
				cfg.Stages = 7
			}
			return cfg
		},
		New: func(cfg registry.Config) (wear.Scheme, error) {
			return New(Config{
				Lines: cfg.Lines, Regions: cfg.Regions,
				InnerInterval: cfg.InnerInterval, OuterInterval: cfg.OuterInterval,
				Stages: cfg.Stages, Seed: cfg.Seed,
			})
		},
	})
}

package core

import (
	"testing"
	"testing/quick"

	"securityrbsg/internal/schemetest"
	"securityrbsg/internal/wear"
)

// TestRandomConfigsStayConsistent fuzzes the configuration space: any
// valid (lines, regions, intervals, stages, migration, seed) combination
// must keep the mapping/data invariant through several remapping rounds.
func TestRandomConfigsStayConsistent(t *testing.T) {
	f := func(linesExp, regionExp uint8, inner, outer uint8, stages uint8, mig bool, seed uint64) bool {
		le := 6 + uint(linesExp)%5 // 64..1024 lines
		re := uint(regionExp) % 4  // 1..8 regions
		if re > le-2 {
			re = le - 2
		}
		cfg := Config{
			Lines:         1 << le,
			Regions:       1 << re,
			InnerInterval: uint64(inner)%7 + 1,
			OuterInterval: uint64(outer)%9 + 1,
			Stages:        int(stages)%9 + 1,
			Seed:          seed,
		}
		if mig {
			cfg.Migration = MigrationMove
		}
		s, err := New(cfg)
		if err != nil {
			t.Logf("config rejected: %+v: %v", cfg, err)
			return false
		}
		// Enough writes for ≥2 outer rounds.
		writes := int(2 * (cfg.Lines + 40) * cfg.OuterInterval)
		if writes > 400000 {
			writes = 400000
		}
		if _, err := schemetest.ExerciseHammer(s, seed%cfg.Lines, writes, writes/16+1); err != nil {
			t.Logf("config %+v: %v", cfg, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestIntermediateAlwaysBijective: sampled mid-round states keep the
// LA→IA map injective (quick samples random write counts).
func TestIntermediateAlwaysBijective(t *testing.T) {
	s := small(t, 21)
	m := schemetest.NewTokenMover(s)
	f := func(burst uint16) bool {
		for i := 0; i < int(burst)%512; i++ {
			s.NoteWrite(uint64(i)%256, m)
		}
		return wear.CheckBijection(s) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestKeysActuallyRotate: each completed round installs a fresh
// permutation (sampled by comparing a few translations across rounds).
func TestKeysActuallyRotate(t *testing.T) {
	s := small(t, 22)
	m := schemetest.NewTokenMover(s)
	snapshots := make([][8]uint64, 0, 5)
	for len(snapshots) < 5 {
		r := s.Rounds()
		for s.Rounds() == r {
			s.NoteWrite(1, m)
		}
		var snap [8]uint64
		for i := range snap {
			snap[i] = s.Intermediate(uint64(i * 31))
		}
		snapshots = append(snapshots, snap)
	}
	for i := 1; i < len(snapshots); i++ {
		if snapshots[i] == snapshots[i-1] {
			t.Fatalf("rounds %d and %d share an identical sampled mapping", i-1, i)
		}
	}
}

package core

import (
	"testing"

	"securityrbsg/internal/pcm"
	"securityrbsg/internal/schemetest"
	"securityrbsg/internal/wear"
)

func small(t *testing.T, seed uint64) *Scheme {
	t.Helper()
	return MustNew(Config{
		Lines: 256, Regions: 8, InnerInterval: 3,
		OuterInterval: 5, Stages: 4, Seed: seed,
	})
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{Lines: 100, Regions: 4, InnerInterval: 1, OuterInterval: 1, Stages: 3},
		{Lines: 256, Regions: 7, InnerInterval: 1, OuterInterval: 1, Stages: 3},
		{Lines: 256, Regions: 8, InnerInterval: 0, OuterInterval: 1, Stages: 3},
		{Lines: 256, Regions: 8, InnerInterval: 1, OuterInterval: 0, Stages: 3},
		{Lines: 256, Regions: 8, InnerInterval: 1, OuterInterval: 1, Stages: 0},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("case %d should fail: %+v", i, c)
		}
	}
}

func TestMetadata(t *testing.T) {
	s := small(t, 1)
	if s.Name() != "security-rbsg" {
		t.Fatal("name")
	}
	if s.LogicalLines() != 256 {
		t.Fatal("logical lines")
	}
	// 8 regions × (32+1); the default swap migration needs no outer spare.
	if s.PhysicalLines() != 8*33 {
		t.Fatalf("physical lines = %d", s.PhysicalLines())
	}
	if s.LinesPerRegion() != 32 {
		t.Fatal("lines per region")
	}
}

func TestSuggestedConfig(t *testing.T) {
	c := SuggestedConfig(1 << 22)
	if c.Regions != 512 || c.InnerInterval != 64 || c.OuterInterval != 128 || c.Stages != 7 {
		t.Fatalf("suggested config drifted: %+v", c)
	}
}

func TestInitialBijection(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		if err := wear.CheckBijection(small(t, seed)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDataIntegrityAcrossRounds is the decisive test for the multi-cycle
// remapping walk: drive enough traffic for several complete DFN rounds
// (where the paper's Fig 9 as written would corrupt off-cycle lines) and
// verify after every remapping movement that every logical address still
// resolves to the line holding its data.
func TestDataIntegrityAcrossRounds(t *testing.T) {
	s := small(t, 2)
	// One outer round ≈ (N + cycles) × ψo ≈ 261×5 writes; run ~8 rounds.
	writes := 8 * 270 * 5
	if _, err := schemetest.Exercise(s, writes, 1, 3); err != nil {
		t.Fatal(err)
	}
	if s.Rounds() < 6 {
		t.Fatalf("only %d rounds completed — the test exercised too little", s.Rounds())
	}
}

func TestDataIntegrityUnderHammer(t *testing.T) {
	s := small(t, 4)
	if _, err := schemetest.ExerciseHammer(s, 77, 8*270*5, 1); err != nil {
		t.Fatal(err)
	}
}

func TestBijectionAfterEveryMove(t *testing.T) {
	s := small(t, 5)
	m := schemetest.NewTokenMover(s)
	for i := 0; i < 3000; i++ {
		s.NoteWrite(uint64(i)%256, m)
		if i%7 == 0 {
			if err := wear.CheckBijection(s); err != nil {
				t.Fatalf("after write %d: %v", i+1, err)
			}
		}
	}
}

// TestDynamicMapping is the defense property: unlike RBSG's static
// randomizer, the LA→IA mapping changes every remapping round.
func TestDynamicMapping(t *testing.T) {
	s := small(t, 6)
	before := make([]uint64, 256)
	for la := range before {
		before[la] = s.Intermediate(uint64(la))
	}
	m := schemetest.NewTokenMover(s)
	rounds := s.Rounds()
	for s.Rounds() < rounds+2 { // run two full rounds
		s.NoteWrite(0, m)
	}
	changed := 0
	for la := range before {
		if s.Intermediate(uint64(la)) != before[la] {
			changed++
		}
	}
	if changed < 200 {
		t.Fatalf("only %d/256 intermediate addresses changed after re-keying", changed)
	}
	if err := schemetest.Verify(s, m); err != nil {
		t.Fatal(err)
	}
}

// TestAdjacencyRerandomized: the relation the RTA recovers against RBSG —
// "which LA is physically adjacent to Li" — does not survive a DFN round.
func TestAdjacencyRerandomized(t *testing.T) {
	s := small(t, 7)
	adjacent := func() map[uint64]uint64 {
		inv := make(map[uint64]uint64, 256)
		for la := uint64(0); la < 256; la++ {
			inv[s.Intermediate(la)] = la
		}
		adj := make(map[uint64]uint64, 256)
		for la := uint64(0); la < 256; la++ {
			ia := s.Intermediate(la)
			if prev, ok := inv[ia-1]; ok && ia%32 != 0 {
				adj[la] = prev
			}
		}
		return adj
	}
	before := adjacent()
	m := schemetest.NewTokenMover(s)
	rounds := s.Rounds()
	for s.Rounds() < rounds+2 {
		s.NoteWrite(1, m)
	}
	after := adjacent()
	stable := 0
	for la, p := range before {
		if after[la] == p {
			stable++
		}
	}
	if stable > 30 {
		t.Fatalf("%d/~240 adjacency pairs survived re-keying — RTA would still work", stable)
	}
}

func TestRoundsAndMoves(t *testing.T) {
	s := small(t, 8) // default MigrationSwap: N − C swaps per round
	m := schemetest.NewTokenMover(s)
	for s.Rounds() < 1 {
		s.NoteWrite(0, m)
	}
	// N − C swaps plus the final free-close event.
	if s.Moves()+s.Cycles() != 257 {
		t.Fatalf("swap walk: %d moves + %d cycles, want N+1=257", s.Moves(), s.Cycles())
	}
	if s.WritesPerRound() != (256+1)*5 {
		t.Fatalf("WritesPerRound = %d", s.WritesPerRound())
	}

	mv := MustNew(Config{
		Lines: 256, Regions: 8, InnerInterval: 3,
		OuterInterval: 5, Stages: 4, Migration: MigrationMove, Seed: 8,
	})
	m2 := schemetest.NewTokenMover(mv)
	for mv.Rounds() < 1 {
		mv.NoteWrite(0, m2)
	}
	// The paper's walk costs N moves plus one extra per cycle.
	if mv.Moves() != 256+mv.Cycles() {
		t.Fatalf("move walk: %d moves with %d cycles, want N + cycles", mv.Moves(), mv.Cycles())
	}
}

// TestMigrationMoveIntegrity verifies the paper-faithful spare-line walk
// keeps the mapping/data invariant too.
func TestMigrationMoveIntegrity(t *testing.T) {
	s := MustNew(Config{
		Lines: 256, Regions: 8, InnerInterval: 3,
		OuterInterval: 5, Stages: 4, Migration: MigrationMove, Seed: 12,
	})
	if s.PhysicalLines() != 8*33+1 {
		t.Fatalf("move mode physical lines = %d, want one spare extra", s.PhysicalLines())
	}
	if _, err := schemetest.Exercise(s, 8*270*5, 1, 13); err != nil {
		t.Fatal(err)
	}
	if s.Rounds() < 6 {
		t.Fatalf("only %d rounds", s.Rounds())
	}
}

// TestCubingFeistelCycleConstant quantifies the pathology that motivates
// the swap migration: the key-change permutation of the paper's cubing
// Feistel decomposes into vastly more cycles than a random permutation
// (~ln N ≈ 5.5 for N=256), so the paper's spare line would absorb one
// write per cycle per round.
func TestCubingFeistelCycleConstant(t *testing.T) {
	s := small(t, 14)
	m := schemetest.NewTokenMover(s)
	for s.Rounds() < 10 {
		s.NoteWrite(0, m)
	}
	perRound := float64(s.Cycles()) / float64(s.Rounds())
	if perRound < 15 {
		t.Fatalf("cycles per round = %.1f — pathology gone? revisit the swap-walk rationale", perRound)
	}
	t.Logf("cycles per round: %.1f (random permutation would give ≈5.5)", perRound)
}

// TestSpareHotspotUnderMigrationMove demonstrates the hotspot on a real
// bank: the spare line's wear dwarfs the average line's.
func TestSpareHotspotUnderMigrationMove(t *testing.T) {
	s := MustNew(Config{
		Lines: 256, Regions: 8, InnerInterval: 3,
		OuterInterval: 5, Stages: 4, Migration: MigrationMove, Seed: 15,
	})
	c := wear.MustNewController(pcm.Config{
		LineBytes: 256, Endurance: 1 << 30, Timing: pcm.DefaultTiming,
	}, s)
	for s.Rounds() < 10 {
		c.Write(0, pcm.Mixed)
	}
	sparePA := s.PhysicalLines() - 1
	spare := c.Bank().Wear(sparePA)
	var sum uint64
	for pa := uint64(0); pa < sparePA; pa++ {
		sum += c.Bank().Wear(pa)
	}
	avg := sum / sparePA
	if spare < 5*avg {
		t.Fatalf("spare wear %d vs average %d — expected a pronounced hotspot", spare, avg)
	}
	t.Logf("spare line wear %d vs average line wear %d (%.0fx)", spare, avg, float64(spare)/float64(avg))
}

func TestOddWidthLines(t *testing.T) {
	s := MustNew(Config{
		Lines: 512, Regions: 8, InnerInterval: 2,
		OuterInterval: 3, Stages: 3, Seed: 9,
	})
	if err := wear.CheckBijection(s); err != nil {
		t.Fatal(err)
	}
	if _, err := schemetest.Exercise(s, 6*520*3, 11, 10); err != nil {
		t.Fatal(err)
	}
}

func TestTranslatePanicsOutOfRange(t *testing.T) {
	s := small(t, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Translate(256)
}

// TestInnerRegionsTickOnlyOnOwnWrites mirrors the RBSG region-isolation
// property at the inner level.
func TestInnerRegionsTickOnlyOnOwnWrites(t *testing.T) {
	s := small(t, 11)
	m := schemetest.NewTokenMover(s)
	la := uint64(9)
	// Hammer within less than one outer interval so the outer level never
	// moves and the IA stays fixed.
	region := int(s.Intermediate(la) / s.LinesPerRegion())
	var others uint64
	for i := 0; i < 8; i++ {
		if i != region {
			others += s.Region(i).Movements()
		}
	}
	for i := 0; i < 4; i++ { // 4 < ψo=5
		s.NoteWrite(la, m)
	}
	var after uint64
	for i := 0; i < 8; i++ {
		if i != region {
			after += s.Region(i).Movements()
		}
	}
	if after != others {
		t.Fatal("foreign inner regions moved")
	}
	if s.Region(region).Movements() != 1 { // 4 writes at ψi=3 → 1 movement
		t.Fatalf("own region moved %d times, want 1", s.Region(region).Movements())
	}
}

func BenchmarkTranslate(b *testing.B) {
	s := MustNew(Config{
		Lines: 1 << 16, Regions: 64, InnerInterval: 64,
		OuterInterval: 128, Stages: 7, Seed: 1,
	})
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Translate(uint64(i) & (1<<16 - 1))
	}
	_ = sink
}

func BenchmarkNoteWrite(b *testing.B) {
	s := MustNew(Config{
		Lines: 1 << 16, Regions: 64, InnerInterval: 64,
		OuterInterval: 128, Stages: 7, Seed: 1,
	})
	m := schemetest.NewTokenMover(s)
	for i := 0; i < b.N; i++ {
		s.NoteWrite(uint64(i)&(1<<16-1), m)
	}
}

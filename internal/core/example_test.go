package core_test

import (
	"fmt"

	"securityrbsg/internal/core"
	"securityrbsg/internal/pcm"
	"securityrbsg/internal/wear"
)

// Example shows the minimal Security RBSG setup: a scheme over a small
// logical space wired to a PCM bank through the controller.
func Example() {
	scheme, err := core.New(core.Config{
		Lines:         1 << 10,
		Regions:       8,
		InnerInterval: 16,
		OuterInterval: 32,
		Stages:        7,
		Seed:          1,
	})
	if err != nil {
		panic(err)
	}
	ctrl, err := wear.NewController(pcm.Config{
		LineBytes: 256,
		Endurance: 1_000_000,
	}, scheme)
	if err != nil {
		panic(err)
	}

	ns := ctrl.Write(42, pcm.Mixed)
	fmt.Printf("write took %d ns\n", ns)
	content, _ := ctrl.Read(42)
	fmt.Printf("read back %v\n", content)
	// Output:
	// write took 1000 ns
	// read back MIXED
}

// ExampleSuggestedConfig shows the paper's recommended 1 GB configuration.
func ExampleSuggestedConfig() {
	cfg := core.SuggestedConfig(1 << 22)
	fmt.Printf("regions=%d inner=%d outer=%d stages=%d\n",
		cfg.Regions, cfg.InnerInterval, cfg.OuterInterval, cfg.Stages)
	// Output:
	// regions=512 inner=64 outer=128 stages=7
}

// ExampleScheme_Translate demonstrates that the mapping is dynamic: after
// enough writes for a remapping round, logical lines move.
func ExampleScheme_Translate() {
	scheme := core.MustNew(core.Config{
		Lines: 256, Regions: 8, InnerInterval: 4, OuterInterval: 4,
		Stages: 7, Seed: 3,
	})
	ctrl := wear.MustNewController(pcm.Config{
		LineBytes: 256, Endurance: 1 << 30,
	}, scheme)

	before := scheme.Translate(7)
	for scheme.Rounds() < 1 {
		ctrl.Write(7, pcm.Zeros)
	}
	after := scheme.Translate(7)
	fmt.Println("moved:", before != after)
	// Output:
	// moved: true
}

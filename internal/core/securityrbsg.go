// Package core implements Security Region-Based Start-Gap (Security RBSG),
// the wear-leveling scheme this paper contributes.
//
// Security RBSG is a two-level dynamic mapping:
//
//   - The outer level — Security-Level Adjustable Dynamic Mapping — maps
//     logical addresses (LA) to intermediate addresses (IA) through a
//     Dynamic Feistel Network (DFN): a multi-stage Feistel network whose
//     stage keys are re-drawn every remapping round. One spare line, a Gap
//     register, per-line isRemap bits and the two key arrays Kc (current)
//     and Kp (previous) let the mapping migrate incrementally, one line
//     move every OuterInterval writes (Figs 8–10 of the paper). Because
//     the keys change before a Remapping Timing Attack can finish
//     extracting them, the outer level is what provides security, and the
//     stage count S is the adjustable security level.
//
//   - The inner level splits the IA space into equal sub-regions and runs
//     the plain Start-Gap algorithm in each, which keeps ordinary write
//     traffic uniform at negligible cost.
//
// Two departures from the paper's Fig 9 pseudocode are documented here
// because they are load-bearing:
//
//  1. Multi-cycle rounds. The flowchart walks the cycle of the permutation
//     ENC_Kp ∘ DEC_Kc that contains slot 0 and declares the round complete
//     when that cycle closes. For random keys that permutation is not a
//     single cycle, so lines on other cycles would silently flip from Kp
//     to Kc translation without their data moving — a correctness bug.
//     This implementation walks *every* cycle in turn (one movement per
//     OuterInterval writes, as in the paper) and keeps translation exact
//     at all times; tests verify the invariant after every movement.
//
//  2. Spare-line wear. Worse, with the paper's own cubing round function
//     the key-change permutation has on the order of N/16 cycles, not the
//     ~ln N of a random permutation (the cube map mod 2^(B/2) is far from
//     a random function — e.g. its low output bit is linear in its input).
//     The paper's migration parks each cycle's head in the single spare
//     line, writing the spare once per cycle — tens of thousands of times
//     per round at 1 GB scale — so the spare line would exceed its own
//     endurance almost immediately. The default migration here therefore
//     relocates each cycle in place with swaps (L−1 swaps per length-L
//     cycle, like Security Refresh's pair swaps; remap wear lands evenly,
//     two writes per line per round) and needs no spare line at all. The
//     paper's spare-line walk remains available as MigrationMove for
//     fidelity experiments; the core tests quantify its hotspot.
package core

import (
	"fmt"

	"securityrbsg/internal/feistel"
	"securityrbsg/internal/startgap"
	"securityrbsg/internal/stats"
	"securityrbsg/internal/wear"
)

// Migration selects how the outer level relocates a remapping round's
// permutation cycles.
type Migration int

const (
	// MigrationSwap (the default) rotates each cycle in place with swaps:
	// no spare line, remap wear spread evenly. See the package comment.
	MigrationSwap Migration = iota
	// MigrationMove is the paper's Fig 8–9 walk: park the cycle head in
	// the spare line, pull each line into the gap, unpark at the end. It
	// concentrates one write per cycle on the spare line, which the
	// cubing Feistel's cycle structure turns into a wear hotspot.
	MigrationMove
)

// String names the migration strategy.
func (m Migration) String() string {
	if m == MigrationMove {
		return "move"
	}
	return "swap"
}

// Config describes a Security RBSG instance.
type Config struct {
	// Lines is the logical address-space size N (power of two).
	Lines uint64
	// Regions is the number of inner Start-Gap sub-regions (must divide
	// Lines). The paper evaluates 256–1024 with 512 suggested.
	Regions uint64
	// InnerInterval is the per-sub-region Start-Gap interval (suggested 64).
	InnerInterval uint64
	// OuterInterval is the DFN remapping interval counted over all bank
	// writes (suggested 128).
	OuterInterval uint64
	// Stages is the DFN stage count — the security level. The paper
	// recommends 7 (6 is the minimum that outruns RTA key detection at the
	// suggested configuration; 7 adds lifetime margin).
	Stages int
	// Migration selects the cycle-relocation strategy (default
	// MigrationSwap; see the package comment).
	Migration Migration
	// Seed seeds all key generation.
	Seed uint64
	// NoTableCache forces direct per-access Feistel evaluation even when
	// the address width is small enough to materialize the DFN into
	// per-round lookup tables. Translation is bit-identical either way
	// (the differential tests depend on it); the knob exists for those
	// tests and for ablation measurements.
	NoTableCache bool
}

// SuggestedConfig returns the paper's recommended configuration for a bank
// of the given logical size: 512 sub-regions, inner interval 64, outer
// interval 128, 7 DFN stages.
func SuggestedConfig(lines uint64) Config {
	return Config{
		Lines:         lines,
		Regions:       512,
		InnerInterval: 64,
		OuterInterval: 128,
		Stages:        7,
	}
}

func (c Config) validate() error {
	if c.Lines == 0 || c.Lines&(c.Lines-1) != 0 {
		return fmt.Errorf("core: lines must be a power of two, got %d", c.Lines)
	}
	if c.Regions == 0 || c.Lines%c.Regions != 0 {
		return fmt.Errorf("core: regions %d must divide lines %d", c.Regions, c.Lines)
	}
	if c.InnerInterval == 0 || c.OuterInterval == 0 {
		return fmt.Errorf("core: intervals must be at least 1")
	}
	if c.Stages <= 0 {
		return fmt.Errorf("core: need at least one DFN stage, got %d", c.Stages)
	}
	return nil
}

const noBufLA = ^uint64(0)

// Scheme is a Security RBSG instance implementing wear.Scheme.
type Scheme struct {
	cfg       Config
	bits      uint
	perRegion uint64 // inner lines per sub-region n' = N/R
	sparePA   uint64 // physical address of the outer spare line

	kc, kp feistel.Permutation
	rng    *stats.RNG

	// Table-mode state (bits ≤ feistel.MaxTableBits and !NoTableCache):
	// the DFN is materialized into lookup tables once per remapping
	// round. dfn is the one reusable key-holding network, rekeyed in
	// place at every round start; tables are the two rotating
	// materialization buffers kc and kp point into — the round's redraw
	// refills only the buffer no live mapping references, so a stale
	// table can never serve a translation mid-round. cur indexes the
	// buffer kc currently uses. Above the width threshold (or with
	// NoTableCache) dfn stays nil and newPerm evaluates directly.
	dfn    *feistel.Network
	dfnW   feistel.Permutation // dfn, cycle-walked for odd widths
	tables [2]*feistel.Table
	cur    int

	isRemap  []uint64 // bitset over logical addresses
	remapped uint64   // population count of isRemap
	inRound  bool     // a remapping round is in progress
	scan     uint64   // next LA to consider as a cycle start

	// MigrationMove state: gap is the empty IA slot (Lines when the spare
	// is empty) and bufLA the LA parked in the spare.
	gap   uint64
	bufLA uint64

	// MigrationSwap state: the current cycle's anchor slot and the LA
	// whose (displaced) data currently sits there.
	anchorSlot uint64
	dispLA     uint64

	regions []*startgap.Region

	writeCount uint64 // outer-interval write counter
	moves      uint64 // outer movements performed
	rounds     uint64 // completed outer rounds
	cycles     uint64 // permutation cycles walked (extra moves)

	// Adjustable security level: a requested stage count waits here until
	// the next remap-round boundary (0 = no change pending). See SetStages.
	pendingStages int
	stageChanges  uint64 // stage-count transitions applied
}

// New builds a Security RBSG scheme from cfg.
func New(cfg Config) (*Scheme, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	bits := uint(0)
	for v := cfg.Lines; v > 1; v >>= 1 {
		bits++
	}
	s := &Scheme{
		cfg:       cfg,
		bits:      bits,
		perRegion: cfg.Lines / cfg.Regions,
		sparePA:   cfg.Regions * (cfg.Lines/cfg.Regions + 1),
		rng:       stats.NewRNG(cfg.Seed),
		isRemap:   make([]uint64, (cfg.Lines+63)/64),
		bufLA:     noBufLA,
		dispLA:    noBufLA,
		gap:       cfg.Lines,
	}
	if !cfg.NoTableCache && bits <= feistel.MaxTableBits {
		width := bits
		if width%2 != 0 {
			width++
		}
		s.dfn = feistel.MustRandom(width, cfg.Stages, s.rng)
		s.dfnW = s.dfn
		if bits%2 != 0 {
			s.dfnW = feistel.MustNewWalker(s.dfn, cfg.Lines)
		}
		s.tables[0] = feistel.MustNewTable(s.dfnW)
		s.kc, s.kp = s.tables[0], s.tables[0]
	} else {
		k := s.newDirect()
		s.kc, s.kp = k, k
	}
	s.regions = make([]*startgap.Region, cfg.Regions)
	for i := range s.regions {
		base := uint64(i) * (s.perRegion + 1)
		r, err := startgap.New(s.perRegion, cfg.InnerInterval, base)
		if err != nil {
			return nil, err
		}
		s.regions[i] = r
	}
	return s, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Scheme {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// newDirect draws a fresh directly-evaluated DFN permutation over the
// logical space. Odd address widths run a one-bit-wider network under
// cycle walking.
func (s *Scheme) newDirect() feistel.Permutation {
	// Cannot fail: width and stage count are validated at construction,
	// and Lines ≤ 2^(bits+1) by the width derivation.
	if s.bits%2 == 0 {
		return feistel.MustRandom(s.bits, s.cfg.Stages, s.rng)
	}
	return feistel.MustNewWalker(feistel.MustRandom(s.bits+1, s.cfg.Stages, s.rng), s.cfg.Lines)
}

// redrawPerm draws the next round's DFN permutation. In table mode it
// rekeys the one reusable network in place (consuming exactly the RNG
// draws a fresh construction would, so both modes translate
// identically) and rematerializes into the spare table buffer — the one
// neither kc nor kp references, so in-flight translations of the old
// round never see a partially built or stale table. Callers must have
// already rotated kp before invoking it.
func (s *Scheme) redrawPerm() feistel.Permutation {
	if s.dfn == nil {
		return s.newDirect()
	}
	s.dfn.RekeyRandom(s.rng)
	s.cur = 1 - s.cur
	t := s.tables[s.cur]
	if t == nil {
		t = feistel.MustNewTable(s.dfnW)
		s.tables[s.cur] = t
	} else {
		t.MustFill(s.dfnW)
	}
	return t
}

// Name identifies the scheme.
func (s *Scheme) Name() string { return "security-rbsg" }

// Config returns the construction configuration.
func (s *Scheme) Config() Config { return s.cfg }

// LogicalLines returns N.
func (s *Scheme) LogicalLines() uint64 { return s.cfg.Lines }

// PhysicalLines returns R × (N/R + 1) plus, under MigrationMove, the outer
// spare line.
func (s *Scheme) PhysicalLines() uint64 {
	p := s.cfg.Regions * (s.perRegion + 1)
	if s.cfg.Migration == MigrationMove {
		p++
	}
	return p
}

// LinesPerRegion returns the inner sub-region size N/R.
func (s *Scheme) LinesPerRegion() uint64 { return s.perRegion }

// Rounds returns the number of completed outer remapping rounds.
func (s *Scheme) Rounds() uint64 { return s.rounds }

// Moves returns the number of outer line movements performed.
func (s *Scheme) Moves() uint64 { return s.moves }

// Cycles returns the number of key-permutation cycles walked so far —
// the quantity that exposes the cubing Feistel's cycle pathology.
func (s *Scheme) Cycles() uint64 { return s.cycles }

// Stages returns the DFN stage count — the security level — currently
// in effect. It differs from a pending SetStages request until the next
// remap-round boundary applies it.
func (s *Scheme) Stages() int { return s.cfg.Stages }

// PendingStages returns the stage count requested via SetStages but not
// yet applied, or 0 when no change is pending.
func (s *Scheme) PendingStages() int { return s.pendingStages }

// StageChanges returns how many stage-count transitions have applied.
func (s *Scheme) StageChanges() uint64 { return s.stageChanges }

// SetStages requests a security-level change: the DFN uses n stages from
// the next remapping round on. The request is deferred to the round
// boundary — the key redraw in startRound — because that is the only
// instant at which no address translates through a half-retired
// permutation pair: Kp has just been rotated from the old Kc, the new Kc
// is drawn fresh, and every isRemap bit is clear. Applying mid-round
// would re-key the permutation that unremapped lines still translate
// through, silently corrupting the mapping. Repeated calls before the
// boundary overwrite each other; the last request wins. A request equal
// to the current level still clears at the boundary without counting as
// a transition.
func (s *Scheme) SetStages(n int) error {
	if n <= 0 {
		return fmt.Errorf("core: need at least one DFN stage, got %d", n)
	}
	s.pendingStages = n
	return nil
}

// applyStages switches the DFN to n stages at a round boundary. In table
// mode the key schedule resizes in place — dfnW (the odd-width walker)
// wraps the same Network pointer, and the keys stay zero only until
// redrawPerm's RekeyRandom immediately supplies the round's real keys,
// consuming exactly one draw per stage like a fresh construction, so
// table and direct mode remain bit-identical across level changes.
func (s *Scheme) applyStages(n int) {
	if n == s.cfg.Stages {
		return
	}
	s.cfg.Stages = n
	s.stageChanges++
	if s.dfn != nil {
		s.dfn.MustSetStages(n)
	}
}

// Region returns inner sub-region i, for white-box tests.
func (s *Scheme) Region(i int) *startgap.Region { return s.regions[i] }

// CurrentKeys returns the current and previous DFN permutations, for
// white-box tests and the lifetime estimators. Attackers never see these.
func (s *Scheme) CurrentKeys() (kc, kp feistel.Permutation) { return s.kc, s.kp }

func (s *Scheme) remappedBit(la uint64) bool {
	return s.isRemap[la>>6]>>(la&63)&1 == 1
}

func (s *Scheme) setRemapped(la uint64) {
	s.isRemap[la>>6] |= 1 << (la & 63)
	s.remapped++
}

// Intermediate returns la's current intermediate address: ENC_Kc once
// remapped this round, ENC_Kp before, and the spare slot (== Lines) while
// its data is parked there mid-cycle. This is the Fig 10 translation,
// generalized to multi-cycle rounds.
func (s *Scheme) Intermediate(la uint64) uint64 {
	if la >= s.cfg.Lines {
		panic(fmt.Errorf("core: logical address %d out of space of %d lines", la, s.cfg.Lines))
	}
	if s.remappedBit(la) {
		return s.kc.Encrypt(la)
	}
	if la == s.bufLA {
		return s.cfg.Lines // parked in the spare (MigrationMove)
	}
	if la == s.dispLA {
		return s.anchorSlot // displaced to the anchor (MigrationSwap)
	}
	return s.kp.Encrypt(la)
}

// translateIA maps an intermediate address (or the spare slot) to its
// physical line via the inner Start-Gap regions.
func (s *Scheme) translateIA(ia uint64) uint64 {
	if ia == s.cfg.Lines {
		return s.sparePA
	}
	return s.regions[ia/s.perRegion].Translate(ia % s.perRegion)
}

// Translate maps a logical address to its current physical line.
func (s *Scheme) Translate(la uint64) uint64 {
	return s.translateIA(s.Intermediate(la))
}

// NoteWrite books a demand write: the inner sub-region owning la's IA
// counts it toward its Start-Gap interval, and the outer DFN counts it
// toward its remapping interval.
func (s *Scheme) NoteWrite(la uint64, m wear.Mover) uint64 {
	ia := s.Intermediate(la)
	var ns uint64
	if ia != s.cfg.Lines { // writes to the parked line don't tick a region
		ns = s.regions[ia/s.perRegion].NoteWrite(m)
	}
	s.writeCount++
	if s.writeCount >= s.cfg.OuterInterval {
		s.writeCount = 0
		ns += s.outerMove(m)
	}
	return ns
}

// WritesToNextRemap implements wear.FastForwarder: of the next k writes
// to la, exactly the k-th is the first that can trigger movements —
// whichever fires first of la's inner sub-region's Start-Gap interval and
// the outer DFN interval (which every bank write ticks). Both mappings
// are frozen until that write, so k is exact. Writes parked in the outer
// spare (IA == Lines, MigrationMove mid-cycle) tick only the outer
// counter, mirroring NoteWrite.
func (s *Scheme) WritesToNextRemap(la uint64) uint64 {
	outer := s.cfg.OuterInterval - s.writeCount
	ia := s.Intermediate(la)
	if ia == s.cfg.Lines {
		return outer
	}
	inner := s.regions[ia/s.perRegion].WritesToNextMove()
	if outer < inner {
		return outer
	}
	return inner
}

// SkipWrites implements wear.FastForwarder: book k movement-free writes
// to la against the inner region and the outer counter
// (k < WritesToNextRemap(la)).
func (s *Scheme) SkipWrites(la, k uint64) {
	if k >= s.cfg.OuterInterval-s.writeCount {
		panic(fmt.Errorf("core: SkipWrites(%d) would cross an outer movement (%d writes remain)",
			k, s.cfg.OuterInterval-s.writeCount))
	}
	ia := s.Intermediate(la)
	if ia != s.cfg.Lines {
		s.regions[ia/s.perRegion].SkipWrites(k)
	}
	s.writeCount += k
}

// startRound rotates the keys and clears the remap state, applying any
// pending security-level change just before the new Kc is drawn.
func (s *Scheme) startRound() {
	s.kp = s.kc
	if n := s.pendingStages; n != 0 {
		s.pendingStages = 0
		s.applyStages(n)
	}
	s.kc = s.redrawPerm()
	for i := range s.isRemap {
		s.isRemap[i] = 0
	}
	s.remapped = 0
	s.scan = 0
	s.inRound = true
}

// outerMove performs one DFN remapping movement under the configured
// migration strategy.
func (s *Scheme) outerMove(m wear.Mover) uint64 {
	if s.cfg.Migration == MigrationSwap {
		return s.outerMoveSwap(m)
	}
	return s.outerMoveSpare(m)
}

// outerMoveSwap advances the round by one in-place swap: the current
// cycle's displaced line's data moves from the anchor slot to its ENC_Kc
// target, displacing that slot's line to the anchor in turn. Fixed points
// and cycle closes cost nothing and immediately proceed to real work.
func (s *Scheme) outerMoveSwap(m wear.Mover) uint64 {
	s.moves++
	if !s.inRound {
		s.startRound()
	}
	for {
		if s.dispLA == noBufLA {
			// Open the next cycle at the smallest unremapped LA. The
			// "park" is virtual: the head's data already sits at its own
			// ENC_Kp slot, which becomes the anchor.
			for s.remappedBit(s.scan) {
				s.scan++
			}
			s.dispLA = s.scan
			s.anchorSlot = s.kp.Encrypt(s.dispLA)
			s.cycles++
		}
		target := s.kc.Encrypt(s.dispLA)
		if target == s.anchorSlot {
			// The displaced data already sits at its new-key slot: the
			// cycle closes (or was a fixed point) for free.
			s.setRemapped(s.dispLA)
			s.dispLA = noBufLA
			if s.remapped == s.cfg.Lines {
				s.inRound = false
				s.rounds++
				return 0
			}
			continue
		}
		ns := m.Swap(s.translateIA(s.anchorSlot), s.translateIA(target))
		next := s.kp.Decrypt(target) // whose data was just displaced to the anchor
		s.setRemapped(s.dispLA)
		s.dispLA = next
		return ns
	}
}

// outerMoveSpare is the paper's Fig 8–9 walk: either starts a new round
// (re-key, park the first cycle's head in the spare line) or advances the
// current cycle by pulling the gap slot's designated line into place.
func (s *Scheme) outerMoveSpare(m wear.Mover) uint64 {
	s.moves++
	if !s.inRound {
		s.startRound()
	}
	if s.gap == s.cfg.Lines {
		// No cycle in progress: park the next unremapped line's data in
		// the spare, opening a gap at its old slot.
		for s.remappedBit(s.scan) {
			s.scan++
		}
		la := s.scan
		src := s.kp.Encrypt(la)
		ns := m.Move(s.translateIA(src), s.sparePA)
		s.bufLA = la
		s.gap = src
		s.cycles++
		return ns
	}
	// Advance the cycle: the line destined for the gap slot under the new
	// keys moves in, opening a gap at its old slot — until the cycle
	// closes back on the parked line.
	loc := s.kc.Decrypt(s.gap)
	if loc == s.bufLA {
		ns := m.Move(s.sparePA, s.translateIA(s.gap))
		s.setRemapped(loc)
		s.bufLA = noBufLA
		s.gap = s.cfg.Lines
		if s.remapped == s.cfg.Lines {
			s.inRound = false
			s.rounds++
		}
		return ns
	}
	src := s.kp.Encrypt(loc)
	ns := m.Move(s.translateIA(src), s.translateIA(s.gap))
	s.setRemapped(loc)
	s.gap = src
	return ns
}

// MovesPerRound returns the expected outer movements in one remapping
// round: N regular moves plus one extra per permutation cycle (≈ ln N for
// a random permutation) — the paper's cost model with the multi-cycle
// correction.
func (s *Scheme) MovesPerRound() uint64 { return s.cfg.Lines + 1 }

// WritesPerRound returns the approximate demand writes consumed by one
// outer remapping round.
func (s *Scheme) WritesPerRound() uint64 {
	return s.MovesPerRound() * s.cfg.OuterInterval
}

package core

import (
	"testing"

	"securityrbsg/internal/pcm"
	"securityrbsg/internal/schemetest"
	"securityrbsg/internal/wear"
)

// The adjustable security level: SetStages requests are deferred to the
// next remap-round boundary (the key redraw), never applied mid-round,
// and the transition must keep the cached and direct evaluation modes
// bit-identical — the controller in internal/seclevel leans on all three
// properties.

func TestSetStagesValidation(t *testing.T) {
	s := small(t, 20)
	if err := s.SetStages(0); err == nil {
		t.Fatal("SetStages(0) should fail")
	}
	if err := s.SetStages(-3); err == nil {
		t.Fatal("SetStages(-3) should fail")
	}
	if s.PendingStages() != 0 {
		t.Fatal("rejected request left a pending change")
	}
}

func TestSetStagesDeferredToRoundBoundary(t *testing.T) {
	s := small(t, 21) // Stages: 4
	m := schemetest.NewTokenMover(s)

	// Drive into the middle of a remapping round.
	for !s.inRound || s.remapped < 10 {
		s.NoteWrite(0, m)
	}
	atRequest := s.Rounds()
	if err := s.SetStages(6); err != nil {
		t.Fatal(err)
	}
	if s.Stages() != 4 {
		t.Fatalf("Stages() = %d immediately after request, want old level 4", s.Stages())
	}
	if s.PendingStages() != 6 {
		t.Fatalf("PendingStages() = %d, want 6", s.PendingStages())
	}

	// The level must hold at 4 for the whole remainder of this round.
	for s.StageChanges() == 0 {
		if s.Stages() != 4 {
			t.Fatalf("stage change applied mid-round (remapped %d/%d)", s.remapped, s.cfg.Lines)
		}
		s.NoteWrite(0, m)
	}
	if s.Stages() != 6 || s.PendingStages() != 0 {
		t.Fatalf("after boundary: Stages() = %d, PendingStages() = %d", s.Stages(), s.PendingStages())
	}
	// The request rode out the round in progress and applied when the
	// next one started: exactly one completed round in between.
	if s.Rounds() != atRequest+1 {
		t.Fatalf("change applied with %d rounds completed, want %d", s.Rounds(), atRequest+1)
	}
	if s.Config().Stages != 6 {
		t.Fatal("Config() does not reflect the live stage count")
	}

	// Data integrity survives the transition and the rounds after it.
	if err := schemetest.Verify(s, m); err != nil {
		t.Fatal(err)
	}
	start := s.Rounds()
	for s.Rounds() < start+2 {
		s.NoteWrite(1, m)
		if err := wear.CheckBijection(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := schemetest.Verify(s, m); err != nil {
		t.Fatal(err)
	}
}

func TestSetStagesLastRequestWins(t *testing.T) {
	s := small(t, 22)
	m := schemetest.NewTokenMover(s)
	if err := s.SetStages(6); err != nil {
		t.Fatal(err)
	}
	if err := s.SetStages(2); err != nil {
		t.Fatal(err)
	}
	if s.PendingStages() != 2 {
		t.Fatalf("PendingStages() = %d, want the later request 2", s.PendingStages())
	}
	for s.StageChanges() == 0 {
		s.NoteWrite(0, m)
	}
	if s.Stages() != 2 {
		t.Fatalf("Stages() = %d, want 2 (last request wins)", s.Stages())
	}
	if s.StageChanges() != 1 {
		t.Fatalf("StageChanges() = %d, want a single transition", s.StageChanges())
	}
}

func TestSetStagesSameLevelIsNotATransition(t *testing.T) {
	s := small(t, 23) // Stages: 4
	m := schemetest.NewTokenMover(s)
	if err := s.SetStages(4); err != nil {
		t.Fatal(err)
	}
	start := s.Rounds()
	for s.Rounds() < start+1 {
		s.NoteWrite(0, m)
	}
	if s.PendingStages() != 0 {
		t.Fatal("no-op request still pending after a boundary")
	}
	if s.StageChanges() != 0 {
		t.Fatalf("StageChanges() = %d for a same-level request, want 0", s.StageChanges())
	}
}

// TestSetStagesTwinBitIdentity is the determinism anchor for live level
// changes: a table-cached scheme and its direct-evaluation twin receive
// the same SetStages schedule and must agree on every translation after
// every write. This pins the RNG economy of applyStages — the resized
// key schedule is filled by redrawPerm's RekeyRandom with exactly one
// draw per stage, the same sequence a fresh direct construction draws.
func TestSetStagesTwinBitIdentity(t *testing.T) {
	cases := []struct {
		name           string
		lines, regions uint64
	}{
		{"even-width", 256, 8},
		{"odd-width", 128, 1}, // cycle-walking under the tables
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b, ca, cb := newTwinPair(t, tc.lines, tc.regions, MigrationSwap)
			levels := []int{3, 9, 1, 7}
			next := 0
			for step := 0; a.Rounds() < 6 || next < len(levels); step++ {
				// Issue the next request once the previous transition
				// landed, so every level in the schedule gets its round.
				if next < len(levels) && a.StageChanges() == uint64(next) {
					if err := a.SetStages(levels[next]); err != nil {
						t.Fatal(err)
					}
					if err := b.SetStages(levels[next]); err != nil {
						t.Fatal(err)
					}
					next++
				}
				la := uint64(step*7) % tc.lines
				if ca.Write(la, pcm.Mixed) != cb.Write(la, pcm.Mixed) {
					t.Fatalf("step %d: write latency diverged", step)
				}
				compareAll(t, step, a, b)
				if a.Stages() != b.Stages() || a.StageChanges() != b.StageChanges() {
					t.Fatalf("step %d: level state diverged: %d/%d vs %d/%d",
						step, a.Stages(), a.StageChanges(), b.Stages(), b.StageChanges())
				}
			}
			if a.StageChanges() != uint64(len(levels)) {
				t.Fatalf("only %d transitions exercised", a.StageChanges())
			}
			if err := wear.CheckBijection(a); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSetStagesRaisesAndLowersAcrossRounds walks one scheme through an
// escalate-then-relax schedule and re-checks the core data invariant at
// every movement — the shape the adaptive controller produces in
// production.
func TestSetStagesRaisesAndLowersAcrossRounds(t *testing.T) {
	s := small(t, 24)
	m := schemetest.NewTokenMover(s)
	schedule := []int{6, 8, 5, 2, 4}
	for _, lvl := range schedule {
		if err := s.SetStages(lvl); err != nil {
			t.Fatal(err)
		}
		changes := s.StageChanges()
		for s.StageChanges() == changes {
			s.NoteWrite(uint64(s.Moves())%s.LogicalLines(), m)
		}
		if s.Stages() != lvl {
			t.Fatalf("Stages() = %d, want %d", s.Stages(), lvl)
		}
		if err := schemetest.Verify(s, m); err != nil {
			t.Fatalf("after transition to %d stages: %v", lvl, err)
		}
	}
	if s.StageChanges() != uint64(len(schedule)) {
		t.Fatalf("StageChanges() = %d, want %d", s.StageChanges(), len(schedule))
	}
}

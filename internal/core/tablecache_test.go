package core

import (
	"testing"

	"securityrbsg/internal/feistel"
	"securityrbsg/internal/pcm"
	"securityrbsg/internal/wear"
)

// The table cache is a pure evaluation-strategy change: a Scheme built
// with NoTableCache (direct Feistel evaluation every access) and its
// cached twin must agree on every translation at every point of every
// remapping round. These tests drive both side by side through live
// write traffic — including mid-migration states, where a stale table
// would surface as kc/kp disagreeing with the direct evaluation.

func twinConfigs(lines, regions uint64, migration Migration) (cached, direct Config) {
	cached = Config{
		Lines: lines, Regions: regions,
		InnerInterval: 3, OuterInterval: 5,
		Stages: 7, Migration: migration, Seed: 99,
	}
	direct = cached
	direct.NoTableCache = true
	return cached, direct
}

func newTwinPair(t *testing.T, lines, regions uint64, migration Migration) (a, b *Scheme, ca, cb *wear.Controller) {
	t.Helper()
	cfgA, cfgB := twinConfigs(lines, regions, migration)
	a, b = MustNew(cfgA), MustNew(cfgB)
	bank := pcm.Config{LineBytes: 256, Endurance: 1 << 30, Timing: pcm.DefaultTiming}
	return a, b, wear.MustNewController(bank, a), wear.MustNewController(bank, b)
}

func compareAll(t *testing.T, step int, a, b *Scheme) {
	t.Helper()
	for la := uint64(0); la < a.LogicalLines(); la++ {
		if got, want := a.Translate(la), b.Translate(la); got != want {
			t.Fatalf("step %d: Translate(%d) = %d cached, %d direct", step, la, got, want)
		}
		if got, want := a.Intermediate(la), b.Intermediate(la); got != want {
			t.Fatalf("step %d: Intermediate(%d) = %d cached, %d direct", step, la, got, want)
		}
	}
}

// TestTableCacheMatchesDirect drives several full remapping rounds of
// write traffic and checks the cached and direct twins agree on the
// whole address space after every single write.
func TestTableCacheMatchesDirect(t *testing.T) {
	for _, mig := range []Migration{MigrationSwap, MigrationMove} {
		a, b, ca, cb := newTwinPair(t, 256, 8, mig)
		if a.Rounds() != 0 {
			t.Fatal("fresh scheme already remapped")
		}
		step := 0
		for a.Rounds() < 3 {
			la := uint64(step*7) % a.LogicalLines()
			if ca.Write(la, pcm.Mixed) != cb.Write(la, pcm.Mixed) {
				t.Fatalf("step %d: write latency diverged", step)
			}
			compareAll(t, step, a, b)
			if a.Rounds() != b.Rounds() || a.Moves() != b.Moves() {
				t.Fatalf("step %d: round/move counters diverged", step)
			}
			step++
		}
	}
}

// TestTableCacheOddWidth repeats the twin check on a non-even address
// width (2^7 lines per region ⇒ cycle-walking under the tables).
func TestTableCacheOddWidth(t *testing.T) {
	a, b, ca, cb := newTwinPair(t, 128, 1, MigrationSwap)
	for step := 0; a.Rounds() < 2; step++ {
		la := uint64(step*5) % a.LogicalLines()
		ca.Write(la, pcm.Mixed)
		cb.Write(la, pcm.Mixed)
		compareAll(t, step, a, b)
	}
}

// TestRedrawNeverServesStaleTable pins the two-buffer rotation: across
// a round boundary kc changes while kp must keep answering with the
// *previous* round's mapping — if redrawPerm refilled a buffer still
// referenced by kc or kp, the old permutation would silently change.
func TestRedrawNeverServesStaleTable(t *testing.T) {
	cfg, _ := twinConfigs(256, 8, MigrationSwap)
	s := MustNew(cfg)
	c := wear.MustNewController(pcm.Config{
		LineBytes: 256, Endurance: 1 << 30, Timing: pcm.DefaultTiming,
	}, s)

	snapshot := func(p feistel.Permutation) []uint64 {
		m := make([]uint64, p.Domain())
		for x := range m {
			m[x] = p.Encrypt(uint64(x))
		}
		return m
	}

	var la uint64
	write := func() { c.Write(la, pcm.Mixed); la = (la + 3) % s.LogicalLines() }

	for round := uint64(0); round < 4; round++ {
		// Walk up to the round boundary and capture kc's mapping.
		start := s.Rounds()
		kcBefore, _ := s.CurrentKeys()
		before := snapshot(kcBefore)
		for s.Rounds() == start {
			write()
		}
		// The round turned: the old kc is now kp and must be unchanged.
		kc, kp := s.CurrentKeys()
		if kp != kcBefore {
			t.Fatalf("round %d: kp is not the previous kc", round)
		}
		after := snapshot(kp)
		for x := range before {
			if before[x] != after[x] {
				t.Fatalf("round %d: kp mapping of %d changed %d -> %d after redraw (stale table refill)",
					round, x, before[x], after[x])
			}
		}
		if kc == kp {
			t.Fatalf("round %d: kc and kp share a table after redraw", round)
		}
		// And the new kc must differ somewhere (7-stage redraw of a
		// 256-line space matching identically is ~impossible).
		fresh := snapshot(kc)
		same := true
		for x := range fresh {
			if fresh[x] != before[x] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("round %d: kc identical to previous round after redraw", round)
		}
	}
}

// TestTableCacheUsedWhenSmall asserts the construction policy: scaled
// geometries get *feistel.Table keys, NoTableCache and paper-scale
// domains do not.
func TestTableCacheUsedWhenSmall(t *testing.T) {
	cached, direct := twinConfigs(1<<10, 4, MigrationSwap)
	kc, _ := MustNew(cached).CurrentKeys()
	if _, ok := kc.(*feistel.Table); !ok {
		t.Fatalf("small domain not table-cached: %T", kc)
	}
	kc, _ = MustNew(direct).CurrentKeys()
	if _, ok := kc.(*feistel.Table); ok {
		t.Fatal("NoTableCache still produced a table")
	}
}

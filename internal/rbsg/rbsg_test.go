package rbsg

import (
	"testing"

	"securityrbsg/internal/schemetest"
	"securityrbsg/internal/wear"
)

func cfg() Config {
	return Config{Lines: 256, Regions: 8, Interval: 4, Seed: 1}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{Lines: 100, Regions: 4, Interval: 1}, // not a power of two
		{Lines: 256, Regions: 7, Interval: 1}, // regions don't divide
		{Lines: 256, Regions: 8, Interval: 0}, // zero interval
		{Lines: 0, Regions: 1, Interval: 1},   // empty
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: expected error for %+v", i, c)
		}
	}
}

// MustNew must surface the validation error as a panic, not hand back a
// half-built scheme.
func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on an invalid config")
		}
	}()
	MustNew(Config{Lines: 100, Regions: 4, Interval: 1})
}

func TestDefaults(t *testing.T) {
	s := MustNew(cfg())
	if s.Config().Stages != 3 {
		t.Fatalf("default stages = %d, want 3 (the RBSG paper)", s.Config().Stages)
	}
	if s.Name() != "rbsg" {
		t.Fatal("name")
	}
	if s.LogicalLines() != 256 || s.PhysicalLines() != 8*(32+1) {
		t.Fatalf("space sizes %d/%d", s.LogicalLines(), s.PhysicalLines())
	}
	if s.LinesPerRegion() != 32 {
		t.Fatal("lines per region")
	}
}

func TestBijection(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		c := cfg()
		c.Seed = seed
		if err := wear.CheckBijection(MustNew(c)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMatrixRandomizer(t *testing.T) {
	c := cfg()
	c.UseMatrix = true
	s := MustNew(c)
	if err := wear.CheckBijection(s); err != nil {
		t.Fatal(err)
	}
	if _, err := schemetest.Exercise(s, 5000, 100, 2); err != nil {
		t.Fatal(err)
	}
}

func TestOddWidthUsesWalker(t *testing.T) {
	c := Config{Lines: 512, Regions: 8, Interval: 2, Seed: 3} // 9 bits
	s := MustNew(c)
	if err := wear.CheckBijection(s); err != nil {
		t.Fatal(err)
	}
	if _, err := schemetest.Exercise(s, 4000, 100, 4); err != nil {
		t.Fatal(err)
	}
}

func TestDataIntegrity(t *testing.T) {
	if _, err := schemetest.Exercise(MustNew(cfg()), 20000, 50, 5); err != nil {
		t.Fatal(err)
	}
}

func TestDataIntegrityUnderHammer(t *testing.T) {
	if _, err := schemetest.ExerciseHammer(MustNew(cfg()), 123, 20000, 50); err != nil {
		t.Fatal(err)
	}
}

// TestRandomizerIsStatic is the property the RTA exploits: the LA→IA
// mapping never changes, so physical adjacency of logical lines is fixed
// for the device's lifetime.
func TestRandomizerIsStatic(t *testing.T) {
	s := MustNew(cfg())
	before := make([]uint64, 256)
	for la := range before {
		before[la] = s.Intermediate(uint64(la))
	}
	if _, err := schemetest.Exercise(s, 50000, 0, 6); err != nil {
		t.Fatal(err)
	}
	for la := range before {
		if got := s.Intermediate(uint64(la)); got != before[la] {
			t.Fatalf("intermediate address of LA %d changed %d→%d", la, before[la], got)
		}
	}
}

// TestRegionIsolation: writes to one region never trigger movements in
// another (the property that lets the RTA maintain an exact shadow).
func TestRegionIsolation(t *testing.T) {
	s := MustNew(cfg())
	m := schemetest.NewTokenMover(s)
	// Find two LAs in different regions.
	la0 := uint64(0)
	r0 := s.Intermediate(la0) / s.LinesPerRegion()
	var la1 uint64
	for la1 = 1; ; la1++ {
		if s.Intermediate(la1)/s.LinesPerRegion() != r0 {
			break
		}
	}
	g1 := s.Region(int(s.Intermediate(la1) / s.LinesPerRegion())).Movements()
	for i := 0; i < 1000; i++ {
		s.NoteWrite(la0, m)
	}
	if got := s.Region(int(s.Intermediate(la1) / s.LinesPerRegion())).Movements(); got != g1 {
		t.Fatalf("foreign region moved %d times", got-g1)
	}
	if s.Region(int(r0)).Movements() != 1000/4 {
		t.Fatalf("own region moved %d times, want 250", s.Region(int(r0)).Movements())
	}
}

// TestSweepHitsEveryRegionEqually: a full logical sweep lands exactly
// N/R writes in every region (the bijection property the RTA's shadow
// counting relies on).
func TestSweepHitsEveryRegionEqually(t *testing.T) {
	s := MustNew(cfg())
	counts := make(map[uint64]int)
	for la := uint64(0); la < s.LogicalLines(); la++ {
		counts[s.Intermediate(la)/s.LinesPerRegion()]++
	}
	for r, c := range counts {
		if c != 32 {
			t.Fatalf("region %d received %d sweep writes, want 32", r, c)
		}
	}
}

func TestLineVulnerabilityFactor(t *testing.T) {
	s := MustNew(cfg())
	if got := s.LineVulnerabilityFactor(); got != 33*4 {
		t.Fatalf("LVF = %d, want (32+1)*4", got)
	}
}

func TestRandomizerAccessor(t *testing.T) {
	s := MustNew(cfg())
	r := s.Randomizer()
	if r.Domain() != 256 {
		t.Fatal("randomizer domain")
	}
	for x := uint64(0); x < 256; x++ {
		if r.Decrypt(r.Encrypt(x)) != x {
			t.Fatal("randomizer not invertible")
		}
	}
}

package rbsg

import (
	"securityrbsg/internal/registry"
	"securityrbsg/internal/wear"
)

// The registry entry for plain Region-Based Start-Gap: the scheme the
// paper's RTA breaks, kept as a tournament victim. Defaults follow the
// RBSG paper's recommended configuration (R=32, ψ=100).
func init() {
	registry.RegisterScheme(registry.Scheme{
		Name: "rbsg",
		Doc:  "Region-Based Start-Gap: static randomizer + per-region Start-Gap",
		Caps: registry.SchemeCaps{Exact: true, TimingOracle: true},
		Defaults: func(cfg registry.Config) registry.Config {
			if cfg.Regions == 0 {
				cfg.Regions = 32
				for cfg.Regions > cfg.Lines {
					cfg.Regions /= 2
				}
			}
			if cfg.InnerInterval == 0 {
				cfg.InnerInterval = 100
			}
			return cfg
		},
		New: func(cfg registry.Config) (wear.Scheme, error) {
			return New(Config{
				Lines: cfg.Lines, Regions: cfg.Regions,
				Interval: cfg.InnerInterval, Seed: cfg.Seed,
			})
		},
	})
}

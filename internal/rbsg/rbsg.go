// Package rbsg implements Region-Based Start-Gap (Qureshi et al.,
// MICRO'09) — the first of the two prior schemes the paper attacks.
//
// RBSG translates the logical address to an intermediate address through a
// *static* randomizer (a Feistel network or a random invertible binary
// matrix, fixed once at boot), divides the intermediate space into R
// equal regions, and wear-levels each region independently with Start-Gap.
// The static randomizer destroys the spatial locality of ordinary write
// traffic, but — as Section III-B of the paper shows — it cannot hide the
// *relative* physical adjacency of logical lines, which the Remapping
// Timing Attack recovers one address bit at a time.
package rbsg

import (
	"fmt"

	"securityrbsg/internal/feistel"
	"securityrbsg/internal/startgap"
	"securityrbsg/internal/stats"
	"securityrbsg/internal/wear"
)

// Config describes an RBSG instance.
type Config struct {
	// Lines is the logical address-space size N; it must be a power of two
	// (the randomizer permutes B = log2 N address bits).
	Lines uint64
	// Regions is the number of independent Start-Gap regions R; it must
	// divide Lines. The paper sweeps 32–128 with 32 recommended.
	Regions uint64
	// Interval is the per-region remapping interval ψ (writes to a region
	// between gap movements). The paper sweeps 16–100 with 100 recommended.
	Interval uint64
	// Stages is the number of stages in the static Feistel randomizer
	// (ignored when UseMatrix is set). The RBSG paper uses 3.
	Stages int
	// UseMatrix selects the random-invertible-binary-matrix randomizer
	// instead of the Feistel network.
	UseMatrix bool
	// Seed seeds the randomizer key generation.
	Seed uint64
}

// Scheme is an RBSG wear-leveling instance implementing wear.Scheme.
type Scheme struct {
	cfg        Config
	randomizer feistel.Permutation
	regions    []*startgap.Region
	perRegion  uint64 // lines per region n = N/R
}

// New builds an RBSG scheme from cfg.
func New(cfg Config) (*Scheme, error) {
	if cfg.Lines == 0 || cfg.Lines&(cfg.Lines-1) != 0 {
		return nil, fmt.Errorf("rbsg: lines must be a power of two, got %d", cfg.Lines)
	}
	if cfg.Regions == 0 || cfg.Lines%cfg.Regions != 0 {
		return nil, fmt.Errorf("rbsg: regions %d must divide lines %d", cfg.Regions, cfg.Lines)
	}
	if cfg.Interval == 0 {
		return nil, fmt.Errorf("rbsg: interval must be at least 1")
	}
	if cfg.Stages <= 0 {
		cfg.Stages = 3
	}
	bits := uint(0)
	for v := cfg.Lines; v > 1; v >>= 1 {
		bits++
	}
	rng := stats.NewRNG(cfg.Seed)
	var randomizer feistel.Permutation
	var err error
	if cfg.UseMatrix {
		randomizer, err = feistel.NewMatrix(bits, rng)
	} else if bits%2 == 0 {
		randomizer, err = feistel.Random(bits, cfg.Stages, rng)
	} else {
		// Odd address width: run a (bits+1)-wide network under a
		// cycle-walking restriction to [0, N).
		var inner *feistel.Network
		inner, err = feistel.Random(bits+1, cfg.Stages, rng)
		if err == nil {
			randomizer, err = feistel.NewWalker(inner, cfg.Lines)
		}
	}
	if err != nil {
		return nil, err
	}
	// The static randomizer never rekeys, so for table-sized domains a
	// one-time materialization turns every per-access evaluation —
	// Feistel stages or a GF(2) matrix-vector product — into one slice
	// index (see feistel.MaxTableBits; paper-scale banks evaluate
	// directly).
	randomizer = feistel.Materialize(randomizer)
	s := &Scheme{cfg: cfg, randomizer: randomizer, perRegion: cfg.Lines / cfg.Regions}
	s.regions = make([]*startgap.Region, cfg.Regions)
	for i := range s.regions {
		base := uint64(i) * (s.perRegion + 1)
		r, err := startgap.New(s.perRegion, cfg.Interval, base)
		if err != nil {
			return nil, err
		}
		s.regions[i] = r
	}
	return s, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Scheme {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Name identifies the scheme.
func (s *Scheme) Name() string { return "rbsg" }

// Config returns the construction configuration.
func (s *Scheme) Config() Config { return s.cfg }

// LogicalLines returns N.
func (s *Scheme) LogicalLines() uint64 { return s.cfg.Lines }

// PhysicalLines returns R × (N/R + 1): one spare GapLine per region.
func (s *Scheme) PhysicalLines() uint64 {
	return s.cfg.Regions * (s.perRegion + 1)
}

// LinesPerRegion returns n = N/R.
func (s *Scheme) LinesPerRegion() uint64 { return s.perRegion }

// Randomizer exposes the static LA→IA permutation (tests verify the
// attack never needs it; the lifetime models do).
func (s *Scheme) Randomizer() feistel.Permutation { return s.randomizer }

// Region returns region i, for white-box tests.
func (s *Scheme) Region(i int) *startgap.Region { return s.regions[i] }

// Intermediate returns the intermediate address of la (after the static
// randomizer, before Start-Gap).
func (s *Scheme) Intermediate(la uint64) uint64 {
	return s.randomizer.Encrypt(la)
}

// Translate maps a logical address to its current physical line.
func (s *Scheme) Translate(la uint64) uint64 {
	ia := s.randomizer.Encrypt(la)
	region := ia / s.perRegion
	return s.regions[region].Translate(ia % s.perRegion)
}

// NoteWrite books the write against the region owning la's intermediate
// address and performs that region's gap movement when due.
func (s *Scheme) NoteWrite(la uint64, m wear.Mover) uint64 {
	ia := s.randomizer.Encrypt(la)
	return s.regions[ia/s.perRegion].NoteWrite(m)
}

// WritesToNextRemap implements wear.FastForwarder: of the next k writes
// to la, exactly the k-th can trigger a gap movement — the one in la's
// (static) region whose interval elapses. Movements in other regions
// cannot be triggered by writes to la, so k is exact, not a bound.
func (s *Scheme) WritesToNextRemap(la uint64) uint64 {
	ia := s.randomizer.Encrypt(la)
	return s.regions[ia/s.perRegion].WritesToNextMove()
}

// SkipWrites implements wear.FastForwarder: book k movement-free writes
// to la against its region (k < WritesToNextRemap(la)).
func (s *Scheme) SkipWrites(la, k uint64) {
	ia := s.randomizer.Encrypt(la)
	s.regions[ia/s.perRegion].SkipWrites(k)
}

// LineVulnerabilityFactor returns the LVF — the maximum number of writes a
// pinned logical address can land on one physical line before Start-Gap
// moves it: one full region round, (n+1) × ψ writes.
func (s *Scheme) LineVulnerabilityFactor() uint64 {
	return (s.perRegion + 1) * s.cfg.Interval
}

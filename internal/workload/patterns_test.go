package workload

import (
	"testing"
)

func TestStrided(t *testing.T) {
	s, err := NewStrided(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 3, 6, 1, 4, 7, 2, 5, 0}
	for i, w := range want {
		if got := s.NextLine(); got != w {
			t.Fatalf("step %d: got %d want %d", i, got, w)
		}
	}
	if _, err := NewStrided(0, 1); err == nil {
		t.Error("empty space must fail")
	}
	if _, err := NewStrided(8, 0); err == nil {
		t.Error("zero stride must fail")
	}
}

func TestStridedStaysInRange(t *testing.T) {
	s, _ := NewStrided(100, 37)
	for i := 0; i < 10000; i++ {
		if v := s.NextLine(); v >= 100 {
			t.Fatalf("escaped: %d", v)
		}
	}
}

func TestPhased(t *testing.T) {
	p, err := NewPhased(1<<16, 256, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Phases: long runs should stay inside a small window, with jumps
	// between runs. Count distinct 256-line buckets over a short burst vs
	// a long run.
	short := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		short[p.NextLine()>>8] = true
	}
	long := map[uint64]bool{}
	for i := 0; i < 100000; i++ {
		long[p.NextLine()>>8] = true
	}
	if len(short) > 5 {
		t.Fatalf("a short burst touched %d windows — no phase locality", len(short))
	}
	if len(long) < 20 {
		t.Fatalf("a long run touched only %d windows — phases never switch", len(long))
	}
	if _, err := NewPhased(16, 32, 10, 1); err == nil {
		t.Error("span larger than space must fail")
	}
	if _, err := NewPhased(16, 4, 0.5, 1); err == nil {
		t.Error("sub-1 dwell must fail")
	}
}

func TestMix(t *testing.T) {
	a, _ := NewStrided(100, 1)  // lines 0..99
	z := NewZipf(1<<12, 1.3, 2) // scattered
	m, err := NewMix(3, []Pattern{a, z}, []float64{9, 1})
	if err != nil {
		t.Fatal(err)
	}
	low := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if m.NextLine() < 100 {
			low++
		}
	}
	// ~90% from the strided source (plus a little zipf mass below 100).
	if frac := float64(low) / n; frac < 0.85 || frac > 0.98 {
		t.Fatalf("mix weight drifted: %.3f of accesses from the 9x source", frac)
	}
	if _, err := NewMix(1, nil, nil); err == nil {
		t.Error("empty mix must fail")
	}
	if _, err := NewMix(1, []Pattern{a}, []float64{-1}); err == nil {
		t.Error("negative weight must fail")
	}
	if _, err := NewMix(1, []Pattern{a}, []float64{1, 2}); err == nil {
		t.Error("mismatched weights must fail")
	}
}

func TestPatternAdapters(t *testing.T) {
	z := NewZipf(1<<10, 1.2, 4)
	if z.NextLine() >= 1<<10 {
		t.Fatal("zipf adapter range")
	}
	prof, _ := ByName("gcc")
	g := NewGenerator(prof, 1<<10, 5)
	if g.NextLine() >= 1<<10 {
		t.Fatal("generator adapter range")
	}
}

package workload

import (
	"math"
	"testing"
)

func TestSuiteSizes(t *testing.T) {
	// The paper runs 13 PARSEC and 27 SPEC CPU2006 benchmarks.
	if len(PARSEC) != 13 {
		t.Fatalf("PARSEC has %d profiles, want 13", len(PARSEC))
	}
	if len(SPEC) != 27 {
		t.Fatalf("SPEC has %d profiles, want 27", len(SPEC))
	}
}

func TestProfilesWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range append(append([]Profile{}, PARSEC...), SPEC...) {
		if seen[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if p.MPKI <= 0 || p.MPKI > 50 {
			t.Errorf("%s: implausible MPKI %v", p.Name, p.MPKI)
		}
		if p.WriteRatio <= 0 || p.WriteRatio >= 1 {
			t.Errorf("%s: write ratio %v", p.Name, p.WriteRatio)
		}
		if p.Footprint == 0 {
			t.Errorf("%s: zero footprint", p.Name)
		}
		if p.Locality <= 0 || p.Locality > 1 {
			t.Errorf("%s: locality %v", p.Name, p.Locality)
		}
		if p.Suite != "parsec" && p.Suite != "spec" {
			t.Errorf("%s: suite %q", p.Name, p.Suite)
		}
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("mcf")
	if !ok || p.Suite != "spec" {
		t.Fatal("mcf lookup")
	}
	if _, ok := ByName("doom"); ok {
		t.Fatal("unknown benchmark should miss")
	}
}

func TestGeneratorStatistics(t *testing.T) {
	prof, _ := ByName("canneal")
	g := NewGenerator(prof, 1<<20, 1)
	const n = 200000
	var gaps, writes float64
	for i := 0; i < n; i++ {
		a := g.Next()
		if a.Line >= 1<<20 {
			t.Fatalf("line out of memory: %d", a.Line)
		}
		gaps += float64(a.Gap)
		if a.Write {
			writes++
		}
	}
	// Mean gap ≈ 1000/MPKI cycles.
	wantGap := 1000 / prof.MPKI
	if mean := gaps / n; math.Abs(mean-wantGap) > 0.1*wantGap {
		t.Errorf("mean gap %.1f, want ≈%.1f", mean, wantGap)
	}
	if wr := writes / n; math.Abs(wr-prof.WriteRatio) > 0.02 {
		t.Errorf("write ratio %.3f, want %.3f", wr, prof.WriteRatio)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	prof, _ := ByName("gcc")
	a := NewGenerator(prof, 1<<16, 7)
	b := NewGenerator(prof, 1<<16, 7)
	for i := 0; i < 1000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("streams diverged at %d", i)
		}
	}
	if a.Profile().Name != "gcc" {
		t.Fatal("profile accessor")
	}
}

func TestGeneratorLocality(t *testing.T) {
	// A high-locality profile should revisit a small neighborhood much
	// more often than a streaming one.
	spread := func(name string) int {
		prof, _ := ByName(name)
		g := NewGenerator(prof, 1<<20, 3)
		buckets := map[uint64]bool{}
		for i := 0; i < 5000; i++ {
			buckets[g.Next().Line>>12] = true
		}
		return len(buckets)
	}
	if s1, s2 := spread("povray"), spread("mcf"); s1 >= s2 {
		t.Fatalf("povray touched %d 4K-line buckets vs mcf %d — locality knob inert", s1, s2)
	}
}

func TestZipf(t *testing.T) {
	z := NewZipf(1<<16, 1.2, 5)
	counts := map[uint64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 1<<16 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Heavily skewed: the single hottest line should absorb >5% of
	// accesses, and far fewer than n distinct lines should be touched.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/n < 0.05 {
		t.Errorf("hottest line only %.3f of traffic — not skewed", float64(max)/n)
	}
	if len(counts) > n/2 {
		t.Errorf("%d distinct lines touched — too uniform", len(counts))
	}
}

// Package workload generates the synthetic memory-access streams used by
// the performance-impact experiment (Section V-C-4) and by the general
// wear-leveling examples.
//
// The paper runs 13 PARSEC and 27 SPEC CPU2006 benchmarks under Gem5; we
// have neither the suites nor Gem5, so each benchmark is replaced by a
// profile of the only properties that reach the memory controller in that
// experiment: how often a core misses to memory (MPKI), the write share,
// and how bursty the misses are. Profile numbers are synthetic but ranked
// to match the suites' published memory-intensity folklore (e.g. mcf and
// lbm memory-bound, povray and gamess cache-resident); the experiment's
// measured quantity — IPC degradation caused by the wear-leveling layer —
// depends only on these aggregates.
package workload

import (
	"math"
	"math/rand"

	"securityrbsg/internal/stats"
)

// Access is one memory request as seen below the cache hierarchy.
type Access struct {
	// Line is the logical memory line touched.
	Line uint64
	// Write distinguishes writebacks from fills.
	Write bool
	// Gap is the number of core cycles since the previous access of the
	// same core (burstiness).
	Gap uint64
}

// Profile describes one synthetic benchmark.
type Profile struct {
	// Name labels the benchmark (PARSEC/SPEC names).
	Name string
	// Suite is "parsec" or "spec".
	Suite string
	// MPKI is misses (to memory) per kilo-instruction.
	MPKI float64
	// WriteRatio is the fraction of memory requests that are writes.
	WriteRatio float64
	// Footprint is the working-set size in lines.
	Footprint uint64
	// Locality in (0,1]: probability that an access stays within the
	// current hot region rather than jumping (spatial locality knob).
	Locality float64
}

// PARSEC lists the 13 PARSEC benchmarks with synthetic memory profiles.
var PARSEC = []Profile{
	{Name: "blackscholes", Suite: "parsec", MPKI: 0.6, WriteRatio: 0.25, Footprint: 1 << 14, Locality: 0.90},
	{Name: "bodytrack", Suite: "parsec", MPKI: 1.1, WriteRatio: 0.30, Footprint: 1 << 15, Locality: 0.85},
	{Name: "canneal", Suite: "parsec", MPKI: 9.5, WriteRatio: 0.35, Footprint: 1 << 19, Locality: 0.40},
	{Name: "dedup", Suite: "parsec", MPKI: 3.8, WriteRatio: 0.45, Footprint: 1 << 17, Locality: 0.65},
	{Name: "facesim", Suite: "parsec", MPKI: 4.2, WriteRatio: 0.40, Footprint: 1 << 17, Locality: 0.70},
	{Name: "ferret", Suite: "parsec", MPKI: 2.9, WriteRatio: 0.35, Footprint: 1 << 16, Locality: 0.70},
	{Name: "fluidanimate", Suite: "parsec", MPKI: 2.4, WriteRatio: 0.45, Footprint: 1 << 16, Locality: 0.75},
	{Name: "freqmine", Suite: "parsec", MPKI: 1.6, WriteRatio: 0.30, Footprint: 1 << 16, Locality: 0.80},
	{Name: "raytrace", Suite: "parsec", MPKI: 0.9, WriteRatio: 0.20, Footprint: 1 << 15, Locality: 0.85},
	{Name: "streamcluster", Suite: "parsec", MPKI: 11.0, WriteRatio: 0.30, Footprint: 1 << 19, Locality: 0.35},
	{Name: "swaptions", Suite: "parsec", MPKI: 0.4, WriteRatio: 0.25, Footprint: 1 << 13, Locality: 0.92},
	{Name: "vips", Suite: "parsec", MPKI: 2.1, WriteRatio: 0.40, Footprint: 1 << 16, Locality: 0.75},
	{Name: "x264", Suite: "parsec", MPKI: 1.8, WriteRatio: 0.35, Footprint: 1 << 16, Locality: 0.80},
}

// SPEC lists the 27 SPEC CPU2006 benchmarks with synthetic memory
// profiles (bzip2 and gcc deliberately sparse: the paper observes they
// show no IPC degradation at all).
var SPEC = []Profile{
	{Name: "perlbench", Suite: "spec", MPKI: 0.8, WriteRatio: 0.30, Footprint: 1 << 15, Locality: 0.85},
	{Name: "bzip2", Suite: "spec", MPKI: 0.3, WriteRatio: 0.30, Footprint: 1 << 14, Locality: 0.92},
	{Name: "gcc", Suite: "spec", MPKI: 0.4, WriteRatio: 0.35, Footprint: 1 << 14, Locality: 0.90},
	{Name: "bwaves", Suite: "spec", MPKI: 2.2, WriteRatio: 0.25, Footprint: 1 << 19, Locality: 0.45},
	{Name: "gamess", Suite: "spec", MPKI: 0.1, WriteRatio: 0.20, Footprint: 1 << 12, Locality: 0.95},
	{Name: "mcf", Suite: "spec", MPKI: 3.0, WriteRatio: 0.30, Footprint: 1 << 20, Locality: 0.25},
	{Name: "milc", Suite: "spec", MPKI: 2.8, WriteRatio: 0.35, Footprint: 1 << 19, Locality: 0.35},
	{Name: "zeusmp", Suite: "spec", MPKI: 2.0, WriteRatio: 0.35, Footprint: 1 << 17, Locality: 0.65},
	{Name: "gromacs", Suite: "spec", MPKI: 0.7, WriteRatio: 0.30, Footprint: 1 << 14, Locality: 0.88},
	{Name: "cactusADM", Suite: "spec", MPKI: 2.0, WriteRatio: 0.40, Footprint: 1 << 17, Locality: 0.60},
	{Name: "leslie3d", Suite: "spec", MPKI: 1.5, WriteRatio: 0.35, Footprint: 1 << 18, Locality: 0.50},
	{Name: "namd", Suite: "spec", MPKI: 0.3, WriteRatio: 0.25, Footprint: 1 << 13, Locality: 0.92},
	{Name: "gobmk", Suite: "spec", MPKI: 0.6, WriteRatio: 0.30, Footprint: 1 << 14, Locality: 0.88},
	{Name: "dealII", Suite: "spec", MPKI: 1.2, WriteRatio: 0.30, Footprint: 1 << 15, Locality: 0.82},
	{Name: "soplex", Suite: "spec", MPKI: 1.8, WriteRatio: 0.30, Footprint: 1 << 18, Locality: 0.45},
	{Name: "povray", Suite: "spec", MPKI: 0.1, WriteRatio: 0.25, Footprint: 1 << 12, Locality: 0.95},
	{Name: "calculix", Suite: "spec", MPKI: 1.4, WriteRatio: 0.30, Footprint: 1 << 15, Locality: 0.80},
	{Name: "hmmer", Suite: "spec", MPKI: 0.9, WriteRatio: 0.30, Footprint: 1 << 14, Locality: 0.88},
	{Name: "sjeng", Suite: "spec", MPKI: 0.5, WriteRatio: 0.30, Footprint: 1 << 14, Locality: 0.90},
	{Name: "GemsFDTD", Suite: "spec", MPKI: 2.0, WriteRatio: 0.35, Footprint: 1 << 19, Locality: 0.40},
	{Name: "libquantum", Suite: "spec", MPKI: 2.5, WriteRatio: 0.25, Footprint: 1 << 19, Locality: 0.55},
	{Name: "h264ref", Suite: "spec", MPKI: 0.7, WriteRatio: 0.35, Footprint: 1 << 14, Locality: 0.88},
	{Name: "tonto", Suite: "spec", MPKI: 0.6, WriteRatio: 0.30, Footprint: 1 << 14, Locality: 0.88},
	{Name: "lbm", Suite: "spec", MPKI: 3.5, WriteRatio: 0.45, Footprint: 1 << 20, Locality: 0.30},
	{Name: "omnetpp", Suite: "spec", MPKI: 2.2, WriteRatio: 0.35, Footprint: 1 << 18, Locality: 0.35},
	{Name: "astar", Suite: "spec", MPKI: 1.6, WriteRatio: 0.30, Footprint: 1 << 16, Locality: 0.70},
	{Name: "xalancbmk", Suite: "spec", MPKI: 2.5, WriteRatio: 0.30, Footprint: 1 << 17, Locality: 0.55},
}

// ByName returns the profile with the given name from either suite.
func ByName(name string) (Profile, bool) {
	for _, p := range PARSEC {
		if p.Name == name {
			return p, true
		}
	}
	for _, p := range SPEC {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Generator produces a benchmark's memory-access stream.
type Generator struct {
	prof  Profile
	rng   *stats.RNG
	hot   uint64 // current hot-region base
	lines uint64 // memory size to wrap into
}

// NewGenerator builds a generator for prof over a memory of `lines`
// logical lines.
func NewGenerator(prof Profile, lines uint64, seed uint64) *Generator {
	return &Generator{prof: prof, rng: stats.NewRNG(seed), lines: lines}
}

// Profile returns the generator's benchmark profile.
func (g *Generator) Profile() Profile { return g.prof }

// Next produces the next access. Gap is drawn geometrically from the MPKI
// (1000/MPKI core cycles between misses on average, halved for burst
// pairs), and the line follows a hot-region random walk sized by the
// footprint with jumps at rate 1-Locality.
func (g *Generator) Next() Access {
	p := g.prof
	// Hot-region random walk over the footprint.
	if g.rng.Float64() > p.Locality {
		g.hot = g.rng.Uint64n(g.lines)
	}
	span := p.Footprint
	if span > g.lines {
		span = g.lines
	}
	line := (g.hot + g.rng.Uint64n(span)) % g.lines
	meanGap := 1000.0 / p.MPKI
	// Exponential inter-arrival via inverse CDF, quantized to cycles.
	u := g.rng.Float64()
	gap := uint64(-meanGap * math.Log(1-u))
	if gap == 0 {
		gap = 1
	}
	return Access{
		Line:  line,
		Write: g.rng.Float64() < p.WriteRatio,
		Gap:   gap,
	}
}

// Zipf produces a skewed line distribution — the classic non-uniform
// write traffic that motivates wear leveling in the first place.
type Zipf struct {
	z     *rand.Zipf
	perm  func(uint64) uint64
	lines uint64
}

// NewZipf builds a Zipf sampler over [0, lines) with exponent s > 1.
// Ranks are scattered across the address space by a multiplicative hash,
// so the hot lines are not all at low addresses.
func NewZipf(lines uint64, s float64, seed uint64) *Zipf {
	//rbsglint:allow simdeterminism -- rand.Zipf is only a distribution shaper; it draws exclusively from the seeded stats.Source stream
	z := rand.NewZipf(rand.New(stats.Source{R: stats.NewRNG(seed)}), s, 1, lines-1)
	return &Zipf{
		z:     z,
		lines: lines,
		perm: func(x uint64) uint64 {
			return (x * 0x9e3779b97f4a7c15) % lines
		},
	}
}

// Next draws one Zipf-distributed line in [0, lines).
func (z *Zipf) Next() uint64 { return z.perm(z.z.Uint64()) }

package workload

import (
	"fmt"

	"securityrbsg/internal/stats"
)

// Pattern is a minimal line-address stream: anything that can feed demand
// writes into a wear-leveling experiment. Generator, Zipf and the types
// below all satisfy it via small adapters where needed.
type Pattern interface {
	// NextLine returns the next logical line touched.
	NextLine() uint64
}

// NextLine lets Zipf satisfy Pattern.
func (z *Zipf) NextLine() uint64 { return z.Next() }

// NextLine lets Generator satisfy Pattern (dropping the metadata).
func (g *Generator) NextLine() uint64 { return g.Next().Line }

// Strided walks the address space with a fixed stride — the classic
// matrix-column access pattern. With a stride sharing a large factor with
// the memory size it revisits a small subset of lines heavily, which is
// exactly the traffic shape that defeats naive leveling.
type Strided struct {
	lines  uint64
	stride uint64
	pos    uint64
}

// NewStrided builds a strided walker over [0, lines) with the given
// stride (≥ 1).
func NewStrided(lines, stride uint64) (*Strided, error) {
	if lines == 0 {
		return nil, fmt.Errorf("workload: empty address space")
	}
	if stride == 0 {
		return nil, fmt.Errorf("workload: stride must be at least 1")
	}
	return &Strided{lines: lines, stride: stride % lines}, nil
}

// NextLine returns the next strided address.
func (s *Strided) NextLine() uint64 {
	v := s.pos
	s.pos += s.stride
	if s.pos >= s.lines {
		s.pos -= s.lines
	}
	return v
}

// Phased models applications that move between working sets: it dwells
// in one region of the address space for a random period, then jumps to
// another — the behavior that makes static randomization insufficient
// and periodic remapping necessary.
type Phased struct {
	lines     uint64
	span      uint64
	meanDwell float64
	rng       *stats.RNG
	base      uint64
	left      uint64
}

// NewPhased builds a phase-switching pattern: each phase touches a
// `span`-line window uniformly for a geometrically distributed number of
// accesses with the given mean.
func NewPhased(lines, span uint64, meanDwell float64, seed uint64) (*Phased, error) {
	if lines == 0 || span == 0 || span > lines {
		return nil, fmt.Errorf("workload: bad phased geometry %d/%d", span, lines)
	}
	if meanDwell < 1 {
		return nil, fmt.Errorf("workload: mean dwell must be at least 1")
	}
	return &Phased{
		lines: lines, span: span, meanDwell: meanDwell,
		rng: stats.NewRNG(seed),
	}, nil
}

// NextLine returns the next access, switching phases when the dwell runs
// out.
func (p *Phased) NextLine() uint64 {
	if p.left == 0 {
		p.base = p.rng.Uint64n(p.lines)
		// Geometric dwell via inverse CDF on a uniform draw.
		u := p.rng.Float64()
		d := uint64(1)
		for u > 1/p.meanDwell && d < uint64(p.meanDwell*8) {
			u *= 1 - 1/p.meanDwell
			d++
		}
		p.left = d
	}
	p.left--
	return (p.base + p.rng.Uint64n(p.span)) % p.lines
}

// Mix interleaves several patterns with weights — a multi-programmed
// workload as the shared memory controller sees it.
type Mix struct {
	rng      *stats.RNG
	patterns []Pattern
	cum      []float64
}

// NewMix builds a weighted interleaving of patterns. Weights must be
// positive and match the pattern count.
func NewMix(seed uint64, patterns []Pattern, weights []float64) (*Mix, error) {
	if len(patterns) == 0 || len(patterns) != len(weights) {
		return nil, fmt.Errorf("workload: %d patterns vs %d weights", len(patterns), len(weights))
	}
	m := &Mix{rng: stats.NewRNG(seed), patterns: patterns, cum: make([]float64, len(weights))}
	var total float64
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("workload: weight %d must be positive", i)
		}
		total += w
		m.cum[i] = total
	}
	for i := range m.cum {
		m.cum[i] /= total
	}
	return m, nil
}

// NextLine draws a pattern by weight and forwards.
func (m *Mix) NextLine() uint64 {
	u := m.rng.Float64()
	for i, c := range m.cum {
		if u <= c {
			return m.patterns[i].NextLine()
		}
	}
	return m.patterns[len(m.patterns)-1].NextLine()
}

// Package analytic holds the closed-form models from the paper that are
// not simulations: the hardware-overhead accounting of Section V-C-3, the
// security condition that sizes the Dynamic Feistel Network (Section IV-B
// / V-C-1), and the remapping-latency table of Fig 4.
package analytic

import (
	"fmt"
	"math"

	"securityrbsg/internal/pcm"
)

// Log2 returns ceil(log2(n)) for n >= 1 (0 for n <= 1).
func Log2(n uint64) uint {
	b := uint(0)
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}

// Overhead is the hardware cost of a Security RBSG instance.
type Overhead struct {
	// RegisterBits counts controller registers: the outer level needs B
	// bits of Gap and log2(ψo) of write counter plus B bits per stage for
	// the Kc and Kp entries; each inner sub-region needs Start, Gap and a
	// write counter.
	RegisterBits uint64
	// SparePCMBytes is the extra PCM for gap lines: one per sub-region
	// plus the outer spare line.
	SparePCMBytes uint64
	// SRAMBits is the isRemap bit storage (one bit per line).
	SRAMBits uint64
	// Gates approximates the DFN logic: each stage's cubing circuit is a
	// squarer (≈ B²/2 gates) feeding a multiplier (≈ B² gates) on
	// half-width operands, (3/8)·B² per stage (Liddicoat & Flynn).
	Gates uint64
}

// OverheadParams are the inputs to the overhead model.
type OverheadParams struct {
	Lines         uint64 // logical lines N
	Regions       uint64 // inner sub-regions R
	InnerInterval uint64 // ψ inner
	OuterInterval uint64 // ψ outer
	Stages        int    // DFN stages S
	LineBytes     uint64 // memory line size
}

// ComputeOverhead evaluates the Section V-C-3 formulas:
//
//	registers: (S+1)·B + log2(ψo) + R·(2·log2(N/R) + log2(ψi)) bits
//	spare PCM: (R+1) lines — the paper's text prints "(S+1)×256 byte",
//	           which is inconsistent with its own scheme (every one of the
//	           R sub-regions carries a GapLine, plus the outer spare); we
//	           report the per-construction count
//	SRAM:      N isRemap bits (0.5 MB for the 1 GB / 256 B configuration,
//	           matching the paper's stated total)
//	gates:     (3/8)·S·B²
func ComputeOverhead(p OverheadParams) Overhead {
	b := uint64(Log2(p.Lines))
	perRegion := p.Lines / p.Regions
	return Overhead{
		RegisterBits: (uint64(p.Stages)+1)*b + uint64(Log2(p.OuterInterval)) +
			p.Regions*(2*uint64(Log2(perRegion))+uint64(Log2(p.InnerInterval))),
		SparePCMBytes: (p.Regions + 1) * p.LineBytes,
		SRAMBits:      p.Lines,
		Gates:         3 * uint64(p.Stages) * b * b / 8,
	}
}

// String formats the overhead like the paper's prose (≈2 KB registers,
// spare lines, 0.5 MB SRAM, gate count).
func (o Overhead) String() string {
	return fmt.Sprintf("registers=%.1fKB sparePCM=%dB sram=%.2fMB gates=%d",
		float64(o.RegisterBits)/8/1024,
		o.SparePCMBytes,
		float64(o.SRAMBits)/8/1024/1024,
		o.Gates)
}

// MinStages returns the smallest DFN stage count that keeps the key ahead
// of RTA detection for an outer remapping interval ψo over a B-bit
// address space.
//
// Derivation (Section IV-B, conceding the attacker SR-grade efficiency):
// detecting one key bit costs at least N/R writes to the target
// sub-region; the keys rotate after one outer remapping round, which the
// paper accounts as (N/R)·ψo such writes. Detection fails when
// S·B · (N/R) ≥ (N/R)·ψo, i.e. when S·B ≥ ψo — the paper's example:
// 22-bit stage keys, ψo = 128 ⇒ a ≥128-bit key array ⇒ S = 6, and 6
// stages remain sufficient up to ψo = 132.
func MinStages(outerInterval uint64, addressBits uint) int {
	if addressBits == 0 {
		return 1
	}
	s := int((outerInterval + uint64(addressBits) - 1) / uint64(addressBits))
	if s < 1 {
		s = 1
	}
	return s
}

// DetectionOutrunsKeys reports whether an RTA key extraction (at the
// conceded one-bit-per-(N/R)-writes rate) completes before the DFN
// re-keys — true means the configuration is insecure.
func DetectionOutrunsKeys(stages int, addressBits uint, outerInterval uint64) bool {
	return uint64(stages)*uint64(addressBits) < outerInterval
}

// RemapLatencies is the Fig 4 table: the latency of one remapping
// movement as a function of the data being moved.
type RemapLatencies struct {
	// MoveZeros / MoveOnes: Start-Gap style copy (read + write) of an
	// ALL-0 / ALL-1 line — 250 / 1125 ns at default timing.
	MoveZeros, MoveOnes uint64
	// SwapZeros / SwapMixed / SwapOnes: Security Refresh pair swap
	// (2 reads + 2 writes) of two ALL-0 lines, one of each, or two ALL-1
	// lines — 500 / 1375 / 2250 ns at default timing.
	SwapZeros, SwapMixed, SwapOnes uint64
}

// Fig4 computes the remapping-latency table for a device timing.
func Fig4(t pcm.Timing) RemapLatencies {
	return RemapLatencies{
		MoveZeros: t.ReadNs + t.ResetNs,
		MoveOnes:  t.ReadNs + t.SetNs,
		SwapZeros: 2 * (t.ReadNs + t.ResetNs),
		SwapMixed: 2*t.ReadNs + t.ResetNs + t.SetNs,
		SwapOnes:  2 * (t.ReadNs + t.SetNs),
	}
}

// WriteOverheadBound returns the steady-state fraction of device writes
// that are wear-leveling movements rather than demand writes, for a
// scheme performing `writesPerMove` device writes every `interval` demand
// writes (Start-Gap: 1 write per move; SR: 2 writes per swap step on
// average every other step). The paper requires this to stay below 1%.
func WriteOverheadBound(writesPerMove float64, interval uint64) float64 {
	return writesPerMove / float64(interval)
}

// SecondsToDays converts a duration for reporting.
func SecondsToDays(s float64) float64 { return s / 86400 }

// SecondsToMonths converts a duration using the paper's 30-day month.
func SecondsToMonths(s float64) float64 { return s / (86400 * 30) }

// SecondsToYears converts a duration.
func SecondsToYears(s float64) float64 { return s / (86400 * 365) }

// HumanDuration renders seconds at an appropriate scale.
func HumanDuration(s float64) string {
	switch {
	case s < 1:
		return fmt.Sprintf("%.3gms", s*1e3)
	case s < 120:
		return fmt.Sprintf("%.3gs", s)
	case s < 2*3600:
		return fmt.Sprintf("%.3gmin", s/60)
	case s < 3*86400:
		return fmt.Sprintf("%.3gh", s/3600)
	case s < 400*86400:
		return fmt.Sprintf("%.3gdays", SecondsToDays(s))
	default:
		return fmt.Sprintf("%.3gyears", math.Round(SecondsToYears(s)*100)/100)
	}
}

package analytic

import (
	"strings"
	"testing"

	"securityrbsg/internal/pcm"
)

func TestLog2(t *testing.T) {
	cases := map[uint64]uint{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1 << 22: 22, 100: 7}
	for n, want := range cases {
		if got := Log2(n); got != want {
			t.Errorf("Log2(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestPaperOverhead reproduces Section V-C-3's totals for the recommended
// 1 GB configuration: ≈2 KB of registers, 0.5 MB of isRemap SRAM.
func TestPaperOverhead(t *testing.T) {
	o := ComputeOverhead(OverheadParams{
		Lines: 1 << 22, Regions: 512,
		InnerInterval: 64, OuterInterval: 128,
		Stages: 7, LineBytes: 256,
	})
	kb := float64(o.RegisterBits) / 8 / 1024
	if kb < 1.5 || kb > 2.5 {
		t.Errorf("register overhead %.2f KB, paper says ≈2 KB", kb)
	}
	if mb := float64(o.SRAMBits) / 8 / 1024 / 1024; mb != 0.5 {
		t.Errorf("SRAM %.2f MB, paper says 0.5 MB", mb)
	}
	// (R+1) spare lines of 256 B.
	if o.SparePCMBytes != 513*256 {
		t.Errorf("spare PCM %d B", o.SparePCMBytes)
	}
	// (3/8)·S·B² gates.
	if o.Gates != 3*7*22*22/8 {
		t.Errorf("gates %d", o.Gates)
	}
	if !strings.Contains(o.String(), "KB") {
		t.Error("String formatting")
	}
}

// TestMinStagesPaperExample: ψo=128 with 22-bit keys needs 6 stages, and 6
// stages remain sufficient up to ψo = 132 (Section V-C-1).
func TestMinStagesPaperExample(t *testing.T) {
	if got := MinStages(128, 22); got != 6 {
		t.Fatalf("MinStages(128,22) = %d, want 6", got)
	}
	if got := MinStages(132, 22); got != 6 {
		t.Fatalf("MinStages(132,22) = %d, want 6", got)
	}
	if got := MinStages(133, 22); got != 7 {
		t.Fatalf("MinStages(133,22) = %d, want 7", got)
	}
	if MinStages(1, 22) != 1 || MinStages(10, 0) != 1 {
		t.Fatal("edge cases")
	}
}

func TestDetectionOutrunsKeys(t *testing.T) {
	// 3-stage, 22-bit, ψo=128: 66 < 128 — insecure, RTA wins.
	if !DetectionOutrunsKeys(3, 22, 128) {
		t.Error("3 stages should leak at ψo=128")
	}
	// 6-stage: 132 ≥ 128 — secure.
	if DetectionOutrunsKeys(6, 22, 128) {
		t.Error("6 stages should hold at ψo=128")
	}
	if DetectionOutrunsKeys(7, 22, 128) {
		t.Error("7 stages should hold")
	}
}

func TestFig4Table(t *testing.T) {
	l := Fig4(pcm.DefaultTiming)
	if l.MoveZeros != 250 || l.MoveOnes != 1125 {
		t.Errorf("Start-Gap moves %d/%d, want 250/1125", l.MoveZeros, l.MoveOnes)
	}
	if l.SwapZeros != 500 || l.SwapMixed != 1375 || l.SwapOnes != 2250 {
		t.Errorf("SR swaps %d/%d/%d, want 500/1375/2250",
			l.SwapZeros, l.SwapMixed, l.SwapOnes)
	}
}

func TestWriteOverheadBound(t *testing.T) {
	// Start-Gap at ψ=100: 1%.
	if got := WriteOverheadBound(1, 100); got != 0.01 {
		t.Errorf("overhead %v", got)
	}
	// SR swap writes 2 lines per step, half the steps swap: 1 line/step.
	if got := WriteOverheadBound(1, 64); got > 0.016 {
		t.Errorf("overhead %v", got)
	}
}

func TestDurations(t *testing.T) {
	if SecondsToDays(86400) != 1 || SecondsToMonths(86400*30) != 1 || SecondsToYears(86400*365) != 1 {
		t.Fatal("conversions")
	}
	for s, frag := range map[float64]string{
		0.001:        "ms",
		30:           "s",
		600:          "min",
		7200:         "h",
		86400 * 2:    "h",
		86400 * 30:   "days",
		86400 * 4855: "years",
	} {
		if got := HumanDuration(s); !strings.Contains(got, frag) {
			t.Errorf("HumanDuration(%v) = %q, want unit %q", s, got, frag)
		}
	}
}

// Package tablewl implements the table-based wear-leveling family the
// paper's Section II-A surveys (Zhou et al. ISCA'09, Dong et al. DAC'11,
// Yun et al. DATE'12): an indirection table maps every logical line to a
// physical line, per-line write counters identify hot and cold lines, and
// a periodic leveling action swaps the hottest logical line onto the
// least-worn physical line.
//
// It exists here as the foil the paper sets up: table-based schemes
// level ordinary traffic well, but they are "deterministic in nature so
// that the location of the mapped line can be guessed easily, and thus
// can be attacked easily" — an adversary who knows the algorithm can
// replay the controller's decisions from its own write stream and aim
// every write at whichever logical line currently sits on a chosen
// physical victim (the Address Inference Attack, attack.AIA). The tests
// and benches quantify both halves.
//
// The leveling action scans the counters linearly; hardware would keep
// heaps or sampled counters, but the simulation-side complexity is not
// the object of study.
package tablewl

import (
	"fmt"

	"securityrbsg/internal/wear"
)

// Config describes a table-based wear leveler.
type Config struct {
	// Lines is the logical (and physical) space size.
	Lines uint64
	// Interval is the number of demand writes between leveling actions.
	Interval uint64
	// HotThreshold is the minimum hotness (writes since the line's last
	// move) a line must reach to be migrated; below it the action is a
	// no-op. Defaults to Interval/2.
	HotThreshold uint64
}

// Scheme is a hot-cold swapping table wear leveler implementing
// wear.Scheme.
type Scheme struct {
	cfg  Config
	toPA []uint32 // logical → physical
	toLA []uint32 // physical → logical
	wear []uint32 // device writes per physical line (controller's view)
	hot  []uint32 // writes per logical line since it last moved

	writeCount uint64
	swaps      uint64
	actions    uint64
}

// New builds a table wear leveler with the identity initial mapping.
func New(cfg Config) (*Scheme, error) {
	if cfg.Lines == 0 {
		return nil, fmt.Errorf("tablewl: need at least one line")
	}
	if cfg.Lines > 1<<31 {
		return nil, fmt.Errorf("tablewl: %d lines overflow the 32-bit table", cfg.Lines)
	}
	if cfg.Interval == 0 {
		return nil, fmt.Errorf("tablewl: interval must be at least 1")
	}
	if cfg.HotThreshold == 0 {
		cfg.HotThreshold = cfg.Interval / 2
	}
	s := &Scheme{
		cfg:  cfg,
		toPA: make([]uint32, cfg.Lines),
		toLA: make([]uint32, cfg.Lines),
		wear: make([]uint32, cfg.Lines),
		hot:  make([]uint32, cfg.Lines),
	}
	for i := range s.toPA {
		s.toPA[i] = uint32(i)
		s.toLA[i] = uint32(i)
	}
	return s, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Scheme {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Name identifies the scheme.
func (s *Scheme) Name() string { return "table-wl" }

// LogicalLines returns N.
func (s *Scheme) LogicalLines() uint64 { return s.cfg.Lines }

// PhysicalLines returns N — table swaps need no spare line.
func (s *Scheme) PhysicalLines() uint64 { return s.cfg.Lines }

// Swaps returns the number of hot-cold migrations performed.
func (s *Scheme) Swaps() uint64 { return s.swaps }

// Translate maps a logical line through the indirection table.
func (s *Scheme) Translate(la uint64) uint64 {
	if la >= s.cfg.Lines {
		panic(fmt.Errorf("tablewl: logical address %d out of space of %d lines", la, s.cfg.Lines))
	}
	return uint64(s.toPA[la])
}

// NoteWrite books the write in the counters and performs the leveling
// action when the interval elapses.
func (s *Scheme) NoteWrite(la uint64, m wear.Mover) uint64 {
	s.hot[la]++
	s.wear[s.toPA[la]]++
	s.writeCount++
	if s.writeCount < s.cfg.Interval {
		return 0
	}
	s.writeCount = 0
	return s.level(m)
}

// level is one leveling action: migrate the hottest logical line onto the
// least-worn physical line (swapping with that line's current occupant),
// if it is hot enough to bother.
func (s *Scheme) level(m wear.Mover) uint64 {
	s.actions++
	hotLA, hotVal := 0, uint32(0)
	for la, h := range s.hot {
		if h > hotVal {
			hotVal = h
			hotLA = la
		}
	}
	if uint64(hotVal) < s.cfg.HotThreshold {
		return 0
	}
	coldPA, coldVal := 0, ^uint32(0)
	for pa, w := range s.wear {
		if w < coldVal {
			coldVal = w
			coldPA = pa
		}
	}
	hotPA := s.toPA[hotLA]
	if uint64(hotPA) == uint64(coldPA) {
		s.hot[hotLA] = 0
		return 0
	}
	// Swap the two lines' data and table entries; the swap itself wears
	// both physical lines.
	ns := m.Swap(uint64(hotPA), uint64(coldPA))
	otherLA := s.toLA[coldPA]
	s.toPA[hotLA], s.toPA[otherLA] = uint32(coldPA), hotPA
	s.toLA[coldPA], s.toLA[hotPA] = uint32(hotLA), otherLA
	s.wear[hotPA]++
	s.wear[coldPA]++
	s.hot[hotLA] = 0
	s.hot[otherLA] = 0
	s.swaps++
	return ns
}

// TableBits returns the SRAM cost of the indirection state: two tables of
// N entries × log2 N bits plus N write counters — the "great space and
// time overhead" that motivated algebraic schemes (Section II-A).
func (s *Scheme) TableBits() uint64 {
	b := uint64(0)
	for v := s.cfg.Lines - 1; v > 0; v >>= 1 {
		b++
	}
	const counterBits = 32
	return s.cfg.Lines * (2*b + counterBits)
}

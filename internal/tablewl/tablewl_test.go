package tablewl

import (
	"testing"

	"securityrbsg/internal/schemetest"
	"securityrbsg/internal/stats"
	"securityrbsg/internal/wear"
)

func TestValidation(t *testing.T) {
	if _, err := New(Config{Lines: 0, Interval: 1}); err == nil {
		t.Error("zero lines must fail")
	}
	if _, err := New(Config{Lines: 8, Interval: 0}); err == nil {
		t.Error("zero interval must fail")
	}
	if _, err := New(Config{Lines: 1 << 32, Interval: 1}); err == nil {
		t.Error("oversized table must fail")
	}
}

func TestInitialIdentity(t *testing.T) {
	s := MustNew(Config{Lines: 16, Interval: 4})
	for la := uint64(0); la < 16; la++ {
		if s.Translate(la) != la {
			t.Fatal("initial mapping must be the identity")
		}
	}
	if err := wear.CheckBijection(s); err != nil {
		t.Fatal(err)
	}
}

func TestDataIntegrity(t *testing.T) {
	s := MustNew(Config{Lines: 64, Interval: 8})
	if _, err := schemetest.Exercise(s, 20000, 17, 1); err != nil {
		t.Fatal(err)
	}
}

func TestHammerTriggersMigration(t *testing.T) {
	s := MustNew(Config{Lines: 32, Interval: 8, HotThreshold: 4})
	m := schemetest.NewTokenMover(s)
	for i := 0; i < 64; i++ {
		s.NoteWrite(5, m)
	}
	if s.Swaps() == 0 {
		t.Fatal("hammering one line never triggered a migration")
	}
	if err := schemetest.Verify(s, m); err != nil {
		t.Fatal(err)
	}
}

// TestLevelsHotTraffic is the scheme working as designed: under skewed
// traffic the hot logical line keeps being re-seated on cold physical
// lines, spreading wear.
func TestLevelsHotTraffic(t *testing.T) {
	s := MustNew(Config{Lines: 32, Interval: 8, HotThreshold: 4})
	m := schemetest.NewTokenMover(s)
	rng := stats.NewRNG(3)
	touched := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		la := uint64(7)
		if rng.Float64() < 0.2 {
			la = rng.Uint64n(32)
		}
		touched[s.Translate(7)] = true
		s.NoteWrite(la, m)
	}
	if len(touched) < 8 {
		t.Fatalf("hot line visited only %d physical lines — not leveling", len(touched))
	}
}

// TestDeterminism is the paper's indictment of the family: two instances
// fed the same write stream make identical decisions, so an attacker can
// replay the controller's state from its own writes.
func TestDeterminism(t *testing.T) {
	a := MustNew(Config{Lines: 64, Interval: 8})
	b := MustNew(Config{Lines: 64, Interval: 8})
	ma, mb := schemetest.NewTokenMover(a), schemetest.NewTokenMover(b)
	rng := stats.NewRNG(9)
	for i := 0; i < 10000; i++ {
		la := rng.Uint64n(64)
		a.NoteWrite(la, ma)
		b.NoteWrite(la, mb)
	}
	for la := uint64(0); la < 64; la++ {
		if a.Translate(la) != b.Translate(la) {
			t.Fatalf("replicas diverged at LA %d — scheme is not deterministic?!", la)
		}
	}
}

func TestHotThresholdGatesNoopActions(t *testing.T) {
	s := MustNew(Config{Lines: 64, Interval: 4, HotThreshold: 1000})
	m := schemetest.NewTokenMover(s)
	rng := stats.NewRNG(4)
	for i := 0; i < 4000; i++ {
		s.NoteWrite(rng.Uint64n(64), m)
	}
	if s.Swaps() != 0 {
		t.Fatalf("uniform traffic below threshold caused %d swaps", s.Swaps())
	}
}

func TestTableBits(t *testing.T) {
	s := MustNew(Config{Lines: 1 << 22, Interval: 64})
	// 2 tables × 22 bits + 32-bit counter per line = 76 bits × 4M lines
	// ≈ 38 MB — the paper's "great space overhead" versus RBSG's ~100 B.
	if got := s.TableBits(); got != (1<<22)*(2*22+32) {
		t.Fatalf("table bits = %d", got)
	}
}

func BenchmarkTranslate(b *testing.B) {
	s := MustNew(Config{Lines: 1 << 16, Interval: 64})
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Translate(uint64(i) & (1<<16 - 1))
	}
	_ = sink
}

package secref

import (
	"testing"
	"testing/quick"

	"securityrbsg/internal/schemetest"
	"securityrbsg/internal/stats"
)

// TestPairIsInvolution: for any key pair, Pair(Pair(la)) == la — the
// algebra that makes in-place pair swapping possible.
func TestPairIsInvolution(t *testing.T) {
	f := func(seed uint64, la uint64) bool {
		s := MustNewOneLevel(1024, 1, 0, stats.NewRNG(seed))
		m := schemetest.NewTokenMover(s)
		for i := uint64(0); i < seed%2048; i++ {
			s.Step(m)
		}
		la &= 1023
		return s.Pair(s.Pair(la)) == la
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestTranslateAlwaysBijective: at any point in any round, the mapping is
// a permutation of the physical space.
func TestTranslateAlwaysBijective(t *testing.T) {
	f := func(seed uint64, steps uint16) bool {
		s := MustNewOneLevel(256, 1, 0, stats.NewRNG(seed))
		m := schemetest.NewTokenMover(s)
		for i := 0; i < int(steps)%600; i++ {
			s.Step(m)
		}
		seen := make([]bool, 256)
		for la := uint64(0); la < 256; la++ {
			pa := s.Translate(la)
			if pa >= 256 || seen[pa] {
				return false
			}
			seen[pa] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRemappedMonotoneWithinRound: once an address has been refreshed in
// a round, its translation stays at keyc until the round ends.
func TestRemappedMonotoneWithinRound(t *testing.T) {
	s := MustNewOneLevel(128, 1, 0, stats.NewRNG(5))
	m := schemetest.NewTokenMover(s)
	// Enter a fresh round.
	s.Step(m)
	locked := map[uint64]uint64{}
	for s.CRP() < 128 {
		for la, pa := range locked {
			if got := s.Translate(la); got != pa {
				t.Fatalf("LA %d moved again within the round: %d → %d", la, pa, got)
			}
		}
		la := s.CRP() // about to be refreshed
		s.Step(m)
		locked[la] = s.Translate(la)
		locked[s.Pair(la)] = s.Translate(s.Pair(la))
	}
}

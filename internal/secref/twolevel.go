package secref

import (
	"fmt"

	"securityrbsg/internal/stats"
	"securityrbsg/internal/wear"
)

// TwoLevelConfig describes a hierarchical Security Refresh instance.
type TwoLevelConfig struct {
	// Lines is the logical space size N (power of two).
	Lines uint64
	// Regions is the number of inner sub-regions R (power of two dividing
	// Lines). The paper's suggested configuration is 512.
	Regions uint64
	// InnerInterval is the per-sub-region refresh interval (suggested 64).
	InnerInterval uint64
	// OuterInterval is the outer refresh interval counted over all writes
	// to the bank (suggested 128).
	OuterInterval uint64
	// Seed seeds key generation.
	Seed uint64
}

func (c TwoLevelConfig) validate() error {
	if c.Lines == 0 || c.Lines&(c.Lines-1) != 0 {
		return fmt.Errorf("secref: lines must be a power of two, got %d", c.Lines)
	}
	if c.Regions == 0 || c.Regions&(c.Regions-1) != 0 || c.Lines%c.Regions != 0 {
		return fmt.Errorf("secref: regions must be a power of two dividing lines, got %d", c.Regions)
	}
	if c.InnerInterval == 0 || c.OuterInterval == 0 {
		return fmt.Errorf("secref: intervals must be at least 1")
	}
	return nil
}

// SuggestedTwoLevelConfig returns the paper's suggested two-level SR
// configuration for a bank of the given size: 512 sub-regions, inner
// interval 64, outer interval 128.
func SuggestedTwoLevelConfig(lines uint64) TwoLevelConfig {
	return TwoLevelConfig{Lines: lines, Regions: 512, InnerInterval: 64, OuterInterval: 128}
}

// TwoLevel is the hierarchical Security Refresh scheme: an outer SR domain
// over the whole logical space produces intermediate addresses, which are
// split across R inner SR domains producing physical addresses. The levels
// are transparent and independent of each other; the outer level's swaps
// move data between whatever physical lines the inner level currently
// assigns.
type TwoLevel struct {
	cfg       TwoLevelConfig
	outer     *OneLevel
	inner     []*OneLevel
	perRegion uint64
}

// NewTwoLevel builds a two-level Security Refresh scheme.
func NewTwoLevel(cfg TwoLevelConfig) (*TwoLevel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed)
	outer, err := NewOneLevel(cfg.Lines, cfg.OuterInterval, 0, rng)
	if err != nil {
		return nil, err
	}
	s := &TwoLevel{cfg: cfg, outer: outer, perRegion: cfg.Lines / cfg.Regions}
	s.inner = make([]*OneLevel, cfg.Regions)
	for i := range s.inner {
		base := uint64(i) * s.perRegion
		in, err := NewOneLevel(s.perRegion, cfg.InnerInterval, base, rng)
		if err != nil {
			return nil, err
		}
		s.inner[i] = in
	}
	return s, nil
}

// MustNewTwoLevel is NewTwoLevel that panics on error.
func MustNewTwoLevel(cfg TwoLevelConfig) *TwoLevel {
	s, err := NewTwoLevel(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Name identifies the scheme.
func (s *TwoLevel) Name() string { return "two-level-sr" }

// Config returns the construction configuration.
func (s *TwoLevel) Config() TwoLevelConfig { return s.cfg }

// LogicalLines returns N.
func (s *TwoLevel) LogicalLines() uint64 { return s.cfg.Lines }

// PhysicalLines returns N — neither SR level needs spare lines.
func (s *TwoLevel) PhysicalLines() uint64 { return s.cfg.Lines }

// LinesPerRegion returns N/R.
func (s *TwoLevel) LinesPerRegion() uint64 { return s.perRegion }

// Outer exposes the outer-level domain for white-box tests.
func (s *TwoLevel) Outer() *OneLevel { return s.outer }

// Inner exposes inner domain i for white-box tests.
func (s *TwoLevel) Inner(i int) *OneLevel { return s.inner[i] }

// Intermediate returns la's intermediate address under the outer level.
func (s *TwoLevel) Intermediate(la uint64) uint64 {
	return s.outer.Translate(la) // outer base is 0, so PA of outer == IA
}

// translateIA maps an intermediate address through its inner domain.
func (s *TwoLevel) translateIA(ia uint64) uint64 {
	region := ia / s.perRegion
	return s.inner[region].Translate(ia % s.perRegion)
}

// Translate maps a logical address to its current physical line.
func (s *TwoLevel) Translate(la uint64) uint64 {
	return s.translateIA(s.Intermediate(la))
}

// NoteWrite books the demand write against both levels: the inner domain
// owning la's intermediate address steps every InnerInterval writes to
// that domain, and the outer domain steps every OuterInterval writes to
// the bank. Outer swaps move data between the physical lines the inner
// level currently assigns to the two intermediate addresses.
func (s *TwoLevel) NoteWrite(la uint64, m wear.Mover) uint64 {
	ia := s.Intermediate(la)
	ns := s.inner[ia/s.perRegion].NoteWrite(ia%s.perRegion, m)

	s.outer.writeCount++
	if s.outer.writeCount >= s.outer.interval {
		s.outer.writeCount = 0
		ns += s.outerStep(m)
	}
	return ns
}

// WritesToNextRemap implements wear.FastForwarder: of the next k writes
// to la, exactly the k-th is the first that can trigger a refresh step —
// whichever of la's inner domain's interval and the outer interval
// elapses first. Writes to la tick both counters, and the levels'
// translations are frozen between steps, so k is exact.
func (s *TwoLevel) WritesToNextRemap(la uint64) uint64 {
	ia := s.Intermediate(la)
	inner := s.inner[ia/s.perRegion].writesToNextStep()
	outer := s.outer.writesToNextStep()
	if outer < inner {
		return outer
	}
	return inner
}

// SkipWrites implements wear.FastForwarder: book k step-free writes to la
// against both levels (k < WritesToNextRemap(la)).
func (s *TwoLevel) SkipWrites(la, k uint64) {
	ia := s.Intermediate(la)
	s.inner[ia/s.perRegion].skip(k)
	s.outer.skip(k)
}

// WritesToNextOuterStep returns how many bank writes remain until the
// outer level's next refresh step (every bank write ticks the outer
// domain, so this is address-independent). The outer translation — and
// with it Intermediate(la) for every la — is frozen for that many minus
// one writes; attackers batching hammer stints use it as the bound past
// which an address may migrate between sub-regions.
func (s *TwoLevel) WritesToNextOuterStep() uint64 { return s.outer.writesToNextStep() }

// outerStep performs one outer refresh step, routing the data movement
// through the inner translation so the swap touches the correct physical
// lines.
func (s *TwoLevel) outerStep(m wear.Mover) uint64 {
	o := s.outer
	if o.crp == o.n {
		o.keyp = o.keyc
		o.keyc = o.rng.Uint64() & o.mask
		o.crp = 0
	}
	la := o.crp
	pair := o.Pair(la)
	var ns uint64
	if pair > la {
		ns = m.Swap(s.translateIA(la^o.keyp), s.translateIA(la^o.keyc))
		o.swaps++
	}
	o.crp++
	o.steps++
	if o.crp == o.n {
		o.rounds++
	}
	return ns
}

// MultiWay is the Multi-Way SR layout from Section III-E: the logical
// space is split into R *consecutive* sub-regions by address sequence,
// each wear-leveled by an independent one-level Security Refresh. The
// paper notes this family inherits the sub-region tracking vulnerability.
type MultiWay struct {
	lines     uint64
	perRegion uint64
	inner     []*OneLevel
}

// NewMultiWay builds a Multi-Way SR over lines split into regions
// sub-regions, each refreshing every interval writes to it.
func NewMultiWay(lines, regions, interval, seed uint64) (*MultiWay, error) {
	if lines == 0 || lines&(lines-1) != 0 {
		return nil, fmt.Errorf("secref: lines must be a power of two, got %d", lines)
	}
	if regions == 0 || regions&(regions-1) != 0 || lines%regions != 0 {
		return nil, fmt.Errorf("secref: regions must be a power of two dividing lines, got %d", regions)
	}
	rng := stats.NewRNG(seed)
	s := &MultiWay{lines: lines, perRegion: lines / regions}
	s.inner = make([]*OneLevel, regions)
	for i := range s.inner {
		in, err := NewOneLevel(s.perRegion, interval, uint64(i)*s.perRegion, rng)
		if err != nil {
			return nil, err
		}
		s.inner[i] = in
	}
	return s, nil
}

// Name identifies the scheme.
func (s *MultiWay) Name() string { return "multiway-sr" }

// LogicalLines returns N.
func (s *MultiWay) LogicalLines() uint64 { return s.lines }

// PhysicalLines returns N.
func (s *MultiWay) PhysicalLines() uint64 { return s.lines }

// Translate maps a logical address to its physical line via the SR domain
// of its consecutive sub-region.
func (s *MultiWay) Translate(la uint64) uint64 {
	return s.inner[la/s.perRegion].Translate(la % s.perRegion)
}

// NoteWrite books the write against la's sub-region domain.
func (s *MultiWay) NoteWrite(la uint64, m wear.Mover) uint64 {
	return s.inner[la/s.perRegion].NoteWrite(la%s.perRegion, m)
}

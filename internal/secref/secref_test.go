package secref

import (
	"testing"

	"securityrbsg/internal/schemetest"
	"securityrbsg/internal/stats"
	"securityrbsg/internal/wear"
)

func TestOneLevelValidation(t *testing.T) {
	rng := stats.NewRNG(1)
	if _, err := NewOneLevel(100, 1, 0, rng); err == nil {
		t.Error("non-power-of-two must fail")
	}
	if _, err := NewOneLevel(64, 0, 0, rng); err == nil {
		t.Error("zero interval must fail")
	}
	if s, err := NewOneLevel(64, 4, 0, nil); err != nil || s == nil {
		t.Error("nil rng should default")
	}
}

// TestPairwiseProperty verifies the algebra the scheme rests on:
// LA XOR keyc = pair XOR keyp — the new location of LA is the old
// location of its pair.
func TestPairwiseProperty(t *testing.T) {
	s := MustNewOneLevel(256, 1, 0, stats.NewRNG(2))
	m := schemetest.NewTokenMover(s)
	for i := 0; i < 100; i++ {
		s.Step(m)
	}
	kc, kp := s.Keys()
	for la := uint64(0); la < 256; la++ {
		pair := s.Pair(la)
		if la^kc != pair^kp || pair^kc != la^kp {
			t.Fatalf("pairwise identity violated for LA %d", la)
		}
	}
}

// TestPaperFig5 replays Fig 5's example: 4 lines, keys keyp=10b, keyc=11b.
func TestPaperFig5(t *testing.T) {
	s := MustNewOneLevel(4, 1, 0, stats.NewRNG(0))
	// Force the paper's key sequence.
	s.keyc, s.keyp = 0b10, 0b10
	s.crp = 4 // round complete; next step rotates keys
	m := schemetest.NewTokenMover(s)

	// Before the new round every LA sits at la XOR 10b.
	for la := uint64(0); la < 4; la++ {
		if got := s.Translate(la); got != la^0b10 {
			t.Fatalf("initial state: LA%d at %d, want %d (Fig 5a)", la, got, la^0b10)
		}
	}
	// First remapping of the new round with keyc = 11b: LA0 swaps with its
	// pair LA0^01 = LA1... the paper picks key 11: force it by stepping
	// with a stacked rng. Instead drive Step and then overwrite the drawn
	// key with the paper's and redo — simpler: set the state by hand.
	s.keyp = 0b10
	s.keyc = 0b11
	s.crp = 0
	// Rebuild the token map for the forced state.
	m = schemetest.NewTokenMover(s)
	s.crp = 0

	// Step 1: CRP=0, pair(0) = 0 ^ 11 ^ 10 = 1 > 0 ⇒ swap lines 0^10=2 and
	// 0^11=3 (Fig 5b: contents C and D swap).
	s.Step(m)
	if s.CRP() != 1 {
		t.Fatalf("CRP = %d after first step", s.CRP())
	}
	if got := s.Translate(0); got != 3 {
		t.Fatalf("LA0 now at %d, want 3 = 00 XOR 11 (Fig 5b)", got)
	}
	if err := schemetest.Verify(s, m); err != nil {
		t.Fatal(err)
	}
	// Step 2: CRP=1, pair(1) = 0 < 1 ⇒ already remapped, no swap (Fig 5c).
	swaps := s.Swaps()
	s.Step(m)
	if s.Swaps() != swaps {
		t.Fatal("LA1 should not swap again (Fig 5c)")
	}
	// Finish the round; all lines must be at la XOR keyc (Fig 5d).
	s.Step(m)
	s.Step(m)
	for la := uint64(0); la < 4; la++ {
		if got := s.Translate(la); got != la^0b11 {
			t.Fatalf("final state: LA%d at %d, want %d (Fig 5d)", la, got, la^0b11)
		}
	}
	if err := schemetest.Verify(s, m); err != nil {
		t.Fatal(err)
	}
}

func TestOneLevelDataIntegrity(t *testing.T) {
	s := MustNewOneLevel(128, 3, 0, stats.NewRNG(3))
	if _, err := schemetest.Exercise(s, 128*3*10, 17, 4); err != nil {
		t.Fatal(err)
	}
}

func TestOneLevelHammerIntegrity(t *testing.T) {
	s := MustNewOneLevel(64, 2, 0, stats.NewRNG(4))
	if _, err := schemetest.ExerciseHammer(s, 13, 64*2*20, 5); err != nil {
		t.Fatal(err)
	}
}

func TestOneLevelBijectionAlways(t *testing.T) {
	s := MustNewOneLevel(64, 1, 0, stats.NewRNG(5))
	m := schemetest.NewTokenMover(s)
	for i := 0; i < 500; i++ {
		s.Step(m)
		if err := wear.CheckBijection(asScheme{s}); err != nil {
			t.Fatalf("after step %d: %v", i+1, err)
		}
	}
}

// asScheme adapts OneLevel (whose NoteWrite ignores la) for CheckBijection.
type asScheme struct{ *OneLevel }

func TestKeysRotateEachRound(t *testing.T) {
	s := MustNewOneLevel(32, 1, 0, stats.NewRNG(6))
	m := schemetest.NewTokenMover(s)
	seen := map[uint64]bool{}
	for r := 0; r < 8; r++ {
		for i := 0; i < 32; i++ {
			s.Step(m)
		}
		kc, kp := s.Keys()
		seen[kc] = true
		if s.Rounds() == 0 {
			t.Fatal("rounds not counted")
		}
		_ = kp
	}
	if len(seen) < 4 {
		t.Fatalf("keys barely rotate: %d distinct over 8 rounds", len(seen))
	}
}

func TestTwoLevelValidation(t *testing.T) {
	bad := []TwoLevelConfig{
		{Lines: 100, Regions: 4, InnerInterval: 1, OuterInterval: 1},
		{Lines: 256, Regions: 3, InnerInterval: 1, OuterInterval: 1},
		{Lines: 256, Regions: 4, InnerInterval: 0, OuterInterval: 1},
		{Lines: 256, Regions: 4, InnerInterval: 1, OuterInterval: 0},
	}
	for i, c := range bad {
		if _, err := NewTwoLevel(c); err == nil {
			t.Errorf("case %d should fail: %+v", i, c)
		}
	}
}

func twoLevel(t *testing.T) *TwoLevel {
	t.Helper()
	return MustNewTwoLevel(TwoLevelConfig{
		Lines: 256, Regions: 8, InnerInterval: 3, OuterInterval: 7, Seed: 9,
	})
}

func TestTwoLevelBijection(t *testing.T) {
	if err := wear.CheckBijection(twoLevel(t)); err != nil {
		t.Fatal(err)
	}
}

func TestTwoLevelDataIntegrity(t *testing.T) {
	if _, err := schemetest.Exercise(twoLevel(t), 40000, 41, 10); err != nil {
		t.Fatal(err)
	}
}

func TestTwoLevelHammerIntegrity(t *testing.T) {
	if _, err := schemetest.ExerciseHammer(twoLevel(t), 200, 40000, 43); err != nil {
		t.Fatal(err)
	}
}

// TestTwoLevelLevelsAreIndependent: inner domains tick only on writes
// routed into them, the outer domain ticks on every write.
func TestTwoLevelLevelsAreIndependent(t *testing.T) {
	s := twoLevel(t)
	m := schemetest.NewTokenMover(s)
	la := uint64(5)
	before := s.Outer().Steps()
	for i := 0; i < 700; i++ {
		s.NoteWrite(la, m)
	}
	outerSteps := s.Outer().Steps() - before
	if outerSteps != 100 {
		t.Fatalf("outer stepped %d times over 700 writes at ψo=7", outerSteps)
	}
	var innerSteps uint64
	for i := 0; i < 8; i++ {
		innerSteps += s.Inner(i).Steps()
	}
	// All 700 writes landed in the hammered line's (moving) sub-region:
	// ψi=3 ⇒ ≈233 inner steps across regions.
	if innerSteps < 200 || innerSteps > 240 {
		t.Fatalf("inner steps = %d, want ≈233", innerSteps)
	}
}

func TestSuggestedTwoLevelConfig(t *testing.T) {
	c := SuggestedTwoLevelConfig(1 << 22)
	if c.Regions != 512 || c.InnerInterval != 64 || c.OuterInterval != 128 {
		t.Fatalf("suggested config drifted: %+v", c)
	}
}

func TestMultiWay(t *testing.T) {
	s, err := NewMultiWay(256, 8, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := wear.CheckBijection(s); err != nil {
		t.Fatal(err)
	}
	if _, err := schemetest.Exercise(s, 20000, 37, 12); err != nil {
		t.Fatal(err)
	}
	// Consecutive layout: LA's sub-region is its high bits, always.
	for la := uint64(0); la < 256; la++ {
		pa := s.Translate(la)
		if pa/32 != la/32 {
			t.Fatalf("multiway moved LA %d out of its consecutive sub-region", la)
		}
	}
	if _, err := NewMultiWay(100, 4, 1, 0); err == nil {
		t.Error("non-power-of-two must fail")
	}
	if _, err := NewMultiWay(256, 3, 1, 0); err == nil {
		t.Error("bad region count must fail")
	}
}

func TestWritesPerRound(t *testing.T) {
	s := MustNewOneLevel(64, 4, 0, stats.NewRNG(13))
	if s.WritesPerRound() != 256 {
		t.Fatalf("writes per round = %d", s.WritesPerRound())
	}
}

package secref

import (
	"securityrbsg/internal/registry"
	"securityrbsg/internal/stats"
	"securityrbsg/internal/wear"
)

// defaultRegions scales the paper's suggested 512 sub-regions down with
// the geometry so small tournament devices keep a meaningful region size
// (≥16 lines per region), staying a power of two dividing lines.
func defaultRegions(lines uint64) uint64 {
	r := uint64(512)
	for r > 1 && lines/r < 16 {
		r /= 2
	}
	return r
}

// Registry entries for the Security Refresh family: the one-level and
// two-level schemes of Seong et al. (the paper's main comparison points)
// and the Multi-Way SR variant whose consecutive sub-regions the focused
// attack tracks.
func init() {
	registry.RegisterScheme(registry.Scheme{
		Name: "security-refresh",
		Doc:  "one-level Security Refresh: single XOR-keyed swap domain",
		Caps: registry.SchemeCaps{Exact: true, TimingOracle: true},
		Defaults: func(cfg registry.Config) registry.Config {
			if cfg.InnerInterval == 0 {
				cfg.InnerInterval = 32
			}
			cfg.Regions = 1 // structural: one domain over the whole space
			return cfg
		},
		New: func(cfg registry.Config) (wear.Scheme, error) {
			return NewOneLevel(cfg.Lines, cfg.InnerInterval, 0, stats.NewRNG(cfg.Seed))
		},
	})
	registry.RegisterScheme(registry.Scheme{
		Name: "two-level-sr",
		Doc:  "two-level Security Refresh: outer domain over inner sub-region domains",
		Caps: registry.SchemeCaps{Exact: true, TimingOracle: true},
		Defaults: func(cfg registry.Config) registry.Config {
			if cfg.Regions == 0 {
				cfg.Regions = defaultRegions(cfg.Lines)
			}
			if cfg.InnerInterval == 0 {
				cfg.InnerInterval = 64
			}
			if cfg.OuterInterval == 0 {
				cfg.OuterInterval = 128
			}
			return cfg
		},
		New: func(cfg registry.Config) (wear.Scheme, error) {
			return NewTwoLevel(TwoLevelConfig{
				Lines: cfg.Lines, Regions: cfg.Regions,
				InnerInterval: cfg.InnerInterval, OuterInterval: cfg.OuterInterval,
				Seed: cfg.Seed,
			})
		},
	})
	registry.RegisterScheme(registry.Scheme{
		Name: "multiway-sr",
		Doc:  "Multi-Way SR: independent one-level SR per consecutive sub-region",
		Caps: registry.SchemeCaps{Exact: true, TimingOracle: true},
		Defaults: func(cfg registry.Config) registry.Config {
			if cfg.Regions == 0 {
				cfg.Regions = defaultRegions(cfg.Lines)
			}
			if cfg.InnerInterval == 0 {
				cfg.InnerInterval = 64
			}
			return cfg
		},
		New: func(cfg registry.Config) (wear.Scheme, error) {
			return NewMultiWay(cfg.Lines, cfg.Regions, cfg.InnerInterval, cfg.Seed)
		},
	})
}

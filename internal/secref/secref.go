// Package secref implements Security Refresh (Seong et al., ISCA'10) — the
// second prior scheme the paper attacks — in three flavors:
//
//   - OneLevel: the basic scheme. Logical addresses are remapped by XOR
//     with a per-round random key; a Current Refresh Pointer (CRP) walks
//     the address space and each step swaps a logical address with its
//     pair (LA XOR keyc XOR keyp), exploiting the pairwise property that
//     the new location of LA is the old location of its pair.
//   - TwoLevel: the hierarchical variant the paper evaluates (outer SR over
//     the whole space producing intermediate addresses, inner SR per
//     equally-sized sub-region producing physical addresses).
//   - MultiWay: the Multi-Way SR variant (Yu & Du, TC'14) mentioned in
//     Section III-E — consecutive sub-regions each running an independent
//     one-level SR.
package secref

import (
	"fmt"

	"securityrbsg/internal/stats"
	"securityrbsg/internal/wear"
)

// OneLevel is a single Security Refresh domain of n lines (n must be a
// power of two). It can stand alone as a wear.Scheme or serve as the inner
// or outer level of TwoLevel.
type OneLevel struct {
	n        uint64 // lines (power of two)
	mask     uint64 // n-1
	interval uint64 // writes between refresh steps (ψ)
	base     uint64 // physical offset of line 0

	keyc, keyp uint64 // current and previous round keys
	crp        uint64 // next address to refresh, in [0, n]

	rng        *stats.RNG
	writeCount uint64
	steps      uint64 // refresh steps taken (CRP increments)
	swaps      uint64 // steps that physically swapped a pair
	rounds     uint64 // completed rounds
}

// NewOneLevel builds a Security Refresh domain of n lines starting at
// physical address base, stepping every interval writes, with keys drawn
// from rng. The initial state has keyc == keyp == a random key and a
// completed round (CRP == n), so the first step begins a fresh round.
func NewOneLevel(n, interval, base uint64, rng *stats.RNG) (*OneLevel, error) {
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("secref: lines must be a power of two, got %d", n)
	}
	if interval == 0 {
		return nil, fmt.Errorf("secref: interval must be at least 1")
	}
	if rng == nil {
		rng = stats.NewRNG(0)
	}
	k := rng.Uint64() & (n - 1)
	return &OneLevel{
		n: n, mask: n - 1, interval: interval, base: base,
		keyc: k, keyp: k, crp: n, rng: rng,
	}, nil
}

// MustNewOneLevel is NewOneLevel that panics on error.
func MustNewOneLevel(n, interval, base uint64, rng *stats.RNG) *OneLevel {
	s, err := NewOneLevel(n, interval, base, rng)
	if err != nil {
		panic(err)
	}
	return s
}

// Name identifies the scheme.
func (s *OneLevel) Name() string { return "security-refresh" }

// LogicalLines returns n.
func (s *OneLevel) LogicalLines() uint64 { return s.n }

// PhysicalLines returns n — Security Refresh swaps pairs in place and
// needs no spare line.
func (s *OneLevel) PhysicalLines() uint64 { return s.n }

// Keys returns the current and previous round keys.
func (s *OneLevel) Keys() (keyc, keyp uint64) { return s.keyc, s.keyp }

// CRP returns the Current Refresh Pointer.
func (s *OneLevel) CRP() uint64 { return s.crp }

// Rounds returns the number of completed refresh rounds.
func (s *OneLevel) Rounds() uint64 { return s.rounds }

// Steps returns the number of refresh steps (CRP advances) taken.
func (s *OneLevel) Steps() uint64 { return s.steps }

// Swaps returns the number of steps that physically swapped two lines.
func (s *OneLevel) Swaps() uint64 { return s.swaps }

// Pair returns la's refresh partner in the current round:
// la XOR keyc XOR keyp. Remapping la means swapping it with Pair(la).
func (s *OneLevel) Pair(la uint64) uint64 { return la ^ s.keyc ^ s.keyp }

// remapped reports whether la has already been refreshed this round: the
// swap touching la happened when the CRP passed min(la, Pair(la)).
func (s *OneLevel) remapped(la uint64) bool {
	p := s.Pair(la)
	if p < la {
		return p < s.crp
	}
	return la < s.crp
}

// Translate maps a domain-local logical address to its physical line:
// XOR with keyc once refreshed this round, keyp before.
func (s *OneLevel) Translate(la uint64) uint64 {
	if la >= s.n {
		panic(fmt.Errorf("secref: logical address %d out of domain of %d lines", la, s.n))
	}
	if s.remapped(la) {
		return s.base + (la ^ s.keyc)
	}
	return s.base + (la ^ s.keyp)
}

// NoteWrite records one demand write and performs a refresh step through m
// when the interval has elapsed, returning the step's movement latency.
func (s *OneLevel) NoteWrite(la uint64, m wear.Mover) uint64 {
	_ = la // a domain counts every write landing in it
	s.writeCount++
	if s.writeCount < s.interval {
		return 0
	}
	s.writeCount = 0
	return s.Step(m)
}

// writesToNextStep returns how many writes from now until a refresh step
// fires: the k-th write triggers Step. Always ≥ 1.
func (s *OneLevel) writesToNextStep() uint64 { return s.interval - s.writeCount }

// skip books k step-free writes (k < writesToNextStep()). Between steps
// the domain's translation is frozen, so this is indistinguishable from
// k NoteWrite calls that all returned 0.
func (s *OneLevel) skip(k uint64) {
	if k >= s.interval-s.writeCount {
		panic(fmt.Errorf("secref: skip(%d) would cross a refresh step (%d writes remain)",
			k, s.interval-s.writeCount))
	}
	s.writeCount += k
}

// WritesToNextRemap implements wear.FastForwarder for a standalone
// domain: every write counts toward the one refresh interval.
func (s *OneLevel) WritesToNextRemap(la uint64) uint64 {
	_ = la
	return s.writesToNextStep()
}

// SkipWrites implements wear.FastForwarder (k < WritesToNextRemap).
func (s *OneLevel) SkipWrites(la, k uint64) {
	_ = la
	s.skip(k)
}

// Step performs one refresh step unconditionally: start a new round if the
// previous one finished, then process the address under the CRP — swap it
// with its pair if that pair swap has not happened yet, else just advance.
func (s *OneLevel) Step(m wear.Mover) uint64 {
	if s.crp == s.n {
		s.keyp = s.keyc
		s.keyc = s.rng.Uint64() & s.mask
		s.crp = 0
	}
	la := s.crp
	pair := s.Pair(la)
	var ns uint64
	if pair > la {
		// The new location of la (la XOR keyc) is the old location of its
		// pair and vice versa, so one swap refreshes both.
		ns = m.Swap(s.base+(la^s.keyp), s.base+(la^s.keyc))
		s.swaps++
	}
	// pair < la: already swapped when CRP passed pair. pair == la: the
	// keys coincide on this address and the line stays put.
	s.crp++
	s.steps++
	if s.crp == s.n {
		s.rounds++
	}
	return ns
}

// WritesPerRound returns the demand writes consumed by one refresh round.
func (s *OneLevel) WritesPerRound() uint64 { return s.n * s.interval }

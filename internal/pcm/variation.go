package pcm

import (
	"math"

	"securityrbsg/internal/stats"
)

// Process variation support. Real PCM cells do not share one endurance
// number: manufacturing variation gives each line its own budget, often
// modeled as a normal distribution around the nominal endurance (the
// motivation for "wear rate leveling", Dong et al. DAC'11, cited as [12]
// by the paper). A bank built with NewVariedBank draws a per-line
// endurance E_i ~ N(E, (σ·E)²), clamped to [E/10, 2E−E/10], and fails a
// line when its wear exceeds its own budget.
//
// The paper's evaluation assumes uniform endurance; variation is provided
// as an extension so the lifetime experiments can quantify how much the
// weakest-line effect costs each scheme (see the package tests: under
// uniform traffic the expected lifetime shrinks by roughly z·σ where z is
// the extreme-value factor of N lines).

// NewVariedBank builds a bank whose lines draw individual endurance
// budgets from N(cfg.Endurance, (sigma·cfg.Endurance)²) using the given
// seed. sigma = 0 reduces to NewBank.
func NewVariedBank(cfg Config, sigma float64, seed uint64) (*Bank, error) {
	b, err := NewBank(cfg)
	if err != nil {
		return nil, err
	}
	if sigma <= 0 {
		return b, nil
	}
	rng := stats.NewRNG(seed)
	b.endurances = make([]uint32, cfg.Lines)
	mean := float64(cfg.Endurance)
	lo, hi := mean/10, 2*mean-mean/10
	for i := range b.endurances {
		e := mean + sigma*mean*gaussian(rng)
		if e < lo {
			e = lo
		}
		if e > hi {
			e = hi
		}
		b.endurances[i] = uint32(e)
	}
	return b, nil
}

// gaussian draws a standard normal variate (Box–Muller; one value per
// call keeps the generator stateless).
func gaussian(rng *stats.RNG) float64 {
	u1 := rng.Float64()
	for u1 == 0 {
		u1 = rng.Float64()
	}
	u2 := rng.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LineEndurance returns line pa's individual write budget (the nominal
// endurance when the bank has no variation).
func (b *Bank) LineEndurance(pa uint64) uint64 {
	b.check(pa)
	if b.endurances == nil {
		return b.cfg.Endurance
	}
	return uint64(b.endurances[pa])
}

// WeakestLine returns the line with the smallest endurance budget and
// that budget.
func (b *Bank) WeakestLine() (pa uint64, endurance uint64) {
	if b.endurances == nil {
		return 0, b.cfg.Endurance
	}
	best := uint64(0)
	bestE := uint64(b.endurances[0])
	for i, e := range b.endurances {
		if uint64(e) < bestE {
			bestE = uint64(e)
			best = uint64(i)
		}
	}
	return best, bestE
}

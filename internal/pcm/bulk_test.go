package pcm

import (
	"testing"
)

// twinBanks builds two banks with the same configuration (and, via the
// same seed, the same per-line endurance draws) for loop-vs-batch
// equivalence checks.
func twinBanks(t *testing.T, cfg Config, sigma float64, seed uint64) (*Bank, *Bank) {
	t.Helper()
	a, err := NewVariedBank(cfg, sigma, seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewVariedBank(cfg, sigma, seed)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// assertBanksEqual compares every observable of two banks.
func assertBanksEqual(t *testing.T, name string, loop, batch *Bank) {
	t.Helper()
	if lw, bw := loop.TotalWrites(), batch.TotalWrites(); lw != bw {
		t.Errorf("%s: TotalWrites %d vs %d", name, lw, bw)
	}
	if lr, br := loop.TotalReads(), batch.TotalReads(); lr != br {
		t.Errorf("%s: TotalReads %d vs %d", name, lr, br)
	}
	if le, be := loop.ElapsedNs(), batch.ElapsedNs(); le != be {
		t.Errorf("%s: ElapsedNs %d vs %d", name, le, be)
	}
	if lf, bf := loop.FailedLines(), batch.FailedLines(); lf != bf {
		t.Errorf("%s: FailedLines %d vs %d", name, lf, bf)
	}
	lpa, lns, lok := loop.FirstFailure()
	bpa, bns, bok := batch.FirstFailure()
	if lpa != bpa || lns != bns || lok != bok {
		t.Errorf("%s: FirstFailure (%d,%d,%v) vs (%d,%d,%v)", name, lpa, lns, lok, bpa, bns, bok)
	}
	lmp, lmw := loop.MaxWear()
	bmp, bmw := batch.MaxWear()
	if lmp != bmp || lmw != bmw {
		t.Errorf("%s: MaxWear (%d,%d) vs (%d,%d)", name, lmp, lmw, bmp, bmw)
	}
	lw, bw := loop.WearCounts(), batch.WearCounts()
	for pa := range lw {
		if lw[pa] != bw[pa] {
			t.Fatalf("%s: wear[%d] %d vs %d", name, pa, lw[pa], bw[pa])
		}
	}
	for pa := uint64(0); pa < loop.Lines(); pa++ {
		if loop.Peek(pa) != batch.Peek(pa) {
			t.Fatalf("%s: content[%d] %v vs %v", name, pa, loop.Peek(pa), batch.Peek(pa))
		}
	}
}

func TestWriteNMatchesLoop(t *testing.T) {
	cases := []struct {
		name  string
		sigma float64
	}{
		{name: "uniform", sigma: 0},
		{name: "varied", sigma: 0.25},
	}
	// A batch plan that crosses endurance (50) mid-batch on line 3,
	// exactly at a batch boundary on line 5, and keeps hammering a failed
	// line (1) past its budget.
	plan := []struct {
		pa uint64
		c  Content
		n  uint64
	}{
		{0, Ones, 7},
		{1, Zeros, 60}, // crosses endurance inside the batch
		{2, Mixed, 1},
		{3, Ones, 49},
		{3, Zeros, 5}, // crosses mid-batch
		{5, Ones, 50}, // lands exactly on the budget
		{5, Zeros, 1}, // the crossing write, alone
		{1, Ones, 10}, // already failed: pure wear+time
		{0, Zeros, 0}, // empty batch is a no-op
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Lines: 8, Endurance: 50}
			loop, batch := twinBanks(t, cfg, tc.sigma, 42)
			for _, p := range plan {
				var loopNs uint64
				for i := uint64(0); i < p.n; i++ {
					loopNs += loop.Write(p.pa, p.c)
				}
				batchNs := batch.WriteN(p.pa, p.c, p.n)
				if loopNs != batchNs {
					t.Fatalf("batch (%d,%v,%d): latency %d vs %d", p.pa, p.c, p.n, loopNs, batchNs)
				}
			}
			assertBanksEqual(t, tc.name, loop, batch)
		})
	}
}

func TestWriteNFirstFailureTimeIsExact(t *testing.T) {
	cfg := Config{Lines: 4, Endurance: 10}
	b := MustNewBank(cfg)
	// 3 ALL-1 writes (1000 ns each), then a batch of 20 ALL-0 writes
	// (125 ns each) whose 8th write is the crossing one.
	b.WriteN(2, Ones, 3)
	b.WriteN(2, Zeros, 20)
	pa, at, ok := b.FirstFailure()
	if !ok || pa != 2 {
		t.Fatalf("FirstFailure = (%d,%d,%v), want line 2 failed", pa, at, ok)
	}
	want := uint64(3*1000 + 8*125)
	if at != want {
		t.Fatalf("first-failure time %d, want %d", at, want)
	}
}

// TestMaxWearIncremental is the satellite regression test: hammer, query,
// hammer, query — the cached maximum must track a fresh O(n) scan at
// every step, including the earliest-PA tie-break.
func TestMaxWearIncremental(t *testing.T) {
	cfg := Config{Lines: 16, Endurance: 1 << 30}
	b := MustNewBank(cfg)
	scan := func() (uint64, uint64) {
		var bestW uint32
		var bestPA uint64
		for i, w := range b.WearCounts() {
			if w > bestW {
				bestW = w
				bestPA = uint64(i)
			}
		}
		return bestPA, uint64(bestW)
	}
	checkStep := func(step string) {
		t.Helper()
		wantPA, wantW := scan()
		gotPA, gotW := b.MaxWear()
		if gotPA != wantPA || gotW != wantW {
			t.Fatalf("%s: MaxWear = (%d,%d), scan says (%d,%d)", step, gotPA, gotW, wantPA, wantW)
		}
	}
	checkStep("fresh bank")
	// Ties: lines 9 then 4 then 12 each reach wear 3; the scan reports
	// the lowest address (4).
	for _, pa := range []uint64{9, 4, 12} {
		b.WriteN(pa, Ones, 3)
		checkStep("tie build-up")
	}
	if pa, _ := b.MaxWear(); pa != 4 {
		t.Fatalf("tie-break: MaxWear PA = %d, want 4", pa)
	}
	// Hammer-then-query loop, mixing single writes and batches.
	for i := 0; i < 200; i++ {
		pa := uint64(i*7) % b.Lines()
		if i%3 == 0 {
			b.WriteN(pa, Zeros, uint64(i%11)+1)
		} else {
			b.Write(pa, Ones)
		}
		checkStep("hammer loop")
	}
}

func TestWearSnapshotDecoupled(t *testing.T) {
	b := MustNewBank(Config{Lines: 4, Endurance: 100})
	b.Write(1, Ones)
	snap := b.WearSnapshot(nil)
	live := b.WearCounts()
	b.Write(1, Ones)
	if snap[1] != 1 {
		t.Fatalf("snapshot mutated under the bank: wear[1] = %d, want 1", snap[1])
	}
	if live[1] != 2 {
		t.Fatalf("live slice should alias bank state: wear[1] = %d, want 2", live[1])
	}
	// Buffer reuse keeps the copy semantics.
	snap2 := b.WearSnapshot(snap)
	if snap2[1] != 2 {
		t.Fatalf("reused snapshot: wear[1] = %d, want 2", snap2[1])
	}
}

func TestShardMatchesSerial(t *testing.T) {
	cfg := Config{Lines: 12, Endurance: 20}
	serial, sharded := twinBanks(t, cfg, 0.3, 7)

	// Reference: serial run over two halves, first [0,6) then [6,12).
	ops := func(b interface {
		Write(uint64, Content) uint64
		Read(uint64) (Content, uint64)
		Move(uint64, uint64) uint64
		Swap(uint64, uint64) uint64
	}, lo uint64) {
		b.Write(lo+0, Ones)
		b.Write(lo+1, Zeros)
		b.Move(lo+0, lo+2)
		b.Swap(lo+1, lo+3)
		for i := uint64(0); i < 25; i++ { // fails line lo+4 (endurance ~20)
			b.Write(lo+4, Mixed)
		}
		b.Read(lo + 5)
	}
	ops(serial, 0)
	ops(serial, 6)

	s0 := sharded.Shard(0, 6)
	s1 := sharded.Shard(6, 12)
	ops(s0, 0)
	ops(s1, 6)
	sharded.MergeShards(s0, s1)

	assertBanksEqual(t, "shard", serial, sharded)
}

func TestShardFirstFailureSerialization(t *testing.T) {
	cfg := Config{Lines: 8, Endurance: 5}
	b := MustNewBank(cfg)
	b.AdvanceNs(1000) // pre-existing clock offset must be respected
	s0 := b.Shard(0, 4)
	s1 := b.Shard(4, 8)
	// Both shards fail a line; in merge order (s0 first) s0's failure is
	// earlier on the serialized clock even though s1 failed "sooner" in
	// its own relative time.
	for i := 0; i < 7; i++ {
		s0.Write(0, Ones) // 6th write fails at rel 6*1000
	}
	for i := 0; i < 6; i++ {
		s1.Write(4, Zeros) // 6th write fails at rel 6*125
	}
	b.MergeShards(s0, s1)
	pa, at, ok := b.FirstFailure()
	if !ok || pa != 0 {
		t.Fatalf("FirstFailure = (%d,%d,%v), want line 0", pa, at, ok)
	}
	if want := uint64(1000 + 6*1000); at != want {
		t.Fatalf("serialized failure time %d, want %d", at, want)
	}
	if got := b.FailedLines(); got != 2 {
		t.Fatalf("FailedLines = %d, want 2", got)
	}
	if want := uint64(1000 + 7*1000 + 6*125); b.ElapsedNs() != want {
		t.Fatalf("ElapsedNs = %d, want %d", b.ElapsedNs(), want)
	}
}

func TestShardOutOfRangePanics(t *testing.T) {
	b := MustNewBank(Config{Lines: 8, Endurance: 5})
	s := b.Shard(0, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-shard write")
		}
	}()
	s.Write(4, Ones)
}

func BenchmarkBankWriteN(b *testing.B) {
	bank := MustNewBank(Config{Lines: 1 << 10, Endurance: 1 << 62})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank.WriteN(uint64(i)&1023, Ones, 1000)
	}
}

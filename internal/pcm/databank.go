package pcm

import "fmt"

// DataBank is the exact-data refinement of Bank: it stores every line's
// actual bytes and derives write latency from the bit transitions the
// write causes under a configurable write policy.
//
//   - FullWrite re-programs every cell (the paper's model, Section II-C):
//     latency is SET whenever the new data contains any '1'.
//   - Differential writes only the changed cells (the optimization of
//     Yue & Zhu, HPCA'13 — the paper's [16]): latency is SET only when
//     some cell must transition 0→1, RESET when only 1→0 transitions
//     occur, and a read-only latency when nothing changes at all. Wear
//     also accrues only when something changes.
//
// The class-based Bank is what the attacks and lifetime experiments use
// (it matches the paper's accounting and is an order of magnitude
// lighter); DataBank exists to check that the timing side channel
// survives — and how it shifts — under the more detailed device model.
type DataBank struct {
	cfg    Config
	policy WritePolicy
	data   [][]byte
	wear   []uint32

	failed      bool
	firstFailPA uint64
	firstFailNs uint64
	failedLines uint64

	totalWrites uint64
	totalReads  uint64
	elapsedNs   uint64
}

// WritePolicy selects how a line write programs its cells.
type WritePolicy int

const (
	// FullWrite re-programs every cell on every write.
	FullWrite WritePolicy = iota
	// Differential programs only cells whose value changes.
	Differential
)

// String names the policy.
func (p WritePolicy) String() string {
	if p == Differential {
		return "differential"
	}
	return "full-write"
}

// NewDataBank builds an exact-data bank; all lines start zeroed.
func NewDataBank(cfg Config, policy WritePolicy) (*DataBank, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	b := &DataBank{
		cfg:    cfg,
		policy: policy,
		data:   make([][]byte, cfg.Lines),
		wear:   make([]uint32, cfg.Lines),
	}
	for i := range b.data {
		b.data[i] = make([]byte, cfg.LineBytes)
	}
	return b, nil
}

// Lines returns the number of physical lines.
func (b *DataBank) Lines() uint64 { return b.cfg.Lines }

// Policy returns the write policy.
func (b *DataBank) Policy() WritePolicy { return b.policy }

func (b *DataBank) check(pa uint64) {
	if pa >= b.cfg.Lines {
		panic(fmt.Errorf("%w: %d >= %d", ErrBadAddress, pa, b.cfg.Lines))
	}
}

// Read returns a copy of line pa's bytes and the read latency.
func (b *DataBank) Read(pa uint64) ([]byte, uint64) {
	b.check(pa)
	b.totalReads++
	b.elapsedNs += b.cfg.Timing.ReadNs
	out := make([]byte, len(b.data[pa]))
	copy(out, b.data[pa])
	return out, b.cfg.Timing.ReadNs
}

// transitions reports whether writing `new` over `old` needs any SET
// (0→1) and any RESET (1→0) cell programming.
func transitions(old, new []byte) (set, reset bool) {
	for i := range new {
		var o byte
		if i < len(old) {
			o = old[i]
		}
		if ^o&new[i] != 0 {
			set = true
		}
		if o&^new[i] != 0 {
			reset = true
		}
		if set && reset {
			return
		}
	}
	return
}

// Write stores data into line pa and returns the latency under the
// bank's policy. Data shorter than the line is zero-padded; longer data
// is an error (panic, as with bad addresses — a programming bug).
func (b *DataBank) Write(pa uint64, data []byte) uint64 {
	b.check(pa)
	if len(data) > b.cfg.LineBytes {
		panic(fmt.Errorf("pcm: %d bytes exceed the %d-byte line", len(data), b.cfg.LineBytes))
	}
	b.totalWrites++

	var ns uint64
	var wears bool
	switch b.policy {
	case Differential:
		set, reset := transitions(b.data[pa], data)
		switch {
		case set:
			ns = b.cfg.Timing.SetNs
			wears = true
		case reset:
			ns = b.cfg.Timing.ResetNs
			wears = true
		default:
			// Nothing changes: the controller still verifies (a read).
			ns = b.cfg.Timing.ReadNs
		}
	default: // FullWrite: every cell re-programmed, worst pulse dominates
		if ClassOf(data) == Zeros {
			ns = b.cfg.Timing.ResetNs
		} else {
			ns = b.cfg.Timing.SetNs
		}
		wears = true
	}
	b.elapsedNs += ns

	if wears {
		w := uint64(b.wear[pa]) + 1
		b.wear[pa] = uint32(w)
		if w > b.cfg.Endurance {
			if w == b.cfg.Endurance+1 {
				b.failedLines++
				if !b.failed {
					b.failed = true
					b.firstFailPA = pa
					b.firstFailNs = b.elapsedNs
				}
			}
			return ns // stuck-at: contents unchanged
		}
	}
	line := b.data[pa]
	copy(line, data)
	for i := len(data); i < len(line); i++ {
		line[i] = 0
	}
	return ns
}

// Move copies line src to dst (read + write) and returns the latency.
func (b *DataBank) Move(src, dst uint64) uint64 {
	data, rd := b.Read(src)
	return rd + b.Write(dst, data)
}

// Swap exchanges lines x and y (two reads + two writes).
func (b *DataBank) Swap(x, y uint64) uint64 {
	dx, r1 := b.Read(x)
	dy, r2 := b.Read(y)
	return r1 + r2 + b.Write(x, dy) + b.Write(y, dx)
}

// Wear returns line pa's write count.
func (b *DataBank) Wear(pa uint64) uint64 {
	b.check(pa)
	return uint64(b.wear[pa])
}

// Failed reports whether any line exceeded its endurance.
func (b *DataBank) Failed() bool { return b.failed }

// FirstFailure returns the first failed line and the device time of its
// failure.
func (b *DataBank) FirstFailure() (pa uint64, atNs uint64, ok bool) {
	return b.firstFailPA, b.firstFailNs, b.failed
}

// ElapsedNs returns accumulated device time.
func (b *DataBank) ElapsedNs() uint64 { return b.elapsedNs }

package pcm

// Energy accounting. PCM's appeal is zero leakage power, but its dynamic
// write energy is dominated by the long, high-current SET pulse, so the
// SET/RESET mix — the same asymmetry the Remapping Timing Attack exploits
// for timing — also shows up on the power rail. The bank tallies
// operations by pulse type so experiments can report energy alongside
// time. (A power side channel analogous to RTA would work the same way;
// the tally is the model of what it would see.)

// EnergyModel holds per-operation energies in picojoules per line
// operation. DefaultEnergy uses representative per-bit figures (reads
// ~0.05 pJ/bit; RESET ~6 pJ/bit from its short high-current pulse; SET
// ~14 pJ/bit — lower current but 8× the duration) scaled to a 256 B
// line, with SET-containing line writes averaged over mixed data.
type EnergyModel struct {
	ReadPJ  float64 // per line read
	ResetPJ float64 // per line write containing only RESET pulses
	SetPJ   float64 // per line write containing SET pulses
}

// DefaultEnergy is the representative model for 256 B lines.
var DefaultEnergy = EnergyModel{
	ReadPJ:  0.05 * 256 * 8,
	ResetPJ: 6 * 256 * 8,
	SetPJ:   (6 + 14) / 2.0 * 256 * 8, // mixed data: about half the cells SET
}

// OpCounts is the bank's operation tally by pulse type.
type OpCounts struct {
	Reads       uint64
	ResetWrites uint64 // ALL-0 line writes
	SetWrites   uint64 // writes containing SET pulses
}

// Energy evaluates the model against a tally, in microjoules.
func (m EnergyModel) Energy(c OpCounts) float64 {
	pj := float64(c.Reads)*m.ReadPJ +
		float64(c.ResetWrites)*m.ResetPJ +
		float64(c.SetWrites)*m.SetPJ
	return pj * 1e-6
}

// OpCounts returns the bank's operation tally.
func (b *Bank) OpCounts() OpCounts {
	return OpCounts{
		Reads:       b.totalReads,
		ResetWrites: b.resetWrites,
		SetWrites:   b.totalWrites - b.resetWrites,
	}
}

// EnergyMicrojoules evaluates an energy model over everything the bank
// has done so far.
func (b *Bank) EnergyMicrojoules(m EnergyModel) float64 {
	return m.Energy(b.OpCounts())
}

package pcm

import "fmt"

// Shard is a single-writer window onto a contiguous physical range
// [lo, hi) of a Bank. It exposes the bank's operation set (Read, Write,
// Move, Swap — so it satisfies wear.Mover) but books every counter —
// operation counts, the device clock, first failure, the wear maximum —
// privately, touching only its own range of the shared wear and content
// arrays. Shards over disjoint ranges of the same bank may therefore run
// on different goroutines concurrently: they share no mutable state, in
// the same way distinct banks don't (see the package comment on the
// single-writer-per-bank contract).
//
// A shard's clock is relative to its creation; Bank.MergeShards folds the
// private books back into the bank, serializing the shards in argument
// order. While any shard is live the bank itself must be quiescent, and
// the shard's counters are not reflected in the bank until merged.
type Shard struct {
	b      *Bank
	lo, hi uint64

	writes      uint64
	resetWrites uint64
	reads       uint64
	elapsedNs   uint64 // relative to shard creation

	failedLines uint64
	failed      bool
	failPA      uint64
	failRelNs   uint64

	maxWearVal uint32
	maxWearPA  uint64
}

// Shard opens a single-writer window onto physical lines [lo, hi).
func (b *Bank) Shard(lo, hi uint64) *Shard {
	if lo > hi || hi > b.cfg.Lines {
		panic(fmt.Errorf("%w: shard [%d,%d) outside bank of %d lines", ErrBadAddress, lo, hi, b.cfg.Lines))
	}
	return &Shard{b: b, lo: lo, hi: hi}
}

func (s *Shard) check(pa uint64) {
	if pa < s.lo || pa >= s.hi {
		panic(fmt.Errorf("%w: %d outside shard [%d,%d)", ErrBadAddress, pa, s.lo, s.hi))
	}
}

// noteWear mirrors Bank.noteWear on the shard's private maximum.
func (s *Shard) noteWear(pa uint64, w uint32) {
	if w > s.maxWearVal {
		s.maxWearVal = w
		s.maxWearPA = pa
	} else if w == s.maxWearVal && pa < s.maxWearPA {
		s.maxWearPA = pa
	}
}

// Read mirrors Bank.Read within the shard's range.
func (s *Shard) Read(pa uint64) (Content, uint64) {
	s.check(pa)
	s.reads++
	s.elapsedNs += s.b.cfg.Timing.ReadNs
	return s.b.content[pa], s.b.cfg.Timing.ReadNs
}

// Write mirrors Bank.Write within the shard's range.
func (s *Shard) Write(pa uint64, c Content) uint64 {
	s.check(pa)
	b := s.b
	ns := b.cfg.Timing.WriteNs(c)
	s.writes++
	if c == Zeros {
		s.resetWrites++
	}
	s.elapsedNs += ns
	w := uint64(b.wear[pa]) + 1
	b.wear[pa] = uint32(w)
	s.noteWear(pa, uint32(w))
	endurance := b.cfg.Endurance
	if b.endurances != nil {
		endurance = uint64(b.endurances[pa])
	}
	if w > endurance {
		if w == endurance+1 {
			s.failedLines++
			if !s.failed {
				s.failed = true
				s.failPA = pa
				s.failRelNs = s.elapsedNs
			}
		}
		return ns // stuck-at: content not updated
	}
	b.content[pa] = c
	return ns
}

// Move mirrors Bank.Move; both lines must lie in the shard's range.
func (s *Shard) Move(src, dst uint64) uint64 {
	c, rd := s.Read(src)
	return rd + s.Write(dst, c)
}

// Swap mirrors Bank.Swap; all four accesses must lie in the shard's range.
func (s *Shard) Swap(x, y uint64) uint64 {
	cx, r1 := s.Read(x)
	cy, r2 := s.Read(y)
	return r1 + r2 + s.Write(x, cy) + s.Write(y, cx)
}

// Writes returns the demand+movement writes performed through the shard.
func (s *Shard) Writes() uint64 { return s.writes }

// ElapsedNs returns the shard-relative device time consumed.
func (s *Shard) ElapsedNs() uint64 { return s.elapsedNs }

// Failed reports whether a write through this shard carried a line past
// its endurance.
func (s *Shard) Failed() bool { return s.failed }

// MergeShards folds the private books of shards back into the bank,
// serializing them in argument order: shard i's operations are placed on
// the device clock after all of shard 0..i−1's, exactly as if the shards
// had run sequentially in that order. Counter totals and wear arrays are
// order-independent (each shard already wrote its disjoint range); the
// ordering convention only pins down event *times*. A first failure
// inside a shard is therefore placed at bank-clock = clock-at-merge +
// preceding shards' durations + the shard-relative failure time, which is
// bit-identical to the serial run in merge order. Callers that require a
// specific serialization (the differential tests do) must pass shards in
// that order; callers that prove no failure can occur in any shard (the
// parallel sweep kernel does) may pass any order.
func (b *Bank) MergeShards(shards ...*Shard) {
	for _, s := range shards {
		if s.b != b {
			panic(fmt.Errorf("pcm: merging a shard of a different bank"))
		}
		b.totalWrites += s.writes
		b.resetWrites += s.resetWrites
		b.totalReads += s.reads
		b.failedLines += s.failedLines
		if s.failed && !b.failed {
			b.failed = true
			b.firstFailPA = s.failPA
			b.firstFailNs = b.elapsedNs + s.failRelNs
		}
		if s.maxWearVal > 0 {
			b.noteWear(s.maxWearPA, s.maxWearVal)
		}
		b.elapsedNs += s.elapsedNs
	}
}

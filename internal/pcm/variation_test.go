package pcm

import (
	"math"
	"testing"
)

func TestVariedBankZeroSigmaIsUniform(t *testing.T) {
	b, err := NewVariedBank(Config{Lines: 16, Endurance: 100}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b.LineEndurance(3) != 100 {
		t.Fatal("zero sigma should keep the nominal endurance")
	}
	if _, e := b.WeakestLine(); e != 100 {
		t.Fatal("weakest line under zero sigma")
	}
}

func TestVariedBankDistribution(t *testing.T) {
	const lines, nominal, sigma = 4096, 100000, 0.15
	b, err := NewVariedBank(Config{Lines: lines, Endurance: nominal}, sigma, 7)
	if err != nil {
		t.Fatal(err)
	}
	var sum, min, max float64
	min = math.Inf(1)
	for pa := uint64(0); pa < lines; pa++ {
		e := float64(b.LineEndurance(pa))
		sum += e
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	mean := sum / lines
	if math.Abs(mean-nominal) > 0.02*nominal {
		t.Fatalf("mean endurance %.0f, want ≈%d", mean, nominal)
	}
	if min >= nominal || max <= nominal {
		t.Fatalf("no spread: min %.0f max %.0f", min, max)
	}
	// Clamping bounds.
	if min < nominal/10 || max > 2*nominal-nominal/10 {
		t.Fatalf("clamp violated: min %.0f max %.0f", min, max)
	}
	wpa, we := b.WeakestLine()
	if uint64(we) != uint64(b.LineEndurance(wpa)) || float64(we) != min {
		t.Fatalf("weakest line inconsistent: %d/%d vs min %.0f", wpa, we, min)
	}
}

func TestVariedBankFailsAtOwnBudget(t *testing.T) {
	b, err := NewVariedBank(Config{Lines: 64, Endurance: 200}, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	pa, budget := b.WeakestLine()
	for i := uint64(0); i < budget; i++ {
		b.Write(pa, Mixed)
	}
	if b.Failed() {
		t.Fatal("failed before the line's own budget")
	}
	b.Write(pa, Mixed)
	if !b.Failed() {
		t.Fatal("line must fail past its individual budget")
	}
	fpa, _, _ := b.FirstFailure()
	if fpa != pa {
		t.Fatalf("failure at %d, hammered %d", fpa, pa)
	}
}

// TestVariationShortensUniformLifetime quantifies the weakest-line
// effect: under perfectly uniform wear the device dies when the weakest
// line's budget is reached, i.e. roughly (1 − zσ)·E·N total writes.
func TestVariationShortensUniformLifetime(t *testing.T) {
	const lines, nominal = 1024, 500
	uniform := MustNewBank(Config{Lines: lines, Endurance: nominal})
	varied, err := NewVariedBank(Config{Lines: lines, Endurance: nominal}, 0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	writesToFail := func(b *Bank) uint64 {
		var n uint64
		for !b.Failed() {
			b.Write(n%lines, Mixed)
			n++
		}
		return n
	}
	u, v := writesToFail(uniform), writesToFail(varied)
	if v >= u {
		t.Fatalf("variation should shorten uniform-wear lifetime: %d vs %d", v, u)
	}
	// At σ=0.2 and 1024 lines the extreme-value factor z ≈ 3.2, so the
	// weakest line sits around (1−0.64)·E; allow a generous band.
	ratio := float64(v) / float64(u)
	if ratio < 0.2 || ratio > 0.85 {
		t.Fatalf("lifetime ratio %.2f outside the plausible weakest-line band", ratio)
	}
	t.Logf("uniform-wear lifetime with σ=0.2 variation: %.0f%% of uniform-endurance", 100*ratio)
}

package pcm

import (
	"testing"
	"testing/quick"
)

func testBank(lines, endurance uint64) *Bank {
	return MustNewBank(Config{Lines: lines, Endurance: endurance})
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		data []byte
		want Content
	}{
		{[]byte{}, Zeros},
		{[]byte{0, 0, 0}, Zeros},
		{[]byte{0xff, 0xff}, Ones},
		{[]byte{0xff, 0x00}, Mixed},
		{[]byte{0x01}, Mixed},
		{[]byte{0xfe}, Mixed},
	}
	for _, c := range cases {
		if got := ClassOf(c.data); got != c.want {
			t.Errorf("ClassOf(%v) = %v, want %v", c.data, got, c.want)
		}
	}
}

func TestContentString(t *testing.T) {
	if Zeros.String() != "ALL-0" || Ones.String() != "ALL-1" || Mixed.String() != "MIXED" {
		t.Fatal("content names changed")
	}
}

func TestTimingWriteNs(t *testing.T) {
	tm := DefaultTiming
	if tm.WriteNs(Zeros) != 125 {
		t.Errorf("ALL-0 write = %d, want 125", tm.WriteNs(Zeros))
	}
	if tm.WriteNs(Ones) != 1000 || tm.WriteNs(Mixed) != 1000 {
		t.Error("writes containing SET bits must take the SET latency")
	}
}

// TestFig4RemapLatencies verifies that the device model reproduces the
// remapping latencies of the paper's Fig 4 exactly.
func TestFig4RemapLatencies(t *testing.T) {
	b := testBank(4, 1000)
	b.Write(0, Zeros)
	b.Write(1, Ones)
	b.Write(2, Ones)

	if got := b.Move(0, 3); got != 250 {
		t.Errorf("moving ALL-0 line = %d ns, want 250 (Fig 4a)", got)
	}
	if got := b.Move(1, 3); got != 1125 {
		t.Errorf("moving ALL-1 line = %d ns, want 1125 (Fig 4a)", got)
	}

	b2 := testBank(4, 1000)
	if got := b2.Swap(0, 1); got != 500 {
		t.Errorf("swapping two ALL-0 lines = %d ns, want 500 (Fig 4b)", got)
	}
	b2.Write(0, Ones)
	if got := b2.Swap(0, 1); got != 1375 {
		t.Errorf("swapping ALL-1 with ALL-0 = %d ns, want 1375 (Fig 4b)", got)
	}
	b2.Write(0, Ones)
	b2.Write(1, Ones)
	if got := b2.Swap(0, 1); got != 2250 {
		t.Errorf("swapping two ALL-1 lines = %d ns, want 2250 (Fig 4b)", got)
	}
}

func TestWriteAsymmetryIsTheSideChannel(t *testing.T) {
	b := testBank(2, 1000)
	fast := b.Write(0, Zeros)
	slow := b.Write(0, Ones)
	if slow/fast != 8 {
		t.Fatalf("SET/RESET ratio = %d/%d, paper says 8x", slow, fast)
	}
}

func TestEnduranceFailure(t *testing.T) {
	b := testBank(4, 10)
	for i := 0; i < 10; i++ {
		b.Write(2, Mixed)
		if b.Failed() {
			t.Fatalf("failed after %d writes, endurance is 10", i+1)
		}
	}
	b.Write(2, Mixed)
	if !b.Failed() {
		t.Fatal("line must fail after endurance+1 writes")
	}
	pa, at, ok := b.FirstFailure()
	if !ok || pa != 2 {
		t.Fatalf("first failure at PA %d (ok=%v), want 2", pa, ok)
	}
	if at != b.ElapsedNs() {
		t.Fatalf("failure time %d != elapsed %d", at, b.ElapsedNs())
	}
	if b.FailedLines() != 1 {
		t.Fatalf("failed lines = %d", b.FailedLines())
	}
}

func TestStuckAtFault(t *testing.T) {
	b := testBank(2, 3)
	b.Write(0, Ones)
	b.Write(0, Ones)
	b.Write(0, Ones)
	b.Write(0, Zeros) // exceeds endurance: content sticks at Ones
	if got := b.Peek(0); got != Ones {
		t.Fatalf("stuck-at line changed content to %v", got)
	}
	// Time and wear still accrue on a dead line.
	w := b.Wear(0)
	b.Write(0, Zeros)
	if b.Wear(0) != w+1 {
		t.Fatal("wear must keep accruing on a failed line")
	}
}

func TestReadDoesNotWear(t *testing.T) {
	b := testBank(2, 5)
	b.Write(1, Ones)
	for i := 0; i < 100; i++ {
		if c, ns := b.Read(1); c != Ones || ns != 125 {
			t.Fatalf("read %v/%d", c, ns)
		}
	}
	if b.Wear(1) != 1 {
		t.Fatalf("reads changed wear to %d", b.Wear(1))
	}
	if b.TotalReads() != 100 {
		t.Fatalf("total reads = %d", b.TotalReads())
	}
}

func TestElapsedAccounting(t *testing.T) {
	b := testBank(2, 100)
	b.Write(0, Zeros) // 125
	b.Write(1, Ones)  // 1000
	b.Read(0)         // 125
	b.AdvanceNs(50)
	if b.ElapsedNs() != 1300 {
		t.Fatalf("elapsed = %d, want 1300", b.ElapsedNs())
	}
	if b.TotalWrites() != 2 {
		t.Fatalf("writes = %d", b.TotalWrites())
	}
}

func TestMaxWear(t *testing.T) {
	b := testBank(8, 1000)
	for i := 0; i < 7; i++ {
		b.Write(5, Mixed)
	}
	b.Write(3, Mixed)
	pa, w := b.MaxWear()
	if pa != 5 || w != 7 {
		t.Fatalf("max wear at %d (%d), want 5 (7)", pa, w)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewBank(Config{Lines: 0, Endurance: 10}); err == nil {
		t.Error("zero lines must fail")
	}
	if _, err := NewBank(Config{Lines: 4}); err == nil {
		t.Error("zero endurance must fail")
	}
	b := MustNewBank(Config{Lines: 4, Endurance: 10})
	if b.Config().LineBytes != 256 {
		t.Error("line size should default to 256")
	}
	if b.Config().Timing != DefaultTiming {
		t.Error("timing should default")
	}
}

func TestPaperConfig(t *testing.T) {
	cfg := PaperConfig()
	if cfg.Lines != 1<<22 || cfg.LineBytes != 256 || cfg.Endurance != 1e8 {
		t.Fatalf("paper config drifted: %+v", cfg)
	}
	b := MustNewBank(cfg)
	if b.CapacityBytes() != 1<<30 {
		t.Fatalf("capacity = %d, want 1 GB", b.CapacityBytes())
	}
	// Ideal lifetime: 10^8 × 2^22 × 1000 ns ≈ 4855 days.
	days := float64(b.IdealLifetimeNs()) * 1e-9 / 86400
	if days < 4800 || days > 4900 {
		t.Fatalf("ideal lifetime = %.0f days, want ≈4855", days)
	}
}

func TestBadAddressPanics(t *testing.T) {
	b := testBank(4, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range write")
		}
	}()
	b.Write(4, Zeros)
}

func TestWearNeverDecreases(t *testing.T) {
	b := testBank(16, 1000)
	f := func(pa uint64, c uint8) bool {
		pa %= 16
		before := b.Wear(pa)
		b.Write(pa, Content(c%3))
		return b.Wear(pa) == before+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBankWrite(b *testing.B) {
	bank := testBank(1<<16, ^uint64(0)>>1)
	for i := 0; i < b.N; i++ {
		bank.Write(uint64(i)&(1<<16-1), Mixed)
	}
}

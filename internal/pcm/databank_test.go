package pcm

import (
	"bytes"
	"testing"
)

func dataBank(t *testing.T, policy WritePolicy) *DataBank {
	t.Helper()
	b, err := NewDataBank(Config{Lines: 8, LineBytes: 4, Endurance: 1000}, policy)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDataBankReadWrite(t *testing.T) {
	b := dataBank(t, FullWrite)
	b.Write(3, []byte{0xDE, 0xAD})
	got, ns := b.Read(3)
	if !bytes.Equal(got, []byte{0xDE, 0xAD, 0, 0}) {
		t.Fatalf("read back %x", got)
	}
	if ns != 125 {
		t.Fatalf("read latency %d", ns)
	}
	// Returned slice is a copy.
	got[0] = 0xFF
	again, _ := b.Read(3)
	if again[0] != 0xDE {
		t.Fatal("Read must return a copy")
	}
}

func TestFullWriteLatencyMatchesClassModel(t *testing.T) {
	b := dataBank(t, FullWrite)
	if ns := b.Write(0, []byte{0, 0, 0, 0}); ns != 125 {
		t.Fatalf("ALL-0 write %d ns", ns)
	}
	if ns := b.Write(0, []byte{0xFF, 0xFF, 0xFF, 0xFF}); ns != 1000 {
		t.Fatalf("ALL-1 write %d ns", ns)
	}
	if ns := b.Write(0, []byte{0x01, 0, 0, 0}); ns != 1000 {
		t.Fatalf("mixed write %d ns", ns)
	}
}

func TestDifferentialWriteLatency(t *testing.T) {
	b := dataBank(t, Differential)
	// 0 → 0xF0: SET transitions.
	if ns := b.Write(0, []byte{0xF0}); ns != 1000 {
		t.Fatalf("0→F0 took %d ns, want SET", ns)
	}
	// F0 → 0x30: only 1→0 transitions: RESET latency.
	if ns := b.Write(0, []byte{0x30}); ns != 125 {
		t.Fatalf("F0→30 took %d ns, want RESET", ns)
	}
	// Same data again: nothing changes, verify-read only, no wear.
	w := b.Wear(0)
	if ns := b.Write(0, []byte{0x30}); ns != 125 {
		t.Fatalf("no-op write took %d ns", ns)
	}
	if b.Wear(0) != w {
		t.Fatal("no-op differential write must not wear the line")
	}
	// 0x30 → 0x31: one SET transition.
	if ns := b.Write(0, []byte{0x31}); ns != 1000 {
		t.Fatalf("30→31 took %d ns, want SET", ns)
	}
}

// TestDifferentialStillLeaksTiming: the side channel the paper exploits
// does not vanish under differential writes — remapping an ALL-1 line
// onto an ALL-0 one still pays the SET pulse, an ALL-0 onto ALL-0 does
// not.
func TestDifferentialStillLeaksTiming(t *testing.T) {
	b := dataBank(t, Differential)
	b.Write(1, []byte{0xFF, 0xFF, 0xFF, 0xFF}) // the marked line
	fast := b.Move(0, 2)                       // ALL-0 over ALL-0
	slow := b.Move(1, 3)                       // ALL-1 over ALL-0
	if slow <= fast {
		t.Fatalf("timing leak gone: move ALL-1 %d ns vs ALL-0 %d ns", slow, fast)
	}
	if fast != 250 || slow != 1125 {
		t.Fatalf("move latencies %d/%d, want 250/1125", fast, slow)
	}
}

func TestDataBankEnduranceAndStuckAt(t *testing.T) {
	b, err := NewDataBank(Config{Lines: 2, LineBytes: 1, Endurance: 3}, FullWrite)
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(0); i < 3; i++ {
		b.Write(0, []byte{i + 1})
	}
	if b.Failed() {
		t.Fatal("early failure")
	}
	b.Write(0, []byte{0x55})
	if !b.Failed() {
		t.Fatal("must fail past endurance")
	}
	got, _ := b.Read(0)
	if got[0] != 3 {
		t.Fatalf("stuck-at content %x, want the last good value 3", got[0])
	}
	pa, at, ok := b.FirstFailure()
	if !ok || pa != 0 || at != b.ElapsedNs()-125 {
		t.Fatalf("failure record %d/%d/%v", pa, at, ok)
	}
}

func TestDataBankSwap(t *testing.T) {
	b := dataBank(t, FullWrite)
	b.Write(0, []byte{0xAA})
	b.Write(1, []byte{0xBB})
	b.Swap(0, 1)
	x, _ := b.Read(0)
	y, _ := b.Read(1)
	if x[0] != 0xBB || y[0] != 0xAA {
		t.Fatalf("swap result %x/%x", x[0], y[0])
	}
}

func TestDataBankOversizedWritePanics(t *testing.T) {
	b := dataBank(t, FullWrite)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Write(0, make([]byte, 5))
}

func TestTransitions(t *testing.T) {
	cases := []struct {
		old, new   []byte
		set, reset bool
	}{
		{[]byte{0x00}, []byte{0x00}, false, false},
		{[]byte{0x00}, []byte{0x01}, true, false},
		{[]byte{0x01}, []byte{0x00}, false, true},
		{[]byte{0x0F}, []byte{0xF0}, true, true},
		{[]byte{0xFF}, []byte{0xFF}, false, false},
		{nil, []byte{0x80}, true, false},
	}
	for _, c := range cases {
		set, reset := transitions(c.old, c.new)
		if set != c.set || reset != c.reset {
			t.Errorf("transitions(%x,%x) = %v/%v, want %v/%v",
				c.old, c.new, set, reset, c.set, c.reset)
		}
	}
}

func TestEnergyAccounting(t *testing.T) {
	b := MustNewBank(Config{Lines: 4, Endurance: 100})
	b.Write(0, Zeros)
	b.Write(1, Ones)
	b.Write(2, Mixed)
	b.Read(0)
	c := b.OpCounts()
	if c.Reads != 1 || c.ResetWrites != 1 || c.SetWrites != 2 {
		t.Fatalf("op counts %+v", c)
	}
	m := EnergyModel{ReadPJ: 1, ResetPJ: 10, SetPJ: 100}
	want := (1 + 10 + 200) * 1e-6
	if got := b.EnergyMicrojoules(m); got < want*0.999 || got > want*1.001 {
		t.Fatalf("energy %v µJ, want ≈%v", got, want)
	}
	// The default model makes a SET-heavy workload costlier than a
	// RESET-only one of the same length.
	if DefaultEnergy.Energy(OpCounts{SetWrites: 100}) <= DefaultEnergy.Energy(OpCounts{ResetWrites: 100}) {
		t.Fatal("SET-heavy traffic should cost more energy")
	}
}

// Package pcm models a Phase Change Memory bank at memory-line granularity.
//
// The model captures exactly the device properties the paper's attacks and
// defenses depend on:
//
//   - Asymmetric write latency. A PCM cell is SET (write '1') by a long
//     heating pulse and RESET (write '0') by a short one; the paper assumes
//     1000 ns vs 125 ns. A line write completes when its slowest cell
//     completes, so a line whose new data contains any '1' bit costs the SET
//     latency while an all-zero write costs only the RESET latency. This is
//     the side channel the Remapping Timing Attack measures.
//
//   - Limited endurance. Each line tolerates a bounded number of writes
//     (10^8 by default) after which it becomes a stuck-at hard fault. The
//     bank records the elapsed device time at the first failure, which is
//     the "lifetime" every experiment in the paper reports.
//
// The bank knows nothing about wear leveling: it is addressed purely by
// physical line number. Address translation lives in the scheme packages
// and in internal/wear.
//
// A Bank is not safe for concurrent use: every operation mutates wear
// counters and the device clock without locks. Distinct Bank instances
// share no state, so they may be driven from different goroutines —
// the single-writer-per-bank contract spelled out in internal/membank
// and enforced at runtime by internal/memserver's bank actors.
package pcm

import (
	"errors"
	"fmt"
)

// Content classifies the data stored in (or written to) a line. The timing
// model only needs to know whether the line contains any SET bits, so data
// is tracked as a three-valued class; exact byte tracking can be layered on
// top via ClassOf when a test needs it.
type Content uint8

const (
	// Zeros means every bit of the line is '0' (the attacker's fast write).
	Zeros Content = iota
	// Ones means every bit of the line is '1' (the attacker's slow write).
	Ones
	// Mixed means the line holds ordinary data with both bit values; a
	// write of Mixed content always pays the SET latency because some cell
	// almost surely requires a SET transition.
	Mixed
)

// String returns a human-readable name for the content class.
func (c Content) String() string {
	switch c {
	case Zeros:
		return "ALL-0"
	case Ones:
		return "ALL-1"
	case Mixed:
		return "MIXED"
	default:
		return fmt.Sprintf("Content(%d)", uint8(c))
	}
}

// ClassOf classifies a byte slice into a Content value.
func ClassOf(data []byte) Content {
	allZero, allOne := true, true
	for _, b := range data {
		if b != 0x00 {
			allZero = false
		}
		if b != 0xff {
			allOne = false
		}
		if !allZero && !allOne {
			return Mixed
		}
	}
	switch {
	case allZero:
		return Zeros
	case allOne:
		return Ones
	default:
		return Mixed
	}
}

// Timing holds the device latencies in nanoseconds.
type Timing struct {
	ReadNs  uint64 // latency of a line read
	ResetNs uint64 // latency of a line write containing only RESET pulses
	SetNs   uint64 // latency of a line write requiring at least one SET pulse
}

// DefaultTiming is the paper's assumption: READ 125 ns, RESET 125 ns,
// SET 1000 ns (Section II-C, following Qureshi et al., PreSET).
var DefaultTiming = Timing{ReadNs: 125, ResetNs: 125, SetNs: 1000}

// WriteNs returns the latency of writing content c to a line. Only the new
// data matters: the paper's model rewrites every bit of the line, so a line
// write containing any '1' costs the SET time.
func (t Timing) WriteNs(c Content) uint64 {
	if c == Zeros {
		return t.ResetNs
	}
	return t.SetNs
}

// Config describes a PCM bank.
type Config struct {
	// Lines is the number of physical memory lines in the bank. This must
	// cover both the logical space and any spare (gap) lines the
	// wear-leveling scheme needs.
	Lines uint64
	// LineBytes is the line size; the paper uses 256 B (the last-level
	// cache line size). It only affects capacity reporting and the
	// hardware-overhead math, not timing.
	LineBytes int
	// Endurance is the number of writes a line tolerates before it becomes
	// a stuck-at fault. The paper assumes 10^8.
	Endurance uint64
	// Timing holds the device latencies; zero value means DefaultTiming.
	Timing Timing
}

// PaperConfig returns the paper's evaluation configuration: a 1 GB bank of
// 256 B lines (2^22 lines) with 10^8 endurance, before adding any spare
// lines required by a scheme.
func PaperConfig() Config {
	return Config{
		Lines:     1 << 22,
		LineBytes: 256,
		Endurance: 1e8,
		Timing:    DefaultTiming,
	}
}

func (c *Config) normalize() error {
	if c.Lines == 0 {
		return errors.New("pcm: config needs at least one line")
	}
	if c.LineBytes <= 0 {
		c.LineBytes = 256
	}
	if c.Endurance == 0 {
		return errors.New("pcm: endurance must be positive")
	}
	if c.Timing == (Timing{}) {
		c.Timing = DefaultTiming
	}
	return nil
}

// ErrBadAddress is returned (wrapped) when a physical address is out of
// range for the bank.
var ErrBadAddress = errors.New("pcm: physical address out of range")

// Bank is a simulated PCM bank addressed by physical line number.
// It is not safe for concurrent use; the experiments shard work by running
// one bank per goroutine.
type Bank struct {
	cfg     Config
	wear    []uint32
	content []Content
	// endurances holds per-line budgets under process variation
	// (NewVariedBank); nil means the uniform cfg.Endurance applies.
	endurances []uint32

	failedLines uint64 // number of lines past endurance
	firstFailPA uint64
	firstFailNs uint64
	failed      bool

	totalWrites uint64
	resetWrites uint64 // writes of ALL-0 content (RESET pulses only)
	totalReads  uint64
	elapsedNs   uint64

	// Running maximum over wear, maintained on every write so MaxWear is
	// O(1). The tie-break (lowest PA among equally worn lines) matches the
	// scan it replaced — figure fingerprints depend on MaxWearPA.
	maxWearVal uint32
	maxWearPA  uint64
}

// noteWear folds one line's new wear value into the running maximum,
// preserving the earliest-PA tie-break of a left-to-right scan: a line
// only takes over an equal maximum if its address is lower.
func (b *Bank) noteWear(pa uint64, w uint32) {
	if w > b.maxWearVal {
		b.maxWearVal = w
		b.maxWearPA = pa
	} else if w == b.maxWearVal && pa < b.maxWearPA {
		b.maxWearPA = pa
	}
}

// NewBank builds a bank from cfg. All lines start as Zeros with zero wear.
func NewBank(cfg Config) (*Bank, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	return &Bank{
		cfg:     cfg,
		wear:    make([]uint32, cfg.Lines),
		content: make([]Content, cfg.Lines),
	}, nil
}

// MustNewBank is NewBank that panics on config errors; for tests and
// examples with literal configs.
func MustNewBank(cfg Config) *Bank {
	b, err := NewBank(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// Config returns the bank configuration.
func (b *Bank) Config() Config { return b.cfg }

// Lines returns the number of physical lines.
func (b *Bank) Lines() uint64 { return b.cfg.Lines }

func (b *Bank) check(pa uint64) {
	if pa >= b.cfg.Lines {
		panic(fmt.Errorf("%w: %d >= %d", ErrBadAddress, pa, b.cfg.Lines))
	}
}

// Read returns the content of line pa and advances device time by the read
// latency.
func (b *Bank) Read(pa uint64) (Content, uint64) {
	b.check(pa)
	b.totalReads++
	b.elapsedNs += b.cfg.Timing.ReadNs
	return b.content[pa], b.cfg.Timing.ReadNs
}

// Peek returns the content of line pa without advancing time or counters;
// for assertions and data-movement bookkeeping.
func (b *Bank) Peek(pa uint64) Content {
	b.check(pa)
	return b.content[pa]
}

// Write stores content c into line pa, wears the line, and advances device
// time. It returns the write latency in nanoseconds. Writing to a failed
// (stuck-at) line still takes time and wear accounting but leaves the
// stored content unchanged, modeling a stuck-at fault.
func (b *Bank) Write(pa uint64, c Content) uint64 {
	b.check(pa)
	ns := b.cfg.Timing.WriteNs(c)
	b.totalWrites++
	if c == Zeros {
		b.resetWrites++
	}
	b.elapsedNs += ns
	w := uint64(b.wear[pa]) + 1
	b.wear[pa] = uint32(w)
	b.noteWear(pa, uint32(w))
	endurance := b.cfg.Endurance
	if b.endurances != nil {
		endurance = uint64(b.endurances[pa])
	}
	if w > endurance {
		if w == endurance+1 {
			b.failedLines++
			if !b.failed {
				b.failed = true
				b.firstFailPA = pa
				b.firstFailNs = b.elapsedNs
			}
		}
		return ns // stuck-at: content not updated
	}
	b.content[pa] = c
	return ns
}

// WriteN stores content c into line pa n times in a row, with wear, clock
// and failure accounting identical to calling Write(pa, c) n times — but
// in O(1). It returns the total latency of the batch in nanoseconds.
//
// Equivalence to the write-by-write loop is exact: the per-write latency
// is constant (it depends only on c), so the batch advances the clock by
// n·WriteNs(c); if the batch carries the line past its endurance, the
// crossing write's index is computed arithmetically and the recorded
// first-failure time is the clock exactly after that write, as the loop
// would have recorded it. The one representational limit is the uint32
// wear counter: a single line's lifetime wear must stay below 2^32, which
// holds for every supported configuration (endurance ≤ 10^8 and callers
// stop hammering failed lines).
func (b *Bank) WriteN(pa uint64, c Content, n uint64) uint64 {
	if n == 0 {
		return 0
	}
	b.check(pa)
	ns := b.cfg.Timing.WriteNs(c)
	b.totalWrites += n
	if c == Zeros {
		b.resetWrites += n
	}
	w0 := uint64(b.wear[pa])
	w1 := w0 + n
	b.wear[pa] = uint32(w1)
	b.noteWear(pa, uint32(w1))
	endurance := b.cfg.Endurance
	if b.endurances != nil {
		endurance = uint64(b.endurances[pa])
	}
	if w0 <= endurance && w1 > endurance {
		// The (endurance+1−w0)-th write of this batch is the crossing one.
		b.failedLines++
		if !b.failed {
			b.failed = true
			b.firstFailPA = pa
			b.firstFailNs = b.elapsedNs + (endurance+1-w0)*ns
		}
	}
	b.elapsedNs += n * ns
	if w0 < endurance {
		// At least one write of the batch landed before the line stuck, and
		// every successful write stored the same content.
		b.content[pa] = c
	}
	return n * ns
}

// Move copies the content of line src into line dst (one read plus one
// write), the primitive remapping step of Start-Gap style schemes. It
// returns the total latency — 250 ns for an ALL-0 line, 1125 ns for a line
// containing SET bits, matching Fig 4(a) of the paper.
func (b *Bank) Move(src, dst uint64) uint64 {
	c, rd := b.Read(src)
	return rd + b.Write(dst, c)
}

// Swap exchanges the contents of lines x and y (two reads plus two writes),
// the primitive remapping step of Security Refresh. The latency matches
// Fig 4(b): 500 ns for two ALL-0 lines up to 2250 ns for two lines with
// SET bits.
func (b *Bank) Swap(x, y uint64) uint64 {
	cx, r1 := b.Read(x)
	cy, r2 := b.Read(y)
	return r1 + r2 + b.Write(x, cy) + b.Write(y, cx)
}

// Wear returns the write count of line pa.
func (b *Bank) Wear(pa uint64) uint64 {
	b.check(pa)
	return uint64(b.wear[pa])
}

// WearCounts returns the underlying wear array without copying, because
// experiment code scans millions of counters.
//
// Aliasing hazard: the returned slice IS the bank's live state. It mutates
// under the caller on every subsequent Write/WriteN/Move/Swap, so it must
// only be read between operations on the bank's own goroutine and never
// retained or handed to another goroutine — use WearSnapshot for that.
func (b *Bank) WearCounts() []uint32 { return b.wear }

// WearSnapshot appends a copy of the wear array to dst (growing it as
// needed) and returns it. The copy is decoupled from the bank: safe to
// retain, sort, or read from other goroutines while the bank keeps
// writing. Pass nil to allocate, or a reused buffer for zero steady-state
// allocations.
func (b *Bank) WearSnapshot(dst []uint32) []uint32 {
	return append(dst[:0], b.wear...)
}

// MaxWear returns the highest wear of any line and its address (the
// lowest such address when several lines tie). The maximum is maintained
// incrementally on every write, so this is O(1).
func (b *Bank) MaxWear() (pa uint64, wear uint64) {
	return b.maxWearPA, uint64(b.maxWearVal)
}

// Failed reports whether any line has exceeded its endurance.
func (b *Bank) Failed() bool { return b.failed }

// FirstFailure returns the physical address and the elapsed device time of
// the first line failure. ok is false if no line has failed yet.
func (b *Bank) FirstFailure() (pa uint64, atNs uint64, ok bool) {
	return b.firstFailPA, b.firstFailNs, b.failed
}

// FailedLines returns how many lines have exceeded endurance.
func (b *Bank) FailedLines() uint64 { return b.failedLines }

// ElapsedNs returns the accumulated device time in nanoseconds.
func (b *Bank) ElapsedNs() uint64 { return b.elapsedNs }

// AdvanceNs adds idle or externally accounted time (e.g. attacker-side
// computation between writes) to the device clock.
func (b *Bank) AdvanceNs(ns uint64) { b.elapsedNs += ns }

// TotalWrites returns the number of line writes performed.
func (b *Bank) TotalWrites() uint64 { return b.totalWrites }

// TotalReads returns the number of line reads performed.
func (b *Bank) TotalReads() uint64 { return b.totalReads }

// CapacityBytes returns the bank capacity in bytes.
func (b *Bank) CapacityBytes() uint64 {
	return b.cfg.Lines * uint64(b.cfg.LineBytes)
}

// IdealLifetimeNs returns the lifetime of the bank under perfectly uniform
// wear with generic (SET-latency) writes: Endurance × Lines × SetNs. Every
// figure in the paper plots scheme lifetimes against this line.
func (b *Bank) IdealLifetimeNs() uint64 {
	return b.cfg.Endurance * b.cfg.Lines * b.cfg.Timing.SetNs
}

// Package benchparse reads `go test -bench` output and compares runs
// against a committed baseline — an in-repo, dependency-free sliver of
// benchstat, shaped for the CI perf gate.
//
// The repo tracks its performance trajectory in committed BENCH_N.json
// baselines (one per optimization PR). A baseline maps benchmark name →
// unit → value for every unit the benchmark printed: the standard
// ns/op, B/op and allocs/op plus each custom ReportMetric series (the
// figure benchmarks report paper numbers — pct_of_ideal, attacker
// writes — so the baseline doubles as a record of *results*, not just
// speed). Compare checks the designated guard benchmarks' ns/op
// against the baseline with a relative threshold, and their allocs/op
// exactly: the zero-allocation kernels are a contract, and "one alloc
// crept back in" is precisely the regression an averaged time threshold
// would miss.
package benchparse

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped,
	// so baselines recorded on different machines stay comparable.
	Name string
	// Iters is the iteration count (the b.N the line reports).
	Iters int64
	// Metrics maps unit → value: "ns/op", "B/op", "allocs/op" and any
	// custom ReportMetric units.
	Metrics map[string]float64
}

// ParseLine parses one line of -bench output. ok is false for anything
// that is not a benchmark result line (headers, PASS, pkg banners).
func ParseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: trimProcs(fields[0]), Iters: iters, Metrics: map[string]float64{}}
	// The remainder is value/unit pairs.
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Result{}, false
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[rest[i+1]] = v
	}
	return r, true
}

// trimProcs strips a trailing -N GOMAXPROCS suffix.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Parse reads a whole -bench output stream. Repeated names (-count > 1)
// are all returned, in order.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if res, ok := ParseLine(sc.Text()); ok {
			out = append(out, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchparse: %w", err)
	}
	return out, nil
}

// Best collapses repeated runs of the same benchmark to the run with
// the minimum ns/op — the standard noise reduction for a gate: the
// fastest observation is the one least polluted by scheduler jitter.
func Best(results []Result) map[string]Result {
	best := map[string]Result{}
	for _, r := range results {
		cur, seen := best[r.Name]
		if !seen || r.Metrics["ns/op"] < cur.Metrics["ns/op"] {
			best[r.Name] = r
		}
	}
	return best
}

// Baseline is the committed BENCH_N.json shape.
type Baseline struct {
	// Note records what the baseline was captured with (benchtime, CPU).
	Note string `json:"note,omitempty"`
	// Benchmarks maps name → unit → value.
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

// NewBaseline builds a Baseline from parsed results (best run per name).
func NewBaseline(results []Result, note string) Baseline {
	b := Baseline{Note: note, Benchmarks: map[string]map[string]float64{}}
	for name, r := range Best(results) {
		b.Benchmarks[name] = r.Metrics
	}
	return b
}

// Regression is one guard benchmark that got worse than the baseline
// allows.
type Regression struct {
	Name     string
	Unit     string
	Old, New float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.4g -> %.4g (%+.1f%%)",
		r.Name, r.Unit, r.Old, r.New, (r.New/r.Old-1)*100)
}

// Compare gates `results` against the baseline on the guard benchmark
// names: ns/op may regress by at most maxRegress (0.15 = +15%), and
// allocs/op may not exceed the recorded value at all. A guard missing
// from either side is an error — a gate that silently stops measuring
// is worse than none.
func Compare(base Baseline, results []Result, guards []string, maxRegress float64) ([]Regression, error) {
	best := Best(results)
	var regs []Regression
	for _, g := range guards {
		old, ok := base.Benchmarks[g]
		if !ok {
			return nil, fmt.Errorf("benchparse: guard %s not in baseline", g)
		}
		cur, ok := best[g]
		if !ok {
			return nil, fmt.Errorf("benchparse: guard %s not in current run", g)
		}
		oldNs, ok := old["ns/op"]
		if !ok || oldNs <= 0 {
			return nil, fmt.Errorf("benchparse: guard %s baseline has no ns/op", g)
		}
		if newNs := cur.Metrics["ns/op"]; newNs > oldNs*(1+maxRegress) {
			regs = append(regs, Regression{Name: g, Unit: "ns/op", Old: oldNs, New: newNs})
		}
		if oldAllocs, ok := old["allocs/op"]; ok {
			if newAllocs := cur.Metrics["allocs/op"]; newAllocs > oldAllocs {
				regs = append(regs, Regression{Name: g, Unit: "allocs/op", Old: oldAllocs, New: newAllocs})
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Name != regs[j].Name {
			return regs[i].Name < regs[j].Name
		}
		return regs[i].Unit < regs[j].Unit
	})
	return regs, nil
}

package benchparse

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: securityrbsg
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFeistelMapTable-8      	1000000000	         0.7471 ns/op	       0 B/op	       0 allocs/op
BenchmarkLifetimeRAAScaled 	      25	  45886402 ns/op	        73.21 pct_of_ideal	       7 B/op	       0 allocs/op
BenchmarkFeistelMapTable-8      	 900000000	         0.9000 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	securityrbsg	7.918s
`

func parseSample(t *testing.T) []Result {
	t.Helper()
	rs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestParse(t *testing.T) {
	rs := parseSample(t)
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3", len(rs))
	}
	if rs[0].Name != "BenchmarkFeistelMapTable" {
		t.Errorf("procs suffix not stripped: %q", rs[0].Name)
	}
	if rs[0].Metrics["ns/op"] != 0.7471 || rs[0].Metrics["allocs/op"] != 0 {
		t.Errorf("bad metrics: %+v", rs[0].Metrics)
	}
	if rs[1].Iters != 25 || rs[1].Metrics["pct_of_ideal"] != 73.21 {
		t.Errorf("ReportMetric series lost: %+v", rs[1])
	}
}

func TestBestTakesMinNs(t *testing.T) {
	best := Best(parseSample(t))
	if got := best["BenchmarkFeistelMapTable"].Metrics["ns/op"]; got != 0.7471 {
		t.Fatalf("Best kept %v ns/op, want the 0.7471 run", got)
	}
}

func TestCompare(t *testing.T) {
	base := NewBaseline(parseSample(t), "test")
	guards := []string{"BenchmarkFeistelMapTable", "BenchmarkLifetimeRAAScaled"}

	// Identical run: no regressions.
	regs, err := Compare(base, parseSample(t), guards, 0.15)
	if err != nil || len(regs) != 0 {
		t.Fatalf("self-compare: regs=%v err=%v", regs, err)
	}

	// 30% slower + one new alloc on the scaled kernel: both flagged.
	slow := []Result{
		{Name: "BenchmarkFeistelMapTable", Iters: 1, Metrics: map[string]float64{"ns/op": 0.7471 * 1.30, "allocs/op": 0}},
		{Name: "BenchmarkLifetimeRAAScaled", Iters: 1, Metrics: map[string]float64{"ns/op": 45886402, "allocs/op": 1}},
	}
	regs, err = Compare(base, slow, guards, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions (ns/op + allocs/op), got %v", regs)
	}
	if regs[0].Unit != "ns/op" || regs[1].Unit != "allocs/op" {
		t.Fatalf("unexpected regression units: %v", regs)
	}

	// Widened threshold forgives the slowdown but not the allocation.
	regs, err = Compare(base, slow, guards, 0.50)
	if err != nil || len(regs) != 1 || regs[0].Unit != "allocs/op" {
		t.Fatalf("allocs/op must gate exactly: regs=%v err=%v", regs, err)
	}

	// A guard absent from the run is an error, not a silent pass.
	if _, err := Compare(base, slow[:1], guards, 0.15); err == nil {
		t.Fatal("missing guard did not error")
	}
	if _, err := Compare(base, slow, []string{"BenchmarkNope"}, 0.15); err == nil {
		t.Fatal("guard missing from baseline did not error")
	}
}

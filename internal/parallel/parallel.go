// Package parallel provides the small deterministic fan-out helpers the
// experiment harness uses to spread independent simulations across CPU
// cores: indexed work with results written to index-addressed slots, so
// parallel runs produce bit-identical output to sequential ones.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs f(i) for every i in [0, n), on up to `workers` goroutines
// (NumCPU when workers <= 0). It returns when all calls complete. f must
// not panic; work items must be independent.
func ForEach(n, workers int, f func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs f over [0, n) in parallel and collects the results in index
// order — the deterministic gather for Monte-Carlo sweeps.
func Map[T any](n, workers int, f func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = f(i) })
	return out
}

// MapErr is Map for fallible work; it returns the first error by index
// (not by completion time), keeping failures deterministic too.
func MapErr[T any](n, workers int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(n, workers, func(i int) { out[i], errs[i] = f(i) })
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

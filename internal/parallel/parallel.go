// Package parallel provides the small deterministic fan-out helpers the
// experiment harness uses to spread independent simulations across CPU
// cores: indexed work with results written to index-addressed slots, so
// parallel runs produce bit-identical output to sequential ones.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs f(i) for every i in [0, n), on up to `workers` goroutines
// (NumCPU when workers <= 0). It returns when all calls complete. f must
// not panic; work items must be independent.
func ForEach(n, workers int, f func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachErr is ForEach for fallible work: it runs f(i) for every i in
// [0, n) and returns the errors in index-addressed slots (nil entries
// for successes), so callers can tell exactly which work items failed —
// and, for example, retry just those — rather than learning only that
// something failed. It returns nil when n <= 0.
func ForEachErr(n, workers int, f func(i int) error) []error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	ForEach(n, workers, func(i int) { errs[i] = f(i) })
	return errs
}

// First returns the lowest-index non-nil error in errs, or nil — the
// deterministic reduction of an index-addressed error slice.
func First(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs f over [0, n) in parallel and collects the results in index
// order — the deterministic gather for Monte-Carlo sweeps.
func Map[T any](n, workers int, f func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = f(i) })
	return out
}

// MapErr is Map for fallible work; it returns the first error by index
// (not by completion time), keeping failures deterministic too.
func MapErr[T any](n, workers int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := ForEachErr(n, workers, func(i int) error {
		var err error
		out[i], err = f(i)
		return err
	})
	return out, First(errs)
}

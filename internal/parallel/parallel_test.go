package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		var hits [100]atomic.Int32
		ForEach(100, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	if called {
		t.Fatal("f called for empty range")
	}
}

func TestMapDeterministicOrder(t *testing.T) {
	got := Map(50, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("index %d: got %d", i, v)
		}
	}
	// Parallel result must equal sequential result exactly.
	seq := Map(50, 1, func(i int) int { return i * i })
	for i := range seq {
		if got[i] != seq[i] {
			t.Fatal("parallel and sequential outputs differ")
		}
	}
}

func TestMapErrReturnsFirstByIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	_, err := MapErr(10, 4, func(i int) (int, error) {
		switch i {
		case 7:
			return 0, errB
		case 3:
			return 0, errA
		}
		return i, nil
	})
	if err != errA {
		t.Fatalf("got %v, want the lowest-index error", err)
	}
	vals, err := MapErr(5, 2, func(i int) (int, error) { return i + 1, nil })
	if err != nil || vals[4] != 5 {
		t.Fatalf("clean MapErr: %v %v", vals, err)
	}
}

func TestForEachErrIndexAddressedSlots(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 4, 64} {
		errs := ForEachErr(10, workers, func(i int) error {
			switch i {
			case 3:
				return errA
			case 7:
				return errB
			}
			return nil
		})
		if len(errs) != 10 {
			t.Fatalf("workers=%d: got %d slots, want 10", workers, len(errs))
		}
		for i, err := range errs {
			want := error(nil)
			switch i {
			case 3:
				want = errA
			case 7:
				want = errB
			}
			if err != want {
				t.Fatalf("workers=%d: slot %d = %v, want %v", workers, i, err, want)
			}
		}
		if got := First(errs); got != errA {
			t.Fatalf("workers=%d: First = %v, want lowest-index error", workers, got)
		}
	}
}

func TestForEachErrEmpty(t *testing.T) {
	if errs := ForEachErr(0, 4, func(int) error { return errors.New("x") }); errs != nil {
		t.Fatalf("got %v, want nil for empty range", errs)
	}
	if err := First(nil); err != nil {
		t.Fatalf("First(nil) = %v", err)
	}
}

func BenchmarkForEachOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ForEach(64, 0, func(int) {})
	}
}

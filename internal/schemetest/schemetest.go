// Package schemetest provides the shared verification harness for
// wear-leveling schemes: a token-tracking Mover that follows every data
// movement a scheme performs, so tests can assert — after any sequence of
// writes and remapping rounds — that each logical address still resolves
// to the physical line holding its data.
//
// This is the strongest invariant a translation layer has (mapping and
// data never diverge) and it is exactly the property the paper's Fig 9
// pseudocode would violate on multi-cycle key permutations; the core
// package's tests lean on this harness to validate the corrected
// remapping walk.
package schemetest

import (
	"fmt"

	"securityrbsg/internal/stats"
	"securityrbsg/internal/wear"
)

// Empty marks a physical line not currently holding any logical line's
// data (gap and spare lines).
const Empty = ^uint64(0)

// TokenMover implements wear.Mover by moving opaque tokens instead of
// touching a bank. Latencies returned are zero (tests that need timing
// use a real pcm.Bank).
type TokenMover struct {
	// Tokens[pa] is the logical address whose data line pa holds, or
	// Empty.
	Tokens []uint64
	// Moves and Swaps count operations performed.
	Moves, Swaps uint64
}

// NewTokenMover seeds a tracker from the scheme's current translation:
// every logical line's token is placed at its translated physical line.
func NewTokenMover(s wear.Scheme) *TokenMover {
	m := &TokenMover{Tokens: make([]uint64, s.PhysicalLines())}
	for i := range m.Tokens {
		m.Tokens[i] = Empty
	}
	for la := uint64(0); la < s.LogicalLines(); la++ {
		pa := s.Translate(la)
		if m.Tokens[pa] != Empty {
			panic(fmt.Sprintf("schemetest: initial translation collides at PA %d", pa))
		}
		m.Tokens[pa] = la
	}
	return m
}

// Move copies the token at src to dst. Moving onto an occupied line is
// legal only as an overwrite of a line whose data was already moved away
// (the harness cannot see intent, so it simply overwrites); Verify will
// catch any resulting divergence.
func (m *TokenMover) Move(src, dst uint64) uint64 {
	m.Tokens[dst] = m.Tokens[src]
	m.Tokens[src] = Empty
	m.Moves++
	return 0
}

// Swap exchanges the tokens at x and y.
func (m *TokenMover) Swap(x, y uint64) uint64 {
	m.Tokens[x], m.Tokens[y] = m.Tokens[y], m.Tokens[x]
	m.Swaps++
	return 0
}

// Verify checks that every logical address translates to the physical
// line holding its token, returning a description of the first divergence.
func Verify(s wear.Scheme, m *TokenMover) error {
	for la := uint64(0); la < s.LogicalLines(); la++ {
		pa := s.Translate(la)
		if pa >= uint64(len(m.Tokens)) {
			return fmt.Errorf("%s: LA %d translates to PA %d beyond physical space %d",
				s.Name(), la, pa, len(m.Tokens))
		}
		if m.Tokens[pa] != la {
			return fmt.Errorf("%s: LA %d translates to PA %d, but that line holds %s",
				s.Name(), la, pa, tokenName(m.Tokens[pa]))
		}
	}
	return nil
}

func tokenName(t uint64) string {
	if t == Empty {
		return "nothing"
	}
	return fmt.Sprintf("LA %d's data", t)
}

// Exercise drives `writes` random demand writes through the scheme,
// verifying the mapping/data invariant every `checkEvery` writes (and
// once at the end). It returns the mover for further inspection.
func Exercise(s wear.Scheme, writes, checkEvery int, seed uint64) (*TokenMover, error) {
	m := NewTokenMover(s)
	if err := Verify(s, m); err != nil {
		return m, fmt.Errorf("before any writes: %w", err)
	}
	rng := stats.NewRNG(seed)
	n := s.LogicalLines()
	for i := 1; i <= writes; i++ {
		s.NoteWrite(rng.Uint64n(n), m)
		if checkEvery > 0 && i%checkEvery == 0 {
			if err := Verify(s, m); err != nil {
				return m, fmt.Errorf("after %d writes: %w", i, err)
			}
		}
	}
	if err := Verify(s, m); err != nil {
		return m, fmt.Errorf("after %d writes: %w", writes, err)
	}
	return m, nil
}

// ExerciseHammer drives `writes` demand writes to a single logical
// address (the RAA pattern — it exercises remapping much faster than
// uniform traffic), verifying every `checkEvery` writes.
func ExerciseHammer(s wear.Scheme, la uint64, writes, checkEvery int) (*TokenMover, error) {
	m := NewTokenMover(s)
	for i := 1; i <= writes; i++ {
		s.NoteWrite(la, m)
		if checkEvery > 0 && i%checkEvery == 0 {
			if err := Verify(s, m); err != nil {
				return m, fmt.Errorf("after %d hammer writes: %w", i, err)
			}
		}
	}
	if err := Verify(s, m); err != nil {
		return m, fmt.Errorf("after %d hammer writes: %w", writes, err)
	}
	return m, nil
}

package schemetest

import (
	"strings"
	"testing"

	"securityrbsg/internal/wear"
)

// fakeScheme is a controllable scheme for testing the harness itself.
type fakeScheme struct {
	translate []uint64
	phys      uint64
	onWrite   func(m wear.Mover)
}

func (f *fakeScheme) Name() string               { return "fake" }
func (f *fakeScheme) LogicalLines() uint64       { return uint64(len(f.translate)) }
func (f *fakeScheme) PhysicalLines() uint64      { return f.phys }
func (f *fakeScheme) Translate(la uint64) uint64 { return f.translate[la] }
func (f *fakeScheme) NoteWrite(la uint64, m wear.Mover) uint64 {
	if f.onWrite != nil {
		f.onWrite(m)
	}
	return 0
}

func TestTokenMoverSeedsFromTranslation(t *testing.T) {
	f := &fakeScheme{translate: []uint64{2, 0, 3}, phys: 4}
	m := NewTokenMover(f)
	if m.Tokens[2] != 0 || m.Tokens[0] != 1 || m.Tokens[3] != 2 {
		t.Fatalf("tokens misplaced: %v", m.Tokens)
	}
	if m.Tokens[1] != Empty {
		t.Fatal("unmapped line should be empty")
	}
	if err := Verify(f, m); err != nil {
		t.Fatal(err)
	}
}

func TestTokenMoverPanicsOnCollision(t *testing.T) {
	f := &fakeScheme{translate: []uint64{1, 1}, phys: 2}
	defer func() {
		if recover() == nil {
			t.Fatal("colliding initial translation must panic")
		}
	}()
	NewTokenMover(f)
}

func TestVerifyCatchesDivergence(t *testing.T) {
	f := &fakeScheme{translate: []uint64{0, 1}, phys: 3}
	m := NewTokenMover(f)
	// The scheme claims LA 0 moved but no data moved.
	f.translate[0] = 2
	err := Verify(f, m)
	if err == nil {
		t.Fatal("divergence not caught")
	}
	if !strings.Contains(err.Error(), "LA 0") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestVerifyCatchesOutOfRange(t *testing.T) {
	f := &fakeScheme{translate: []uint64{0}, phys: 1}
	m := NewTokenMover(f)
	f.translate[0] = 5
	if err := Verify(f, m); err == nil || !strings.Contains(err.Error(), "beyond") {
		t.Fatalf("out-of-range translation not caught: %v", err)
	}
}

func TestMoveAndSwapSemantics(t *testing.T) {
	f := &fakeScheme{translate: []uint64{0, 1}, phys: 3}
	m := NewTokenMover(f)
	m.Move(0, 2)
	if m.Tokens[2] != 0 || m.Tokens[0] != Empty {
		t.Fatalf("move semantics: %v", m.Tokens)
	}
	m.Swap(1, 2)
	if m.Tokens[1] != 0 || m.Tokens[2] != 1 {
		t.Fatalf("swap semantics: %v", m.Tokens)
	}
	if m.Moves != 1 || m.Swaps != 1 {
		t.Fatalf("op counts: %d/%d", m.Moves, m.Swaps)
	}
}

func TestExerciseReportsFirstFailure(t *testing.T) {
	// A scheme that corrupts itself on the 5th write.
	writes := 0
	f := &fakeScheme{translate: []uint64{0, 1, 2}, phys: 3}
	f.onWrite = func(m wear.Mover) {
		writes++
		if writes == 5 {
			f.translate[0], f.translate[1] = f.translate[1], f.translate[0] // mapping flips, data doesn't
		}
	}
	_, err := Exercise(f, 20, 1, 1)
	if err == nil || !strings.Contains(err.Error(), "after 5 writes") {
		t.Fatalf("corruption not localized: %v", err)
	}
}

func TestExerciseHammerCleanScheme(t *testing.T) {
	f := &fakeScheme{translate: []uint64{0, 1, 2}, phys: 3}
	if _, err := ExerciseHammer(f, 1, 100, 10); err != nil {
		t.Fatal(err)
	}
}

package wear

// Passthrough is the identity wear-leveling scheme: logical address ==
// physical address, no remapping ever. It is the paper's baseline ("the
// Baseline (without any wear-leveling schemes)") for both the lifetime
// and the performance-impact experiments.
type Passthrough uint64

// NewPassthrough returns a no-op scheme over n lines.
func NewPassthrough(n uint64) Passthrough { return Passthrough(n) }

// Name identifies the scheme.
func (p Passthrough) Name() string { return "none" }

// LogicalLines returns n.
func (p Passthrough) LogicalLines() uint64 { return uint64(p) }

// PhysicalLines returns n.
func (p Passthrough) PhysicalLines() uint64 { return uint64(p) }

// Translate is the identity.
func (p Passthrough) Translate(la uint64) uint64 { return la }

// NoteWrite never remaps.
func (p Passthrough) NoteWrite(la uint64, m Mover) uint64 { return 0 }

package wear

import "securityrbsg/internal/pcm"

// FastForwarder is the optional scheme capability behind the exact-tier
// acceleration (Controller.WriteRun and internal/exactsim): a scheme that
// can tell, in closed form, how long its mappings stay frozen under a
// fixed write stream.
//
// The contract is exact, not approximate. For a demand-write stream
// pinned to logical address la:
//
//   - WritesToNextRemap(la) returns k ≥ 1 such that the next k−1 writes
//     to la provably trigger no remapping movements (NoteWrite returns 0
//     and no scheme register that affects Translate changes), while the
//     k-th write is the first that may trigger movements.
//   - SkipWrites(la, k), with k < WritesToNextRemap(la), advances the
//     scheme's write counters exactly as k calls to NoteWrite(la, m)
//     would — implementations panic if k would cross a remap boundary.
//
// Between remap events the translation Translate(la) is frozen, which is
// what makes the closed form possible: k−1 writes to la are k−1 writes
// to the same physical line, with constant latency and no observable
// anomaly, so they can be applied in bulk (pcm.Bank.WriteN) without
// losing a bit of the timing side channel — every anomalous (movement-
// carrying) write is still executed individually.
type FastForwarder interface {
	WritesToNextRemap(la uint64) uint64
	SkipWrites(la, k uint64)
}

// WriteRun issues n consecutive demand writes of content to la, exactly
// equivalent to calling Write(la, content) n times, and returns how many
// writes were issued and their total observed latency.
//
// onEvent, when non-nil, is invoked for every write whose observed
// latency differs from the base latency of an unremarkable write
// (TranslationNs + device write time) — i.e. for exactly the writes an
// attacker would flag as anomalous. i is the 0-based index of the write
// within this run and ns its full observed latency. Returning false stops
// the run after that write.
//
// stopOnFail stops the run immediately after the write that records the
// bank's first line failure (issued then counts that write).
//
// When the scheme implements FastForwarder and TranslationNs is zero, the
// run is accelerated: each inter-remap epoch's movement-free prefix is
// applied with pcm.Bank.WriteN plus FastForwarder.SkipWrites, and only
// the epoch's firing write goes through the ordinary Write path. Wear
// array, device clock, failure record, scheme state and the sequence of
// onEvent callbacks are bit-identical to the naive loop (the differential
// tests in internal/exactsim assert this). Otherwise the naive loop runs.
func (c *Controller) WriteRun(la uint64, content pcm.Content, n uint64, stopOnFail bool, onEvent func(i, ns uint64) bool) (issued, totalNs uint64) {
	base := c.TranslationNs + c.bank.Config().Timing.WriteNs(content)
	ff, ok := c.scheme.(FastForwarder)
	if !ok || c.TranslationNs != 0 {
		return c.writeRunNaive(la, content, n, base, stopOnFail, onEvent)
	}
	for issued < n {
		k := ff.WritesToNextRemap(la)
		if batch := k - 1; batch > 0 {
			if rem := n - issued; batch > rem {
				batch = rem
			}
			pa := c.scheme.Translate(la)
			truncated := false
			if stopOnFail && !c.bank.Failed() {
				// No line has failed yet, so this one hasn't either: its
				// wear is ≤ its budget and j ≥ 1 more writes fail it.
				j := c.bank.LineEndurance(pa) + 1 - c.bank.Wear(pa)
				if j <= batch {
					batch = j
					truncated = true
				}
			}
			totalNs += c.bank.WriteN(pa, content, batch)
			c.demandWrites += batch
			ff.SkipWrites(la, batch)
			issued += batch
			if truncated {
				return issued, totalNs
			}
			if issued == n {
				return issued, totalNs
			}
		}
		// The epoch's firing write (and any remapping movements it
		// triggers) executes exactly through the ordinary path.
		failedBefore := c.bank.Failed()
		ns := c.Write(la, content)
		issued++
		totalNs += ns
		if ns != base && onEvent != nil && !onEvent(issued-1, ns) {
			return issued, totalNs
		}
		if stopOnFail && !failedBefore && c.bank.Failed() {
			return issued, totalNs
		}
	}
	return issued, totalNs
}

// writeRunNaive is the reference write-by-write loop WriteRun accelerates.
func (c *Controller) writeRunNaive(la uint64, content pcm.Content, n, base uint64, stopOnFail bool, onEvent func(i, ns uint64) bool) (issued, totalNs uint64) {
	for issued < n {
		failedBefore := c.bank.Failed()
		ns := c.Write(la, content)
		issued++
		totalNs += ns
		if ns != base && onEvent != nil && !onEvent(issued-1, ns) {
			return issued, totalNs
		}
		if stopOnFail && !failedBefore && c.bank.Failed() {
			return issued, totalNs
		}
	}
	return issued, totalNs
}

// ApplyBulk folds externally executed demand traffic into the
// controller's books: demandWrites demand writes, of which remapEvents
// triggered movements costing remapNs in total. It exists for the
// parallel sub-region kernels in internal/exactsim, which drive the bank
// through per-worker shards and replay the scheme's movements themselves;
// after merging the shards they call ApplyBulk so DemandWrites,
// RemapEvents, RemapNs and WriteOverhead read exactly as if the traffic
// had gone through Controller.Write.
func (c *Controller) ApplyBulk(demandWrites, remapEvents, remapNs uint64) {
	c.demandWrites += demandWrites
	c.remapEvents += remapEvents
	c.remapNs += remapNs
}

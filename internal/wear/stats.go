package wear

import "securityrbsg/internal/pcm"

// Stats is a point-in-time snapshot of everything a controller and its
// bank have done — the single struct experiment harnesses report.
type Stats struct {
	// Demand traffic seen at the logical interface.
	DemandWrites, DemandReads uint64
	// Remapping movements triggered and their total latency.
	RemapEvents, RemapNs uint64
	// Device-level operation counts (demand + remapping).
	DeviceWrites, DeviceReads uint64
	// WriteOverhead is remap device writes per demand write.
	WriteOverhead float64
	// ElapsedNs is accumulated device time.
	ElapsedNs uint64
	// MaxWear and MaxWearPA locate the most-worn line.
	MaxWear   uint64
	MaxWearPA uint64
	// FailedLines counts lines past endurance.
	FailedLines uint64
	// EnergyMicrojoules evaluates pcm.DefaultEnergy over the bank's
	// operation tally.
	EnergyMicrojoules float64
}

// Stats snapshots the controller.
func (c *Controller) Stats() Stats {
	pa, w := c.bank.MaxWear()
	return Stats{
		DemandWrites:      c.demandWrites,
		DemandReads:       c.demandReads,
		RemapEvents:       c.remapEvents,
		RemapNs:           c.remapNs,
		DeviceWrites:      c.bank.TotalWrites(),
		DeviceReads:       c.bank.TotalReads(),
		WriteOverhead:     c.WriteOverhead(),
		ElapsedNs:         c.bank.ElapsedNs(),
		MaxWear:           w,
		MaxWearPA:         pa,
		FailedLines:       c.bank.FailedLines(),
		EnergyMicrojoules: c.bank.EnergyMicrojoules(pcm.DefaultEnergy),
	}
}

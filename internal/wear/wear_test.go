package wear_test

import (
	"testing"

	"securityrbsg/internal/pcm"
	"securityrbsg/internal/startgap"
	"securityrbsg/internal/wear"
)

func cfg() pcm.Config {
	return pcm.Config{LineBytes: 256, Endurance: 1000, Timing: pcm.DefaultTiming}
}

func controller(t *testing.T) *wear.Controller {
	t.Helper()
	s, err := startgap.NewSingle(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	return wear.MustNewController(cfg(), s)
}

func TestControllerSizesBankFromScheme(t *testing.T) {
	c := controller(t)
	if c.Bank().Lines() != 17 {
		t.Fatalf("bank has %d lines, want scheme's 17", c.Bank().Lines())
	}
}

func TestWriteLatencyIncludesRemap(t *testing.T) {
	c := controller(t)
	// ψ=4: three cheap writes, the fourth triggers a movement of an ALL-0
	// line (read 125 + RESET 125).
	for i := 0; i < 3; i++ {
		if ns := c.Write(0, pcm.Zeros); ns != 125 {
			t.Fatalf("write %d latency %d, want 125", i, ns)
		}
	}
	if ns := c.Write(0, pcm.Zeros); ns != 125+250 {
		t.Fatalf("triggering write latency %d, want 375", ns)
	}
	if c.RemapEvents() != 1 || c.RemapNs() != 250 {
		t.Fatalf("remap accounting: %d events, %d ns", c.RemapEvents(), c.RemapNs())
	}
}

func TestTimingSideChannelDistinguishesContent(t *testing.T) {
	c := controller(t)
	// Make the line just before the gap ALL-1 so its movement is slow.
	victim := uint64(15) // slot 15 moves into the gap (slot 16) first
	c.Write(victim, pcm.Ones)
	var remapExtra uint64
	for i := 0; i < 4; i++ {
		ns := c.Write(victim, pcm.Ones)
		if extra := ns - 1000; extra > 0 {
			remapExtra = extra
		}
	}
	if remapExtra != 1125 {
		t.Fatalf("moving an ALL-1 line leaked %d ns, want 1125 — the RTA signal", remapExtra)
	}
}

func TestReadLatency(t *testing.T) {
	c := controller(t)
	c.Write(3, pcm.Ones)
	content, ns := c.Read(3)
	if content != pcm.Ones || ns != 125 {
		t.Fatalf("read %v/%d", content, ns)
	}
	c.TranslationNs = 10
	if _, ns := c.Read(3); ns != 135 {
		t.Fatalf("read with translation %d, want 135", ns)
	}
}

func TestWriteOverhead(t *testing.T) {
	c := controller(t)
	for i := 0; i < 400; i++ {
		c.Write(uint64(i)%16, pcm.Mixed)
	}
	// One movement (one device write) per 4 demand writes: 25%.
	if got := c.WriteOverhead(); got < 0.24 || got > 0.26 {
		t.Fatalf("write overhead %.3f, want ≈0.25", got)
	}
	if c.DemandWrites() != 400 {
		t.Fatalf("demand writes %d", c.DemandWrites())
	}
}

// TestPracticalOverheadBelowOnePercent checks the paper's 1% rule at the
// recommended interval.
func TestPracticalOverheadBelowOnePercent(t *testing.T) {
	s, err := startgap.NewSingle(256, 100)
	if err != nil {
		t.Fatal(err)
	}
	c := wear.MustNewController(cfg(), s)
	for i := 0; i < 100000; i++ {
		c.Write(uint64(i)%256, pcm.Mixed)
	}
	if got := c.WriteOverhead(); got > 0.011 {
		t.Fatalf("write overhead %.4f exceeds the paper's 1%% bound", got)
	}
}

func TestCheckBijection(t *testing.T) {
	c := controller(t)
	if err := c.CheckBijection(); err != nil {
		t.Fatal(err)
	}
	if err := wear.CheckBijection(badScheme{}); err == nil {
		t.Fatal("colliding scheme must fail the check")
	}
	if err := wear.CheckBijection(oobScheme{}); err == nil {
		t.Fatal("out-of-bounds scheme must fail the check")
	}
}

type badScheme struct{}

func (badScheme) Name() string                        { return "bad" }
func (badScheme) LogicalLines() uint64                { return 4 }
func (badScheme) PhysicalLines() uint64               { return 4 }
func (badScheme) Translate(la uint64) uint64          { return 0 }
func (badScheme) NoteWrite(uint64, wear.Mover) uint64 { return 0 }

type oobScheme struct{}

func (oobScheme) Name() string                        { return "oob" }
func (oobScheme) LogicalLines() uint64                { return 4 }
func (oobScheme) PhysicalLines() uint64               { return 4 }
func (oobScheme) Translate(la uint64) uint64          { return la + 10 }
func (oobScheme) NoteWrite(uint64, wear.Mover) uint64 { return 0 }

func TestPassthrough(t *testing.T) {
	p := wear.NewPassthrough(32)
	if p.Name() != "none" || p.LogicalLines() != 32 || p.PhysicalLines() != 32 {
		t.Fatal("metadata")
	}
	if p.Translate(7) != 7 || p.NoteWrite(7, nil) != 0 {
		t.Fatal("passthrough must be inert")
	}
	if err := wear.CheckBijection(p); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	c := controller(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Write(16, pcm.Zeros)
}

func TestTranslationTimeAdvancesDeviceClock(t *testing.T) {
	c := controller(t)
	c.TranslationNs = 10
	before := c.Bank().ElapsedNs()
	ns := c.Write(0, pcm.Zeros)
	if ns != 135 {
		t.Fatalf("latency %d, want 135", ns)
	}
	if c.Bank().ElapsedNs() != before+135 {
		t.Fatalf("device clock advanced %d, want 135", c.Bank().ElapsedNs()-before)
	}
}

func TestStatsSnapshot(t *testing.T) {
	c := controller(t)
	for i := 0; i < 40; i++ {
		c.Write(uint64(i)%16, pcm.Mixed)
	}
	c.Read(3)
	st := c.Stats()
	if st.DemandWrites != 40 || st.DemandReads != 1 {
		t.Fatalf("demand counts %+v", st)
	}
	if st.RemapEvents != 10 { // ψ=4
		t.Fatalf("remap events %d", st.RemapEvents)
	}
	if st.DeviceWrites != 50 { // 40 demand + 10 movement writes
		t.Fatalf("device writes %d", st.DeviceWrites)
	}
	if st.WriteOverhead < 0.24 || st.WriteOverhead > 0.26 {
		t.Fatalf("overhead %v", st.WriteOverhead)
	}
	if st.MaxWear == 0 || st.ElapsedNs == 0 || st.EnergyMicrojoules <= 0 {
		t.Fatalf("zeroed fields: %+v", st)
	}
	if st.FailedLines != 0 {
		t.Fatalf("no failure expected: %+v", st)
	}
}

// Package wear defines the contract between wear-leveling schemes and the
// memory they manage, and provides the Controller that glues a scheme to a
// PCM bank.
//
// The Controller is also where the paper's threat model lives: an attacker
// interacts with memory only through Read and Write on logical addresses
// and observes per-request latency. Remapping movements triggered by a
// write are performed synchronously, so their latency is visible on that
// request — this is the timing side channel the Remapping Timing Attack
// exploits ("remapping halts other requests until it is completed").
package wear

import (
	"fmt"

	"securityrbsg/internal/pcm"
)

// Mover is the data-movement interface a scheme uses during remapping.
// *pcm.Bank satisfies it; tests substitute recording movers.
type Mover interface {
	// Move copies the content of physical line src to dst and returns the
	// latency in nanoseconds (one read plus one write).
	Move(src, dst uint64) uint64
	// Swap exchanges the contents of physical lines x and y and returns
	// the latency in nanoseconds (two reads plus two writes).
	Swap(x, y uint64) uint64
}

// Scheme is a wear-leveling address translation layer. Implementations are
// deterministic given their construction-time RNG and are not safe for
// concurrent use — experiments shard by running one scheme+bank per
// goroutine.
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// LogicalLines returns the size of the logical address space.
	LogicalLines() uint64
	// PhysicalLines returns the number of physical lines required,
	// including any spare (gap) lines.
	PhysicalLines() uint64
	// Translate maps a logical address to the physical line that currently
	// holds its data. It must be a injection from [0, LogicalLines()) into
	// [0, PhysicalLines()) at every instant.
	Translate(la uint64) uint64
	// NoteWrite informs the scheme that a demand write to la completed.
	// If the scheme's remapping interval has elapsed it performs its
	// remapping movement(s) through m and returns the movement latency in
	// nanoseconds (0 when no remapping was triggered).
	NoteWrite(la uint64, m Mover) uint64
}

// Controller owns a bank and a scheme and exposes the logical read/write
// interface with per-request latency — everything an attacker can see.
type Controller struct {
	bank   *pcm.Bank
	scheme Scheme

	// TranslationNs is the address-translation latency added to every
	// request (the paper assumes 10 ns for Security RBSG's DFN plus SRAM
	// lookup). Zero by default so lifetime experiments match the paper's
	// pure write-time accounting.
	TranslationNs uint64

	demandWrites uint64
	demandReads  uint64
	remapNs      uint64
	remapEvents  uint64
}

// NewController wires scheme to a fresh bank derived from cfg: the bank is
// created with scheme.PhysicalLines() lines and cfg's line size, endurance
// and timing.
func NewController(cfg pcm.Config, scheme Scheme) (*Controller, error) {
	cfg.Lines = scheme.PhysicalLines()
	bank, err := pcm.NewBank(cfg)
	if err != nil {
		return nil, err
	}
	return &Controller{bank: bank, scheme: scheme}, nil
}

// MustNewController is NewController that panics on error.
func MustNewController(cfg pcm.Config, scheme Scheme) *Controller {
	c, err := NewController(cfg, scheme)
	if err != nil {
		panic(err)
	}
	return c
}

// Bank returns the underlying PCM bank.
func (c *Controller) Bank() *pcm.Bank { return c.bank }

// Scheme returns the wear-leveling scheme.
func (c *Controller) Scheme() Scheme { return c.scheme }

// Write performs a demand write of content to logical address la and
// returns the observed latency in nanoseconds: translation + device write
// + any remapping movement triggered by this write.
func (c *Controller) Write(la uint64, content pcm.Content) uint64 {
	if la >= c.scheme.LogicalLines() {
		panic(fmt.Errorf("wear: logical address %d out of range %d", la, c.scheme.LogicalLines()))
	}
	c.demandWrites++
	pa := c.scheme.Translate(la)
	ns := c.TranslationNs + c.bank.Write(pa, content)
	if c.TranslationNs > 0 {
		c.bank.AdvanceNs(c.TranslationNs)
	}
	if rns := c.scheme.NoteWrite(la, c.bank); rns > 0 {
		c.remapNs += rns
		c.remapEvents++
		ns += rns
	}
	return ns
}

// Read returns the content of logical address la and the observed latency.
func (c *Controller) Read(la uint64) (pcm.Content, uint64) {
	if la >= c.scheme.LogicalLines() {
		panic(fmt.Errorf("wear: logical address %d out of range %d", la, c.scheme.LogicalLines()))
	}
	c.demandReads++
	content, ns := c.bank.Read(c.scheme.Translate(la))
	if c.TranslationNs > 0 {
		c.bank.AdvanceNs(c.TranslationNs)
	}
	return content, ns + c.TranslationNs
}

// DemandWrites returns the number of demand (non-remap) writes issued.
func (c *Controller) DemandWrites() uint64 { return c.demandWrites }

// RemapEvents returns how many writes triggered remapping movements.
func (c *Controller) RemapEvents() uint64 { return c.remapEvents }

// RemapNs returns the total latency spent in remapping movements.
func (c *Controller) RemapNs() uint64 { return c.remapNs }

// WriteOverhead returns remap device writes as a fraction of demand writes
// — the quantity the paper bounds at 1% for practical schemes.
func (c *Controller) WriteOverhead() float64 {
	if c.demandWrites == 0 {
		return 0
	}
	total := c.bank.TotalWrites()
	if total <= c.demandWrites {
		return 0
	}
	return float64(total-c.demandWrites) / float64(c.demandWrites)
}

// CheckBijection verifies that Translate currently maps the logical space
// injectively into the physical space, returning an error describing the
// first collision found. Experiments call it in tests; it is O(physical).
func (c *Controller) CheckBijection() error {
	return CheckBijection(c.scheme)
}

// CheckBijection verifies that s.Translate is an injection from the
// logical space into the physical space.
func CheckBijection(s Scheme) error {
	seen := make(map[uint64]uint64, s.LogicalLines())
	for la := uint64(0); la < s.LogicalLines(); la++ {
		pa := s.Translate(la)
		if pa >= s.PhysicalLines() {
			return fmt.Errorf("%s: LA %d translates to PA %d beyond physical space %d",
				s.Name(), la, pa, s.PhysicalLines())
		}
		if prev, dup := seen[pa]; dup {
			return fmt.Errorf("%s: LA %d and LA %d both translate to PA %d",
				s.Name(), prev, la, pa)
		}
		seen[pa] = la
	}
	return nil
}

// Package lifetime computes device lifetimes under each (scheme, attack)
// pair at paper scale (a 1 GB bank is ~10^13–10^14 writes to failure —
// far beyond write-by-write simulation, for this paper's authors as much
// as for us).
//
// Two kinds of machinery are used, both cross-validated against exact
// write-by-write simulation at small scale (see the package tests):
//
//   - Closed-form write counting for the deterministic attacks (RAA and
//     RTA against RBSG), following the step costs of Section III-B.
//   - Visit processes for the randomized schemes: a hammered logical line
//     is pinned to one physical line for one remapping round, which
//     therefore absorbs a fixed quantum of writes ("a visit"); lifetime is
//     the number of visits until some line accumulates E writes. Where
//     visits are uniform this is solved with the Poisson extreme-value
//     machinery in internal/stats; where the distribution is shaped by
//     the Dynamic Feistel Network (the whole point of Fig 14) the visits
//     are simulated with the real DFN drawing real keys.
package lifetime

import (
	"math"

	"securityrbsg/internal/pcm"
	"securityrbsg/internal/stats"
)

// Device describes the PCM bank being modeled.
type Device struct {
	// Lines is the logical line count N.
	Lines uint64
	// Endurance is the per-line write endurance E.
	Endurance uint64
	// Timing is the device timing.
	Timing pcm.Timing
}

// PaperDevice is the evaluation configuration: 1 GB bank, 256 B lines
// (2^22 lines), 10^8 endurance.
func PaperDevice() Device {
	return Device{Lines: 1 << 22, Endurance: 1e8, Timing: pcm.DefaultTiming}
}

// ScaledDevice returns a laptop-scale device preserving the paper's
// governing ratios: lifetimes reported as fractions of ideal transfer to
// paper scale. lines must be a power of two; endurance is chosen by the
// caller to keep visit counts comparable.
func ScaledDevice(lines, endurance uint64) Device {
	return Device{Lines: lines, Endurance: endurance, Timing: pcm.DefaultTiming}
}

// AddressBits returns log2(Lines).
func (d Device) AddressBits() uint {
	b := uint(0)
	for v := d.Lines; v > 1; v >>= 1 {
		b++
	}
	return b
}

// IdealWrites is the uniform-wear write budget E·N.
func (d Device) IdealWrites() float64 {
	return float64(d.Endurance) * float64(d.Lines)
}

// IdealSeconds is the ideal lifetime with generic (SET-latency) writes —
// the horizontal "Ideal lifetime" line in Figs 13–15.
func (d Device) IdealSeconds() float64 {
	return d.IdealWrites() * float64(d.Timing.SetNs) * 1e-9
}

// Seconds converts a write count at a per-write latency (ns) to seconds.
func Seconds(writes, nsPerWrite float64) float64 { return writes * nsPerWrite * 1e-9 }

// Estimate is one lifetime figure with its provenance.
type Estimate struct {
	// Scheme and Attack label the pair.
	Scheme, Attack string
	// Writes is the attacker write count to first line failure.
	Writes float64
	// Seconds is the wall-clock device lifetime.
	Seconds float64
	// FractionOfIdeal is Seconds relative to the ideal lifetime (computed
	// against write counts, so it transfers across device scales).
	FractionOfIdeal float64
}

// mixNs returns the average latency of a half-ALL-0 / half-ALL-1 pattern
// write stream.
func mixNs(t pcm.Timing) float64 {
	return float64(t.ResetNs+t.SetNs) / 2
}

// Baseline returns the lifetime with no wear leveling under RAA: the
// hammered line dies after exactly E writes — the paper's "one minute"
// headline (100 s at 10^8 endurance and 1000 ns writes).
func Baseline(d Device) Estimate {
	w := float64(d.Endurance)
	s := Seconds(w, float64(d.Timing.SetNs))
	return Estimate{
		Scheme: "none", Attack: "raa",
		Writes: w, Seconds: s,
		FractionOfIdeal: w / d.IdealWrites(),
	}
}

// uniformVisitLifetime evaluates the uniform visit process: quantum writes
// land on one of bins lines per visit, visits i.i.d. uniform; failure at
// m = ceil(E/quantum) visits on one line. Returns total attacker writes.
func uniformVisitLifetime(d Device, bins, quantum uint64) float64 {
	m := int(math.Ceil(float64(d.Endurance) / float64(quantum)))
	v := stats.VisitsToMaxLoad(int(bins), m)
	return v * float64(quantum)
}

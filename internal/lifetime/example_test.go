package lifetime_test

import (
	"fmt"

	"securityrbsg/internal/lifetime"
)

// Example evaluates the paper's headline numbers: the device dies in
// minutes under the Remapping Timing Attack but months under blind
// hammering.
func Example() {
	d := lifetime.PaperDevice()
	p := lifetime.RBSGParams{Regions: 32, Interval: 100}
	rta := lifetime.RTAOnRBSG(d, p)
	raa := lifetime.RAAOnRBSG(d, p)
	fmt.Printf("RTA: %.0f s\n", rta.Seconds)
	fmt.Printf("RAA/RTA: %.0fx\n", raa.Seconds/rta.Seconds)
	// Output:
	// RTA: 489 s
	// RAA/RTA: 26864x
}

// ExampleDevice_IdealSeconds shows the uniform-wear bound every figure
// plots against.
func ExampleDevice_IdealSeconds() {
	d := lifetime.PaperDevice()
	fmt.Printf("%.0f days\n", d.IdealSeconds()/86400)
	// Output:
	// 4855 days
}

// ExampleRTAOnTwoLevelSR reproduces the Fig 12 headline cell.
func ExampleRTAOnTwoLevelSR() {
	e := lifetime.RTAOnTwoLevelSR(lifetime.PaperDevice(), lifetime.SuggestedSRParams(), 0.75)
	fmt.Printf("%.0f hours\n", e.Seconds/3600)
	// Output:
	// 179 hours
}

package lifetime_test

import (
	"testing"

	"securityrbsg/internal/attack"
	"securityrbsg/internal/lifetime"
	"securityrbsg/internal/pcm"
	"securityrbsg/internal/rbsg"
	"securityrbsg/internal/wear"
)

// TestRTAOnRBSGModelVsRealAttack cross-validates the Fig 11 cost model
// against the actual timing attack running on the simulator at small
// scale. The model follows the paper's per-bit accounting, which is
// slightly more conservative than our attack implementation (it reads
// every sequence bit in one rotation pass), so the two agree within a
// small factor rather than exactly — and both sit orders of magnitude
// below RAA.
func TestRTAOnRBSGModelVsRealAttack(t *testing.T) {
	const (
		lines     = 256
		regions   = 8
		interval  = 4
		endurance = 500
	)
	d := lifetime.Device{Lines: lines, Endurance: endurance, Timing: pcm.DefaultTiming}
	model := lifetime.RTAOnRBSG(d, lifetime.RBSGParams{Regions: regions, Interval: interval})

	s := rbsg.MustNew(rbsg.Config{Lines: lines, Regions: regions, Interval: interval, Seed: 5})
	c := wear.MustNewController(pcm.Config{
		LineBytes: 256, Endurance: endurance, Timing: pcm.DefaultTiming,
	}, s)
	a := &attack.RTARBSG{
		Target: c, Lines: lines, Regions: regions, Interval: interval,
		Li: 17, SeqLen: 8,
		Oracle: func() bool { return c.Bank().Failed() },
	}
	res, err := a.Run()
	if err != nil || !res.Failed {
		t.Fatalf("attack failed: %v", err)
	}

	ratio := model.Writes / float64(res.Writes)
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("model %v writes vs real attack %v (ratio %.2f)", model.Writes, res.Writes, ratio)
	}

	raa := lifetime.RAAOnRBSG(d, lifetime.RBSGParams{Regions: regions, Interval: interval})
	if model.Writes >= raa.Writes || float64(res.Writes) >= raa.Writes {
		t.Fatal("RTA must be far cheaper than RAA in both model and reality")
	}
	t.Logf("model %.0f writes, real attack %d writes (ratio %.2f); RAA model %.0f",
		model.Writes, res.Writes, ratio, raa.Writes)
}

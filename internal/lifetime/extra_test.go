package lifetime_test

import (
	"math"
	"testing"

	"securityrbsg/internal/attack"
	"securityrbsg/internal/lifetime"
	"securityrbsg/internal/pcm"
	"securityrbsg/internal/rbsg"
	"securityrbsg/internal/secref"
	"securityrbsg/internal/wear"
)

// TestBPAOnRBSGMatchesExactSim cross-validates the BPA model against the
// real attack at small scale.
func TestBPAOnRBSGMatchesExactSim(t *testing.T) {
	d := lifetime.Device{Lines: 256, Endurance: 3000, Timing: pcm.DefaultTiming}
	p := lifetime.RBSGParams{Regions: 8, Interval: 2}
	model := lifetime.BPAOnRBSG(d, p)

	var sim float64
	const runs = 4
	for seed := uint64(0); seed < runs; seed++ {
		s := rbsg.MustNew(rbsg.Config{Lines: 256, Regions: 8, Interval: 2, Seed: seed})
		c := wear.MustNewController(pcm.Config{
			LineBytes: 256, Endurance: 3000, Timing: pcm.DefaultTiming,
		}, s)
		res := attack.BPA(c, s.LineVulnerabilityFactor(), pcm.Mixed, seed+10, 0)
		if !res.Failed {
			t.Fatal("BPA did not fail")
		}
		sim += float64(res.Writes)
	}
	sim /= runs
	if ratio := model.Writes / sim; ratio < 0.5 || ratio > 2 {
		t.Fatalf("model %v writes vs sim %v (ratio %.2f)", model.Writes, sim, ratio)
	}
}

// TestBPASitsBetweenRTAAndIdeal: at paper scale BPA is far slower than
// RTA but far faster than uniform wear-out — the ordering that motivated
// the paper's security hierarchy.
func TestBPAOrdering(t *testing.T) {
	d := lifetime.PaperDevice()
	p := lifetime.RBSGParams{Regions: 32, Interval: 100}
	bpa := lifetime.BPAOnRBSG(d, p)
	rta := lifetime.RTAOnRBSG(d, p)
	if !(rta.Seconds < bpa.Seconds && bpa.Seconds < d.IdealSeconds()) {
		t.Fatalf("ordering broken: rta=%v bpa=%v ideal=%v",
			rta.Seconds, bpa.Seconds, d.IdealSeconds())
	}
}

// TestFocusedOnMultiWayMatchesExactSim: flooding one consecutive
// sub-region of Multi-Way SR matches the visit-process model.
func TestFocusedOnMultiWayMatchesExactSim(t *testing.T) {
	d := lifetime.Device{Lines: 1 << 10, Endurance: 3000, Timing: pcm.DefaultTiming}
	model := lifetime.FocusedOnMultiWay(d, 8, 4)

	var sim float64
	const runs = 3
	for seed := uint64(0); seed < runs; seed++ {
		s, err := secref.NewMultiWay(1<<10, 8, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		c := wear.MustNewController(pcm.Config{
			LineBytes: 256, Endurance: 3000, Timing: pcm.DefaultTiming,
		}, s)
		// Flood sub-region 2: hammer each of its lines for one inner
		// round in turn.
		n := uint64(1<<10) / 8
		stint := n * 4
		var writes uint64
		for !c.Bank().Failed() {
			la := 2*n + (writes/stint)%n
			c.Write(la, pcm.Mixed)
			writes++
		}
		pa, _, _ := c.Bank().FirstFailure()
		if pa/n != 2 {
			t.Fatalf("failure at PA %d, outside the flooded sub-region", pa)
		}
		sim += float64(writes)
	}
	sim /= runs
	if ratio := model.Writes / sim; ratio < 0.5 || ratio > 2 {
		t.Fatalf("model %v writes vs sim %v (ratio %.2f)", model.Writes, sim, ratio)
	}
	// The focused attack caps the device at roughly 1/regions of ideal.
	if model.FractionOfIdeal > 0.25 {
		t.Fatalf("focused attack should trap wear in one sub-region: %v", model.FractionOfIdeal)
	}
}

// TestVariationZ sanity: grows with N and sits near the textbook values.
func TestVariationZ(t *testing.T) {
	if lifetime.VariationZ(1) != 0 {
		t.Fatal("degenerate case")
	}
	z1k := lifetime.VariationZ(1024)
	z4m := lifetime.VariationZ(1 << 22)
	if !(z1k > 2.5 && z1k < 3.5) {
		t.Fatalf("z(1024) = %v, want ≈3.2", z1k)
	}
	if z4m <= z1k || z4m > 6 {
		t.Fatalf("z(4M) = %v", z4m)
	}
}

// TestIdealWithVariationMatchesVariedBank: the closed form tracks a real
// varied bank driven with perfectly uniform traffic.
func TestIdealWithVariationMatchesVariedBank(t *testing.T) {
	const lines, endurance, sigma = 1024, 500, 0.2
	d := lifetime.Device{Lines: lines, Endurance: endurance, Timing: pcm.DefaultTiming}
	model := lifetime.IdealWithVariation(d, sigma)

	var sim float64
	const runs = 3
	for seed := uint64(0); seed < runs; seed++ {
		b, err := pcm.NewVariedBank(pcm.Config{Lines: lines, Endurance: endurance}, sigma, seed+1)
		if err != nil {
			t.Fatal(err)
		}
		var n uint64
		for !b.Failed() {
			b.Write(n%lines, pcm.Mixed)
			n++
		}
		sim += float64(n)
	}
	sim /= runs
	if ratio := model.Writes / sim; math.Abs(ratio-1) > 0.25 {
		t.Fatalf("model %v writes vs sim %v (ratio %.2f)", model.Writes, sim, ratio)
	}
	if model.FractionOfIdeal >= 1 {
		t.Fatal("variation must cost lifetime")
	}
}

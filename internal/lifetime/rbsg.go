package lifetime

import "math"

// This file holds the closed-form Fig 11 models: RBSG under the Repeated
// Address Attack and under the Remapping Timing Attack, following the
// write accounting of Sections III-B and V-A.

// RBSGParams are the RBSG configuration knobs the paper sweeps.
type RBSGParams struct {
	Regions  uint64 // R: 32–128, 32 recommended
	Interval uint64 // ψ: 16–100, 100 recommended
}

// RAAOnRBSG models hammering one logical address against RBSG.
//
// All attacker writes land in one region. Start-Gap shifts the hammered
// line by one slot per region round ((n+1)·ψ writes), and the line returns
// to a given slot every n+1 rounds, so a fraction 1/(n+1) of demand writes
// — plus one remap write per round — accumulates on each slot:
//
//	wear(T) = T/(n+1) + T/((n+1)·ψ)  ⇒  T_fail = E·(n+1)·ψ/(ψ+1).
//
// Demand writes are generic data (SET latency); each gap movement adds a
// read + SET copy.
func RAAOnRBSG(d Device, p RBSGParams) Estimate {
	n := float64(d.Lines) / float64(p.Regions)
	psi := float64(p.Interval)
	writes := float64(d.Endurance) * (n + 1) * psi / (psi + 1)
	perWrite := float64(d.Timing.SetNs) +
		float64(d.Timing.ReadNs+d.Timing.SetNs)/psi // amortized movement
	return Estimate{
		Scheme: "rbsg", Attack: "raa",
		Writes:          writes,
		Seconds:         Seconds(writes, perWrite),
		FractionOfIdeal: writes / d.IdealWrites(),
	}
}

// RTAOnRBSG models the Remapping Timing Attack of Section III-B.
//
// Phase costs (B = log2 N address bits, n = N/R lines per region):
//
//	align:  one ALL-0 sweep (N RESET writes) plus hammering Li with ALL-1
//	        for half a region round on average;
//	detect: per address bit — one pattern sweep (N writes, half SET half
//	        RESET) + (ψ−1)·n hammer writes re-aligning Li + ψ writes per
//	        sequence address (the paper's (N+(ψ−1)·N/R)·log2 N count);
//	wear:   the recovered sequence keeps every write on one physical slot
//	        until it fails: E generic writes.
//
// The sequence length the attack must recover is n_seq = ⌈E/((n+1)·ψ)⌉.
//
// Latency accounting follows the paper, which costs every attack write at
// the SET latency (1000 ns) — reproducing the 478 s / 27435× headline at
// the recommended configuration. A real attacker writing ALL-0-heavy
// patterns would shave roughly 40% off the detection phases (the crafted
// pattern averages (SET+RESET)/2), making RTA strictly *worse* for the
// defender than the figures below.
func RTAOnRBSG(d Device, p RBSGParams) Estimate {
	nLines := float64(d.Lines)
	n := nLines / float64(p.Regions)
	psi := float64(p.Interval)
	b := float64(d.AddressBits())
	nSeq := math.Ceil(float64(d.Endurance) / ((n + 1) * psi))

	t := d.Timing
	w := float64(t.SetNs) // paper accounting: all writes at SET latency

	alignWrites := nLines + (n+1)*psi/2
	detectWrites := (nLines + (psi-1)*n + nSeq*psi) * b
	wearWrites := float64(d.Endurance)

	writes := alignWrites + detectWrites + wearWrites
	secs := writes * w * 1e-9
	return Estimate{
		Scheme: "rbsg", Attack: "rta",
		Writes:          writes,
		Seconds:         secs,
		FractionOfIdeal: writes / d.IdealWrites(),
	}
}

// RAAOnStartGap models RAA against a single whole-bank Start-Gap region
// (no regioning): the same formula with R = 1 — the configuration whose
// Line Vulnerability Factor the MICRO'09 paper shows is uselessly large.
func RAAOnStartGap(d Device, interval uint64) Estimate {
	e := RAAOnRBSG(d, RBSGParams{Regions: 1, Interval: interval})
	e.Scheme = "start-gap"
	return e
}

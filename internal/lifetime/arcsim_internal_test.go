package lifetime

import (
	"testing"

	"securityrbsg/internal/pcm"
)

func TestArcSimValidation(t *testing.T) {
	d := Device{Lines: 100, Endurance: 10, Timing: pcm.DefaultTiming}
	if _, err := newArcSim(d, SRBSGParams{Regions: 4, InnerInterval: 1, OuterInterval: 1, Stages: 3}, 1); err == nil {
		t.Error("non-power-of-two lines must fail")
	}
	d = Device{Lines: 128, Endurance: 1 << 40, Timing: pcm.DefaultTiming}
	if _, err := newArcSim(d, SRBSGParams{Regions: 4, InnerInterval: 1, OuterInterval: 1, Stages: 3}, 1); err == nil {
		t.Error("visit-threshold overflow must fail")
	}
}

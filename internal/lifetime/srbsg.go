package lifetime

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"securityrbsg/internal/analytic"
	"securityrbsg/internal/feistel"
	"securityrbsg/internal/stats"
)

// This file holds the Security RBSG models behind Fig 14 (lifetime vs DFN
// stage count), Fig 15 (RAA over the configuration grid) and Fig 16 (wear
// distribution).

// SRBSGParams are the Security RBSG configuration knobs.
type SRBSGParams struct {
	Regions       uint64 // inner Start-Gap sub-regions
	InnerInterval uint64 // inner ψ
	OuterInterval uint64 // outer (DFN) ψ
	Stages        int    // DFN stage count — the security level
}

// SuggestedSRBSGParams mirrors the paper's recommended configuration.
func SuggestedSRBSGParams() SRBSGParams {
	return SRBSGParams{Regions: 512, InnerInterval: 64, OuterInterval: 128, Stages: 7}
}

// ScaledSRBSGExperiment returns a laptop-scale (device, params) pair that
// preserves the two ratios governing the RAA visit process at paper scale:
// visits-to-failure per line (m ≈ 191) and arc length relative to the
// sub-region (arcs must not wrap — at 1 GB an outer round's arc covers at
// most a few percent of a sub-region). Fractions-of-ideal measured at this
// scale transfer to the paper's device.
func ScaledSRBSGExperiment(stages int) (Device, SRBSGParams) {
	p := SRBSGParams{Regions: 64, InnerInterval: 64, OuterInterval: 128, Stages: stages}
	lines := uint64(1) << 18
	quantum := (lines/p.Regions + 1) * p.InnerInterval
	return ScaledDevice(lines, 191*quantum), p
}

// srbsgOverheadNs is the amortized remapping latency per demand write: one
// inner gap move per ψi writes to the hammered sub-region, one outer DFN
// move per ψo bank writes, both read+copy on generic data.
func srbsgOverheadNs(d Device, p SRBSGParams) float64 {
	move := float64(d.Timing.ReadNs + d.Timing.SetNs)
	return move/float64(p.InnerInterval) + move/float64(p.OuterInterval)
}

// arcSim is the visit-process simulator for RAA against Security RBSG.
//
// The hammered logical address is pinned, by the inner Start-Gap, to one
// physical slot for one region rotation ((n+1)·ψ_inner writes — one
// visit), and then walks to the next slot: within an outer round the
// visits form a contiguous arc. Where that arc starts is decided by the
// Dynamic Feistel Network: each outer round draws fresh keys and the
// hammered address's intermediate address jumps to ENC_keys(la) — this is
// the only place the stage count enters, and it enters through the *real*
// Feistel construction, so the low-stage bias that Fig 14 shows (3 stages
// ≈ 20% of ideal) emerges from the cipher itself rather than from a
// fitted parameter.
type arcSim struct {
	d    Device
	p    SRBSGParams
	bits uint
	n    uint64 // lines per sub-region
	slot uint64 // physical slots per sub-region (n+1)

	counts  []uint16 // visits per physical slot
	drift   []uint64 // inner rotation offset per sub-region
	rng     *stats.RNG
	m       uint16 // visits to failure
	quantum uint64 // writes per visit

	// The reusable DFN: net holds the stage keys and is rekeyed in
	// place for every round (exactly the RNG draws a fresh construction
	// would make, so the visit sequence is bit-identical to allocating
	// anew), perm is net — cycle-walked for odd widths. Built lazily on
	// the first draw so construction itself consumes no RNG words.
	net  *feistel.Network
	perm feistel.Permutation

	failed   bool
	failSlot uint64
}

func newArcSim(d Device, p SRBSGParams, seed uint64) (*arcSim, error) {
	if d.Lines == 0 || d.Lines&(d.Lines-1) != 0 {
		return nil, fmt.Errorf("lifetime: lines must be a power of two, got %d", d.Lines)
	}
	if p.Regions == 0 || d.Lines%p.Regions != 0 {
		return nil, fmt.Errorf("lifetime: regions %d must divide lines %d", p.Regions, d.Lines)
	}
	s := &arcSim{
		d: d, p: p,
		n:       d.Lines / p.Regions,
		rng:     stats.NewRNG(seed),
		quantum: (d.Lines/p.Regions + 1) * p.InnerInterval,
	}
	s.slot = s.n + 1
	m := math.Ceil(float64(d.Endurance) / float64(s.quantum))
	if m < 1 {
		m = 1
	}
	if m > 65535 {
		return nil, fmt.Errorf("lifetime: visit threshold %g overflows the counter; scale endurance down", m)
	}
	s.m = uint16(m)
	s.counts = make([]uint16, p.Regions*s.slot)
	s.drift = make([]uint64, p.Regions)
	for v := d.Lines; v > 1; v >>= 1 {
		s.bits++
	}
	return s, nil
}

// reset rewinds the simulator to a fresh run of the same geometry on a
// new seed, reusing every flat array. A reset sim is indistinguishable
// from a newly constructed one: the key network keeps its allocation
// but its first redraw consumes the same RNG words a fresh construction
// would.
func (s *arcSim) reset(seed uint64) {
	clear(s.counts)
	clear(s.drift)
	s.rng.Seed(seed)
	s.failed = false
	s.failSlot = 0
}

// nextPerm draws the next round's DFN permutation (cycle-walked for odd
// widths): the first call builds the network, every later call rekeys
// it in place — zero allocations per round.
func (s *arcSim) nextPerm() feistel.Permutation {
	if s.net == nil {
		width := s.bits
		if width%2 != 0 {
			width++
		}
		s.net = feistel.MustRandom(width, s.p.Stages, s.rng)
		s.perm = s.net
		if s.bits%2 != 0 {
			// Cannot fail: Lines ≤ 2^(bits+1) by the width derivation.
			s.perm = feistel.MustNewWalker(s.net, s.d.Lines)
		}
		return s.perm
	}
	s.net.RekeyRandom(s.rng)
	return s.perm
}

// deposit places `visits` consecutive slot-visits for intermediate
// address ia, starting from the sub-region's current rotation position.
// Short arcs (the overwhelmingly common case: an arc touches each slot
// at most once) split into at most two contiguous segments around the
// wrap point, so the inner loop is a branch-light sequential counter
// sweep — this loop is where Monte-Carlo lifetime estimation spends
// ~90% of its time at paper scale.
func (s *arcSim) deposit(ia uint64, visits uint64) {
	region := ia / s.n
	base := region * s.slot
	pos := (ia%s.n + s.drift[region]) % s.slot
	if visits < s.slot {
		first := visits
		if first > s.slot-pos {
			first = s.slot - pos
		}
		s.bump(base+pos, first)
		if rest := visits - first; rest > 0 {
			s.bump(base, rest)
		}
	} else {
		// Arcs longer than the region lap it: keep the exact per-visit
		// walk so multi-lap threshold crossings stay in deposit order.
		for k := uint64(0); k < visits; k++ {
			idx := base + pos
			c := s.counts[idx] + 1
			s.counts[idx] = c
			if c >= s.m && !s.failed {
				s.failed = true
				s.failSlot = idx
			}
			pos++
			if pos == s.slot {
				pos = 0
			}
		}
	}
	s.drift[region] += visits
}

// bump increments counts[start:start+n], recording the first counter
// (in deposit order) to cross the failure threshold.
func (s *arcSim) bump(start, n uint64) {
	seg := s.counts[start : start+n]
	m := s.m
	for i := range seg {
		c := seg[i] + 1
		seg[i] = c
		if c >= m && !s.failed {
			s.failed = true
			s.failSlot = start + uint64(i)
		}
	}
}

// run hammers one logical address until a slot fails or maxWrites demand
// writes have been spent; it returns the demand writes issued. Fractional
// visits are carried across deposits so small rounds still make progress.
func (s *arcSim) run(la uint64, maxWrites float64) float64 {
	roundWrites := float64(s.d.Lines) * float64(s.p.OuterInterval)
	visitsPerRound := roundWrites / float64(s.quantum)
	cur := s.nextPerm().Encrypt(la)
	var writes, carry float64
	emit := func(ia uint64, v float64) {
		carry += v
		whole := math.Floor(carry)
		carry -= whole
		s.deposit(ia, uint64(whole))
	}
	for !s.failed && (maxWrites <= 0 || writes < maxWrites) {
		next := s.nextPerm().Encrypt(la)
		// The DFN relocates la at a uniformly random point in the round
		// (its position in the remapping cycle walk).
		u := s.rng.Float64()
		emit(cur, u*visitsPerRound)
		emit(next, (1-u)*visitsPerRound)
		cur = next
		writes += roundWrites
	}
	return writes
}

// RAASim is a reusable Monte-Carlo simulator for RAA against Security
// RBSG: one instance holds the flat visit-count and rotation arrays
// (megabytes at paper scale) and the key network, and successive Run
// calls reuse them all — a repetition allocates nothing. Run(seed) is
// bit-identical to RAAOnSecurityRBSG(d, p, seed). Not safe for
// concurrent use; callers shard by running one RAASim per goroutine.
type RAASim struct {
	d   Device
	p   SRBSGParams
	sim *arcSim
}

// NewRAASim validates the geometry and preallocates the simulation
// state.
func NewRAASim(d Device, p SRBSGParams) (*RAASim, error) {
	sim, err := newArcSim(d, p, 0)
	if err != nil {
		return nil, err
	}
	return &RAASim{d: d, p: p, sim: sim}, nil
}

// Run simulates one hammering trial under the given seed and returns
// its lifetime estimate.
func (r *RAASim) Run(seed uint64) Estimate {
	r.sim.reset(seed)
	writes := r.sim.run(seed%r.d.Lines, 0)
	perWrite := float64(r.d.Timing.SetNs) + srbsgOverheadNs(r.d, r.p)
	return Estimate{
		Scheme: "security-rbsg", Attack: "raa",
		Writes:          writes,
		Seconds:         Seconds(writes, perWrite),
		FractionOfIdeal: writes / r.d.IdealWrites(),
	}
}

// RAAOnSecurityRBSG simulates hammering one logical address against
// Security RBSG (Figs 14 and 15) with real DFN key draws.
func RAAOnSecurityRBSG(d Device, p SRBSGParams, seed uint64) (Estimate, error) {
	s, err := NewRAASim(d, p)
	if err != nil {
		return Estimate{}, err
	}
	return s.Run(seed), nil
}

// RAAOnSecurityRBSGAvg averages RAAOnSecurityRBSG over `runs` seeds —
// matching the paper's five-trial averaging. The trials are independent
// Monte-Carlo simulations, so they spread over parallel workers (at
// most GOMAXPROCS), each worker reusing one RAASim's preallocated
// arrays across its share of the trials; results are accumulated in
// trial order, keeping the average bit-for-bit deterministic for a
// given seed regardless of worker count.
func RAAOnSecurityRBSGAvg(d Device, p SRBSGParams, runs int, seed uint64) (Estimate, error) {
	if runs <= 0 {
		runs = 5
	}
	workers := runs
	if n := runtime.GOMAXPROCS(0); workers > n {
		workers = n
	}
	ests := make([]Estimate, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var sim *RAASim
			for i := w; i < runs; i += workers {
				if sim == nil {
					var err error
					if sim, err = NewRAASim(d, p); err != nil {
						errs[i] = err
						return
					}
				}
				ests[i] = sim.Run(seed + uint64(i)*0x9e37)
			}
		}(w)
	}
	wg.Wait()
	var acc Estimate
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			return Estimate{}, errs[i]
		}
		acc.Writes += ests[i].Writes
		acc.Seconds += ests[i].Seconds
		acc.FractionOfIdeal += ests[i].FractionOfIdeal
	}
	acc.Scheme, acc.Attack = "security-rbsg", "raa"
	acc.Writes /= float64(runs)
	acc.Seconds /= float64(runs)
	acc.FractionOfIdeal /= float64(runs)
	return acc, nil
}

// BPAOnSecurityRBSG models the Birthday Paradox Attack: each randomly
// chosen logical address is hammered for one inner rotation, so visits
// are exactly uniform over the physical space no matter how weak the DFN
// is (a bijection maps the uniform address choice to a uniform
// intermediate address) — which is why Fig 14's BPA curve is flat across
// stage counts.
func BPAOnSecurityRBSG(d Device, p SRBSGParams) Estimate {
	quantum := (d.Lines/p.Regions + 1) * p.InnerInterval
	writes := uniformVisitLifetime(d, d.Lines, quantum)
	perWrite := float64(d.Timing.SetNs) + srbsgOverheadNs(d, p)
	return Estimate{
		Scheme: "security-rbsg", Attack: "bpa",
		Writes:          writes,
		Seconds:         Seconds(writes, perWrite),
		FractionOfIdeal: writes / d.IdealWrites(),
	}
}

// RTAOnSecurityRBSG evaluates the Remapping Timing Attack against
// Security RBSG. When the configuration satisfies the Section IV-B
// security condition (S·B ≥ ψ_outer — see analytic.MinStages) the DFN
// re-keys before key extraction can finish, every recovered bit goes
// stale, and the attacker can do no better than RAA; the returned
// estimate is then the RAA lifetime and secure is true. Otherwise the
// configuration leaks and the attack degenerates toward the two-level-SR
// RTA cost model (secure false).
func RTAOnSecurityRBSG(d Device, p SRBSGParams, seed uint64) (est Estimate, secure bool, err error) {
	if analytic.DetectionOutrunsKeys(p.Stages, d.AddressBits(), p.OuterInterval) {
		e := RTAOnTwoLevelSR(d, SRParams{
			Regions:       p.Regions,
			InnerInterval: p.InnerInterval,
			OuterInterval: p.OuterInterval,
		}, 0.75)
		e.Scheme = "security-rbsg"
		return e, false, nil
	}
	e, err := RAAOnSecurityRBSGAvg(d, p, 5, seed)
	if err != nil {
		return Estimate{}, false, err
	}
	e.Attack = "rta"
	return e, true, nil
}

// WriteDistribution reproduces Fig 16: the per-line accumulated write
// counts across the physical space after totalWrites RAA writes against
// Security RBSG (demand writes plus inner remapping copies). Slot counts
// are returned in physical order for stats.NormalizedCumulative.
func WriteDistribution(d Device, p SRBSGParams, totalWrites float64, seed uint64) ([]uint32, error) {
	// Run the arc simulator without a failure threshold: endurance is
	// irrelevant here, only deposit geometry matters.
	big := d
	quantum := (d.Lines/p.Regions + 1) * p.InnerInterval
	big.Endurance = quantum * 65000 // effectively never fails
	s, err := newArcSim(big, p, seed)
	if err != nil {
		return nil, err
	}
	s.run(seed%d.Lines, totalWrites)
	out := make([]uint32, len(s.counts))
	perVisit := uint32(s.quantum)
	for i, c := range s.counts {
		out[i] = uint32(c) * perVisit
	}
	// Inner remapping copies: every rotation (= one deposited visit)
	// writes each slot in the region once.
	for r := uint64(0); r < s.p.Regions; r++ {
		rot := uint32(s.drift[r])
		base := r * s.slot
		for k := uint64(0); k < s.slot; k++ {
			out[base+k] += rot
		}
	}
	return out, nil
}

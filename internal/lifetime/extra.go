package lifetime

import (
	"math"

	"securityrbsg/internal/stats"
)

// This file holds the secondary lifetime models: BPA against RBSG (the
// attack that motivated Security Refresh), the focused sub-region attack
// against Multi-Way SR (Section III-E's closing paragraph), and the
// endurance-variation penalty (process variation, the [12] extension).

// BPAOnRBSG models the Birthday Paradox Attack against RBSG: each
// randomly chosen logical address is hammered for one Line Vulnerability
// Factor ((n+1)·ψ writes), pinning one physical slot per trial; trials
// land uniformly at random, so the first slot to accumulate E writes is
// a generalized-birthday first passage. This is the attack for which
// Seznec showed the LVF must sit "dozens of times" below the endurance.
func BPAOnRBSG(d Device, p RBSGParams) Estimate {
	n := d.Lines / p.Regions
	lvf := (n + 1) * p.Interval
	writes := uniformVisitLifetime(d, d.Lines, lvf)
	perWrite := float64(d.Timing.SetNs) +
		float64(d.Timing.ReadNs+d.Timing.SetNs)/float64(p.Interval)
	return Estimate{
		Scheme: "rbsg", Attack: "bpa",
		Writes:          writes,
		Seconds:         Seconds(writes, perWrite),
		FractionOfIdeal: writes / d.IdealWrites(),
	}
}

// FocusedOnMultiWay models the Section III-E observation that schemes
// which split the space into *consecutive* sub-regions leveled
// independently — Multi-Way SR — need no key detection at all: the
// attacker knows from the address bits which logical lines share a
// sub-region and simply floods one of them. Inner SR pins each hammered
// line for one refresh round, so the sub-region's n lines absorb uniform
// visits of n·ψ writes until one reaches endurance — a capacity of
// roughly E·n·eff writes instead of the whole bank's E·N.
func FocusedOnMultiWay(d Device, regions, interval uint64) Estimate {
	n := d.Lines / regions
	quantum := n * interval
	m := int(math.Ceil(float64(d.Endurance) / float64(quantum)))
	visits := stats.VisitsToMaxLoad(int(n), m)
	writes := visits * float64(quantum)
	perWrite := float64(d.Timing.SetNs) +
		float64(2*d.Timing.ReadNs+d.Timing.ResetNs+d.Timing.SetNs)/2/float64(interval)
	return Estimate{
		Scheme: "multiway-sr", Attack: "focused",
		Writes:          writes,
		Seconds:         Seconds(writes, perWrite),
		FractionOfIdeal: writes / d.IdealWrites(),
	}
}

// VariationZ returns the expected standardized extreme (the z-score of
// the weakest of `lines` i.i.d. normal endurance draws): the usual
// asymptotic sqrt(2·ln N) with the log-log correction.
func VariationZ(lines uint64) float64 {
	if lines < 2 {
		return 0
	}
	n := float64(lines)
	l := math.Sqrt(2 * math.Log(n))
	return l - (math.Log(math.Log(n))+math.Log(4*math.Pi))/(2*l)
}

// IdealWithVariation returns the ideal (perfectly uniform wear) lifetime
// when per-line endurance varies as N(E, (σE)²): the device now dies at
// the weakest line's budget, E·(1 − z·σ), shrinking the whole budget by
// the same factor. Schemes cannot beat this without wear-rate leveling
// (tracking actual remaining endurance, [12]) — which is exactly that
// extension's motivation.
func IdealWithVariation(d Device, sigma float64) Estimate {
	factor := 1 - VariationZ(d.Lines)*sigma
	if factor < 0.1 {
		factor = 0.1 // the clamp NewVariedBank applies
	}
	writes := d.IdealWrites() * factor
	return Estimate{
		Scheme: "ideal", Attack: "uniform",
		Writes:          writes,
		Seconds:         Seconds(writes, float64(d.Timing.SetNs)),
		FractionOfIdeal: factor,
	}
}

package lifetime_test

import (
	"math"
	"testing"

	"securityrbsg/internal/attack"
	"securityrbsg/internal/core"
	"securityrbsg/internal/lifetime"
	"securityrbsg/internal/pcm"
	"securityrbsg/internal/rbsg"
	"securityrbsg/internal/secref"
	"securityrbsg/internal/wear"
)

func TestPaperDevice(t *testing.T) {
	d := lifetime.PaperDevice()
	if d.Lines != 1<<22 || d.Endurance != 1e8 {
		t.Fatalf("device drifted: %+v", d)
	}
	if d.AddressBits() != 22 {
		t.Fatal("address bits")
	}
	// Ideal lifetime ≈ 4855 days.
	days := d.IdealSeconds() / 86400
	if days < 4800 || days > 4900 {
		t.Fatalf("ideal %f days", days)
	}
}

func TestBaseline(t *testing.T) {
	// "an adversary can render a memory line unusable in one minute":
	// 10^8 writes × 1000 ns = 100 s.
	e := lifetime.Baseline(lifetime.PaperDevice())
	if e.Seconds != 100 {
		t.Fatalf("baseline RAA lifetime %v s, want 100", e.Seconds)
	}
}

// TestFig11Headlines checks the paper's three headline numbers for Fig 11
// at the recommended configuration (32 regions, ψ=100).
func TestFig11Headlines(t *testing.T) {
	d := lifetime.PaperDevice()
	p := lifetime.RBSGParams{Regions: 32, Interval: 100}
	rta := lifetime.RTAOnRBSG(d, p)
	raa := lifetime.RAAOnRBSG(d, p)
	// "RTA fails the PCM in 478 seconds".
	if rta.Seconds < 430 || rta.Seconds > 530 {
		t.Errorf("RTA lifetime %.0f s, paper says 478", rta.Seconds)
	}
	// "which is 27435X faster than RAA".
	if ratio := raa.Seconds / rta.Seconds; ratio < 20000 || ratio > 35000 {
		t.Errorf("RAA/RTA ratio %.0f, paper says 27435", ratio)
	}
}

// TestFig11Trends checks both sweep trends the paper reports.
func TestFig11Trends(t *testing.T) {
	d := lifetime.PaperDevice()
	// Lifetime under RTA decreases as the number of regions increases.
	prev := math.Inf(1)
	for _, r := range []uint64{32, 64, 128} {
		s := lifetime.RTAOnRBSG(d, lifetime.RBSGParams{Regions: r, Interval: 100}).Seconds
		if s >= prev {
			t.Errorf("RTA lifetime should fall with region count (R=%d: %v >= %v)", r, s, prev)
		}
		prev = s
	}
	// Faster wear leveling (smaller ψ) accelerates RTA.
	if lifetime.RTAOnRBSG(d, lifetime.RBSGParams{Regions: 32, Interval: 16}).Seconds >=
		lifetime.RTAOnRBSG(d, lifetime.RBSGParams{Regions: 32, Interval: 100}).Seconds {
		t.Error("RTA should be faster at smaller remapping intervals")
	}
	// RAA, by contrast, is resisted by more regions (smaller LVF).
	if lifetime.RAAOnRBSG(d, lifetime.RBSGParams{Regions: 128, Interval: 100}).Seconds >=
		lifetime.RAAOnRBSG(d, lifetime.RBSGParams{Regions: 32, Interval: 100}).Seconds {
		t.Error("RAA lifetime should shrink with more regions")
	}
}

// TestRAAOnRBSGMatchesExactSim cross-validates the closed form against a
// write-by-write simulation at small scale.
func TestRAAOnRBSGMatchesExactSim(t *testing.T) {
	d := lifetime.Device{Lines: 256, Endurance: 2000, Timing: pcm.DefaultTiming}
	p := lifetime.RBSGParams{Regions: 8, Interval: 4}
	model := lifetime.RAAOnRBSG(d, p)

	s := rbsg.MustNew(rbsg.Config{Lines: 256, Regions: 8, Interval: 4, Seed: 1})
	c := wear.MustNewController(pcm.Config{LineBytes: 256, Endurance: 2000, Timing: pcm.DefaultTiming}, s)
	res := attack.RAA(c, 3, pcm.Mixed, 0)
	if !res.Failed {
		t.Fatal("sim did not fail")
	}
	if ratio := model.Writes / float64(res.Writes); ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("closed form %v writes vs sim %v (ratio %.3f)", model.Writes, res.Writes, ratio)
	}
}

// TestFig12Headline: two-level SR at the suggested configuration falls to
// RTA in ≈178.8 hours.
func TestFig12Headline(t *testing.T) {
	e := lifetime.RTAOnTwoLevelSRAvg(lifetime.PaperDevice(), lifetime.SuggestedSRParams(), 5, 1)
	h := e.Seconds / 3600
	if h < 140 || h > 230 {
		t.Fatalf("two-level SR under RTA: %.1f h, paper says 178.8", h)
	}
}

// TestFig13Headline: two-level SR under RAA lives ≈105 months, 322×
// longer than under RTA.
func TestFig13Headline(t *testing.T) {
	d := lifetime.PaperDevice()
	raa := lifetime.RAAOnTwoLevelSR(d, lifetime.SuggestedSRParams())
	months := raa.Seconds / 86400 / 30
	if months < 85 || months > 130 {
		t.Fatalf("two-level SR under RAA: %.0f months, paper says ≈105", months)
	}
	rta := lifetime.RTAOnTwoLevelSRAvg(d, lifetime.SuggestedSRParams(), 5, 1)
	if ratio := raa.Seconds / rta.Seconds; ratio < 200 || ratio > 600 {
		t.Fatalf("RAA/RTA ratio %.0f, paper says 322", ratio)
	}
}

// TestFig12Trends: more sub-regions and larger outer intervals both
// shorten the RTA lifetime.
func TestFig12Trends(t *testing.T) {
	d := lifetime.PaperDevice()
	base := lifetime.SuggestedSRParams()
	more := base
	more.Regions = 1024
	if lifetime.RTAOnTwoLevelSR(d, more, 0.75).Seconds >= lifetime.RTAOnTwoLevelSR(d, base, 0.75).Seconds {
		t.Error("more sub-regions should shorten RTA lifetime")
	}
	longer := base
	longer.OuterInterval = 256
	if lifetime.RTAOnTwoLevelSR(d, longer, 0.75).Seconds >= lifetime.RTAOnTwoLevelSR(d, base, 0.75).Seconds {
		t.Error("longer outer interval should shorten RTA lifetime")
	}
}

// TestRAAOnTwoLevelSRMatchesExactSim cross-validates the Poisson
// extreme-value model against the real scheme under RAA at small scale.
func TestRAAOnTwoLevelSRMatchesExactSim(t *testing.T) {
	d := lifetime.Device{Lines: 1 << 10, Endurance: 3000, Timing: pcm.DefaultTiming}
	p := lifetime.SRParams{Regions: 8, InnerInterval: 4, OuterInterval: 8}
	model := lifetime.RAAOnTwoLevelSR(d, p)

	var simWrites float64
	const runs = 3
	for seed := uint64(0); seed < runs; seed++ {
		s := secref.MustNewTwoLevel(secref.TwoLevelConfig{
			Lines: 1 << 10, Regions: 8, InnerInterval: 4, OuterInterval: 8, Seed: seed,
		})
		c := wear.MustNewController(pcm.Config{LineBytes: 256, Endurance: 3000, Timing: pcm.DefaultTiming}, s)
		res := attack.RAA(c, 5, pcm.Mixed, 0)
		if !res.Failed {
			t.Fatal("sim did not fail")
		}
		simWrites += float64(res.Writes)
	}
	simWrites /= runs
	if ratio := model.Writes / simWrites; ratio < 0.55 || ratio > 1.8 {
		t.Fatalf("model %v writes vs sim %v (ratio %.2f)", model.Writes, simWrites, ratio)
	}
}

// TestFig14Shape: the stage sweep must rise steeply from 3 stages and
// saturate, with BPA flat (stage-independent) near the saturation level.
func TestFig14Shape(t *testing.T) {
	d, p := lifetime.ScaledSRBSGExperiment(0)

	frac := func(stages int) float64 {
		p.Stages = stages
		e, err := lifetime.RAAOnSecurityRBSGAvg(d, p, 3, 42)
		if err != nil {
			t.Fatal(err)
		}
		return e.FractionOfIdeal
	}
	f3, f7, f14 := frac(3), frac(7), frac(14)
	if !(f3 < f7 && f7 < f14*1.3) {
		t.Fatalf("stage curve not rising: f3=%.3f f7=%.3f f14=%.3f", f3, f7, f14)
	}
	if f3 > 0.6*f7 {
		t.Fatalf("3 stages should sit far below the saturation level (paper: 20%% vs 67%%), got %.2f vs %.2f", f3, f7)
	}
	if f14 < 0.5 {
		t.Fatalf("many stages should approach the BPA level, got %.2f", f14)
	}
	p.Stages = 7
	bpa := lifetime.BPAOnSecurityRBSG(d, p)
	if bpa.FractionOfIdeal < 0.55 || bpa.FractionOfIdeal > 0.8 {
		t.Fatalf("BPA fraction %.3f, paper says 0.664", bpa.FractionOfIdeal)
	}
}

// TestFig15Trend: Security RBSG's RAA lifetime *increases* with the outer
// interval — the opposite of SR under RTA, as the paper highlights.
func TestFig15Trend(t *testing.T) {
	d, short := lifetime.ScaledSRBSGExperiment(7)
	short.OuterInterval = 16
	long := short
	long.OuterInterval = 256
	a, err := lifetime.RAAOnSecurityRBSGAvg(d, short, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := lifetime.RAAOnSecurityRBSGAvg(d, long, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if b.FractionOfIdeal <= a.FractionOfIdeal {
		t.Fatalf("lifetime should rise with outer interval: ψo=16 → %.3f, ψo=256 → %.3f",
			a.FractionOfIdeal, b.FractionOfIdeal)
	}
}

// TestRAAOnSecurityRBSGMatchesExactSim cross-validates the arc-deposit
// Monte-Carlo against the real scheme driven write by write.
func TestRAAOnSecurityRBSGMatchesExactSim(t *testing.T) {
	d := lifetime.Device{Lines: 256, Endurance: 5000, Timing: pcm.DefaultTiming}
	p := lifetime.SRBSGParams{Regions: 8, InnerInterval: 4, OuterInterval: 8, Stages: 7}
	model, err := lifetime.RAAOnSecurityRBSGAvg(d, p, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	var simWrites float64
	const runs = 3
	for seed := uint64(0); seed < runs; seed++ {
		s := core.MustNew(core.Config{
			Lines: 256, Regions: 8, InnerInterval: 4,
			OuterInterval: 8, Stages: 7, Seed: seed + 100,
		})
		c := wear.MustNewController(pcm.Config{LineBytes: 256, Endurance: 5000, Timing: pcm.DefaultTiming}, s)
		res := attack.RAA(c, 3, pcm.Mixed, 0)
		if !res.Failed {
			t.Fatal("sim did not fail")
		}
		simWrites += float64(res.Writes)
	}
	simWrites /= runs
	if ratio := model.Writes / simWrites; ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("model %v writes vs sim %v (ratio %.2f)", model.Writes, simWrites, ratio)
	}
}

// TestRTAOnSecurityRBSG: secure configurations fall back to RAA-grade
// lifetimes; leaky ones collapse toward the SR attack model.
func TestRTAOnSecurityRBSG(t *testing.T) {
	d, p := lifetime.ScaledSRBSGExperiment(8)
	est, secure, err := lifetime.RTAOnSecurityRBSG(d, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !secure {
		t.Fatal("8 stages × 18 bits = 144 ≥ 128 should be secure")
	}
	p.Stages = 3 // 54 < 128: leaks
	weak, secure2, err := lifetime.RTAOnSecurityRBSG(d, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if secure2 {
		t.Fatal("3 stages should leak")
	}
	if weak.Seconds >= est.Seconds {
		t.Fatalf("leaky config should die faster: %.3g vs %.3g s", weak.Seconds, est.Seconds)
	}
}

// TestWriteDistributionApproachesUniform reproduces Fig 16's trend: the
// normalized accumulated write curve straightens as total writes grow.
func TestWriteDistributionApproachesUniform(t *testing.T) {
	d := lifetime.ScaledDevice(1<<16, 1e12)
	p := lifetime.SRBSGParams{Regions: 64, InnerInterval: 16, OuterInterval: 32, Stages: 7}
	err1 := distUniformityError(t, d, p, 2e8)
	err2 := distUniformityError(t, d, p, 2e10)
	if err2 >= err1 {
		t.Fatalf("uniformity should improve with writes: %.4f → %.4f", err1, err2)
	}
	if err2 > 0.05 {
		t.Fatalf("late-time distribution still uneven: %.4f", err2)
	}
}

func distUniformityError(t *testing.T, d lifetime.Device, p lifetime.SRBSGParams, writes float64) float64 {
	t.Helper()
	counts, err := lifetime.WriteDistribution(d, p, writes, 9)
	if err != nil {
		t.Fatal(err)
	}
	return uniformityError(counts)
}

// uniformityError is a local copy of stats.UniformityError to keep the
// dependency direction clean in tests.
func uniformityError(counts []uint32) float64 {
	var total float64
	for _, c := range counts {
		total += float64(c)
	}
	if total == 0 {
		return 0
	}
	var acc, worst float64
	n := float64(len(counts))
	for i, c := range counts {
		acc += float64(c)
		if d := math.Abs(acc/total - float64(i+1)/n); d > worst {
			worst = d
		}
	}
	return worst
}

func TestBPAInsensitiveToStages(t *testing.T) {
	d, p := lifetime.ScaledSRBSGExperiment(3)
	a := lifetime.BPAOnSecurityRBSG(d, p)
	p.Stages = 20
	b := lifetime.BPAOnSecurityRBSG(d, p)
	if a.FractionOfIdeal != b.FractionOfIdeal {
		t.Fatalf("BPA must not depend on stage count: %.4f vs %.4f",
			a.FractionOfIdeal, b.FractionOfIdeal)
	}
}

func TestRAAOnStartGapLabel(t *testing.T) {
	e := lifetime.RAAOnStartGap(lifetime.PaperDevice(), 100)
	if e.Scheme != "start-gap" {
		t.Fatal("label")
	}
	// Whole-bank start-gap: enormous LVF, enormous RAA lifetime compared
	// to ideal fraction... but still finite and below ideal.
	if e.FractionOfIdeal >= 1 {
		t.Fatal("fraction must be below ideal")
	}
}

package lifetime

import (
	"math"

	"securityrbsg/internal/stats"
)

// This file holds the two-level Security Refresh models behind Fig 12
// (RTA) and Fig 13 (RAA).

// SRParams are the Table-I configuration knobs.
type SRParams struct {
	Regions       uint64 // sub-regions: 256, 512, 1024 (512 suggested)
	InnerInterval uint64 // inner ψ: 16–128 (64 suggested)
	OuterInterval uint64 // outer ψ: 16–256 (128 suggested)
}

// SuggestedSRParams is the configuration Security Refresh recommends.
func SuggestedSRParams() SRParams {
	return SRParams{Regions: 512, InnerInterval: 64, OuterInterval: 128}
}

// srOverheadNsFixed returns the amortized remapping latency added to each
// demand write: one inner refresh step per ψi writes to the hammered
// sub-region and one outer step per ψo bank writes, both on pattern-mixed
// data. Half the refresh steps perform no swap (the pair was already
// done), so the expected per-step cost is swap/2.
func srOverheadNsFixed(d Device, p SRParams) float64 {
	swap := float64(2*d.Timing.ReadNs + d.Timing.ResetNs + d.Timing.SetNs)
	return swap/2/float64(p.InnerInterval) + swap/2/float64(p.OuterInterval)
}

// RAAOnTwoLevelSR models hammering one logical address against two-level
// Security Refresh (Fig 13).
//
// Within one inner refresh round the hammered address is pinned to one
// physical line, which therefore absorbs the whole round's writes to that
// sub-region — all of them, since the attacker is the only writer and all
// its writes land there: a visit of quantum (N/R)·ψ_inner writes. Across
// rounds the inner key (and, across outer rounds, the sub-region itself)
// re-randomizes, so visits are uniform over all N lines and the lifetime
// is the generalized birthday first-passage solved by the Poisson
// extreme-value model. The paper finds RAA ≈ BPA for SR, which this model
// makes explicit.
func RAAOnTwoLevelSR(d Device, p SRParams) Estimate {
	n := d.Lines / p.Regions
	quantum := n * p.InnerInterval
	writes := uniformVisitLifetime(d, d.Lines, quantum)
	perWrite := float64(d.Timing.SetNs) + srOverheadNsFixed(d, p)
	return Estimate{
		Scheme: "two-level-sr", Attack: "raa",
		Writes:          writes,
		Seconds:         Seconds(writes, perWrite),
		FractionOfIdeal: writes / d.IdealWrites(),
	}
}

// BPAOnTwoLevelSR models the Birthday Paradox Attack: random logical
// addresses hammered for one inner round each. The visit process is the
// same as RAA's (the paper: "RAA has been proved to have the same effect
// with BPA" for SR).
func BPAOnTwoLevelSR(d Device, p SRParams) Estimate {
	e := RAAOnTwoLevelSR(d, p)
	e.Attack = "bpa"
	return e
}

// RTAOnTwoLevelSR models the Remapping Timing Attack of Section III-E
// (Fig 12) for one outer-key draw.
//
// Per outer round (N·ψ_outer writes) the attacker spends
// keyFrac·N·log2(R) writes re-detecting the high outer-key bits that
// locate the target sub-region (keyFrac ∈ [0.5, 1] depending on the key —
// hence the paper's five random-key trials), then funnels every remaining
// write into that sub-region. Inside it, inner SR pins each hammered
// address for one inner round, so wear accumulates as uniform visits over
// the n = N/R lines until one reaches endurance.
func RTAOnTwoLevelSR(d Device, p SRParams, keyFrac float64) Estimate {
	if keyFrac <= 0 {
		keyFrac = 0.75
	}
	n := d.Lines / p.Regions
	quantum := n * p.InnerInterval
	m := int(math.Ceil(float64(d.Endurance) / float64(quantum)))
	visits := stats.VisitsToMaxLoad(int(n), m)
	intoRegion := visits * float64(quantum)

	logR := float64(0)
	for v := p.Regions - 1; v > 0; v >>= 1 {
		logR++
	}
	round := float64(d.Lines) * float64(p.OuterInterval)
	detect := keyFrac * float64(d.Lines) * logR
	usable := round - detect
	if usable <= 0 {
		// Detection alone consumes the round: the attack degenerates to
		// RAA (it can never exploit its knowledge).
		return RAAOnTwoLevelSR(d, p)
	}
	rounds := math.Ceil(intoRegion / usable)
	writes := rounds * round
	// Hammer writes are generic (SET); detection sweeps are half-and-half.
	hammerNs := (writes - rounds*detect) * float64(d.Timing.SetNs)
	detectNs := rounds * detect * mixNs(d.Timing)
	overheadNs := writes * srOverheadNsFixed(d, p)
	return Estimate{
		Scheme: "two-level-sr", Attack: "rta",
		Writes:          writes,
		Seconds:         (hammerNs + detectNs + overheadNs) * 1e-9,
		FractionOfIdeal: writes / d.IdealWrites(),
	}
}

// RTAOnTwoLevelSRAvg averages RTAOnTwoLevelSR over `runs` random keyFrac
// draws in [0.5, 1] — the paper's five-trial averaging.
func RTAOnTwoLevelSRAvg(d Device, p SRParams, runs int, seed uint64) Estimate {
	if runs <= 0 {
		runs = 5
	}
	rng := stats.NewRNG(seed)
	var acc Estimate
	for i := 0; i < runs; i++ {
		e := RTAOnTwoLevelSR(d, p, 0.5+0.5*rng.Float64())
		acc.Writes += e.Writes
		acc.Seconds += e.Seconds
		acc.FractionOfIdeal += e.FractionOfIdeal
	}
	acc.Scheme, acc.Attack = "two-level-sr", "rta"
	acc.Writes /= float64(runs)
	acc.Seconds /= float64(runs)
	acc.FractionOfIdeal /= float64(runs)
	return acc
}

package remapboundary_test

import (
	"testing"

	"securityrbsg/internal/analyzers/analysistest"
	"securityrbsg/internal/analyzers/remapboundary"
)

func TestBoundaryContract(t *testing.T) {
	analysistest.Run(t, remapboundary.Analyzer, "securityrbsg/rb/ctrl", "securityrbsg/rb/wrap")
}

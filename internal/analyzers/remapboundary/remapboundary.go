// Package remapboundary enforces the PR 7 timing-oracle contract:
// calls that mutate the DFN stage count (and therefore redraw the
// Feistel keys) may only happen at designated remap-round boundaries.
// A mid-round level change leaks the detector's decision through the
// remap timing, so every code path that reaches a stage-count mutation
// must sit inside a function annotated //rbsglint:remapboundary — the
// reviewed, sanctioned boundary call sites.
//
// The mutation intrinsics are (*core.Scheme).SetStages and the feistel
// Network's SetStages/MustSetStages. The mechanism packages
// (internal/core, internal/feistel) are exempt: they implement the
// mutation, they do not decide when it happens.
//
// A LevelMutator fact marks every unannotated function that reaches a
// mutation through static calls, so the chain is followed across
// packages: a helper in internal/seclevel that calls SetStages taints
// its callers in internal/experiments too. Annotating a function stops
// the propagation — it *is* the boundary, and calling it from
// anywhere is sanctioned. Dynamic dispatch (interface methods, func
// values) also ends the chain; schemes are driven through interfaces,
// and the contract is about the static decision paths.
package remapboundary

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"securityrbsg/internal/analyzers/analysis"
)

// LevelMutator is the per-function fact: the function reaches a DFN
// stage-count mutation through static calls without being annotated
// as a remap boundary.
type LevelMutator struct {
	Why string
}

func (*LevelMutator) AFact() {}

func (f *LevelMutator) String() string { return "levelmutator: " + f.Why }

func init() { analysis.RegisterFact(&LevelMutator{}) }

// Analyzer is the remapboundary pass.
var Analyzer = &analysis.Analyzer{
	Name:      "remapboundary",
	Doc:       "DFN stage-count mutations may only happen inside //rbsglint:remapboundary functions",
	FactTypes: []analysis.Fact{&LevelMutator{}},
	Run:       run,
}

// intrinsic identifies one stage-count mutation method.
type intrinsic struct {
	pkg    string
	recv   string
	method string
}

// intrinsics are the mutation entry points of the mechanism packages.
var intrinsics = []intrinsic{
	{"securityrbsg/internal/core", "Scheme", "SetStages"},
	{"securityrbsg/internal/feistel", "Network", "SetStages"},
	{"securityrbsg/internal/feistel", "Network", "MustSetStages"},
}

// exemptPkgs implement the mutation mechanism and are not subject to
// the boundary rule.
var exemptPkgs = map[string]bool{
	"securityrbsg/internal/core":    true,
	"securityrbsg/internal/feistel": true,
}

const modulePrefix = "securityrbsg"

type reason struct {
	pos token.Pos
	why string
}

type funcInfo struct {
	decl    *ast.FuncDecl
	obj     *types.Func
	marked  bool // carries //rbsglint:remapboundary
	reasons []reason
	calls   []sameCall
	mutator bool
}

type sameCall struct {
	pos    token.Pos
	callee *types.Func
}

func run(pass *analysis.Pass) error {
	if exemptPkgs[pass.Pkg.Path()] {
		return nil
	}
	infos := map[*types.Func]*funcInfo{}
	var order []*funcInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{
				decl:   fd,
				obj:    obj,
				marked: analysis.FuncMarked(pass.Files, pass.Fset, fd, "remapboundary"),
			}
			collect(pass, fi)
			infos[obj] = fi
			order = append(order, fi)
		}
	}

	// Propagate mutator status through same-package calls. Annotated
	// functions absorb the taint: they never become mutators.
	for _, fi := range order {
		fi.mutator = !fi.marked && len(fi.reasons) > 0
	}
	for {
		changed := false
		for _, fi := range order {
			if fi.mutator || fi.marked {
				continue
			}
			for _, c := range fi.calls {
				if callee, ok := infos[c.callee]; ok && callee.mutator {
					fi.mutator = true
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}

	for _, fi := range order {
		if !fi.mutator {
			continue
		}
		fillReasons(infos, fi, map[*funcInfo]bool{})
		pass.ExportObjectFact(fi.obj, &LevelMutator{Why: fi.reasons[0].why})
		for _, r := range fi.reasons {
			pass.Reportf(r.pos, "level mutation outside a remap boundary: %s; annotate the enclosing function with //rbsglint:remapboundary or move the call to a remap-round boundary", r.why)
		}
	}
	return nil
}

// fillReasons resolves transitive why-chains for mutators whose only
// reasons are same-package calls, depth-first with a cycle guard.
func fillReasons(infos map[*types.Func]*funcInfo, fi *funcInfo, stack map[*funcInfo]bool) {
	if len(fi.reasons) > 0 {
		return
	}
	stack[fi] = true
	defer delete(stack, fi)
	for _, c := range fi.calls {
		callee, ok := infos[c.callee]
		if !ok || !callee.mutator {
			continue
		}
		if stack[callee] {
			continue
		}
		fillReasons(infos, callee, stack)
		why := "reaches a stage-count mutation through recursion"
		if len(callee.reasons) > 0 {
			why = chainWhy(c.callee, callee.reasons[0].why)
		}
		fi.reasons = append(fi.reasons, reason{c.pos, why})
	}
	if len(fi.reasons) == 0 {
		fi.reasons = append(fi.reasons, reason{fi.decl.Pos(), "reaches a stage-count mutation through recursion"})
	}
}

func chainWhy(callee *types.Func, calleeWhy string) string {
	why := fmt.Sprintf("calls %s, which %s", compactName(callee), calleeWhy)
	if len(why) > 220 {
		why = why[:217] + "..."
	}
	return why
}

// compactName renders pkg.Func or pkg.Recv.Method.
func compactName(fn *types.Func) string {
	name := fn.Name()
	if key, ok := analysis.ObjectKey(fn); ok {
		name = key
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// collect records intrinsic hits, cross-package mutator calls, and
// same-package call edges for one function.
func collect(pass *analysis.Pass, fi *funcInfo) {
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || pass.Allowed(call.Pos()) {
			return true
		}
		if isIntrinsic(fn) {
			fi.reasons = append(fi.reasons, reason{call.Pos(), fmt.Sprintf("calls %s, which mutates the DFN stage count", compactName(fn))})
			return true
		}
		if fn.Pkg() == pass.Pkg {
			fi.calls = append(fi.calls, sameCall{call.Pos(), fn})
			return true
		}
		path := fn.Pkg().Path()
		if path == modulePrefix || strings.HasPrefix(path, modulePrefix+"/") {
			var m LevelMutator
			if pass.ImportObjectFact(fn, &m) {
				fi.reasons = append(fi.reasons, reason{call.Pos(), chainWhy(fn, m.Why)})
			}
		}
		return true
	})
}

func isIntrinsic(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for _, in := range intrinsics {
		if fn.Name() == in.method && named.Obj().Name() == in.recv && fn.Pkg().Path() == in.pkg {
			return true
		}
	}
	return false
}

// staticCallee resolves a call to the *types.Func it statically
// invokes, or nil for dynamic dispatch and func values.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			if fn == nil {
				return nil
			}
			if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
				return nil
			}
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// Package core stubs the real RBSG scheme: just enough surface for
// the remapboundary fixtures to call the SetStages intrinsic. The
// package itself is exempt (it implements the mechanism).
package core

type Scheme struct{ stages int }

func (s *Scheme) SetStages(n int) { s.stages = n }

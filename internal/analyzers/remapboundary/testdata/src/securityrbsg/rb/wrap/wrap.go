// Package wrap proves the taint crosses package boundaries through
// the LevelMutator fact: nothing here touches SetStages directly.
package wrap

import (
	"securityrbsg/internal/core"
	"securityrbsg/rb/ctrl"
)

func Reconfigure(s *core.Scheme) { // want Reconfigure:`levelmutator: calls ctrl\.Hasty`
	ctrl.Hasty(s) // want `level mutation outside a remap boundary: calls ctrl\.Hasty, which calls core\.Scheme\.SetStages, which mutates the DFN stage count`
}

// An annotated wrapper is a sanctioned boundary even when the
// mutation happens two packages down.
//
//rbsglint:remapboundary
func BoundaryWrap(s *core.Scheme) {
	ctrl.Hasty(s)
}

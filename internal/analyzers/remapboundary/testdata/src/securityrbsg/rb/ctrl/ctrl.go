// Package ctrl exercises the direct, annotated, transitive, and
// suppressed forms of the remap-boundary contract.
package ctrl

import "securityrbsg/internal/core"

// Direct mutation in an unannotated function: flagged, and the
// LevelMutator fact taints callers in other packages.
func Hasty(s *core.Scheme) { // want Hasty:`levelmutator: calls core\.Scheme\.SetStages`
	s.SetStages(6) // want `level mutation outside a remap boundary: calls core\.Scheme\.SetStages, which mutates the DFN stage count`
}

// The sanctioned boundary: annotated, so no finding and no fact.
//
//rbsglint:remapboundary
func ApplyAtBoundary(s *core.Scheme, n int) {
	s.SetStages(n)
}

// Calling the boundary from anywhere is fine — the annotation stops
// the taint.
func Caller(s *core.Scheme) {
	ApplyAtBoundary(s, 4)
}

// Transitive taint through a same-package call.
func onTick(s *core.Scheme) { // want onTick:`levelmutator: calls core\.Scheme\.SetStages`
	s.SetStages(2) // want `level mutation outside a remap boundary`
}

func Tick(s *core.Scheme) { // want Tick:`levelmutator: calls ctrl\.onTick`
	onTick(s) // want `level mutation outside a remap boundary: calls ctrl\.onTick, which calls core\.Scheme\.SetStages, which mutates the DFN stage count`
}

// A justified allow quiets a call site without annotating the
// function (and without exporting a taint fact).
func migrated(s *core.Scheme) {
	s.SetStages(8) //rbsglint:allow remapboundary -- test-only reset helper, never runs mid-round
}

// Package analysistest runs an analyzer over golden fixture packages
// and checks its diagnostics against // want annotations, mirroring
// the x/tools package of the same name (which the module deliberately
// does not depend on).
//
// Fixtures live GOPATH-style under testdata/src/<import path>/ next to
// the analyzer's test. Every line that should be flagged carries a
// comment of the form
//
//	expr // want `regexp` `another regexp`
//
// with one backquoted (or double-quoted) regexp per expected
// diagnostic on that line. The harness runs the full framework
// pipeline — including //rbsglint:allow suppression — so fixtures can
// also prove that a directive with a reason silences a finding and
// that one without a reason does not.
//
// Fact-producing analyzers are tested with named expectations:
//
//	func Helper() {} // want Helper:`allocfree`
//
// asserts that after the run the fact store holds a fact for the
// object keyed "Helper" in the enclosing fixture package whose
// String() matches the regexp. Method facts use the "Recv.Name" key
// (e.g. `// want Scheme.SetStages:"mutates"`). Fact expectations and
// diagnostic expectations can share one want clause.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"securityrbsg/internal/analyzers/analysis"
)

// wantRe matches the trailing want clause of a fixture line.
var wantRe = regexp.MustCompile(`// want (.*)$`)

// expectRe matches one expectation: an optional `Object:` or
// `Recv.Name:` prefix (a fact assertion) followed by a backquoted or
// double-quoted regexp.
var expectRe = regexp.MustCompile("(?:([A-Za-z_][A-Za-z0-9_]*(?:\\.[A-Za-z_][A-Za-z0-9_]*)?):)?(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

// expectation is one parsed want entry. obj == "" means a diagnostic
// expectation; otherwise it names the fact key the assertion is about.
type expectation struct {
	obj string
	re  *regexp.Regexp
}

// Run loads the fixture packages at the given import paths from
// testdata/src, applies the analyzer through the framework (directive
// suppression included), and fails the test on any mismatch between
// diagnostics and // want annotations. Fact expectations are checked
// against the run's fact store.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.LoadFixtures(srcRoot, pkgPaths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	facts := analysis.NewFacts()
	diags, err := analysis.RunFacts(pkgs, []*analysis.Analyzer{a}, facts)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	// Group surviving diagnostics by file:line.
	type key struct {
		file string
		line int
	}
	got := map[key][]analysis.Diagnostic{}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		got[k] = append(got[k], d)
	}

	// Walk every fixture file of the analyzed packages and pair wants
	// with diagnostics and facts.
	for _, pkg := range pkgs {
		factStrings := map[string][]string{}
		for _, of := range facts.PackageFacts(pkg.Path) {
			factStrings[of.Obj] = append(factStrings[of.Obj], fmt.Sprint(of.Fact))
		}
		entries, err := os.ReadDir(pkg.Dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(pkg.Dir, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				k := key{path, i + 1}
				wants := parseWants(t, path, i+1, line)
				remaining := got[k]
				delete(got, k)
				for _, w := range wants {
					if w.obj != "" {
						matchFact(t, path, i+1, factStrings, w)
						continue
					}
					idx := -1
					for j, d := range remaining {
						if w.re.MatchString(d.Message) {
							idx = j
							break
						}
					}
					if idx < 0 {
						t.Errorf("%s:%d: no diagnostic matching %q (have %s)", path, i+1, w.re, messages(remaining))
						continue
					}
					remaining = append(remaining[:idx], remaining[idx+1:]...)
				}
				for _, d := range remaining {
					t.Errorf("%s:%d: unexpected diagnostic: %s: %s", path, i+1, d.Analyzer, d.Message)
				}
			}
		}
	}
	// Diagnostics in files we never walked (shouldn't happen).
	for k, ds := range got {
		t.Errorf("%s:%d: diagnostics outside fixture files: %s", k.file, k.line, messages(ds))
	}
}

// matchFact checks one fact expectation against the facts recorded for
// the fixture package owning the annotated line.
func matchFact(t *testing.T, file string, lineno int, factStrings map[string][]string, w expectation) {
	t.Helper()
	for _, s := range factStrings[w.obj] {
		if w.re.MatchString(s) {
			return
		}
	}
	have := factStrings[w.obj]
	if len(have) == 0 {
		t.Errorf("%s:%d: no fact recorded for object %q", file, lineno, w.obj)
		return
	}
	t.Errorf("%s:%d: no fact on %q matching %q (have %q)", file, lineno, w.obj, w.re, have)
}

// parseWants extracts the expectations from one line.
func parseWants(t *testing.T, file string, lineno int, line string) []expectation {
	t.Helper()
	m := wantRe.FindStringSubmatch(line)
	if m == nil {
		return nil
	}
	var wants []expectation
	for _, q := range expectRe.FindAllStringSubmatch(m[1], -1) {
		var pat string
		if strings.HasPrefix(q[2], "`") {
			pat = strings.Trim(q[2], "`")
		} else {
			var err error
			pat, err = strconv.Unquote(q[2])
			if err != nil {
				t.Fatalf("%s:%d: bad want expectation %s: %v", file, lineno, q[2], err)
			}
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %q: %v", file, lineno, pat, err)
		}
		wants = append(wants, expectation{obj: q[1], re: re})
	}
	if len(wants) == 0 {
		t.Fatalf("%s:%d: // want clause with no expectations", file, lineno)
	}
	return wants
}

func messages(ds []analysis.Diagnostic) string {
	if len(ds) == 0 {
		return "none"
	}
	var parts []string
	for _, d := range ds {
		parts = append(parts, fmt.Sprintf("%q", d.Message))
	}
	return strings.Join(parts, ", ")
}

// Package analysistest runs an analyzer over golden fixture packages
// and checks its diagnostics against // want annotations, mirroring
// the x/tools package of the same name (which the module deliberately
// does not depend on).
//
// Fixtures live GOPATH-style under testdata/src/<import path>/ next to
// the analyzer's test. Every line that should be flagged carries a
// comment of the form
//
//	expr // want `regexp` `another regexp`
//
// with one backquoted (or double-quoted) regexp per expected
// diagnostic on that line. The harness runs the full framework
// pipeline — including //rbsglint:allow suppression — so fixtures can
// also prove that a directive with a reason silences a finding and
// that one without a reason does not.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"securityrbsg/internal/analyzers/analysis"
)

// wantRe matches the trailing want clause of a fixture line.
var wantRe = regexp.MustCompile(`// want (.*)$`)

// quotedRe matches one backquoted or double-quoted expectation.
var quotedRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads the fixture packages at the given import paths from
// testdata/src, applies the analyzer through the framework (directive
// suppression included), and fails the test on any mismatch between
// diagnostics and // want annotations.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.LoadFixtures(srcRoot, pkgPaths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	// Group surviving diagnostics by file:line.
	type key struct {
		file string
		line int
	}
	got := map[key][]analysis.Diagnostic{}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		got[k] = append(got[k], d)
	}

	// Walk every fixture file of the analyzed packages and pair wants
	// with diagnostics.
	for _, pkg := range pkgs {
		entries, err := os.ReadDir(pkg.Dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(pkg.Dir, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				k := key{path, i + 1}
				wants := parseWants(t, path, i+1, line)
				remaining := got[k]
				delete(got, k)
				for _, w := range wants {
					idx := -1
					for j, d := range remaining {
						if w.MatchString(d.Message) {
							idx = j
							break
						}
					}
					if idx < 0 {
						t.Errorf("%s:%d: no diagnostic matching %q (have %s)", path, i+1, w, messages(remaining))
						continue
					}
					remaining = append(remaining[:idx], remaining[idx+1:]...)
				}
				for _, d := range remaining {
					t.Errorf("%s:%d: unexpected diagnostic: %s: %s", path, i+1, d.Analyzer, d.Message)
				}
			}
		}
	}
	// Diagnostics in files we never walked (shouldn't happen).
	for k, ds := range got {
		t.Errorf("%s:%d: diagnostics outside fixture files: %s", k.file, k.line, messages(ds))
	}
}

// parseWants extracts the expected-diagnostic regexps from one line.
func parseWants(t *testing.T, file string, lineno int, line string) []*regexp.Regexp {
	t.Helper()
	m := wantRe.FindStringSubmatch(line)
	if m == nil {
		return nil
	}
	var wants []*regexp.Regexp
	for _, q := range quotedRe.FindAllString(m[1], -1) {
		var pat string
		if strings.HasPrefix(q, "`") {
			pat = strings.Trim(q, "`")
		} else {
			var err error
			pat, err = strconv.Unquote(q)
			if err != nil {
				t.Fatalf("%s:%d: bad want expectation %s: %v", file, lineno, q, err)
			}
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %q: %v", file, lineno, pat, err)
		}
		wants = append(wants, re)
	}
	if len(wants) == 0 {
		t.Fatalf("%s:%d: // want clause with no expectations", file, lineno)
	}
	return wants
}

func messages(ds []analysis.Diagnostic) string {
	if len(ds) == 0 {
		return "none"
	}
	var parts []string
	for _, d := range ds {
		parts = append(parts, fmt.Sprintf("%q", d.Message))
	}
	return strings.Join(parts, ", ")
}

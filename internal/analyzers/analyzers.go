// Package analyzers registers the rbsglint suite: the custom static
// checks that turn this repo's prose contracts (deterministic
// simulation, single-writer banks, panic-free data paths, alloc-free
// hot paths, remap-boundary level changes, registry hygiene, metric
// naming) into CI failures. See DESIGN.md "Mechanized invariants" for
// the catalogue.
package analyzers

import (
	"securityrbsg/internal/analyzers/analysis"
	"securityrbsg/internal/analyzers/bankisolation"
	"securityrbsg/internal/analyzers/hotpathalloc"
	"securityrbsg/internal/analyzers/metriccontract"
	"securityrbsg/internal/analyzers/panicpolicy"
	"securityrbsg/internal/analyzers/registryhygiene"
	"securityrbsg/internal/analyzers/remapboundary"
	"securityrbsg/internal/analyzers/simdeterminism"
)

// All returns the full rbsglint suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		simdeterminism.Analyzer,
		bankisolation.Analyzer,
		panicpolicy.Analyzer,
		hotpathalloc.Analyzer,
		remapboundary.Analyzer,
		registryhygiene.Analyzer,
		metriccontract.Analyzer,
	}
}

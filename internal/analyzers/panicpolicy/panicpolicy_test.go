package panicpolicy_test

import (
	"testing"

	"securityrbsg/internal/analyzers/analysistest"
	"securityrbsg/internal/analyzers/panicpolicy"
)

func TestPanicPolicy(t *testing.T) {
	analysistest.Run(t, panicpolicy.Analyzer,
		"securityrbsg/internal/plib",
		"securityrbsg/cmd/tool",
	)
}

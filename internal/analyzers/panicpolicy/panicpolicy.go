// Package panicpolicy enforces the repo's panic contract for library
// code: a panic may assert a programmer-error invariant, but it must
// never be the transport for a data-dependent failure.
//
// The memserver HTTP service executes requests on per-bank actor
// goroutines; a panic there is not a 500 — it kills the process. So in
// internal/ packages, the service's supply chain, a panic whose
// argument carries a function-local error value (panic(err),
// panic(fmt.Errorf("...: %w", err))) is flagged: an error a callee
// just handed you is data, not an invariant, and it must be returned.
//
// Three forms stay legal without annotation:
//
//   - panics inside Must*-named functions — the documented
//     panic-on-error wrappers for literal test/example configs;
//   - panics whose argument mentions no local error value
//     (panic("pkg: invariant"), panic(fmt.Errorf("pkg: LA %d out of
//     range %d", la, n))) — these state preconditions;
//   - panics referencing only package-level sentinel errors
//     (panic(fmt.Errorf("%w: %d", ErrBadAddress, pa))) — the sentinel
//     is part of the stated invariant, not propagated data.
//
// A provably unreachable propagation (constructor re-validating inputs
// already validated) may be annotated in place:
//
//	//rbsglint:allow panicpolicy -- unreachable: width validated at construction
package panicpolicy

import (
	"go/ast"
	"go/types"
	"strings"

	"securityrbsg/internal/analyzers/analysis"
)

// Analyzer is the panicpolicy pass.
var Analyzer = &analysis.Analyzer{
	Name: "panicpolicy",
	Doc:  "library panics may assert invariants but never propagate data-dependent errors",
	Run:  run,
}

// scopePrefix limits the pass to library packages; binaries under cmd/
// and examples/ own their process and may crash how they like.
const scopePrefix = "securityrbsg/internal/"

func run(pass *analysis.Pass) error {
	if !strings.HasPrefix(pass.Pkg.Path(), scopePrefix) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if strings.HasPrefix(fn.Name.Name, "Must") || strings.HasPrefix(fn.Name.Name, "must") {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 || !isPanic(pass, call.Fun) {
					return true
				}
				if name, ok := localError(pass, call.Args[0]); ok {
					pass.Reportf(call.Pos(), "panic propagates the data-dependent error %q: return it instead (a panic on an actor goroutine kills the service); if it is a provable invariant, wrap it in a Must* helper or annotate with //rbsglint:allow", name)
				}
				return true
			})
		}
	}
	return nil
}

// isPanic reports whether fun resolves to the builtin panic.
func isPanic(pass *analysis.Pass, fun ast.Expr) bool {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[id]
	if !ok {
		return false
	}
	b, ok := obj.(*types.Builtin)
	return ok && b.Name() == "panic"
}

// localError scans the panic argument for a reference to a
// function-local variable (or parameter) whose type is or implements
// error. Package-level sentinels are exempt.
func localError(pass *analysis.Pass, arg ast.Expr) (string, bool) {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	var name string
	found := false
	ast.Inspect(arg, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Parent() == pass.Pkg.Scope() {
			return true // package-level sentinel
		}
		t := v.Type()
		if types.Implements(t, errIface) || types.Implements(types.NewPointer(t), errIface) {
			name, found = v.Name(), true
			return false
		}
		return true
	})
	return name, found
}

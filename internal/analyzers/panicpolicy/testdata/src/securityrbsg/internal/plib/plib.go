// Package plib exercises the panicpolicy rules from a library package
// under internal/.
package plib

import (
	"errors"
	"fmt"
)

// ErrBad is a package-level sentinel; panics mentioning it state an
// invariant rather than propagate data.
var ErrBad = errors.New("plib: bad address")

// New fails on invalid input.
func New(n int) (int, error) {
	if n <= 0 {
		return 0, errors.New("plib: n must be positive")
	}
	return n, nil
}

func Build(n int) int {
	v, err := New(n)
	if err != nil {
		panic(err) // want `panic propagates the data-dependent error "err"`
	}
	return v
}

func Wrapped(n int) int {
	v, err := New(n)
	if err != nil {
		panic(fmt.Errorf("plib: build %d: %w", n, err)) // want `panic propagates the data-dependent error "err"`
	}
	return v
}

// MustBuild is the sanctioned panic-on-error wrapper shape.
func MustBuild(n int) int {
	v, err := New(n)
	if err != nil {
		panic(err)
	}
	return v
}

func invariant(n int) {
	if n < 0 {
		panic("plib: n must be non-negative") // states a precondition: legal
	}
}

func formatted(la, lines uint64) {
	if la >= lines {
		panic(fmt.Errorf("plib: LA %d out of space of %d lines", la, lines)) // no error value: legal
	}
}

func sentinel(pa uint64) {
	panic(fmt.Errorf("%w: %d", ErrBad, pa)) // package-level sentinel: legal
}

func annotated(n int) int {
	v, err := New(n)
	if err != nil {
		panic(err) //rbsglint:allow panicpolicy -- fixture: unreachable, n validated by the caller
	}
	return v
}

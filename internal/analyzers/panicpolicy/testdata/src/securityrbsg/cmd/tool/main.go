// Command tool shows the pass is scoped to library packages: binaries
// own their process and may crash on startup errors.
package main

import "errors"

func main() {
	if err := run(); err != nil {
		panic(err) // outside internal/: no diagnostic
	}
}

func run() error { return errors.New("boom") }

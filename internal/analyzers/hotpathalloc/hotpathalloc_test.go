package hotpathalloc_test

import (
	"testing"

	"securityrbsg/internal/analyzers/analysistest"
	"securityrbsg/internal/analyzers/hotpathalloc"
)

func TestConstructsAndExemptions(t *testing.T) {
	analysistest.Run(t, hotpathalloc.Analyzer, "securityrbsg/hot/a")
}

// TestCrossPackageFacts loads the dependency first (as the framework's
// dependency-order contract requires) and checks that violations in
// securityrbsg/hot/use are detected purely through AllocProfile facts
// imported from securityrbsg/hot/dep.
func TestCrossPackageFacts(t *testing.T) {
	analysistest.Run(t, hotpathalloc.Analyzer, "securityrbsg/hot/dep", "securityrbsg/hot/use")
}

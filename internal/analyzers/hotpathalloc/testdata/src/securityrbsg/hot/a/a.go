// Package a exercises the hotpathalloc construct detection, the
// cold-path / amortized-growth exemptions, allow-directive handling,
// and same-package why-chains.
package a

import "fmt"

type point struct{ x, y int }

// Every allocating construct fires inside a hot-path root.
//
//rbsglint:hotpath
func Constructs(v uint64, s string) {
	b := make([]byte, 8) // want `hot path: make allocates`
	_ = b
	p := new(point) // want `hot path: new allocates`
	_ = p
	q := &point{1, 2} // want `hot path: address-of composite literal allocates`
	_ = q
	xs := []int{1, 2} // want `hot path: slice literal allocates`
	_ = xs
	m := map[string]int{} // want `hot path: map literal allocates`
	_ = m
	t := s + "!" // want `hot path: string concatenation allocates`
	_ = t
	raw := []byte(s) // want `hot path: conversion \[\]byte\(string\) allocates`
	_ = raw
	f := func() {} // want `hot path: function literal allocates`
	_ = f
	go spin()      // want `hot path: go statement allocates`
	fmt.Println(v) // want `hot path: calls fmt.Println, which is not on the alloc-free safe list`
}

func spin() {} // want spin:`allocfree`

// The pool-refill idiom: a make guarded by a cap() check is amortized
// growth, not a per-operation allocation.
//
//rbsglint:hotpath
func Amortized(buf []byte, n int) []byte { // want Amortized:`allocfree`
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	return buf[:n]
}

// Error handling is a cold path: the if-body terminates in return.
//
//rbsglint:hotpath
func ColdError(v int) (int, error) {
	if v < 0 {
		return 0, fmt.Errorf("negative: %d", v)
	}
	return v * 2, nil
}

// Panic guards are cold too (and panic args are exempt regardless).
//
//rbsglint:hotpath
func Guarded(v int) int {
	if v > 1<<40 {
		panic(fmt.Sprintf("out of range: %d", v))
	}
	return v * 3
}

// A call to an allocating same-package helper is exempt on cold paths
// too: the error-handling branch must not taint the hot caller.
//
//rbsglint:hotpath
func ColdHelperCall(v int) int { // want ColdHelperCall:`allocfree`
	if v < 0 {
		helperAllocs()
		return 0
	}
	return v * 2
}

// An allow directive excludes the construct from the fact as well, so
// the suppression does not cascade to callers.
func logged(v int) { // want logged:`allocfree`
	fmt.Println(v) //rbsglint:allow hotpathalloc -- startup-only logging, measured off the hot loop
}

//rbsglint:hotpath
func CallsLogged(v int) {
	logged(v)
}

// Unmarked functions produce facts, not diagnostics; a hot root
// calling one reports the chain at the call site.
func helperAllocs() *point { // want helperAllocs:`allocates: address-of composite literal`
	return &point{}
}

//rbsglint:hotpath
func Chain() {
	p := helperAllocs() // want `hot path: calls a\.helperAllocs, which allocates \(address-of composite literal\)`
	_ = p
}

// Two-hop chains keep the leaf construct visible.
func midAllocs() *point { // want midAllocs:`allocates: calls a\.helperAllocs`
	return helperAllocs()
}

//rbsglint:hotpath
func DeepChain() {
	p := midAllocs() // want `hot path: calls a\.midAllocs, which calls a\.helperAllocs, which allocates \(address-of composite literal\)`
	_ = p
}

// Mutual recursion cannot be proven alloc-free.
func pingPong(n int) int { // want pingPong:`allocates:.*recursive`
	if n == 0 {
		return 0
	}
	return pongPing(n - 1)
}

func pongPing(n int) int { // want pongPing:`allocates:.*recursive`
	return pingPong(n)
}

// Dynamic dispatch ends the chain: the interface method is trusted.
type sink interface{ Put(v uint64) }

//rbsglint:hotpath
func Dynamic(s sink, v uint64) { // want Dynamic:`allocfree`
	s.Put(v)
}

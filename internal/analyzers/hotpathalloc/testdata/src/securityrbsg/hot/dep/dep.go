// Package dep is the imported half of the cross-package fact fixture:
// its alloc profiles are computed first (dependency order) and
// consumed while analyzing securityrbsg/hot/use.
package dep

import "strconv"

// AppendValue writes into a caller-provided buffer via the strconv
// Append family — alloc-free.
func AppendValue(dst []byte, v uint64) []byte { // want AppendValue:`allocfree`
	dst = append(dst, 'v', '=')
	return strconv.AppendUint(dst, v, 10)
}

// Format allocates: the violation is only visible to importers
// through the exported fact.
func Format(v uint64) string { // want Format:`allocates: calls strconv\.FormatUint`
	return strconv.FormatUint(v, 10)
}

// Buffer is a tiny pooled-buffer type; its methods carry method-keyed
// facts ("Buffer.Grow").
type Buffer struct{ b []byte }

// Grow uses the amortized refill idiom.
func (u *Buffer) Grow(n int) { // want Buffer.Grow:`allocfree`
	if cap(u.b) < n {
		u.b = make([]byte, 0, n)
	}
}

// Reset allocates a fresh backing array every call.
func (u *Buffer) Reset(n int) { // want Buffer.Reset:`allocates: make`
	u.b = make([]byte, 0, n)
}

// Package use consumes securityrbsg/hot/dep: the violations below are
// only detectable through AllocProfile facts imported from the
// dependency — nothing in this package allocates directly.
package use

import "securityrbsg/hot/dep"

//rbsglint:hotpath
func EncodeHot(dst []byte, v uint64) []byte { // want EncodeHot:`allocfree`
	return dep.AppendValue(dst, v)
}

//rbsglint:hotpath
func FormatHot(v uint64) string {
	return dep.Format(v) // want `hot path: calls dep\.Format, which calls strconv\.FormatUint, which is not on the alloc-free safe list`
}

//rbsglint:hotpath
func GrowHot(b *dep.Buffer) {
	b.Grow(64)
}

//rbsglint:hotpath
func ResetHot(b *dep.Buffer) {
	b.Reset(64) // want `hot path: calls dep\.Buffer\.Reset, which allocates \(make\)`
}

// Package hotpathalloc enforces the PR 4 hot-path allocation contract:
// functions annotated //rbsglint:hotpath (the memserver actor loop, the
// pooled /v1/batch encode/decode path, the exactsim sweep kernels, the
// seclevel adaptive apply path) and everything they reach through
// static in-module calls must not allocate per operation.
//
// The analyzer computes an AllocProfile fact for every package-level
// function and method: alloc-free, or allocating with a human-readable
// why-chain. Facts flow along the import graph (dependencies are
// analyzed first), so a hot-path root in internal/memserver can see
// that a helper in internal/core allocates three calls deep.
//
// Allocating constructs: make, new, &T{} and slice/map composite
// literals, string concatenation, string<->[]byte/[]rune conversions,
// func literals, go statements, and calls to functions that are not
// provably alloc-free (an explicit stdlib safe list covers the
// arithmetic/atomic/append-style helpers the hot paths rely on; every
// other out-of-module call is treated as allocating).
//
// Exemptions keep the idiomatic amortized patterns clean without
// directives:
//
//   - cold paths: constructs inside an if-body that terminates in
//     return or panic (error handling) are ignored;
//   - amortized growth: constructs inside an if-body whose condition
//     consults cap() or len() (the pool-refill idiom) are ignored;
//   - panic arguments: panics are governed by panicpolicy, not here;
//   - append is never flagged — hot paths append into pooled,
//     pre-sized buffers, and amortized growth is the accepted idiom.
//
// Dynamic dispatch (interface methods, func values) is trusted and
// terminates the analysis chain; that blind spot is deliberate, since
// the hot paths are built from static calls. A //rbsglint:allow
// hotpathalloc directive on the offending line excludes the construct
// from both the diagnostics and the fact, so one justified suppression
// does not cascade to every caller.
package hotpathalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"securityrbsg/internal/analyzers/analysis"
)

// AllocProfile is the per-function fact: whether the function (and
// everything it reaches through static calls) is allocation-free, and
// if not, why.
type AllocProfile struct {
	Free bool
	Why  string
}

func (*AllocProfile) AFact() {}

func (f *AllocProfile) String() string {
	if f.Free {
		return "allocfree"
	}
	return "allocates: " + f.Why
}

func init() { analysis.RegisterFact(&AllocProfile{}) }

// Analyzer is the hotpathalloc pass.
var Analyzer = &analysis.Analyzer{
	Name:      "hotpathalloc",
	Doc:       "hot-path functions (//rbsglint:hotpath) and their static callees must not allocate",
	FactTypes: []analysis.Fact{&AllocProfile{}},
	Run:       run,
}

// modulePrefix scopes "in-module" resolution: callees under this path
// participate in fact propagation, everything else is stdlib.
const modulePrefix = "securityrbsg"

// safePackages lists stdlib packages whose exported functions never
// allocate on the paths the hot code uses.
var safePackages = map[string]bool{
	"sync":            true,
	"sync/atomic":     true,
	"math":            true,
	"math/bits":       true,
	"encoding/binary": true,
	"unicode/utf8":    true,
}

// safePrefixes lists full-name prefixes of individual stdlib functions
// that are alloc-free by contract (strconv's Append* family writes into
// a caller-provided buffer; the Parse family allocates only on the
// error path).
var safePrefixes = []string{
	"strconv.Append",
	"strconv.Parse",
	"strconv.Atoi",
}

// safeFuncs lists individual stdlib functions (by types.Func.FullName)
// that are alloc-free: accessors, and Append-style encoders that write
// into a caller-provided buffer (amortized like the append builtin).
var safeFuncs = map[string]bool{
	"slices.Sort":                              true,
	"(*bytes.Buffer).Reset":                    true,
	"(*bytes.Buffer).Len":                      true,
	"(*bytes.Buffer).Cap":                      true,
	"(*bytes.Buffer).Bytes":                    true,
	"(*encoding/base64.Encoding).AppendEncode": true,
	"(*encoding/base64.Encoding).AppendDecode": true,
}

// reason is one allocating construct (or allocating call) found in a
// function body.
type reason struct {
	pos token.Pos
	why string
}

// funcInfo is the per-function analysis state for the fixpoint.
type funcInfo struct {
	decl    *ast.FuncDecl
	obj     *types.Func
	marked  bool       // carries //rbsglint:hotpath
	reasons []reason   // immediate allocating constructs + resolved calls
	calls   []sameCall // unresolved same-package calls (fixpoint edges)
	free    bool       // fixpoint result
	why     string     // first reason, for the exported fact
}

// sameCall is a call site into a function of the same package.
type sameCall struct {
	pos    token.Pos
	callee *types.Func
}

func run(pass *analysis.Pass) error {
	infos := map[*types.Func]*funcInfo{}
	var order []*funcInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{
				decl:   fd,
				obj:    obj,
				marked: analysis.FuncMarked(pass.Files, pass.Fset, fd, "hotpath"),
			}
			collect(pass, fi)
			infos[obj] = fi
			order = append(order, fi)
		}
	}

	// Least fixpoint: a function is free only if it has no immediate
	// reasons and every same-package callee is free. Functions start
	// non-free, so call cycles stay non-free (conservative).
	for {
		changed := false
		for _, fi := range order {
			if fi.free || len(fi.reasons) > 0 {
				continue
			}
			ok := true
			for _, c := range fi.calls {
				callee, known := infos[c.callee]
				if !known {
					// Bodyless same-package function (assembly or
					// generated): not provably free.
					ok = false
					break
				}
				if !callee.free {
					ok = false
					break
				}
			}
			if ok {
				fi.free = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Resolve why-chains for the non-free functions, export facts, and
	// report diagnostics inside hot-path roots.
	for _, fi := range order {
		if !fi.free {
			fillReasons(infos, fi, map[*funcInfo]bool{})
			fi.why = fi.reasons[0].why
		}
		pass.ExportObjectFact(fi.obj, &AllocProfile{Free: fi.free, Why: fi.why})
		if fi.marked {
			for _, r := range fi.reasons {
				pass.Reportf(r.pos, "hot path: %s", renderWhy(r.why))
			}
		}
	}

	// Hot roots whose only problems are same-package callees were
	// handled above (their reasons got populated). But a marked root
	// with immediate reasons may *also* call non-free same-package
	// helpers; report those call sites too.
	for _, fi := range order {
		if !fi.marked || fi.free || len(fi.reasons) == 0 {
			continue
		}
		for _, c := range fi.calls {
			callee, known := infos[c.callee]
			if known && !callee.free && !hasReasonAt(fi.reasons, c.pos) {
				pass.Reportf(c.pos, "hot path: %s", renderWhy(callChainWhy(c.callee, callee.why)))
			}
		}
	}
	return nil
}

// fillReasons resolves the why-chain for a non-free function whose
// non-freeness comes only from same-package calls, depth-first so the
// chain bottoms out at a concrete construct regardless of declaration
// order. The stack guards against recursion: a cycle member's why is
// the cycle itself.
func fillReasons(infos map[*types.Func]*funcInfo, fi *funcInfo, stack map[*funcInfo]bool) {
	if fi.free || len(fi.reasons) > 0 {
		return
	}
	stack[fi] = true
	defer delete(stack, fi)
	for _, c := range fi.calls {
		callee, known := infos[c.callee]
		if !known {
			fi.reasons = append(fi.reasons, reason{c.pos, fmt.Sprintf("calls %s, which has no body to analyze", c.callee.Name())})
			continue
		}
		if callee.free {
			continue
		}
		if stack[callee] {
			fi.reasons = append(fi.reasons, reason{c.pos, fmt.Sprintf("calls %s, which is recursive (cannot prove alloc-free)", calleeNameOf(c.callee))})
			continue
		}
		fillReasons(infos, callee, stack)
		why := "recursive call cycle (cannot prove alloc-free)"
		if len(callee.reasons) > 0 {
			why = callee.reasons[0].why
		}
		fi.reasons = append(fi.reasons, reason{c.pos, callChainWhy(c.callee, why)})
	}
	if len(fi.reasons) == 0 {
		fi.reasons = append(fi.reasons, reason{fi.decl.Pos(), "recursive call cycle (cannot prove alloc-free)"})
	}
}

// renderWhy turns a stored reason into diagnostic prose: call-chain
// reasons are already clauses, construct reasons get the verb.
func renderWhy(why string) string {
	if strings.HasPrefix(why, "calls ") || strings.HasPrefix(why, "recursive ") {
		return why
	}
	return why + " allocates"
}

func hasReasonAt(rs []reason, pos token.Pos) bool {
	for _, r := range rs {
		if r.pos == pos {
			return true
		}
	}
	return false
}

// callChainWhy builds the why string for a call to a non-free callee,
// truncating deep chains so facts stay readable. Construct reasons are
// stored as noun phrases ("make", "string concatenation"), so a
// one-hop chain reads "calls p.f, which allocates (make)"; deeper
// chains nest as "calls p.f, which calls q.g, ...".
func callChainWhy(callee *types.Func, calleeWhy string) string {
	var why string
	if strings.HasPrefix(calleeWhy, "calls ") || strings.HasPrefix(calleeWhy, "recursive ") {
		why = fmt.Sprintf("calls %s, which %s", calleeNameOf(callee), calleeWhy)
	} else {
		why = fmt.Sprintf("calls %s, which allocates (%s)", calleeNameOf(callee), calleeWhy)
	}
	if len(why) > 220 {
		why = why[:217] + "..."
	}
	return why
}

// calleeNameOf renders a callee compactly: pkg.Func or pkg.Recv.Method.
func calleeNameOf(fn *types.Func) string {
	name := fn.Name()
	if key, ok := analysis.ObjectKey(fn); ok {
		name = key
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// collect walks one function body recording allocating constructs and
// static call edges, applying the cold-path / amortized-growth / panic
// / allow-directive exemptions.
func collect(pass *analysis.Pass, fi *funcInfo) {
	exempt := exemptRanges(pass, fi.decl.Body)
	skip := func(pos token.Pos) bool {
		if pass.Allowed(pos) {
			return true
		}
		for _, r := range exempt {
			if pos >= r[0] && pos <= r[1] {
				return true
			}
		}
		return false
	}
	add := func(pos token.Pos, why string) {
		if !skip(pos) {
			fi.reasons = append(fi.reasons, reason{pos, why})
		}
	}

	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			add(n.Pos(), "go statement")
		case *ast.FuncLit:
			add(n.Pos(), "function literal")
			return false // its body runs elsewhere
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.TypeOf(n)) {
				add(n.Pos(), "string concatenation")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					add(n.Pos(), "address-of composite literal")
				}
			}
		case *ast.CompositeLit:
			t := pass.TypeOf(n)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					add(n.Pos(), "slice literal")
				case *types.Map:
					add(n.Pos(), "map literal")
				}
			}
		case *ast.CallExpr:
			collectCall(pass, fi, n, add, skip)
		}
		return true
	})
}

// collectCall classifies one call expression. add already applies the
// exemptions; skip is the same filter, used for same-package call edges
// (a call on a cold path must not taint the caller either).
func collectCall(pass *analysis.Pass, fi *funcInfo, call *ast.CallExpr, add func(token.Pos, string), skip func(token.Pos) bool) {
	// Type conversions: string <-> []byte/[]rune copy.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			to, from := tv.Type, pass.TypeOf(call.Args[0])
			if conversionAllocates(to, from) {
				add(call.Pos(), fmt.Sprintf("conversion %s(%s)", to, from))
			}
		}
		return
	}

	// Builtins.
	if id := calleeIdent(call.Fun); id != nil {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(call.Pos(), "make")
			case "new":
				add(call.Pos(), "new")
			case "print", "println":
				add(call.Pos(), b.Name())
			}
			return
		}
	}

	fn := staticCallee(pass.TypesInfo, call)
	if fn == nil {
		return // dynamic dispatch or func value: trusted, chain ends
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return // universe scope (error.Error via embedding, etc.)
	}
	if pkg == pass.Pkg {
		if !skip(call.Pos()) {
			fi.calls = append(fi.calls, sameCall{call.Pos(), fn})
		}
		return
	}
	path := pkg.Path()
	if path == modulePrefix || strings.HasPrefix(path, modulePrefix+"/") {
		var prof AllocProfile
		if pass.ImportObjectFact(fn, &prof) {
			if !prof.Free {
				add(call.Pos(), callChainWhy(fn, prof.Why))
			}
			return
		}
		if pass.SeenPackage(path) {
			// Analyzed, no profile: a bodyless function.
			add(call.Pos(), fmt.Sprintf("calls %s, which has no alloc profile", calleeNameOf(fn)))
		}
		// Package never analyzed (partial vet run): trust it rather
		// than flagging every cross-package call.
		return
	}
	// Out of module: safe list or deny.
	if safePackages[path] {
		return
	}
	full := fn.FullName()
	if safeFuncs[full] {
		return
	}
	for _, p := range safePrefixes {
		if strings.HasPrefix(full, p) {
			return
		}
	}
	add(call.Pos(), fmt.Sprintf("calls %s, which is not on the alloc-free safe list", full))
}

// staticCallee resolves a call to the *types.Func it statically
// invokes, or nil for dynamic dispatch (interface methods, func
// values) and non-function callees.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			if fn == nil {
				return nil
			}
			if types.IsInterface(recvType(fn)) {
				return nil // dynamic dispatch
			}
			return fn
		}
		// Qualified identifier: pkg.Func.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func recvType(fn *types.Func) types.Type {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

func calleeIdent(fun ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(fun).(*ast.Ident)
	return id
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// conversionAllocates reports whether a conversion from -> to copies
// its operand into fresh memory (string <-> []byte/[]rune).
func conversionAllocates(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	return (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// exemptRanges returns the source ranges where allocating constructs
// are sanctioned without a directive: bodies of if statements that
// terminate in return/panic (cold error paths), bodies of if
// statements whose condition consults cap() or len() (the amortized
// pool-refill idiom), and panic call arguments.
func exemptRanges(pass *analysis.Pass, body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if blockTerminates(pass, n.Body) || condConsultsCapLen(pass, n.Cond) {
				out = append(out, [2]token.Pos{n.Body.Pos(), n.Body.End()})
			}
		case *ast.CallExpr:
			if id := calleeIdent(n.Fun); id != nil {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					out = append(out, [2]token.Pos{n.Lparen, n.End()})
				}
			}
		}
		return true
	})
	return out
}

// blockTerminates reports whether a block's last statement is a
// return or a call to panic.
func blockTerminates(pass *analysis.Pass, b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id := calleeIdent(call.Fun); id != nil {
				if bi, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && bi.Name() == "panic" {
					return true
				}
			}
		}
	}
	return false
}

// condConsultsCapLen reports whether an if condition contains a call
// to the cap or len builtin — the shape of every amortized buffer
// refill in the tree (`if cap(buf) < n { buf = make(...) }`).
func condConsultsCapLen(pass *analysis.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id := calleeIdent(call.Fun); id != nil {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && (b.Name() == "cap" || b.Name() == "len") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

package bankisolation_test

import (
	"testing"

	"securityrbsg/internal/analyzers/analysistest"
	"securityrbsg/internal/analyzers/bankisolation"
)

func TestBankIsolation(t *testing.T) {
	analysistest.Run(t, bankisolation.Analyzer,
		"securityrbsg/internal/lab",
		"securityrbsg/internal/memserver",
	)
}

// Package lab exercises the bankisolation rules from a simulation
// package (any package outside the exempt actor layer).
package lab

import (
	"securityrbsg/internal/membank"
	"securityrbsg/internal/parallel"
	"securityrbsg/internal/pcm"
)

func capture() {
	bank := membank.New(8)
	go func() {
		bank.Write(0) // want `"bank" \(membank\.Bank\) is captured by a goroutine`
	}()
}

func argEscape() {
	bank := membank.New(8)
	go hammer(bank) // want `membank\.Bank escapes into a goroutine`
}

func hammer(b *membank.Bank) { b.Write(0) }

func methodSpawn() {
	bank := membank.New(8)
	go bank.Write(0) // want `method of membank\.Bank runs on a goroutine`
}

func workers() {
	bank := membank.New(8)
	parallel.ForEach(4, 2, func(i int) {
		bank.Write(uint64(i)) // want `"bank" \(membank\.Bank\) is captured by parallel\.ForEach workers`
	})
}

func perGoroutine(n int) {
	for i := 0; i < n; i++ {
		go func() {
			bank := membank.New(8) // constructed inside: each goroutine owns its own
			bank.Write(0)
		}()
	}
}

func values(c pcm.Content) {
	go func() {
		_ = c // named basic kind: sharing a copy of a number is fine
	}()
}

func allowed() {
	bank := membank.New(8)
	go func() {
		//rbsglint:allow bankisolation -- fixture: ownership handed off; spawner never touches bank again
		bank.Write(0)
	}()
}

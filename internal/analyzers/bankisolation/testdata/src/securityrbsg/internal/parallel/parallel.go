// Package parallel is a fixture stub of the goroutine-spawning helper
// package: closures handed to it run on many goroutines at once.
package parallel

// ForEach runs fn(i) for i in [0,n) on worker goroutines.
func ForEach(n, workers int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// Package membank is a fixture stub of the real interleaved-memory
// package: a named struct type from a restricted simulation-state
// package, plus the methods the consumer fixtures call.
package membank

// Bank is single-writer simulation state.
type Bank struct{ writes uint64 }

// New returns a fresh bank.
func New(lines uint64) *Bank { return &Bank{} }

// Write books one write.
func (b *Bank) Write(la uint64) { b.writes++ }

// Package pcm is a fixture stub: Content is a named *basic* type from
// a restricted package — sharing a copy of it across goroutines is
// harmless and must not be flagged.
package pcm

// Content is a content class (a plain number).
type Content uint8

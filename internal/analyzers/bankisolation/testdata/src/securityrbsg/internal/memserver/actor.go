// Package memserver is a fixture stub of the sanctioned actor layer:
// the same captures that are violations elsewhere are legal here.
package memserver

import "securityrbsg/internal/membank"

// Actors multiplexes goroutines over bank state — the blessed pattern.
func Actors() {
	bank := membank.New(8)
	go func() {
		bank.Write(0) // exempt package: no diagnostic
	}()
}

// Package bankisolation mechanizes the membank godoc contract: scheme,
// PCM and bank state is single-writer — exactly one goroutine may touch
// a given instance — and the only sanctioned place to multiplex
// goroutines over that state is internal/memserver's actor layer.
//
// The pass flags, in every package except internal/memserver (the actor
// layer) and internal/parallel (the spawn helper itself):
//
//   - `go` statements whose function literal captures a variable of a
//     restricted simulation type declared outside the literal;
//   - `go` statements that call a method on, or pass an argument of, a
//     restricted type (the value escapes to the new goroutine);
//   - calls to internal/parallel helpers whose worker closure captures
//     a restricted value — those closures run on many goroutines at
//     once.
//
// Restricted types are the named struct and interface types of the
// simulation-state packages (membank, pcm, wear, core, rbsg, secref,
// startgap, tablewl, feistel, detector, stats, workload, attack).
// Plain value kinds like pcm.Content (a uint8) are not restricted:
// sharing a copy of a number is harmless, sharing a scheme is not.
// Constructing a fresh instance inside the goroutine is always legal —
// that is precisely the per-worker pattern the Monte-Carlo estimators
// use.
package bankisolation

import (
	"go/ast"
	"go/types"

	"securityrbsg/internal/analyzers/analysis"
)

// Analyzer is the bankisolation pass.
var Analyzer = &analysis.Analyzer{
	Name: "bankisolation",
	Doc:  "forbid sharing scheme/PCM/bank state across goroutines outside the memserver actor layer",
	Run:  run,
}

// exemptPkgs may share simulation state across goroutines: memserver is
// the actor layer the contract blesses, parallel implements the
// spawning itself.
var exemptPkgs = map[string]bool{
	"securityrbsg/internal/memserver": true,
	"securityrbsg/internal/parallel":  true,
}

// statePkgs define the non-thread-safe simulation state.
var statePkgs = map[string]bool{
	"securityrbsg/internal/membank":  true,
	"securityrbsg/internal/pcm":      true,
	"securityrbsg/internal/wear":     true,
	"securityrbsg/internal/core":     true,
	"securityrbsg/internal/rbsg":     true,
	"securityrbsg/internal/secref":   true,
	"securityrbsg/internal/startgap": true,
	"securityrbsg/internal/tablewl":  true,
	"securityrbsg/internal/feistel":  true,
	"securityrbsg/internal/detector": true,
	"securityrbsg/internal/stats":    true,
	"securityrbsg/internal/workload": true,
	"securityrbsg/internal/attack":   true,
	"securityrbsg/internal/exactsim": true,
}

// parallelPkg is the goroutine-spawning helper package: function
// literals passed to it run concurrently on worker goroutines.
const parallelPkg = "securityrbsg/internal/parallel"

func run(pass *analysis.Pass) error {
	if exemptPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkSpawn(pass, n.Call, "a goroutine")
			case *ast.CallExpr:
				if name, ok := parallelHelper(pass, n); ok {
					for _, arg := range n.Args {
						if lit, ok := arg.(*ast.FuncLit); ok {
							checkCaptures(pass, lit, "parallel."+name+" workers")
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// parallelHelper reports whether call invokes a function from the
// internal/parallel package, returning its name.
func parallelHelper(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != parallelPkg {
		return "", false
	}
	if _, ok := obj.(*types.Func); !ok {
		return "", false
	}
	return obj.Name(), true
}

// checkSpawn inspects the call expression of a `go` statement. A
// function literal is checked for captures; a regular call leaks its
// receiver and arguments into the new goroutine, so those are checked
// directly.
func checkSpawn(pass *analysis.Pass, call *ast.CallExpr, where string) {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		checkCaptures(pass, lit, where)
		// Evaluated arguments still escape: `go func(b *membank.Bank)
		// {...}(bank)` shares bank just as surely as a capture.
	}
	for _, arg := range call.Args {
		if name, ok := restricted(pass.TypeOf(arg)); ok {
			pass.Reportf(arg.Pos(), "%s escapes into %s: simulation state is single-writer per bank (membank contract); confine it to one goroutine or go through internal/memserver's actors", name, where)
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if name, ok := restricted(pass.TypeOf(sel.X)); ok {
			pass.Reportf(call.Pos(), "method of %s runs on %s: simulation state is single-writer per bank (membank contract); confine it to one goroutine or go through internal/memserver's actors", name, where)
		}
	}
}

// checkCaptures reports every free variable of restricted type used
// inside the function literal but declared outside it.
func checkCaptures(pass *analysis.Pass, lit *ast.FuncLit, where string) {
	reported := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id]
		if !ok {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || reported[v] {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal: fresh per goroutine
		}
		if name, ok := restricted(v.Type()); ok {
			reported[v] = true
			pass.Reportf(id.Pos(), "%q (%s) is captured by %s: simulation state is single-writer per bank (membank contract); construct it inside the goroutine or go through internal/memserver's actors", v.Name(), name, where)
		}
		return true
	})
}

// restricted reports whether t is (or contains, through pointers,
// slices, arrays, maps or channels) a named struct or interface type
// from a simulation-state package.
func restricted(t types.Type) (string, bool) {
	for depth := 0; t != nil && depth < 10; depth++ {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Chan:
			t = u.Elem()
		case *types.Named:
			obj := u.Obj()
			if obj.Pkg() != nil && statePkgs[obj.Pkg().Path()] {
				switch u.Underlying().(type) {
				case *types.Struct, *types.Interface:
					return obj.Pkg().Name() + "." + obj.Name(), true
				}
			}
			return "", false
		case *types.Alias:
			t = types.Unalias(u)
		default:
			return "", false
		}
	}
	return "", false
}

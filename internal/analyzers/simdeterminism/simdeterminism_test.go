package simdeterminism_test

import (
	"testing"

	"securityrbsg/internal/analyzers/analysistest"
	"securityrbsg/internal/analyzers/simdeterminism"
)

func TestSimdeterminism(t *testing.T) {
	analysistest.Run(t, simdeterminism.Analyzer, "sim")
}

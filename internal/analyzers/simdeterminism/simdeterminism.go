// Package simdeterminism enforces the repo's reproducibility contract:
// a simulation result is a pure function of its configuration and seed.
//
// The runner's sharding guarantee (workers=8 bit-identical to
// workers=1) and every regression baseline in results/ depend on no
// simulation code observing the environment. This pass therefore
// forbids, anywhere in the module:
//
//   - wall-clock reads (time.Now, time.Since, time.Until) — simulated
//     time comes from the PCM device clock, never the host's;
//   - math/rand global state (rand.Intn, rand.Seed, rand.Shuffle, ...)
//     — it is seeded per process and shared across goroutines, so the
//     draw order depends on scheduling;
//   - any other math/rand use (rand.New, rand.NewZipf, ...) unless the
//     source is the deterministic stats.RNG adapter and the call site
//     says so with an allow directive;
//   - crypto/rand — key material must derive from the run seed through
//     stats.RNG so a cell can be replayed.
//
// Legitimate wall-clock reads exist (progress telemetry, load
// generators measure real latency); they are annotated in place:
//
//	//rbsglint:allow simdeterminism -- wall-clock is the measurement, not sim state
//
// Type references (e.g. a *rand.Zipf struct field) are not flagged;
// only executable uses are.
package simdeterminism

import (
	"go/types"

	"securityrbsg/internal/analyzers/analysis"
)

// Analyzer is the simdeterminism pass.
var Analyzer = &analysis.Analyzer{
	Name: "simdeterminism",
	Doc:  "forbid wall-clock reads and ambient randomness in simulation code",
	Run:  run,
}

// wallClock lists the time package's wall-clock reads. Constructs like
// time.NewTicker or time.Sleep pace real execution but never feed a
// value back into simulation state, so they stay legal.
var wallClock = map[string]bool{"Now": true, "Since": true, "Until": true}

// globalRand lists math/rand package-level functions and variables
// backed by the shared global source.
var globalRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

func run(pass *analysis.Pass) error {
	for id, obj := range pass.TypesInfo.Uses {
		pkg := obj.Pkg()
		if pkg == nil {
			continue
		}
		if _, isType := obj.(*types.TypeName); isType {
			continue // rand.Zipf in a field or var declaration is fine
		}
		if _, isPkgName := obj.(*types.PkgName); isPkgName {
			continue // the import reference itself; uses are flagged below
		}
		if fn, isFunc := obj.(*types.Func); isFunc {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				// Methods (e.g. (*rand.Zipf).Uint64) draw from whatever
				// source the value was built on; the construction site is
				// where determinism is decided and flagged.
				continue
			}
		}
		switch pkg.Path() {
		case "time":
			if wallClock[obj.Name()] {
				pass.Reportf(id.Pos(), "wall-clock read time.%s: simulation state must be a pure function of config and seed (use the device clock, or annotate runtime telemetry with //rbsglint:allow)", obj.Name())
			}
		case "math/rand", "math/rand/v2":
			if globalRand[obj.Name()] {
				pass.Reportf(id.Pos(), "math/rand global state (rand.%s) is process-seeded and shared across goroutines: draw from the per-cell stats.RNG instead", obj.Name())
			} else {
				pass.Reportf(id.Pos(), "math/rand use (rand.%s) in simulation code: route randomness through the deterministic stats.RNG adapter and annotate the call site with //rbsglint:allow", obj.Name())
			}
		case "crypto/rand":
			pass.Reportf(id.Pos(), "crypto/rand (%s) is nondeterministic: remap keys must derive from the run seed via stats.RNG so cells replay bit-identically", obj.Name())
		}
	}
	return nil
}

// Package sim exercises every simdeterminism rule: wall-clock reads,
// math/rand global state, routed math/rand use, crypto/rand, and the
// allow-directive behavior with and without a reason.
package sim

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

func clocks() {
	_ = time.Now()          // want `wall-clock read time\.Now`
	t0 := time.Unix(0, 0)   // constructing a time from data is fine
	_ = time.Since(t0)      // want `wall-clock read time\.Since`
	_ = time.Until(t0)      // want `wall-clock read time\.Until`
	_ = t0.Add(time.Second) // methods and constants are fine
}

func globals() {
	_ = rand.Intn(8)                   // want `math/rand global state \(rand\.Intn\)`
	rand.Seed(1)                       // want `math/rand global state \(rand\.Seed\)`
	rand.Shuffle(2, func(i, j int) {}) // want `math/rand global state \(rand\.Shuffle\)`
}

func routed() {
	r := rand.New(rand.NewSource(1)) // want `math/rand use \(rand\.New\)` `math/rand use \(rand\.NewSource\)`
	_ = r.Intn(4)                    // methods on an explicit-source Rand are not re-flagged
}

// shaper only names a math/rand type; type references are not flagged.
type shaper struct {
	z *rand.Zipf
}

func keys() {
	b := make([]byte, 8)
	crand.Read(b) // want `crypto/rand \(Read\) is nondeterministic`
}

func allowed() {
	//rbsglint:allow simdeterminism -- fixture: sanctioned adapter construction, seeded from the cell seed
	r := rand.New(rand.NewSource(1))
	_ = r
}

func missingReason() {
	//rbsglint:allow simdeterminism // want `a reason is required`
	_ = time.Now() // want `wall-clock read time\.Now`
}

package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// FuzzParseDirectives hammers the allow-directive grammar with
// arbitrary comment text. The parser must never panic, and the
// structural invariants must hold on every input it accepts:
//
//   - every set entry names a non-empty analyzer, and each named
//     analyzer appears in uses (the stale-suppression feed);
//   - a comment is either a valid directive or a malformed-directive
//     diagnostic, never both;
//   - malformed diagnostics carry the framework analyzer name so they
//     cannot be suppressed by any per-analyzer directive.
func FuzzParseDirectives(f *testing.F) {
	f.Add("//rbsglint:allow simdeterminism -- seeded clock for replay")
	f.Add("//rbsglint:allow a,b -- two analyzers, one line")
	f.Add("//rbsglint:allow hotpathalloc --")
	f.Add("//rbsglint:allow -- no analyzer named")
	f.Add("//rbsglint:allow , , -- only separators")
	f.Add("//rbsglint:allowx -- not the directive")
	f.Add("// rbsglint:allow spaced -- prefix must be flush")
	f.Add("//rbsglint:allow\ta\t--\treason")
	f.Add("//rbsglint:allow a -- r -- s")
	f.Add("//rbsglint:allow \x00 -- nul")
	f.Fuzz(func(t *testing.T, comment string) {
		// Keep the fuzzed text a single line comment: newlines would
		// change the file shape rather than the directive grammar.
		comment = strings.Map(func(r rune) rune {
			if r == '\n' || r == '\r' {
				return ' '
			}
			return r
		}, comment)
		src := "package p\n\n//" + comment + "\nfunc f() {}\n"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
		if err != nil {
			t.Skip() // not a parseable comment; grammar never sees it
		}
		set, uses, malformed := parseDirectives(fset, []*ast.File{file})

		named := map[string]bool{}
		for _, u := range uses {
			if u.analyzer == "" {
				t.Fatalf("use with empty analyzer name for %q", comment)
			}
			named[u.analyzer] = true
		}
		for k := range set {
			if k.analyzer == "" {
				t.Fatalf("set entry with empty analyzer name for %q", comment)
			}
			if !named[k.analyzer] {
				t.Fatalf("set entry %q missing from uses for %q", k.analyzer, comment)
			}
		}
		if len(set) > 0 && len(malformed) > 0 {
			t.Fatalf("comment both accepted and malformed: %q", comment)
		}
		for _, d := range malformed {
			if d.Analyzer != "rbsglint" {
				t.Fatalf("malformed diagnostic attributed to %q, want rbsglint", d.Analyzer)
			}
			if !strings.Contains(d.Message, "malformed") {
				t.Fatalf("malformed diagnostic without marker: %q", d.Message)
			}
		}
	})
}

package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The allow directive grammar is
//
//	//rbsglint:allow <analyzer>[,<analyzer>...] -- <reason>
//
// placed either at the end of the offending line or on its own line
// directly above it. The reason is not decoration: a directive without
// one is reported as a violation and suppresses nothing, so every
// suppression in the tree carries a written justification at the call
// site.
const directivePrefix = "rbsglint:allow"

// directiveSet indexes valid directives by (file, line, analyzer).
type directiveSet map[directiveKey]bool

type directiveKey struct {
	file     string
	line     int
	analyzer string
}

// suppresses reports whether a valid directive for analyzer name covers
// a diagnostic at pos (directive on the same line or the line above).
func (s directiveSet) suppresses(name string, pos token.Position) bool {
	return s[directiveKey{pos.Filename, pos.Line, name}] ||
		s[directiveKey{pos.Filename, pos.Line - 1, name}]
}

// directiveUse records one analyzer name appearing in a well-formed
// directive, so the framework can flag stale suppressions (names no
// running analyzer answers to).
type directiveUse struct {
	pos      token.Pos
	analyzer string
}

// parseDirectives extracts every rbsglint:allow directive from the
// files. Well-formed ones land in the returned set (with their analyzer
// names in uses); malformed ones (missing analyzer list or missing
// " -- reason") become framework diagnostics that cannot themselves be
// suppressed.
func parseDirectives(fset *token.FileSet, files []*ast.File) (directiveSet, []directiveUse, []Diagnostic) {
	set := directiveSet{}
	var uses []directiveUse
	var malformed []Diagnostic
	report := func(pos token.Pos, msg string) {
		malformed = append(malformed, Diagnostic{
			Analyzer: "rbsglint",
			Pos:      fset.Position(pos),
			Message:  msg,
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
				if !ok {
					continue
				}
				names, reason, found := strings.Cut(text, " -- ")
				if !found || strings.TrimSpace(reason) == "" {
					report(c.Pos(), "malformed "+directivePrefix+" directive: a reason is required (\"//"+directivePrefix+" <analyzer> -- <reason>\")")
					continue
				}
				pos := fset.Position(c.Pos())
				any := false
				for _, n := range strings.Split(names, ",") {
					n = strings.TrimSpace(n)
					if n == "" {
						continue
					}
					any = true
					set[directiveKey{pos.Filename, pos.Line, n}] = true
					uses = append(uses, directiveUse{pos: c.Pos(), analyzer: n})
				}
				if !any {
					report(c.Pos(), "malformed "+directivePrefix+" directive: no analyzer named")
				}
			}
		}
	}
	return set, uses, malformed
}

package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (directiveSet, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture source: %v", err)
	}
	set, _, malformed := parseDirectives(fset, []*ast.File{f})
	return set, malformed
}

func TestDirectiveParsing(t *testing.T) {
	set, malformed := parseSrc(t, `package p

func a() {
	//rbsglint:allow simdeterminism -- measured throughput needs the wall clock
	_ = 1
}

func b() {
	_ = 2 //rbsglint:allow simdeterminism,panicpolicy -- two contracts waived at once
}
`)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed directives: %v", malformed)
	}

	// The directive in a() sits on line 4; it must cover a diagnostic on
	// its own line and on the line below, and nothing else.
	at := func(line int) token.Position { return token.Position{Filename: "p.go", Line: line} }
	if !set.suppresses("simdeterminism", at(4)) || !set.suppresses("simdeterminism", at(5)) {
		t.Error("directive above the statement does not cover it")
	}
	if set.suppresses("simdeterminism", at(6)) {
		t.Error("directive leaks past the line below it")
	}
	if set.suppresses("panicpolicy", at(5)) {
		t.Error("directive suppresses an analyzer it does not name")
	}

	// The end-of-line directive in b() (line 9) names two analyzers.
	for _, name := range []string{"simdeterminism", "panicpolicy"} {
		if !set.suppresses(name, at(9)) {
			t.Errorf("comma list does not cover %s", name)
		}
	}
	if set.suppresses("bankisolation", at(9)) {
		t.Error("comma list covers an unnamed analyzer")
	}
}

func TestDirectiveRequiresReason(t *testing.T) {
	set, malformed := parseSrc(t, `package p

func a() {
	//rbsglint:allow simdeterminism
	_ = 1
}
`)
	if set.suppresses("simdeterminism", token.Position{Filename: "p.go", Line: 5}) {
		t.Error("reasonless directive still suppresses")
	}
	if len(malformed) != 1 || !strings.Contains(malformed[0].Message, "a reason is required") {
		t.Fatalf("want one 'reason is required' diagnostic, got %v", malformed)
	}
	if malformed[0].Analyzer != "rbsglint" {
		t.Errorf("malformed-directive diagnostic attributed to %q, want rbsglint", malformed[0].Analyzer)
	}
}

func TestDirectiveRequiresAnalyzer(t *testing.T) {
	_, malformed := parseSrc(t, `package p

func a() {
	//rbsglint:allow -- a reason with nobody named
	_ = 1
}
`)
	if len(malformed) != 1 || !strings.Contains(malformed[0].Message, "no analyzer named") {
		t.Fatalf("want one 'no analyzer named' diagnostic, got %v", malformed)
	}
}

package analysis

import (
	"reflect"
	"testing"
)

// tripFact is a registered fact type for the round-trip tests.
type tripFact struct {
	Free bool
	Why  string
}

func (*tripFact) AFact() {}

func init() { RegisterFact(&tripFact{}) }

// TestFactsRoundTrip proves the .vetx payload contract: EncodePackage
// then DecodePackage into a fresh store reproduces every fact, keyed
// identically, and leaves other packages' facts behind.
func TestFactsRoundTrip(t *testing.T) {
	src := NewFacts()
	src.addPackage("m/a")
	src.set(factKey{pkg: "m/a", obj: "Encode", typ: factType(&tripFact{})},
		&tripFact{Free: true})
	src.set(factKey{pkg: "m/a", obj: "Buffer.Grow", typ: factType(&tripFact{})},
		&tripFact{Why: "make"})
	src.set(factKey{pkg: "m/a", obj: "", typ: factType(&tripFact{})},
		&tripFact{Why: "package fact"})
	src.set(factKey{pkg: "m/other", obj: "Stay", typ: factType(&tripFact{})},
		&tripFact{Free: true})

	payload, err := src.EncodePackage("m/a")
	if err != nil {
		t.Fatal(err)
	}

	dst := NewFacts()
	if dst.SeenPackage("m/a") {
		t.Fatal("fresh store claims to have seen m/a")
	}
	if err := dst.DecodePackage("m/a", payload); err != nil {
		t.Fatal(err)
	}
	if !dst.SeenPackage("m/a") {
		t.Error("decoded package not marked as seen")
	}
	got, want := dst.PackageFacts("m/a"), src.PackageFacts("m/a")
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip changed facts:\n got %v\nwant %v", got, want)
	}
	if facts := dst.PackageFacts("m/other"); len(facts) != 0 {
		t.Errorf("foreign package facts leaked through: %v", facts)
	}
}

// TestFactsEmptyPayload pins the "analyzed, no facts" encoding: the
// payload round-trips, marks the package as seen, and stores nothing —
// that is how a dependent distinguishes a clean dependency from one
// the run never reached.
func TestFactsEmptyPayload(t *testing.T) {
	src := NewFacts()
	src.addPackage("m/clean")
	payload, err := src.EncodePackage("m/clean")
	if err != nil {
		t.Fatal(err)
	}

	dst := NewFacts()
	if err := dst.DecodePackage("m/clean", payload); err != nil {
		t.Fatal(err)
	}
	if !dst.SeenPackage("m/clean") {
		t.Error("empty payload must still mark the package as seen")
	}
	if facts := dst.PackageFacts("m/clean"); len(facts) != 0 {
		t.Errorf("empty payload decoded facts: %v", facts)
	}

	// A zero-byte file (the pre-facts vetx format) is also valid.
	if err := dst.DecodePackage("m/legacy", nil); err != nil {
		t.Fatal(err)
	}
	if !dst.SeenPackage("m/legacy") {
		t.Error("nil payload must still mark the package as seen")
	}
}

// TestFactsDecodeGarbage: corrupt payloads fail loudly rather than
// silently dropping facts (a dependent would otherwise mistake the
// dependency for fact-free and trust it).
func TestFactsDecodeGarbage(t *testing.T) {
	dst := NewFacts()
	if err := dst.DecodePackage("m/bad", []byte("not gob")); err == nil {
		t.Fatal("decoding garbage succeeded, want error")
	}
}

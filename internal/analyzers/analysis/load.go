package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// FactsOnly marks a dependency loaded solely so fact-producing
	// analyzers can observe it: it contributes facts to the store but
	// no diagnostics (mirroring the vet protocol's VetxOnly mode).
	FactsOnly bool
}

// listedPackage is the subset of `go list -json` output the loaders use.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -json -export -deps` in dir over the given
// patterns and decodes the package stream. Export data for every
// listed package comes from the build cache, so the loaders can
// type-check against compiled imports without network access or any
// dependency beyond the go toolchain itself.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-e", "-json", "-export", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// newExportImporter returns a types importer that resolves import paths
// through compiled export data files, consulting local first (when not
// nil) so fixture packages can shadow or extend the real ones.
func newExportImporter(fset *token.FileSet, exports map[string]string, local func(path string) (*types.Package, bool, error)) types.ImporterFrom {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &exportImporter{
		gc:    importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom),
		local: local,
	}
}

type exportImporter struct {
	gc    types.ImporterFrom
	local func(path string) (*types.Package, bool, error)
}

func (i *exportImporter) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, "", 0)
}

func (i *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if i.local != nil {
		if pkg, ok, err := i.local(path); ok || err != nil {
			return pkg, err
		}
	}
	return i.gc.ImportFrom(path, dir, mode)
}

// newInfo allocates the types.Info maps the analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// parseDir parses the named files of one package directory.
func parseDir(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Load type-checks the non-test compilation of every package matched by
// patterns (relative to dir, e.g. "./...") and returns them in
// dependency order (imports before importers — the order `go list
// -deps` emits), so facts computed for a dependency are in the store by
// the time its dependents are analyzed. It shells out to `go list
// -export` once, so the standard library arrives as compiled export
// data; matched packages are parsed from source, and unmatched
// in-module dependencies (reachable when patterns name a subset of the
// module) are parsed too but marked FactsOnly — they contribute facts,
// not diagnostics.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var broken []string
	for _, p := range listed {
		if p.Error != nil {
			broken = append(broken, fmt.Sprintf("%s: %s", p.ImportPath, p.Error.Err))
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	if len(broken) > 0 {
		return nil, fmt.Errorf("cannot load:\n  %s", strings.Join(broken, "\n  "))
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports, nil)
	var out []*Package
	for _, p := range listed {
		if p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		files, err := parseDir(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", p.ImportPath, err)
		}
		out = append(out, &Package{
			Path:      p.ImportPath,
			Dir:       p.Dir,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
			FactsOnly: p.DepOnly,
		})
	}
	return out, nil
}

// LoadFiles type-checks a single compilation from an explicit file
// list, resolving every import through the exports lookup (import path
// → export data file). This is the loader behind the `go vet -vettool`
// protocol, where cmd/go has already compiled the dependency graph and
// hands us the export file of each import.
func LoadFiles(importPath, dir string, goFiles []string, exports func(path string) (string, bool)) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports(path)
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := &exportImporter{gc: importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: importPath, Dir: dir, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}, nil
}

// LoadFixtures type-checks fixture packages laid out GOPATH-style under
// srcRoot (srcRoot/<import path>/*.go) and returns packages for the
// requested paths. Imports resolve within srcRoot first — so fixtures
// can stub module packages like securityrbsg/internal/membank — and
// fall back to the standard library via build-cache export data.
func LoadFixtures(srcRoot string, paths ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	l := &fixtureLoader{
		root: srcRoot,
		fset: fset,
		pkgs: map[string]*Package{},
	}
	// Pre-resolve every non-local import reachable from the fixtures in
	// one `go list` pass so the importer below never touches the tools
	// again.
	std, err := l.collectExternalImports(paths)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	if len(std) > 0 {
		listed, err := goList(srcRoot, std)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, fmt.Errorf("fixture import %s: %s", p.ImportPath, p.Error.Err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	l.imp = newExportImporter(fset, exports, func(path string) (*types.Package, bool, error) {
		if !l.isLocal(path) {
			return nil, false, nil
		}
		pkg, err := l.load(path)
		if err != nil {
			return nil, true, err
		}
		return pkg.Types, true, nil
	})

	var out []*Package
	for _, path := range paths {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

type fixtureLoader struct {
	root string
	fset *token.FileSet
	imp  types.ImporterFrom
	pkgs map[string]*Package
}

func (l *fixtureLoader) isLocal(path string) bool {
	fi, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path)))
	return err == nil && fi.IsDir()
}

// goFiles lists the non-test .go files of a local fixture package.
func (l *fixtureLoader) goFiles(path string) ([]string, error) {
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("fixture package %s has no Go files", path)
	}
	sort.Strings(names)
	return names, nil
}

func (l *fixtureLoader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("fixture import cycle through %s", path)
		}
		return pkg, nil
	}
	l.pkgs[path] = nil // cycle marker
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	names, err := l.goFiles(path)
	if err != nil {
		return nil, err
	}
	files, err := parseDir(l.fset, dir, names)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck fixture %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, TypesInfo: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// collectExternalImports walks the fixture import graph from the given
// roots and returns every import path that does not resolve under
// srcRoot (i.e. the standard-library imports the fixtures use).
func (l *fixtureLoader) collectExternalImports(roots []string) ([]string, error) {
	seen := map[string]bool{}
	external := map[string]bool{}
	var visit func(path string) error
	visit = func(path string) error {
		if seen[path] {
			return nil
		}
		seen[path] = true
		names, err := l.goFiles(path)
		if err != nil {
			return err
		}
		dir := filepath.Join(l.root, filepath.FromSlash(path))
		for _, name := range names {
			f, err := parser.ParseFile(token.NewFileSet(), filepath.Join(dir, name), nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, spec := range f.Imports {
				p, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if l.isLocal(p) {
					if err := visit(p); err != nil {
						return err
					}
				} else {
					external[p] = true
				}
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := visit(r); err != nil {
			return nil, err
		}
	}
	out := make([]string, 0, len(external))
	for p := range external {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis surface the rbsglint suite needs.
//
// The repo's invariants (bit-identical simulation, single-writer bank
// actors, panic-free data paths) are enforced by custom analyzers, but
// the module deliberately has no third-party dependencies, so instead
// of importing x/tools this package provides the same shape — an
// Analyzer with a Run function over a type-checked Pass — on top of the
// standard library's go/ast and go/types.
//
// Two things differ from x/tools by design:
//
//   - Suppression is first-class. A diagnostic is silenced only by a
//     //rbsglint:allow <analyzer> -- <reason> comment on the same line
//     or the line directly above, and the reason is mandatory: a
//     directive without one is itself reported and suppresses nothing.
//   - There are no facts or cross-package dependencies; every pass is
//     a pure function of one type-checked package.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in output and in allow directives.
	Name string
	// Doc is a one-paragraph description of the contract it enforces.
	Doc string
	// Run reports diagnostics for one package through the pass.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	// Analyzer is the name of the pass that produced the finding
	// ("rbsglint" for framework-level findings such as malformed
	// directives).
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Run applies every analyzer to every package, resolves allow
// directives, and returns the surviving diagnostics sorted by position.
// Framework findings (malformed directives) are included and cannot be
// suppressed.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		dirs, malformed := parseDirectives(pkg.Fset, pkg.Files)
		out = append(out, malformed...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				if !dirs.suppresses(a.Name, d.Pos) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis surface the rbsglint suite needs.
//
// The repo's invariants (bit-identical simulation, single-writer bank
// actors, panic-free data paths, alloc-free hot paths, remap-boundary
// level changes) are enforced by custom analyzers, but the module
// deliberately has no third-party dependencies, so instead of importing
// x/tools this package provides the same shape — an Analyzer with a Run
// function over a type-checked Pass — on top of the standard library's
// go/ast and go/types.
//
// Three things differ from x/tools by design:
//
//   - Suppression is first-class. A diagnostic is silenced only by a
//     //rbsglint:allow <analyzer> -- <reason> comment on the same line
//     or the line directly above, and the reason is mandatory: a
//     directive without one is itself reported and suppresses nothing.
//     A directive naming an analyzer that does not exist in the running
//     suite is a stale suppression and is reported too.
//   - Facts (see facts.go) are keyed by stable object names rather than
//     objectpath encodings: only package-level objects and methods of
//     named types carry facts, which is all the suite needs.
//   - Packages are processed in dependency order, so a pass may read
//     facts exported by its imports in the same run.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in output and in allow directives.
	Name string
	// Doc is a one-paragraph description of the contract it enforces.
	Doc string
	// FactTypes lists the fact types the analyzer may export; each must
	// also be registered with RegisterFact. Analyzers with fact types
	// run over facts-only packages (dependencies of the analysis
	// targets) so their facts are available to dependents.
	FactTypes []Fact
	// Run reports diagnostics for one package through the pass.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dir is the package's source directory (for checks that consult
	// the module layout, e.g. registryhygiene's register.go scan).
	Dir string

	facts *Facts
	dirs  directiveSet
	diags []Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	// Analyzer is the name of the pass that produced the finding
	// ("rbsglint" for framework-level findings such as malformed
	// directives).
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Allowed reports whether a well-formed //rbsglint:allow directive for
// this pass's analyzer covers pos (same line or the line above).
// Analyzers that compute facts consult it so that an allowed construct
// does not poison the fact — otherwise every caller of the annotated
// function would need its own directive, cascading one justified
// suppression through the call graph.
func (p *Pass) Allowed(pos token.Pos) bool {
	return p.dirs.suppresses(p.Analyzer.Name, p.Fset.Position(pos))
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Run applies every analyzer to every package with a fresh fact store.
// See RunFacts.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunFacts(pkgs, analyzers, NewFacts())
}

// RunFacts applies every analyzer to every package, resolves allow
// directives, and returns the surviving diagnostics sorted by position.
// Packages must arrive in dependency order (imports before importers)
// so facts flow forward; facts may be pre-seeded (the vet protocol's
// .vetx files) through the store. Facts-only packages contribute facts
// but no diagnostics. Framework findings — malformed directives, and
// directives naming analyzers absent from the running suite (stale
// suppressions) — are included and cannot be suppressed.
func RunFacts(pkgs []*Package, analyzers []*Analyzer, facts *Facts) ([]Diagnostic, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		facts.addPackage(pkg.Path)
		dirs, uses, malformed := parseDirectives(pkg.Fset, pkg.Files)
		if !pkg.FactsOnly {
			out = append(out, malformed...)
			for _, u := range uses {
				if !known[u.analyzer] {
					out = append(out, Diagnostic{
						Analyzer: "rbsglint",
						Pos:      pkg.Fset.Position(u.pos),
						Message: fmt.Sprintf("stale suppression: directive names analyzer %q, which is not in the running suite (%s)",
							u.analyzer, strings.Join(sortedNames(known), ", ")),
					})
				}
			}
		}
		for _, a := range analyzers {
			if pkg.FactsOnly && len(a.FactTypes) == 0 {
				continue // nothing a dependent could observe
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Dir:       pkg.Dir,
				facts:     facts,
				dirs:      dirs,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			if pkg.FactsOnly {
				continue
			}
			for _, d := range pass.diags {
				if !dirs.suppresses(a.Name, d.Pos) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

func sortedNames(set map[string]bool) []string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FuncMarked reports whether decl's doc comment (or a comment on the
// func line) carries the //rbsglint:<marker> annotation — the mechanism
// hotpathalloc ("hotpath") and remapboundary ("remapboundary") use to
// designate sanctioned functions.
func FuncMarked(files []*ast.File, fset *token.FileSet, decl *ast.FuncDecl, marker string) bool {
	want := "//rbsglint:" + marker
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			if text, ok := strings.CutPrefix(c.Text, want); ok && (text == "" || text[0] == ' ' || text[0] == '\t') {
				return true
			}
		}
	}
	// Same-line trailing comment: //rbsglint:hotpath after the signature.
	declLine := fset.Position(decl.Pos()).Line
	for _, f := range files {
		if fset.Position(f.Pos()).Filename != fset.Position(decl.Pos()).Filename {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if fset.Position(c.Pos()).Line != declLine {
					continue
				}
				if text, ok := strings.CutPrefix(c.Text, want); ok && (text == "" || text[0] == ' ' || text[0] == '\t') {
					return true
				}
			}
		}
	}
	return false
}

package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// A Fact is a typed datum an analyzer computes about a package-level
// object (or a whole package) and that the framework carries across
// package boundaries: facts exported while analyzing a dependency are
// importable while analyzing its dependents, in both the standalone
// loader (packages processed in `go list -deps` dependency order) and
// the `go vet -vettool` protocol (facts serialized into the .vetx file
// cmd/go passes between compilations).
//
// Concrete fact types must be pointers to gob-encodable structs and must
// be registered once with RegisterFact (analyzers do this in init()).
// The zero value of a fact must be meaningful: ImportObjectFact copies
// the stored fact into the caller's pointer.
type Fact interface{ AFact() }

// RegisterFact registers a concrete fact type for (de)serialization.
// Call it from the analyzer package's init() for every fact type listed
// in Analyzer.FactTypes.
func RegisterFact(f Fact) { gob.Register(f) }

// factKey identifies one stored fact: the package, the object within it
// ("" for package-level facts, "Name" for package-scope objects,
// "Recv.Name" for methods), and the concrete fact type.
type factKey struct {
	pkg string
	obj string
	typ string
}

func factType(f Fact) string { return reflect.TypeOf(f).String() }

// Facts is the cross-package fact store for one analysis run. It is
// safe for use from a single goroutine (the framework runs passes
// sequentially); the mutex exists so diagnostic tooling may inspect it
// concurrently.
type Facts struct {
	mu   sync.Mutex
	m    map[factKey]Fact
	pkgs map[string]bool // packages whose facts are present (even if none)
}

// NewFacts returns an empty store.
func NewFacts() *Facts {
	return &Facts{m: map[factKey]Fact{}, pkgs: map[string]bool{}}
}

// addPackage marks path as analyzed: its facts (possibly none) are in
// the store, so a missing fact means "known not to hold", not "unknown".
func (f *Facts) addPackage(path string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pkgs[path] = true
}

// SeenPackage reports whether path's facts are present in the store.
// Analyzers use it to distinguish "dependency analyzed, fact absent"
// from "dependency never analyzed" (e.g. a vet compilation whose .vetx
// files cmd/go did not provide) and degrade conservatively.
func (f *Facts) SeenPackage(path string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pkgs[path]
}

func (f *Facts) set(k factKey, fact Fact) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.m[k] = fact
}

func (f *Facts) get(k factKey) (Fact, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fact, ok := f.m[k]
	return fact, ok
}

// factRecord is the serialized form of one fact.
type factRecord struct {
	Obj  string // "" for a package fact
	Fact Fact   // concrete type must be gob-registered
}

// ObjectFact is one exported fact with its owning object, as returned
// by PackageFacts (test harness support).
type ObjectFact struct {
	Obj  string
	Fact Fact
}

// PackageFacts lists every fact stored for path, sorted by object then
// fact type (deterministic for tests and serialization).
func (f *Facts) PackageFacts(path string) []ObjectFact {
	f.mu.Lock()
	defer f.mu.Unlock()
	var keys []factKey
	for k := range f.m {
		if k.pkg == path {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].obj != keys[j].obj {
			return keys[i].obj < keys[j].obj
		}
		return keys[i].typ < keys[j].typ
	})
	out := make([]ObjectFact, 0, len(keys))
	for _, k := range keys {
		out = append(out, ObjectFact{Obj: k.obj, Fact: f.m[k]})
	}
	return out
}

// EncodePackage serializes every fact of one package (the payload of a
// .vetx file). Encoding an analyzed package with no facts yields a
// valid, decodable empty payload — presence of the file is itself the
// "this package was analyzed" marker.
func (f *Facts) EncodePackage(path string) ([]byte, error) {
	recs := f.PackageFacts(path)
	var out []factRecord
	for _, r := range recs {
		out = append(out, factRecord{Obj: r.Obj, Fact: r.Fact})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(out); err != nil {
		return nil, fmt.Errorf("encoding facts for %s: %w", path, err)
	}
	return buf.Bytes(), nil
}

// DecodePackage loads a package's serialized facts into the store and
// marks the package as analyzed. An empty payload is valid (analyzed,
// no facts). Unknown fact types fail: the encoder and decoder must run
// the same analyzer suite.
func (f *Facts) DecodePackage(path string, data []byte) error {
	f.addPackage(path)
	if len(data) == 0 {
		return nil
	}
	var recs []factRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&recs); err != nil {
		return fmt.Errorf("decoding facts for %s: %w", path, err)
	}
	for _, r := range recs {
		f.set(factKey{pkg: path, obj: r.Obj, typ: factType(r.Fact)}, r.Fact)
	}
	return nil
}

// ObjectKey maps a types.Object to its stable cross-package fact key:
// "Name" for package-scope objects, "Recv.Name" for methods of named
// types. Objects that are neither (locals, fields, interface methods
// without a concrete receiver) have no key and carry no facts.
func ObjectKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, ok := obj.(*types.Func); ok {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return "", false
			}
			return named.Obj().Name() + "." + fn.Name(), true
		}
		return fn.Name(), true
	}
	if obj.Parent() == obj.Pkg().Scope() {
		return obj.Name(), true
	}
	return "", false
}

// ExportObjectFact attaches fact to obj, which must belong to the
// package under analysis and be package-level (or a method of a named
// package-level type). Facts on other objects are silently dropped —
// they could never be addressed from another package.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil || obj.Pkg() != p.Pkg {
		return
	}
	key, ok := ObjectKey(obj)
	if !ok {
		return
	}
	p.facts.set(factKey{pkg: p.Pkg.Path(), obj: key, typ: factType(fact)}, fact)
}

// ImportObjectFact copies the stored fact for obj into fact (a pointer
// to the same concrete type), reporting whether one was found. It works
// for objects of the package under analysis (facts exported earlier in
// the same pass) and of any analyzed dependency.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	key, ok := ObjectKey(obj)
	if !ok {
		return false
	}
	stored, ok := p.facts.get(factKey{pkg: obj.Pkg().Path(), obj: key, typ: factType(fact)})
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.facts.set(factKey{pkg: p.Pkg.Path(), obj: "", typ: factType(fact)}, fact)
}

// ImportPackageFact copies the package fact of path into fact,
// reporting whether one was found.
func (p *Pass) ImportPackageFact(path string, fact Fact) bool {
	stored, ok := p.facts.get(factKey{pkg: path, obj: "", typ: factType(fact)})
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// SeenPackage reports whether path was analyzed in this run (its facts,
// possibly none, are available).
func (p *Pass) SeenPackage(path string) bool { return p.facts.SeenPackage(path) }

package registryhygiene_test

import (
	"testing"

	"securityrbsg/internal/analyzers/analysistest"
	"securityrbsg/internal/analyzers/registryhygiene"
)

// TestHygiene loads the whole fixture module in dependency order:
// plugin packages first (their RegistersPlugins facts feed the
// blank-import check), then plugins (which also scans the fixture
// tree for orphaned register.go files), then the package that escapes
// the import cycle by importing plugins itself.
func TestHygiene(t *testing.T) {
	analysistest.Run(t, registryhygiene.Analyzer,
		"securityrbsg/internal/goodscheme",
		"securityrbsg/internal/badcaps",
		"securityrbsg/internal/stray",
		"securityrbsg/internal/orphan",
		"securityrbsg/internal/noreg",
		"securityrbsg/internal/plugins",
		"securityrbsg/internal/selfimport",
	)
}

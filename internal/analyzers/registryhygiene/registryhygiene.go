// Package registryhygiene mechanizes the PR 6 plugin-registry
// contract:
//
//   - Registrations (registry.RegisterScheme / RegisterAttack /
//     RegisterModel / RegisterAccelerator) happen only in a file named
//     register.go, inside init() — one greppable, reviewable place per
//     plugin package.
//   - registry.Scheme / registry.Attack literals appear only in
//     register.go: registration is the sole sanctioned construction
//     site, so nothing outside the registry composes plugin entries by
//     hand.
//   - Capability flags match constructors, statically: Caps.Exact
//     requires New / RunExact and vice versa, and AdjustableLevel
//     requires Exact. The registry re-checks this at init time with a
//     panic; this pass catches it before anything runs.
//   - internal/plugins is complete and minimal: every in-module
//     package with a register.go is reachable from its blank imports
//     (either imported by plugins, or — like internal/experiments,
//     which imports plugins itself and therefore cannot be imported
//     back — importing plugins on its own), and every blank import
//     actually registers something, verified through the
//     RegistersPlugins package fact.
//
// Calls to methods on a *registry.Registry value other than the
// package-level Default helpers are not restricted — tests and
// tournament harnesses build private registries freely.
package registryhygiene

import (
	"go/ast"
	"go/constant"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"securityrbsg/internal/analyzers/analysis"
)

// RegistersPlugins marks a package that performs at least one Default-
// registry registration, so the plugins package can verify its blank
// imports pull real registrations in.
type RegistersPlugins struct{}

func (*RegistersPlugins) AFact() {}

func (*RegistersPlugins) String() string { return "registers-plugins" }

func init() { analysis.RegisterFact(&RegistersPlugins{}) }

// Analyzer is the registryhygiene pass.
var Analyzer = &analysis.Analyzer{
	Name:      "registryhygiene",
	Doc:       "plugin registrations live in register.go init() and stay reachable from internal/plugins",
	FactTypes: []analysis.Fact{&RegistersPlugins{}},
	Run:       run,
}

const (
	registryPath = "securityrbsg/internal/registry"
	pluginsPath  = "securityrbsg/internal/plugins"
	modulePath   = "securityrbsg"
)

// registerFuncs are the package-level Default-registry helpers.
var registerFuncs = map[string]bool{
	"RegisterScheme":      true,
	"RegisterAttack":      true,
	"RegisterModel":       true,
	"RegisterAccelerator": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == registryPath {
		return nil // the registry constructs its own entries (builtin.go)
	}
	registers := false
	for _, file := range pass.Files {
		base := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		inRegisterFile := base == "register.go"
		for _, decl := range file.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			inInit := isFunc && fd.Recv == nil && fd.Name.Name == "init"
			ast.Inspect(decl, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					name := registryHelperCall(pass, n)
					if name == "" {
						return true
					}
					registers = true
					if pass.Allowed(n.Pos()) {
						return true
					}
					if !inRegisterFile {
						pass.Reportf(n.Pos(), "registry.%s outside register.go: registrations live in the package's register.go so the plugin surface stays greppable", name)
					}
					if !inInit {
						pass.Reportf(n.Pos(), "registry.%s outside init(): registrations run once at link-up, not from runtime code paths", name)
					}
					if inRegisterFile && inInit {
						checkCaps(pass, n, name)
					}
				case *ast.CompositeLit:
					kind := entryLiteral(pass, n)
					if kind == "" || inRegisterFile || pass.Allowed(n.Pos()) {
						return true
					}
					pass.Reportf(n.Pos(), "registry.%s literal outside register.go: registration is the only sanctioned construction site for plugin entries", kind)
				}
				return true
			})
		}
	}
	if registers {
		pass.ExportPackageFact(&RegistersPlugins{})
	}
	if pass.Pkg.Path() == pluginsPath {
		checkPlugins(pass)
	}
	return nil
}

// registryHelperCall returns the helper name ("RegisterScheme", ...)
// if call invokes one of the registry package's Default-registry
// functions, "" otherwise.
func registryHelperCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != registryPath {
		return ""
	}
	if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() != nil {
		return "" // Registry method on a private registry: unrestricted
	}
	if !registerFuncs[fn.Name()] {
		return ""
	}
	return fn.Name()
}

// entryLiteral reports whether lit composes a registry.Scheme or
// registry.Attack value, returning the type name.
func entryLiteral(pass *analysis.Pass, lit *ast.CompositeLit) string {
	t := pass.TypeOf(lit)
	if t == nil {
		return ""
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != registryPath {
		return ""
	}
	switch named.Obj().Name() {
	case "Scheme", "Attack":
		return named.Obj().Name()
	}
	return ""
}

// checkCaps statically mirrors the registry's init-time capability
// panics for RegisterScheme/RegisterAttack calls whose argument is a
// literal with literal Caps.
func checkCaps(pass *analysis.Pass, call *ast.CallExpr, helper string) {
	var ctorField, capsFlag string
	switch helper {
	case "RegisterScheme":
		ctorField, capsFlag = "New", "Exact"
	case "RegisterAttack":
		ctorField, capsFlag = "RunExact", "Exact"
	default:
		return
	}
	if len(call.Args) != 1 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.CompositeLit)
	if !ok || entryLiteral(pass, lit) == "" {
		return
	}
	fields := keyedFields(lit)
	name := literalString(pass, fields["Name"])
	capsLit, _ := ast.Unparen(fields["Caps"]).(*ast.CompositeLit)
	if fields["Caps"] != nil && capsLit == nil {
		return // caps computed elsewhere: not statically checkable
	}
	caps := map[string]bool{}
	if capsLit != nil {
		for key, val := range keyedFields(capsLit) {
			caps[key] = literalBool(pass, val)
		}
	}
	hasCtor := fields[ctorField] != nil && !isNil(pass, fields[ctorField])
	exact := caps[capsFlag]
	if exact && !hasCtor {
		pass.Reportf(lit.Pos(), "%s %s declares Caps.Exact but sets no %s (the registry will panic at init)", strings.ToLower(entryLiteral(pass, lit)), name, ctorField)
	}
	if !exact && hasCtor {
		pass.Reportf(lit.Pos(), "%s %s sets %s but does not declare Caps.Exact (the registry will panic at init)", strings.ToLower(entryLiteral(pass, lit)), name, ctorField)
	}
	if caps["AdjustableLevel"] && !exact {
		pass.Reportf(lit.Pos(), "scheme %s declares Caps.AdjustableLevel without Exact (nothing to adjust)", name)
	}
}

// keyedFields maps a keyed composite literal's field names to values.
func keyedFields(lit *ast.CompositeLit) map[string]ast.Expr {
	out := map[string]ast.Expr{}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			out[id.Name] = kv.Value
		}
	}
	return out
}

// literalString resolves a constant string expression, or "?".
func literalString(pass *analysis.Pass, e ast.Expr) string {
	if e == nil {
		return "?"
	}
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return strconv.Quote(constant.StringVal(tv.Value))
	}
	return "?"
}

// literalBool resolves a constant bool expression (false when not).
func literalBool(pass *analysis.Pass, e ast.Expr) bool {
	if e == nil {
		return false
	}
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Bool {
		return constant.BoolVal(tv.Value)
	}
	return false
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

// checkPlugins runs the two whole-module checks from the plugins
// package's vantage point: every blank import registers something
// (via the RegistersPlugins fact), and every in-module register.go is
// reachable from plugins' imports.
func checkPlugins(pass *analysis.Pass) {
	blank := map[string]token.Pos{}
	for _, file := range pass.Files {
		for _, spec := range file.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil || spec.Name == nil || spec.Name.Name != "_" {
				continue
			}
			if path != modulePath && !strings.HasPrefix(path, modulePath+"/") {
				continue
			}
			blank[path] = spec.Pos()
			if pass.SeenPackage(path) && !pass.ImportPackageFact(path, &RegistersPlugins{}) && !pass.Allowed(spec.Pos()) {
				pass.Reportf(spec.Pos(), "blank import of %s, which performs no registry registrations", path)
			}
		}
	}

	// Filesystem completeness: internal/<pkg>/register.go implies the
	// package is linked into the registry — blank-imported here, or
	// (when it imports plugins itself and an import back would cycle)
	// pulling plugins in on its own.
	internalDir := filepath.Dir(pass.Dir)
	entries, err := os.ReadDir(internalDir)
	if err != nil {
		return // fixture layouts without a scannable tree
	}
	var anchor token.Pos
	if len(pass.Files) > 0 {
		anchor = pass.Files[0].Name.Pos()
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(internalDir, e.Name(), "register.go")); err != nil {
			continue
		}
		path := modulePath + "/internal/" + e.Name()
		if path == pass.Pkg.Path() {
			continue
		}
		if _, ok := blank[path]; ok {
			continue
		}
		if importsPlugins(filepath.Join(internalDir, e.Name())) {
			continue
		}
		if !pass.Allowed(anchor) {
			pass.Reportf(anchor, "package %s has a register.go but is not reachable from internal/plugins (add a blank import here, or import plugins from it)", path)
		}
	}
}

// importsPlugins reports whether any non-test file in dir imports the
// plugins package (the experiments-style escape from the import cycle).
func importsPlugins(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(token.NewFileSet(), filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			continue
		}
		for _, spec := range f.Imports {
			if path, err := strconv.Unquote(spec.Path.Value); err == nil && path == pluginsPath {
				return true
			}
		}
	}
	return false
}

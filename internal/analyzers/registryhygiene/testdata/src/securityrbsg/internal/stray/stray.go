// Package stray registers from the wrong places: outside register.go
// and outside init().
package stray

import "securityrbsg/internal/registry"

var entry = registry.Scheme{ // want `registry\.Scheme literal outside register\.go`
	Name: "stray",
}

func init() {
	registry.RegisterScheme(entry) // want `registry\.RegisterScheme outside register\.go`
}

func Late() {
	registry.RegisterModel("a", "b", func() {}) // want `registry\.RegisterModel outside register\.go` `registry\.RegisterModel outside init\(\)`
}

package goodscheme

// Implementation lives outside register.go without touching the
// registry.
func Level() int { return 3 }

package goodscheme

import "securityrbsg/internal/registry"

// A well-formed plugin: registrations in register.go init(), caps
// matching constructors. No findings.
func init() {
	registry.RegisterScheme(registry.Scheme{
		Name: "good",
		Doc:  "exact-tier scheme with a constructor",
		Caps: registry.SchemeCaps{Exact: true, TimingOracle: true},
		New:  func() error { return nil },
	})
	registry.RegisterScheme(registry.Scheme{
		Name: "good-model",
		Doc:  "model-only scheme: no caps, no constructor",
	})
	registry.RegisterAttack(registry.Attack{
		Name:     "good-attack",
		Caps:     registry.AttackCaps{Exact: true},
		RunExact: func() error { return nil },
	})
}

// Package orphan registers correctly but nothing links it: it is not
// blank-imported by internal/plugins and does not import plugins
// itself. The finding lands in the plugins package.
package orphan

import "securityrbsg/internal/registry"

func init() {
	registry.RegisterAttack(registry.Attack{Name: "orphan"})
}

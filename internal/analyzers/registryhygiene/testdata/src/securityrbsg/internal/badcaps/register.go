package badcaps

import "securityrbsg/internal/registry"

// Registrations in the right place but with capability/constructor
// mismatches the registry would panic over at init time.
func init() {
	registry.RegisterScheme(registry.Scheme{ // want `scheme "no-ctor" declares Caps\.Exact but sets no New`
		Name: "no-ctor",
		Caps: registry.SchemeCaps{Exact: true},
	})
	registry.RegisterScheme(registry.Scheme{ // want `scheme "undeclared" sets New but does not declare Caps\.Exact`
		Name: "undeclared",
		New:  func() error { return nil },
	})
	registry.RegisterScheme(registry.Scheme{ // want `scheme "floaty" declares Caps\.AdjustableLevel without Exact`
		Name: "floaty",
		Caps: registry.SchemeCaps{AdjustableLevel: true},
	})
	registry.RegisterAttack(registry.Attack{ // want `attack "no-run" declares Caps\.Exact but sets no RunExact`
		Name: "no-run",
		Caps: registry.AttackCaps{Exact: true},
	})
}

// Package selfimport mirrors internal/experiments: it imports plugins
// for the full plugin set, so plugins cannot blank-import it back
// (cycle). Its own plugins import satisfies reachability.
package selfimport

import (
	_ "securityrbsg/internal/plugins"
	"securityrbsg/internal/registry"
)

func init() {
	registry.RegisterModel("good", "steady", func() {})
}

// Package noreg performs no registrations; blank-importing it from
// plugins is dead weight.
package noreg

func Helper() int { return 1 }

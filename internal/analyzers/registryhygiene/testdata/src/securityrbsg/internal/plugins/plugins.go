package plugins // want `package securityrbsg/internal/orphan has a register\.go but is not reachable from internal/plugins`

import (
	_ "securityrbsg/internal/badcaps"
	_ "securityrbsg/internal/goodscheme"
	_ "securityrbsg/internal/noreg" // want `blank import of securityrbsg/internal/noreg, which performs no registry registrations`
)

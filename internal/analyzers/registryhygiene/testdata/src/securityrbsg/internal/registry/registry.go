// Package registry stubs the real plugin registry: the same entry
// types and Default-registry helpers, enough for the hygiene fixtures
// to register against. The package itself is exempt from the pass.
package registry

type SchemeCaps struct {
	Exact           bool
	TimingOracle    bool
	AdjustableLevel bool
}

type Scheme struct {
	Name string
	Doc  string
	Caps SchemeCaps
	New  func() error
}

type AttackCaps struct{ Exact bool }

type Attack struct {
	Name     string
	Doc      string
	Caps     AttackCaps
	RunExact func() error
}

func RegisterScheme(s Scheme)                        {}
func RegisterAttack(a Attack)                        {}
func RegisterModel(scheme, attack string, fn func()) {}
func RegisterAccelerator(fn func())                  {}

// Package metriccontract enforces the /metrics naming contract of the
// serving packages (memserver and memrouter): metric names are
// Prometheus-conventional — counters end in _total, gauges do not,
// names are lower_snake_case — and no name is emitted twice. The check
// is deliberately repo-shaped: it looks at each package's declarative
// metric table (entries of a struct with name/help/kind fields) and at
// calls to the local gauge() and counter() render helpers, which
// together define everything /metrics exposes.
//
// The dashboards and the tournament harness join series by name, so a
// rename or a convention slip is an observable break even though no Go
// type changes; this pass turns it into a lint failure instead.
package metriccontract

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"securityrbsg/internal/analyzers/analysis"
)

// Analyzer is the metriccontract pass.
var Analyzer = &analysis.Analyzer{
	Name: "metriccontract",
	Doc:  "memserver metric names follow Prometheus conventions (counters _total, gauges bare, no duplicates)",
	Run:  run,
}

// nameRe is the conventional Prometheus metric-name shape (the
// exporter prefixes "memctld_" itself).
var nameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func run(pass *analysis.Pass) error {
	if !strings.HasSuffix(pass.Pkg.Path(), "internal/memserver") &&
		!strings.HasSuffix(pass.Pkg.Path(), "internal/memrouter") {
		return nil
	}
	seen := map[string]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				elem, ok := metricTableElem(pass, n)
				if !ok {
					return true
				}
				for _, el := range n.Elts {
					if entry, ok := el.(*ast.CompositeLit); ok {
						checkEntry(pass, entry, elem, seen)
					}
				}
				return false // entries handled; don't re-visit as bare literals
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) >= 2 &&
					(id.Name == "gauge" || id.Name == "counter") {
					if name, ok := constString(pass, n.Args[0]); ok {
						checkName(pass, n.Args[0].Pos(), name, id.Name, seen)
					}
				}
			}
			return true
		})
	}
	return nil
}

// metricTableElem matches a slice literal whose element type is a
// struct with string fields name, help and kind — the memserver
// metric table — and returns that element struct.
func metricTableElem(pass *analysis.Pass, lit *ast.CompositeLit) (*types.Struct, bool) {
	t := pass.TypeOf(lit)
	if t == nil {
		return nil, false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return nil, false
	}
	st, ok := sl.Elem().Underlying().(*types.Struct)
	if !ok {
		return nil, false
	}
	want := map[string]bool{"name": false, "help": false, "kind": false}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if _, tracked := want[f.Name()]; tracked && isString(f.Type()) {
			want[f.Name()] = true
		}
	}
	for _, found := range want {
		if !found {
			return nil, false
		}
	}
	return st, true
}

// checkEntry validates one metric-table entry literal (keyed or
// positional against the element struct's field order).
func checkEntry(pass *analysis.Pass, entry *ast.CompositeLit, elem *types.Struct, seen map[string]bool) {
	fields := map[string]ast.Expr{}
	positional := true
	for _, el := range entry.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			positional = false
			if id, ok := kv.Key.(*ast.Ident); ok {
				fields[id.Name] = kv.Value
			}
		}
	}
	if positional {
		for i, el := range entry.Elts {
			if i < elem.NumFields() {
				fields[elem.Field(i).Name()] = el
			}
		}
	}
	nameExpr, kindExpr, valueExpr := fields["name"], fields["kind"], fields["value"]
	name, nameOK := constString(pass, nameExpr)
	if !nameOK {
		return // computed name: nothing to check statically
	}
	kind, kindOK := constString(pass, kindExpr)
	if !kindOK {
		kind = ""
	}
	pos := entry.Pos()
	if nameExpr != nil {
		pos = nameExpr.Pos()
	}
	if kindOK && kind != "counter" && kind != "gauge" {
		if !pass.Allowed(pos) {
			pass.Reportf(pos, "metric %q: kind %q is neither counter nor gauge", name, kind)
		}
		return
	}
	checkName(pass, pos, name, kind, seen)
	if fl, ok := valueExpr.(*ast.FuncLit); ok && !readsParams(pass, fl) && !pass.Allowed(valueExpr.Pos()) {
		pass.Reportf(valueExpr.Pos(), "metric %q: value closure reads none of its snapshot/actor parameters", name)
	}
}

// checkName applies the naming and duplicate rules shared by table
// entries and gauge() calls.
func checkName(pass *analysis.Pass, pos token.Pos, name, kind string, seen map[string]bool) {
	if pass.Allowed(pos) {
		return
	}
	if !nameRe.MatchString(name) {
		pass.Reportf(pos, "metric %q is not a valid Prometheus metric name (want [a-z][a-z0-9_]*)", name)
		return
	}
	if seen[name] {
		pass.Reportf(pos, "duplicate metric name %q", name)
	}
	seen[name] = true
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "counter %q must end in _total (Prometheus convention)", name)
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "gauge %q must not end in _total (the suffix marks counters)", name)
		}
	}
}

// readsParams reports whether the closure's body references any of
// its own parameters — a value closure that ignores the snapshot it
// is handed is reporting something else than it claims.
func readsParams(pass *analysis.Pass, fl *ast.FuncLit) bool {
	params := map[types.Object]bool{}
	if fl.Type.Params != nil {
		for _, field := range fl.Type.Params.List {
			for _, id := range field.Names {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	if len(params) == 0 {
		return false
	}
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && params[pass.TypesInfo.Uses[id]] {
			found = true
			return false
		}
		return true
	})
	return found
}

// constString resolves a constant string expression.
func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	if e == nil {
		return "", false
	}
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	return "", false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

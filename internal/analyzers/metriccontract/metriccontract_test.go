package metriccontract_test

import (
	"testing"

	"securityrbsg/internal/analyzers/analysistest"
	"securityrbsg/internal/analyzers/metriccontract"
)

func TestMetricTable(t *testing.T) {
	analysistest.Run(t, metriccontract.Analyzer, "securityrbsg/ms/internal/memserver")
}

// Package memserver mirrors the real exporter's shapes: gauge() and
// counter() render helpers plus a declarative metric table.
package memserver

type BankSnapshot struct {
	Writes uint64
	Depth  uint64
}

type actor struct{ queued uint64 }

func render() {
	gauge := func(name, help string, v uint64) {}
	gauge("banks", "Bank count.", 4)
	gauge("live_total", "Mislabeled gauge.", 1) // want `gauge "live_total" must not end in _total`

	counter := func(name, help string, v uint64) {}
	counter("binary_frames_total", "Frames.", 7)
	counter("binary_rejects", "Mislabeled counter.", 1)  // want `counter "binary_rejects" must end in _total`
	counter("binary_frames_total", "Duplicate call.", 8) // want `duplicate metric name "binary_frames_total"`

	type metric struct {
		name, help, kind string
		value            func(a *actor, snap *BankSnapshot) uint64
	}
	metrics := []metric{
		{"demand_writes_total", "Writes.", "counter",
			func(a *actor, s *BankSnapshot) uint64 { return s.Writes }},
		{"sim_elapsed_ns", "Elapsed.", "counter", // want `counter "sim_elapsed_ns" must end in _total`
			func(a *actor, s *BankSnapshot) uint64 { return s.Writes }},
		{"queue_depth_total", "Depth.", "gauge", // want `gauge "queue_depth_total" must not end in _total`
			func(a *actor, s *BankSnapshot) uint64 { return s.Depth }},
		{"oops_kind", "Bad kind.", "histogram", // want `metric "oops_kind": kind "histogram" is neither counter nor gauge`
			func(a *actor, s *BankSnapshot) uint64 { return s.Depth }},
		{"demand_writes_total", "Dup.", "counter", // want `duplicate metric name "demand_writes_total"`
			func(a *actor, s *BankSnapshot) uint64 { return s.Writes }},
		{"BadName", "Case.", "gauge", // want `metric "BadName" is not a valid Prometheus metric name`
			func(a *actor, s *BankSnapshot) uint64 { return s.Depth }},
		{"constant_one", "Ignores snapshot.", "gauge",
			func(a *actor, s *BankSnapshot) uint64 { return 1 }}, // want `metric "constant_one": value closure reads none of its snapshot/actor parameters`
		{"allowed_one", "Deliberately constant.", "gauge",
			//rbsglint:allow metriccontract -- build-info style constant, documented
			func(a *actor, s *BankSnapshot) uint64 { return 2 }},
	}
	_ = metrics
}

package asciiplot

import (
	"strings"
	"testing"
)

func TestChartBasics(t *testing.T) {
	out := Chart{Title: "demo", Width: 20, Height: 5, XLeft: "a", XRight: "b"}.
		Render(Series{Name: "s1", Y: []float64{0, 1, 2, 3}})
	if !strings.Contains(out, "demo") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("marker missing")
	}
	if !strings.Contains(out, "s1") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatal("x labels missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 5 rows + axis + x labels + legend
	if len(lines) != 9 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestChartMonotoneSeriesSlopesUp(t *testing.T) {
	out := Chart{Width: 10, Height: 5}.Render(Series{Y: []float64{0, 1, 2, 3, 4}})
	rows := strings.Split(out, "\n")
	first := strings.IndexByte(rows[0], '*') // top row holds the maximum
	last := strings.IndexByte(rows[4], '*')  // bottom row holds the minimum
	if first < last {
		t.Fatalf("rising series should end high:\n%s", out)
	}
}

func TestChartMultipleSeriesMarkers(t *testing.T) {
	out := Chart{Width: 12, Height: 4}.Render(
		Series{Name: "a", Y: []float64{1, 1}},
		Series{Name: "b", Y: []float64{2, 2}},
	)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("distinct markers expected:\n%s", out)
	}
}

func TestChartEmptyAndFlat(t *testing.T) {
	if out := (Chart{}).Render(); out == "" {
		t.Fatal("empty chart should still render a frame")
	}
	out := Chart{Width: 8, Height: 3}.Render(Series{Y: []float64{5, 5, 5}})
	if !strings.Contains(out, "*") {
		t.Fatalf("flat series must still plot:\n%s", out)
	}
}

func TestChartFixedRangeClamps(t *testing.T) {
	out := Chart{Width: 8, Height: 4, MinY: 0, MaxY: 1}.
		Render(Series{Y: []float64{-5, 10}})
	if !strings.Contains(out, "*") {
		t.Fatal("out-of-range values must clamp, not vanish")
	}
}

func TestBars(t *testing.T) {
	out := Bars("attacks", []string{"raa", "rta"}, []float64{100, 25}, 20)
	if !strings.Contains(out, "attacks") || !strings.Contains(out, "raa") {
		t.Fatal("labels missing")
	}
	raaRow, rtaRow := "", ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "raa") {
			raaRow = l
		}
		if strings.HasPrefix(l, "rta") {
			rtaRow = l
		}
	}
	if strings.Count(raaRow, "=") <= strings.Count(rtaRow, "=") {
		t.Fatalf("bar lengths should follow values:\n%s", out)
	}
}

func TestBarsZeroValues(t *testing.T) {
	out := Bars("", []string{"x"}, []float64{0}, 10)
	if !strings.Contains(out, "x") {
		t.Fatal("zero-valued bar should still print its label")
	}
}

// Package asciiplot renders small line charts and bar charts as plain
// text, so the experiment tools can show the paper's figures directly in
// the terminal next to the CSV they write.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	Y    []float64
}

// markers distinguish overlapping series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart renders one or more series against a shared index axis (the
// caller labels the x values). It returns a multi-line string.
type Chart struct {
	// Title is printed above the plot.
	Title string
	// Width and Height are the plot-area dimensions in characters
	// (default 60×16).
	Width, Height int
	// XLabels annotates the first and last column (optional).
	XLeft, XRight string
	// YFormat formats axis values (default %.3g).
	YFormat string
	// MinY/MaxY fix the value range; when both are zero the range is
	// taken from the data (padded 5%).
	MinY, MaxY float64
}

// Render draws the series. Series may have different lengths; each is
// stretched across the full width.
func (c Chart) Render(series ...Series) string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}
	yf := c.YFormat
	if yf == "" {
		yf = "%.3g"
	}
	lo, hi := c.MinY, c.MaxY
	if lo == 0 && hi == 0 {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, s := range series {
			for _, v := range s.Y {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		if math.IsInf(lo, 1) {
			lo, hi = 0, 1
		}
		pad := (hi - lo) * 0.05
		if pad == 0 {
			pad = math.Abs(hi)*0.05 + 1e-9
		}
		lo -= pad
		hi += pad
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range series {
		if len(s.Y) == 0 {
			continue
		}
		m := markers[si%len(markers)]
		for col := 0; col < w; col++ {
			// Stretch the series over the width.
			idx := 0
			if len(s.Y) > 1 {
				idx = col * (len(s.Y) - 1) / (w - 1)
			}
			v := s.Y[idx]
			row := h - 1 - int(float64(h-1)*(v-lo)/(hi-lo)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= h {
				row = h - 1
			}
			grid[row][col] = m
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	topLabel := fmt.Sprintf(yf, hi)
	botLabel := fmt.Sprintf(yf, lo)
	pad := len(topLabel)
	if len(botLabel) > pad {
		pad = len(botLabel)
	}
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", pad)
		if r == 0 {
			label = fmt.Sprintf("%*s", pad, topLabel)
		}
		if r == h-1 {
			label = fmt.Sprintf("%*s", pad, botLabel)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", w))
	if c.XLeft != "" || c.XRight != "" {
		gap := w - len(c.XLeft) - len(c.XRight)
		if gap < 1 {
			gap = 1
		}
		fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", pad),
			c.XLeft, strings.Repeat(" ", gap), c.XRight)
	}
	if len(series) > 1 || (len(series) == 1 && series[0].Name != "") {
		fmt.Fprintf(&b, "%s  ", strings.Repeat(" ", pad))
		for si, s := range series {
			fmt.Fprintf(&b, "%c=%s  ", markers[si%len(markers)], s.Name)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Bars renders a horizontal bar chart: one row per (label, value).
func Bars(title string, labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 48
	}
	var max float64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(float64(width) * v / max)
		}
		if n < 0 {
			n = 0
		}
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		fmt.Fprintf(&b, "%-*s |%s %.4g\n", labelW, label, strings.Repeat("=", n), v)
	}
	return b.String()
}

package memrouter

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"securityrbsg/internal/memserver"
)

// The router's HTTP control plane: /healthz aggregates shard health,
// /metrics serves the router's own series plus a shard-labeled
// passthrough of every shard's memctld_* series — so one scrape of the
// router sees the whole deployment, and tools that sum over labels
// (loadgen, the smoke scripts, ParseMetrics) read aggregate totals
// through the router exactly as they would off a single memctld.

// Handler returns the control-plane mux.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", r.handleHealthz)
	mux.HandleFunc("/metrics", r.handleMetrics)
	return mux
}

// healthLoop probes every shard each HealthEvery period. With a
// control-plane address the probe is the shard's own /healthz plus a
// line-count cross-check against the map (a shard configured with the
// wrong Lines would corrupt the address space silently — catch it
// here, loudly); without one it falls back to connection liveness.
func (r *Router) healthLoop() {
	defer r.healthWG.Done()
	client := &http.Client{Timeout: 2 * time.Second}
	probe := func() {
		for i := range r.cfg.Shards {
			h := r.probeShard(client, i)
			r.healthMu.Lock()
			r.health[i] = h
			r.healthMu.Unlock()
		}
	}
	probe()
	t := time.NewTicker(r.cfg.HealthEvery) //rbsglint:allow simdeterminism -- health probing is operational plumbing, not simulation state
	defer t.Stop()
	for {
		select {
		case <-r.stopHealth:
			return
		case <-t.C:
			probe()
		}
	}
}

// probeShard checks one shard's health.
func (r *Router) probeShard(client *http.Client, i int) shardHealth {
	if len(r.cfg.ShardControl) == 0 {
		if r.pools != nil && r.pools[i].healthy() {
			return shardHealth{ok: true}
		}
		return shardHealth{ok: false, detail: "no live binary connection"}
	}
	base := "http://" + r.cfg.ShardControl[i]
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return shardHealth{ok: false, detail: err.Error()}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return shardHealth{ok: false, detail: "healthz " + resp.Status}
	}
	text, err := r.scrapeShard(client, i)
	if err != nil {
		return shardHealth{ok: false, detail: err.Error()}
	}
	m := memserver.ParseMetrics(text)
	if got, want := uint64(m["memctld_lines"]), r.m.LocalLines(i); got != want {
		return shardHealth{ok: false, detail: fmt.Sprintf("shard has %d lines, map assigns %d", got, want)}
	}
	return shardHealth{ok: true}
}

// scrapeShard fetches one shard's raw /metrics text.
func (r *Router) scrapeShard(client *http.Client, i int) (string, error) {
	resp, err := client.Get("http://" + r.cfg.ShardControl[i] + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("metrics %s", resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Healthy reports whether every shard passed its last probe.
func (r *Router) Healthy() (ok bool, detail string) {
	r.healthMu.Lock()
	defer r.healthMu.Unlock()
	var bad []string
	for i, h := range r.health {
		if !h.ok {
			bad = append(bad, fmt.Sprintf("shard %d (%s): %s", i, r.cfg.Shards[i], h.detail))
		}
	}
	if len(bad) > 0 {
		return false, strings.Join(bad, "; ")
	}
	return true, ""
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if r.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if ok, detail := r.Healthy(); !ok {
		http.Error(w, "unhealthy: "+detail, http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// MetricsText returns the /metrics payload (tests and tooling).
func (r *Router) MetricsText() string {
	var b strings.Builder
	r.renderMetrics(&b)
	return b.String()
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b strings.Builder
	r.renderMetrics(&b)
	fmt.Fprint(w, b.String())
}

func (r *Router) renderMetrics(b *strings.Builder) {
	gauge := func(name, help string, v uint64) {
		fmt.Fprintf(b, "# HELP router_%s %s\n# TYPE router_%s gauge\nrouter_%s %d\n",
			name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(b, "# HELP router_%s %s\n# TYPE router_%s counter\nrouter_%s %d\n",
			name, help, name, name, v)
	}
	gauge("shards", "Shards behind this router.", uint64(len(r.cfg.Shards)))
	gauge("groups", "Bank groups in the logical address map.", uint64(r.m.Groups()))
	gauge("lines", "Total logical lines routed.", r.m.Lines())
	draining := uint64(0)
	if r.Draining() {
		draining = 1
	}
	gauge("draining", "1 while the router drains, else 0.", draining)
	counter("frames_total", "Client frames processed.", r.frames.Load())
	counter("reject_total", "Client frames rejected before routing (malformed, version-skewed, oversized, bad op, draining).", r.rejects.Load())
	counter("nack_total", "Client frames answered with aggregated backpressure.", r.nacks.Load())
	counter("line_ops_total", "Line ops routed to shards.", r.lineOps.Load())
	counter("read_batch_ops_total", "Of the routed ops, reads on streaming read-batch frames.", r.readOps.Load())
	counter("split_frames_total", "Client frames that touched more than one shard.", r.splitFr.Load())

	// Per-shard routing series, labeled by shard index.
	type metric struct {
		name, help, kind string
		value            func(p *shardPool) uint64
	}
	metrics := []metric{
		{"shard_line_ops_total", "Line ops routed to the shard.", "counter",
			func(p *shardPool) uint64 { return p.ops.Load() }},
		{"shard_nacks_total", "Sub-batches the shard answered with backpressure.", "counter",
			func(p *shardPool) uint64 { return p.nacks.Load() }},
		{"shard_errors_total", "Sub-batches lost to shard transport or protocol failure.", "counter",
			func(p *shardPool) uint64 { return p.errs.Load() }},
		{"shard_conns", "Live pooled connections to the shard.", "gauge",
			func(p *shardPool) uint64 { return uint64(p.up.Load()) }},
		{"shard_healthy", "1 while the shard passes health probes, else 0.", "gauge",
			func(p *shardPool) uint64 {
				r.healthMu.Lock()
				defer r.healthMu.Unlock()
				if r.health[p.shard].ok {
					return 1
				}
				return 0
			}},
	}
	if r.pools != nil {
		for _, m := range metrics {
			fmt.Fprintf(b, "# HELP router_%s %s\n# TYPE router_%s %s\n", m.name, m.help, m.name, m.kind)
			for _, p := range r.pools {
				fmt.Fprintf(b, "router_%s{shard=%q} %d\n", m.name, fmt.Sprint(p.shard), m.value(p))
			}
		}
	}

	// Shard passthrough: every shard's memctld_* series re-emitted with
	// a shard label, HELP/TYPE deduplicated. Summing over labels (which
	// is what ParseMetrics does) yields deployment-wide totals, so
	// loadgen's alarm and line reads work unchanged through the router.
	if len(r.cfg.ShardControl) == 0 {
		return
	}
	client := &http.Client{Timeout: 2 * time.Second}
	headerDone := map[string]bool{}
	for i := range r.cfg.ShardControl {
		text, err := r.scrapeShard(client, i)
		if err != nil {
			continue // the health probe reports the outage; /metrics stays partial
		}
		relabelShardMetrics(b, text, i, headerDone)
	}
}

// relabelShardMetrics re-emits one shard's metrics text with a
// shard=N label spliced into every sample.
func relabelShardMetrics(b *strings.Builder, text string, shard int, headerDone map[string]bool) {
	label := fmt.Sprintf("shard=%q", fmt.Sprint(shard))
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			// "# HELP name ..." / "# TYPE name kind": emit once per name.
			if len(fields) >= 3 {
				key := fields[1] + " " + fields[2]
				if headerDone[key] {
					continue
				}
				headerDone[key] = true
			}
			fmt.Fprintln(b, line)
			continue
		}
		if i := strings.IndexByte(line, '{'); i >= 0 {
			fmt.Fprintf(b, "%s{%s,%s\n", line[:i], label, line[i+1:])
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			fmt.Fprintf(b, "%s{%s}%s\n", line[:i], label, line[i:])
		}
	}
}

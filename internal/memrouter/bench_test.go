package memrouter

import (
	"context"
	"net"
	"testing"
	"time"

	"securityrbsg/internal/memserver"
	"securityrbsg/internal/stats"
)

// Router scaling benchmarks: a pipelined client pushing 256-op batches
// through a router over real loopback TCP, against 1 shard and against
// 3. Shards here are in-process servers (goroutines, not processes),
// so the scaling these benches show is scheduler parallelism — the
// multi-PROCESS claim is the smoke script's job — but the serving path
// is the real one end to end: frame decode, split, pooled pipelining,
// merge, encode. The bench gate asserts 3 shards ≥ 2.5× 1 shard when
// the host has cores to scale onto, and records both series in the
// committed baseline either way.

// benchShard boots one shard with a binary listener (bench twin of the
// test helpers, which want *testing.T).
func benchShard(b *testing.B, seed uint64) string {
	b.Helper()
	s := memserver.MustNew(memserver.Config{
		Banks: 8, Lines: 8 << 14, Scheme: memserver.SchemeRBSGDetector,
		Regions: 32, Interval: 100, Seed: seed, QueueDepth: 256,
	})
	s.Start()
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go s.ServeBinary(ln)
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.ShutdownBinary(ctx); err != nil {
			b.Error(err)
		}
	})
	return ln.Addr().String()
}

// benchRouter measures pipelined batch throughput through a router
// fronting n shards.
func benchRouter(b *testing.B, n int) {
	const (
		batch  = 256
		window = 16
	)
	addrs := make([]string, n)
	gm := make([]int, n)
	for i := range addrs {
		addrs[i] = benchShard(b, uint64(1+i))
		gm[i] = i
	}
	r, err := New(Config{
		Shards: addrs, Lines: uint64(n) * (8 << 14), GroupMap: gm,
		Conns: 2, Window: 32,
	})
	if err != nil {
		b.Fatal(err)
	}
	r.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go r.ServeBinary(ln)
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := r.Shutdown(ctx); err != nil {
			b.Error(err)
		}
	})
	c, err := memserver.DialBinary(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	rng := stats.NewRNG(3)
	ops := make([]memserver.BatchOp, batch)
	for i := range ops {
		ops[i] = memserver.BatchOp{Line: rng.Uint64n(r.Map().Lines()), Data: 2}
	}

	var resp memserver.BatchResponse
	inflight := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if inflight == window {
			if err := c.RecvBatch(&resp); err != nil {
				b.Fatal(err)
			}
			inflight--
		}
		if err := c.SendBatch(ops); err != nil {
			b.Fatal(err)
		}
		inflight++
	}
	for ; inflight > 0; inflight-- {
		if err := c.RecvBatch(&resp); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "lines/s")
}

func BenchmarkRouterBatch1Shard(b *testing.B)  { benchRouter(b, 1) }
func BenchmarkRouterBatch3Shards(b *testing.B) { benchRouter(b, 3) }

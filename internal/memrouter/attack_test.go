package memrouter

import (
	"testing"
	"time"

	"securityrbsg/internal/attack"
	"securityrbsg/internal/memserver"
	"securityrbsg/internal/rbsg"
)

// The router exists to scale serving — never to blunt (or sharpen) the
// side channel. This test reruns the paper's Remapping Timing Attack
// through a real 3-shard router and pins wire-level equivalence: the
// attacker recovers the identical physical-neighbor sequence at the
// identical write cost as a direct connection to the shard, because
// the blocked bank-group map lands the attacked region wholly on one
// shard with unchanged local lines, and per-op latencies merge back
// into their original slots unmodified.

// rtaShardConfig mirrors memserver's RTA geometry: single bank, 256
// lines, plain RBSG, low endurance so the wear-out phase completes.
func rtaShardConfig(seed uint64) memserver.Config {
	return memserver.Config{
		Banks: 1, Lines: 256, Scheme: memserver.SchemeRBSG,
		Regions: 8, Interval: 4, Seed: seed,
		Endurance: 500, QueueDepth: 64, SnapshotEvery: 1,
	}
}

// metricsOracle polls memctld_failed_lines through an HTTP control
// plane — the shard's own, or the router's aggregated passthrough —
// every `every` calls (memserver's wireOracle shape).
func metricsOracle(c *memserver.Client, every int) func() bool {
	calls := 0
	failed := false
	return func() bool {
		if failed {
			return true
		}
		calls++
		if calls%every != 0 {
			return false
		}
		m, err := c.Metrics()
		if err != nil {
			return false
		}
		failed = m["memctld_failed_lines"] > 0
		return failed
	}
}

// groundTruth reads the recovered-sequence answer off the scheme
// internals the attacker never saw (attack_test.go's helper, restated
// here because test helpers do not export).
func groundTruth(s *rbsg.Scheme, li uint64, k int) []uint64 {
	n := s.LinesPerRegion()
	ia := s.Intermediate(li)
	region, off := ia/n, ia%n
	out := make([]uint64, 0, k)
	for i := 1; i <= k; i++ {
		prev := (off + n - uint64(i)%n) % n
		out = append(out, s.Randomizer().Decrypt(region*n+prev))
	}
	return out
}

func runRTA(t *testing.T, target attack.Target, oracle func() bool) (*attack.RTARBSG, attack.Result) {
	t.Helper()
	a := &attack.RTARBSG{
		Target: target,
		Lines:  256, Regions: 8, Interval: 4,
		Li:     17,
		SeqLen: 6,
		Oracle: oracle,
	}
	res, err := a.Run()
	if err != nil {
		t.Fatalf("attack through the router: %v", err)
	}
	return a, res
}

func TestRouterRTAMatchesDirect(t *testing.T) {
	// Direct leg: attack one shard over its own binary listener.
	ds, dbin, dctl := startShard(t, rtaShardConfig(5))
	dc, err := memserver.DialBinary(dbin)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dc.Close() })
	da, dres := runRTA(t, dc, metricsOracle(memserver.NewClient("http://"+dctl), 64))
	if !dres.Failed && dres.Writes == 0 {
		t.Fatal("direct attack issued no writes")
	}

	// Routed leg: the identical shard (same seed) is shard 0 of a
	// 3-shard deployment; the attacker talks only to the router, and
	// its oracle reads only the router's aggregated metrics.
	rs, rbin, rctl := startShard(t, rtaShardConfig(5))
	var addrs, ctls []string
	addrs, ctls = append(addrs, rbin), append(ctls, rctl)
	for i := 1; i < 3; i++ {
		_, bin, ctl := startShard(t, rtaShardConfig(uint64(5+i)))
		addrs, ctls = append(addrs, bin), append(ctls, ctl)
	}
	_, rc, routerCtl := startRouter(t, Config{
		Shards: addrs, ShardControl: ctls,
		Lines: 768, Groups: 3, GroupMap: []int{0, 1, 2},
		Conns: 2, Window: 8,
		HealthEvery: 100 * time.Millisecond,
	})
	ra, rres := runRTA(t, rc, metricsOracle(memserver.NewClient("http://"+routerCtl), 64))

	// The recovered sequence must be the ground truth of shard 0's
	// scheme — in LOCAL line space, which the blocked map made equal to
	// the logical space the attacker addressed.
	scheme := rs.Memory().Bank(0).Scheme().(*rbsg.Scheme)
	want := groundTruth(scheme, 17, 6)
	got := ra.Sequence()
	if len(got) < len(want) {
		t.Fatalf("recovered %d addresses through the router, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence[%d] = %d through the router, ground truth %d (got %v want %v)",
				i, got[i], want[i], got, want)
		}
	}

	// Both schemes are identically seeded, so the direct leg's ground
	// truth is the same sequence — and the attack cost must match
	// exactly, phase by phase: the router added no writes, dropped no
	// writes, and left every latency byte-identical.
	dScheme := ds.Memory().Bank(0).Scheme().(*rbsg.Scheme)
	dWant := groundTruth(dScheme, 17, 6)
	for i := range want {
		if want[i] != dWant[i] {
			t.Fatalf("twin shards disagree on ground truth at %d: %v vs %v", i, want, dWant)
		}
	}
	if dres.Writes != rres.Writes ||
		da.AlignmentWrites != ra.AlignmentWrites ||
		da.DetectionWrites != ra.DetectionWrites ||
		da.WearWrites != ra.WearWrites {
		t.Fatalf("router changed the attack cost: direct writes=%d (align %d, detect %d, wear %d), routed writes=%d (align %d, detect %d, wear %d)",
			dres.Writes, da.AlignmentWrites, da.DetectionWrites, da.WearWrites,
			rres.Writes, ra.AlignmentWrites, ra.DetectionWrites, ra.WearWrites)
	}

	// The untouched shards must be untouched: the attack stream never
	// leaked across the map.
	for _, ctl := range ctls[1:] {
		m, err := memserver.NewClient("http://" + ctl).Metrics()
		if err != nil {
			t.Fatal(err)
		}
		if m["memctld_demand_writes_total"] != 0 || m["memctld_demand_reads_total"] != 0 {
			t.Fatalf("attack traffic leaked onto an unaddressed shard (%s): %v writes, %v reads",
				ctl, m["memctld_demand_writes_total"], m["memctld_demand_reads_total"])
		}
	}
	t.Logf("router RTA: %d writes (align %d, detect %d, wear %d), direct identical",
		rres.Writes, ra.AlignmentWrites, ra.DetectionWrites, ra.WearWrites)
}

package memrouter

import (
	"sync"
	"sync/atomic"
	"time"

	"securityrbsg/internal/memserver"
)

// Per-shard connection pools. Each pool owns a small, fixed set of
// binary-protocol connections to one memctld shard; each connection
// runs a sender goroutine and a receiver goroutine sharing one
// BinaryClient (whose send and receive halves are disjoint by
// contract), with up to `window` frames in flight between them. That
// pipelining is where the router's throughput comes from: many client
// frames multiplex onto few shard connections without waiting out a
// round trip per frame, and the shard answers strictly in order, so
// the inflight queue IS the correlation state — no request IDs on the
// wire.

// Job completion states.
const (
	jobOK     = iota // resp/rresp carries the sub-batch results
	jobNack          // shard backpressure; partial accounting decoded
	jobFailed        // transport or protocol loss; no trusted results
)

// shardJob is one shard sub-batch in flight. The ops/lines slices
// alias the owning frame's split plan — valid until done is signaled,
// after which only the response fields may be read.
type shardJob struct {
	read      bool
	ops       []memserver.BatchOp // write path: shard-local ops
	lines     []uint64            // read path: shard-local lines
	resp      memserver.BatchResponse
	rresp     memserver.ReadBatchResponse
	state     int
	retrySecs uint32
	done      chan struct{} // cap 1; one signal per dispatch
}

var jobPool = sync.Pool{New: func() any {
	return &shardJob{done: make(chan struct{}, 1)}
}}

func getJob() *shardJob {
	j := jobPool.Get().(*shardJob)
	j.read = false
	j.ops = nil
	j.lines = nil
	j.state = jobOK
	j.retrySecs = 0
	return j
}

func putJob(j *shardJob) { jobPool.Put(j) }

// fail marks the job lost and signals completion.
func (j *shardJob) fail() {
	j.state = jobFailed
	j.done <- struct{}{}
}

// shardPool is the per-shard connection set plus the shard's routing
// counters.
type shardPool struct {
	shard int
	addr  string
	jobs  chan *shardJob

	up    atomic.Int32  // live connections
	ops   atomic.Uint64 // line ops routed to this shard
	nacks atomic.Uint64 // sub-batches the shard Nacked
	errs  atomic.Uint64 // sub-batches lost to transport/protocol failure

	stop chan struct{}
	wg   sync.WaitGroup
}

// newShardPool starts conns connections to addr, each pipelining up to
// window frames.
func newShardPool(shard int, addr string, conns, window int) *shardPool {
	p := &shardPool{
		shard: shard,
		addr:  addr,
		jobs:  make(chan *shardJob, conns*window),
		stop:  make(chan struct{}),
	}
	for i := 0; i < conns; i++ {
		p.wg.Add(1)
		go p.connLoop(window)
	}
	return p
}

// enqueue offers a job without blocking: a full pool queue is router
// backpressure, surfaced to the client as a Nack exactly like a full
// bank queue on the shard itself.
func (p *shardPool) enqueue(j *shardJob) bool {
	select {
	case p.jobs <- j:
		return true
	default:
		return false
	}
}

// healthy reports whether any connection to the shard is live.
func (p *shardPool) healthy() bool { return p.up.Load() > 0 }

// close stops the pool. The frontend must already have drained: every
// dispatched job completes before its frame finishes, so by the time
// close runs the jobs queue is empty.
func (p *shardPool) close() {
	close(p.stop)
	p.wg.Wait()
}

// drainJobs fails every currently queued job. Called when the shard is
// unreachable so client frames waiting on it resolve into Nacks (and
// client retries) instead of hanging until the shard returns.
func (p *shardPool) drainJobs() {
	for {
		select {
		case j := <-p.jobs:
			p.errs.Add(1)
			j.fail()
		default:
			return
		}
	}
}

// connLoop keeps one connection slot filled: dial, run until the
// connection dies, back off, redial — so a restarted shard is picked
// back up without router intervention.
func (p *shardPool) connLoop(window int) {
	defer p.wg.Done()
	backoff := 50 * time.Millisecond
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		bc, err := memserver.DialBinary(p.addr)
		if err != nil {
			if p.up.Load() == 0 {
				p.drainJobs()
			}
			select {
			case <-p.stop:
				return
			case <-time.After(backoff): //rbsglint:allow simdeterminism -- connection supervision, not simulation state
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			continue
		}
		backoff = 50 * time.Millisecond
		p.up.Add(1)
		p.runConn(bc, window)
		if p.up.Add(-1) == 0 {
			p.drainJobs()
		}
		bc.Close()
	}
}

// runConn is one connection's lifetime: the calling goroutine sends,
// a spawned goroutine receives, and the bounded inflight channel
// between them carries jobs in send order — which is response order,
// by the wire contract.
func (p *shardPool) runConn(bc *memserver.BinaryClient, window int) {
	inflight := make(chan *shardJob, window)
	dead := make(chan struct{})
	var once sync.Once
	kill := func() {
		once.Do(func() {
			close(dead)
			bc.Close() // wakes a blocked send or receive
		})
	}

	var recvWG sync.WaitGroup
	recvWG.Add(1)
	go func() {
		defer recvWG.Done()
		lost := false
		for j := range inflight {
			if lost {
				// The connection died mid-window: every later response
				// is gone with it.
				p.errs.Add(1)
				j.fail()
				continue
			}
			var err error
			if j.read {
				err = bc.RecvReadBatch(&j.rresp)
			} else {
				err = bc.RecvBatch(&j.resp)
			}
			switch e := err.(type) {
			case nil:
				j.state = jobOK
			case *memserver.BackpressureError:
				if (j.read && e.ReadResp == nil) || (!j.read && e.Resp == nil) {
					j.state = jobFailed
					p.errs.Add(1)
				} else {
					j.state = jobNack
					j.retrySecs = uint32(e.RetryAfter / time.Second)
					p.nacks.Add(1)
				}
			case *memserver.WireError:
				// Protocol-level reject: the shard answered, the
				// connection survives, but the sub-batch did not land.
				j.state = jobFailed
				p.errs.Add(1)
			default:
				j.state = jobFailed
				p.errs.Add(1)
				lost = true
				kill()
			}
			j.done <- struct{}{}
		}
	}()

	for {
		var j *shardJob
		select {
		case <-p.stop:
			goto out
		case <-dead:
			goto out
		case j = <-p.jobs:
		}
		var err error
		if j.read {
			err = bc.SendReadBatch(j.lines)
		} else {
			err = bc.SendBatch(j.ops)
		}
		if err != nil {
			// Never entered inflight, so the receiver will not touch it.
			p.errs.Add(1)
			j.fail()
			kill()
			goto out
		}
		if j.read {
			p.ops.Add(uint64(len(j.lines)))
		} else {
			p.ops.Add(uint64(len(j.ops)))
		}
		select {
		case inflight <- j:
		case <-dead:
			p.errs.Add(1)
			j.fail()
			goto out
		}
	}
out:
	close(inflight)
	recvWG.Wait()
}

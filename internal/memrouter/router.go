package memrouter

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes one router instance.
type Config struct {
	// Shards lists the shard binary-protocol addresses (host:port),
	// indexed by shard number. Required.
	Shards []string
	// ShardControl lists the shards' HTTP control planes (for health
	// checks and metric aggregation), aligned with Shards. Optional:
	// without it, health falls back to connection liveness and /metrics
	// serves only the router's own series.
	ShardControl []string
	// Lines is the total logical line space the router serves. Required;
	// must divide evenly into Groups.
	Lines uint64
	// Groups is the bank-group count (default: one group per shard).
	Groups int
	// GroupMap assigns groups to shards explicitly; nil uses the
	// deterministic rendezvous fallback.
	GroupMap []int
	// Conns is the connection-pool size per shard (default 2).
	Conns int
	// Window is the in-flight frame window per shard connection
	// (default 32).
	Window int
	// FrontendWindow is the in-flight frame window per client
	// connection (default 32).
	FrontendWindow int
	// HealthEvery is the shard health-probe period (default 2s).
	HealthEvery time.Duration
}

func (c *Config) normalize() error {
	if len(c.Shards) == 0 {
		return fmt.Errorf("memrouter: no shards configured")
	}
	if len(c.ShardControl) != 0 && len(c.ShardControl) != len(c.Shards) {
		return fmt.Errorf("memrouter: %d control addresses for %d shards", len(c.ShardControl), len(c.Shards))
	}
	if c.Conns <= 0 {
		c.Conns = 2
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.FrontendWindow <= 0 {
		c.FrontendWindow = 32
	}
	if c.HealthEvery <= 0 {
		c.HealthEvery = 2 * time.Second
	}
	return nil
}

// Router fans binary-protocol traffic out over the shard set. It holds
// no wear-leveling state — the map and the pools are the whole thing —
// so routers scale horizontally in front of a fixed shard tier.
type Router struct {
	cfg   Config
	m     *Map
	pools []*shardPool

	fe       frontendState
	draining atomic.Bool
	started  atomic.Bool

	// Serving counters (/metrics).
	frames   atomic.Uint64 // frames processed on the client listener
	rejects  atomic.Uint64 // frames rejected before routing
	nacks    atomic.Uint64 // frames answered with aggregated backpressure
	lineOps  atomic.Uint64 // line ops routed (batch + read frames)
	readOps  atomic.Uint64 // of those, ops on streaming read-batch frames
	splitFr  atomic.Uint64 // frames that touched more than one shard
	healthMu sync.Mutex
	health   []shardHealth // probe results, indexed by shard

	stopHealth chan struct{}
	healthWG   sync.WaitGroup
}

// shardHealth is one shard's last probe result.
type shardHealth struct {
	ok     bool
	detail string // why not, for /healthz bodies
}

// New builds a router (pools not yet dialing; call Start).
func New(cfg Config) (*Router, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	m, err := NewMap(cfg.Lines, cfg.Groups, len(cfg.Shards), cfg.GroupMap)
	if err != nil {
		return nil, err
	}
	r := &Router{
		cfg:        cfg,
		m:          m,
		health:     make([]shardHealth, len(cfg.Shards)),
		stopHealth: make(chan struct{}),
	}
	for i := range r.health {
		r.health[i] = shardHealth{ok: false, detail: "not probed yet"}
	}
	return r, nil
}

// Map exposes the bank-group map (topology introspection and tests).
func (r *Router) Map() *Map { return r.m }

// Start dials the shard pools and begins health probing.
func (r *Router) Start() {
	if r.started.Swap(true) {
		return
	}
	r.pools = make([]*shardPool, len(r.cfg.Shards))
	for i, addr := range r.cfg.Shards {
		r.pools[i] = newShardPool(i, addr, r.cfg.Conns, r.cfg.Window)
	}
	r.healthWG.Add(1)
	go r.healthLoop()
}

// Draining reports whether Shutdown has begun.
func (r *Router) Draining() bool { return r.draining.Load() }

// Shutdown drains the router: the client listener closes and every
// in-flight frame finishes (or ctx expires), then the shard pools and
// the health prober stop. The shards must still be up while this runs
// — which is why the smoke script SIGTERMs the router first and the
// shards after.
func (r *Router) Shutdown(ctx context.Context) error {
	if r.draining.Swap(true) {
		return nil
	}
	err := r.shutdownFrontend(ctx)
	close(r.stopHealth)
	r.healthWG.Wait()
	if r.started.Load() {
		for _, p := range r.pools {
			p.close()
		}
	}
	return err
}

package memrouter

import (
	"context"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"securityrbsg/internal/memserver"
	"securityrbsg/internal/stats"
)

// shardSpec is one test shard's memserver config.
func shardConfig(lines uint64, seed uint64) memserver.Config {
	return memserver.Config{
		Banks: 1, Lines: lines, Scheme: memserver.SchemeRBSG,
		Regions: 8, Interval: 4, Seed: seed,
		QueueDepth: 64, SnapshotEvery: 1,
	}
}

// startShard boots one memctld-shaped shard: actors, binary listener,
// HTTP control plane. Returns the binary address and the control
// host:port.
func startShard(t *testing.T, cfg memserver.Config) (*memserver.Server, string, string) {
	t.Helper()
	s, err := memserver.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("shard drain: %v", err)
		}
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.ServeBinary(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.ShutdownBinary(ctx); err != nil {
			t.Errorf("shard binary shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("shard serve: %v", err)
		}
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ln.Addr().String(), strings.TrimPrefix(ts.URL, "http://")
}

// startRouter boots a router over the given shard addresses and
// returns it, a connected client, and the router's control host:port.
func startRouter(t *testing.T, cfg Config) (*Router, *memserver.BinaryClient, string) {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- r.ServeBinary(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := r.Shutdown(ctx); err != nil {
			t.Errorf("router shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("router serve: %v", err)
		}
	})
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(ts.Close)
	c, err := memserver.DialBinary(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return r, c, strings.TrimPrefix(ts.URL, "http://")
}

// threeShardRouter is the standard test topology: 3 single-bank shards
// of 256 lines each, identity group map, control planes wired up.
func threeShardRouter(t *testing.T, conns, window int) (*Router, *memserver.BinaryClient, string) {
	t.Helper()
	var addrs, ctls []string
	for i := 0; i < 3; i++ {
		_, bin, ctl := startShard(t, shardConfig(256, uint64(5+i)))
		addrs = append(addrs, bin)
		ctls = append(ctls, ctl)
	}
	return startRouter(t, Config{
		Shards: addrs, ShardControl: ctls,
		Lines: 768, Groups: 3, GroupMap: []int{0, 1, 2},
		Conns: conns, Window: window,
		HealthEvery: 100 * time.Millisecond,
	})
}

// TestRouterSingleShardMatchesDirect: a one-shard router is a
// transparent proxy — per-op latencies, data, and accounting are
// byte-identical to a direct connection against an identically seeded
// shard. This is the router's differential base case.
func TestRouterSingleShardMatchesDirect(t *testing.T) {
	_, direct, _ := startShard(t, shardConfig(256, 5))
	dc, err := memserver.DialBinary(direct)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dc.Close() })

	_, bin, ctl := startShard(t, shardConfig(256, 5))
	_, rc, _ := startRouter(t, Config{
		Shards: []string{bin}, ShardControl: []string{ctl}, Lines: 256,
	})

	rng := stats.NewRNG(3)
	ops := make([]memserver.BatchOp, 64)
	for round := 0; round < 5; round++ {
		for i := range ops {
			ops[i] = memserver.BatchOp{Line: rng.Uint64n(256), Data: uint8(rng.Uint64n(3))}
			if rng.Float64() < 0.25 {
				ops[i].Read = true
				ops[i].Data = 0
			}
		}
		dr, err := dc.Batch(ops)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := rc.Batch(ops)
		if err != nil {
			t.Fatal(err)
		}
		if dr.Applied != rr.Applied || dr.Rejected != rr.Rejected ||
			dr.NsSum != rr.NsSum || dr.NsMax != rr.NsMax {
			t.Fatalf("round %d accounting: direct %+v != routed %+v", round, dr, rr)
		}
		for i := range ops {
			if dr.Ns[i] != rr.Ns[i] || dr.Data[i] != rr.Data[i] {
				t.Fatalf("round %d op %d: direct ns=%d d=%d, routed ns=%d d=%d",
					round, i, dr.Ns[i], dr.Data[i], rr.Ns[i], rr.Data[i])
			}
		}
	}
}

// TestRouterSplitBatchRoundTrip: batches spanning all three shards
// write and read back correctly, and the routing metrics attribute the
// ops to the right shards.
func TestRouterSplitBatchRoundTrip(t *testing.T) {
	r, c, _ := threeShardRouter(t, 2, 8)

	ops := make([]memserver.BatchOp, 0, 96)
	for i := 0; i < 96; i++ {
		line := uint64(i) * 8 // spreads over [0,768): all three shards
		ops = append(ops, memserver.BatchOp{Line: line, Data: uint8(line % 3)})
	}
	if _, err := c.Batch(ops); err != nil {
		t.Fatal(err)
	}
	reads := make([]memserver.BatchOp, len(ops))
	for i, o := range ops {
		reads[i] = memserver.BatchOp{Line: o.Line, Read: true}
	}
	resp, err := c.Batch(reads)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range ops {
		if resp.Data[i] != o.Data {
			t.Fatalf("line %d read back %d, want %d", o.Line, resp.Data[i], o.Data)
		}
		if resp.Ns[i] == 0 {
			t.Fatalf("line %d: zero latency crossed the router", o.Line)
		}
	}

	for s := 0; s < 3; s++ {
		if got := r.pools[s].ops.Load(); got != 64 {
			t.Fatalf("shard %d routed %d ops, want 64 (32 writes + 32 reads)", s, got)
		}
	}
	m := memserver.ParseMetrics(r.MetricsText())
	if m["router_split_frames_total"] != 2 {
		t.Fatalf("router_split_frames_total = %v, want 2", m["router_split_frames_total"])
	}
	if m["router_line_ops_total"] != 192 {
		t.Fatalf("router_line_ops_total = %v, want 192", m["router_line_ops_total"])
	}
	// The shard passthrough aggregates: summed memctld_lines must be
	// the whole 768-line deployment.
	if m["memctld_lines"] != 768 {
		t.Fatalf("aggregated memctld_lines = %v, want 768", m["memctld_lines"])
	}
}

// TestRouterReadModeMatchesFullBatch: the streaming read-batch frame
// through the router returns the same data as full-batch reads.
func TestRouterReadModeMatchesFullBatch(t *testing.T) {
	_, c, _ := threeShardRouter(t, 2, 8)

	writes := make([]memserver.BatchOp, 0, 60)
	lines := make([]uint64, 0, 60)
	for i := 0; i < 60; i++ {
		line := uint64(i) * 12 % 768
		writes = append(writes, memserver.BatchOp{Line: line, Data: uint8((i + 1) % 3)})
		lines = append(lines, line)
	}
	if _, err := c.Batch(writes); err != nil {
		t.Fatal(err)
	}
	rr, err := c.ReadBatch(lines)
	if err != nil {
		t.Fatal(err)
	}
	full := make([]memserver.BatchOp, len(lines))
	for i, l := range lines {
		full[i] = memserver.BatchOp{Line: l, Read: true}
	}
	fr, err := c.Batch(full)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Applied != fr.Applied {
		t.Fatalf("read-mode applied %d, full %d", rr.Applied, fr.Applied)
	}
	for i := range lines {
		if rr.Data[i] != fr.Data[i] {
			t.Fatalf("line %d: read-mode %d != full %d", lines[i], rr.Data[i], fr.Data[i])
		}
	}
}

// TestRouterPoolWindowInvariance: pool size and pipeline window are
// performance knobs, never semantics — the same lockstep op stream
// over (1,1), (2,4), (3,8) topologies yields identical latencies and
// data.
func TestRouterPoolWindowInvariance(t *testing.T) {
	type result struct {
		ns   []uint64
		data []uint8
	}
	run := func(conns, window int) result {
		_, c, _ := threeShardRouter(t, conns, window)
		rng := stats.NewRNG(17)
		var out result
		ops := make([]memserver.BatchOp, 48)
		for round := 0; round < 6; round++ {
			for i := range ops {
				ops[i] = memserver.BatchOp{Line: rng.Uint64n(768), Data: uint8(rng.Uint64n(3))}
				if i%4 == 0 {
					ops[i].Read = true
					ops[i].Data = 0
				}
			}
			resp, err := c.Batch(ops)
			if err != nil {
				t.Fatal(err)
			}
			out.ns = append(out.ns, resp.Ns...)
			out.data = append(out.data, resp.Data...)
		}
		return out
	}
	base := run(1, 1)
	for _, tc := range []struct{ conns, window int }{{2, 4}, {3, 8}} {
		got := run(tc.conns, tc.window)
		for i := range base.ns {
			if got.ns[i] != base.ns[i] || got.data[i] != base.data[i] {
				t.Fatalf("conns=%d window=%d op %d: ns=%d d=%d, want ns=%d d=%d",
					tc.conns, tc.window, i, got.ns[i], got.data[i], base.ns[i], base.data[i])
			}
		}
	}
}

// TestRouterPipelinedClient: a pipelined client window crosses the
// router with in-order completion, same as against a shard directly.
func TestRouterPipelinedClient(t *testing.T) {
	_, c, _ := threeShardRouter(t, 2, 8)
	const window = 12
	for i := 0; i < window; i++ {
		// Each frame spans all three shards.
		ops := []memserver.BatchOp{
			{Line: uint64(i), Data: uint8(i % 3)},
			{Line: 256 + uint64(i), Data: uint8((i + 1) % 3)},
			{Line: 512 + uint64(i), Data: uint8((i + 2) % 3)},
		}
		if err := c.SendBatch(ops); err != nil {
			t.Fatal(err)
		}
	}
	var resp memserver.BatchResponse
	for i := 0; i < window; i++ {
		if err := c.RecvBatch(&resp); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if resp.Applied != 3 {
			t.Fatalf("frame %d applied %d, want 3", i, resp.Applied)
		}
	}
	// Read everything back lockstep to pin the writes landed.
	for i := 0; i < window; i++ {
		for s := 0; s < 3; s++ {
			ops := []memserver.BatchOp{{Line: uint64(s*256 + i), Read: true}}
			resp, err := c.Batch(ops)
			if err != nil {
				t.Fatal(err)
			}
			if want := uint8((i + s) % 3); resp.Data[0] != want {
				t.Fatalf("shard %d line %d: data %d, want %d", s, i, resp.Data[0], want)
			}
		}
	}
}

// TestRouterHealthz: all shards up → healthy; a line-count mismatch
// between the map and a shard is an unhealthy deployment, loudly.
func TestRouterHealthz(t *testing.T) {
	r, _, _ := threeShardRouter(t, 1, 4)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ok, _ := r.Healthy(); ok {
			break
		}
		if time.Now().After(deadline) {
			_, detail := r.Healthy()
			t.Fatalf("router never became healthy: %s", detail)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Misconfigured topology: shard sized 512 where the map wants 256.
	_, bin, ctl := startShard(t, shardConfig(512, 9))
	r2, err := New(Config{
		Shards: []string{bin}, ShardControl: []string{ctl}, Lines: 256,
		HealthEvery: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r2.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		r2.Shutdown(ctx)
	})
	deadline = time.Now().Add(5 * time.Second)
	for {
		ok, detail := r2.Healthy()
		if !ok && strings.Contains(detail, "map assigns") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("line-count mismatch not detected (ok=%v detail=%q)", ok, detail)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRouterDrainingGoodbye: after Shutdown begins, a connected client
// is told the router is draining with a typed Err frame.
func TestRouterDrainingGoodbye(t *testing.T) {
	_, bin, ctl := startShard(t, shardConfig(256, 5))
	r, c, _ := startRouter(t, Config{
		Shards: []string{bin}, ShardControl: []string{ctl}, Lines: 256,
	})
	if _, err := c.Batch([]memserver.BatchOp{{Line: 1, Data: 1}}); err != nil {
		t.Fatal(err)
	}
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		r.Shutdown(ctx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := c.Batch([]memserver.BatchOp{{Line: 1, Data: 1}})
		if err != nil {
			if we, ok := err.(*memserver.WireError); ok && we.Code == memserver.WireErrDraining {
				return // the goodbye frame arrived
			}
			return // connection already torn down: also a clean outcome
		}
		if time.Now().After(deadline) {
			t.Fatal("router kept serving long after Shutdown")
		}
	}
}

// Package memrouter is the distributed front of memctld: a stateless
// router that owns no banks and no scheme state, only a bank-group map
// and connection pools, and fans binary-protocol batches out across N
// memctld shard processes.
//
// The paper's controller manages each bank separately; memserver turned
// that into per-bank actors inside one process. The router is the next
// scaling step out: bank *groups* — contiguous runs of the logical line
// space — are assigned to shard processes, each shard running an
// unmodified memctld over its own lines. The map is blocked, not
// interleaved: group g covers logical lines [g·perGroup, (g+1)·perGroup),
// so a region-local access pattern (and in particular an attacker
// hammering one region, which is what the RTA does) lands on one shard
// with contiguous local lines — the shard's detector and scheme see
// exactly the stream they would see standalone, which is what makes the
// router-vs-direct attack regression an equality test rather than an
// approximation.
//
// Because the router holds no wear-leveling state, any number of router
// instances can front the same shard set; scaling the serving tier and
// scaling the simulation tier are independent.
package memrouter

import "fmt"

// Map is the bank-group → shard assignment: the one piece of routing
// state, immutable after construction.
type Map struct {
	lines    uint64
	perGroup uint64
	shards   int
	groupOf  []int    // group → shard
	rank     []uint64 // group → position among its shard's groups (ascending)
	local    []uint64 // shard → local line count (perGroup × owned groups)
}

// NewMap builds the map. lines must divide evenly into groups; groupMap
// (group → shard index) is explicit operator intent, or nil for the
// deterministic rendezvous-hash fallback. Every shard must own at least
// one group — a shard with no lines is a wiring mistake, not a
// degenerate case to serve around.
func NewMap(lines uint64, groups, shards int, groupMap []int) (*Map, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("memrouter: map needs at least one shard")
	}
	if groups <= 0 {
		groups = shards
	}
	if groups < shards {
		return nil, fmt.Errorf("memrouter: %d groups cannot cover %d shards", groups, shards)
	}
	if lines == 0 || lines%uint64(groups) != 0 {
		return nil, fmt.Errorf("memrouter: %d lines do not divide into %d groups", lines, groups)
	}
	if groupMap == nil {
		groupMap = rendezvousMap(groups, shards)
	}
	if len(groupMap) != groups {
		return nil, fmt.Errorf("memrouter: group map has %d entries for %d groups", len(groupMap), groups)
	}
	m := &Map{
		lines:    lines,
		perGroup: lines / uint64(groups),
		shards:   shards,
		groupOf:  append([]int(nil), groupMap...),
		rank:     make([]uint64, groups),
		local:    make([]uint64, shards),
	}
	counts := make([]uint64, shards)
	for g, s := range m.groupOf {
		if s < 0 || s >= shards {
			return nil, fmt.Errorf("memrouter: group %d maps to shard %d, outside [0,%d)", g, s, shards)
		}
		m.rank[g] = counts[s] // groups scan ascending, so rank is the ascending position
		counts[s]++
	}
	for s, n := range counts {
		if n == 0 {
			return nil, fmt.Errorf("memrouter: shard %d owns no groups", s)
		}
		m.local[s] = n * m.perGroup
	}
	return m, nil
}

// rendezvousMap assigns groups to shards by highest-random-weight
// hashing: deterministic, dependency-free, and stable under shard-list
// reordering only if the operator keeps indices stable — which is why
// an explicit groupMap is the production path and this is the fallback
// for quick topologies.
func rendezvousMap(groups, shards int) []int {
	gm := make([]int, groups)
	for g := range gm {
		best, bestW := 0, uint64(0)
		for s := 0; s < shards; s++ {
			w := mix(uint64(g)<<32 | uint64(s))
			if w > bestW {
				best, bestW = s, w
			}
		}
		gm[g] = best
	}
	// Rendezvous can starve a shard on tiny group counts; rotate
	// leftovers onto empty shards so the every-shard-owns-lines
	// invariant holds for any groups ≥ shards.
	owned := make([]int, shards)
	for _, s := range gm {
		owned[s]++
	}
	for s := 0; s < shards; s++ {
		for owned[s] == 0 {
			for g, o := range gm {
				if owned[o] > 1 {
					owned[o]--
					gm[g] = s
					owned[s]++
					break
				}
			}
		}
	}
	return gm
}

// mix is splitmix64's finalizer: a cheap, well-distributed integer hash.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Lines is the total logical line count the map covers.
func (m *Map) Lines() uint64 { return m.lines }

// Shards is the shard count.
func (m *Map) Shards() int { return m.shards }

// Groups is the bank-group count.
func (m *Map) Groups() int { return len(m.groupOf) }

// LocalLines is the line count shard s must be configured with — the
// health check cross-checks it against the shard's own memctld_lines.
func (m *Map) LocalLines(s int) uint64 { return m.local[s] }

// GroupShard is the shard owning group g (topology introspection).
func (m *Map) GroupShard(g int) int { return m.groupOf[g] }

// Locate maps a logical line to its shard and the shard-local line.
// Blocked layout: the local line preserves the offset within the group,
// and a shard's groups concatenate in ascending group order.
//
//rbsglint:hotpath
func (m *Map) Locate(line uint64) (shard int, local uint64) {
	g := line / m.perGroup
	s := m.groupOf[g]
	return s, m.rank[g]*m.perGroup + line%m.perGroup
}

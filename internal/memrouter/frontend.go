package memrouter

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"securityrbsg/internal/memserver"
)

// The client-facing binary listener. The router speaks the exact
// memserver wire protocol — same frames, same version, same error
// codes — so every existing client (BinaryClient, loadgen, binprobe,
// the attack harness) points at a router instead of a shard and cannot
// tell the difference.
//
// Each client connection runs a reader and a writer goroutine with a
// bounded queue of in-flight frames between them: the reader decodes,
// splits, and dispatches frame i+1 to the shard pools while frame i is
// still waiting on shard responses, and the writer answers strictly in
// arrival order. A pipelined client therefore overlaps its window
// across the router AND the shards; a lockstep client just sees a
// normal request/response server.

// frontendState tracks listeners and live client connections so a
// drain can stop them gracefully (memserver's binaryState shape).
type frontendState struct {
	mu      sync.Mutex
	lns     []net.Listener
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
	closing bool
}

// frameJob is one client frame in flight through the router: either a
// precomputed reject (out set, nothing dispatched) or a split batch
// waiting on its shard jobs. Pooled: a connection at window W keeps at
// most W+1 alive.
type frameJob struct {
	out      []byte // precomputed response frame (reject path); nil when routed
	fatal    bool   // close the connection after writing out
	read     bool
	total    int
	ops      []memserver.BatchOp // decode buffer (aliased by plan via split)
	plan     splitPlan
	jobs     []*shardJob // aligned with plan.touched; nil = enqueue refused
	outcomes []shardOutcome
	resp     memserver.BatchResponse
	buf      []byte // response encode buffer
}

var framePool = sync.Pool{New: func() any { return new(frameJob) }}

func getFrame() *frameJob {
	fj := framePool.Get().(*frameJob)
	fj.out = nil
	fj.fatal = false
	fj.read = false
	fj.total = 0
	fj.jobs = fj.jobs[:0]
	fj.outcomes = fj.outcomes[:0]
	return fj
}

// ServeBinary accepts client connections on ln until the listener
// closes. It returns nil on a clean close.
func (r *Router) ServeBinary(ln net.Listener) error {
	r.fe.mu.Lock()
	if r.fe.conns == nil {
		r.fe.conns = make(map[net.Conn]struct{})
	}
	r.fe.lns = append(r.fe.lns, ln)
	r.fe.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		r.fe.mu.Lock()
		if r.fe.closing {
			r.fe.mu.Unlock()
			c.Close()
			continue
		}
		r.fe.conns[c] = struct{}{}
		r.fe.wg.Add(1)
		r.fe.mu.Unlock()
		go r.handleConn(c)
	}
}

// shutdownFrontend closes the listeners, wakes blocked readers, and
// waits for every connection's in-flight frames to answer (or ctx to
// expire, which force-closes).
func (r *Router) shutdownFrontend(ctx context.Context) error {
	r.fe.mu.Lock()
	r.fe.closing = true
	for _, ln := range r.fe.lns {
		ln.Close()
	}
	r.fe.lns = nil
	for c := range r.fe.conns {
		c.SetReadDeadline(time.Unix(0, 1)) //rbsglint:allow simdeterminism -- connection teardown plumbing, not simulation state
	}
	r.fe.mu.Unlock()

	done := make(chan struct{})
	go func() { r.fe.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		r.fe.mu.Lock()
		for c := range r.fe.conns {
			c.Close()
		}
		r.fe.mu.Unlock()
		return fmt.Errorf("memrouter: frontend shutdown: %w", ctx.Err())
	}
}

func (r *Router) frontendClosing() bool {
	r.fe.mu.Lock()
	defer r.fe.mu.Unlock()
	return r.fe.closing
}

// handleConn runs one client connection: this goroutine reads and
// dispatches, a second one completes and writes, the pending channel
// between them bounds the per-connection frame window.
func (r *Router) handleConn(c net.Conn) {
	defer func() {
		r.fe.mu.Lock()
		delete(r.fe.conns, c)
		r.fe.mu.Unlock()
		r.fe.wg.Done()
		c.Close()
	}()
	pending := make(chan *frameJob, r.cfg.FrontendWindow)
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		r.writeLoop(c, pending)
	}()
	r.readLoop(c, pending)
	close(pending)
	wwg.Wait()
}

// readLoop reads frames, routes them, and hands them to the writer in
// arrival order. It returns on any read error or fatal frame.
func (r *Router) readLoop(c net.Conn, pending chan<- *frameJob) {
	var hdr [4]byte
	var body []byte
	for {
		if err := readFull(c, hdr[:]); err != nil {
			if r.frontendClosing() {
				fj := getFrame()
				fj.out = r.errFrame(fj, memserver.WireErrDraining, "router draining")
				fj.fatal = true
				pending <- fj
			}
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n > memserver.WireMaxBody {
			r.rejects.Add(1)
			fj := getFrame()
			fj.out = r.errFrame(fj, memserver.WireErrTooLarge, "frame body over limit")
			fj.fatal = true
			pending <- fj
			return
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if err := readFull(c, body); err != nil {
			return
		}
		fj := getFrame()
		fatal := r.routeFrame(fj, body)
		pending <- fj
		if fatal {
			return
		}
	}
}

// routeFrame decodes and validates one frame body and dispatches its
// shard jobs (or precomputes a reject). The returned flag closes the
// connection after the response goes out.
//
//rbsglint:hotpath
func (r *Router) routeFrame(fj *frameJob, body []byte) (fatal bool) {
	r.frames.Add(1)
	if len(body) < memserver.WireHdrSize {
		r.rejects.Add(1)
		fj.out = r.errFrame(fj, memserver.WireErrMalformed, "frame body under header size")
		return false
	}
	if body[0] != memserver.WireVersion {
		r.rejects.Add(1)
		fj.out = r.errFrame(fj, memserver.WireErrVersion, "router speaks version 1")
		return false
	}
	if r.draining.Load() {
		r.rejects.Add(1)
		fj.out = r.errFrame(fj, memserver.WireErrDraining, "router draining")
		return true
	}
	var code uint16
	switch body[1] {
	case memserver.WireFrameBatchReq:
		fj.ops, code = memserver.DecodeWireBatchReq(body[memserver.WireHdrSize:], fj.ops)
	case memserver.WireFrameReadReq:
		fj.read = true
		fj.ops, code = memserver.DecodeWireReadReq(body[memserver.WireHdrSize:], fj.ops)
	default:
		r.rejects.Add(1)
		fj.out = r.errFrame(fj, memserver.WireErrMalformed, "frame type not batch-req or read-req")
		return false
	}
	if code != 0 {
		r.rejects.Add(1)
		fj.out = r.errFrame(fj, code, "batch payload failed decode")
		return false
	}
	for _, o := range fj.ops {
		if o.Line >= r.m.lines || o.Data > 2 {
			r.rejects.Add(1)
			fj.out = r.errFrame(fj, memserver.WireErrBadOp, "op line out of space or content class not in {0,1,2}")
			return false
		}
	}
	fj.total = len(fj.ops)
	r.lineOps.Add(uint64(fj.total))
	if fj.read {
		r.readOps.Add(uint64(fj.total))
	}

	split(r.m, fj.ops, fj.read, &fj.plan)
	if len(fj.plan.touched) > 1 {
		r.splitFr.Add(1)
	}
	for _, s := range fj.plan.touched {
		b := &fj.plan.batches[s]
		j := getJob()
		j.read = fj.read
		j.ops = b.ops
		j.lines = b.lines
		if !r.pools[s].enqueue(j) {
			// Router-level backpressure: the pool's queue is full. The
			// job never dispatched, so complete it here as a Nack-shaped
			// failure the merger aggregates.
			putJob(j)
			fj.jobs = append(fj.jobs, nil)
			continue
		}
		fj.jobs = append(fj.jobs, j)
	}
	return false
}

// errFrame encodes a complete Err response frame into fj's buffer.
func (r *Router) errFrame(fj *frameJob, code uint16, msg string) []byte {
	buf := frameStart(fj)
	buf = memserver.AppendWireErr(buf, code, msg)
	return frameFinish(buf)
}

// frameStart reserves the length prefix in fj's encode buffer.
//
//rbsglint:hotpath
func frameStart(fj *frameJob) []byte {
	if cap(fj.buf) < 4 {
		fj.buf = make([]byte, 4)
	}
	return fj.buf[:4]
}

// frameFinish fills the reserved length prefix.
//
//rbsglint:hotpath
func frameFinish(buf []byte) []byte {
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	return buf
}

// writeLoop completes frames in arrival order and writes their
// responses. After a write error it keeps draining — shard jobs must
// still be collected so their state returns to the pools — but stops
// writing.
func (r *Router) writeLoop(c net.Conn, pending <-chan *frameJob) {
	dead := false
	for fj := range pending {
		out := fj.out
		if out == nil {
			out = r.completeFrame(fj)
		}
		if !dead {
			if _, err := c.Write(out); err != nil {
				dead = true
			}
		}
		if fj.fatal {
			dead = true
			c.Close() // unblocks the reader; remaining frames drain
		}
		fj.buf = out[:0]
		framePool.Put(fj)
	}
}

// completeFrame waits for a routed frame's shard jobs, merges them,
// and encodes the client response.
//
//rbsglint:hotpath
func (r *Router) completeFrame(fj *frameJob) []byte {
	for k, s := range fj.plan.touched {
		b := &fj.plan.batches[s]
		oc := shardOutcome{batch: b}
		if j := fj.jobs[k]; j == nil {
			oc.failed = true
			oc.retryAfterSecs = memserver.WireNackRetryAfterSecs
		} else {
			<-j.done
			switch j.state {
			case jobOK, jobNack:
				oc.nacked = j.state == jobNack
				oc.retryAfterSecs = j.retrySecs
				if fj.read {
					oc.rresp = &j.rresp
				} else {
					oc.resp = &j.resp
				}
			default:
				oc.failed = true
			}
		}
		fj.outcomes = append(fj.outcomes, oc)
	}
	nack, retry := merge(fj.outcomes, fj.total, &fj.resp)
	for _, j := range fj.jobs {
		if j != nil {
			putJob(j) // merge has copied everything out
		}
	}

	buf := frameStart(fj)
	switch {
	case nack && fj.read:
		r.nacks.Add(1)
		buf = memserver.AppendWireReadNack(buf, retry, &fj.resp)
	case nack:
		r.nacks.Add(1)
		buf = memserver.AppendWireNack(buf, retry, &fj.resp)
	case fj.read:
		buf = memserver.AppendWireReadResp(buf, &fj.resp)
	default:
		buf = memserver.AppendWireBatchResp(buf, &fj.resp)
	}
	return frameFinish(buf)
}

// readFull fills buf from c (io.ReadFull without the out-of-module
// call; c.Read is dynamic dispatch the hot-path contract trusts).
//
//rbsglint:hotpath
func readFull(c net.Conn, buf []byte) error {
	for len(buf) > 0 {
		n, err := c.Read(buf)
		buf = buf[n:]
		if err != nil {
			if len(buf) == 0 {
				return nil
			}
			return err
		}
	}
	return nil
}

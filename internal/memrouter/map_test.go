package memrouter

import "testing"

func TestMapBlockedLayout(t *testing.T) {
	// 4 groups over 2 shards, interleaved assignment: the map must
	// concatenate each shard's groups in ascending order.
	m, err := NewMap(1024, 4, 2, []int{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		line  uint64
		shard int
		local uint64
	}{
		{0, 0, 0},
		{255, 0, 255},
		{256, 1, 0},
		{600, 0, 344},  // group 2 is shard 0's second group: 256 + 88
		{1023, 1, 511}, // group 3 is shard 1's second group
	}
	for _, c := range cases {
		s, l := m.Locate(c.line)
		if s != c.shard || l != c.local {
			t.Fatalf("Locate(%d) = (%d, %d), want (%d, %d)", c.line, s, l, c.shard, c.local)
		}
	}
	if m.LocalLines(0) != 512 || m.LocalLines(1) != 512 {
		t.Fatalf("local lines %d/%d, want 512/512", m.LocalLines(0), m.LocalLines(1))
	}

	// Identity topology: one group per shard, blocked — the RTA
	// geometry relies on local == line % perGroup.
	m, err = NewMap(768, 3, 3, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []uint64{0, 17, 255, 256, 511, 767} {
		s, l := m.Locate(line)
		if want := int(line / 256); s != want {
			t.Fatalf("Locate(%d) shard %d, want %d", line, s, want)
		}
		if want := line % 256; l != want {
			t.Fatalf("Locate(%d) local %d, want %d", line, l, want)
		}
	}
}

func TestMapRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		lines    uint64
		groups   int
		shards   int
		groupMap []int
	}{
		{1024, 4, 0, nil},               // no shards
		{1024, 2, 3, nil},               // fewer groups than shards
		{1000, 3, 3, nil},               // lines do not divide
		{0, 3, 3, nil},                  // no lines
		{1024, 4, 2, []int{0, 1}},       // map length mismatch
		{1024, 4, 2, []int{0, 2, 0, 1}}, // shard index out of range
		{1024, 4, 2, []int{0, 0, 0, 0}}, // shard 1 owns nothing
	}
	for _, c := range cases {
		if _, err := NewMap(c.lines, c.groups, c.shards, c.groupMap); err == nil {
			t.Fatalf("NewMap(%d, %d, %d, %v) accepted a bad config", c.lines, c.groups, c.shards, c.groupMap)
		}
	}
}

func TestRendezvousCoversAllShards(t *testing.T) {
	for _, tc := range []struct{ groups, shards int }{
		{3, 3}, {4, 2}, {8, 3}, {16, 5}, {64, 7},
	} {
		m, err := NewMap(uint64(tc.groups)*128, tc.groups, tc.shards, nil)
		if err != nil {
			t.Fatalf("groups=%d shards=%d: %v", tc.groups, tc.shards, err)
		}
		for s := 0; s < tc.shards; s++ {
			if m.LocalLines(s) == 0 {
				t.Fatalf("groups=%d shards=%d: shard %d owns no lines", tc.groups, tc.shards, s)
			}
		}
		// Deterministic: the same inputs must produce the same map.
		m2, _ := NewMap(uint64(tc.groups)*128, tc.groups, tc.shards, nil)
		for g := 0; g < tc.groups; g++ {
			if m.GroupShard(g) != m2.GroupShard(g) {
				t.Fatalf("rendezvous map not deterministic at group %d", g)
			}
		}
	}
}

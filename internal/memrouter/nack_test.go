package memrouter

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"securityrbsg/internal/memserver"
)

// Fake shards speaking raw frames through the exported wire surface:
// the only way to get deterministic Nack and failure injection, since
// real shards Nack only under racy queue pressure.

const (
	fakeOK = iota
	fakeNack
	fakeDrop // read the frame, close the connection: transport loss
)

// startFakeShard serves the binary protocol with a scripted behavior.
// OK responses synthesize per-op results from the shard-LOCAL line
// (ns = 1000·local+7, data = local%3), so tests can verify the router
// rewrote lines correctly AND scattered results back to the right
// client slots.
func startFakeShard(t *testing.T, mode int, retrySecs uint32) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					var hdr [4]byte
					if _, err := io.ReadFull(conn, hdr[:]); err != nil {
						return
					}
					body := make([]byte, binary.LittleEndian.Uint32(hdr[:]))
					if _, err := io.ReadFull(conn, body); err != nil {
						return
					}
					if mode == fakeDrop {
						return
					}
					read := len(body) >= memserver.WireHdrSize && body[1] == memserver.WireFrameReadReq
					var ops []memserver.BatchOp
					var code uint16
					if read {
						ops, code = memserver.DecodeWireReadReq(body[memserver.WireHdrSize:], nil)
					} else {
						ops, code = memserver.DecodeWireBatchReq(body[memserver.WireHdrSize:], nil)
					}
					if code != 0 {
						conn.Write(memserver.AppendWireFrame(nil, memserver.AppendWireErr(nil, code, "decode")))
						continue
					}
					resp := &memserver.BatchResponse{}
					if mode == fakeNack {
						resp.Rejected = len(ops)
						resp.Ns = make([]uint64, len(ops))
						resp.Data = make([]uint8, len(ops))
					} else {
						resp.Applied = len(ops)
						for _, o := range ops {
							ns := o.Line*1000 + 7
							resp.Ns = append(resp.Ns, ns)
							resp.Data = append(resp.Data, uint8(o.Line%3))
							resp.NsSum += ns
							if ns > resp.NsMax {
								resp.NsMax = ns
							}
						}
					}
					var out []byte
					switch {
					case mode == fakeNack && read:
						out = memserver.AppendWireReadNack(nil, retrySecs, resp)
					case mode == fakeNack:
						out = memserver.AppendWireNack(nil, retrySecs, resp)
					case read:
						out = memserver.AppendWireReadResp(nil, resp)
					default:
						out = memserver.AppendWireBatchResp(nil, resp)
					}
					conn.Write(memserver.AppendWireFrame(nil, out))
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestRouterNackAggregation: one shard Nacks, the others answer — the
// client sees ONE Nack with the largest Retry-After, and the healthy
// shards' per-op results are all present at their original positions.
func TestRouterNackAggregation(t *testing.T) {
	addrs := []string{
		startFakeShard(t, fakeOK, 0),
		startFakeShard(t, fakeNack, 3),
		startFakeShard(t, fakeOK, 0),
	}
	_, c, _ := startRouter(t, Config{
		Shards: addrs, Lines: 768, Groups: 3, GroupMap: []int{0, 1, 2},
		Conns: 1, Window: 4,
	})

	// Two ops per shard, interleaved so idx scatter is non-trivial.
	ops := []memserver.BatchOp{
		{Line: 10, Data: 1},  // shard 0, local 10
		{Line: 300, Data: 2}, // shard 1 (nacked), local 44
		{Line: 520, Data: 1}, // shard 2, local 8
		{Line: 11, Data: 2},  // shard 0, local 11
		{Line: 301, Data: 1}, // shard 1 (nacked), local 45
		{Line: 521, Data: 2}, // shard 2, local 9
	}
	_, err := c.Batch(ops)
	be, ok := err.(*memserver.BackpressureError)
	if !ok {
		t.Fatalf("want BackpressureError, got %v", err)
	}
	if be.RetryAfter != 3*time.Second {
		t.Fatalf("aggregated retry-after %v, want the max across shards (3s)", be.RetryAfter)
	}
	r := be.Resp
	if r == nil {
		t.Fatal("aggregated Nack carries no partial accounting")
	}
	if r.Applied != 4 || r.Rejected != 2 {
		t.Fatalf("applied=%d rejected=%d, want 4/2", r.Applied, r.Rejected)
	}
	wantNs := []uint64{10*1000 + 7, 0, 8*1000 + 7, 11*1000 + 7, 0, 9*1000 + 7}
	wantData := []uint8{10 % 3, 0, 8 % 3, 11 % 3, 0, 9 % 3}
	for i := range ops {
		if r.Ns[i] != wantNs[i] || r.Data[i] != wantData[i] {
			t.Fatalf("op %d: ns=%d data=%d, want %d/%d (dropped or reordered in the merge)",
				i, r.Ns[i], r.Data[i], wantNs[i], wantData[i])
		}
	}
}

// TestRouterNackAggregationReadMode: the same aggregation over a
// streaming read-batch frame.
func TestRouterNackAggregationReadMode(t *testing.T) {
	addrs := []string{
		startFakeShard(t, fakeOK, 0),
		startFakeShard(t, fakeNack, 2),
	}
	_, c, _ := startRouter(t, Config{
		Shards: addrs, Lines: 512, Groups: 2, GroupMap: []int{0, 1},
		Conns: 1, Window: 4,
	})
	_, err := c.ReadBatch([]uint64{5, 300, 6})
	be, ok := err.(*memserver.BackpressureError)
	if !ok {
		t.Fatalf("want BackpressureError, got %v", err)
	}
	if be.RetryAfter != 2*time.Second {
		t.Fatalf("retry-after %v, want 2s", be.RetryAfter)
	}
	r := be.ReadResp
	if r == nil {
		t.Fatal("read Nack carries no partial accounting")
	}
	if r.Applied != 2 || r.Rejected != 1 {
		t.Fatalf("applied=%d rejected=%d, want 2/1", r.Applied, r.Rejected)
	}
	if r.Data[0] != 5%3 || r.Data[1] != 0 || r.Data[2] != 6%3 {
		t.Fatalf("read data scatter wrong: %v", r.Data)
	}
}

// TestRouterShardLossNacks: a shard that dies mid-frame costs its ops
// (rejected, Nack to the client) but never the other shards' results —
// and the router recovers when only healthy shards are addressed.
func TestRouterShardLossNacks(t *testing.T) {
	addrs := []string{
		startFakeShard(t, fakeOK, 0),
		startFakeShard(t, fakeDrop, 0),
	}
	r, c, _ := startRouter(t, Config{
		Shards: addrs, Lines: 512, Groups: 2, GroupMap: []int{0, 1},
		Conns: 1, Window: 4,
	})
	ops := []memserver.BatchOp{
		{Line: 7, Data: 1},   // shard 0
		{Line: 300, Data: 2}, // shard 1: connection drops on receipt
	}
	_, err := c.Batch(ops)
	be, ok := err.(*memserver.BackpressureError)
	if !ok {
		t.Fatalf("want BackpressureError after shard loss, got %v", err)
	}
	if be.Resp == nil || be.Resp.Applied != 1 || be.Resp.Rejected != 1 {
		t.Fatalf("partial accounting after shard loss: %+v", be.Resp)
	}
	if be.Resp.Ns[0] != 7*1000+7 {
		t.Fatalf("healthy shard's result lost: ns=%v", be.Resp.Ns)
	}
	if r.pools[1].errs.Load() == 0 {
		t.Fatal("shard 1 loss not counted in router_shard_errors_total")
	}

	// Frames that avoid the dead shard keep working.
	resp, err := c.Batch([]memserver.BatchOp{{Line: 8, Data: 1}})
	if err != nil {
		t.Fatalf("healthy-shard frame after loss: %v", err)
	}
	if resp.Applied != 1 {
		t.Fatalf("healthy-shard frame applied %d, want 1", resp.Applied)
	}
}

package memrouter

import "securityrbsg/internal/memserver"

// The pure half of the router: splitting one client batch into
// per-shard sub-batches and merging the shard responses back into one
// client response. No sockets, no goroutines — these functions are the
// fuzz surface (FuzzRouterSplitMerge) precisely because everything
// that can corrupt op order or drop a result lives here.

// shardBatch is one shard's slice of a client frame: the ops rewritten
// to shard-local lines, and the original op positions they came from.
type shardBatch struct {
	shard int
	ops   []memserver.BatchOp // local-line ops (write path and fallback)
	lines []uint64            // local lines only (read-mode path)
	idx   []int               // original positions in the client batch
}

// splitPlan is a frame's reusable split state: one shardBatch per
// touched shard, buffers recycled frame over frame.
type splitPlan struct {
	batches []shardBatch // len = shards; untouched entries have empty idx
	touched []int        // shard indices with at least one op, ascending
}

// reset prepares the plan for a frame against nShards shards.
func (p *splitPlan) reset(nShards int) {
	if cap(p.batches) < nShards {
		p.batches = make([]shardBatch, nShards)
		for i := range p.batches {
			p.batches[i].shard = i
		}
	}
	p.batches = p.batches[:nShards]
	for i := range p.batches {
		b := &p.batches[i]
		b.shard = i
		b.ops = b.ops[:0]
		b.lines = b.lines[:0]
		b.idx = b.idx[:0]
	}
	p.touched = p.touched[:0]
}

// split partitions ops across shards by the map, preserving per-shard
// op order (the shards' banks rely on arrival order, and per-bank
// order through the router must match a direct connection). Lines are
// rewritten to shard-local space; idx remembers where each op goes in
// the merged response. Callers validate lines against the map first —
// split assumes every op is in range.
//
//rbsglint:hotpath
func split(m *Map, ops []memserver.BatchOp, read bool, p *splitPlan) {
	p.reset(m.shards)
	for i, o := range ops {
		s, local := m.Locate(o.Line)
		b := &p.batches[s]
		if len(b.idx) == 0 {
			p.touched = append(p.touched, s)
		}
		if read {
			b.lines = append(b.lines, local)
		} else {
			o.Line = local
			b.ops = append(b.ops, o)
		}
		b.idx = append(b.idx, i)
	}
}

// shardOutcome is what one shard's sub-batch came back as. Exactly one
// of the three states holds per outcome:
//
//   - ok: resp/rresp carries the sub-batch results
//   - nacked: the shard answered backpressure; resp/rresp carries the
//     partial accounting it returned, retryAfterSecs its ask
//   - failed: transport-level loss (dead shard, bad frame) — no
//     results exist; every op in the sub-batch counts rejected
type shardOutcome struct {
	batch          *shardBatch
	resp           *memserver.BatchResponse     // write path (and read fallback)
	rresp          *memserver.ReadBatchResponse // read-mode path
	nacked         bool
	retryAfterSecs uint32
	failed         bool
}

// merge reassembles shard outcomes into the client response. Results
// scatter back to their original positions via idx — order-preserving
// by construction, which the fuzz target cross-checks against a
// direct, unsplit execution. Accounting sums; NsMax takes the max.
//
// Backpressure aggregates conservatively: one nacked (or failed) shard
// makes the whole frame a Nack, with the largest Retry-After any shard
// asked for, while the merged response still carries every result the
// healthy shards produced — the client's retry resubmits everything,
// and the shards' own idempotent accounting (applied vs rejected)
// keeps the books straight, exactly as with a single overloaded
// memctld.
//
//rbsglint:hotpath
func merge(outcomes []shardOutcome, total int, out *memserver.BatchResponse) (nack bool, retryAfterSecs uint32) {
	out.Applied, out.Rejected = 0, 0
	out.NsSum, out.NsMax = 0, 0
	out.Ns = resizeZeroed(out.Ns, total)
	out.Data = resizeZeroed(out.Data, total)
	for i := range outcomes {
		oc := &outcomes[i]
		b := oc.batch
		if oc.failed {
			out.Rejected += len(b.idx)
			nack = true
			if oc.retryAfterSecs > retryAfterSecs {
				retryAfterSecs = oc.retryAfterSecs
			}
			continue
		}
		if oc.nacked {
			nack = true
			if oc.retryAfterSecs > retryAfterSecs {
				retryAfterSecs = oc.retryAfterSecs
			}
		}
		if oc.rresp != nil {
			r := oc.rresp
			if len(r.Data) != len(b.idx) {
				// A shard answering the wrong shape is a failed shard,
				// not a partially-trusted one.
				out.Rejected += len(b.idx)
				nack = true
				continue
			}
			out.Applied += r.Applied
			out.Rejected += r.Rejected
			out.NsSum += r.NsSum
			if r.NsMax > out.NsMax {
				out.NsMax = r.NsMax
			}
			for k, orig := range b.idx {
				out.Data[orig] = r.Data[k]
			}
			continue
		}
		r := oc.resp
		if r == nil || len(r.Ns) != len(b.idx) || len(r.Data) != len(b.idx) {
			out.Rejected += len(b.idx)
			nack = true
			continue
		}
		out.Applied += r.Applied
		out.Rejected += r.Rejected
		out.NsSum += r.NsSum
		if r.NsMax > out.NsMax {
			out.NsMax = r.NsMax
		}
		for k, orig := range b.idx {
			out.Ns[orig] = r.Ns[k]
			out.Data[orig] = r.Data[k]
		}
	}
	if nack && retryAfterSecs == 0 {
		retryAfterSecs = memserver.WireNackRetryAfterSecs
	}
	return nack, retryAfterSecs
}

// resizeZeroed returns s with exactly n zeroed elements, reusing
// capacity.
//
//rbsglint:hotpath
func resizeZeroed[T uint64 | uint8](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

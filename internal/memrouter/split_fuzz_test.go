package memrouter

import (
	"testing"

	"securityrbsg/internal/memserver"
)

// synthNs and synthData are the deterministic per-op results the fake
// shards "compute" in the fuzz harness: functions of the ORIGINAL
// logical line, so any split/merge slot mix-up shows up as a value
// mismatch, not just a length error.
func synthNs(line uint64) uint64  { return line*1000 + 7 }
func synthData(line uint64) uint8 { return uint8(line % 3) }

// FuzzRouterSplitMerge: arbitrary op streams over arbitrary small
// topologies split into per-shard batches and merge back
// byte-identically — every op's result lands in its original slot —
// and injected Nacks/failures never drop or reorder the surviving
// results.
func FuzzRouterSplitMerge(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(6), []byte{0, 1, 2, 255, 7}, uint8(0))
	f.Add(uint64(42), uint8(2), uint8(2), []byte{9, 9, 9, 9}, uint8(1))
	f.Add(uint64(7), uint8(5), uint8(10), []byte{}, uint8(2))
	f.Add(uint64(3), uint8(1), uint8(1), []byte{1, 2, 3}, uint8(0xff))

	f.Fuzz(func(t *testing.T, seed uint64, nShards, nGroups uint8, lineBytes []byte, failMask uint8) {
		shards := int(nShards%8) + 1
		groups := int(nGroups%16) + 1
		if groups < shards {
			groups = shards
		}
		const perGroup = 64
		lines := uint64(groups) * perGroup
		m, err := NewMap(lines, groups, shards, nil)
		if err != nil {
			t.Fatalf("map: %v", err)
		}

		// Ops derived from the fuzz bytes; alternate read flags off seed.
		ops := make([]memserver.BatchOp, 0, len(lineBytes))
		for i, lb := range lineBytes {
			line := (uint64(lb)*131 + seed + uint64(i)) % lines
			ops = append(ops, memserver.BatchOp{Line: line, Data: uint8(line % 3)})
		}
		read := seed%2 == 1

		var plan splitPlan
		split(m, ops, read, &plan)

		// Every op appears exactly once across the shard batches, on the
		// shard the map names, with the local line the map computes.
		seen := make([]int, len(ops))
		for _, s := range plan.touched {
			b := &plan.batches[s]
			n := len(b.idx)
			if read {
				if len(b.lines) != n {
					t.Fatalf("shard %d: %d lines for %d idx", s, len(b.lines), n)
				}
			} else if len(b.ops) != n {
				t.Fatalf("shard %d: %d ops for %d idx", s, len(b.ops), n)
			}
			for k, orig := range b.idx {
				seen[orig]++
				wantShard, wantLocal := m.Locate(ops[orig].Line)
				if wantShard != s {
					t.Fatalf("op %d routed to shard %d, map says %d", orig, s, wantShard)
				}
				local := wantLocal
				if read {
					if b.lines[k] != local {
						t.Fatalf("op %d local line %d, want %d", orig, b.lines[k], local)
					}
				} else if b.ops[k].Line != local || b.ops[k].Data != ops[orig].Data || b.ops[k].Read != ops[orig].Read {
					t.Fatalf("op %d rewrote wrong: %+v (orig %+v, local %d)", orig, b.ops[k], ops[orig], local)
				}
			}
		}
		for i, n := range seen {
			if n != 1 {
				t.Fatalf("op %d appears %d times across shard batches", i, n)
			}
		}

		// Synthesize shard responses from the original lines and merge.
		// failMask bit s: shard s Nacks, rejecting its last op.
		outcomes := make([]shardOutcome, 0, len(plan.touched))
		wantNack := false
		for _, s := range plan.touched {
			b := &plan.batches[s]
			oc := shardOutcome{batch: b}
			nacked := failMask&(1<<(uint(s)%8)) != 0
			applied := len(b.idx)
			if nacked {
				// The shard applied everything but its last op: partial
				// accounting covers only the applied ones.
				oc.nacked, oc.retryAfterSecs = true, uint32(s+1)
				applied--
				wantNack = true
			}
			if read {
				r := &memserver.ReadBatchResponse{Applied: applied, Rejected: len(b.idx) - applied}
				for k, orig := range b.idx {
					if k >= applied {
						r.Data = append(r.Data, 0)
						continue
					}
					r.Data = append(r.Data, synthData(ops[orig].Line))
					r.NsSum += synthNs(ops[orig].Line)
					if synthNs(ops[orig].Line) > r.NsMax {
						r.NsMax = synthNs(ops[orig].Line)
					}
				}
				oc.rresp = r
			} else {
				r := &memserver.BatchResponse{Applied: applied, Rejected: len(b.idx) - applied}
				for k, orig := range b.idx {
					if k >= applied {
						r.Ns = append(r.Ns, 0)
						r.Data = append(r.Data, 0)
						continue
					}
					r.Ns = append(r.Ns, synthNs(ops[orig].Line))
					r.Data = append(r.Data, synthData(ops[orig].Line))
					r.NsSum += synthNs(ops[orig].Line)
					if synthNs(ops[orig].Line) > r.NsMax {
						r.NsMax = synthNs(ops[orig].Line)
					}
				}
				oc.resp = r
			}
			outcomes = append(outcomes, oc)
		}

		var out memserver.BatchResponse
		nack, retry := merge(outcomes, len(ops), &out)
		if nack != wantNack {
			t.Fatalf("merge nack = %v, want %v", nack, wantNack)
		}
		if nack && retry == 0 {
			t.Fatal("merged Nack carries no retry-after")
		}
		if len(out.Ns) != len(ops) || len(out.Data) != len(ops) {
			t.Fatalf("merged lengths %d/%d for %d ops", len(out.Ns), len(out.Data), len(ops))
		}

		// Per-op equality against the direct, unsplit execution —
		// except ops sacrificed to an injected Nack, which must be
		// zeroed, never shifted.
		rejected := map[int]bool{}
		var wantApplied, wantRejected int
		var wantNsSum, wantNsMax uint64
		for _, s := range plan.touched {
			b := &plan.batches[s]
			nacked := failMask&(1<<(uint(s)%8)) != 0
			for k, orig := range b.idx {
				if nacked && k == len(b.idx)-1 {
					rejected[orig] = true
					wantRejected++
					continue
				}
				wantApplied++
				wantNsSum += synthNs(ops[orig].Line)
				if synthNs(ops[orig].Line) > wantNsMax {
					wantNsMax = synthNs(ops[orig].Line)
				}
			}
		}
		if out.Applied != wantApplied || out.Rejected != wantRejected {
			t.Fatalf("accounting applied=%d rejected=%d, want %d/%d", out.Applied, out.Rejected, wantApplied, wantRejected)
		}
		if out.NsSum != wantNsSum || out.NsMax != wantNsMax {
			t.Fatalf("ns accounting sum=%d max=%d, want %d/%d", out.NsSum, out.NsMax, wantNsSum, wantNsMax)
		}
		for i := range ops {
			wantNs, wantData := synthNs(ops[i].Line), synthData(ops[i].Line)
			if rejected[i] {
				wantNs, wantData = 0, 0
			}
			if read {
				wantNs = 0 // read-mode responses carry no per-op ns
			}
			if out.Ns[i] != wantNs || out.Data[i] != wantData {
				t.Fatalf("op %d merged ns=%d data=%d, want %d/%d (dropped or reordered)",
					i, out.Ns[i], out.Data[i], wantNs, wantData)
			}
		}
	})
}

// TestMergeFailedShard pins the transport-loss path: a failed shard's
// ops count rejected, the frame Nacks with the default retry-after,
// and the healthy shards' results still land in their slots.
func TestMergeFailedShard(t *testing.T) {
	m, err := NewMap(512, 2, 2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	ops := []memserver.BatchOp{{Line: 0, Data: 1}, {Line: 256, Data: 2}, {Line: 1, Data: 1}}
	var plan splitPlan
	split(m, ops, false, &plan)

	outcomes := []shardOutcome{
		{batch: &plan.batches[0], resp: &memserver.BatchResponse{
			Applied: 2, NsSum: 30, NsMax: 20, Ns: []uint64{10, 20}, Data: []uint8{1, 1},
		}},
		{batch: &plan.batches[1], failed: true},
	}
	var out memserver.BatchResponse
	nack, retry := merge(outcomes, len(ops), &out)
	if !nack || retry != memserver.WireNackRetryAfterSecs {
		t.Fatalf("nack=%v retry=%d, want true/%d", nack, retry, memserver.WireNackRetryAfterSecs)
	}
	if out.Applied != 2 || out.Rejected != 1 {
		t.Fatalf("applied=%d rejected=%d, want 2/1", out.Applied, out.Rejected)
	}
	if out.Ns[0] != 10 || out.Ns[2] != 20 || out.Ns[1] != 0 {
		t.Fatalf("ns scatter wrong: %v", out.Ns)
	}
	if out.Data[0] != 1 || out.Data[2] != 1 || out.Data[1] != 0 {
		t.Fatalf("data scatter wrong: %v", out.Data)
	}
}

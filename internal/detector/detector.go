// Package detector implements an online attack detector in the spirit of
// Qureshi et al., HPCA'11 ("Practical and secure PCM systems by online
// detection of malicious write streams"), which the paper cites as the
// standard countermeasure to RAA/BPA — and whose interaction with the
// Remapping Timing Attack the paper turns on its head: "increasing the
// rate of wear leveling instead accelerates RTA" (Section III-B).
//
// The detector watches the share of write traffic each RBSG region
// receives over a sliding window. Ordinary (even randomized) traffic
// spreads across regions; a hammering adversary concentrates on one.
// When a region's share crosses the alarm threshold the detector boosts
// that region's wear-leveling rate by issuing extra gap movements — an
// effective remapping interval of ψ/boost — and decays back to normal
// when the traffic does.
//
// The package exists to reproduce the paper's argument quantitatively:
// the boost helps against BPA (it shrinks the Line Vulnerability Factor)
// but *shortens* lifetime under RTA, whose detection phase gets one
// address bit per region rotation and therefore finishes sooner the
// faster the region spins.
package detector

import (
	"fmt"

	"securityrbsg/internal/rbsg"
	"securityrbsg/internal/wear"
)

// Config tunes the detector.
type Config struct {
	// Window is the number of writes per observation window.
	Window uint64
	// AlarmShare is the per-region traffic share that raises the alarm.
	// With R regions, benign uniform traffic gives ≈1/R; the paper-style
	// default is 8× that.
	AlarmShare float64
	// Boost multiplies the remapping rate of an alarmed region (extra
	// movements per interval). Default 4.
	Boost uint64
	// Cooldown is the number of clean windows before an alarm clears.
	Cooldown int
	// RateWindows is how many closed windows the rolling alarm-rate ring
	// retains for RecentAlarmRate (default DefaultRateWindows).
	RateWindows int
}

func (c *Config) normalize(regions uint64) {
	if c.Window == 0 {
		c.Window = 64 * regions
	}
	if c.AlarmShare == 0 {
		c.AlarmShare = 8.0 / float64(regions)
		if c.AlarmShare > 0.5 {
			c.AlarmShare = 0.5 // small region counts: cap below certainty
		}
	}
	if c.Boost == 0 {
		c.Boost = 4
	}
	if c.Cooldown == 0 {
		c.Cooldown = 2
	}
	if c.RateWindows == 0 {
		c.RateWindows = DefaultRateWindows
	}
}

// AdaptiveRBSG wraps an RBSG scheme with the online detector. It
// implements wear.Scheme; the wrapped scheme must not be driven directly
// while wrapped.
type AdaptiveRBSG struct {
	*rbsg.Scheme
	cfg Config

	window     uint64   // writes in the current window
	perRgn     []uint64 // per-region writes in the current window
	alarmed    []int    // remaining cooldown windows per region (0 = clear)
	alarms     uint64   // total alarms raised
	boosted    uint64   // extra movements issued
	regions    uint64
	interval   uint64
	seen       uint64 // demand writes since boot
	firstAlarm uint64 // seen-count at the first alarm
	alarmSeen  bool   // firstAlarm is valid
	rate       *RateWindow
}

// NewAdaptiveRBSG wraps scheme with a detector configured by cfg.
func NewAdaptiveRBSG(scheme *rbsg.Scheme, cfg Config) (*AdaptiveRBSG, error) {
	if scheme == nil {
		return nil, fmt.Errorf("detector: nil scheme")
	}
	regions := scheme.Config().Regions
	cfg.normalize(regions)
	rate, err := NewRateWindow(cfg.RateWindows)
	if err != nil {
		return nil, err
	}
	return &AdaptiveRBSG{
		Scheme:   scheme,
		cfg:      cfg,
		perRgn:   make([]uint64, regions),
		alarmed:  make([]int, regions),
		regions:  regions,
		interval: scheme.Config().Interval,
		rate:     rate,
	}, nil
}

// Name identifies the wrapped scheme.
func (a *AdaptiveRBSG) Name() string { return "rbsg+detector" }

// Alarms returns how many times a region crossed the alarm threshold.
func (a *AdaptiveRBSG) Alarms() uint64 { return a.alarms }

// BoostedMovements returns the extra gap movements the detector issued.
func (a *AdaptiveRBSG) BoostedMovements() uint64 { return a.boosted }

// Alarmed reports whether region r is currently under alarm.
func (a *AdaptiveRBSG) Alarmed(r uint64) bool { return a.alarmed[r] > 0 }

// FirstAlarmWrite returns the index (in demand writes since boot) of the
// write whose window close raised the detector's first alarm — the
// defender-side detection latency. ok is false while no alarm has fired.
func (a *AdaptiveRBSG) FirstAlarmWrite() (write uint64, ok bool) {
	return a.firstAlarm, a.alarmSeen
}

// RateWindow returns the rolling per-window statistics ring — the
// control loop's input signal. The returned ring is live; callers must
// not mutate it.
func (a *AdaptiveRBSG) RateWindow() *RateWindow { return a.rate }

// RecentAlarmRate aggregates the last n closed windows: threshold
// crossings, writes observed, and crossings per window. See
// RateWindow.Rate.
func (a *AdaptiveRBSG) RecentAlarmRate(n int) (alarms, writes uint64, rate float64) {
	return a.rate.Rate(n)
}

// NoteWrite books the write, runs the base scheme's wear leveling, and —
// for alarmed regions — issues Boost−1 additional gap movements per
// interval, multiplying the region's remapping rate.
func (a *AdaptiveRBSG) NoteWrite(la uint64, m wear.Mover) uint64 {
	region := a.Intermediate(la) / a.LinesPerRegion()
	a.perRgn[region]++
	a.window++
	a.seen++

	ns := a.Scheme.NoteWrite(la, m)
	if a.alarmed[region] > 0 && a.perRgn[region]%a.interval == 0 {
		for i := uint64(1); i < a.cfg.Boost; i++ {
			ns += a.Region(int(region)).MoveGap(m)
			a.boosted++
		}
	}

	if a.window >= a.cfg.Window {
		a.closeWindow()
	}
	return ns
}

// WritesToNextRemap overrides the embedded scheme's fast-forward hook so
// batched write runs (wear.Controller.WriteRun) stay bit-identical with
// the detector in the loop. The embedded RBSG bound shrinks to the next
// write that could change detector-visible state: a window close (which
// may flip alarms) or, in an alarmed region, a boost fire.
func (a *AdaptiveRBSG) WritesToNextRemap(la uint64) uint64 {
	rem := a.Scheme.WritesToNextRemap(la)
	if wrem := a.cfg.Window - a.window; wrem < rem {
		rem = wrem
	}
	region := a.Intermediate(la) / a.LinesPerRegion()
	if a.alarmed[region] > 0 {
		if brem := a.interval - a.perRgn[region]%a.interval; brem < rem {
			rem = brem
		}
	}
	return rem
}

// SkipWrites books k movement-free writes against the detector's window
// counters and the embedded scheme (k < WritesToNextRemap(la), so no
// window closes, no boost fires and no gap moves within the run).
func (a *AdaptiveRBSG) SkipWrites(la, k uint64) {
	if k >= a.cfg.Window-a.window {
		panic(fmt.Errorf("detector: SkipWrites(%d) would cross a window close (%d writes remain)",
			k, a.cfg.Window-a.window))
	}
	region := a.Intermediate(la) / a.LinesPerRegion()
	a.Scheme.SkipWrites(la, k)
	a.perRgn[region] += k
	a.window += k
	a.seen += k
}

// closeWindow evaluates the alarm condition, records the window's
// statistics into the rolling ring, and resets the counters.
func (a *AdaptiveRBSG) closeWindow() {
	limit := uint64(a.cfg.AlarmShare * float64(a.cfg.Window))
	var over uint64
	for r := range a.perRgn {
		if a.perRgn[r] >= limit {
			over++
			if a.alarmed[r] == 0 {
				a.alarms++
				if !a.alarmSeen {
					a.firstAlarm = a.seen
					a.alarmSeen = true
				}
			}
			a.alarmed[r] = a.cfg.Cooldown
		} else if a.alarmed[r] > 0 {
			a.alarmed[r]--
		}
		a.perRgn[r] = 0
	}
	a.rate.Record(WindowStat{Index: a.rate.Windows(), Writes: a.window, Alarms: over})
	a.window = 0
}

package detector

import (
	"testing"

	"securityrbsg/internal/schemetest"
	"securityrbsg/internal/stats"
)

func TestRateWindowValidation(t *testing.T) {
	if _, err := NewRateWindow(0); err == nil {
		t.Fatal("zero capacity must fail")
	}
	if _, err := NewRateWindow(-1); err == nil {
		t.Fatal("negative capacity must fail")
	}
}

func TestRateWindowRingEviction(t *testing.T) {
	w, err := NewRateWindow(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, rate := w.Rate(10); rate != 0 {
		t.Fatal("empty ring must report rate 0")
	}
	for i := uint64(0); i < 10; i++ {
		w.Record(WindowStat{Index: i, Writes: 100, Alarms: i})
	}
	if w.Len() != 4 {
		t.Fatalf("Len() = %d, want capacity 4", w.Len())
	}
	if w.Windows() != 10 {
		t.Fatalf("Windows() = %d, want 10", w.Windows())
	}
	recent := w.Recent(10)
	if len(recent) != 4 {
		t.Fatalf("Recent returned %d entries, want 4", len(recent))
	}
	for i, st := range recent {
		if want := uint64(6 + i); st.Index != want || st.Alarms != want {
			t.Fatalf("recent[%d] = %+v, want index/alarms %d (oldest first)", i, st, want)
		}
	}
	// Last 2 windows: alarms 8+9 over 2 windows, 200 writes.
	alarms, writes, rate := w.Rate(2)
	if alarms != 17 || writes != 200 || rate != 8.5 {
		t.Fatalf("Rate(2) = (%d, %d, %.2f), want (17, 200, 8.50)", alarms, writes, rate)
	}
}

func TestRateWindowPartialFill(t *testing.T) {
	w, err := NewRateWindow(8)
	if err != nil {
		t.Fatal(err)
	}
	w.Record(WindowStat{Writes: 50, Alarms: 1})
	w.Record(WindowStat{Writes: 50, Alarms: 0})
	alarms, writes, rate := w.Rate(8)
	if alarms != 1 || writes != 100 || rate != 0.5 {
		t.Fatalf("Rate(8) = (%d, %d, %.2f), want (1, 100, 0.50)", alarms, writes, rate)
	}
	if got := w.Recent(0); got != nil {
		t.Fatalf("Recent(0) = %v, want nil", got)
	}
}

// TestAdaptiveRollingRate is the satellite's acceptance check on the
// wrapped detector: the cumulative counter only ever grows, but the
// rolling rate must rise under a hammer and fall back to zero once the
// traffic turns benign again.
func TestAdaptiveRollingRate(t *testing.T) {
	a := adaptive(t, 8, Config{RateWindows: 8})
	m := schemetest.NewTokenMover(a)

	if _, _, rate := a.RecentAlarmRate(8); rate != 0 {
		t.Fatal("fresh detector reports a nonzero rate")
	}
	for i := 0; i < 20000; i++ {
		a.NoteWrite(13, m)
	}
	alarms, writes, rate := a.RecentAlarmRate(8)
	if rate < 1 {
		t.Fatalf("hammer: rate = %.2f (alarms %d over %d writes), want ≥ 1 crossing/window", rate, alarms, writes)
	}
	cumulative := a.Alarms()

	rng := stats.NewRNG(9)
	for i := 0; i < 40000; i++ {
		a.NoteWrite(rng.Uint64n(256), m)
	}
	if _, _, rate := a.RecentAlarmRate(8); rate != 0 {
		t.Fatalf("benign tail: rolling rate = %.2f, want 0", rate)
	}
	if a.Alarms() != cumulative {
		t.Fatal("benign traffic raised new alarms")
	}
	// The ring retains full windows: every recorded window observed
	// exactly Config.Window writes.
	for _, st := range a.RateWindow().Recent(8) {
		if st.Writes != a.cfg.Window {
			t.Fatalf("window %d recorded %d writes, want %d", st.Index, st.Writes, a.cfg.Window)
		}
	}
}

// TestAdaptiveRateSustainedUnderAttack pins the signal choice: a
// sustained hammer must keep the per-window crossing count high even
// though fresh alarms stop after the first crossing — otherwise the
// controller would stand down mid-attack.
func TestAdaptiveRateSustainedUnderAttack(t *testing.T) {
	a := adaptive(t, 10, Config{RateWindows: 4})
	m := schemetest.NewTokenMover(a)
	for i := 0; i < 60000; i++ {
		a.NoteWrite(13, m)
	}
	if a.Alarms() != 1 {
		t.Fatalf("fresh alarms = %d, want 1 (cooldown keeps re-upping)", a.Alarms())
	}
	if _, _, rate := a.RecentAlarmRate(4); rate < 1 {
		t.Fatalf("sustained hammer: rolling rate = %.2f, want ≥ 1", rate)
	}
}

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(0, Config{}); err == nil {
		t.Fatal("zero regions must fail")
	}
	if _, err := NewMonitor(8, Config{RateWindows: -1}); err == nil {
		t.Fatal("negative rate-window capacity must fail")
	}
}

// TestMonitorMirrorsAdaptiveAlarms drives a Monitor and an AdaptiveRBSG
// with the same region sequence and asserts the alarm state machines
// agree write for write — the factored-out observation half must not
// drift from the original.
func TestMonitorMirrorsAdaptiveAlarms(t *testing.T) {
	a := adaptive(t, 11, Config{})
	mon, err := NewMonitor(8, Config{Window: a.cfg.Window, AlarmShare: a.cfg.AlarmShare, Cooldown: a.cfg.Cooldown})
	if err != nil {
		t.Fatal(err)
	}
	mv := schemetest.NewTokenMover(a)
	rng := stats.NewRNG(12)
	for i := 0; i < 60000; i++ {
		la := rng.Uint64n(256)
		if i > 20000 && i < 45000 {
			la = 13 // hammer phase in the middle
		}
		region := a.Intermediate(la) / a.LinesPerRegion()
		mon.Observe(region)
		a.NoteWrite(la, mv)
		if mon.Alarms() != a.Alarms() {
			t.Fatalf("write %d: monitor alarms %d vs adaptive %d", i, mon.Alarms(), a.Alarms())
		}
		for r := uint64(0); r < 8; r++ {
			if mon.Alarmed(r) != a.Alarmed(r) {
				t.Fatalf("write %d: region %d alarm state diverged", i, r)
			}
		}
	}
	if mon.Alarms() == 0 {
		t.Fatal("hammer phase raised no alarms — the comparison proved nothing")
	}
	mw, mok := mon.FirstAlarmWrite()
	aw, aok := a.FirstAlarmWrite()
	if mok != aok || mw != aw {
		t.Fatalf("first-alarm latency diverged: monitor (%d,%v) vs adaptive (%d,%v)", mw, mok, aw, aok)
	}
	ma, _, mr := mon.RecentAlarmRate(4)
	aa, _, ar := a.RecentAlarmRate(4)
	if ma != aa || mr != ar {
		t.Fatalf("rolling rate diverged: monitor (%d, %.2f) vs adaptive (%d, %.2f)", ma, mr, aa, ar)
	}
}

func TestMonitorAlarmedRegions(t *testing.T) {
	mon, err := NewMonitor(4, Config{Window: 100, AlarmShare: 0.5, Cooldown: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Split the window between two regions: both cross the 50% threshold.
	for i := 0; i < 50; i++ {
		mon.Observe(0)
		mon.Observe(1)
	}
	if got := mon.AlarmedRegions(); got != 2 {
		t.Fatalf("AlarmedRegions() = %d, want 2", got)
	}
	if mon.Alarms() != 2 {
		t.Fatalf("Alarms() = %d, want 2", mon.Alarms())
	}
	// Two quiet windows clear the cooldown.
	for i := 0; i < 200; i++ {
		mon.Observe(uint64(i) % 4)
	}
	if got := mon.AlarmedRegions(); got != 0 {
		t.Fatalf("AlarmedRegions() = %d after quiet windows, want 0", got)
	}
}

func TestMonitorSkip(t *testing.T) {
	mon, err := NewMonitor(4, Config{Window: 100, AlarmShare: 0.5, Cooldown: 2})
	if err != nil {
		t.Fatal(err)
	}
	mon.Observe(2)
	if got := mon.WritesToWindowClose(); got != 99 {
		t.Fatalf("WritesToWindowClose() = %d, want 99", got)
	}
	mon.Skip(2, 98)
	if got := mon.WritesToWindowClose(); got != 1 {
		t.Fatalf("after skip: WritesToWindowClose() = %d, want 1", got)
	}
	// Skipping into the window close must panic (the fast-forward
	// contract: bulk books never cross detector-visible state changes).
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Skip across a window close did not panic")
			}
		}()
		mon.Skip(2, 1)
	}()
	mon.Observe(2) // closes the window; 100/100 writes in region 2
	if mon.Alarms() != 1 || !mon.Alarmed(2) {
		t.Fatal("skipped writes did not count toward the alarm share")
	}
	if w, ok := mon.FirstAlarmWrite(); !ok || w != 100 {
		t.Fatalf("FirstAlarmWrite() = (%d, %v), want (100, true)", w, ok)
	}
}

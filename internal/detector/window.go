package detector

import "fmt"

// Rolling alarm-rate windows.
//
// The cumulative Alarms() counter answers "has this bank ever been
// attacked"; a control loop needs "is it being attacked *now*". The
// detector therefore records one WindowStat per closed observation
// window into a fixed-capacity ring, and the adaptive security-level
// controller (internal/seclevel) reads the alarm rate over the last N
// windows as its input signal. Crucially the per-window count is the
// number of regions at or above the alarm threshold in that window —
// not just freshly raised alarms — so a sustained hammer keeps the rate
// high for as long as it lasts instead of going quiet after the first
// crossing.

// WindowStat summarizes one closed observation window.
type WindowStat struct {
	// Index is the window's 0-based sequence number since boot.
	Index uint64
	// Writes is the number of demand writes the window observed.
	Writes uint64
	// Alarms counts the regions at or above the alarm threshold when the
	// window closed (fresh crossings and sustained alarms alike).
	Alarms uint64
}

// RateWindow is a fixed-capacity ring of per-window statistics, oldest
// entries evicted first. The zero value is not usable; construct with
// NewRateWindow.
type RateWindow struct {
	ring  []WindowStat
	size  int // valid entries, ≤ cap
	head  int // slot the next Record writes
	total uint64
}

// DefaultRateWindows is the ring capacity used when a Config leaves
// RateWindows zero: enough history for a controller smoothing over a
// handful of remap rounds, small enough to be free per bank.
const DefaultRateWindows = 32

// NewRateWindow returns a ring holding the most recent `capacity`
// window records.
func NewRateWindow(capacity int) (*RateWindow, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("detector: rate window capacity must be positive, got %d", capacity)
	}
	return &RateWindow{ring: make([]WindowStat, capacity)}, nil
}

// Record appends one closed window's statistics, evicting the oldest
// entry when the ring is full.
func (w *RateWindow) Record(st WindowStat) {
	w.ring[w.head] = st
	w.head = (w.head + 1) % len(w.ring)
	if w.size < len(w.ring) {
		w.size++
	}
	w.total++
}

// Len returns the number of windows currently held (≤ capacity).
func (w *RateWindow) Len() int { return w.size }

// Windows returns the total number of windows ever recorded.
func (w *RateWindow) Windows() uint64 { return w.total }

// Recent returns the last n window records, oldest first (all held
// records when n exceeds Len).
func (w *RateWindow) Recent(n int) []WindowStat {
	if n > w.size {
		n = w.size
	}
	if n <= 0 {
		return nil
	}
	out := make([]WindowStat, n)
	start := w.head - n
	if start < 0 {
		start += len(w.ring)
	}
	for i := 0; i < n; i++ {
		out[i] = w.ring[(start+i)%len(w.ring)]
	}
	return out
}

// Rate aggregates the last n windows (all held windows when n exceeds
// Len): total threshold crossings, total writes observed, and the alarm
// rate in crossings per window. A rate of 0 means quiet; ≥ 1 means at
// least one region was over threshold in every recent window.
func (w *RateWindow) Rate(n int) (alarms, writes uint64, rate float64) {
	recent := w.Recent(n)
	for _, st := range recent {
		alarms += st.Alarms
		writes += st.Writes
	}
	if len(recent) == 0 {
		return 0, 0, 0
	}
	return alarms, writes, float64(alarms) / float64(len(recent))
}

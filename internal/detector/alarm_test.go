package detector

import (
	"testing"

	"securityrbsg/internal/schemetest"
	"securityrbsg/internal/stats"
)

// TestFirstAlarmWriteLatency: the detector dates its first alarm to the
// write whose window close raised it — the defender-side detection
// latency the tournament reports as first_alarm_write.
func TestFirstAlarmWriteLatency(t *testing.T) {
	// Share 0.5 over a 256-write window: a pure hammer crosses the
	// threshold at the very first window close, write 256.
	a := adaptive(t, 11, Config{Window: 256, AlarmShare: 0.5})
	m := schemetest.NewTokenMover(a)

	if _, ok := a.FirstAlarmWrite(); ok {
		t.Fatal("alarm dated before any write")
	}
	for i := 0; i < 255; i++ {
		a.NoteWrite(13, m)
	}
	if _, ok := a.FirstAlarmWrite(); ok {
		t.Fatal("alarm fired before the window closed")
	}
	a.NoteWrite(13, m)
	w, ok := a.FirstAlarmWrite()
	if !ok || w != 256 {
		t.Fatalf("FirstAlarmWrite = %d, %v; want 256, true", w, ok)
	}

	// Later alarms must not re-date the first one.
	for i := 0; i < 10000; i++ {
		a.NoteWrite(13, m)
	}
	if w2, ok := a.FirstAlarmWrite(); !ok || w2 != w {
		t.Fatalf("first alarm moved: %d -> %d", w, w2)
	}
	if a.Alarms() == 0 {
		t.Fatal("sustained hammering should keep alarming")
	}
}

// TestFirstAlarmWriteBenign: uniform traffic never dates an alarm, so
// the tournament's first_alarm_write column stays absent for clean runs.
func TestFirstAlarmWriteBenign(t *testing.T) {
	a := adaptive(t, 12, Config{})
	m := schemetest.NewTokenMover(a)
	rng := stats.NewRNG(13)
	for i := 0; i < 50000; i++ {
		a.NoteWrite(rng.Uint64n(256), m)
	}
	if w, ok := a.FirstAlarmWrite(); ok {
		t.Fatalf("benign traffic dated an alarm at write %d", w)
	}
}

// TestFirstAlarmWriteSurvivesFastForward: writes booked through the
// SkipWrites fast path count toward the alarm date exactly like demand
// writes through NoteWrite.
func TestFirstAlarmWriteSurvivesFastForward(t *testing.T) {
	cfg := Config{Window: 256, AlarmShare: 0.5}
	slow := adaptive(t, 14, cfg)
	fast := adaptive(t, 14, cfg)
	ms := schemetest.NewTokenMover(slow)
	mf := schemetest.NewTokenMover(fast)

	const total = 2000
	for i := 0; i < total; i++ {
		slow.NoteWrite(13, ms)
	}
	issued := uint64(0)
	for issued < total {
		k := fast.WritesToNextRemap(13)
		if batch := k - 1; batch > 0 {
			if rem := uint64(total) - issued; batch > rem {
				batch = rem
			}
			fast.SkipWrites(13, batch)
			issued += batch
			if issued == total {
				break
			}
		}
		fast.NoteWrite(13, mf)
		issued++
	}

	ws, oks := slow.FirstAlarmWrite()
	wf, okf := fast.FirstAlarmWrite()
	if oks != okf || ws != wf {
		t.Fatalf("alarm dates diverged: naive (%d,%v) vs fast-forward (%d,%v)", ws, oks, wf, okf)
	}
	if slow.Alarms() != fast.Alarms() {
		t.Fatalf("alarm counts diverged: %d vs %d", slow.Alarms(), fast.Alarms())
	}
}

package detector

import (
	"testing"

	"securityrbsg/internal/attack"
	"securityrbsg/internal/pcm"
	"securityrbsg/internal/rbsg"
	"securityrbsg/internal/schemetest"
	"securityrbsg/internal/stats"
	"securityrbsg/internal/wear"
)

func base(seed uint64) *rbsg.Scheme {
	return rbsg.MustNew(rbsg.Config{Lines: 256, Regions: 8, Interval: 8, Seed: seed})
}

func adaptive(t *testing.T, seed uint64, cfg Config) *AdaptiveRBSG {
	t.Helper()
	a, err := NewAdaptiveRBSG(base(seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestValidation(t *testing.T) {
	if _, err := NewAdaptiveRBSG(nil, Config{}); err == nil {
		t.Fatal("nil scheme must fail")
	}
}

func TestBenignTrafficRaisesNoAlarm(t *testing.T) {
	a := adaptive(t, 1, Config{})
	m := schemetest.NewTokenMover(a)
	rng := stats.NewRNG(2)
	for i := 0; i < 50000; i++ {
		a.NoteWrite(rng.Uint64n(256), m)
	}
	if a.Alarms() != 0 {
		t.Fatalf("uniform traffic raised %d alarms", a.Alarms())
	}
	if a.BoostedMovements() != 0 {
		t.Fatal("no boost without alarm")
	}
}

func TestHammerRaisesAlarmAndBoosts(t *testing.T) {
	a := adaptive(t, 3, Config{})
	m := schemetest.NewTokenMover(a)
	for i := 0; i < 50000; i++ {
		a.NoteWrite(13, m)
	}
	if a.Alarms() == 0 {
		t.Fatal("hammering never raised an alarm")
	}
	if a.BoostedMovements() == 0 {
		t.Fatal("alarm never boosted the remapping rate")
	}
	region := a.Intermediate(13) / a.LinesPerRegion()
	if !a.Alarmed(region) {
		t.Fatal("the hammered region should be under alarm")
	}
	if err := schemetest.Verify(a, m); err != nil {
		t.Fatal(err)
	}
}

func TestAlarmCoolsDown(t *testing.T) {
	a := adaptive(t, 4, Config{Cooldown: 2})
	m := schemetest.NewTokenMover(a)
	for i := 0; i < 20000; i++ {
		a.NoteWrite(13, m)
	}
	region := a.Intermediate(13) / a.LinesPerRegion()
	if !a.Alarmed(region) {
		t.Fatal("should be alarmed while hammered")
	}
	rng := stats.NewRNG(5)
	for i := 0; i < 20000; i++ {
		a.NoteWrite(rng.Uint64n(256), m)
	}
	if a.Alarmed(region) {
		t.Fatal("alarm should clear after benign windows")
	}
}

func TestDataIntegrityUnderBoost(t *testing.T) {
	a := adaptive(t, 6, Config{Boost: 8})
	if _, err := schemetest.ExerciseHammer(a, 13, 30000, 11); err != nil {
		t.Fatal(err)
	}
}

// TestDetectorShrinksLVFUnderBPA reproduces the HPCA'11 rationale: the
// boost shrinks the Line Vulnerability Factor, so a Birthday Paradox
// attacker needs more trials to kill a line.
func TestDetectorShrinksLVFUnderBPA(t *testing.T) {
	const endurance = 3000
	bankCfg := pcm.Config{LineBytes: 256, Endurance: endurance, Timing: pcm.DefaultTiming}

	plain := wear.MustNewController(bankCfg, base(7))
	plainRes := attack.BPA(plain, base(7).LineVulnerabilityFactor(), pcm.Mixed, 1, 80_000_000)

	// Window shorter than one hammer stint so the concentration is
	// visible within a window.
	det, err := NewAdaptiveRBSG(base(7), Config{Window: 256, AlarmShare: 0.6, Boost: 8})
	if err != nil {
		t.Fatal(err)
	}
	detCtrl := wear.MustNewController(bankCfg, det)
	detRes := attack.BPA(detCtrl, base(7).LineVulnerabilityFactor(), pcm.Mixed, 1, 80_000_000)

	if !plainRes.Failed {
		t.Fatal("BPA should kill plain RBSG in this budget")
	}
	if det.Alarms() == 0 {
		t.Fatal("the detector never noticed the attack")
	}
	if detRes.Failed && float64(detRes.Writes) < 1.3*float64(plainRes.Writes) {
		t.Fatalf("detector barely helped BPA: %d vs %d writes", detRes.Writes, plainRes.Writes)
	}
	t.Logf("BPA writes to failure: plain %d, with detector %v (failed=%v, %d alarms)",
		plainRes.Writes, detRes.Writes, detRes.Failed, det.Alarms())
}

// TestBoostAcceleratesRegionRotation verifies the mechanism behind the
// paper's Section III-B claim that the countermeasure backfires against
// RTA: under alarm the hammered region rotates Boost× faster, which is
// exactly the rate at which RTA harvests address bits.
func TestBoostAcceleratesRegionRotation(t *testing.T) {
	count := func(boost uint64) uint64 {
		a, err := NewAdaptiveRBSG(base(8), Config{Boost: boost})
		if err != nil {
			t.Fatal(err)
		}
		m := schemetest.NewTokenMover(a)
		for i := 0; i < 30000; i++ {
			a.NoteWrite(13, m)
		}
		region := a.Intermediate(13) / a.LinesPerRegion()
		return a.Region(int(region)).Movements()
	}
	plain, boosted := count(1), count(8)
	if boosted < 4*plain {
		t.Fatalf("boost barely changed rotation: %d vs %d movements", plain, boosted)
	}
	t.Logf("movements under hammer: plain %d, boosted %d (%.1fx)",
		plain, boosted, float64(boosted)/float64(plain))
}

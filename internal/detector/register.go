package detector

import (
	"securityrbsg/internal/rbsg"
	"securityrbsg/internal/registry"
	"securityrbsg/internal/wear"
)

// The registry entry for RBSG wrapped in the online write-stream
// detector — the HPCA'11-style countermeasure whose interaction with the
// RTA the paper analyzes. It is the only scheme in the matrix that
// reports a defender-side detection latency (registry.AlarmReporter).
func init() {
	registry.RegisterScheme(registry.Scheme{
		Name: "rbsg+detector",
		Doc:  "RBSG + online attack detector boosting alarmed regions' leveling rate",
		Caps: registry.SchemeCaps{Exact: true, TimingOracle: true},
		Defaults: func(cfg registry.Config) registry.Config {
			if cfg.Regions == 0 {
				cfg.Regions = 32
				for cfg.Regions > cfg.Lines {
					cfg.Regions /= 2
				}
			}
			if cfg.InnerInterval == 0 {
				cfg.InnerInterval = 100
			}
			return cfg
		},
		New: func(cfg registry.Config) (wear.Scheme, error) {
			base, err := rbsg.New(rbsg.Config{
				Lines: cfg.Lines, Regions: cfg.Regions,
				Interval: cfg.InnerInterval, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			return NewAdaptiveRBSG(base, Config{})
		},
	})
}

package detector

import "fmt"

// Monitor is the detector's observation half factored out of
// AdaptiveRBSG: a scheme-agnostic per-region write-share watcher with
// the same window/threshold/cooldown semantics but no response of its
// own. AdaptiveRBSG reacts by boosting the alarmed region's remapping
// rate — the HPCA'11 response the paper shows *backfires* under RTA;
// the adaptive security-level wrapper (internal/seclevel) instead feeds
// a Monitor's rolling alarm rate to a controller that raises the DFN
// stage count at the next remap-round boundary.
//
// The caller routes each demand write's region in via Observe. Like the
// rest of the simulation stack a Monitor is single-writer and fully
// deterministic: identical observation sequences produce identical
// alarm sequences.
type Monitor struct {
	cfg     Config
	regions uint64

	window     uint64   // writes in the current window
	perRgn     []uint64 // per-region writes in the current window
	alarmed    []int    // remaining cooldown windows per region (0 = clear)
	alarms     uint64   // fresh alarms raised
	seen       uint64   // writes observed since boot
	firstAlarm uint64   // seen-count at the first alarm
	alarmSeen  bool     // firstAlarm is valid
	rate       *RateWindow
}

// NewMonitor builds a monitor over `regions` traffic classes. cfg is
// normalized exactly as for NewAdaptiveRBSG (Boost is unused).
func NewMonitor(regions uint64, cfg Config) (*Monitor, error) {
	if regions == 0 {
		return nil, fmt.Errorf("detector: monitor needs at least one region")
	}
	cfg.normalize(regions)
	rate, err := NewRateWindow(cfg.RateWindows)
	if err != nil {
		return nil, err
	}
	return &Monitor{
		cfg:     cfg,
		regions: regions,
		perRgn:  make([]uint64, regions),
		alarmed: make([]int, regions),
		rate:    rate,
	}, nil
}

// Config returns the normalized configuration.
func (m *Monitor) Config() Config { return m.cfg }

// Observe books one demand write routed to region r, closing the
// observation window when it fills.
func (m *Monitor) Observe(r uint64) {
	m.perRgn[r]++
	m.window++
	m.seen++
	if m.window >= m.cfg.Window {
		m.closeWindow()
	}
}

// WritesToWindowClose returns how many more observations the current
// window accepts before it closes — the monitor's contribution to a
// fast-forward bound (cf. wear.FastForwarder).
func (m *Monitor) WritesToWindowClose() uint64 { return m.cfg.Window - m.window }

// Skip books k observation-free writes to region r in bulk. k must stay
// strictly below WritesToWindowClose so no window closes inside the run
// (mirroring AdaptiveRBSG.SkipWrites).
func (m *Monitor) Skip(r, k uint64) {
	if k >= m.cfg.Window-m.window {
		panic(fmt.Errorf("detector: Skip(%d) would cross a window close (%d writes remain)",
			k, m.cfg.Window-m.window))
	}
	m.perRgn[r] += k
	m.window += k
	m.seen += k
}

// Alarms returns how many times a quiet region crossed the alarm
// threshold (fresh alarms, matching AdaptiveRBSG.Alarms).
func (m *Monitor) Alarms() uint64 { return m.alarms }

// Alarmed reports whether region r is currently under alarm.
func (m *Monitor) Alarmed(r uint64) bool { return m.alarmed[r] > 0 }

// AlarmedRegions counts the regions currently under alarm.
func (m *Monitor) AlarmedRegions() uint64 {
	var n uint64
	for _, c := range m.alarmed {
		if c > 0 {
			n++
		}
	}
	return n
}

// FirstAlarmWrite returns the observation index whose window close
// raised the first alarm; ok is false while no alarm has fired.
func (m *Monitor) FirstAlarmWrite() (write uint64, ok bool) {
	return m.firstAlarm, m.alarmSeen
}

// RateWindow returns the rolling per-window statistics ring. The
// returned ring is live; callers must not mutate it.
func (m *Monitor) RateWindow() *RateWindow { return m.rate }

// RecentAlarmRate aggregates the last n closed windows: threshold
// crossings, writes observed, and crossings per window.
func (m *Monitor) RecentAlarmRate(n int) (alarms, writes uint64, rate float64) {
	return m.rate.Rate(n)
}

// closeWindow evaluates the alarm condition, records the window into
// the rolling ring, and resets the counters — identical semantics to
// AdaptiveRBSG.closeWindow minus the boost response.
func (m *Monitor) closeWindow() {
	limit := uint64(m.cfg.AlarmShare * float64(m.cfg.Window))
	var over uint64
	for r := range m.perRgn {
		if m.perRgn[r] >= limit {
			over++
			if m.alarmed[r] == 0 {
				m.alarms++
				if !m.alarmSeen {
					m.firstAlarm = m.seen
					m.alarmSeen = true
				}
			}
			m.alarmed[r] = m.cfg.Cooldown
		} else if m.alarmed[r] > 0 {
			m.alarmed[r]--
		}
		m.perRgn[r] = 0
	}
	m.rate.Record(WindowStat{Index: m.rate.Windows(), Writes: m.window, Alarms: over})
	m.window = 0
}

package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"securityrbsg/internal/pcm"
	"securityrbsg/internal/startgap"
	"securityrbsg/internal/wear"
	"securityrbsg/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 128)
	if err != nil {
		t.Fatal(err)
	}
	ops := []Op{
		{Write: true, Line: 5, Content: pcm.Zeros},
		{Write: true, Line: 6, Content: pcm.Ones},
		{Write: true, Line: 7, Content: pcm.Mixed},
		{Line: 5},
	}
	for _, op := range ops {
		if err := w.Add(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 4 {
		t.Fatalf("count %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Lines() != 128 {
		t.Fatalf("lines %d", r.Lines())
	}
	for i, want := range ops {
		got, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestWriterRejectsOutOfRange(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 8)
	if err := w.Add(Op{Write: true, Line: 8}); err == nil {
		t.Fatal("out-of-range record accepted")
	}
	// The writer latches its error.
	if err := w.Add(Op{Write: true, Line: 0}); err == nil {
		t.Fatal("writer should stay failed")
	}
}

func TestReaderSkipsCommentsAndBlanks(t *testing.T) {
	in := "# pcmtrace v1 lines=16\n\n# a comment\nW 3 M\n\nR 3\n"
	r, err := NewReader(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	op, err := r.Next()
	if err != nil || !op.Write || op.Line != 3 {
		t.Fatalf("first record %+v %v", op, err)
	}
	op, err = r.Next()
	if err != nil || op.Write || op.Line != 3 {
		t.Fatalf("second record %+v %v", op, err)
	}
}

func TestReaderErrors(t *testing.T) {
	cases := []string{
		"",                                   // empty
		"not a header\n",                     // bad header
		"# pcmtrace v1 lines=8\nX 1\n",       // bad opcode
		"# pcmtrace v1 lines=8\nW 1\n",       // missing content
		"# pcmtrace v1 lines=8\nW abc M\n",   // bad address
		"# pcmtrace v1 lines=8\nW 1 Q\n",     // bad content
		"# pcmtrace v1 lines=8\nW 99 M\n",    // out of range
		"# pcmtrace v1 lines=8\nR onehalf\n", // bad read address
	}
	for i, in := range cases {
		r, err := NewReader(strings.NewReader(in))
		if err != nil {
			continue // header-level failure is fine for the first two
		}
		if _, err := r.Next(); err == nil || err == io.EOF {
			t.Errorf("case %d accepted malformed input", i)
		}
	}
}

func TestReplayDeterminism(t *testing.T) {
	// Generate a workload trace, replay it twice, expect identical state.
	prof, _ := workload.ByName("dedup")
	gen := workload.NewGenerator(prof, 256, 42)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 256)
	for i := 0; i < 5000; i++ {
		a := gen.Next()
		c := pcm.Mixed
		if i%3 == 0 {
			c = pcm.Zeros
		}
		if err := w.Add(Op{Write: a.Write, Line: a.Line, Content: c}); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	raw := buf.Bytes()

	run := func() ([]uint32, ReplayStats) {
		s, _ := startgap.NewSingle(256, 16)
		c := wear.MustNewController(pcm.Config{
			LineBytes: 256, Endurance: 1 << 30, Timing: pcm.DefaultTiming,
		}, s)
		r, err := NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		st, err := Replay(c, r)
		if err != nil {
			t.Fatal(err)
		}
		return append([]uint32(nil), c.Bank().WearCounts()...), st
	}
	w1, s1 := run()
	w2, s2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("wear diverged at PA %d", i)
		}
	}
	if s1.Writes+s1.Reads != 5000 {
		t.Fatalf("replayed %d ops", s1.Writes+s1.Reads)
	}
}

func TestReplayStopsOnFailure(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 8)
	for i := 0; i < 100; i++ {
		w.Add(Op{Write: true, Line: 2, Content: pcm.Mixed})
	}
	w.Flush()
	c := wear.MustNewController(pcm.Config{
		LineBytes: 256, Endurance: 10, Timing: pcm.DefaultTiming,
	}, wear.NewPassthrough(8))
	r, _ := NewReader(&buf)
	st, err := Replay(c, r)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Failed || st.FailedPA != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.Writes != 11 {
		t.Fatalf("should stop at failure: %d writes", st.Writes)
	}
}

func TestReplayRejectsOversizedTrace(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1024)
	w.Add(Op{Write: true, Line: 0, Content: pcm.Mixed})
	w.Flush()
	c := wear.MustNewController(pcm.Config{
		LineBytes: 256, Endurance: 10, Timing: pcm.DefaultTiming,
	}, wear.NewPassthrough(8))
	r, _ := NewReader(&buf)
	if _, err := Replay(c, r); err == nil {
		t.Fatal("oversized trace accepted")
	}
}

package trace_test

import (
	"bytes"
	"fmt"

	"securityrbsg/internal/pcm"
	"securityrbsg/internal/startgap"
	"securityrbsg/internal/trace"
	"securityrbsg/internal/wear"
)

// Example records a tiny trace and replays it against Start-Gap.
func Example() {
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, 64)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 10; i++ {
		w.Add(trace.Op{Write: true, Line: 7, Content: pcm.Mixed})
	}
	w.Add(trace.Op{Line: 7}) // a read
	w.Flush()

	scheme, _ := startgap.NewSingle(64, 4)
	ctrl, _ := wear.NewController(pcm.Config{
		LineBytes: 256, Endurance: 1000,
	}, scheme)
	r, _ := trace.NewReader(&buf)
	st, err := trace.Replay(ctrl, r)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d writes, %d reads, failed=%v\n", st.Writes, st.Reads, st.Failed)
	// Output:
	// 10 writes, 1 reads, failed=false
}

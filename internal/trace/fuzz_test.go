package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"securityrbsg/internal/pcm"
)

type Content = pcm.Content

var (
	contentZeros = pcm.Zeros
	contentOnes  = pcm.Ones
	contentMixed = pcm.Mixed
)

// FuzzReader feeds arbitrary bytes to the parser: it must never panic,
// and every record it does accept must be well-formed and in range.
func FuzzReader(f *testing.F) {
	f.Add("# pcmtrace v1 lines=16\nW 3 M\nR 3\n")
	f.Add("# pcmtrace v1 lines=1\nW 0 0\n")
	f.Add("# pcmtrace v1 lines=8\n# comment\n\nR 7\n")
	f.Add("garbage")
	f.Add("# pcmtrace v1 lines=0\nR 0\n")
	f.Add("# pcmtrace v1 lines=18446744073709551615\nW 5 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		r, err := NewReader(strings.NewReader(input))
		if err != nil {
			return
		}
		for i := 0; i < 10000; i++ {
			op, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // rejected input is fine; panics are not
			}
			if op.Line >= r.Lines() {
				t.Fatalf("accepted out-of-range record %+v (space %d)", op, r.Lines())
			}
		}
	})
}

// FuzzRoundTrip: any sequence of valid ops must survive write→read
// unchanged.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(5), uint64(16), true, uint8(0))
	f.Add(uint64(0), uint64(1), false, uint8(2))
	f.Fuzz(func(t *testing.T, line, lines uint64, write bool, content uint8) {
		if lines == 0 || lines > 1<<20 {
			return
		}
		line %= lines
		op := Op{Write: write, Line: line}
		if write {
			op.Content = []Content{contentZeros, contentOnes, contentMixed}[content%3]
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, lines)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Add(op); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got != op {
			t.Fatalf("round trip changed %+v to %+v", op, got)
		}
	})
}

// Package trace defines a plain-text memory-access trace format and the
// record/replay machinery around it, so experiments can be driven by
// files instead of built-in generators — captured from one run, replayed
// against any wear-leveling scheme.
//
// Format: a header line `# pcmtrace v1 lines=<N>` followed by one record
// per line:
//
//	W <la> <0|1|M>    write ALL-0 / ALL-1 / mixed data to logical line la
//	R <la>            read logical line la
//
// Blank lines and further `#` comments are ignored. Addresses are
// decimal. The format favors greppability over density; traces compress
// extremely well if stored.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"securityrbsg/internal/pcm"
	"securityrbsg/internal/wear"
)

// Op is one trace record.
type Op struct {
	// Write distinguishes writes from reads.
	Write bool
	// Line is the logical line touched.
	Line uint64
	// Content is the written data class (writes only).
	Content pcm.Content
}

// Writer emits a trace to an io.Writer.
type Writer struct {
	w     *bufio.Writer
	lines uint64
	count uint64
	err   error
}

// NewWriter starts a trace for a memory of `lines` logical lines and
// writes the header.
func NewWriter(w io.Writer, lines uint64) (*Writer, error) {
	tw := &Writer{w: bufio.NewWriter(w), lines: lines}
	if _, err := fmt.Fprintf(tw.w, "# pcmtrace v1 lines=%d\n", lines); err != nil {
		return nil, err
	}
	return tw, nil
}

// Lines returns the header's memory size.
func (t *Writer) Lines() uint64 { return t.lines }

// Count returns the number of records emitted.
func (t *Writer) Count() uint64 { return t.count }

func contentCode(c pcm.Content) byte {
	switch c {
	case pcm.Zeros:
		return '0'
	case pcm.Ones:
		return '1'
	default:
		return 'M'
	}
}

// Add appends one record.
func (t *Writer) Add(op Op) error {
	if t.err != nil {
		return t.err
	}
	if op.Line >= t.lines {
		t.err = fmt.Errorf("trace: line %d out of declared space %d", op.Line, t.lines)
		return t.err
	}
	if op.Write {
		_, t.err = fmt.Fprintf(t.w, "W %d %c\n", op.Line, contentCode(op.Content))
	} else {
		_, t.err = fmt.Fprintf(t.w, "R %d\n", op.Line)
	}
	if t.err == nil {
		t.count++
	}
	return t.err
}

// Flush drains the buffer; call once when done.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Reader parses a trace from an io.Reader.
type Reader struct {
	s     *bufio.Scanner
	lines uint64
	n     int
}

// NewReader parses the header and positions at the first record.
func NewReader(r io.Reader) (*Reader, error) {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 64*1024), 64*1024)
	if !s.Scan() {
		if err := s.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty input")
	}
	header := s.Text()
	var lines uint64
	if _, err := fmt.Sscanf(header, "# pcmtrace v1 lines=%d", &lines); err != nil {
		return nil, fmt.Errorf("trace: bad header %q: %w", header, err)
	}
	return &Reader{s: s, lines: lines, n: 1}, nil
}

// Lines returns the header's memory size.
func (t *Reader) Lines() uint64 { return t.lines }

// Next returns the next record; io.EOF when the trace is exhausted.
func (t *Reader) Next() (Op, error) {
	for t.s.Scan() {
		t.n++
		line := strings.TrimSpace(t.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		op, err := parseOp(line)
		if err != nil {
			return Op{}, fmt.Errorf("trace: line %d: %w", t.n, err)
		}
		if op.Line >= t.lines {
			return Op{}, fmt.Errorf("trace: line %d: address %d out of declared space %d", t.n, op.Line, t.lines)
		}
		return op, nil
	}
	if err := t.s.Err(); err != nil {
		return Op{}, err
	}
	return Op{}, io.EOF
}

func parseOp(line string) (Op, error) {
	fields := strings.Fields(line)
	switch {
	case len(fields) == 2 && fields[0] == "R":
		la, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return Op{}, fmt.Errorf("bad address %q", fields[1])
		}
		return Op{Line: la}, nil
	case len(fields) == 3 && fields[0] == "W":
		la, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return Op{}, fmt.Errorf("bad address %q", fields[1])
		}
		var c pcm.Content
		switch fields[2] {
		case "0":
			c = pcm.Zeros
		case "1":
			c = pcm.Ones
		case "M":
			c = pcm.Mixed
		default:
			return Op{}, fmt.Errorf("bad content %q", fields[2])
		}
		return Op{Write: true, Line: la, Content: c}, nil
	default:
		return Op{}, fmt.Errorf("malformed record %q", line)
	}
}

// ReplayStats summarizes a replay.
type ReplayStats struct {
	Reads, Writes uint64
	ElapsedNs     uint64
	Failed        bool
	FailedPA      uint64
}

// Replay drives every record of r through the controller and returns the
// aggregate statistics. Replay stops early (without error) if the device
// fails. The trace's declared space must fit the controller's logical
// space.
func Replay(c *wear.Controller, r *Reader) (ReplayStats, error) {
	var st ReplayStats
	if r.Lines() > c.Scheme().LogicalLines() {
		return st, fmt.Errorf("trace: trace space %d exceeds scheme space %d",
			r.Lines(), c.Scheme().LogicalLines())
	}
	for {
		op, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return st, err
		}
		if op.Write {
			st.ElapsedNs += c.Write(op.Line, op.Content)
			st.Writes++
		} else {
			_, ns := c.Read(op.Line)
			st.ElapsedNs += ns
			st.Reads++
		}
		if pa, _, failed := c.Bank().FirstFailure(); failed {
			st.Failed = true
			st.FailedPA = pa
			break
		}
	}
	return st, nil
}

package startgap

import (
	"testing"

	"securityrbsg/internal/schemetest"
)

func mustSingle(t *testing.T, n, interval uint64) *Single {
	t.Helper()
	s, err := NewSingle(n, interval)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFastForwardDifferential drives two identical Singles through the
// same pinned write stream — one write by write, one through the
// WritesToNextRemap/SkipWrites fast path — and asserts the scheme state
// is bit-identical afterwards. This is the exactness contract of
// wear.FastForwarder, checked at the scheme layer (internal/exactsim
// checks it again with a bank underneath).
func TestFastForwardDifferential(t *testing.T) {
	const (
		n     = 32
		psi   = 7
		la    = 5
		total = 3 * (n + 1) * psi / 2 // ~1.5 rotation rounds
	)
	naive := mustSingle(t, n, psi)
	fast := mustSingle(t, n, psi)
	mn := schemetest.NewTokenMover(naive)
	mf := schemetest.NewTokenMover(fast)

	for i := 0; i < total; i++ {
		naive.NoteWrite(la, mn)
	}

	issued := uint64(0)
	for issued < total {
		k := fast.WritesToNextRemap(la)
		if k == 0 {
			t.Fatal("WritesToNextRemap returned 0 (contract says ≥ 1)")
		}
		if batch := k - 1; batch > 0 {
			if rem := uint64(total) - issued; batch > rem {
				batch = rem
			}
			// The movement-free prefix: translation must be frozen across it.
			before := fast.Translate(la)
			fast.SkipWrites(la, batch)
			if after := fast.Translate(la); after != before {
				t.Fatalf("SkipWrites moved the mapping: %d -> %d", before, after)
			}
			issued += batch
			if issued == total {
				break
			}
		}
		// The epoch's firing write goes through the ordinary path.
		fast.NoteWrite(la, mf)
		issued++
	}

	if naive.Start() != fast.Start() || naive.Gap() != fast.Gap() {
		t.Fatalf("registers diverged: naive start=%d gap=%d, fast start=%d gap=%d",
			naive.Start(), naive.Gap(), fast.Start(), fast.Gap())
	}
	if naive.Movements() != fast.Movements() || naive.Rounds() != fast.Rounds() {
		t.Fatalf("movement books diverged: naive %d/%d, fast %d/%d",
			naive.Movements(), naive.Rounds(), fast.Movements(), fast.Rounds())
	}
	for a := uint64(0); a < n; a++ {
		if naive.Translate(a) != fast.Translate(a) {
			t.Fatalf("Translate(%d) diverged: %d vs %d", a, naive.Translate(a), fast.Translate(a))
		}
	}
	if err := schemetest.Verify(fast, mf); err != nil {
		t.Fatal(err)
	}
}

// TestFastForwardBound pins the closed form itself: after w writes into
// an interval of ψ, exactly ψ−w writes remain until the next movement,
// and skipping right up to (but not onto) that boundary is legal while
// crossing it panics.
func TestFastForwardBound(t *testing.T) {
	const psi = 10
	s := mustSingle(t, 8, psi)
	m := schemetest.NewTokenMover(s)
	for w := uint64(0); w < psi-1; w++ {
		if got := s.WritesToNextRemap(3); got != psi-w {
			t.Fatalf("after %d writes: WritesToNextRemap = %d, want %d", w, got, psi-w)
		}
		s.NoteWrite(3, m)
	}

	s2 := mustSingle(t, 8, psi)
	s2.SkipWrites(0, psi-1) // legal: lands one short of the boundary
	if got := s2.WritesToNextRemap(0); got != 1 {
		t.Fatalf("after max skip: WritesToNextRemap = %d, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SkipWrites across a movement boundary must panic")
		}
	}()
	s2.SkipWrites(0, 1)
}

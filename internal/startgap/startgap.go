// Package startgap implements the Start-Gap wear-leveling algorithm of
// Qureshi et al. (MICRO'09) for a single region: n logical lines stored in
// n+1 physical slots, with a Start register counting completed rotation
// rounds and a Gap register pointing at the empty slot. Every interval
// writes the gap moves one slot, so after a full round every line has
// shifted by one physical slot — wear from a pinned logical address is
// spread sequentially across the whole region.
//
// The region is deliberately unaware of the bank: movements go through a
// wear.Mover with a configurable base offset, so regions can be tiled into
// a larger physical space by RBSG and Security RBSG.
package startgap

import (
	"fmt"

	"securityrbsg/internal/wear"
)

// Region is one Start-Gap wear-leveling domain. Physical slot indices are
// local to the region: [0, n] where slot layout starts at Base in the
// owning bank.
type Region struct {
	n        uint64 // logical lines
	interval uint64 // writes between gap movements (ψ)
	base     uint64 // physical offset of slot 0 in the bank

	start uint64 // completed-rounds register, in [0, n)
	gap   uint64 // empty slot, in [0, n]

	writeCount uint64 // writes since the last gap movement
	movements  uint64 // total gap movements performed
	rounds     uint64 // completed rounds
}

// New creates a region of n logical lines (n >= 1) whose n+1 physical
// slots begin at physical address base, moving the gap every interval
// writes (interval >= 1).
func New(n, interval, base uint64) (*Region, error) {
	if n == 0 {
		return nil, fmt.Errorf("startgap: region needs at least one line")
	}
	if interval == 0 {
		return nil, fmt.Errorf("startgap: interval must be at least 1")
	}
	return &Region{n: n, interval: interval, base: base, gap: n}, nil
}

// MustNew is New that panics on error.
func MustNew(n, interval, base uint64) *Region {
	r, err := New(n, interval, base)
	if err != nil {
		panic(err)
	}
	return r
}

// Lines returns the number of logical lines n.
func (r *Region) Lines() uint64 { return r.n }

// PhysicalLines returns n+1 (the extra GapLine).
func (r *Region) PhysicalLines() uint64 { return r.n + 1 }

// Base returns the physical address of the region's slot 0.
func (r *Region) Base() uint64 { return r.base }

// Interval returns the remapping interval ψ.
func (r *Region) Interval() uint64 { return r.interval }

// Start returns the Start register (completed rounds mod n).
func (r *Region) Start() uint64 { return r.start }

// Gap returns the Gap register (the empty slot, in [0, n]).
func (r *Region) Gap() uint64 { return r.gap }

// Movements returns the total number of gap movements performed.
func (r *Region) Movements() uint64 { return r.movements }

// Rounds returns the number of completed rotation rounds.
func (r *Region) Rounds() uint64 { return r.rounds }

// Translate maps a region-local logical line index to its bank physical
// address using the MICRO'09 rule: PA = (LA + Start) mod n, incremented by
// one if it is at or past the gap.
func (r *Region) Translate(la uint64) uint64 {
	if la >= r.n {
		panic(fmt.Errorf("startgap: logical address %d out of region of %d lines", la, r.n))
	}
	pa := la + r.start
	if pa >= r.n {
		pa -= r.n
	}
	if pa >= r.gap {
		pa++
	}
	return r.base + pa
}

// NoteWrite records one demand write into the region and performs a gap
// movement through m when the interval has elapsed, returning the movement
// latency in nanoseconds (0 otherwise).
func (r *Region) NoteWrite(m wear.Mover) uint64 {
	r.writeCount++
	if r.writeCount < r.interval {
		return 0
	}
	r.writeCount = 0
	return r.MoveGap(m)
}

// WritesToNextMove returns how many demand writes from now until a gap
// movement fires: of the next k = WritesToNextMove() writes to the
// region, exactly the k-th triggers MoveGap. Always ≥ 1.
func (r *Region) WritesToNextMove() uint64 { return r.interval - r.writeCount }

// SkipWrites books k demand writes at once, none of which may trigger a
// movement: k must be strictly less than WritesToNextMove(). This is the
// epoch fast-forward primitive — between gap movements the region's
// translation is frozen, so skipped writes are indistinguishable from
// k calls to NoteWrite that all returned 0.
func (r *Region) SkipWrites(k uint64) {
	if k >= r.interval-r.writeCount {
		panic(fmt.Errorf("startgap: SkipWrites(%d) would cross a gap movement (%d writes remain)",
			k, r.interval-r.writeCount))
	}
	r.writeCount += k
}

// MoveGap performs one gap movement unconditionally: the line before the
// gap slides into the gap; when the gap reaches slot 0 the round completes,
// the line in the top slot wraps to slot 0 and Start advances.
func (r *Region) MoveGap(m wear.Mover) uint64 {
	r.movements++
	if r.gap == 0 {
		// Round boundary: slot n currently holds the line that must wrap
		// to slot 0 so that the whole region has rotated by one.
		ns := m.Move(r.base+r.n, r.base+0)
		r.gap = r.n
		r.start++
		if r.start == r.n {
			r.start = 0
		}
		r.rounds++
		return ns
	}
	ns := m.Move(r.base+r.gap-1, r.base+r.gap)
	r.gap--
	return ns
}

// WritesPerRound returns the number of demand writes consumed by one full
// rotation round: (n+1) movements × interval.
func (r *Region) WritesPerRound() uint64 { return (r.n + 1) * r.interval }

// Single adapts a lone Region to the wear.Scheme interface, giving the
// plain (non-region-based) Start-Gap scheme over the whole bank — the
// baseline whose LVF the paper notes is too large against RAA without
// regioning.
type Single struct{ *Region }

// NewSingle wraps a whole-bank region of n lines with the given interval.
func NewSingle(n, interval uint64) (*Single, error) {
	r, err := New(n, interval, 0)
	if err != nil {
		return nil, err
	}
	return &Single{Region: r}, nil
}

// Name identifies the scheme.
func (s *Single) Name() string { return "start-gap" }

// LogicalLines returns the logical space size.
func (s *Single) LogicalLines() uint64 { return s.Lines() }

// NoteWrite implements wear.Scheme.
func (s *Single) NoteWrite(la uint64, m wear.Mover) uint64 {
	_ = la // a single region counts every write
	return s.Region.NoteWrite(m)
}

// WritesToNextRemap implements wear.FastForwarder: the region counts
// every write regardless of address.
func (s *Single) WritesToNextRemap(la uint64) uint64 {
	_ = la
	return s.Region.WritesToNextMove()
}

// SkipWrites implements wear.FastForwarder.
func (s *Single) SkipWrites(la, k uint64) {
	_ = la
	s.Region.SkipWrites(k)
}

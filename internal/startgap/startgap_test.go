package startgap

import (
	"testing"

	"securityrbsg/internal/schemetest"
	"securityrbsg/internal/wear"
)

func TestValidation(t *testing.T) {
	if _, err := New(0, 1, 0); err == nil {
		t.Error("zero lines must fail")
	}
	if _, err := New(8, 0, 0); err == nil {
		t.Error("zero interval must fail")
	}
}

func TestInitialMapping(t *testing.T) {
	r := MustNew(8, 4, 0)
	for la := uint64(0); la < 8; la++ {
		if pa := r.Translate(la); pa != la {
			t.Fatalf("initial Translate(%d) = %d", la, pa)
		}
	}
	if r.Gap() != 8 || r.Start() != 0 {
		t.Fatalf("initial registers gap=%d start=%d", r.Gap(), r.Start())
	}
}

// TestPaperFig2 replays the remapping round of the paper's Fig 2 (8 lines,
// 9 slots): after the first movement IA7 sits in slot 8; after a full
// round every line has shifted down by one.
func TestPaperFig2(t *testing.T) {
	s := &Single{Region: MustNew(8, 1, 0)}
	m := schemetest.NewTokenMover(s)

	s.Region.MoveGap(m) // 1st remapping: slot 7 → slot 8
	if got := s.Translate(7); got != 8 {
		t.Fatalf("after 1st remapping IA7 at %d, want 8 (Fig 2b)", got)
	}
	for i := 0; i < 8; i++ { // complete the round
		s.Region.MoveGap(m)
	}
	// Fig 2(d): next round begun, IA7 wrapped to slot 0.
	if got := s.Translate(7); got != 0 {
		t.Fatalf("after full round IA7 at %d, want 0 (Fig 2d)", got)
	}
	for la := uint64(0); la < 7; la++ {
		if got := s.Translate(la); got != la+1 {
			t.Fatalf("after full round IA%d at %d, want %d", la, got, la+1)
		}
	}
	if err := schemetest.Verify(s, m); err != nil {
		t.Fatal(err)
	}
	if s.Region.Rounds() != 1 || s.Region.Movements() != 9 {
		t.Fatalf("rounds=%d movements=%d", s.Region.Rounds(), s.Region.Movements())
	}
}

// TestDataIntegrityLong drives many rounds and checks the mapping/data
// invariant continuously.
func TestDataIntegrityLong(t *testing.T) {
	s := &Single{Region: MustNew(37, 3, 0)} // awkward odd size on purpose
	if _, err := schemetest.ExerciseHammer(s, 11, 37*3*20, 7); err != nil {
		t.Fatal(err)
	}
}

func TestDataIntegrityRandomTraffic(t *testing.T) {
	s, err := NewSingle(64, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := schemetest.Exercise(s, 64*5*10, 13, 1); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalGatesMovements(t *testing.T) {
	s := &Single{Region: MustNew(16, 10, 0)}
	m := schemetest.NewTokenMover(s)
	for i := 0; i < 9; i++ {
		if ns := s.NoteWrite(0, m); ns != 0 {
			t.Fatalf("movement before interval elapsed (write %d)", i+1)
		}
	}
	s.NoteWrite(0, m)
	if m.Moves != 1 {
		t.Fatalf("10th write should have moved the gap, moves=%d", m.Moves)
	}
}

func TestBaseOffset(t *testing.T) {
	r := MustNew(8, 1, 100)
	if pa := r.Translate(0); pa != 100 {
		t.Fatalf("base offset ignored: %d", pa)
	}
	mv := &recordingMover{}
	r.MoveGap(mv)
	if mv.src != 107 || mv.dst != 108 {
		t.Fatalf("movement at %d→%d, want 107→108", mv.src, mv.dst)
	}
}

type recordingMover struct{ src, dst uint64 }

func (m *recordingMover) Move(src, dst uint64) uint64 {
	m.src, m.dst = src, dst
	return 0
}

func (m *recordingMover) Swap(x, y uint64) uint64 { return 0 }

func TestTranslatePanicsOutOfRange(t *testing.T) {
	r := MustNew(8, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Translate(8)
}

// TestUniformWearUnderHammer is the scheme's whole purpose: hammering one
// logical address spreads wear across all slots of the region.
func TestUniformWearUnderHammer(t *testing.T) {
	const n, psi = 16, 2
	s := &Single{Region: MustNew(n, psi, 0)}
	m := schemetest.NewTokenMover(s)
	wear := make([]uint64, n+1)
	rounds := 50
	for i := 0; i < rounds*(n+1)*psi; i++ {
		wear[s.Translate(3)]++
		s.NoteWrite(3, m)
	}
	min, max := wear[0], wear[0]
	for _, w := range wear {
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
	}
	if float64(min) < 0.5*float64(max) {
		t.Fatalf("hammered wear spread min=%d max=%d — not leveled", min, max)
	}
}

func TestWritesPerRound(t *testing.T) {
	r := MustNew(8, 4, 0)
	if got := r.WritesPerRound(); got != 36 {
		t.Fatalf("WritesPerRound = %d, want (8+1)*4", got)
	}
}

func TestSingleImplementsScheme(t *testing.T) {
	var _ wear.Scheme = &Single{Region: MustNew(4, 1, 0)}
	s, _ := NewSingle(4, 1)
	if s.Name() != "start-gap" || s.LogicalLines() != 4 || s.PhysicalLines() != 5 {
		t.Fatal("scheme metadata")
	}
	if err := wear.CheckBijection(s); err != nil {
		t.Fatal(err)
	}
}

package startgap

import (
	"securityrbsg/internal/registry"
	"securityrbsg/internal/wear"
)

// The registry entry for plain (single-region) Start-Gap — structurally
// RBSG with one region and the identity randomizer, so the RBSG timing
// attack applies to it directly. Default interval is the Start-Gap
// paper's ψ=100.
func init() {
	registry.RegisterScheme(registry.Scheme{
		Name: "start-gap",
		Doc:  "plain Start-Gap over the whole bank, no randomization",
		Caps: registry.SchemeCaps{Exact: true, TimingOracle: true},
		Defaults: func(cfg registry.Config) registry.Config {
			if cfg.InnerInterval == 0 {
				cfg.InnerInterval = 100
			}
			cfg.Regions = 1 // structural: one region is what "start-gap" means
			return cfg
		},
		New: func(cfg registry.Config) (wear.Scheme, error) {
			return NewSingle(cfg.Lines, cfg.InnerInterval)
		},
	})
}

package runner

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// WriteCSV renders a Report as one CSV row per cell: the cell ID, the
// sorted union of label keys, the cell status, and the sorted union of
// metric names. Cells missing a label or metric leave that field empty.
//
// The emission is deterministic: column order derives from sorted key
// sets, row order is grid order, and runtime telemetry (wall seconds,
// writes/sec) is deliberately excluded so two runs of the same grid —
// sharded differently, resumed, or not — produce byte-identical files.
// Telemetry belongs in the Meta JSON (WriteMetaFile), not here.
func WriteCSV(w io.Writer, rep *Report) error {
	labelKeys := map[string]struct{}{}
	metricKeys := map[string]struct{}{}
	for _, c := range rep.Results {
		for k := range c.Labels {
			labelKeys[k] = struct{}{}
		}
		for k := range c.Metrics.Values {
			metricKeys[k] = struct{}{}
		}
	}
	labels := sortedKeys(labelKeys)
	metrics := sortedKeys(metricKeys)

	cw := csv.NewWriter(w)
	header := append(append([]string{"cell"}, labels...), "status")
	header = append(header, metrics...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, c := range rep.Results {
		row := make([]string, 0, len(header))
		row = append(row, c.ID)
		for _, k := range labels {
			row = append(row, c.Labels[k])
		}
		// Whether a cell ran now or was satisfied from a checkpoint is
		// provenance, not result: fold it away so resumed runs emit the
		// same bytes as fresh ones.
		status := c.Status
		if status == StatusResumed {
			status = StatusDone
		}
		row = append(row, string(status))
		for _, k := range metrics {
			v, ok := c.Metrics.Values[k]
			if !ok {
				row = append(row, "")
				continue
			}
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the Report's CSV atomically (temp file + rename),
// so a crash mid-write never leaves a truncated report behind.
func WriteCSVFile(path string, rep *Report) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".csv-*")
	if err != nil {
		return fmt.Errorf("runner: csv: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := WriteCSV(tmp, rep); err != nil {
		tmp.Close()
		return fmt.Errorf("runner: csv: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("runner: csv: %w", err)
	}
	return os.Rename(tmp.Name(), path)
}

func sortedKeys(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package runner

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
)

// checkpointStore persists one JSON file per completed cell under
// <root>/<sanitized grid name>/. Writes go to a temporary file in the
// same directory followed by an atomic rename, so a checkpoint is either
// absent or complete — a run killed mid-write never poisons a resume.
type checkpointStore struct {
	dir string
}

func openCheckpointStore(root, grid string) (*checkpointStore, error) {
	dir := filepath.Join(root, sanitize(grid))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: checkpoint dir: %w", err)
	}
	return &checkpointStore{dir: dir}, nil
}

// path names the checkpoint file for one cell: a hash keeps filenames
// short and filesystem-safe regardless of what characters the ID uses;
// the ID stored inside the file is what resume matches on.
func (s *checkpointStore) path(cellID string) string {
	h := fnv.New64a()
	h.Write([]byte(cellID))
	return filepath.Join(s.dir, fmt.Sprintf("%016x.json", h.Sum64()))
}

func (s *checkpointStore) save(res CellResult) error {
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("runner: checkpoint %s: %w", res.ID, err)
	}
	final := s.path(res.ID)
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("runner: checkpoint %s: %w", res.ID, err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("runner: checkpoint %s: %w", res.ID, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("runner: checkpoint %s: %w", res.ID, err)
	}
	if err := os.Rename(name, final); err != nil {
		os.Remove(name)
		return fmt.Errorf("runner: checkpoint %s: %w", res.ID, err)
	}
	return nil
}

// load reads every checkpoint in the grid's directory, keyed by cell ID.
// Unreadable or corrupt files are skipped — the worst case is
// recomputing a cell, never trusting a bad record.
func (s *checkpointStore) load() map[string]CellResult {
	out := map[string]CellResult{}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return out
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, e.Name()))
		if err != nil {
			continue
		}
		var res CellResult
		if err := json.Unmarshal(data, &res); err != nil || res.ID == "" {
			continue
		}
		out[res.ID] = res
	}
	return out
}

// sanitize maps a grid name onto one filesystem-safe path segment.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '-' || r == '_' || r == '.' || r == '=':
			return r
		default:
			return '_'
		}
	}, name)
}

package runner

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func csvReport() *Report {
	return &Report{
		Grid: "t",
		Results: []CellResult{
			{
				ID:     "b-cell",
				Labels: map[string]string{"scheme": "rbsg", "attack": "raa"},
				Status: StatusDone,
				Metrics: Metrics{Values: map[string]float64{
					"writes": 1234567, "wear_gini": 0.25,
				}},
				WallSeconds:  3.5,
				WritesPerSec: 1e6,
			},
			{
				ID:     "a-cell",
				Labels: map[string]string{"scheme": "none"},
				Status: StatusResumed,
				Metrics: Metrics{Values: map[string]float64{
					"writes": 42, "extra": 0.5,
				}},
				WallSeconds: 99,
			},
		},
	}
}

func TestWriteCSVDeterministic(t *testing.T) {
	rep := csvReport()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rep); err != nil {
		t.Fatal(err)
	}
	want := "cell,attack,scheme,status,extra,wear_gini,writes\n" +
		"b-cell,raa,rbsg,done,,0.25,1.234567e+06\n" +
		"a-cell,,none,done,0.5,,42\n"
	if got := buf.String(); got != want {
		t.Fatalf("CSV bytes:\n%s\nwant:\n%s", got, want)
	}
}

// TestWriteCSVFoldsResumed: a resumed cell must emit "done" — resume
// provenance must never make a rerun's CSV differ from a fresh run's.
func TestWriteCSVFoldsResumed(t *testing.T) {
	fresh := csvReport()
	resumed := csvReport()
	for i := range resumed.Results {
		resumed.Results[i].Status = StatusResumed
		// Telemetry differs wildly across runs; it must not leak into CSV.
		resumed.Results[i].WallSeconds *= 17
		resumed.Results[i].WritesPerSec = 0
	}
	for i := range fresh.Results {
		fresh.Results[i].Status = StatusDone
	}
	var a, b bytes.Buffer
	if err := WriteCSV(&a, fresh); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&b, resumed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("resumed CSV differs from fresh:\n%s\nvs\n%s", b.String(), a.String())
	}
}

// Failure statuses, by contrast, must survive into the file: a partial
// run's CSV has to say which cells are missing.
func TestWriteCSVKeepsFailureStatuses(t *testing.T) {
	rep := csvReport()
	rep.Results[0].Status = StatusFailed
	rep.Results[1].Status = StatusCancelled
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(",failed,")) ||
		!bytes.Contains(buf.Bytes(), []byte(",cancelled,")) {
		t.Fatalf("failure statuses folded away:\n%s", buf.String())
	}
}

func TestWriteCSVFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := WriteCSVFile(path, csvReport()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, csvReport()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, buf.Bytes()) {
		t.Fatal("file contents differ from direct emission")
	}
	// No temp-file droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("stray files in dir: %v", entries)
	}
}

package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"securityrbsg/internal/stats"
)

// syntheticGrid builds an n-cell grid whose cell function is a small
// Monte-Carlo computation driven entirely by the cell seed, so results
// expose any seed- or order-dependence bugs in the runner.
func syntheticGrid(name string, n int) Grid {
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = Cell{ID: fmt.Sprintf("cell=%03d", i), Labels: map[string]string{"i": fmt.Sprint(i)}}
	}
	return Grid{
		Name:  name,
		Cells: cells,
		Run: func(ctx context.Context, c Cell, seed uint64) (Metrics, error) {
			rng := stats.NewRNG(seed)
			sum := 0.0
			for i := 0; i < 1000; i++ {
				sum += rng.Float64()
			}
			return Metrics{
				Values:    map[string]float64{"sum": sum},
				SimWrites: 1000,
			}, nil
		},
	}
}

// metricsBytes serializes just the per-cell metrics — the part of a
// report that must be bit-identical across worker counts and resumes
// (wall times and worker counts legitimately differ).
func metricsBytes(t *testing.T, rep *Report) []byte {
	t.Helper()
	ms := make([]Metrics, len(rep.Results))
	for i, r := range rep.Results {
		ms[i] = r.Metrics
	}
	data, err := json.Marshal(ms)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestSeedForDeterministicAndDistinct(t *testing.T) {
	if SeedFor("grid", "cell") != SeedFor("grid", "cell") {
		t.Fatal("SeedFor is not deterministic")
	}
	seen := map[uint64]string{}
	for _, grid := range []string{"fig14", "fig15", "fig14/runs=5"} {
		for i := 0; i < 100; i++ {
			id := fmt.Sprintf("cell=%d", i)
			s := SeedFor(grid, id)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s/%s and %s", grid, id, prev)
			}
			seen[s] = grid + "/" + id
		}
	}
	// The NUL separator keeps (grid, cell) boundaries unambiguous.
	if SeedFor("ab", "c") == SeedFor("a", "bc") {
		t.Fatal("grid/cell boundary is ambiguous")
	}
}

func TestRunShardedBitIdenticalToSequential(t *testing.T) {
	g := syntheticGrid("shard-test", 40)
	seq, err := Run(context.Background(), g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), g, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(metricsBytes(t, seq), metricsBytes(t, par)) {
		t.Fatal("workers=8 results differ from workers=1")
	}
	if seq.Done != 40 || par.Done != 40 {
		t.Fatalf("done counts: seq=%d par=%d", seq.Done, par.Done)
	}
}

func TestCellFailureIsRetriableNotFatal(t *testing.T) {
	g := syntheticGrid("fail-test", 10)
	inner := g.Run
	g.Run = func(ctx context.Context, c Cell, seed uint64) (Metrics, error) {
		if c.ID == "cell=004" {
			return Metrics{}, errors.New("synthetic cell failure")
		}
		return inner(ctx, c, seed)
	}
	rep, err := Run(context.Background(), g, Options{Workers: 4})
	if err != nil {
		t.Fatalf("cell failure must not fail the run: %v", err)
	}
	if rep.Done != 9 || rep.Failed != 1 {
		t.Fatalf("done=%d failed=%d, want 9/1", rep.Done, rep.Failed)
	}
	r := rep.Results[4]
	if r.Status != StatusFailed || !r.Retriable || !strings.Contains(r.Error, "synthetic") {
		t.Fatalf("cell 4: %+v", r)
	}
	if rep.FailedErr() == nil {
		t.Fatal("FailedErr must report the failed cell")
	}
}

func TestCellTimeoutMarksRetriableAndContinues(t *testing.T) {
	g := syntheticGrid("timeout-test", 6)
	inner := g.Run
	g.Run = func(ctx context.Context, c Cell, seed uint64) (Metrics, error) {
		if c.ID == "cell=002" {
			<-ctx.Done() // a well-behaved long cell: blocks until the deadline
			return Metrics{}, ctx.Err()
		}
		return inner(ctx, c, seed)
	}
	rep, err := Run(context.Background(), g, Options{Workers: 3, CellTimeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 5 || rep.Failed != 1 {
		t.Fatalf("done=%d failed=%d, want 5/1", rep.Done, rep.Failed)
	}
	r := rep.Results[2]
	if r.Status != StatusTimeout || !r.Retriable {
		t.Fatalf("cell 2: %+v", r)
	}
}

func TestCancelledRunReturnsPartialReport(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	g := Grid{
		Name:  "cancel-test",
		Cells: []Cell{{ID: "a"}, {ID: "b"}, {ID: "c"}, {ID: "d"}},
		Run: func(ctx context.Context, c Cell, seed uint64) (Metrics, error) {
			if c.ID == "a" {
				return Metrics{Values: map[string]float64{"v": 1}}, nil
			}
			select {
			case started <- struct{}{}:
			default:
			}
			<-ctx.Done()
			return Metrics{}, ctx.Err()
		},
	}
	go func() {
		<-started
		cancel()
	}()
	rep, err := Run(ctx, g, Options{Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if rep == nil || rep.Done != 1 || rep.Cancelled != 3 {
		t.Fatalf("partial report: %+v", rep)
	}
}

func TestDuplicateCellIDsRejected(t *testing.T) {
	g := Grid{
		Name:  "dup",
		Cells: []Cell{{ID: "x"}, {ID: "x"}},
		Run:   func(context.Context, Cell, uint64) (Metrics, error) { return Metrics{}, nil },
	}
	if _, err := Run(context.Background(), g, Options{}); err == nil {
		t.Fatal("duplicate IDs must be rejected")
	}
}

func TestCheckpointsAndRunmetaWritten(t *testing.T) {
	dir := t.TempDir()
	meta := filepath.Join(dir, "runmeta.json")
	g := syntheticGrid("ckpt-test", 5)
	rep, err := Run(context.Background(), g, Options{
		Workers:       2,
		CheckpointDir: filepath.Join(dir, "ckpt"),
		MetaPath:      meta,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := openCheckpointStore(filepath.Join(dir, "ckpt"), g.Name)
	if err != nil {
		t.Fatal(err)
	}
	cached := store.load()
	if len(cached) != 5 {
		t.Fatalf("got %d checkpoints, want 5", len(cached))
	}
	for _, r := range rep.Results {
		cp, ok := cached[r.ID]
		if !ok || cp.Seed != r.Seed || cp.Status != StatusDone {
			t.Fatalf("checkpoint for %s: %+v", r.ID, cp)
		}
	}
	// Atomic writes leave no temp files behind.
	entries, _ := os.ReadDir(filepath.Join(dir, "ckpt", sanitize(g.Name)))
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
	data, err := os.ReadFile(meta)
	if err != nil {
		t.Fatal(err)
	}
	var m Meta
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Grids) != 1 || m.Grids[0].Done != 5 || len(m.Grids[0].Results) != 5 {
		t.Fatalf("runmeta: %+v", m)
	}
	// Per-cell throughput telemetry survives the round trip to disk.
	for _, r := range m.Grids[0].Results {
		if r.WritesPerSec <= 0 {
			t.Fatalf("cell %s: writes_per_sec missing from runmeta: %+v", r.ID, r)
		}
	}
}

// TestCellThroughputReported: every finished cell that reports SimWrites
// gets a WritesPerSec rate consistent with its wall time; cells that
// report nothing get zero.
func TestCellThroughputReported(t *testing.T) {
	rep, err := Run(context.Background(), syntheticGrid("thru-test", 3), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.WritesPerSec <= 0 {
			t.Fatalf("cell %s: no throughput: %+v", r.ID, r)
		}
		if want := r.Metrics.SimWrites / r.WallSeconds; r.WritesPerSec != want {
			t.Fatalf("cell %s: writes/sec %v, want SimWrites/WallSeconds = %v", r.ID, r.WritesPerSec, want)
		}
	}

	quiet := Grid{
		Name:  "thru-quiet",
		Cells: []Cell{{ID: "q"}},
		Run: func(context.Context, Cell, uint64) (Metrics, error) {
			return Metrics{Values: map[string]float64{"x": 1}}, nil
		},
	}
	rep, err = Run(context.Background(), quiet, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].WritesPerSec != 0 {
		t.Fatalf("cell without SimWrites must not report throughput: %+v", rep.Results[0])
	}
}

func TestTelemetryTickerWrites(t *testing.T) {
	var buf bytes.Buffer
	g := syntheticGrid("telemetry-test", 8)
	inner := g.Run
	g.Run = func(ctx context.Context, c Cell, seed uint64) (Metrics, error) {
		time.Sleep(5 * time.Millisecond)
		return inner(ctx, c, seed)
	}
	if _, err := Run(context.Background(), g, Options{
		Workers: 2, Progress: &buf, TickEvery: time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "telemetry-test") || !strings.Contains(out, "8 cells") {
		t.Fatalf("telemetry output missing summary: %q", out)
	}
}

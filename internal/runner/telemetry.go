package runner

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// tracker accumulates live progress counters and, when given a writer,
// renders them as a single rewritten ticker line: cells done/total,
// failures, resumes, cell throughput, simulated writes/sec and an ETA
// extrapolated from the cells actually computed this run.
type tracker struct {
	name  string
	total int
	w     io.Writer
	every time.Duration

	mu        sync.Mutex
	begin     time.Time
	done      int // completed this run
	resumed   int // satisfied from checkpoints
	failed    int
	cancelled int
	cellSecs  float64 // wall time of cells computed this run
	simWrites float64

	stop chan struct{}
	wg   sync.WaitGroup
}

func newTracker(name string, total int, w io.Writer, every time.Duration) *tracker {
	if every <= 0 {
		every = time.Second
	}
	return &tracker{name: name, total: total, w: w, every: every, stop: make(chan struct{})}
}

func (t *tracker) start() {
	//rbsglint:allow simdeterminism -- progress-ticker wall clock; drives the stderr ETA line, never a result
	t.begin = time.Now()
	if t.w == nil {
		return
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		tick := time.NewTicker(t.every)
		defer tick.Stop()
		for {
			select {
			case <-t.stop:
				return
			case <-tick.C:
				t.mu.Lock()
				line := t.line()
				t.mu.Unlock()
				fmt.Fprintf(t.w, "\r%-100s", line)
			}
		}
	}()
}

func (t *tracker) observe(res CellResult) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch res.Status {
	case StatusDone:
		t.done++
		t.cellSecs += res.WallSeconds
	case StatusResumed:
		t.resumed++
	case StatusFailed, StatusTimeout:
		t.failed++
	case StatusCancelled:
		t.cancelled++
	}
	t.simWrites += res.Metrics.SimWrites
}

// line renders one progress line; the caller holds t.mu.
func (t *tracker) line() string {
	finished := t.done + t.resumed + t.failed + t.cancelled
	//rbsglint:allow simdeterminism -- progress-ticker wall clock; drives the stderr ETA line, never a result
	elapsed := time.Since(t.begin).Seconds()
	s := fmt.Sprintf("%s: %d/%d cells", t.name, finished, t.total)
	if t.resumed > 0 {
		s += fmt.Sprintf(" (%d resumed)", t.resumed)
	}
	if t.failed > 0 {
		s += fmt.Sprintf(" (%d FAILED)", t.failed)
	}
	if elapsed > 0 && t.done > 0 {
		rate := float64(t.done) / elapsed
		s += fmt.Sprintf(" · %.1f cells/s", rate)
		if t.simWrites > 0 {
			s += fmt.Sprintf(" · %.2g writes/s", t.simWrites/elapsed)
		}
		if left := t.total - finished; left > 0 {
			s += fmt.Sprintf(" · ETA %s", (time.Duration(float64(left) / rate * float64(time.Second))).Round(time.Second))
		}
	}
	return s
}

// finish stops the ticker and prints the final summary line.
func (t *tracker) finish(rep *Report) {
	close(t.stop)
	t.wg.Wait()
	if t.w == nil {
		return
	}
	s := fmt.Sprintf("%s: %d cells in %.1fs (%d run, %d resumed, %d failed, %d cancelled)",
		rep.Grid, rep.Total, rep.WallSeconds, rep.Done, rep.Resumed, rep.Failed, rep.Cancelled)
	if rep.Done > 0 {
		s += fmt.Sprintf(" · avg %.2fs/cell", t.cellSecs/float64(rep.Done))
	}
	if rep.SimWrites > 0 && rep.WallSeconds > 0 {
		s += fmt.Sprintf(" · %.2g simulated writes/s", rep.SimWrites/rep.WallSeconds)
	}
	fmt.Fprintf(t.w, "\r%-100s\n", s)
}

// Meta is the machine-readable run record written next to the results:
// one entry per grid executed by the invocation.
type Meta struct {
	WrittenAt string    `json:"written_at"`
	Grids     []*Report `json:"grids"`
}

// WriteMetaFile atomically writes the reports as runmeta JSON.
func WriteMetaFile(path string, reports ...*Report) error {
	//rbsglint:allow simdeterminism -- runmeta records when the run happened (provenance), not simulation state
	meta := Meta{WrittenAt: time.Now().UTC().Format(time.RFC3339), Grids: reports}
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("runner: runmeta: %w", err)
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("runner: runmeta: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".runmeta-*")
	if err != nil {
		return fmt.Errorf("runner: runmeta: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("runner: runmeta: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("runner: runmeta: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("runner: runmeta: %w", err)
	}
	return nil
}

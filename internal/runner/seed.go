package runner

import "hash/fnv"

// SeedFor derives the deterministic RNG seed for one cell: FNV-1a over
// the grid name and cell ID (NUL-separated so ("ab","c") and ("a","bc")
// cannot collide), then a SplitMix64 finalizer so structurally similar
// keys land far apart in seed space. The seed depends only on these two
// strings — not on worker count, shard assignment, or execution order —
// which is what makes sharded runs bit-identical to sequential ones.
//
// Changing a grid's name (it encodes scale and trial count) deliberately
// reseeds every cell: results across configurations are independent
// draws, never partial reuses.
func SeedFor(grid, cellID string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(grid))
	h.Write([]byte{0})
	h.Write([]byte(cellID))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

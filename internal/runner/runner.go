// Package runner executes declarative experiment grids — one cell per
// (scheme, attack, geometry, security level, seed) point — across a
// worker pool, the batched restartable harness behind cmd/figgen and
// cmd/lifetime.
//
// Three properties make multi-hour full-geometry sweeps practical:
//
//   - Determinism. Every cell draws its randomness from a seed derived
//     by hashing (grid name, cell ID) — see SeedFor — never from worker
//     identity or execution order, and results land in index-addressed
//     slots. A run sharded over 8 workers is therefore bit-identical to
//     a sequential one.
//   - Resumability. Each completed cell is checkpointed as a JSON file
//     under Options.CheckpointDir with atomic rename-on-write; a rerun
//     with Options.Resume skips cells whose checkpoint matches their
//     expected seed, so an interrupted grid completes without
//     recomputing finished cells.
//   - Observability. A live ticker on Options.Progress reports cells
//     done/total, throughput, simulated writes/sec and an ETA, and the
//     full per-cell accounting is written to Options.MetaPath as
//     machine-readable JSON.
//
// A cell that errors or exceeds Options.CellTimeout is marked failed and
// retriable rather than aborting the grid: the remaining cells still
// run, and a later -resume pass retries only the failures.
package runner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"securityrbsg/internal/parallel"
)

// Cell is one point of an experiment grid. ID must be unique within the
// grid and stable across runs — it names the checkpoint file and, with
// the grid name, determines the cell's RNG seed.
type Cell struct {
	// ID is the canonical cell key, e.g. "regions=512/inner=64/outer=128".
	ID string `json:"id"`
	// Labels carry structured metadata (scheme, attack, …) into results
	// and telemetry; the runner does not interpret them.
	Labels map[string]string `json:"labels,omitempty"`
}

// Metrics is a cell's numeric output: named scalars plus an optional
// ordered series (e.g. a cumulative-distribution curve). SimWrites, when
// reported, feeds the simulated-writes/sec telemetry rate.
type Metrics struct {
	Values    map[string]float64 `json:"values,omitempty"`
	Series    []float64          `json:"series,omitempty"`
	SimWrites float64            `json:"sim_writes,omitempty"`
}

// CellFunc evaluates one cell. seed is the cell's deterministic RNG
// seed; implementations must draw all randomness from it. Long-running
// cells should honor ctx so per-cell timeouts can reclaim the worker.
type CellFunc func(ctx context.Context, cell Cell, seed uint64) (Metrics, error)

// Grid is a declarative experiment grid: a name (which scopes seeds and
// checkpoints — encode anything that changes cell semantics, like scale
// or trial count, into it), the cells, and the function that runs one.
type Grid struct {
	Name  string
	Cells []Cell
	Run   CellFunc
}

// Status classifies how a cell run ended.
type Status string

const (
	// StatusDone: the cell ran to completion in this run.
	StatusDone Status = "done"
	// StatusResumed: the cell was satisfied from a checkpoint.
	StatusResumed Status = "resumed"
	// StatusFailed: the cell function returned an error; retriable.
	StatusFailed Status = "failed"
	// StatusTimeout: the cell exceeded Options.CellTimeout; retriable.
	StatusTimeout Status = "timeout"
	// StatusCancelled: the run's context was cancelled before or during
	// the cell; a -resume rerun picks it up.
	StatusCancelled Status = "cancelled"
)

// CellResult is the per-cell accounting the runner reports and
// checkpoints.
type CellResult struct {
	ID          string            `json:"id"`
	Labels      map[string]string `json:"labels,omitempty"`
	Seed        uint64            `json:"seed"`
	Status      Status            `json:"status"`
	Error       string            `json:"error,omitempty"`
	Retriable   bool              `json:"retriable,omitempty"`
	Metrics     Metrics           `json:"metrics"`
	WallSeconds float64           `json:"wall_seconds"`
	// WritesPerSec is the cell's simulated line-write throughput
	// (Metrics.SimWrites over the cell's wall time). 0 when the cell does
	// not report SimWrites or did not finish. Like WallSeconds it is
	// runtime telemetry: comparing it across BENCH baselines is how the
	// exact tier's per-cell speedups are tracked.
	WritesPerSec float64 `json:"writes_per_sec,omitempty"`
}

// Report is the outcome of one grid run. Results is index-addressed in
// grid order regardless of worker count or completion order.
type Report struct {
	Grid        string       `json:"grid"`
	Workers     int          `json:"workers"`
	Total       int          `json:"total"`
	Done        int          `json:"done"`
	Resumed     int          `json:"resumed"`
	Failed      int          `json:"failed"`
	Cancelled   int          `json:"cancelled"`
	WallSeconds float64      `json:"wall_seconds"`
	SimWrites   float64      `json:"sim_writes"`
	Results     []CellResult `json:"cells"`
}

// FailedErr returns nil when every cell is done or resumed, and
// otherwise an error naming the first unfinished cell and how many more
// there are — with the hint that failures are retriable via resume.
func (r *Report) FailedErr() error {
	bad := r.Failed + r.Cancelled
	if bad == 0 {
		return nil
	}
	for _, c := range r.Results {
		if c.Status == StatusDone || c.Status == StatusResumed {
			continue
		}
		return fmt.Errorf("grid %s: %d/%d cells unfinished (first: %s %s: %s); rerun with resume to retry them",
			r.Grid, bad, r.Total, c.ID, c.Status, c.Error)
	}
	return nil
}

// Options configure one grid run. The zero value runs on NumCPU
// workers with no timeout, no checkpoints, and no telemetry.
type Options struct {
	// Workers caps the worker pool; <= 0 means NumCPU.
	Workers int
	// CellTimeout bounds one cell's wall time; 0 disables. A cell that
	// exceeds it is marked StatusTimeout and the grid continues. The
	// cell function is handed a context that expires at the deadline;
	// functions that ignore it leak a goroutine until they return.
	CellTimeout time.Duration
	// CheckpointDir is the root directory for per-cell checkpoints
	// (one subdirectory per grid); "" disables checkpointing.
	CheckpointDir string
	// Resume satisfies cells from existing checkpoints when their
	// recorded seed matches the expected one.
	Resume bool
	// Progress receives the live telemetry ticker (typically
	// os.Stderr); nil disables it.
	Progress io.Writer
	// TickEvery is the ticker period; <= 0 means one second.
	TickEvery time.Duration
	// MetaPath, when non-empty, receives the Report as JSON
	// (atomically written) after the run.
	MetaPath string
}

// Run executes the grid. Cell-level failures and timeouts are recorded
// in the Report, not returned; the error return is reserved for grid
// setup problems, checkpoint I/O failures, and context cancellation (in
// which case the partial Report is still returned).
func Run(ctx context.Context, g Grid, opts Options) (*Report, error) {
	if g.Run == nil {
		return nil, errors.New("runner: grid has no cell function")
	}
	if g.Name == "" {
		return nil, errors.New("runner: grid has no name")
	}
	seen := make(map[string]struct{}, len(g.Cells))
	for _, c := range g.Cells {
		if _, dup := seen[c.ID]; dup {
			return nil, fmt.Errorf("runner: duplicate cell ID %q in grid %s", c.ID, g.Name)
		}
		seen[c.ID] = struct{}{}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}

	var store *checkpointStore
	cached := map[string]CellResult{}
	if opts.CheckpointDir != "" {
		var err error
		store, err = openCheckpointStore(opts.CheckpointDir, g.Name)
		if err != nil {
			return nil, err
		}
		if opts.Resume {
			cached = store.load()
		}
	}

	results := make([]CellResult, len(g.Cells))
	track := newTracker(g.Name, len(g.Cells), opts.Progress, opts.TickEvery)
	track.start()
	//rbsglint:allow simdeterminism -- WallSeconds is runtime telemetry in the report; cell results never read it
	begin := time.Now()

	errs := parallel.ForEachErr(len(g.Cells), workers, func(i int) error {
		cell := g.Cells[i]
		seed := SeedFor(g.Name, cell.ID)
		res := CellResult{ID: cell.ID, Labels: cell.Labels, Seed: seed}

		if cp, ok := cached[cell.ID]; ok && cp.Seed == seed && (cp.Status == StatusDone || cp.Status == StatusResumed) {
			res = cp
			res.Status = StatusResumed
			res.Labels = cell.Labels
			results[i] = res
			track.observe(res)
			return nil
		}
		if err := ctx.Err(); err != nil {
			res.Status = StatusCancelled
			res.Error = err.Error()
			results[i] = res
			track.observe(res)
			return nil
		}

		//rbsglint:allow simdeterminism -- per-cell wall time is runtime telemetry; the cell metrics are computed before it is read
		cellBegin := time.Now()
		m, err := runCell(ctx, opts.CellTimeout, g.Run, cell, seed)
		//rbsglint:allow simdeterminism -- per-cell wall time is runtime telemetry; the cell metrics are computed before it is read
		res.WallSeconds = time.Since(cellBegin).Seconds()
		res.Metrics = m
		if err == nil && m.SimWrites > 0 && res.WallSeconds > 0 {
			res.WritesPerSec = m.SimWrites / res.WallSeconds
		}
		var saveErr error
		switch {
		case err == nil:
			res.Status = StatusDone
			if store != nil {
				saveErr = store.save(res)
			}
		case errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil:
			res.Status = StatusTimeout
			res.Retriable = true
			res.Error = err.Error()
			res.Metrics = Metrics{}
		case ctx.Err() != nil:
			res.Status = StatusCancelled
			res.Error = ctx.Err().Error()
			res.Metrics = Metrics{}
		default:
			res.Status = StatusFailed
			res.Retriable = true
			res.Error = err.Error()
			res.Metrics = Metrics{}
		}
		results[i] = res
		track.observe(res)
		return saveErr // checkpoint I/O is infrastructure, not a cell failure
	})

	rep := &Report{
		Grid:    g.Name,
		Workers: workers,
		Total:   len(g.Cells),
		//rbsglint:allow simdeterminism -- report wall time is runtime telemetry, not simulation state
		WallSeconds: time.Since(begin).Seconds(),
		Results:     results,
	}
	for _, c := range results {
		switch c.Status {
		case StatusDone:
			rep.Done++
		case StatusResumed:
			rep.Resumed++
		case StatusFailed, StatusTimeout:
			rep.Failed++
		case StatusCancelled:
			rep.Cancelled++
		}
		rep.SimWrites += c.Metrics.SimWrites
	}
	track.finish(rep)

	if opts.MetaPath != "" {
		if err := WriteMetaFile(opts.MetaPath, rep); err != nil {
			return rep, err
		}
	}
	if err := parallel.First(errs); err != nil {
		return rep, err
	}
	return rep, ctx.Err()
}

// runCell evaluates one cell, bounding its wall time when timeout > 0.
// On timeout the worker moves on; the cell function keeps the expired
// context and is expected to notice it and return.
func runCell(ctx context.Context, timeout time.Duration, fn CellFunc, cell Cell, seed uint64) (Metrics, error) {
	if timeout <= 0 {
		return fn(ctx, cell, seed)
	}
	cctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	type outcome struct {
		m   Metrics
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		m, err := fn(cctx, cell, seed)
		ch <- outcome{m, err}
	}()
	select {
	case o := <-ch:
		return o.m, o.err
	case <-cctx.Done():
		return Metrics{}, fmt.Errorf("runner: cell %s: %w", cell.ID, cctx.Err())
	}
}

package runner

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"securityrbsg/internal/stats"
)

// TestResumeSkipsCompletedCells interrupts a grid mid-run via context
// cancellation, restarts it with Resume, and asserts that (1) cells
// checkpointed by the first run are never recomputed and (2) the merged
// results are byte-identical to an uninterrupted run of the same grid.
func TestResumeSkipsCompletedCells(t *testing.T) {
	const n = 20
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = Cell{ID: fmt.Sprintf("cell=%03d", i)}
	}
	compute := func(seed uint64) Metrics {
		rng := stats.NewRNG(seed)
		sum := 0.0
		for i := 0; i < 500; i++ {
			sum += rng.Float64()
		}
		return Metrics{Values: map[string]float64{"sum": sum}, SimWrites: 500}
	}
	grid := func(run func(ctx context.Context, c Cell, seed uint64) (Metrics, error)) Grid {
		return Grid{Name: "resume-test", Cells: cells, Run: run}
	}

	// Reference: an uninterrupted run (own checkpoint dir).
	ref, err := Run(context.Background(), grid(func(_ context.Context, _ Cell, seed uint64) (Metrics, error) {
		return compute(seed), nil
	}), Options{Workers: 4, CheckpointDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}

	// First interrupted run: cancel once a few cells have completed.
	ckpt := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	executed1 := map[string]bool{}
	var completed int
	rep1, err := Run(ctx, grid(func(ctx context.Context, c Cell, seed uint64) (Metrics, error) {
		mu.Lock()
		executed1[c.ID] = true
		mu.Unlock()
		m := compute(seed)
		mu.Lock()
		completed++
		if completed == 5 {
			cancel()
		}
		mu.Unlock()
		return m, nil
	}), Options{Workers: 2, CheckpointDir: ckpt})
	cancel()
	if err == nil {
		t.Fatal("interrupted run must surface the cancellation")
	}
	if rep1.Done == 0 || rep1.Cancelled == 0 {
		t.Fatalf("expected a genuinely partial run, got done=%d cancelled=%d", rep1.Done, rep1.Cancelled)
	}
	finished := map[string]bool{}
	for _, r := range rep1.Results {
		if r.Status == StatusDone {
			finished[r.ID] = true
		}
	}

	// Second run with Resume: completed cells must come from checkpoints.
	executed2 := map[string]bool{}
	rep2, err := Run(context.Background(), grid(func(_ context.Context, c Cell, seed uint64) (Metrics, error) {
		mu.Lock()
		executed2[c.ID] = true
		mu.Unlock()
		return compute(seed), nil
	}), Options{Workers: 4, CheckpointDir: ckpt, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resumed != len(finished) {
		t.Fatalf("resumed %d cells, want %d (the checkpointed ones)", rep2.Resumed, len(finished))
	}
	if rep2.Done+rep2.Resumed != n || rep2.Failed != 0 || rep2.Cancelled != 0 {
		t.Fatalf("resume run incomplete: %+v", rep2)
	}
	for id := range finished {
		if executed2[id] {
			t.Fatalf("cell %s was recomputed despite a valid checkpoint", id)
		}
	}
	for _, r := range rep2.Results {
		wantStatus := StatusDone
		if finished[r.ID] {
			wantStatus = StatusResumed
		}
		if r.Status != wantStatus {
			t.Fatalf("cell %s: status %s, want %s", r.ID, r.Status, wantStatus)
		}
	}

	// The merged results must be byte-identical to the uninterrupted run.
	if !bytes.Equal(metricsBytes(t, ref), metricsBytes(t, rep2)) {
		t.Fatal("resumed results differ from an uninterrupted run")
	}
}

// TestResumeIgnoresStaleSeeds: a checkpoint whose recorded seed no
// longer matches the expected one (e.g. the grid was renamed or the
// seeding scheme changed) must be recomputed, not trusted.
func TestResumeIgnoresStaleSeeds(t *testing.T) {
	ckpt := t.TempDir()
	store, err := openCheckpointStore(ckpt, "stale-test")
	if err != nil {
		t.Fatal(err)
	}
	// Plant a checkpoint with the right ID but the wrong seed.
	if err := store.save(CellResult{
		ID: "cell=000", Seed: 12345, Status: StatusDone,
		Metrics: Metrics{Values: map[string]float64{"sum": -1}},
	}); err != nil {
		t.Fatal(err)
	}
	ran := false
	rep, err := Run(context.Background(), Grid{
		Name:  "stale-test",
		Cells: []Cell{{ID: "cell=000"}},
		Run: func(_ context.Context, _ Cell, seed uint64) (Metrics, error) {
			ran = true
			return Metrics{Values: map[string]float64{"sum": 1}}, nil
		},
	}, Options{Workers: 1, CheckpointDir: ckpt, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ran || rep.Resumed != 0 || rep.Done != 1 {
		t.Fatalf("stale checkpoint was trusted: ran=%v %+v", ran, rep)
	}
	if rep.Results[0].Metrics.Values["sum"] != 1 {
		t.Fatal("stale metrics leaked into the report")
	}
}

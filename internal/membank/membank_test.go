package membank

import (
	"testing"

	"securityrbsg/internal/core"
	"securityrbsg/internal/pcm"
	"securityrbsg/internal/stats"
	"securityrbsg/internal/wear"
)

func bankCfg() pcm.Config {
	return pcm.Config{LineBytes: 256, Endurance: 1 << 30, Timing: pcm.DefaultTiming}
}

func srbsgFactory(bank int, lines uint64) (wear.Scheme, error) {
	return core.New(core.Config{
		Lines: lines, Regions: 8, InnerInterval: 4,
		OuterInterval: 8, Stages: 4, Seed: uint64(bank) + 1,
	})
}

func memory(t *testing.T, banks int) *Memory {
	t.Helper()
	m, err := New(banks, 1024, bankCfg(), srbsgFactory)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestValidation(t *testing.T) {
	if _, err := New(0, 1024, bankCfg(), srbsgFactory); err == nil {
		t.Error("zero banks must fail")
	}
	if _, err := New(3, 1024, bankCfg(), srbsgFactory); err == nil {
		t.Error("non-dividing bank count must fail")
	}
	bad := func(bank int, lines uint64) (wear.Scheme, error) {
		return wear.NewPassthrough(lines / 2), nil
	}
	if _, err := New(4, 1024, bankCfg(), bad); err == nil {
		t.Error("mismatched scheme size must fail")
	}
}

func TestRouting(t *testing.T) {
	m := memory(t, 4)
	for la := uint64(0); la < 1024; la++ {
		b, local := m.Route(la)
		if uint64(b) != la%4 || local != la/4 {
			t.Fatalf("Route(%d) = (%d, %d)", la, b, local)
		}
	}
	if m.Banks() != 4 || m.Lines() != 1024 {
		t.Fatal("metadata")
	}
}

func TestReadBackAcrossBanks(t *testing.T) {
	m := memory(t, 4)
	for la := uint64(0); la < 1024; la += 37 {
		m.Write(la, pcm.Ones)
	}
	for la := uint64(0); la < 1024; la += 37 {
		if c, _ := m.Read(la); c != pcm.Ones {
			t.Fatalf("LA %d lost its data", la)
		}
	}
}

// TestBankIsolation is the defense against the bank-parallelism attack:
// traffic to one bank never advances another bank's wear-leveling state,
// so its request latencies carry no cross-bank information.
func TestBankIsolation(t *testing.T) {
	m := memory(t, 4)
	before := make([]uint64, 4)
	for i := range before {
		before[i] = m.Bank(i).RemapEvents()
	}
	// Hammer only addresses routed to bank 2.
	for i := 0; i < 10000; i++ {
		m.Write(2+uint64(i%256)*4, pcm.Mixed)
	}
	for i := 0; i < 4; i++ {
		delta := m.Bank(i).RemapEvents() - before[i]
		if i == 2 && delta == 0 {
			t.Fatal("the hammered bank never remapped")
		}
		if i != 2 && delta != 0 {
			t.Fatalf("bank %d remapped %d times without receiving traffic", i, delta)
		}
	}
}

// TestPerBankKeysDiffer: the factory seeds banks independently, so the
// same local address maps differently in different banks.
func TestPerBankKeysDiffer(t *testing.T) {
	m := memory(t, 4)
	same := 0
	for local := uint64(0); local < 256; local++ {
		if m.Bank(0).Scheme().Translate(local) == m.Bank(1).Scheme().Translate(local) {
			same++
		}
	}
	if same > 32 {
		t.Fatalf("banks share %d/256 mappings — keys not independent", same)
	}
}

func TestFailureSurfacing(t *testing.T) {
	cfg := bankCfg()
	cfg.Endurance = 200
	m, err := New(2, 512, cfg, srbsgFactory)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, failed := m.Failed(); failed {
		t.Fatal("fresh memory reports failure")
	}
	rng := stats.NewRNG(1)
	for i := 0; i < 2_000_000; i++ {
		m.Write(rng.Uint64n(512), pcm.Mixed)
		if _, _, failed := m.Failed(); failed {
			break
		}
	}
	bank, pa, failed := m.Failed()
	if !failed {
		t.Fatal("memory should eventually fail at endurance 200")
	}
	if bank < 0 || bank > 1 || pa >= m.Bank(bank).Bank().Lines() {
		t.Fatalf("implausible failure location %d/%d", bank, pa)
	}
	if m.TotalDemandWrites() == 0 {
		t.Fatal("write accounting")
	}
	b, _, w := m.MaxWear()
	if w == 0 || b != bank && w < 200 {
		t.Fatalf("max wear %d at bank %d", w, b)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := memory(t, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Write(1024, pcm.Zeros)
}

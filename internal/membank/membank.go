// Package membank assembles per-bank wear-leveled PCM into one flat
// memory, the way the paper deploys Security RBSG: "implemented in the
// memory controller and manages each bank separately to avoid bank
// parallelism attack" (Section IV-A).
//
// Seong et al. broke the original RBSG by observing *bank-level
// parallelism*: when a wear-leveling region spans banks, an attacker can
// tell remapping movements apart by which banks stall. Giving every bank
// its own independent scheme (own keys, own counters, own gap lines)
// removes that signal: a request to bank k reveals nothing about any
// other bank's remapping state — a property the package tests verify
// directly (writes to one bank never advance another bank's wear-leveling
// state).
//
// Addresses interleave across banks at line granularity, the usual
// memory-controller layout: bank = addr mod B, line-within-bank =
// addr div B.
//
// # Concurrency contract: single writer per bank
//
// A Memory holds no locks. Its shared state — the banks slice and the
// line count — is immutable after New; everything mutable lives inside
// one bank's Controller/Scheme/pcm.Bank chain, none of which is safe
// for concurrent use. The deployment contract is therefore:
//
//   - Requests for different banks may run on different goroutines
//     concurrently, with no synchronization at all. Route, Banks, Lines
//     and Bank are read-only and always safe.
//   - All requests for one bank must come from one goroutine at a time
//     (in practice: a dedicated actor goroutine per bank, as
//     internal/memserver does), or be externally serialized.
//   - The whole-memory inspectors (Failed, TotalDemandWrites, MaxWear)
//     read every bank and must only run while no bank is being driven.
//
// TestParallelDistinctBanks pins the first two points under the race
// detector: hammering all banks from parallel goroutines, one goroutine
// per bank, is race-free and leaves every other bank's wear-leveling
// state untouched.
package membank

import (
	"fmt"

	"securityrbsg/internal/pcm"
	"securityrbsg/internal/wear"
)

// SchemeFactory builds one bank's wear-leveling scheme over `lines`
// logical lines; it is called once per bank with the bank index, so
// implementations can (and should) seed per-bank keys differently.
type SchemeFactory func(bank int, lines uint64) (wear.Scheme, error)

// Memory is a line-interleaved array of independently wear-leveled banks.
type Memory struct {
	banks []*wear.Controller
	lines uint64 // total logical lines across banks
}

// New builds a memory of `banks` banks, each holding lines/banks logical
// lines behind its own scheme instance. lines must divide evenly.
func New(banks int, lines uint64, bankCfg pcm.Config, factory SchemeFactory) (*Memory, error) {
	if banks <= 0 {
		return nil, fmt.Errorf("membank: need at least one bank")
	}
	if lines == 0 || lines%uint64(banks) != 0 {
		return nil, fmt.Errorf("membank: %d lines do not divide across %d banks", lines, banks)
	}
	perBank := lines / uint64(banks)
	m := &Memory{lines: lines, banks: make([]*wear.Controller, banks)}
	for i := range m.banks {
		scheme, err := factory(i, perBank)
		if err != nil {
			return nil, fmt.Errorf("membank: bank %d: %w", i, err)
		}
		if scheme.LogicalLines() != perBank {
			return nil, fmt.Errorf("membank: bank %d scheme covers %d lines, want %d",
				i, scheme.LogicalLines(), perBank)
		}
		ctrl, err := wear.NewController(bankCfg, scheme)
		if err != nil {
			return nil, fmt.Errorf("membank: bank %d: %w", i, err)
		}
		m.banks[i] = ctrl
	}
	return m, nil
}

// Banks returns the number of banks.
func (m *Memory) Banks() int { return len(m.banks) }

// Lines returns the total logical line count.
func (m *Memory) Lines() uint64 { return m.lines }

// Bank returns bank i's controller, for per-bank statistics.
func (m *Memory) Bank(i int) *wear.Controller { return m.banks[i] }

// Route splits a flat logical address into (bank, bank-local line).
func (m *Memory) Route(la uint64) (bank int, local uint64) {
	if la >= m.lines {
		panic(fmt.Errorf("membank: address %d out of space of %d lines", la, m.lines))
	}
	b := int(la % uint64(len(m.banks)))
	return b, la / uint64(len(m.banks))
}

// Write performs a demand write and returns the observed latency — the
// request only ever touches (and only ever reveals timing of) one bank.
func (m *Memory) Write(la uint64, content pcm.Content) uint64 {
	b, local := m.Route(la)
	return m.banks[b].Write(local, content)
}

// Read returns the content of la and the observed latency.
func (m *Memory) Read(la uint64) (pcm.Content, uint64) {
	b, local := m.Route(la)
	return m.banks[b].Read(local)
}

// Failed reports whether any bank has a failed line, and where.
func (m *Memory) Failed() (bank int, pa uint64, failed bool) {
	for i, c := range m.banks {
		if p, _, ok := c.Bank().FirstFailure(); ok {
			return i, p, true
		}
	}
	return 0, 0, false
}

// TotalDemandWrites sums demand writes across banks.
func (m *Memory) TotalDemandWrites() uint64 {
	var n uint64
	for _, c := range m.banks {
		n += c.DemandWrites()
	}
	return n
}

// MaxWear returns the most-worn line anywhere: its bank, physical
// address and wear count.
func (m *Memory) MaxWear() (bank int, pa uint64, wearCount uint64) {
	for i, c := range m.banks {
		p, w := c.Bank().MaxWear()
		if w > wearCount {
			bank, pa, wearCount = i, p, w
		}
	}
	return
}

package membank

import (
	"sync"
	"testing"

	"securityrbsg/internal/pcm"
	"securityrbsg/internal/stats"
)

// TestParallelDistinctBanks proves the package's concurrency contract
// under the race detector: one goroutine per bank, each hammering only
// its own bank's addresses (la ≡ bank mod B), needs no locks. Any
// hidden sharing between banks — a stray global in a scheme, a shared
// RNG, a common counter — would trip -race here before it could
// corrupt a serving deployment like internal/memserver.
func TestParallelDistinctBanks(t *testing.T) {
	const banks = 8
	writes := 4000
	if testing.Short() {
		writes = 800
	}
	m, err := New(banks, 4096, bankCfg(), srbsgFactory)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for b := 0; b < banks; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			rng := stats.NewRNG(uint64(b) + 99)
			perBank := m.Lines() / banks
			for i := 0; i < writes; i++ {
				la := uint64(b) + rng.Uint64n(perBank)*banks // stays in bank b
				m.Write(la, pcm.Content(rng.Uint64n(3)))
				if i%7 == 0 {
					m.Read(la)
				}
			}
		}(b)
	}
	wg.Wait()

	// Every bank served exactly its own traffic: the interleaving
	// cannot have leaked writes (or remapping state) across banks.
	for b := 0; b < banks; b++ {
		if got := m.Bank(b).DemandWrites(); got != uint64(writes) {
			t.Errorf("bank %d: %d demand writes, want %d", b, got, writes)
		}
		if err := m.Bank(b).CheckBijection(); err != nil {
			t.Errorf("bank %d mapping corrupted: %v", b, err)
		}
	}
}

// TestBankIndependenceUnderParallelism re-checks the paper's isolation
// property in the concurrent setting: banks left idle while the others
// are hammered in parallel must not advance at all.
func TestBankIndependenceUnderParallelism(t *testing.T) {
	const banks = 8
	m, err := New(banks, 4096, bankCfg(), srbsgFactory)
	if err != nil {
		t.Fatal(err)
	}
	idle := map[int]bool{2: true, 5: true}
	var wg sync.WaitGroup
	for b := 0; b < banks; b++ {
		if idle[b] {
			continue
		}
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			rng := stats.NewRNG(uint64(b) + 7)
			for i := 0; i < 1000; i++ {
				m.Write(uint64(b)+rng.Uint64n(512)*banks, pcm.Ones)
			}
		}(b)
	}
	wg.Wait()
	for b := range idle {
		c := m.Bank(b)
		if c.DemandWrites() != 0 || c.RemapEvents() != 0 {
			t.Errorf("idle bank %d advanced: %d writes, %d remaps",
				b, c.DemandWrites(), c.RemapEvents())
		}
		if _, w := c.Bank().MaxWear(); w != 0 {
			t.Errorf("idle bank %d shows wear %d", b, w)
		}
	}
}

package experiments_test

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"testing"

	"securityrbsg/internal/experiments"
	"securityrbsg/internal/runner"
)

// Seed-stability regression: the SHA-256 fingerprints below were
// captured from the Monte-Carlo grids BEFORE the hot-path rewrite
// (materialized permutation tables, segment-batched visit deposits,
// reusable simulators, worker-pooled trial averaging). Every optimized
// kernel must keep producing byte-identical metrics for a fixed seed —
// the repo's determinism contract (DESIGN.md) is what makes CHECKSUMS
// and resumable experiment sharding meaningful. If one of these hashes
// moves, a "performance" change altered simulation results; that is a
// correctness bug, not a baseline to re-record. (Re-capture is
// legitimate only for a change that *intentionally* alters the modeled
// behavior, and such a change must say so in its own commit.)
//
// The grids run at ScaleLaptop with reduced repetitions so the whole
// test stays under a few seconds; -short skips it.

var seedFingerprints = []struct {
	name string
	grid func() runner.Grid
	want string
}{
	{
		name: "fig14",
		grid: func() runner.Grid { return experiments.Fig14Grid(experiments.ScaleLaptop, 2) },
		want: "8151f1d372508713ae0a49230d8f552c6ecb7985b296cc040f3db475fb71d34a",
	},
	{
		name: "fig15",
		grid: func() runner.Grid { return experiments.Fig15Grid(experiments.ScaleLaptop, 1) },
		want: "b323f3aaa3c4ebe73822ff984013c26ec0c4f051c26e622106fe7b524341bef5",
	},
	{
		name: "fig16",
		grid: func() runner.Grid { return experiments.Fig16Grid(experiments.ScaleLaptop) },
		want: "1752f67f33e9ce7fe6f51813eea07e0510e16dc884e1e7a8947444eb18be899f",
	},
}

func fingerprint(t *testing.T, g runner.Grid) string {
	t.Helper()
	rep, err := runner.Run(context.Background(), g, runner.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.FailedErr(); err != nil {
		t.Fatal(err)
	}
	ms := make([]runner.Metrics, len(rep.Results))
	for i, r := range rep.Results {
		ms[i] = r.Metrics
	}
	data, err := json.Marshal(ms)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%x", sha256.Sum256(data))
}

func TestSeedStabilityFingerprints(t *testing.T) {
	if testing.Short() {
		t.Skip("seed-stability fingerprints run the laptop-scale grids; skipped in -short")
	}
	for _, tc := range seedFingerprints {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if got := fingerprint(t, tc.grid()); got != tc.want {
				t.Errorf("%s fingerprint drifted:\n got  %s\n want %s\n"+
					"an optimization changed simulation results for a fixed seed", tc.name, got, tc.want)
			}
		})
	}
}

package experiments

import (
	"context"
	"strings"
	"testing"

	"securityrbsg/internal/registry"
	"securityrbsg/internal/runner"
)

const (
	tourLines     = 1 << 8
	tourEndurance = 1500
)

func tournamentReport(t *testing.T, workers int, ckpt string, resume bool) *runner.Report {
	t.Helper()
	grid, err := TournamentGrid(registry.Default, TournamentConfig{
		Lines: tourLines, Endurance: tourEndurance,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runner.Run(context.Background(), grid, runner.Options{
		Workers: workers, CheckpointDir: ckpt, Resume: resume,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.FailedErr(); err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestTournamentFullMatrix: every registered, capability-compatible
// pairing plays to completion, and the headline metrics are present and
// sane in every cell.
func TestTournamentFullMatrix(t *testing.T) {
	cells, err := TournamentCells(registry.Default, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) < 25 {
		t.Fatalf("matrix shrank to %d cells", len(cells))
	}
	rep := tournamentReport(t, 0, "", false)
	if rep.Done != len(cells) {
		t.Fatalf("%d/%d cells done", rep.Done, len(cells))
	}
	for _, res := range rep.Results {
		v := res.Metrics.Values
		if v["writes"] <= 0 {
			t.Errorf("%s: no writes recorded", res.ID)
		}
		if g := v["wear_gini"]; g < 0 || g > 1 {
			t.Errorf("%s: wear gini %v outside [0,1]", res.ID, g)
		}
		if v["defense_held"] == 0 && v["fraction"] <= 0 {
			t.Errorf("%s: failed the device but fraction is %v", res.ID, v["fraction"])
		}
	}
}

// TestTournamentWorkerInvariance: the grid's results are identical no
// matter how it is sharded — the runner seeds by (grid, cell), never by
// worker.
func TestTournamentWorkerInvariance(t *testing.T) {
	seq := tournamentReport(t, 1, "", false)
	par := tournamentReport(t, 8, "", false)
	if len(seq.Results) != len(par.Results) {
		t.Fatalf("cell counts differ: %d vs %d", len(seq.Results), len(par.Results))
	}
	for i, a := range seq.Results {
		b := par.Results[i]
		if a.ID != b.ID || a.Seed != b.Seed {
			t.Fatalf("cell order drifted at %d: %s vs %s", i, a.ID, b.ID)
		}
		for k, v := range a.Metrics.Values {
			if b.Metrics.Values[k] != v {
				t.Errorf("%s: metric %s differs across worker counts: %v vs %v",
					a.ID, k, v, b.Metrics.Values[k])
			}
		}
	}
}

// TestTournamentResume: a second run over the same checkpoints recomputes
// nothing and reproduces every metric exactly.
func TestTournamentResume(t *testing.T) {
	ckpt := t.TempDir()
	fresh := tournamentReport(t, 0, ckpt, false)
	resumed := tournamentReport(t, 0, ckpt, true)
	if resumed.Resumed != fresh.Total || resumed.Done != 0 {
		t.Fatalf("resume recomputed cells: %+v", resumed)
	}
	for i, a := range fresh.Results {
		b := resumed.Results[i]
		for k, v := range a.Metrics.Values {
			if b.Metrics.Values[k] != v {
				t.Errorf("%s: metric %s changed across resume: %v vs %v", a.ID, k, v, b.Metrics.Values[k])
			}
		}
	}
}

// TestTournamentSubsetsAndErrors: name filters restrict the matrix;
// unknown names surface the registry's listable errors; all-model-only
// selections are rejected.
func TestTournamentSubsetsAndErrors(t *testing.T) {
	cells, err := TournamentCells(registry.Default, []string{"rbsg"}, []string{"raa", "rta"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("rbsg×{raa,rta} = %d cells, want 2", len(cells))
	}
	if _, err := TournamentCells(registry.Default, []string{"bogus"}, nil); err == nil ||
		!strings.Contains(err.Error(), `unknown scheme "bogus"`) {
		t.Fatalf("unknown scheme: %v", err)
	}
	if _, err := TournamentCells(registry.Default, nil, []string{"focused"}); err == nil ||
		!strings.Contains(err.Error(), "no compatible") {
		t.Fatalf("model-only attack subset: %v", err)
	}
	// rta vs none is blocked by the timing-oracle gate, leaving nothing.
	if _, err := TournamentCells(registry.Default, []string{"none"}, []string{"rta"}); err == nil {
		t.Fatal("rta vs none should leave an empty matrix")
	}
}

// TestTournamentDetectionMetrics: the detector-wrapped scheme is the one
// cell family reporting defender-side first-alarm latency, and the RTA
// cells report attacker-side detection writes.
func TestTournamentDetectionMetrics(t *testing.T) {
	grid, err := TournamentGrid(registry.Default, TournamentConfig{
		Lines: tourLines, Endurance: tourEndurance,
		Schemes: []string{"rbsg", "rbsg+detector"}, Attacks: []string{"raa", "rta"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runner.Run(context.Background(), grid, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.FailedErr(); err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Results {
		_, alarmed := res.Metrics.Values["first_alarm_write"]
		wantAlarm := res.Labels["scheme"] == "rbsg+detector"
		if alarmed != wantAlarm {
			t.Errorf("%s: first_alarm_write present=%v, want %v", res.ID, alarmed, wantAlarm)
		}
		if res.Labels["attack"] == "rta" && res.Labels["scheme"] == "rbsg" {
			if res.Metrics.Values["detect_writes"] <= 0 {
				t.Errorf("%s: RTA reported no detection writes", res.ID)
			}
		}
	}
}

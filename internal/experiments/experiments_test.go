package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"securityrbsg/internal/lifetime"
	"securityrbsg/internal/runner"
)

func metricsBytes(t *testing.T, rep *runner.Report) []byte {
	t.Helper()
	ms := make([]runner.Metrics, len(rep.Results))
	for i, r := range rep.Results {
		ms[i] = r.Metrics
	}
	data, err := json.Marshal(ms)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestFig15ShardedBitIdentical is the acceptance check for the runner:
// a figgen Monte-Carlo grid sharded over 8 workers must produce
// bit-identical results to a sequential run.
func TestFig15ShardedBitIdentical(t *testing.T) {
	g := Fig15Grid(ScaleTest, 2)
	seq, err := runner.Run(context.Background(), g, runner.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := runner.Run(context.Background(), g, runner.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Done != len(g.Cells) || par.Done != len(g.Cells) {
		t.Fatalf("incomplete runs: seq=%d par=%d of %d", seq.Done, par.Done, len(g.Cells))
	}
	if !bytes.Equal(metricsBytes(t, seq), metricsBytes(t, par)) {
		t.Fatal("workers=8 fig15 results differ from workers=1")
	}
}

func TestFig14GridProducesSaneFractions(t *testing.T) {
	g := Fig14Grid(ScaleTest, 2)
	rep, err := runner.Run(context.Background(), g, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.FailedErr(); err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		raa := r.Metrics.Values["raa_fraction"]
		bpa := r.Metrics.Values["bpa_fraction"]
		if raa <= 0 || raa > 1.5 || bpa <= 0 || bpa > 1.5 {
			t.Fatalf("cell %s: implausible fractions raa=%g bpa=%g", r.ID, raa, bpa)
		}
	}
	// More DFN stages must not make RAA lifetimes collapse: the last
	// cell (20 stages) should beat the weakest cipher (3 stages).
	first := rep.Results[0].Metrics.Values["raa_fraction"]
	last := rep.Results[len(rep.Results)-1].Metrics.Values["raa_fraction"]
	if last < first/2 {
		t.Fatalf("20 stages (%g) much worse than 3 stages (%g)", last, first)
	}
}

func TestFig16SeriesAreCumulativeCurves(t *testing.T) {
	g := Fig16Grid(ScaleTest)
	rep, err := runner.Run(context.Background(), g, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.FailedErr(); err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		s := r.Metrics.Series
		if len(s) != Fig16Points {
			t.Fatalf("cell %s: %d points, want %d", r.ID, len(s), Fig16Points)
		}
		for k := 1; k < len(s); k++ {
			if s[k] < s[k-1] {
				t.Fatalf("cell %s: series not nondecreasing at %d", r.ID, k)
			}
		}
		if got := s[len(s)-1]; got < 0.999 || got > 1.001 {
			t.Fatalf("cell %s: cumulative curve ends at %g, want 1", r.ID, got)
		}
	}
}

func TestCompareGridCoversAllRowsDeterministically(t *testing.T) {
	// A tiny device keeps every scheme's model fast while exercising the
	// same code paths as the paper-scale table.
	quantum := uint64((1<<12)/512+1) * 64
	d := lifetime.ScaledDevice(1<<12, 8*quantum)
	g := CompareGrid(d, 2)
	seq, err := runner.Run(context.Background(), g, runner.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := runner.Run(context.Background(), g, runner.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.FailedErr(); err != nil {
		t.Fatal(err)
	}
	if len(seq.Results) != len(CompareRows()) {
		t.Fatalf("%d rows, want %d", len(seq.Results), len(CompareRows()))
	}
	if !bytes.Equal(metricsBytes(t, seq), metricsBytes(t, par)) {
		t.Fatal("sharded comparison differs from sequential")
	}
	for _, r := range seq.Results {
		if r.Metrics.Values["writes"] <= 0 {
			t.Fatalf("row %s: no writes recorded", r.ID)
		}
	}
}

package experiments

import (
	"securityrbsg/internal/lifetime"
	"securityrbsg/internal/registry"

	// Evaluate composes by registry name, so every scheme/attack plugin
	// must be linked wherever experiments is.
	_ "securityrbsg/internal/plugins"
)

// This file registers the closed-form / Monte-Carlo lifetime models with
// the plugin registry, one entry per (scheme, attack) pair — exactly the
// pairs the old hand-wired Evaluate switch dispatched on. The model
// functions themselves are unchanged (internal/lifetime); the registry
// only replaces the dispatch, so every figure and table is byte-identical.

// Parameter views of the declarative cell configuration.

func srOf(cfg registry.Config) lifetime.SRParams {
	return lifetime.SRParams{Regions: cfg.Regions, InnerInterval: cfg.InnerInterval, OuterInterval: cfg.OuterInterval}
}

func rbOf(cfg registry.Config) lifetime.RBSGParams {
	return lifetime.RBSGParams{Regions: cfg.Regions, Interval: cfg.InnerInterval}
}

func srbsgOf(cfg registry.Config) lifetime.SRBSGParams {
	return lifetime.SRBSGParams{
		Regions: cfg.Regions, InnerInterval: cfg.InnerInterval,
		OuterInterval: cfg.OuterInterval, Stages: cfg.Stages,
	}
}

// exact wraps an error-free model function.
func exact(fn func(cfg registry.Config) lifetime.Estimate) registry.ModelFunc {
	return func(cfg registry.Config) (lifetime.Estimate, error) { return fn(cfg), nil }
}

func init() {
	// The focused-write adversary of the Multi-Way SR analysis exists
	// only as a closed form; it registers model-only (no exact runner).
	registry.RegisterAttack(registry.Attack{
		Name: "focused",
		Doc:  "model-only focused writes tracking one Multi-Way SR sub-region",
	})

	baseline := exact(func(cfg registry.Config) lifetime.Estimate {
		return lifetime.Baseline(cfg.Device())
	})
	for _, att := range []string{"raa", "bpa", "rta"} {
		registry.RegisterModel("none", att, baseline)
	}

	registry.RegisterModel("start-gap", "raa", exact(func(cfg registry.Config) lifetime.Estimate {
		return lifetime.RAAOnStartGap(cfg.Device(), cfg.InnerInterval)
	}))

	registry.RegisterModel("rbsg", "raa", exact(func(cfg registry.Config) lifetime.Estimate {
		return lifetime.RAAOnRBSG(cfg.Device(), rbOf(cfg))
	}))
	registry.RegisterModel("rbsg", "bpa", exact(func(cfg registry.Config) lifetime.Estimate {
		return lifetime.BPAOnRBSG(cfg.Device(), rbOf(cfg))
	}))
	registry.RegisterModel("rbsg", "rta", exact(func(cfg registry.Config) lifetime.Estimate {
		return lifetime.RTAOnRBSG(cfg.Device(), rbOf(cfg))
	}))

	focused := exact(func(cfg registry.Config) lifetime.Estimate {
		return lifetime.FocusedOnMultiWay(cfg.Device(), cfg.Regions, cfg.InnerInterval)
	})
	registry.RegisterModel("multiway-sr", "focused", focused)
	registry.RegisterModel("multiway-sr", "rta", focused)

	registry.RegisterModel("two-level-sr", "raa", exact(func(cfg registry.Config) lifetime.Estimate {
		return lifetime.RAAOnTwoLevelSR(cfg.Device(), srOf(cfg))
	}))
	registry.RegisterModel("two-level-sr", "bpa", exact(func(cfg registry.Config) lifetime.Estimate {
		return lifetime.BPAOnTwoLevelSR(cfg.Device(), srOf(cfg))
	}))
	registry.RegisterModel("two-level-sr", "rta", exact(func(cfg registry.Config) lifetime.Estimate {
		return lifetime.RTAOnTwoLevelSRAvg(cfg.Device(), srOf(cfg), cfg.Runs, cfg.Seed)
	}))

	registry.RegisterModel("security-rbsg", "raa", func(cfg registry.Config) (lifetime.Estimate, error) {
		return lifetime.RAAOnSecurityRBSGAvg(cfg.Device(), srbsgOf(cfg), cfg.Runs, cfg.Seed)
	})
	registry.RegisterModel("security-rbsg", "bpa", exact(func(cfg registry.Config) lifetime.Estimate {
		return lifetime.BPAOnSecurityRBSG(cfg.Device(), srbsgOf(cfg))
	}))
	registry.RegisterModel("security-rbsg", "rta", func(cfg registry.Config) (lifetime.Estimate, error) {
		e, _, err := lifetime.RTAOnSecurityRBSG(cfg.Device(), srbsgOf(cfg), cfg.Seed)
		return e, err
	})
}

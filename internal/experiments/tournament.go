package experiments

import (
	"context"
	"fmt"

	"securityrbsg/internal/registry"
	"securityrbsg/internal/runner"
)

// TournamentConfig selects the scheme×attack matrix and the device the
// tournament runs on. The zero value (plus Lines/Endurance) runs every
// registered exact-capable pairing.
type TournamentConfig struct {
	// Lines and Endurance define the simulated device; Lines must be a
	// power of two.
	Lines, Endurance uint64
	// MaxWrites caps the attacker's budget per cell; 0 lets each attack
	// adapter pick its documented default.
	MaxWrites uint64
	// Schemes and Attacks restrict the matrix to the named plugins; empty
	// means all registered. Unknown names are rejected with the registry's
	// listable errors.
	Schemes, Attacks []string
	// CellWorkers is handed to the exact-tier accelerator inside each
	// cell; <= 0 means 1, keeping cell-level parallelism orthogonal to the
	// runner's worker pool.
	CellWorkers int
}

// TournamentCell is one playable pairing of the matrix.
type TournamentCell struct {
	Scheme, Attack string
}

// TournamentCells enumerates the exact-tier matrix for the given
// restriction: every (scheme, attack) pair that is registered,
// exact-capable on both sides, and capability-compatible. The list is
// sorted (scheme-major) so grids are stable across runs and registration
// order.
func TournamentCells(reg *registry.Registry, schemes, attacks []string) ([]TournamentCell, error) {
	if len(schemes) == 0 {
		schemes = reg.SchemeNames()
	}
	if len(attacks) == 0 {
		attacks = reg.AttackNames()
	}
	var cells []TournamentCell
	for _, sn := range schemes {
		s, err := reg.Scheme(sn)
		if err != nil {
			return nil, err
		}
		if !s.Caps.Exact {
			continue
		}
		for _, an := range attacks {
			a, err := reg.Attack(an)
			if err != nil {
				return nil, err
			}
			if !a.Caps.Exact {
				continue
			}
			if registry.CompatibleExact(s, a) != nil {
				continue
			}
			cells = append(cells, TournamentCell{Scheme: sn, Attack: an})
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("tournament: no compatible (scheme, attack) pairs among schemes %v and attacks %v", schemes, attacks)
	}
	return cells, nil
}

// TournamentGrid builds the full-matrix tournament as a runner.Grid: one
// cell per compatible (scheme, attack) pair, each reporting lifetime
// (writes/seconds/fraction), detection latency (attacker- and, where the
// scheme implements registry.AlarmReporter, defender-side) and the
// wear-Gini coefficient of the final wear map.
//
// The grid name encodes the device geometry because the runner derives
// per-cell seeds and checkpoint scopes from it: a 2^10-line smoke run
// and a 2^14-line nightly can never share state.
func TournamentGrid(reg *registry.Registry, tc TournamentConfig) (runner.Grid, error) {
	list, err := TournamentCells(reg, tc.Schemes, tc.Attacks)
	if err != nil {
		return runner.Grid{}, err
	}
	cells := make([]runner.Cell, len(list))
	byID := make(map[string]TournamentCell, len(list))
	for i, c := range list {
		id := fmt.Sprintf("scheme=%s/attack=%s", c.Scheme, c.Attack)
		cells[i] = runner.Cell{ID: id, Labels: map[string]string{
			"scheme": c.Scheme, "attack": c.Attack,
		}}
		byID[id] = c
	}
	workers := tc.CellWorkers
	if workers <= 0 {
		workers = 1
	}
	// The budget changes cell semantics (it bounds the attacker), so a
	// non-default budget gets its own seed/checkpoint scope.
	name := fmt.Sprintf("tournament/lines=%d/endurance=%d", tc.Lines, tc.Endurance)
	if tc.MaxWrites > 0 {
		name += fmt.Sprintf("/budget=%d", tc.MaxWrites)
	}
	return runner.Grid{
		Name:  name,
		Cells: cells,
		Run: func(ctx context.Context, cell runner.Cell, seed uint64) (runner.Metrics, error) {
			c := byID[cell.ID]
			out, err := reg.RunExact(c.Scheme, c.Attack, registry.Config{
				Lines: tc.Lines, Endurance: tc.Endurance,
				MaxWrites: tc.MaxWrites, Seed: seed, Workers: workers,
			})
			if err != nil {
				return runner.Metrics{}, err
			}
			vals := out.Metrics()
			return runner.Metrics{Values: vals, SimWrites: vals["writes"]}, nil
		},
	}, nil
}

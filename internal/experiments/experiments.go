// Package experiments declares the paper's Monte-Carlo evaluation grids
// (Figs 14–16 and the cross-scheme comparison) as runner.Grids, so
// cmd/figgen, cmd/lifetime and the test suite all drive the exact same
// cell definitions through the sharded experiment runner instead of
// ad-hoc loops.
//
// Each grid's name encodes everything that changes cell semantics —
// figure, scale, trial count — because the runner derives per-cell RNG
// seeds from (grid name, cell ID) and scopes checkpoints by grid name:
// two different configurations can never share seeds or checkpoints.
package experiments

import (
	"context"
	"fmt"

	"securityrbsg/internal/lifetime"
	"securityrbsg/internal/registry"
	"securityrbsg/internal/runner"
	"securityrbsg/internal/stats"
)

// Scale selects the device geometry for the Monte-Carlo grids.
type Scale int

const (
	// ScaleLaptop is the ratio-preserving 2^18-line geometry (see
	// DESIGN.md, "Scale policy"): fractions-of-ideal transfer to paper
	// scale, runs take seconds.
	ScaleLaptop Scale = iota
	// ScaleFull is the paper's 1 GB geometry (2^22 lines, 10^8
	// endurance): minutes per figure.
	ScaleFull
	// ScaleTest is a tiny 2^12-line geometry for CI: milliseconds per
	// cell, same code paths.
	ScaleTest
)

func (s Scale) String() string {
	switch s {
	case ScaleFull:
		return "full"
	case ScaleTest:
		return "test"
	default:
		return "laptop"
	}
}

// testSRBSG builds the CI geometry: preserves the structure (regions
// divide lines, visit threshold well under the uint16 cap) at a size
// where a cell is milliseconds.
func testSRBSG(regions, inner, outer uint64, stages int) (lifetime.Device, lifetime.SRBSGParams) {
	p := lifetime.SRBSGParams{Regions: regions, InnerInterval: inner, OuterInterval: outer, Stages: stages}
	lines := uint64(1) << 12
	quantum := (lines/p.Regions + 1) * p.InnerInterval
	return lifetime.ScaledDevice(lines, 8*quantum), p
}

// Fig14Grid is the DFN stage sweep behind Fig 14: Security RBSG
// lifetime under RAA (averaged over `runs` key draws) and BPA at each
// stage count 3..20. Metrics: raa_fraction, bpa_fraction.
func Fig14Grid(sc Scale, runs int) runner.Grid {
	const minStages, maxStages = 3, 20
	cells := make([]runner.Cell, 0, maxStages-minStages+1)
	for s := minStages; s <= maxStages; s++ {
		cells = append(cells, runner.Cell{
			ID:     fmt.Sprintf("stages=%02d", s),
			Labels: map[string]string{"fig": "fig14", "stages": fmt.Sprint(s)},
		})
	}
	stageOf := func(id string) int {
		var s int
		fmt.Sscanf(id, "stages=%d", &s)
		return s
	}
	return runner.Grid{
		Name:  fmt.Sprintf("fig14/scale=%s/runs=%d", sc, runs),
		Cells: cells,
		Run: func(ctx context.Context, c runner.Cell, seed uint64) (runner.Metrics, error) {
			stages := stageOf(c.ID)
			var d lifetime.Device
			var p lifetime.SRBSGParams
			switch sc {
			case ScaleFull:
				d = lifetime.PaperDevice()
				p = lifetime.SuggestedSRBSGParams()
				p.Stages = stages
			case ScaleTest:
				d, p = testSRBSG(16, 16, 32, stages)
			default:
				d, p = lifetime.ScaledSRBSGExperiment(stages)
			}
			raa, err := lifetime.RAAOnSecurityRBSGAvg(d, p, runs, seed)
			if err != nil {
				return runner.Metrics{}, err
			}
			bpa := lifetime.BPAOnSecurityRBSG(d, p)
			return runner.Metrics{
				Values: map[string]float64{
					"raa_fraction": raa.FractionOfIdeal,
					"bpa_fraction": bpa.FractionOfIdeal,
				},
				SimWrites: raa.Writes * float64(runs),
			}, nil
		},
	}
}

// Fig15Cells is the Table-I configuration grid shared by Figs 12, 13
// and 15: (sub-regions, inner ψ, outer ψ) in paper-scale units.
type Fig15Cell struct {
	Regions, Inner, Outer uint64
}

// Fig15CellList enumerates the Table-I grid in CSV row order.
func Fig15CellList() []Fig15Cell {
	var grid []Fig15Cell
	for _, regions := range []uint64{256, 512, 1024} {
		for _, inner := range []uint64{16, 32, 64, 128} {
			for _, outer := range []uint64{16, 32, 64, 128, 256} {
				grid = append(grid, Fig15Cell{regions, inner, outer})
			}
		}
	}
	return grid
}

// Fig15Grid is Security RBSG under RAA over the Table-I grid at 7 DFN
// stages (Fig 15). Metrics: fraction (of ideal lifetime).
func Fig15Grid(sc Scale, runs int) runner.Grid {
	list := Fig15CellList()
	cells := make([]runner.Cell, len(list))
	byID := make(map[string]Fig15Cell, len(list))
	for i, c := range list {
		id := fmt.Sprintf("regions=%d/inner=%d/outer=%d", c.Regions, c.Inner, c.Outer)
		cells[i] = runner.Cell{ID: id, Labels: map[string]string{
			"fig":     "fig15",
			"regions": fmt.Sprint(c.Regions),
			"inner":   fmt.Sprint(c.Inner),
			"outer":   fmt.Sprint(c.Outer),
		}}
		byID[id] = c
	}
	return runner.Grid{
		Name:  fmt.Sprintf("fig15/scale=%s/runs=%d", sc, runs),
		Cells: cells,
		Run: func(ctx context.Context, cell runner.Cell, seed uint64) (runner.Metrics, error) {
			c := byID[cell.ID]
			var d lifetime.Device
			p := lifetime.SRBSGParams{
				Regions: c.Regions, InnerInterval: c.Inner,
				OuterInterval: c.Outer, Stages: 7,
			}
			switch sc {
			case ScaleFull:
				d = lifetime.PaperDevice()
			case ScaleTest:
				d, p = testSRBSG(c.Regions/64, c.Inner, c.Outer, 7)
			default:
				// Preserve m ≈ 191 and scale the region count with the
				// 16x-smaller line count.
				p.Regions = c.Regions / 16
				lines := uint64(1) << 18
				quantum := (lines/p.Regions + 1) * p.InnerInterval
				d = lifetime.ScaledDevice(lines, 191*quantum)
			}
			e, err := lifetime.RAAOnSecurityRBSGAvg(d, p, runs, seed)
			if err != nil {
				return runner.Metrics{}, err
			}
			return runner.Metrics{
				Values:    map[string]float64{"fraction": e.FractionOfIdeal},
				SimWrites: e.Writes * float64(runs),
			}, nil
		},
	}
}

// Fig16Points is the resolution of the Fig 16 cumulative-wear curves.
const Fig16Points = 64

// Fig16Totals returns the RAA write totals evaluated by Fig 16 at the
// given scale (the paper's 10^10..10^13, scaled with the line count).
func Fig16Totals(sc Scale) []float64 {
	div := 1.0
	switch sc {
	case ScaleTest:
		div = 1024 // 2^12 vs 2^22 lines
	case ScaleLaptop:
		div = 16 // 2^18 vs 2^22 lines
	}
	return []float64{1e10 / div, 1e11 / div, 1e12 / div, 1e13 / div}
}

// Fig16Grid is the wear-distribution experiment behind Fig 16: one cell
// per accumulated-write total, each returning the normalized cumulative
// wear curve over Fig16Points address-space quantiles as its Series.
func Fig16Grid(sc Scale) runner.Grid {
	totals := Fig16Totals(sc)
	cells := make([]runner.Cell, len(totals))
	byID := make(map[string]float64, len(totals))
	for i, total := range totals {
		id := fmt.Sprintf("total=%.3e", total)
		cells[i] = runner.Cell{ID: id, Labels: map[string]string{"fig": "fig16"}}
		byID[id] = total
	}
	return runner.Grid{
		Name:  fmt.Sprintf("fig16/scale=%s", sc),
		Cells: cells,
		Run: func(ctx context.Context, cell runner.Cell, seed uint64) (runner.Metrics, error) {
			total := byID[cell.ID]
			var d lifetime.Device
			var p lifetime.SRBSGParams
			switch sc {
			case ScaleFull:
				d = lifetime.PaperDevice()
				p = lifetime.SuggestedSRBSGParams()
			case ScaleTest:
				d, p = testSRBSG(16, 16, 32, 7)
			default:
				d, p = lifetime.ScaledSRBSGExperiment(7)
			}
			counts, err := lifetime.WriteDistribution(d, p, total, seed)
			if err != nil {
				return runner.Metrics{}, err
			}
			pts := make([]int, Fig16Points)
			for k := range pts {
				pts[k] = (k + 1) * len(counts) / Fig16Points
			}
			return runner.Metrics{
				Series:    stats.NormalizedCumulative(counts, pts),
				SimWrites: total,
			}, nil
		},
	}
}

// CompareRow names one row of the cross-scheme comparison table.
type CompareRow struct {
	Scheme, Attack string
	Params         lifetime.SRBSGParams
}

// CompareRows is the headline comparison: every scheme at its
// recommended configuration under each applicable attack.
func CompareRows() []CompareRow {
	rbsg := lifetime.SRBSGParams{Regions: 32, InnerInterval: 100}
	rec := lifetime.SRBSGParams{Regions: 512, InnerInterval: 64, OuterInterval: 128, Stages: 7}
	return []CompareRow{
		{"none", "raa", lifetime.SRBSGParams{}},
		{"rbsg", "raa", rbsg},
		{"rbsg", "bpa", rbsg},
		{"rbsg", "rta", rbsg},
		{"multiway-sr", "focused", rec},
		{"two-level-sr", "raa", rec},
		{"two-level-sr", "rta", rec},
		{"security-rbsg", "raa", rec},
		{"security-rbsg", "bpa", rec},
		{"security-rbsg", "rta", rec},
	}
}

// CompareGrid drives the comparison table through the runner: one cell
// per (scheme, attack) row on the given device. Metrics: writes,
// seconds, fraction.
func CompareGrid(d lifetime.Device, runs int) runner.Grid {
	rows := CompareRows()
	cells := make([]runner.Cell, len(rows))
	byID := make(map[string]CompareRow, len(rows))
	for i, r := range rows {
		id := fmt.Sprintf("scheme=%s/attack=%s", r.Scheme, r.Attack)
		cells[i] = runner.Cell{ID: id, Labels: map[string]string{
			"scheme": r.Scheme, "attack": r.Attack,
		}}
		byID[id] = r
	}
	return runner.Grid{
		Name:  fmt.Sprintf("compare/lines=%d/runs=%d", d.Lines, runs),
		Cells: cells,
		Run: func(ctx context.Context, cell runner.Cell, seed uint64) (runner.Metrics, error) {
			r := byID[cell.ID]
			e, err := Evaluate(d, r.Scheme, r.Attack, r.Params, runs, seed)
			if err != nil {
				return runner.Metrics{}, err
			}
			return runner.Metrics{
				Values: map[string]float64{
					"writes":   e.Writes,
					"seconds":  e.Seconds,
					"fraction": e.FractionOfIdeal,
				},
				SimWrites: e.Writes,
			}, nil
		},
	}
}

// Evaluate computes the lifetime of one (scheme, attack, configuration)
// triple — the single-cell evaluation behind cmd/lifetime. It resolves
// the pair through the plugin registry's model tier (see models.go); the
// error for an unknown pairing lists the modeled combinations. All
// randomness derives from seed.
func Evaluate(d lifetime.Device, scheme, att string, p lifetime.SRBSGParams, runs int, seed uint64) (lifetime.Estimate, error) {
	return registry.Default.EvalModel(scheme, att, registry.Config{
		Lines: d.Lines, Endurance: d.Endurance, Timing: d.Timing,
		Regions: p.Regions, InnerInterval: p.InnerInterval,
		OuterInterval: p.OuterInterval, Stages: p.Stages,
		Runs: runs, Seed: seed,
	})
}

package attack

import (
	"fmt"
	"math"

	"securityrbsg/internal/pcm"
	"securityrbsg/internal/registry"
)

// This file adapts the attack implementations to the plugin registry:
// each attack registers a declarative-config runner plus the capability
// flags that gate which schemes it can face. The adapters own the
// attacker's parameter choices (victim address, hammer stint, sequence
// length, default budgets) so that a tournament cell is fully determined
// by (scheme, attack, Config).

// victimLA picks the attacked logical address: the conventional LA 17
// used throughout the repo's demos, folded into small spaces and kept
// nonzero (RTASR reserves address 0 as its probe line).
func victimLA(lines uint64) uint64 {
	la := uint64(17) % lines
	if la == 0 {
		la = 1
	}
	return la
}

// hardened names the schemes the RTA is *expected* to fail against: a
// run error (shadow-model breakdown) there means the defense held, not
// that the cell is broken.
func hardened(scheme string) bool {
	return scheme == "security-rbsg" || scheme == "rbsg+detector" || scheme == "srbsg-adaptive"
}

// fromResult converts an attack.Result, marking a budget-bounded run
// that failed no line as an abort (the defense held).
func fromResult(r Result) registry.Result {
	out := registry.Result{
		Writes: r.Writes, AttackNs: r.AttackNs,
		Failed: r.Failed, FailedPA: r.FailedPA,
	}
	if !r.Failed {
		out.Aborted = true
		out.Note = "write budget exhausted"
	}
	return out
}

func init() {
	registry.RegisterAttack(registry.Attack{
		Name: "raa",
		Doc:  "Repeated Address Attack: hammer one logical address",
		Caps: registry.AttackCaps{Exact: true},
		RunExact: func(env *registry.Env) (registry.Result, error) {
			return fromResult(RAA(env.Controller, victimLA(env.Cfg.Lines), pcm.Mixed, env.Cfg.MaxWrites)), nil
		},
	})

	registry.RegisterAttack(registry.Attack{
		Name: "bpa",
		Doc:  "Birthday Paradox Attack: hammer random addresses one LVF stint each",
		Caps: registry.AttackCaps{Exact: true},
		RunExact: func(env *registry.Env) (registry.Result, error) {
			// The attacker sizes each stint to the scheme's Line
			// Vulnerability Factor — the writes an address can absorb
			// before it has plausibly been remapped away. Schemes without
			// a remapping interval (the baseline) get endurance-sized
			// stints: hammering until the line dies is then optimal.
			cfg := env.Cfg
			stint := cfg.Endurance
			if cfg.InnerInterval > 0 {
				regions := cfg.Regions
				if regions == 0 {
					regions = 1
				}
				stint = (cfg.Lines/regions + 1) * cfg.InnerInterval
			}
			return fromResult(BPA(env.Controller, stint, pcm.Mixed, cfg.Seed, cfg.MaxWrites)), nil
		},
	})

	registry.RegisterAttack(registry.Attack{
		Name: "aia",
		Doc:  "Address Inference Attack: pin one physical line via a mapping oracle",
		Caps: registry.AttackCaps{Exact: true, NeedsSchemeOracle: true},
		RunExact: func(env *registry.Env) (registry.Result, error) {
			return fromResult(AIA(env.Controller, 0, pcm.Mixed, env.Cfg.MaxWrites)), nil
		},
	})

	registry.RegisterAttack(registry.Attack{
		Name: "rta",
		Doc:  "Remapping Timing Attack: extract mapping secrets from remap latencies",
		Caps: registry.AttackCaps{
			Exact:             true,
			NeedsTimingOracle: true,
			// One shadow model per victim family; schemes outside this
			// list are rejected before any simulation starts.
			ExactTargets: []string{
				"start-gap", "rbsg", "rbsg+detector",
				"security-refresh", "two-level-sr", "security-rbsg",
				"srbsg-adaptive",
			},
		},
		Prepare: prepareRTA,
		RunExact: func(env *registry.Env) (registry.Result, error) {
			switch env.Scheme.Name {
			case "security-refresh":
				return runRTASR(env)
			case "two-level-sr":
				return runRTATwoLevel(env)
			default:
				// start-gap, rbsg, rbsg+detector, security-rbsg and
				// srbsg-adaptive all face the RBSG shadow model — for the
				// hardened three that is the point: the attacker wrongly
				// models the victim as plain RBSG and the cell records
				// whether that breaks.
				return runRTARBSG(env)
			}
		},
	})
}

// prepareRTA adjusts the resolved configuration to the attack's
// documented minimums — or rejects the pairing before any simulation
// state is built.
func prepareRTA(s *registry.Scheme, cfg registry.Config) (registry.Config, error) {
	switch s.Name {
	case "security-refresh":
		// Alignment can deposit up to 1.5 refresh rounds on the probe
		// line before the wear phase begins (see cmd/attackdemo).
		if min := cfg.Lines * cfg.InnerInterval * 3 / 2; cfg.Endurance < min {
			cfg.Endurance = min
		}
	case "two-level-sr":
		// Several outer rounds must complete before the flood kills its
		// target sub-region (see cmd/attackdemo).
		if min := 12 * (cfg.Lines / cfg.Regions) * cfg.InnerInterval; cfg.Endurance < min {
			cfg.Endurance = min
		}
	case "start-gap", "rbsg":
		// The wear phase consumes one recovered predecessor per region
		// rotation; the recoverable sequence is capped at the region
		// size, so an over-provisioned endurance cannot be worn through.
		per := cfg.Lines / cfg.Regions
		if per >= 2 {
			need := rbsgSeqLen(cfg.Endurance, per, cfg.InnerInterval)
			if max := per - 1; need > max {
				return cfg, fmt.Errorf("endurance %d needs a %d-line wear sequence but the region holds only %d lines — shrink endurance or regions",
					cfg.Endurance, need, per)
			}
		}
	case "security-rbsg", "rbsg+detector", "srbsg-adaptive":
		// The attack is expected to fail here, and without a failing
		// line nothing else bounds it: give it the generous default
		// budget the demos use.
		if cfg.MaxWrites == 0 {
			cfg.MaxWrites = 100 * cfg.Lines * cfg.InnerInterval
		}
	}
	return cfg, nil
}

// rbsgSeqLen is the wear-phase sequence length: the paper's
// n = ceil(E/((n′+1)·ψ)) predecessors plus one spare for rounding.
func rbsgSeqLen(endurance, perRegion, interval uint64) uint64 {
	return uint64(math.Ceil(float64(endurance)/float64((perRegion+1)*interval))) + 1
}

func runRTARBSG(env *registry.Env) (registry.Result, error) {
	cfg := env.Cfg
	per := cfg.Lines / cfg.Regions
	seqLen := rbsgSeqLen(cfg.Endurance, per, cfg.InnerInterval)
	if max := per - 1; per >= 2 && seqLen > max {
		seqLen = max // hardened targets: the attack aborts long before this matters
	}
	a := &RTARBSG{
		Target: env.Target,
		Lines:  cfg.Lines, Regions: cfg.Regions, Interval: cfg.InnerInterval,
		Timing: cfg.Device().Timing,
		Li:     victimLA(cfg.Lines), SeqLen: seqLen,
		MaxWrites: cfg.MaxWrites,
		Oracle:    func() bool { return env.Controller.Bank().Failed() },
	}
	res, err := a.Run()
	out := fromResult(res)
	out.AlignWrites = a.AlignmentWrites
	out.DetectWrites = a.DetectionWrites
	out.WearWrites = a.WearWrites
	if err != nil {
		if hardened(env.Scheme.Name) {
			out.Aborted = true
			out.Note = "attack aborted: " + err.Error()
			return out, nil
		}
		return out, err
	}
	return out, nil
}

func runRTASR(env *registry.Env) (registry.Result, error) {
	cfg := env.Cfg
	a := &RTASR{
		Target: env.Target,
		Lines:  cfg.Lines, Interval: cfg.InnerInterval,
		Timing:    cfg.Device().Timing,
		Li:        victimLA(cfg.Lines),
		MaxWrites: cfg.MaxWrites,
		Oracle:    func() bool { return env.Controller.Bank().Failed() },
	}
	res, err := a.Run()
	out := fromResult(res)
	out.AlignWrites = a.AlignWrites
	out.DetectWrites = a.DetectWrites
	out.WearWrites = a.WearWrites
	return out, err
}

func runRTATwoLevel(env *registry.Env) (registry.Result, error) {
	cfg := env.Cfg
	a := &RTATwoLevelSRExact{
		Target: env.Target,
		Lines:  cfg.Lines, Regions: cfg.Regions,
		InnerInterval: cfg.InnerInterval, OuterInterval: cfg.OuterInterval,
		Timing:    cfg.Device().Timing,
		MaxWrites: cfg.MaxWrites,
		Oracle:    func() bool { return env.Controller.Bank().Failed() },
	}
	res, err := a.Run()
	out := fromResult(res)
	out.DetectWrites = a.DetectWrites
	out.WearWrites = a.FloodWrites
	return out, err
}

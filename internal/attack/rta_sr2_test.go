package attack

import (
	"testing"

	"securityrbsg/internal/pcm"
	"securityrbsg/internal/secref"
	"securityrbsg/internal/wear"
)

// outerSpy records the outer level's key difference whenever it changes,
// giving the test ground truth to compare the attacker's recovered bits
// against. (The attacker never sees it.)
type outerSpy struct {
	c  *wear.Controller
	s  *secref.TwoLevel
	ds []uint64
}

func (sp *outerSpy) observe() {
	kc, kp := sp.s.Outer().Keys()
	d := kc ^ kp
	if len(sp.ds) == 0 || sp.ds[len(sp.ds)-1] != d {
		sp.ds = append(sp.ds, d)
	}
}

func (sp *outerSpy) Write(la uint64, content pcm.Content) uint64 {
	ns := sp.c.Write(la, content)
	sp.observe()
	return ns
}

func (sp *outerSpy) Read(la uint64) (pcm.Content, uint64) {
	return sp.c.Read(la)
}

// TestRTATwoLevelSRExact runs the oracle-free two-level attack end to
// end: every per-round high key-difference recovered from latencies must
// match the spied truth, and the flood must kill a line far faster than
// blind hammering.
func TestRTATwoLevelSRExact(t *testing.T) {
	const (
		lines     = 1024
		regions   = 8
		inner     = 4
		outer     = 8
		endurance = 6000
	)
	cfg := secref.TwoLevelConfig{
		Lines: lines, Regions: regions,
		InnerInterval: inner, OuterInterval: outer, Seed: 12,
	}
	s := secref.MustNewTwoLevel(cfg)
	c := wear.MustNewController(bankCfg(endurance), s)
	spy := &outerSpy{c: c, s: s}
	a := &RTATwoLevelSRExact{
		Target: spy,
		Lines:  lines, Regions: regions,
		InnerInterval: inner, OuterInterval: outer,
		Oracle: func() bool { return c.Bank().Failed() },
	}
	res, err := a.Run()
	if err != nil {
		t.Fatalf("attack error: %v", err)
	}
	if !res.Failed {
		t.Fatal("attack did not fail the device")
	}
	if len(a.RecoveredHighDs) == 0 {
		t.Fatal("no key bits recovered")
	}

	// Ground truth: spy.ds[0] is the boot D (0); the attack's i-th
	// detection sees spy.ds[i+1].
	lowBits := uint(0)
	for v := uint64(lines / regions); v > 1; v >>= 1 {
		lowBits++
	}
	wrong := 0
	for i, got := range a.RecoveredHighDs {
		if i+1 >= len(spy.ds) {
			break
		}
		if got == ^uint64(0) {
			continue // the attack marked this round as lost; skip
		}
		want := spy.ds[i+1] >> lowBits
		if got != want {
			wrong++
			t.Logf("round %d: recovered %#x, truth %#x", i, got, want)
		}
	}
	if wrong > len(a.RecoveredHighDs)/10 {
		t.Fatalf("%d/%d rounds misrecovered the key bits", wrong, len(a.RecoveredHighDs))
	}

	// Comparison: blind RAA on a fresh instance with the same budget.
	s2 := secref.MustNewTwoLevel(cfg)
	c2 := wear.MustNewController(bankCfg(endurance), s2)
	raa := RAA(c2, 5, pcm.Mixed, res.Writes*2)
	if raa.Failed && raa.Writes <= res.Writes {
		t.Fatalf("blind RAA (%d writes) beat the exact timing attack (%d writes)",
			raa.Writes, res.Writes)
	}
	t.Logf("exact attack: %d writes over %d rounds (detect %d, flood %d), %d/%d rounds exact; RAA alive after %d writes",
		res.Writes, a.Rounds, a.DetectWrites, a.FloodWrites,
		len(a.RecoveredHighDs)-wrong, len(a.RecoveredHighDs), raa.Writes)
}

// TestRTATwoLevelSRExactValidation exercises the config checks.
func TestRTATwoLevelSRExactValidation(t *testing.T) {
	bad := []RTATwoLevelSRExact{
		{Lines: 100, Regions: 4, InnerInterval: 1, OuterInterval: 1},
		{Lines: 128, Regions: 3, InnerInterval: 1, OuterInterval: 1},
		{Lines: 128, Regions: 4, InnerInterval: 0, OuterInterval: 1},
		{Lines: 128, Regions: 4, InnerInterval: 1, OuterInterval: 0},
	}
	for i := range bad {
		if _, err := bad[i].Run(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

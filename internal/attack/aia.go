package attack

import (
	"securityrbsg/internal/pcm"
	"securityrbsg/internal/wear"
)

// AIA runs the Address Inference Attack of the paper's Section II-B,
// category 3: an adversary who has compromised the system and can infer
// the current logical→physical mapping — trivially possible against any
// *deterministic* wear-leveling scheme, whose decisions can be replayed
// from the attacker's own write stream (the paper's case against the
// table-based family).
//
// The attack pins one physical line: it hammers whichever logical
// address currently maps to victimPA and re-infers the occupant whenever
// the scheme migrates it away. Against randomized schemes the same code
// runs but stands in for an implausibly strong oracle; comparing the two
// quantifies how much of a scheme's security is key secrecy versus
// structure.
func AIA(c *wear.Controller, victimPA uint64, content pcm.Content, maxWrites uint64) Result {
	r := runState{target: c, failed: failOracle(c), max: maxWrites}
	scheme := c.Scheme()
	occupant, ok := occupantOf(scheme, victimPA)
	for !r.done() {
		if !ok || scheme.Translate(occupant) != victimPA {
			occupant, ok = occupantOf(scheme, victimPA)
			if !ok {
				// The victim line is momentarily unmapped (a gap/spare
				// slot). Burn a write on the line next to it — same
				// region, so the scheme's rotation advances and the
				// victim comes back into use.
				if neighbor, nok := occupantOf(scheme, victimPA+1); nok {
					r.write(neighbor, content)
				} else if neighbor, nok := occupantOf(scheme, victimPA-1); nok {
					r.write(neighbor, content)
				} else {
					r.write(0, content)
				}
				continue
			}
		}
		r.write(occupant, content)
	}
	return r.res
}

// occupantOf scans for the logical address currently mapped to pa.
func occupantOf(s wear.Scheme, pa uint64) (uint64, bool) {
	for la := uint64(0); la < s.LogicalLines(); la++ {
		if s.Translate(la) == pa {
			return la, true
		}
	}
	return 0, false
}

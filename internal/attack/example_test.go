package attack_test

import (
	"fmt"

	"securityrbsg/internal/attack"
	"securityrbsg/internal/pcm"
	"securityrbsg/internal/rbsg"
	"securityrbsg/internal/wear"
)

// Example runs the Remapping Timing Attack against a small RBSG instance:
// the attacker recovers the logical addresses physically adjacent to its
// target from write latencies alone, then wears the pinned line out.
func Example() {
	scheme := rbsg.MustNew(rbsg.Config{Lines: 256, Regions: 8, Interval: 4, Seed: 5})
	ctrl := wear.MustNewController(pcm.Config{
		LineBytes: 256, Endurance: 500,
	}, scheme)

	a := &attack.RTARBSG{
		Target: ctrl,
		Lines:  256, Regions: 8, Interval: 4,
		Li:     17,
		SeqLen: 6,
		Oracle: func() bool { return ctrl.Bank().Failed() },
	}
	res, err := a.Run()
	if err != nil {
		panic(err)
	}
	fmt.Printf("failed=%v recovered %d adjacent addresses\n", res.Failed, len(a.Sequence()))
	// Output:
	// failed=true recovered 6 adjacent addresses
}

// ExampleRAA shows the baseline attack: without wear leveling a single
// hammered address kills its line in exactly endurance+1 writes.
func ExampleRAA() {
	ctrl := wear.MustNewController(pcm.Config{
		LineBytes: 256, Endurance: 1000,
	}, wear.NewPassthrough(64))
	res := attack.RAA(ctrl, 7, pcm.Mixed, 0)
	fmt.Printf("failed=%v after %d writes\n", res.Failed, res.Writes)
	// Output:
	// failed=true after 1001 writes
}

package attack

import (
	"testing"

	"securityrbsg/internal/pcm"
	"securityrbsg/internal/rbsg"
	"securityrbsg/internal/tablewl"
	"securityrbsg/internal/wear"
)

// TestAIAKillsTableWL is the paper's Section II-B argument against
// table-based wear leveling: the scheme is deterministic, so an informed
// adversary pins one physical line through every migration and kills it
// in little more than endurance writes.
func TestAIAKillsTableWL(t *testing.T) {
	const endurance = 3000
	s := tablewl.MustNew(tablewl.Config{Lines: 64, Interval: 8, HotThreshold: 4})
	c := wear.MustNewController(bankCfg(endurance), s)
	res := AIA(c, 42, pcm.Mixed, 0)
	if !res.Failed {
		t.Fatal("AIA did not fail the device")
	}
	if res.FailedPA != 42 {
		t.Fatalf("AIA killed PA %d, wanted the pinned victim 42", res.FailedPA)
	}
	// Nearly every write lands on the victim: the overhead over raw
	// endurance stays small.
	if res.Writes > 3*endurance {
		t.Fatalf("AIA needed %d writes for endurance %d — tracking is leaky", res.Writes, endurance)
	}
	t.Logf("AIA killed the pinned line in %d writes (endurance %d)", res.Writes, endurance)
}

// TestAIAVsRAAOnTableWL: against the same scheme, the informed attack is
// far faster than blind hammering, which the hot-cold migration actually
// spreads quite well.
func TestAIAVsRAAOnTableWL(t *testing.T) {
	const endurance = 3000
	mk := func() *wear.Controller {
		return wear.MustNewController(bankCfg(endurance),
			tablewl.MustNew(tablewl.Config{Lines: 64, Interval: 8, HotThreshold: 4}))
	}
	aia := AIA(mk(), 42, pcm.Mixed, 0)
	raa := RAA(mk(), 13, pcm.Mixed, 50_000_000)
	if !aia.Failed {
		t.Fatal("AIA must succeed")
	}
	if raa.Failed && raa.Writes < 4*aia.Writes {
		t.Fatalf("RAA (%d writes) should be much slower than AIA (%d writes)",
			raa.Writes, aia.Writes)
	}
	t.Logf("table WL: AIA %d writes; RAA %v writes (failed=%v)", aia.Writes, raa.Writes, raa.Failed)
}

// TestAIAKillsRBSGWithOracle: with an (implausible) full-mapping oracle
// even RBSG pins — showing its security rests entirely on the mapping
// staying secret, which is precisely what the RTA breaks through timing.
func TestAIAKillsRBSGWithOracle(t *testing.T) {
	const endurance = 2000
	s := rbsg.MustNew(rbsg.Config{Lines: 256, Regions: 8, Interval: 4, Seed: 11})
	c := wear.MustNewController(bankCfg(endurance), s)
	res := AIA(c, 100, pcm.Mixed, 0)
	if !res.Failed || res.FailedPA != 100 {
		t.Fatalf("oracle AIA should pin PA 100: %+v", res)
	}
	if res.Writes > 3*endurance {
		t.Fatalf("oracle AIA needed %d writes for endurance %d", res.Writes, endurance)
	}
}

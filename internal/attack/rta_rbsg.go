package attack

import (
	"errors"
	"fmt"

	"securityrbsg/internal/pcm"
)

// RTARBSG is the Remapping Timing Attack against Region-Based Start-Gap
// (Section III-B of the paper), implemented as a real algorithm that sees
// only logical writes and their latencies.
//
// What the attacker knows (Kerckhoffs): the scheme and its parameters
// (N lines, R regions, interval ψ, device timing) and the boot state of
// the Start-Gap registers (Start=0, Gap=n for every region). What it does
// not know: the static randomizer, i.e. which logical addresses are
// physically adjacent.
//
// The attack maintains a *shadow* Start-Gap region for the target's
// region. It can do so exactly, without secrets, because gap movements are
// a pure function of the number of writes landing in the region, and the
// attacker controls that number: a full sweep over all N logical addresses
// puts exactly N/R writes into every region (the randomizer is a
// bijection), and hammer-phase writes all land in the target's region.
//
// Phases:
//
//  1. Alignment (paper Steps 1–3): write ALL-0 everywhere, then hammer the
//     chosen line Li with ALL-1 until a gap movement costs
//     read+SET (1125 ns) instead of read+RESET (250 ns) — that movement
//     moved Li, fixing Li's physical slot in the shadow. From here the
//     cyclic slot order reveals which *relative* neighbor every future
//     movement touches.
//  2. Sequence detection (Steps 4–6): for each address bit j, sweep a
//     pattern (ALL-0/ALL-1 keyed by bit j of the LA), then hammer Li and
//     classify each movement's latency to read bit j of every line in the
//     region — in particular of Li's physical predecessors
//     L(i−1), L(i−2), …, which no static randomizer can hide.
//  3. Wear-out: hammer whichever recovered logical address currently sits
//     on the pinned physical slot, following the rotation, so every
//     attacker write lands on the same physical line until it fails.
type RTARBSG struct {
	// Target is the memory under attack.
	Target Target
	// Lines, Regions, Interval mirror the RBSG configuration (public).
	Lines, Regions, Interval uint64
	// Timing is the public device timing.
	Timing pcm.Timing
	// Li is the logical address whose physical neighborhood is attacked.
	Li uint64
	// SeqLen is how many predecessor addresses to recover (the paper's
	// n = ceil(E / ((N/R)·ψ)); at least 1). 0 picks the region size - 1.
	SeqLen uint64
	// MaxWrites bounds the attack (0 = unbounded). Oracle, when non-nil,
	// stops the attack when it returns true (e.g. device failed).
	MaxWrites uint64
	Oracle    func() bool
	// WearContent is the data hammered in the wear-out phase (Ones keeps
	// the paper's cost accounting; Zeros is 8× faster on the wire).
	WearContent pcm.Content

	// --- shadow state ---
	n        uint64  // lines per region
	cnt      uint64  // region write counter mod ψ
	sGap     uint64  // shadow Gap register
	sStart   uint64  // shadow Start register
	rel      []int64 // slot -> relative offset k (line is L(i-k)), -1 unknown
	liSlot   uint64  // Li's slot at alignment (the pinned target slot)
	aligned  bool
	seqBits  []uint64 // recovered LA bits per offset (index 0 unused)
	seqKnown []uint64 // bitmask of recovered bit positions per offset

	res Result
	// Diagnostics filled in by Run.
	AlignmentWrites uint64
	DetectionWrites uint64
	WearWrites      uint64
}

const relUnknown = int64(-1)

// errStopped aborts phases when the oracle or budget fires.
var errStopped = errors.New("attack stopped")

// Run executes the full attack and reports the result. Sequence recovery
// diagnostics remain available on the receiver afterwards.
func (a *RTARBSG) Run() (Result, error) {
	if a.Lines == 0 || a.Regions == 0 || a.Lines%a.Regions != 0 || a.Interval == 0 {
		return Result{}, fmt.Errorf("attack: bad RBSG parameters N=%d R=%d ψ=%d", a.Lines, a.Regions, a.Interval)
	}
	if a.Timing == (pcm.Timing{}) {
		a.Timing = pcm.DefaultTiming
	}
	a.n = a.Lines / a.Regions
	if a.SeqLen == 0 || a.SeqLen > a.n-1 {
		a.SeqLen = a.n - 1
	}
	a.cnt = 0
	a.sGap = a.n
	a.sStart = 0
	a.rel = make([]int64, a.n+1)
	a.seqBits = make([]uint64, a.SeqLen+1)
	a.seqKnown = make([]uint64, a.SeqLen+1)
	for i := range a.rel {
		a.rel[i] = relUnknown
	}

	if err := a.align(); err != nil {
		return a.res, a.finish(err)
	}
	before := a.res.Writes
	a.AlignmentWrites = before
	if err := a.detectSequence(); err != nil {
		return a.res, a.finish(err)
	}
	a.DetectionWrites = a.res.Writes - before
	before = a.res.Writes
	err := a.wearOut()
	a.WearWrites = a.res.Writes - before
	return a.res, a.finish(err)
}

// finish normalizes the sentinel stop error.
func (a *RTARBSG) finish(err error) error {
	if errors.Is(err, errStopped) {
		return nil
	}
	return err
}

// write issues one attacker write and returns the latency beyond the
// demand write itself (the remapping side channel).
func (a *RTARBSG) write(la uint64, c pcm.Content) (extraNs uint64, err error) {
	if a.Oracle != nil && a.Oracle() {
		a.res.Failed = true
		return 0, errStopped
	}
	if a.MaxWrites > 0 && a.res.Writes >= a.MaxWrites {
		return 0, errStopped
	}
	ns := a.Target.Write(la, c)
	a.res.Writes++
	a.res.AttackNs += ns
	return ns - a.Timing.WriteNs(c), nil
}

// tickRegion advances the shadow by one write to the target region and
// applies the shadow gap movement when the interval elapses. It returns
// whether a movement fired and which slot it vacated.
func (a *RTARBSG) tickRegion() (moved bool, srcSlot uint64) {
	a.cnt++
	if a.cnt < a.Interval {
		return false, 0
	}
	a.cnt = 0
	return true, a.shadowMove()
}

// tickN advances the shadow by k region writes at once, where at most the
// k-th can reach the interval (k ≤ Interval − cnt) — the O(1) equivalent
// of k tickRegion calls within one inter-movement epoch.
func (a *RTARBSG) tickN(k uint64) (moved bool, srcSlot uint64) {
	a.cnt += k
	if a.cnt < a.Interval {
		return false, 0
	}
	if a.cnt > a.Interval {
		panic(fmt.Errorf("attack: tickN(%d) crossed a shadow movement", k))
	}
	a.cnt = 0
	return true, a.shadowMove()
}

// writeN issues k consecutive writes of c to la (1 ≤ k ≤ the writes
// remaining until the next shadow movement, so only the k-th write can
// carry a movement) and advances the shadow in lock-step. It returns the
// last write's extra latency and the movement it fired, if any.
//
// When the target implements BatchTarget the run is batched and the
// Oracle/MaxWrites checks the naive loop makes before every write happen
// at batch boundaries instead. This is exact for the device-failure
// oracle: WriteRun's stopOnFail truncates the batch immediately after the
// bank's first failure — precisely the write after which the naive loop's
// next precheck would have stopped — and the budget clamp truncates at
// the same write the per-write budget check would. Other oracles observe
// batch-boundary granularity (documented on RTARBSG.Oracle).
func (a *RTARBSG) writeN(la uint64, c pcm.Content, k uint64) (extra uint64, moved bool, srcSlot uint64, err error) {
	bt, batched := a.Target.(BatchTarget)
	if !batched || k < 2 {
		for j := uint64(0); j < k; j++ {
			e, werr := a.write(la, c)
			if werr != nil {
				return 0, false, 0, werr
			}
			extra = e
			if m, s := a.tickRegion(); m {
				moved, srcSlot = true, s
			}
		}
		return extra, moved, srcSlot, nil
	}
	if a.Oracle != nil && a.Oracle() {
		a.res.Failed = true
		return 0, false, 0, errStopped
	}
	want := k
	if a.MaxWrites > 0 {
		if a.res.Writes >= a.MaxWrites {
			return 0, false, 0, errStopped
		}
		if rem := a.MaxWrites - a.res.Writes; want > rem {
			want = rem
		}
	}
	var issued uint64
	for issued < want {
		// The naive loop's extra is the LAST write's extra latency — not
		// that of any anomalous write mid-run (against schemes whose real
		// movements the attack's shadow mispredicts, those differ). Track
		// events by index and keep one only if it landed on the run's
		// final write.
		var evIdx, evNs uint64
		sawEvent := false
		got, ns := bt.WriteRun(la, c, want-issued, a.Oracle != nil, func(i, ns uint64) bool {
			evIdx, evNs, sawEvent = i, ns, true
			return true
		})
		issued += got
		a.res.Writes += got
		a.res.AttackNs += ns
		extra = 0
		if sawEvent && evIdx == got-1 {
			extra = evNs - a.Timing.WriteNs(c)
		}
		if issued == want {
			break
		}
		// stopOnFail truncated the run at the bank's first failure; the
		// naive loop's next per-write precheck would now observe it.
		if a.Oracle() {
			a.res.Failed = true
			err = errStopped
			break
		}
		// The oracle does not consider the failure fatal: resume the
		// batch (a bank first-fails at most once, so stopOnFail cannot
		// truncate again).
	}
	if m, s := a.tickN(issued); m {
		moved, srcSlot = true, s
	}
	if err == nil && issued < k {
		err = errStopped // budget exhausted mid-epoch, like the naive precheck
	}
	return extra, moved, srcSlot, err
}

// shadowMove mirrors startgap.Region.MoveGap on the shadow registers and
// the relative-offset map.
func (a *RTARBSG) shadowMove() (srcSlot uint64) {
	var src, dst uint64
	if a.sGap == 0 {
		src, dst = a.n, 0
		a.sGap = a.n
		a.sStart++
		if a.sStart == a.n {
			a.sStart = 0
		}
	} else {
		src, dst = a.sGap-1, a.sGap
		a.sGap--
	}
	a.rel[dst] = a.rel[src]
	a.rel[src] = relUnknown
	return src
}

// sweep writes a full pass over the logical space — content ALL-0, or
// keyed by address bit when bit >= 0 — ticking the shadow by exactly N/R
// region writes (a bijective randomizer routes exactly that many sweep
// writes into every region). Movement latencies during the sweep are not
// attributable to a region, so the shadow only advances; no bits are read.
func (a *RTARBSG) sweep(bit int) error {
	// Batched path: a SweepTarget executes the whole pass at once (e.g.
	// exactsim's parallel sub-region kernel). Only taken when the budget
	// covers the full sweep — otherwise the naive loop must truncate
	// mid-pass — and the Oracle check moves to the sweep boundary, which
	// is exact for the device-failure oracle because the target declines
	// (ok=false) whenever a line could fail mid-sweep.
	if st, ok := a.Target.(SweepTarget); ok &&
		(a.MaxWrites == 0 || a.res.Writes+a.Lines <= a.MaxWrites) {
		if a.Oracle != nil && a.Oracle() {
			a.res.Failed = true
			return errStopped
		}
		if w, ns, done := st.Sweep(bit); done {
			a.res.Writes += w
			a.res.AttackNs += ns
			for i := uint64(0); i < a.n; i++ {
				a.tickRegion()
			}
			return nil
		}
	}
	for la := uint64(0); la < a.Lines; la++ {
		c := pcm.Zeros
		if bit >= 0 && la>>uint(bit)&1 == 1 {
			c = pcm.Ones
		}
		if _, err := a.write(la, c); err != nil {
			return err
		}
	}
	for i := uint64(0); i < a.n; i++ {
		a.tickRegion()
	}
	return nil
}

// align is phase 1: pin down Li's physical slot.
func (a *RTARBSG) align() error {
	if err := a.sweep(-1); err != nil { // Step 1: ALL-0 everywhere
		return err
	}
	// Steps 2–3: hammer Li with ALL-1 until a movement costs read+SET.
	setMove := a.Timing.ReadNs + a.Timing.SetNs
	deadline := 2 * (a.n + 1) * a.Interval // two full rotations must see Li
	for i := uint64(0); i < deadline; {
		// One inter-movement epoch per iteration: only the k-th write can
		// fire a movement, so the whole epoch batches into one writeN.
		k := a.Interval - a.cnt
		if k > deadline-i {
			k = deadline - i
		}
		extra, moved, src, err := a.writeN(a.Li, pcm.Ones, k)
		if err != nil {
			return err
		}
		i += k
		if !moved {
			continue
		}
		if extra < setMove {
			continue // an ALL-0 neighbor moved: read+RESET only
		}
		// That movement moved Li: it went from slot src into the old gap.
		a.liSlot = src + 1
		if src == a.n {
			a.liSlot = 0
		}
		a.initRel()
		a.aligned = true
		return nil
	}
	return errors.New("attack: alignment failed — no SET-latency movement observed")
}

// initRel seeds the slot→relative-offset map: Li sits at liSlot, and the
// region's slots hold lines in cyclic intermediate-address order with the
// gap slot interleaved, so walking downward from Li's slot (skipping the
// gap) enumerates L(i-1), L(i-2), … .
func (a *RTARBSG) initRel() {
	for i := range a.rel {
		a.rel[i] = relUnknown
	}
	a.rel[a.liSlot] = 0
	offset := int64(1)
	s := a.liSlot
	for assigned := uint64(1); assigned < a.n; {
		if s == 0 {
			s = a.n
		} else {
			s--
		}
		if s == a.sGap {
			continue
		}
		a.rel[s] = offset
		offset++
		assigned++
	}
}

// patternOf returns the sweep content of la for address bit j.
func patternOf(la uint64, j uint) pcm.Content {
	if la>>j&1 == 1 {
		return pcm.Ones
	}
	return pcm.Zeros
}

// detectSequence is phase 2: recover every address bit of the SeqLen
// predecessors of Li.
func (a *RTARBSG) detectSequence() error {
	bits := addressBits(a.Lines)
	setMove := a.Timing.ReadNs + a.Timing.SetNs
	for j := uint(0); j < bits; j++ {
		if err := a.sweep(int(j)); err != nil { // Step 4: pattern keyed by bit j
			return err
		}
		// Step 5: hammer Li (with Li's own pattern so contents stay
		// consistent) and classify every movement in the region. One full
		// rotation reads bit j of every line.
		liContent := patternOf(a.Li, j)
		need := a.SeqLen
		seen := uint64(0)
		deadline := 2 * (a.n + 1) * a.Interval
		for w := uint64(0); w < deadline && seen < need; {
			k := a.Interval - a.cnt
			if k > deadline-w {
				k = deadline - w
			}
			extra, moved, src, err := a.writeN(a.Li, liContent, k)
			if err != nil {
				return err
			}
			w += k
			if !moved {
				continue
			}
			// The line that moved was at slot src; after shadowMove its
			// offset tag traveled to the destination slot. Recover it from
			// the destination (src is now the gap).
			dst := src + 1
			if src == a.n {
				dst = 0
			}
			off := a.rel[dst]
			if off <= 0 || uint64(off) > a.SeqLen {
				continue // Li itself, an unknown slot, or beyond the needed sequence
			}
			if a.seqKnown[off]>>j&1 == 1 {
				continue // already read this bit on a previous rotation
			}
			bit := uint64(0)
			if extra >= setMove {
				bit = 1
			}
			a.seqBits[off] |= bit << j
			a.seqKnown[off] |= 1 << j
			seen++
		}
		if seen < need {
			return fmt.Errorf("attack: bit %d: observed only %d/%d sequence lines", j, seen, need)
		}
	}
	return nil
}

// Sequence returns the recovered predecessor logical addresses: element k
// (0-based) is L(i-k-1), the line physically k+1 slots before Li. Valid
// after Run.
func (a *RTARBSG) Sequence() []uint64 {
	out := make([]uint64, 0, a.SeqLen)
	for k := uint64(1); k <= a.SeqLen; k++ {
		out = append(out, a.seqBits[k])
	}
	return out
}

// wearOut is phase 3: hammer whichever recovered address currently
// occupies Li's pinned slot, tracking the rotation, until the oracle fires
// or the budget or recovered sequence is exhausted.
func (a *RTARBSG) wearOut() error {
	if a.WearContent == 0 {
		a.WearContent = pcm.Ones
	}
	// Pin the physical slot Li occupies *now* (detection rotations have
	// moved it since alignment), so the wear phase starts at offset 0 and
	// consumes the recovered sequence from the top.
	target := a.liSlot
	for s, k := range a.rel {
		if k == 0 {
			target = uint64(s)
			break
		}
	}
	for {
		k := a.rel[target]
		if k == relUnknown {
			// The slot is momentarily the gap; the next mover is the line
			// one slot below.
			below := target
			if below == 0 {
				below = a.n
			} else {
				below--
			}
			k = a.rel[below]
		}
		if k == relUnknown {
			return errors.New("attack: lost track of the pinned slot")
		}
		var la uint64
		switch {
		case k == 0:
			la = a.Li
		case uint64(k) <= a.SeqLen:
			la = a.seqBits[k]
		default:
			return fmt.Errorf("attack: recovered sequence exhausted (need offset %d, have %d)", k, a.SeqLen)
		}
		// la is frozen until the next shadow movement (rel only changes at
		// movements), so the rest of the epoch batches into one writeN.
		if _, _, _, err := a.writeN(la, a.WearContent, a.Interval-a.cnt); err != nil {
			return err
		}
	}
}

// addressBits returns log2(n) for a power-of-two n.
func addressBits(n uint64) uint {
	b := uint(0)
	for v := n; v > 1; v >>= 1 {
		b++
	}
	return b
}

// Package attack implements the three malicious write-stream families the
// paper studies, against any wear-leveled PCM target:
//
//   - RAA, the Repeated Address Attack: hammer one logical address.
//   - BPA, the Birthday Paradox Attack: hammer randomly chosen logical
//     addresses, each until it has plausibly been remapped away.
//   - RTA, the Remapping Timing Attack introduced by the paper: craft
//     ALL-0/ALL-1 write patterns and watch per-write latency to catch the
//     scheme's remapping movements, recovering mapping secrets one bit at
//     a time. Variants target RBSG (rta_rbsg.go) and Security Refresh
//     (rta_sr.go), and rta_srbsg.go shows the attempt failing against
//     Security RBSG.
//
// Attackers interact with memory only through the Target interface —
// logical reads and writes with observed latency — which is exactly the
// paper's threat model (compromised OS, caches bypassed, scheme public,
// keys secret).
package attack

import (
	"securityrbsg/internal/pcm"
	"securityrbsg/internal/stats"
	"securityrbsg/internal/wear"
)

// Target is the attacker's view of memory: the logical interface of a
// wear.Controller. Latencies are in nanoseconds and include any remapping
// movement triggered by the request — the timing side channel.
type Target interface {
	Write(la uint64, content pcm.Content) uint64
	Read(la uint64) (pcm.Content, uint64)
}

// BatchTarget is an optional Target capability for the exact-simulation
// fast path (wear.Controller and exactsim.FastTarget implement it): issue
// a run of identical writes to one address in bulk, bit-identical to n
// single writes. onEvent fires for every write whose observed latency
// differs from an unremarkable write's — exactly the anomalies the RTA
// watches — so batching loses nothing of the side channel. Attacks that
// detect this capability evaluate their Oracle and MaxWrites budget at
// batch boundaries instead of before every write; the batch helpers
// below keep that exact for the device-failure oracle (the only oracle
// the repo's experiments use) via stopOnFail.
type BatchTarget interface {
	Target
	WriteRun(la uint64, content pcm.Content, n uint64, stopOnFail bool, onEvent func(i, ns uint64) bool) (issued, totalNs uint64)
}

// SweepTarget is an optional Target capability: execute one full
// SweepPattern (bit ≥ 0) or SweepZeros (bit < 0) pass over the logical
// space at once, returning the demand writes issued and the attacker-
// observed time. ok is false when the target cannot prove the batched
// sweep is bit-identical to the naive loop (e.g. a line could fail
// mid-sweep, perturbing failure-time accounting) — the caller must then
// run the write-by-write loop itself; nothing was issued.
type SweepTarget interface {
	Target
	Sweep(bit int) (writes, ns uint64, ok bool)
}

// Result summarizes an attack run.
type Result struct {
	// Writes is the number of demand writes the attacker issued.
	Writes uint64
	// AttackNs is the attacker-observed elapsed time (sum of latencies).
	AttackNs uint64
	// Failed reports whether the attack wore some line past endurance.
	Failed bool
	// FailedPA is the physical line that failed first (when Failed).
	FailedPA uint64
}

// runState tracks progress against a stop condition shared by all attacks.
type runState struct {
	target Target
	failed func() (uint64, bool)
	max    uint64
	res    Result
}

// failOracle builds the default device-failure oracle for a controller.
func failOracle(c *wear.Controller) func() (uint64, bool) {
	return func() (uint64, bool) {
		pa, _, ok := c.Bank().FirstFailure()
		return pa, ok
	}
}

func (r *runState) done() bool {
	if pa, ok := r.failed(); ok {
		r.res.Failed = true
		r.res.FailedPA = pa
		return true
	}
	return r.max > 0 && r.res.Writes >= r.max
}

func (r *runState) write(la uint64, c pcm.Content) uint64 {
	ns := r.target.Write(la, c)
	r.res.Writes++
	r.res.AttackNs += ns
	return ns
}

// raaChunk bounds one WriteRun call in the unbounded-budget case so the
// stop condition is still re-evaluated periodically.
const raaChunk = 1 << 22

// RAA runs the Repeated Address Attack: write content to la until a line
// fails or maxWrites demand writes have been issued (0 = unbounded). The
// paper's generic attacker writes ordinary data, so content defaults to
// Mixed when the zero value is not what you want — pass explicitly.
//
// The hammer is issued through Controller.WriteRun, which truncates the
// batch exactly at the bank's first failure, so the result (writes,
// observed time, wear state) is bit-identical to the write-by-write loop
// at a fraction of the cost when the scheme supports fast-forwarding.
func RAA(c *wear.Controller, la uint64, content pcm.Content, maxWrites uint64) Result {
	r := runState{target: c, failed: failOracle(c), max: maxWrites}
	for !r.done() {
		n := uint64(raaChunk)
		if maxWrites > 0 {
			n = maxWrites - r.res.Writes
		}
		issued, ns := c.WriteRun(la, content, n, true, nil)
		r.res.Writes += issued
		r.res.AttackNs += ns
	}
	return r.res
}

// BPA runs the Birthday Paradox Attack: pick a uniformly random logical
// address, hammer it hammerWrites times (enough that the scheme has
// plausibly remapped it — the attacker uses its knowledge of the Line
// Vulnerability Factor), then pick another, until a line fails or
// maxWrites writes have been issued (0 = unbounded).
func BPA(c *wear.Controller, hammerWrites uint64, content pcm.Content, seed, maxWrites uint64) Result {
	if hammerWrites == 0 {
		hammerWrites = 1
	}
	rng := stats.NewRNG(seed)
	n := c.Scheme().LogicalLines()
	r := runState{target: c, failed: failOracle(c), max: maxWrites}
	for !r.done() {
		la := rng.Uint64n(n)
		// One hammer stint through WriteRun (exact: truncates at first
		// failure and at the budget, like the per-write loop it replaces).
		// The RNG draw sequence is unchanged: one draw per stint.
		stint := hammerWrites
		if maxWrites > 0 && maxWrites-r.res.Writes < stint {
			stint = maxWrites - r.res.Writes
		}
		issued, ns := c.WriteRun(la, content, stint, true, nil)
		r.res.Writes += issued
		r.res.AttackNs += ns
	}
	return r.res
}

// SweepPattern writes one line to every logical address: ALL-0 where bit
// `bit` of the address is 0, ALL-1 where it is 1 — Step 4 of the RTA
// against RBSG and Step 3 against Security Refresh. It returns the demand
// writes issued and the observed time.
func SweepPattern(t Target, lines uint64, bit uint) (writes, ns uint64) {
	for la := uint64(0); la < lines; la++ {
		c := pcm.Zeros
		if la>>bit&1 == 1 {
			c = pcm.Ones
		}
		ns += t.Write(la, c)
		writes++
	}
	return writes, ns
}

// SweepZeros writes ALL-0 to every logical address — Step 1 of both RTA
// variants.
func SweepZeros(t Target, lines uint64) (writes, ns uint64) {
	for la := uint64(0); la < lines; la++ {
		ns += t.Write(la, pcm.Zeros)
		writes++
	}
	return writes, ns
}

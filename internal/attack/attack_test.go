package attack

import (
	"testing"

	"securityrbsg/internal/core"
	"securityrbsg/internal/pcm"
	"securityrbsg/internal/rbsg"
	"securityrbsg/internal/secref"
	"securityrbsg/internal/wear"
)

func bankCfg(endurance uint64) pcm.Config {
	return pcm.Config{LineBytes: 256, Endurance: endurance, Timing: pcm.DefaultTiming}
}

func TestRAAKillsBaselineInEnduranceWrites(t *testing.T) {
	c := wear.MustNewController(bankCfg(1000), wear.NewPassthrough(64))
	res := RAA(c, 7, pcm.Mixed, 0)
	if !res.Failed || res.FailedPA != 7 {
		t.Fatalf("result %+v", res)
	}
	if res.Writes != 1001 {
		t.Fatalf("baseline RAA took %d writes, want endurance+1", res.Writes)
	}
	// 100 s at paper scale: here 1001 µs.
	if res.AttackNs != 1001*1000 {
		t.Fatalf("attack time %d ns", res.AttackNs)
	}
}

func TestRAAAgainstRBSGMatchesClosedForm(t *testing.T) {
	s := rbsg.MustNew(rbsg.Config{Lines: 256, Regions: 8, Interval: 4, Seed: 1})
	c := wear.MustNewController(bankCfg(2000), s)
	res := RAA(c, 3, pcm.Mixed, 0)
	if !res.Failed {
		t.Fatal("RAA did not fail the device")
	}
	// Closed form: E(n+1)ψ/(ψ+1) = 2000·33·4/5 = 52800.
	want := 52800.0
	got := float64(res.Writes)
	if got < want*0.9 || got > want*1.1 {
		t.Fatalf("RAA writes %v, closed form predicts %v", got, want)
	}
}

func TestRAAMaxWritesBound(t *testing.T) {
	c := wear.MustNewController(bankCfg(1<<30), wear.NewPassthrough(8))
	res := RAA(c, 0, pcm.Mixed, 500)
	if res.Failed || res.Writes != 500 {
		t.Fatalf("bounded RAA: %+v", res)
	}
}

func TestBPAKillsRBSG(t *testing.T) {
	s := rbsg.MustNew(rbsg.Config{Lines: 256, Regions: 8, Interval: 2, Seed: 2})
	c := wear.MustNewController(bankCfg(500), s)
	res := BPA(c, s.LineVulnerabilityFactor(), pcm.Mixed, 3, 50_000_000)
	if !res.Failed {
		t.Fatalf("BPA never failed the device in %d writes", res.Writes)
	}
}

func TestSweepHelpers(t *testing.T) {
	c := wear.MustNewController(bankCfg(1<<20), wear.NewPassthrough(16))
	w, _ := SweepZeros(c, 16)
	if w != 16 {
		t.Fatal("sweep zeros count")
	}
	for la := uint64(0); la < 16; la++ {
		if content, _ := c.Read(la); content != pcm.Zeros {
			t.Fatalf("LA %d not zeroed", la)
		}
	}
	SweepPattern(c, 16, 2)
	for la := uint64(0); la < 16; la++ {
		want := pcm.Zeros
		if la>>2&1 == 1 {
			want = pcm.Ones
		}
		if content, _ := c.Read(la); content != want {
			t.Fatalf("LA %d pattern %v, want %v", la, content, want)
		}
	}
}

// rbsgGroundTruthSequence computes, from scheme internals the attacker
// never sees, the true logical addresses physically preceding Li.
func rbsgGroundTruthSequence(s *rbsg.Scheme, li uint64, k int) []uint64 {
	n := s.LinesPerRegion()
	ia := s.Intermediate(li)
	region, off := ia/n, ia%n
	out := make([]uint64, 0, k)
	for i := 1; i <= k; i++ {
		prev := (off + n - uint64(i)%n) % n
		out = append(out, s.Randomizer().Decrypt(region*n+prev))
	}
	return out
}

// TestRTARBSGRecoversSequence is the paper's Section III-B end to end:
// the attacker, observing only write latencies, recovers the logical
// addresses physically adjacent to its target — then destroys one line.
func TestRTARBSGRecoversSequence(t *testing.T) {
	s := rbsg.MustNew(rbsg.Config{Lines: 256, Regions: 8, Interval: 4, Seed: 5})
	c := wear.MustNewController(bankCfg(500), s)
	a := &RTARBSG{
		Target: c,
		Lines:  256, Regions: 8, Interval: 4,
		Li:     17,
		SeqLen: 6,
		Oracle: func() bool { return c.Bank().Failed() },
	}
	res, err := a.Run()
	if err != nil {
		t.Fatalf("attack error: %v", err)
	}
	want := rbsgGroundTruthSequence(s, 17, 6)
	got := a.Sequence()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence[%d] = %d, ground truth %d (full: got %v want %v)",
				i, got[i], want[i], got, want)
		}
	}
	if !res.Failed {
		t.Fatal("attack did not wear out the target line")
	}
	t.Logf("RTA: %d writes (align %d, detect %d, wear %d), failed PA %d",
		res.Writes, a.AlignmentWrites, a.DetectionWrites, a.WearWrites, res.FailedPA)
}

// TestRTAFasterThanRAAOnRBSG is the paper's headline: RTA concentrates
// nearly every wear-phase write on one physical line, while RAA spreads
// them over a whole region.
func TestRTAFasterThanRAAOnRBSG(t *testing.T) {
	const endurance = 2000
	mk := func() *wear.Controller {
		return wear.MustNewController(bankCfg(endurance),
			rbsg.MustNew(rbsg.Config{Lines: 256, Regions: 8, Interval: 4, Seed: 6}))
	}
	raaRes := RAA(mk(), 17, pcm.Mixed, 0)

	c := mk()
	a := &RTARBSG{
		Target: c, Lines: 256, Regions: 8, Interval: 4, Li: 17, SeqLen: 31,
		Oracle: func() bool { return c.Bank().Failed() },
	}
	rtaRes, err := a.Run()
	if err != nil {
		t.Fatalf("attack error: %v", err)
	}
	if !rtaRes.Failed || !raaRes.Failed {
		t.Fatal("both attacks must succeed")
	}
	if rtaRes.Writes*2 >= raaRes.Writes {
		t.Fatalf("RTA (%d writes) should be far faster than RAA (%d writes)",
			rtaRes.Writes, raaRes.Writes)
	}
	t.Logf("RTA %d writes vs RAA %d writes: %.1fx faster",
		rtaRes.Writes, raaRes.Writes, float64(raaRes.Writes)/float64(rtaRes.Writes))
}

// spyTarget records the SR key difference of every round the attack
// lives through, so the test can compare the attacker's recovered values
// with ground truth.
type spyTarget struct {
	c    *wear.Controller
	s    *secref.OneLevel
	ds   []uint64
	last uint64
}

func (sp *spyTarget) observe() {
	kc, kp := sp.s.Keys()
	d := kc ^ kp
	if len(sp.ds) == 0 || sp.ds[len(sp.ds)-1] != d {
		sp.ds = append(sp.ds, d)
	}
	sp.last = sp.s.Rounds()
}

func (sp *spyTarget) Write(la uint64, content pcm.Content) uint64 {
	ns := sp.c.Write(la, content)
	sp.observe()
	return ns
}

func (sp *spyTarget) Read(la uint64) (pcm.Content, uint64) {
	return sp.c.Read(la)
}

// TestRTASRRecoversKeyDifference is Section III-D end to end: the
// attacker recovers keyc XOR keyp of one-level Security Refresh from swap
// latencies alone, round after round, and kills a line.
func TestRTASRRecoversKeyDifference(t *testing.T) {
	// ψ must comfortably exceed the address width for detection to fit in
	// one round (the paper's configurations have ψ=100 ≫ B=22).
	s := secref.MustNewOneLevel(256, 32, 0, nil)
	c := wear.MustNewController(bankCfg(12000), s)
	spy := &spyTarget{c: c, s: s}
	a := &RTASR{
		Target: spy,
		Lines:  256, Interval: 32,
		Li:     33,
		Oracle: func() bool { return c.Bank().Failed() },
	}
	res, err := a.Run()
	if err != nil {
		t.Fatalf("attack error: %v", err)
	}
	if !res.Failed {
		t.Fatal("attack did not fail the device")
	}
	if len(a.RecoveredDs) == 0 {
		t.Fatal("no key differences recovered")
	}
	// Every recovered D must appear in the spy's per-round ground truth.
	truth := make(map[uint64]bool, len(spy.ds))
	for _, d := range spy.ds {
		truth[d] = true
	}
	for i, d := range a.RecoveredDs {
		if !truth[d] {
			t.Fatalf("recovered D[%d] = %#x not among true round keys %v", i, d, spy.ds)
		}
	}
	t.Logf("recovered %d round key-differences over %d rounds; %d writes to failure",
		len(a.RecoveredDs), a.RoundsSeen, res.Writes)
}

// TestRTAFasterThanRAAOnSR: against one-level SR the timing attack pins a
// single physical line across rounds, while RAA's wear is scattered by
// the re-keying.
func TestRTAFasterThanRAAOnSR(t *testing.T) {
	const endurance = 12000
	mkC := func() (*wear.Controller, *secref.OneLevel) {
		s := secref.MustNewOneLevel(256, 32, 0, nil)
		return wear.MustNewController(bankCfg(endurance), s), s
	}
	cr, _ := mkC()
	raaRes := RAA(cr, 33, pcm.Mixed, 3_000_000)

	c, _ := mkC()
	a := &RTASR{
		Target: c, Lines: 256, Interval: 32, Li: 33,
		Oracle: func() bool { return c.Bank().Failed() },
	}
	rtaRes, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rtaRes.Failed {
		t.Fatal("RTA must fail the device")
	}
	if raaRes.Failed && rtaRes.Writes >= raaRes.Writes {
		t.Fatalf("RTA (%d writes) should beat RAA (%d writes)", rtaRes.Writes, raaRes.Writes)
	}
	t.Logf("RTA %d writes; RAA %d writes (failed=%v)", rtaRes.Writes, raaRes.Writes, raaRes.Failed)
}

// TestRTATwoLevelSR: the sub-region tracking attack of Section III-E
// wears out a sub-region far faster than RAA wears out anything.
func TestRTATwoLevelSR(t *testing.T) {
	cfg := secref.TwoLevelConfig{
		Lines: 1024, Regions: 8, InnerInterval: 4, OuterInterval: 8, Seed: 7,
	}
	s := secref.MustNewTwoLevel(cfg)
	c := wear.MustNewController(bankCfg(2000), s)
	a := &RTATwoLevelSR{
		Controller: c, Scheme: s, TargetRegion: 3, DetectFraction: 0.75,
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Fatal("two-level RTA did not fail the device")
	}
	// The failed line must be inside the pinned target sub-region.
	n := s.LinesPerRegion()
	if res.FailedPA/n != 3 {
		t.Fatalf("failed PA %d is outside target sub-region 3", res.FailedPA)
	}

	// RAA comparison on a fresh instance.
	s2 := secref.MustNewTwoLevel(cfg)
	c2 := wear.MustNewController(bankCfg(2000), s2)
	raaRes := RAA(c2, 5, pcm.Mixed, res.Writes*4)
	if raaRes.Failed && raaRes.Writes < res.Writes {
		t.Fatalf("RAA (%d) beat the timing attack (%d)", raaRes.Writes, res.Writes)
	}
	t.Logf("two-level RTA: %d writes (detect %d, hammer %d, %d rounds); RAA still alive after %d",
		res.Writes, a.DetectWrites, a.HammerWrites, a.OuterRounds, raaRes.Writes)
}

// TestSecurityRBSGResistsRTARBSG: the RBSG timing attack, run verbatim
// against Security RBSG, cannot pin a line — within a budget several
// times what sufficed against RBSG, no line fails.
func TestSecurityRBSGResistsRTARBSG(t *testing.T) {
	s := core.MustNew(core.Config{
		Lines: 256, Regions: 8, InnerInterval: 4,
		OuterInterval: 8, Stages: 4, Seed: 8,
	})
	c := wear.MustNewController(bankCfg(2000), s)
	a := &RTARBSG{
		Target: c, Lines: 256, Regions: 8, Interval: 4, Li: 17, SeqLen: 31,
		MaxWrites: 400_000, // ~6x the writes RTA needed against RBSG
		Oracle:    func() bool { return c.Bank().Failed() },
	}
	res, _ := a.Run() // errors are expected — the shadow model breaks
	if res.Failed {
		t.Fatalf("Security RBSG fell to the RBSG timing attack in %d writes", res.Writes)
	}
}

// TestSecurityRBSGOutlivesRBSGUnderRAA: same endurance, same attack —
// Security RBSG spreads the hammering across the whole bank instead of
// one region.
func TestSecurityRBSGOutlivesRBSGUnderRAA(t *testing.T) {
	// Endurance must dwarf the per-slot visit quantum ((n+1)·ψ_inner) for
	// the schemes to separate — at paper scale the ratio is ~190.
	const endurance = 5000
	rb := wear.MustNewController(bankCfg(endurance),
		rbsg.MustNew(rbsg.Config{Lines: 256, Regions: 8, Interval: 4, Seed: 9}))
	rbRes := RAA(rb, 3, pcm.Mixed, 0)

	sb := wear.MustNewController(bankCfg(endurance), core.MustNew(core.Config{
		Lines: 256, Regions: 8, InnerInterval: 4,
		OuterInterval: 8, Stages: 7, Seed: 9,
	}))
	sbRes := RAA(sb, 3, pcm.Mixed, 0)
	if !rbRes.Failed || !sbRes.Failed {
		t.Fatal("both must eventually fail")
	}
	if sbRes.Writes <= rbRes.Writes*2 {
		t.Fatalf("Security RBSG (%d writes) should far outlive RBSG (%d writes) under RAA",
			sbRes.Writes, rbRes.Writes)
	}
	t.Logf("RAA to failure: RBSG %d writes, Security RBSG %d writes (%.1fx)",
		rbRes.Writes, sbRes.Writes, float64(sbRes.Writes)/float64(rbRes.Writes))
}

package attack

import (
	"errors"
	"fmt"

	"securityrbsg/internal/pcm"
)

// RTATwoLevelSRExact is the Remapping Timing Attack against two-level
// Security Refresh with *no oracle at all* — the attacker sees only its
// own writes and their latencies, upgrading RTATwoLevelSR's
// paper-accounting reproduction to a full end-to-end demonstration.
//
// Key observations that make the exact attack work:
//
//   - Outer refresh steps fire on a schedule the attacker knows exactly:
//     one step every ψ_outer writes, counted from boot, with the round
//     wrapping every N steps. So the attacker knows, for every one of its
//     writes, whether an outer step fired and which logical address
//     (CRP value) it processed.
//
//   - An outer step processing address k swaps the *data* of k and
//     k XOR D (D = keyc XOR keyp of the outer level) if the pair is
//     still pending. After sweeping the memory with ALL-0/ALL-1 keyed by
//     logical-address bit j, the swap latency reveals whether bit j of k
//     and of its partner agree (500/2250 ns) or differ (1375 ns), i.e.
//     one bit of D — once per outer step, hundreds of times per round.
//     Inner refresh steps occasionally land on the same write and distort
//     one observation; since D is constant within the round, a majority
//     vote over many steps absorbs the noise. Impossible readings
//     (e.g. a 500 ns "both ALL-0" swap when bit j of k is 1) abstain.
//
//   - Sub-region co-membership is XOR-invariant: the logical group
//     {la : la >> log2(N/R) == c} always occupies one sub-region
//     (two mid-round). Only *which* physical sub-region changes per
//     round, by the high bits of D — exactly the bits the votes recover.
//     Tracking is therefore relative: flood group c this round, group
//     c XOR high(D') next round, and the same physical lines keep
//     absorbing the traffic.
//
// Each round the attacker spends log2(R) pattern sweeps plus the voting
// writes on detection — the paper's (N/2..N)·log2 R accounting — and
// floods the tracked group for the remainder, pinning one line per inner
// refresh round.
type RTATwoLevelSRExact struct {
	// Target is the memory under attack.
	Target Target
	// Lines, Regions, InnerInterval, OuterInterval mirror the victim's
	// (public) configuration.
	Lines, Regions, InnerInterval, OuterInterval uint64
	// Timing is the public device timing.
	Timing pcm.Timing
	// Group is the initial logical group to flood (its physical
	// sub-region this round becomes the pinned target). Defaults to 0.
	Group uint64
	// VotesPerBit is how many classified outer-step observations to
	// gather per key bit (default 9; must be odd).
	VotesPerBit int
	// MaxWrites bounds the attack (0 = unbounded); Oracle stops it when
	// true (device failed).
	MaxWrites uint64
	Oracle    func() bool
	// Debug, when set, receives diagnostic trace lines.
	Debug func(format string, args ...any)

	// shadow state
	n          uint64 // lines per sub-region
	lowBits    uint   // log2(n)
	cnt        uint64 // writes since the last outer step
	crp        uint64 // outer CRP in [0, N]; Lines means "round complete"
	roundsSeen uint64 // outer CRP wraps observed since boot
	probeSeq   uint64 // rotates the voting probe address across rounds

	res Result
	// Diagnostics
	DetectWrites uint64
	FloodWrites  uint64
	Rounds       uint64
	// RecoveredHighDs lists the per-round recovered high bits of
	// keyc XOR keyp (shifted down), for tests to check against truth.
	RecoveredHighDs []uint64
}

// Run executes the attack until the device fails or the budget is spent.
func (a *RTATwoLevelSRExact) Run() (Result, error) {
	if a.Lines == 0 || a.Lines&(a.Lines-1) != 0 {
		return Result{}, fmt.Errorf("attack: lines must be a power of two, got %d", a.Lines)
	}
	if a.Regions == 0 || a.Lines%a.Regions != 0 || a.InnerInterval == 0 || a.OuterInterval == 0 {
		return Result{}, fmt.Errorf("attack: bad SR parameters")
	}
	if a.Timing == (pcm.Timing{}) {
		a.Timing = pcm.DefaultTiming
	}
	if a.VotesPerBit <= 0 {
		a.VotesPerBit = 9
	}
	if a.VotesPerBit%2 == 0 {
		a.VotesPerBit++
	}
	a.n = a.Lines / a.Regions
	for v := a.n; v > 1; v >>= 1 {
		a.lowBits++
	}
	a.crp = a.Lines // boot state: previous round complete

	group := a.Group % a.Regions
	for {
		d, err := a.detectRoundHighD()
		if err != nil {
			return a.res, a.finish(err)
		}
		if d != unknownD {
			group ^= d
		}
		a.RecoveredHighDs = append(a.RecoveredHighDs, d)
		a.Rounds++
		if err := a.floodUntilRoundEnd(group); err != nil {
			return a.res, a.finish(err)
		}
	}
}

// unknownD marks a round whose key difference could not be recovered
// before the round rolled over; the attacker keeps flooding its previous
// group (best effort) and re-synchronizes next round.
const unknownD = ^uint64(0)

func (a *RTATwoLevelSRExact) finish(err error) error {
	if errors.Is(err, errStopped) {
		return nil
	}
	return err
}

// write issues one attacker write, advances the outer shadow, and
// returns (extra latency, outer step fired, CRP value it processed).
func (a *RTATwoLevelSRExact) write(la uint64, c pcm.Content) (extra uint64, stepped bool, stepLA uint64, err error) {
	if a.Oracle != nil && a.Oracle() {
		a.res.Failed = true
		return 0, false, 0, errStopped
	}
	if a.MaxWrites > 0 && a.res.Writes >= a.MaxWrites {
		return 0, false, 0, errStopped
	}
	ns := a.Target.Write(la, c)
	a.res.Writes++
	a.res.AttackNs += ns
	extra = ns - a.Timing.WriteNs(c)
	a.cnt++
	if a.cnt >= a.OuterInterval {
		a.cnt = 0
		if a.crp == a.Lines {
			a.crp = 0
			a.roundsSeen++
		}
		stepLA = a.crp
		a.crp++
		stepped = true
	}
	return extra, stepped, stepLA, nil
}

// writeN issues k consecutive writes of c to la (1 ≤ k ≤ OuterInterval −
// cnt, so only the k-th write can carry an outer step) and advances the
// outer shadow in lock-step. Batch-boundary Oracle/budget semantics are
// as in RTARBSG.writeN — exact for the device-failure oracle. Extra
// latencies are not reported: its only caller (the flood phase) never
// inspects them; the detection phases, which do, stay write-by-write.
func (a *RTATwoLevelSRExact) writeN(la uint64, c pcm.Content, k uint64) error {
	bt, batched := a.Target.(BatchTarget)
	if !batched || k < 2 {
		for j := uint64(0); j < k; j++ {
			if _, _, _, err := a.write(la, c); err != nil {
				return err
			}
		}
		return nil
	}
	if a.Oracle != nil && a.Oracle() {
		a.res.Failed = true
		return errStopped
	}
	want := k
	if a.MaxWrites > 0 {
		if a.res.Writes >= a.MaxWrites {
			return errStopped
		}
		if rem := a.MaxWrites - a.res.Writes; want > rem {
			want = rem
		}
	}
	var issued uint64
	var err error
	for issued < want {
		got, ns := bt.WriteRun(la, c, want-issued, a.Oracle != nil, nil)
		issued += got
		a.res.Writes += got
		a.res.AttackNs += ns
		if issued == want {
			break
		}
		if a.Oracle() {
			a.res.Failed = true
			err = errStopped
			break
		}
	}
	a.cnt += issued
	if a.cnt >= a.OuterInterval {
		if a.cnt > a.OuterInterval {
			panic(fmt.Errorf("attack: writeN(%d) crossed an outer step", k))
		}
		a.cnt = 0
		if a.crp == a.Lines {
			a.crp = 0
			a.roundsSeen++
		}
		a.crp++
	}
	if err == nil && issued < k {
		err = errStopped // budget exhausted, like the naive precheck
	}
	return err
}

// detectRoundHighD waits for the round boundary, then recovers the high
// log2(R) bits of this round's D by pattern sweeps and majority-voted
// outer-swap latencies.
func (a *RTATwoLevelSRExact) detectRoundHighD() (uint64, error) {
	start := a.res.Writes
	defer func() { a.DetectWrites += a.res.Writes - start }()

	// Advance to the round boundary so D stays stable below us. The
	// waiting writes rotate across the whole space so they add no
	// hotspot of their own.
	for w := uint64(0); a.crp != a.Lines && a.crp != 0; w++ {
		if _, _, _, err := a.write(w%a.Lines, pcm.Zeros); err != nil {
			return 0, err
		}
	}
	epoch := a.roundsSeen
	if a.crp == a.Lines {
		epoch++ // the detected round begins on the next step's re-key
	}
	var d uint64
	bits := uint(0)
	for v := a.Regions; v > 1; v >>= 1 {
		bits++
	}
	for j := a.lowBits; j < a.lowBits+bits; j++ {
		if a.roundsSeen > epoch {
			// The round rolled over mid-detection (pathological no-swap
			// runs stretched the votes): this round's D is lost.
			if a.Debug != nil {
				a.Debug("round lost at bit %d: roundsSeen=%d epoch=%d crp=%d", j, a.roundsSeen, epoch, a.crp)
			}
			return unknownD, nil
		}
		// Pattern sweep keyed by logical bit j. The first sweep of the
		// round rewrites everything (flooding left ALL-1 debris); later
		// sweeps only touch lines whose pattern changes between bits —
		// the paper's N/2 accounting.
		for la := uint64(0); la < a.Lines; la++ {
			if j > a.lowBits && patternOf(la, j) == patternOf(la, j-1) {
				continue
			}
			if _, _, _, err := a.write(la, patternOf(la, j)); err != nil {
				return 0, err
			}
		}
		// Vote on outer-step swap latencies through a single probe
		// address. All probe writes land in one sub-region, so its inner
		// refresh counter is the only inner source of latency — and it
		// ticks once per probe write, making inner fires fully
		// predictable once their phase is calibrated. Votes are taken
		// only on collision-free outer steps, so every classified extra
		// is a pure outer swap. The probe rotates per round to avoid
		// becoming a wear hotspot of its own.
		probe := (a.probeSeq * 977) % a.Lines
		a.probeSeq++
		probeContent := patternOf(probe, j)

		// Calibrate the inner phase: an extra on a non-outer probe write
		// can only be an inner fire, which pins the sub-region counter to
		// zero. Anchoring just after an outer step guarantees (for
		// ψi < ψo) that at least one fire lands on a step-free write; if
		// fires hide under the outer comb anyway (ψo | ψi alignments), a
		// single off-group slip write shifts them out.
		innerCnt := uint64(0)
		calibrated := false
		for attempt := 0; attempt < 4 && !calibrated; attempt++ {
			// Move to just after an outer step.
			for {
				_, stepped, _, err := a.write(probe, probeContent)
				if err != nil {
					return 0, err
				}
				if stepped {
					break
				}
			}
			// Budget: inner refresh steps can run through up to n/2
			// consecutive no-swap (already-refreshed) addresses whose
			// fires are invisible; ride the longest such run out.
			scan := a.InnerInterval * (a.n/2 + 2*a.OuterInterval)
			for w := uint64(0); w < scan; w++ {
				extra, stepped, _, err := a.write(probe, probeContent)
				if err != nil {
					return 0, err
				}
				if !stepped && extra > 0 {
					innerCnt = 0 // just fired: counter known exactly
					calibrated = true
					break
				}
			}
			if !calibrated {
				// Fires are hiding under outer steps: slip the combs
				// apart and retry.
				off := probe ^ (1 << a.lowBits)
				if _, _, _, err := a.write(off, patternOf(off, j)); err != nil {
					return 0, err
				}
			}
		}
		if !calibrated {
			return 0, fmt.Errorf("attack: could not calibrate the inner refresh phase for bit %d", j)
		}
		// If the combs are locked — ψi divides ψo and every upcoming
		// outer step coincides with an inner fire — slip them apart with
		// writes to a different logical group: they advance the outer
		// schedule without ticking the probe's sub-region (groups never
		// share a sub-region under an XOR mapping).
		if calibrated && a.OuterInterval%a.InnerInterval == 0 {
			off := probe ^ (1 << a.lowBits)
			offContent := patternOf(off, j)
			for (a.OuterInterval-a.cnt)%a.InnerInterval == (a.InnerInterval-innerCnt%a.InnerInterval)%a.InnerInterval {
				if _, _, _, err := a.write(off, offContent); err != nil {
					return 0, err
				}
			}
		}
		votes0, votes1 := 0, 0
		deadline := 64 * uint64(a.VotesPerBit) * a.OuterInterval
		for w := uint64(0); w < deadline && votes0+votes1 < a.VotesPerBit; w++ {
			extra, stepped, k, err := a.write(probe, probeContent)
			if err != nil {
				return 0, err
			}
			innerCnt++
			innerFires := innerCnt >= a.InnerInterval
			if innerFires {
				innerCnt = 0
			}
			if !stepped {
				if extra > 0 && !innerFires {
					// Phase slipped (the probe was remapped mid-round);
					// resynchronize on this observed fire.
					innerCnt = 0
				}
				continue
			}
			if innerFires || extra == 0 {
				continue // collided or no swap: abstain
			}
			b := k >> j & 1
			same := 2 * (a.Timing.ReadNs + a.Timing.WriteNs(pcm.Zeros))
			sameHi := 2 * (a.Timing.ReadNs + a.Timing.WriteNs(pcm.Ones))
			mixed := 2*a.Timing.ReadNs + a.Timing.WriteNs(pcm.Zeros) + a.Timing.WriteNs(pcm.Ones)
			switch {
			case b == 0 && extra == same, b == 1 && extra == sameHi:
				votes0++ // partner matches k's bit: D_j = 0
			case extra == mixed:
				votes1++
			default:
				// Unexpected value: an unmodeled collision; abstain.
			}
		}
		// Zero classifiable swaps over hundreds of steps means the key
		// difference itself is (almost surely) zero on every bit — a
		// no-op round — so 0 is both the fallback and the right answer.
		if votes1 > votes0 {
			d |= 1 << (j - a.lowBits)
		}
	}
	return d, nil
}

// floodUntilRoundEnd funnels every remaining write of the round into the
// tracked logical group, one inner refresh round per member so the inner
// SR pins each on a single physical line.
func (a *RTATwoLevelSRExact) floodUntilRoundEnd(group uint64) error {
	start := a.res.Writes
	defer func() { a.FloodWrites += a.res.Writes - start }()
	stint := a.n * a.InnerInterval
	for i := uint64(0); ; i++ {
		la := group<<a.lowBits | (i % a.n)
		// The shadow CRP only changes on outer steps, which batch to the
		// end of each outer epoch; check the round boundary there.
		for w := uint64(0); w < stint; {
			k := a.OuterInterval - a.cnt
			if rem := stint - w; k > rem {
				k = rem
			}
			if err := a.writeN(la, pcm.Ones, k); err != nil {
				return err
			}
			w += k
			if a.crp == a.Lines {
				return nil // round complete: re-detect before continuing
			}
		}
	}
}

package attack

import (
	"errors"
	"fmt"

	"securityrbsg/internal/pcm"
	"securityrbsg/internal/secref"
	"securityrbsg/internal/wear"
)

// RTASR is the Remapping Timing Attack against one-level Security Refresh
// (Section III-D of the paper), implemented exactly: the attacker sees
// only logical writes and latencies.
//
// The attacker knows N, the refresh interval ψ, the device timing and the
// boot state (a fresh round begins at the first step). It maintains a
// shadow CRP — exact, because every write is the attacker's own and a
// refresh step fires every ψ of them — and recovers the round's key
// difference D = keyc XOR keyp one bit per pattern sweep:
//
//   - a refresh step swaps logical line `crp` with its pair `crp XOR D`;
//   - after sweeping ALL-0/ALL-1 keyed by address bit j, the swap latency
//     reveals whether the two swapped lines' bit-j values agree
//     (500 / 2250 ns — both ALL-0 / both ALL-1) or differ (1375 ns),
//     and [crp]_j XOR [pair]_j = D_j.
//
// Knowing D, the attacker follows the physical line under a chosen
// logical address across swaps within the round, and re-detects D each
// round, so nearly every attack write lands on the same physical line.
type RTASR struct {
	// Target is the memory under attack.
	Target Target
	// Lines is the SR domain size N; Interval is ψ (public).
	Lines, Interval uint64
	// Timing is the public device timing.
	Timing pcm.Timing
	// Li is the logical address whose physical line is worn out. Must be
	// nonzero (address 0 is the attacker's probe line).
	Li uint64
	// MaxWrites bounds the attack (0 = unbounded); Oracle stops it when
	// true (device failed).
	MaxWrites uint64
	Oracle    func() bool

	// shadow state
	crp        uint64 // shadow CRP in [0, N]; N+... wraps handled
	cnt        uint64 // writes since last step
	roundKnown bool   // D recovered for the current round
	d          uint64 // keyc XOR keyp of the current round

	res Result
	// Diagnostics
	AlignWrites  uint64
	DetectWrites uint64
	WearWrites   uint64
	RoundsSeen   uint64
	// RecoveredDs records every recovered per-round key difference, for
	// tests to check against ground truth.
	RecoveredDs []uint64
}

// Run executes the attack.
func (a *RTASR) Run() (Result, error) {
	if a.Lines == 0 || a.Lines&(a.Lines-1) != 0 || a.Interval == 0 {
		return Result{}, fmt.Errorf("attack: bad SR parameters N=%d ψ=%d", a.Lines, a.Interval)
	}
	if a.Timing == (pcm.Timing{}) {
		a.Timing = pcm.DefaultTiming
	}
	if a.Li == 0 || a.Li >= a.Lines {
		return Result{}, fmt.Errorf("attack: Li must be in [1, N), got %d", a.Li)
	}
	a.crp = a.Lines // boot state: previous round complete

	if err := a.align(); err != nil {
		return a.res, a.finish(err)
	}
	a.AlignWrites = a.res.Writes
	err := a.wearLoop()
	return a.res, a.finish(err)
}

func (a *RTASR) finish(err error) error {
	if errors.Is(err, errStopped) {
		return nil
	}
	return err
}

func (a *RTASR) write(la uint64, c pcm.Content) (extraNs uint64, err error) {
	if a.Oracle != nil && a.Oracle() {
		a.res.Failed = true
		return 0, errStopped
	}
	if a.MaxWrites > 0 && a.res.Writes >= a.MaxWrites {
		return 0, errStopped
	}
	ns := a.Target.Write(la, c)
	a.res.Writes++
	a.res.AttackNs += ns
	return ns - a.Timing.WriteNs(c), nil
}

// tick advances the shadow by one write; it returns whether a refresh step
// fired and the logical address it processed (the CRP value before the
// advance). newRound reports that the step began a fresh round (keys
// rotated just before processing address 0).
func (a *RTASR) tick() (stepped bool, la uint64, newRound bool) {
	return a.tickN(1)
}

// tickN advances the shadow by k writes at once, where at most the k-th
// can reach the interval (k ≤ Interval − cnt).
func (a *RTASR) tickN(k uint64) (stepped bool, la uint64, newRound bool) {
	a.cnt += k
	if a.cnt < a.Interval {
		return false, 0, false
	}
	if a.cnt > a.Interval {
		panic(fmt.Errorf("attack: tickN(%d) crossed a refresh step", k))
	}
	a.cnt = 0
	if a.crp == a.Lines {
		a.crp = 0
		newRound = true
		a.roundKnown = false
		a.RoundsSeen++
	}
	la = a.crp
	a.crp++
	return true, la, newRound
}

// writeN issues k consecutive writes of c to la (1 ≤ k ≤ Interval − cnt,
// so only the k-th write can carry a refresh step) and advances the
// shadow in lock-step, returning the last write's extra latency and the
// step it fired, if any. Batch-boundary Oracle/budget semantics are the
// same as RTARBSG.writeN's (exact for the device-failure oracle).
func (a *RTASR) writeN(la uint64, c pcm.Content, k uint64) (extra uint64, stepped bool, stepLA uint64, newRound bool, err error) {
	bt, batched := a.Target.(BatchTarget)
	if !batched || k < 2 {
		for j := uint64(0); j < k; j++ {
			e, werr := a.write(la, c)
			if werr != nil {
				return 0, false, 0, false, werr
			}
			extra = e
			if s, sla, nr := a.tick(); s {
				stepped, stepLA, newRound = true, sla, nr
			}
		}
		return extra, stepped, stepLA, newRound, nil
	}
	if a.Oracle != nil && a.Oracle() {
		a.res.Failed = true
		return 0, false, 0, false, errStopped
	}
	want := k
	if a.MaxWrites > 0 {
		if a.res.Writes >= a.MaxWrites {
			return 0, false, 0, false, errStopped
		}
		if rem := a.MaxWrites - a.res.Writes; want > rem {
			want = rem
		}
	}
	var issued uint64
	for issued < want {
		// Keep only an anomaly that landed on the run's final write: the
		// naive loop reads the LAST write's extra, not a mid-run one.
		var evIdx, evNs uint64
		sawEvent := false
		got, ns := bt.WriteRun(la, c, want-issued, a.Oracle != nil, func(i, ns uint64) bool {
			evIdx, evNs, sawEvent = i, ns, true
			return true
		})
		issued += got
		a.res.Writes += got
		a.res.AttackNs += ns
		extra = 0
		if sawEvent && evIdx == got-1 {
			extra = evNs - a.Timing.WriteNs(c)
		}
		if issued == want {
			break
		}
		if a.Oracle() {
			a.res.Failed = true
			err = errStopped
			break
		}
	}
	stepped, stepLA, newRound = a.tickN(issued)
	if err == nil && issued < k {
		err = errStopped // budget exhausted, like the naive precheck
	}
	return extra, stepped, stepLA, newRound, err
}

// align is Steps 1–2: zero everything, then hammer address 0 with ALL-1
// until the step that swaps it (read×2 + SET + RESET) is observed, which
// pins the shadow CRP to 1 in a fresh round.
func (a *RTASR) align() error {
	for la := uint64(0); la < a.Lines; la++ {
		if _, err := a.write(la, pcm.Zeros); err != nil {
			return err
		}
		a.tick()
	}
	swapWithOnes := 2*a.Timing.ReadNs + a.Timing.SetNs + a.Timing.ResetNs
	deadline := 3 * a.Lines * a.Interval
	for i := uint64(0); i < deadline; {
		// One inter-step epoch per iteration: only the k-th write can
		// fire a refresh step, so the epoch batches into one writeN.
		k := a.Interval - a.cnt
		if k > deadline-i {
			k = deadline - i
		}
		extra, stepped, la, _, err := a.writeN(0, pcm.Ones, k)
		if err != nil {
			return err
		}
		i += k
		if !stepped {
			continue
		}
		if la == 0 && extra >= swapWithOnes {
			// Address 0 just swapped with its (ALL-0) pair; the shadow
			// CRP is confirmed at 1. Reset its content for detection.
			if _, err := a.write(0, pcm.Zeros); err != nil {
				return err
			}
			a.tick()
			return nil
		}
	}
	return errors.New("attack: SR alignment failed — never observed address 0's swap")
}

// detectD recovers D = keyc XOR keyp for the current round, one bit per
// pattern sweep (Steps 3–5). It must finish before the round ends; the
// caller restarts it on a round boundary. Returns errRoundEnded if the
// round rolled over mid-detection.
var errRoundEnded = errors.New("round ended during detection")

func (a *RTASR) detectD() error {
	bits := addressBits(a.Lines)
	start := a.res.Writes
	var d uint64
	for j := uint(0); j < bits; j++ {
		// Step 3: pattern keyed by logical address bit j.
		for la := uint64(0); la < a.Lines; la++ {
			if _, err := a.write(la, patternOf(la, j)); err != nil {
				return err
			}
			if _, _, nr := a.tick(); nr {
				return errRoundEnded
			}
		}
		// Step 4: hammer address 0 (pattern ALL-0) until a step swaps.
		// classified only changes on stepped writes, which batch to the
		// end of each inter-step epoch.
		classified := false
		for !classified {
			extra, stepped, _, nr, err := a.writeN(0, pcm.Zeros, a.Interval-a.cnt)
			if err != nil {
				return err
			}
			if nr {
				return errRoundEnded
			}
			if !stepped || extra == 0 {
				continue // no step, or the step's pair was already done
			}
			mixedSwap := 2*a.Timing.ReadNs + a.Timing.SetNs + a.Timing.ResetNs
			sameSwapLo := 2 * (a.Timing.ReadNs + a.Timing.ResetNs)
			sameSwapHi := 2 * (a.Timing.ReadNs + a.Timing.SetNs)
			switch extra {
			case mixedSwap:
				d |= 1 << j
				classified = true
			case sameSwapLo, sameSwapHi:
				classified = true
			default:
				// Overlapping latencies (shouldn't happen in one-level
				// SR); keep waiting for a clean observation.
			}
		}
	}
	a.d = d
	a.roundKnown = true
	a.RecoveredDs = append(a.RecoveredDs, d)
	a.DetectWrites += a.res.Writes - start
	return nil
}

// wearLoop is the wear-out phase: track the logical address occupying the
// pinned physical line through swaps and rounds, re-detecting D each round.
func (a *RTASR) wearLoop() error {
	// Recover D for the current round first.
	for {
		err := a.detectD()
		if err == nil {
			break
		}
		if !errors.Is(err, errRoundEnded) {
			return err
		}
	}
	// Pin the physical line currently under Li.
	occ := a.Li
	for {
		pair := occ ^ a.d
		// If the step covering {occ, pair} has not run yet this round,
		// hammer occ until it does; the same physical line is then under
		// the pair (the swap moves the pair's data onto it).
		swapAt := occ
		if pair < occ {
			swapAt = pair
		}
		ended := false
		if pair != occ {
			// Hammer occ until the swap step passes (it may already have
			// passed if detection consumed steps beyond it). The shadow CRP
			// only changes on stepped writes, so each epoch batches whole.
			for a.crp <= swapAt {
				_, _, _, nr, err := a.writeN(occ, pcm.Ones, a.Interval-a.cnt)
				if err != nil {
					return err
				}
				if nr {
					ended = true
					break
				}
			}
			if !ended {
				occ = pair
			}
		}
		// Keep hammering the occupant until the round ends; each line is
		// swapped at most once per round, so it stays on the pinned
		// physical line.
		for !ended {
			_, _, _, nr, err := a.writeN(occ, pcm.Ones, a.Interval-a.cnt)
			if err != nil {
				return err
			}
			ended = nr
		}
		// Round rolled over: recover the fresh D, then continue on the
		// same physical line (its occupant is unchanged at round start).
		a.WearWrites = a.res.Writes - a.AlignWrites - a.DetectWrites
		for {
			err := a.detectD()
			if err == nil {
				break
			}
			if !errors.Is(err, errRoundEnded) {
				return err
			}
		}
	}
}

// RTATwoLevelSR is the Remapping Timing Attack against two-level Security
// Refresh (Section III-E), reproduced at the paper's level of detail: the
// paper costs the per-round detection of the outer key's region bits at
// (N/2..N)·log2(R) writes but gives no step-level algorithm (the bit
// recovery itself is demonstrated exactly by RTASR at one level). This
// implementation issues that exact write traffic against the real
// simulator — pattern sweeps for detection, then hammering of the logical
// addresses currently mapping into the pinned target sub-region — using a
// scheme oracle only to stand in for the recovered region bits. The write
// stream, and therefore the wear and the lifetime, match the paper's
// attack model.
type RTATwoLevelSR struct {
	// Controller is the memory under attack; Scheme must be its TwoLevel
	// instance (the oracle for recovered outer-region bits).
	Controller *wear.Controller
	Scheme     *secref.TwoLevel
	// TargetRegion is the sub-region to wear out.
	TargetRegion uint64
	// DetectFraction c in [0.5, 1]: detection costs c·N·log2(R) writes per
	// outer round (the paper averages five random keys; the key value
	// decides where in the range the cost lands).
	DetectFraction float64
	// MaxWrites bounds the attack (0 = unbounded).
	MaxWrites uint64

	res Result
	// Diagnostics
	DetectWrites uint64
	HammerWrites uint64
	OuterRounds  uint64
}

// Run executes the attack until a line fails or the budget is exhausted.
func (a *RTATwoLevelSR) Run() (Result, error) {
	cfg := a.Scheme.Config()
	n := a.Scheme.LinesPerRegion()
	logR := addressBits(cfg.Regions)
	if a.DetectFraction == 0 {
		a.DetectFraction = 0.75
	}
	detectPerRound := uint64(a.DetectFraction * float64(cfg.Lines) * float64(logR))
	oracle := failOracle(a.Controller)

	// The set of logical addresses currently mapping into the target
	// sub-region is one aligned high-bits slice of the logical space,
	// XOR-shifted by the outer key; the oracle supplies the shift the
	// detection phase would recover. The scan rotates so successive
	// stints hammer different addresses (the inner SR then pins each to
	// a fresh line).
	scan := uint64(0)
	nextRegionLA := func() uint64 {
		for k := uint64(0); k < cfg.Lines; k++ {
			la := (scan + k) % cfg.Lines
			if a.Scheme.Intermediate(la)/n == a.TargetRegion {
				scan = la + 1
				return la
			}
		}
		panic("attack: outer translation lost the target sub-region") // unreachable: bijection
	}

	done := func() bool {
		if pa, ok := oracle(); ok {
			a.res.Failed = true
			a.res.FailedPA = pa
			return true
		}
		return a.MaxWrites > 0 && a.res.Writes >= a.MaxWrites
	}

	outerRound := a.Scheme.Outer().WritesPerRound()
	for !done() {
		a.OuterRounds++
		// Detection traffic: pattern sweeps across the whole space (the
		// real RTA's Step-3 sweeps), costed per the paper.
		var spent uint64
		for spent < detectPerRound && !done() {
			la := spent % cfg.Lines
			ns := a.Controller.Write(la, patternOf(la, uint(spent/cfg.Lines)))
			a.res.Writes++
			a.res.AttackNs += ns
			spent++
		}
		a.DetectWrites += spent
		// Hammer phase: cycle through the sub-region's current logical
		// addresses, one stint at a time, for the rest of the outer
		// round. Each stint is one inner round of writes, long enough for
		// the inner SR to pin the address to one physical line; when the
		// outer level moves an address away mid-stint the attacker
		// re-resolves a fresh one.
		stint := n * cfg.InnerInterval
		var hammered uint64
		for hammered+spent < outerRound && !done() {
			la := nextRegionLA()
			for w := uint64(0); w < stint && !done(); {
				if a.Scheme.Intermediate(la)/n != a.TargetRegion {
					break
				}
				// Intermediate(la) is frozen until the next outer step, so
				// the stint batches in outer-epoch chunks through WriteRun
				// (stopOnFail keeps the failure-time accounting exact; the
				// budget clamp mirrors the per-write done() check).
				k := a.Scheme.WritesToNextOuterStep()
				if rem := stint - w; k > rem {
					k = rem
				}
				if a.MaxWrites > 0 {
					if rem := a.MaxWrites - a.res.Writes; k > rem {
						k = rem
					}
				}
				issued, ns := a.Controller.WriteRun(la, pcm.Ones, k, true, nil)
				a.res.Writes += issued
				a.res.AttackNs += ns
				hammered += issued
				w += issued
			}
		}
		a.HammerWrites += hammered
	}
	return a.res, nil
}

// Package feistel implements the address randomizers used by the
// wear-leveling schemes in the paper:
//
//   - a multi-stage balanced Feistel network with the cubing round function
//     L' = R XOR (L XOR K)^3 — the construction RBSG uses statically (keys
//     fixed at boot) and Security RBSG uses dynamically (keys re-drawn every
//     remapping round, stage count = security level);
//   - a random invertible binary matrix (RIBM) over GF(2), the alternative
//     static randomizer mentioned by the RBSG paper;
//   - a cycle-walking wrapper that restricts any of the above to an
//     address space whose size is not a power of two.
//
// All permutations are bijections on [0, 2^B) for an even bit width B, and
// every construction exposes both directions because the schemes need
// ENC to place data and DEC to answer "which logical address lands here".
package feistel

import (
	"errors"
	"fmt"

	"securityrbsg/internal/stats"
)

// Network is a balanced multi-stage Feistel network over B-bit values.
// The zero value is not usable; construct with New or Random.
type Network struct {
	bits uint   // total width B (even)
	half uint   // B/2
	mask uint64 // low-half mask
	keys []uint64
}

// New builds a network over bits-wide values (bits must be even and in
// [2, 62]) with one key per stage. Keys are truncated to the half width.
func New(bits uint, keys []uint64) (*Network, error) {
	if bits < 2 || bits > 62 || bits%2 != 0 {
		return nil, fmt.Errorf("feistel: width must be even and in [2,62], got %d", bits)
	}
	if len(keys) == 0 {
		return nil, errors.New("feistel: need at least one stage key")
	}
	n := &Network{bits: bits, half: bits / 2, mask: (1 << (bits / 2)) - 1}
	n.keys = make([]uint64, len(keys))
	for i, k := range keys {
		n.keys[i] = k & n.mask
	}
	return n, nil
}

// Random builds a network with `stages` uniformly random keys drawn from rng.
func Random(bits uint, stages int, rng *stats.RNG) (*Network, error) {
	if stages <= 0 {
		return nil, errors.New("feistel: need at least one stage")
	}
	keys := make([]uint64, stages)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	return New(bits, keys)
}

// MustRandom is Random that panics on error; for literal configurations.
func MustRandom(bits uint, stages int, rng *stats.RNG) *Network {
	n, err := Random(bits, stages, rng)
	if err != nil {
		panic(err)
	}
	return n
}

// RekeyRandom redraws every stage key in place from rng, consuming
// exactly the draws Random would — a Network rekeyed this way is
// indistinguishable from a freshly constructed one, so per-round key
// redraws (Security RBSG's DFN, the lifetime estimators) need no
// allocation and leave deterministic RNG streams untouched.
func (n *Network) RekeyRandom(rng *stats.RNG) {
	for i := range n.keys {
		n.keys[i] = rng.Uint64() & n.mask
	}
}

// SetStages resizes the key schedule to stages entries in place,
// reusing the existing array when it is large enough. The resized keys
// are all zero until the next RekeyRandom; callers that change the
// security level mid-stream rekey immediately after, so the RNG draw
// sequence stays exactly one draw per stage — indistinguishable from a
// fresh Random construction at the new stage count. Wrappers holding
// the Network by pointer (Walker, the schemes' dfnW) see the change
// without rebuilding.
func (n *Network) SetStages(stages int) error {
	if stages <= 0 {
		return errors.New("feistel: need at least one stage")
	}
	if stages <= cap(n.keys) {
		n.keys = n.keys[:stages]
		for i := range n.keys {
			n.keys[i] = 0
		}
	} else {
		n.keys = make([]uint64, stages)
	}
	return nil
}

// MustSetStages is SetStages that panics on error; for call sites that
// validated the stage count already (e.g. core.Scheme.SetStages).
func (n *Network) MustSetStages(stages int) {
	if err := n.SetStages(stages); err != nil {
		panic(err)
	}
}

// Bits returns the permutation width B.
func (n *Network) Bits() uint { return n.bits }

// Stages returns the number of Feistel stages.
func (n *Network) Stages() int { return len(n.keys) }

// Keys returns a copy of the per-stage keys (each half-width bits).
func (n *Network) Keys() []uint64 {
	return append([]uint64(nil), n.keys...)
}

// Domain returns the permutation domain size 2^B.
func (n *Network) Domain() uint64 { return 1 << n.bits }

// round is the paper's round function: the cube of (l XOR k) truncated to
// the half width. Truncation commutes with uint64 overflow, so the plain
// three-multiply product is exact mod 2^half.
func (n *Network) round(l, k uint64) uint64 {
	x := (l ^ k) & n.mask
	return (x * x * x) & n.mask
}

// Encrypt permutes x (must be < 2^B). Each stage maps (L, R) to
// (R XOR F(L, K), L), matching Fig 7(a) of the paper.
func (n *Network) Encrypt(x uint64) uint64 {
	l := x >> n.half
	r := x & n.mask
	for _, k := range n.keys {
		l, r = (r^n.round(l, k))&n.mask, l
	}
	return l<<n.half | r
}

// Decrypt inverts Encrypt: the same stage structure with the key schedule
// reversed, each stage mapping (L, R) to (R, L XOR F(R, K)), matching
// Fig 7(b).
func (n *Network) Decrypt(x uint64) uint64 {
	l := x >> n.half
	r := x & n.mask
	for i := len(n.keys) - 1; i >= 0; i-- {
		l, r = r, (l^n.round(r, n.keys[i]))&n.mask
	}
	return l<<n.half | r
}

// Permutation is any invertible mapping on [0, Domain()). Network, Matrix
// and Walker all satisfy it, as does Identity.
type Permutation interface {
	Encrypt(uint64) uint64
	Decrypt(uint64) uint64
	Domain() uint64
}

// Identity is the trivial permutation on [0, n); useful as a baseline
// randomizer (an RBSG without address-space randomization).
type Identity uint64

// Encrypt returns x unchanged.
func (i Identity) Encrypt(x uint64) uint64 { return x }

// Decrypt returns x unchanged.
func (i Identity) Decrypt(x uint64) uint64 { return x }

// Domain returns the domain size.
func (i Identity) Domain() uint64 { return uint64(i) }

// Walker restricts an even-width permutation to an arbitrary domain [0, N)
// by cycle-walking: out-of-range outputs are fed back through the
// permutation until they land in range. Because the inner mapping is a
// bijection the walk always terminates and the restriction is itself a
// bijection on [0, N).
type Walker struct {
	inner Permutation
	n     uint64
}

// NewWalker wraps inner so the result permutes [0, n). n must be at most
// the inner domain; if n equals it the walker is a no-op passthrough.
func NewWalker(inner Permutation, n uint64) (*Walker, error) {
	if n == 0 || n > inner.Domain() {
		return nil, fmt.Errorf("feistel: walker domain %d out of range (inner %d)", n, inner.Domain())
	}
	return &Walker{inner: inner, n: n}, nil
}

// MustNewWalker is NewWalker that panics on error; for call sites whose
// domain is already validated (e.g. schemes that checked Lines against
// the randomizer width at construction).
func MustNewWalker(inner Permutation, n uint64) *Walker {
	w, err := NewWalker(inner, n)
	if err != nil {
		panic(err)
	}
	return w
}

// Encrypt permutes x within [0, n).
func (w *Walker) Encrypt(x uint64) uint64 {
	y := w.inner.Encrypt(x)
	for y >= w.n {
		y = w.inner.Encrypt(y)
	}
	return y
}

// Decrypt inverts Encrypt within [0, n).
func (w *Walker) Decrypt(x uint64) uint64 {
	y := w.inner.Decrypt(x)
	for y >= w.n {
		y = w.inner.Decrypt(y)
	}
	return y
}

// Domain returns the restricted domain size.
func (w *Walker) Domain() uint64 { return w.n }

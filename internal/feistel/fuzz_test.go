package feistel

import (
	"testing"

	"securityrbsg/internal/stats"
)

// FuzzNetworkRoundTrip: for arbitrary widths, stage counts, key material
// and inputs, Decrypt(Encrypt(x)) == x and outputs stay in the domain.
func FuzzNetworkRoundTrip(f *testing.F) {
	f.Add(uint8(8), uint8(3), uint64(12345), uint64(42))
	f.Add(uint8(22), uint8(7), uint64(0), uint64(0))
	f.Add(uint8(2), uint8(1), uint64(999), uint64(3))
	f.Fuzz(func(t *testing.T, bitsRaw, stagesRaw uint8, keySeed, x uint64) {
		bits := uint(bitsRaw)%31*2 + 2 // even, in [2, 62]
		stages := int(stagesRaw)%20 + 1
		n, err := Random(bits, stages, stats.NewRNG(keySeed))
		if err != nil {
			t.Fatal(err)
		}
		x &= (1 << bits) - 1
		y := n.Encrypt(x)
		if y >= 1<<bits {
			t.Fatalf("Encrypt(%d) = %d escapes the %d-bit domain", x, y, bits)
		}
		if back := n.Decrypt(y); back != x {
			t.Fatalf("Decrypt(Encrypt(%d)) = %d (bits=%d stages=%d)", x, back, bits, stages)
		}
	})
}

// FuzzWalkerRoundTrip: cycle-walked restrictions stay bijective on
// arbitrary sub-domains.
func FuzzWalkerRoundTrip(f *testing.F) {
	f.Add(uint8(8), uint64(200), uint64(7), uint64(150))
	f.Add(uint8(4), uint64(9), uint64(1), uint64(3))
	f.Fuzz(func(t *testing.T, bitsRaw uint8, domain, keySeed, x uint64) {
		bits := uint(bitsRaw)%15*2 + 2 // even, in [2, 30]
		max := uint64(1) << bits
		if domain == 0 || domain > max {
			domain = max/2 + 1
		}
		inner, err := Random(bits, 3, stats.NewRNG(keySeed))
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWalker(inner, domain)
		if err != nil {
			t.Fatal(err)
		}
		x %= domain
		y := w.Encrypt(x)
		if y >= domain {
			t.Fatalf("walker escaped domain: %d >= %d", y, domain)
		}
		if back := w.Decrypt(y); back != x {
			t.Fatalf("walker round trip failed at %d", x)
		}
	})
}

package feistel

import (
	"fmt"

	"securityrbsg/internal/stats"
)

// Matrix is a random invertible binary matrix (RIBM) permutation: address
// bits are treated as a vector over GF(2) and multiplied by an invertible
// B×B bit matrix. The RBSG paper offers this as an alternative to the
// static Feistel network for address-space randomization; it is linear
// (and therefore trivially breakable by an adaptive adversary) but spreads
// spatially local write traffic just as well.
//
// Rows are stored as bit masks: row i of the matrix is rows[i], and
// multiplying vector x yields bit i = parity(rows[i] & x).
type Matrix struct {
	bits uint
	rows []uint64 // forward matrix rows
	inv  []uint64 // inverse matrix rows
}

// NewMatrix draws a uniformly random invertible B×B binary matrix using
// rejection sampling (a random binary matrix is invertible with probability
// ≈ 0.289, so a handful of attempts suffice) and precomputes its inverse
// by Gauss-Jordan elimination over GF(2).
func NewMatrix(bits uint, rng *stats.RNG) (*Matrix, error) {
	if bits == 0 || bits > 62 {
		return nil, fmt.Errorf("feistel: matrix width must be in [1,62], got %d", bits)
	}
	m := &Matrix{bits: bits}
	for attempt := 0; attempt < 256; attempt++ {
		rows := make([]uint64, bits)
		for i := range rows {
			rows[i] = rng.Bits(bits)
		}
		if inv, ok := invertGF2(rows, bits); ok {
			m.rows = rows
			m.inv = inv
			return m, nil
		}
	}
	return nil, fmt.Errorf("feistel: failed to draw an invertible %d-bit matrix", bits)
}

// invertGF2 returns the inverse of the matrix given by rows over GF(2), or
// ok=false if the matrix is singular.
func invertGF2(rows []uint64, bits uint) (inv []uint64, ok bool) {
	a := append([]uint64(nil), rows...)
	inv = make([]uint64, bits)
	for i := range inv {
		inv[i] = 1 << uint(i)
	}
	for col := uint(0); col < bits; col++ {
		// Find a pivot row with bit `col` set.
		pivot := -1
		for r := int(col); r < int(bits); r++ {
			if a[r]>>col&1 == 1 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, false
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		for r := uint(0); r < bits; r++ {
			if r != col && a[r]>>col&1 == 1 {
				a[r] ^= a[col]
				inv[r] ^= inv[col]
			}
		}
	}
	return inv, true
}

// parity returns the XOR of all bits of x.
func parity(x uint64) uint64 {
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return x & 1
}

func apply(rows []uint64, x uint64) uint64 {
	var y uint64
	for i, r := range rows {
		y |= parity(r&x) << uint(i)
	}
	return y
}

// Bits returns the permutation width B.
func (m *Matrix) Bits() uint { return m.bits }

// Domain returns the permutation domain size 2^B.
func (m *Matrix) Domain() uint64 { return 1 << m.bits }

// Encrypt multiplies x by the matrix over GF(2).
func (m *Matrix) Encrypt(x uint64) uint64 { return apply(m.rows, x) }

// Decrypt multiplies x by the inverse matrix over GF(2).
func (m *Matrix) Decrypt(x uint64) uint64 { return apply(m.inv, x) }

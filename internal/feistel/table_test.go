package feistel

import (
	"testing"

	"securityrbsg/internal/stats"
)

// checkTableMatches asserts that a materialized table is bit-identical
// to direct evaluation of p over its whole domain, in both directions.
func checkTableMatches(t *testing.T, p Permutation, tab *Table) {
	t.Helper()
	if got, want := tab.Domain(), p.Domain(); got != want {
		t.Fatalf("table domain %d, want %d", got, want)
	}
	for x := uint64(0); x < p.Domain(); x++ {
		if got, want := tab.Encrypt(x), p.Encrypt(x); got != want {
			t.Fatalf("Encrypt(%d) = %d via table, %d direct", x, got, want)
		}
		if got, want := tab.Decrypt(x), p.Decrypt(x); got != want {
			t.Fatalf("Decrypt(%d) = %d via table, %d direct", x, got, want)
		}
	}
}

// TestTableMatchesDirectNetwork sweeps widths and stage counts of the
// bare (power-of-two domain) network.
func TestTableMatchesDirectNetwork(t *testing.T) {
	rng := stats.NewRNG(11)
	for _, bits := range []uint{2, 4, 6, 8, 10, 12} {
		for _, stages := range []int{1, 3, 7, 14} {
			n := MustRandom(bits, stages, rng)
			checkTableMatches(t, n, MustNewTable(n))
		}
	}
}

// TestTableMatchesDirectWalker covers cycle-walking domains: odd widths
// and non-power-of-two sizes, where Encrypt loops until it lands inside
// [0, n). The table must bake the whole walk in.
func TestTableMatchesDirectWalker(t *testing.T) {
	rng := stats.NewRNG(12)
	for _, tc := range []struct {
		bits uint
		n    uint64
	}{
		{4, 9},      // odd-width 2^3-to-2^4 walk (9 > 8)
		{4, 12},     // non-power-of-two restriction
		{6, 33},     // just above half: worst-case walk lengths
		{8, 200},    //
		{12, 3000},  //
		{14, 10000}, // scaled-geometry-sized sub-region
	} {
		for _, stages := range []int{3, 7} {
			w := MustNewWalker(MustRandom(tc.bits, stages, rng), tc.n)
			checkTableMatches(t, w, MustNewTable(w))
		}
	}
}

// TestTableMatchesDirectMatrix covers the RIBM randomizer RBSG can use
// in place of the Feistel network.
func TestTableMatchesDirectMatrix(t *testing.T) {
	rng := stats.NewRNG(13)
	for _, bits := range []uint{3, 7, 11} {
		m, err := NewMatrix(bits, rng)
		if err != nil {
			t.Fatal(err)
		}
		checkTableMatches(t, m, MustNewTable(m))
	}
}

// TestTableFillTracksRekey is the invalidation contract: after a key
// redraw, one Fill makes the table match the new permutation — no stale
// entries survive from the previous round.
func TestTableFillTracksRekey(t *testing.T) {
	rng := stats.NewRNG(14)
	n := MustRandom(10, 7, rng)
	w := MustNewWalker(n, 1000)
	tab := MustNewTable(w)
	for round := 0; round < 5; round++ {
		n.RekeyRandom(rng)
		tab.MustFill(w)
		checkTableMatches(t, w, tab)
	}
}

// TestTableIsPermutation checks both directions compose to the identity
// — a corrupted inverse table would break migration (old-position
// lookups) silently.
func TestTableIsPermutation(t *testing.T) {
	rng := stats.NewRNG(15)
	tab := MustNewTable(MustNewWalker(MustRandom(12, 7, rng), 2500))
	for x := uint64(0); x < tab.Domain(); x++ {
		if got := tab.Decrypt(tab.Encrypt(x)); got != x {
			t.Fatalf("Decrypt(Encrypt(%d)) = %d", x, got)
		}
	}
}

// TestFillRejectsOversizedDomain pins the fallback threshold: domains
// above MaxTableDomain (and the degenerate empty domain) must refuse to
// materialize, and Materialize must pass such permutations through
// unchanged.
func TestFillRejectsOversizedDomain(t *testing.T) {
	if _, err := NewTable(Identity(MaxTableDomain + 1)); err == nil {
		t.Fatal("NewTable accepted a domain above MaxTableDomain")
	}
	if _, err := NewTable(Identity(0)); err == nil {
		t.Fatal("NewTable accepted an empty domain")
	}
	big := Identity(MaxTableDomain + 1)
	if got := Materialize(big); got != big {
		t.Fatalf("Materialize did not pass through an oversized domain: %T", got)
	}
	if _, ok := Materialize(Identity(64)).(*Table); !ok {
		t.Fatal("Materialize did not build a table for a small domain")
	}
}

// TestFillReusesArrays pins the per-round allocation contract: refilling
// a table for the same (or smaller) domain must not allocate.
func TestFillReusesArrays(t *testing.T) {
	rng := stats.NewRNG(16)
	n := MustRandom(12, 7, rng)
	tab := MustNewTable(n)
	allocs := testing.AllocsPerRun(10, func() {
		n.RekeyRandom(rng)
		tab.MustFill(n)
	})
	if allocs != 0 {
		t.Fatalf("refill allocated %v objects per round, want 0", allocs)
	}
}

// FuzzTableMatchesDirect drives random geometries and probe points
// through both evaluation paths.
func FuzzTableMatchesDirect(f *testing.F) {
	f.Add(uint64(1), uint(8), 7, uint64(200), uint64(3))
	f.Add(uint64(9), uint(4), 3, uint64(9), uint64(8))
	f.Add(uint64(77), uint(12), 14, uint64(4096), uint64(4095))
	f.Fuzz(func(t *testing.T, seed uint64, bits uint, stages int, n uint64, probe uint64) {
		bits = 2 + bits%13 // 2..14, within table range after walking
		if bits%2 == 1 {
			bits++
		}
		stages = 1 + (stages%14+14)%14
		n = 1 + n%(uint64(1)<<bits)
		rng := stats.NewRNG(seed)
		var p Permutation = MustRandom(bits, stages, rng)
		if n < p.Domain() {
			p = MustNewWalker(p, n)
		}
		tab := MustNewTable(p)
		x := probe % p.Domain()
		if got, want := tab.Encrypt(x), p.Encrypt(x); got != want {
			t.Fatalf("Encrypt(%d): table %d, direct %d", x, got, want)
		}
		if got, want := tab.Decrypt(x), p.Decrypt(x); got != want {
			t.Fatalf("Decrypt(%d): table %d, direct %d", x, got, want)
		}
		if got := tab.Decrypt(tab.Encrypt(x)); got != x {
			t.Fatalf("round trip of %d gave %d", x, got)
		}
	})
}

package feistel_test

import (
	"fmt"

	"securityrbsg/internal/feistel"
	"securityrbsg/internal/stats"
)

// Example builds the paper's randomizer — a multi-stage Feistel network
// with the cubing round function — and shows it is invertible.
func Example() {
	n, err := feistel.New(8, []uint64{0x3, 0x9, 0x5})
	if err != nil {
		panic(err)
	}
	x := uint64(0xA7)
	y := n.Encrypt(x)
	fmt.Printf("0x%02X -> 0x%02X -> 0x%02X\n", x, y, n.Decrypt(y))
	// Output:
	// 0xA7 -> 0xED -> 0xA7
}

// ExampleNewWalker restricts a power-of-two permutation to an arbitrary
// domain by cycle walking.
func ExampleNewWalker() {
	inner := feistel.MustRandom(8, 3, stats.NewRNG(1))
	w, err := feistel.NewWalker(inner, 200)
	if err != nil {
		panic(err)
	}
	y := w.Encrypt(150)
	fmt.Println(y < 200, w.Decrypt(y) == 150)
	// Output:
	// true true
}

package feistel

import "fmt"

// Materialized permutation tables.
//
// Security RBSG re-draws its Feistel keys only once per remapping round
// (Section IV of the paper), so between redraws the permutation is a
// constant function evaluated millions of times — once per demand
// translation and several times per migration movement. For the domain
// sizes every scaled geometry uses (and the paper's 2^10-line
// sub-regions), the whole permutation fits in two small arrays, turning
// the k-stage cube evaluation (and any cycle-walking retries on top of
// it) into a single slice index in each direction. This is the inverse
// of the trade Start-Gap made in hardware — algebraic mapping instead
// of a table because SRAM was the scarce resource; in software the
// table is cheap and the arithmetic is not.
//
// Above MaxTableBits the tables would dominate memory (and the O(2^B)
// build would dominate a remapping round), so callers fall back to
// direct evaluation — Materialize encodes that policy.

// MaxTableBits is the widest permutation Materialize will turn into
// lookup tables: 2^20 entries costs 8 MB for both directions, builds in
// a few milliseconds, and covers every scaled geometry in the repo. The
// paper-scale 2^22-line space stays on direct evaluation.
const MaxTableBits = 20

// MaxTableDomain is the largest domain NewTable accepts.
const MaxTableDomain uint64 = 1 << MaxTableBits

// Table is a Permutation materialized into forward and inverse lookup
// arrays. It is immutable through the Permutation interface; Fill
// rebuilds it in place when the underlying keys change (one build per
// remapping round, amortized over the whole round's accesses).
type Table struct {
	fwd, inv []uint32
}

// NewTable materializes p into lookup tables. The domain must be at
// most MaxTableDomain.
func NewTable(p Permutation) (*Table, error) {
	t := &Table{}
	if err := t.Fill(p); err != nil {
		return nil, err
	}
	return t, nil
}

// MustNewTable is NewTable that panics on error; for call sites whose
// domain is already validated against MaxTableDomain.
func MustNewTable(p Permutation) *Table {
	t, err := NewTable(p)
	if err != nil {
		panic(err)
	}
	return t
}

// Fill rebuilds the tables from p, reusing the existing arrays when the
// domain allows. This is the per-round invalidation hook: after a key
// redraw the owner refills a table that no live mapping references.
func (t *Table) Fill(p Permutation) error {
	n := p.Domain()
	if n == 0 || n > MaxTableDomain {
		return fmt.Errorf("feistel: domain %d not materializable (max %d)", n, MaxTableDomain)
	}
	if uint64(cap(t.fwd)) < n {
		t.fwd = make([]uint32, n)
		t.inv = make([]uint32, n)
	}
	t.fwd = t.fwd[:n]
	t.inv = t.inv[:n]
	for x := uint64(0); x < n; x++ {
		y := p.Encrypt(x)
		t.fwd[x] = uint32(y)
		t.inv[y] = uint32(x)
	}
	return nil
}

// MustFill is Fill that panics on error; for per-round refills of a
// table whose domain was validated when it was first built.
func (t *Table) MustFill(p Permutation) {
	if err := t.Fill(p); err != nil {
		panic(err)
	}
}

// Encrypt permutes x by table lookup.
func (t *Table) Encrypt(x uint64) uint64 { return uint64(t.fwd[x]) }

// Decrypt inverts Encrypt by table lookup.
func (t *Table) Decrypt(x uint64) uint64 { return uint64(t.inv[x]) }

// Domain returns the permutation domain size.
func (t *Table) Domain() uint64 { return uint64(len(t.fwd)) }

// Materialize returns p as lookup tables when its domain is small
// enough and p unchanged otherwise — the one policy switch between
// "table per round" and "evaluate every access" (see MaxTableBits).
func Materialize(p Permutation) Permutation {
	if p.Domain() > MaxTableDomain {
		return p
	}
	return MustNewTable(p)
}

package feistel

import (
	"testing"
	"testing/quick"

	"securityrbsg/internal/stats"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(3, []uint64{1}); err == nil {
		t.Error("odd width must fail")
	}
	if _, err := New(0, []uint64{1}); err == nil {
		t.Error("zero width must fail")
	}
	if _, err := New(64, []uint64{1}); err == nil {
		t.Error("width 64 must fail")
	}
	if _, err := New(8, nil); err == nil {
		t.Error("no keys must fail")
	}
	if _, err := Random(8, 0, stats.NewRNG(1)); err == nil {
		t.Error("zero stages must fail")
	}
}

func TestWalkerValidation(t *testing.T) {
	inner := MustRandom(8, 3, stats.NewRNG(1)) // domain 256
	if _, err := NewWalker(inner, 0); err == nil {
		t.Error("zero walker domain must fail")
	}
	if _, err := NewWalker(inner, 257); err == nil {
		t.Error("walker domain above inner domain must fail")
	}
	w, err := NewWalker(inner, 256)
	if err != nil {
		t.Fatalf("walker domain equal to inner domain must be legal: %v", err)
	}
	if got := w.Domain(); got != 256 {
		t.Errorf("Domain() = %d, want 256", got)
	}
}

// mustPanic runs f and reports an error unless it panics.
func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic on invalid input", name)
		}
	}()
	f()
}

// The Must* wrappers exist for call sites with already-validated
// arguments; on invalid input they must surface the constructor error
// as a panic rather than return a broken value.
func TestMustConstructorsPanic(t *testing.T) {
	mustPanic(t, "MustRandom", func() { MustRandom(3, 3, stats.NewRNG(1)) })
	mustPanic(t, "MustNewWalker", func() {
		MustNewWalker(MustRandom(8, 3, stats.NewRNG(1)), 1000)
	})
	mustPanic(t, "MustSetStages", func() {
		MustRandom(8, 3, stats.NewRNG(1)).MustSetStages(0)
	})
}

// TestSetStagesRekeyMatchesFresh pins the RNG economy behind live
// security-level changes: resizing the key schedule and rekeying must
// yield exactly the network a fresh Random construction at the new
// stage count would, from the same RNG stream.
func TestSetStagesRekeyMatchesFresh(t *testing.T) {
	for _, transition := range [][2]int{{3, 7}, {7, 3}, {5, 5}, {1, 12}} {
		from, to := transition[0], transition[1]
		resized := MustRandom(10, from, stats.NewRNG(99))
		if err := resized.SetStages(to); err != nil {
			t.Fatal(err)
		}
		if resized.Stages() != to {
			t.Fatalf("Stages() = %d after SetStages(%d)", resized.Stages(), to)
		}
		for i, k := range resized.Keys() {
			if k != 0 {
				t.Fatalf("%d->%d: key %d not zeroed before rekey", from, to, i)
			}
		}
		rng := stats.NewRNG(7)
		resized.RekeyRandom(rng)
		fresh := MustRandom(10, to, stats.NewRNG(7))
		for x := uint64(0); x < resized.Domain(); x++ {
			if resized.Encrypt(x) != fresh.Encrypt(x) {
				t.Fatalf("%d->%d: resized+rekeyed differs from fresh at %d", from, to, x)
			}
		}
		// The RNG stream advanced by exactly one draw per stage.
		want := stats.NewRNG(7)
		for i := 0; i < to; i++ {
			want.Uint64()
		}
		if rng.Uint64() != want.Uint64() {
			t.Fatalf("%d->%d: rekey consumed a different number of draws than %d", from, to, to)
		}
	}
}

func TestSetStagesValidation(t *testing.T) {
	n := MustRandom(8, 3, stats.NewRNG(1))
	if err := n.SetStages(0); err == nil {
		t.Error("zero stages must fail")
	}
	if err := n.SetStages(-1); err == nil {
		t.Error("negative stages must fail")
	}
	if n.Stages() != 3 {
		t.Errorf("failed SetStages mutated the schedule: %d stages", n.Stages())
	}
}

// TestEncryptDecryptInverse is the core property: Decrypt ∘ Encrypt = id
// for every width, stage count and key material.
func TestEncryptDecryptInverse(t *testing.T) {
	rng := stats.NewRNG(2)
	for _, bits := range []uint{2, 4, 8, 10, 16, 22, 40, 62} {
		for _, stages := range []int{1, 2, 3, 7, 20} {
			n := MustRandom(bits, stages, rng)
			f := func(x uint64) bool {
				x &= (1 << bits) - 1
				return n.Decrypt(n.Encrypt(x)) == x && n.Encrypt(n.Decrypt(x)) == x
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatalf("bits=%d stages=%d: %v", bits, stages, err)
			}
		}
	}
}

// TestEncryptIsBijection enumerates a small domain and checks the
// permutation property exhaustively.
func TestEncryptIsBijection(t *testing.T) {
	rng := stats.NewRNG(3)
	for trial := 0; trial < 20; trial++ {
		n := MustRandom(10, 3, rng)
		seen := make([]bool, 1<<10)
		for x := uint64(0); x < 1<<10; x++ {
			y := n.Encrypt(x)
			if y >= 1<<10 {
				t.Fatalf("output %d out of domain", y)
			}
			if seen[y] {
				t.Fatalf("collision at output %d", y)
			}
			seen[y] = true
		}
	}
}

func TestPaperStageStructure(t *testing.T) {
	// One stage: L' = R XOR (L XOR K)^3 (mod 2^half), R' = L — Fig 7.
	n, err := New(8, []uint64{0x5})
	if err != nil {
		t.Fatal(err)
	}
	x := uint64(0xA7) // L = 0xA, R = 0x7
	l, r := uint64(0xA), uint64(0x7)
	f := ((l ^ 0x5) * (l ^ 0x5) * (l ^ 0x5)) & 0xF
	want := ((r ^ f) << 4) | l
	if got := n.Encrypt(x); got != want {
		t.Fatalf("Encrypt(0x%x) = 0x%x, want 0x%x", x, got, want)
	}
}

func TestKeysAreCopied(t *testing.T) {
	n := MustRandom(8, 3, stats.NewRNG(4))
	keys := n.Keys()
	before := n.Encrypt(5)
	keys[0] ^= 0xff
	if n.Encrypt(5) != before {
		t.Fatal("mutating the returned key slice changed the network")
	}
	if n.Stages() != 3 || n.Bits() != 8 || n.Domain() != 256 {
		t.Fatal("metadata wrong")
	}
}

func TestDifferentKeysDifferentPermutation(t *testing.T) {
	rng := stats.NewRNG(5)
	a := MustRandom(16, 3, rng)
	b := MustRandom(16, 3, rng)
	same := 0
	for x := uint64(0); x < 1000; x++ {
		if a.Encrypt(x) == b.Encrypt(x) {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("independent networks agree on %d/1000 points", same)
	}
}

func TestWalker(t *testing.T) {
	rng := stats.NewRNG(6)
	inner := MustRandom(8, 3, rng)
	// Restrict to a non-power-of-two domain.
	w, err := NewWalker(inner, 200)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 200)
	for x := uint64(0); x < 200; x++ {
		y := w.Encrypt(x)
		if y >= 200 {
			t.Fatalf("walker escaped domain: %d", y)
		}
		if seen[y] {
			t.Fatalf("walker collision at %d", y)
		}
		seen[y] = true
		if w.Decrypt(y) != x {
			t.Fatalf("walker not invertible at %d", x)
		}
	}
	if w.Domain() != 200 {
		t.Fatal("walker domain")
	}
	if _, err := NewWalker(inner, 0); err == nil {
		t.Error("zero domain must fail")
	}
	if _, err := NewWalker(inner, 257); err == nil {
		t.Error("oversized domain must fail")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(100)
	if id.Encrypt(42) != 42 || id.Decrypt(42) != 42 || id.Domain() != 100 {
		t.Fatal("identity broken")
	}
}

func TestMatrixBijection(t *testing.T) {
	rng := stats.NewRNG(7)
	for _, bits := range []uint{4, 8, 12} {
		m, err := NewMatrix(bits, rng)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, 1<<bits)
		for x := uint64(0); x < 1<<bits; x++ {
			y := m.Encrypt(x)
			if y >= 1<<bits || seen[y] {
				t.Fatalf("bits=%d: not a bijection at %d→%d", bits, x, y)
			}
			seen[y] = true
			if m.Decrypt(y) != x {
				t.Fatalf("bits=%d: inverse fails at %d", bits, x)
			}
		}
	}
}

func TestMatrixIsLinear(t *testing.T) {
	rng := stats.NewRNG(8)
	m, err := NewMatrix(16, rng)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint64) bool {
		a &= 0xffff
		b &= 0xffff
		return m.Encrypt(a^b) == m.Encrypt(a)^m.Encrypt(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if m.Encrypt(0) != 0 {
		t.Fatal("linear map must fix 0")
	}
}

func TestMatrixValidation(t *testing.T) {
	if _, err := NewMatrix(0, stats.NewRNG(1)); err == nil {
		t.Error("zero width must fail")
	}
	if _, err := NewMatrix(63, stats.NewRNG(1)); err == nil {
		t.Error("width >62 must fail")
	}
}

func TestParity(t *testing.T) {
	cases := map[uint64]uint64{0: 0, 1: 1, 3: 0, 7: 1, 0xff: 0, 1 << 63: 1}
	for x, want := range cases {
		if got := parity(x); got != want {
			t.Errorf("parity(%x) = %d, want %d", x, got, want)
		}
	}
}

// TestLowStageBias documents the phenomenon behind Fig 14: for a FIXED
// input, the distribution of Encrypt(x) over random keys is visibly
// non-uniform at 3 stages and much flatter at 7 — the reason few-stage
// DFNs lose lifetime under RAA.
func TestLowStageBias(t *testing.T) {
	const bits, draws = 12, 1 << 16
	chi2 := func(stages int) float64 {
		rng := stats.NewRNG(99)
		counts := make([]float64, 1<<bits)
		for i := 0; i < draws; i++ {
			n := MustRandom(bits, stages, rng)
			counts[n.Encrypt(5)]++
		}
		want := float64(draws) / (1 << bits)
		var x2 float64
		for _, c := range counts {
			d := c - want
			x2 += d * d / want
		}
		return x2
	}
	lo, hi := chi2(7), chi2(3)
	if hi < 2*lo {
		t.Fatalf("3-stage chi2 %.0f should dwarf 7-stage chi2 %.0f", hi, lo)
	}
}

func BenchmarkEncrypt22Bit7Stage(b *testing.B) {
	n := MustRandom(22, 7, stats.NewRNG(1))
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += n.Encrypt(uint64(i) & (1<<22 - 1))
	}
	_ = sink
}

package memserver

import (
	"encoding/binary"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"securityrbsg/internal/stats"
)

// TestBinaryReadBatchDifferential is the streaming-read differential
// proof: twin identically seeded servers take the identical write
// preload, then one serves reads through ReadReq frames and the other
// through full BatchReq frames. The data and the batch accounting must
// match exactly — the thin mode changes response encoding, never what
// the banks do.
func TestBinaryReadBatchDifferential(t *testing.T) {
	_, thin, _ := startBinaryServer(t, testConfig())
	_, full, _ := startBinaryServer(t, testConfig())

	rng := stats.NewRNG(11)
	writes := make([]BatchOp, 200)
	for i := range writes {
		writes[i] = BatchOp{Line: rng.Uint64n(4096), Data: uint8(rng.Uint64n(3))}
	}
	if _, err := thin.Batch(writes); err != nil {
		t.Fatal(err)
	}
	if _, err := full.Batch(writes); err != nil {
		t.Fatal(err)
	}

	lines := make([]uint64, 64)
	fullOps := make([]BatchOp, len(lines))
	for round := 0; round < 5; round++ {
		for i := range lines {
			lines[i] = rng.Uint64n(4096)
			fullOps[i] = BatchOp{Line: lines[i], Read: true}
		}
		tr, err := thin.ReadBatch(lines)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := full.Batch(fullOps)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Applied != fr.Applied || tr.Rejected != fr.Rejected ||
			tr.NsSum != fr.NsSum || tr.NsMax != fr.NsMax {
			t.Fatalf("round %d accounting: read-batch %+v != full %+v", round, tr, fr)
		}
		if len(tr.Data) != len(fr.Data) {
			t.Fatalf("round %d data length %d != %d", round, len(tr.Data), len(fr.Data))
		}
		for i := range tr.Data {
			if tr.Data[i] != fr.Data[i] {
				t.Fatalf("round %d line %d: read-batch data %d != full %d",
					round, lines[i], tr.Data[i], fr.Data[i])
			}
		}
	}
}

// TestBinaryReadBatchCountsMetric: reads served through ReadReq frames
// show up in both binary_line_ops_total and the read-mode counter.
func TestBinaryReadBatchCountsMetric(t *testing.T) {
	s, c, _ := startBinaryServer(t, testConfig())
	if _, err := c.ReadBatch([]uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if got := s.binReadOps.Load(); got != 3 {
		t.Fatalf("binary_read_batch_ops_total = %d, want 3", got)
	}
	if got := s.binLineOps.Load(); got != 3 {
		t.Fatalf("binary_line_ops_total = %d, want 3", got)
	}
}

// TestBinaryPipelinedInOrder drives the windowed client calls: a burst
// of frames goes out before any response is read, then the responses
// are received strictly in send order. Each batch writes a distinct
// content sequence and reads back the line the *previous* batch wrote,
// so any reorder or drop shows up as wrong data, and the final state
// must match what the same ops produce in lockstep on a twin server.
func TestBinaryPipelinedInOrder(t *testing.T) {
	_, pc, _ := startBinaryServer(t, testConfig())
	_, lc, _ := startBinaryServer(t, testConfig())

	const window = 16
	batch := func(i int) []BatchOp {
		// Write line i with content i%3, read back line i-1 (written by
		// the previous batch — only correct if the server saw them in
		// order).
		ops := []BatchOp{{Line: uint64(i), Data: uint8(i % 3)}}
		if i > 0 {
			ops = append(ops, BatchOp{Line: uint64(i - 1), Read: true})
		}
		return ops
	}

	var lockstep []BatchResponse
	for i := 0; i < window; i++ {
		r, err := lc.Batch(batch(i))
		if err != nil {
			t.Fatal(err)
		}
		cp := *r
		cp.Ns = append([]uint64(nil), r.Ns...)
		cp.Data = append([]uint8(nil), r.Data...)
		lockstep = append(lockstep, cp)
	}

	for i := 0; i < window; i++ {
		if err := pc.SendBatch(batch(i)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	var resp BatchResponse
	for i := 0; i < window; i++ {
		if err := pc.RecvBatch(&resp); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		want := &lockstep[i]
		if resp.Applied != want.Applied || resp.NsSum != want.NsSum || resp.NsMax != want.NsMax {
			t.Fatalf("batch %d accounting: pipelined %+v != lockstep %+v", i, resp, want)
		}
		for j := range resp.Data {
			if resp.Data[j] != want.Data[j] || resp.Ns[j] != want.Ns[j] {
				t.Fatalf("batch %d op %d: pipelined ns=%d d=%d != lockstep ns=%d d=%d",
					i, j, resp.Ns[j], resp.Data[j], want.Ns[j], want.Data[j])
			}
		}
		if i > 0 {
			if got, want := resp.Data[1], uint8((i-1)%3); got != want {
				t.Fatalf("batch %d read back %d, want %d (reordered?)", i, got, want)
			}
		}
	}
}

// TestBinaryPipelinedReadBatches: the windowed read-mode calls complete
// in order too, and a sender goroutine may run concurrently with a
// receiver goroutine on one client (disjoint buffer halves).
func TestBinaryPipelinedReadBatches(t *testing.T) {
	_, c, _ := startBinaryServer(t, testConfig())
	const rounds = 64
	errs := make(chan error, 1)
	go func() {
		for i := 0; i < rounds; i++ {
			if err := c.SendReadBatch([]uint64{uint64(i), uint64(i + 1)}); err != nil {
				errs <- err
				return
			}
		}
		errs <- nil
	}()
	var r ReadBatchResponse
	for i := 0; i < rounds; i++ {
		if err := c.RecvReadBatch(&r); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if r.Applied != 2 || len(r.Data) != 2 {
			t.Fatalf("recv %d: applied %d data %v", i, r.Applied, r.Data)
		}
	}
	if err := <-errs; err != nil {
		t.Fatalf("sender: %v", err)
	}
}

// startLegacyBinaryServer fakes a PR 9 era server: it speaks BatchReq
// frames against a real engine but answers any other frame type — read
// frames included — with the typed malformed Err, exactly as the old
// processFrame did. readFrames counts the ReadReq probes it turned
// away.
func startLegacyBinaryServer(t *testing.T, cfg Config) (addr string, readFrames *atomic.Uint64) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	readFrames = new(atomic.Uint64)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				sc := getBatchScratch(cfg.Banks)
				defer putBatchScratch(sc)
				for {
					var hdr [4]byte
					if _, err := io.ReadFull(conn, hdr[:]); err != nil {
						return
					}
					body := make([]byte, binary.LittleEndian.Uint32(hdr[:]))
					if _, err := io.ReadFull(conn, body); err != nil {
						return
					}
					if len(body) < wireHdrSize || body[1] != frameBatchReq {
						if len(body) >= wireHdrSize && body[1] == frameReadReq {
							readFrames.Add(1)
						}
						conn.Write(appendFrame(nil, appendErrBody(nil, wireErrMalformed, "frame type not batch-req")))
						continue
					}
					ops, code := decodeBatchReq(body[wireHdrSize:], sc.req.Ops)
					sc.req.Ops = ops
					if code != 0 {
						conn.Write(appendFrame(nil, appendErrBody(nil, code, "decode")))
						continue
					}
					s.executeBatch(sc)
					resetRuns(sc)
					out := append([]byte(nil), wireVersion, frameBatchResp)
					out = appendBatchRespPayload(out, &sc.resp)
					conn.Write(appendFrame(nil, out))
				}
			}()
		}
	}()
	return ln.Addr().String(), readFrames
}

// TestBinaryReadBatchFallback: against a server that predates ReadReq
// frames, ReadBatch transparently falls back to a full batch of reads
// — same data out — and the fallback is sticky: the connection probes
// the thin frame exactly once.
func TestBinaryReadBatchFallback(t *testing.T) {
	addr, readFrames := startLegacyBinaryServer(t, testConfig())
	c := dialBinary(t, addr)

	if _, err := c.Batch([]BatchOp{{Line: 7, Data: 2}}); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		r, err := c.ReadBatch([]uint64{7, 8})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(r.Data) != 2 || r.Data[0] != 2 {
			t.Fatalf("round %d: data %v, want [2 0]", round, r.Data)
		}
		if r.Applied != 2 {
			t.Fatalf("round %d: applied %d, want 2", round, r.Applied)
		}
	}
	if got := readFrames.Load(); got != 1 {
		t.Fatalf("legacy server saw %d ReadReq probes, want exactly 1 (fallback not sticky)", got)
	}
}

// TestBinaryReadNackBackpressure: a Nacked ReadReq frame surfaces as a
// BackpressureError carrying the thin partial accounting.
func TestBinaryReadNackBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.QueueDepth; i++ {
		s.actors[0].ch <- bankReq{}
	}
	addr := startBinaryListener(t, s)
	c := dialBinary(t, addr)

	_, err = c.ReadBatch([]uint64{0})
	be, ok := err.(*BackpressureError)
	if !ok {
		t.Fatalf("want BackpressureError, got %v", err)
	}
	if be.RetryAfter != nackRetryAfterSecs*time.Second {
		t.Fatalf("retry-after %v, want %ds", be.RetryAfter, nackRetryAfterSecs)
	}
	if be.ReadResp == nil || be.ReadResp.Rejected != 1 || be.ReadResp.Applied != 0 {
		t.Fatalf("partial read accounting wrong: %+v", be.ReadResp)
	}
}

package memserver

import (
	"net/http/httptest"
	"testing"

	"securityrbsg/internal/attack"
	"securityrbsg/internal/pcm"
	"securityrbsg/internal/rbsg"
)

// The binary protocol exists to make the hot path fast — never to
// change what crosses it. These tests rerun the repo's side-channel
// regressions over the binary listener: the SET/RESET timing signal,
// the paper's Remapping Timing Attack, and the adaptive defense's
// escalate-before-recovery property must all behave exactly as they do
// over JSON, because the banks (and the latencies they emit) cannot
// tell the transports apart.

// TestBinaryTimingSignalSurvives: the two ends of the side channel,
// byte-for-byte, over a real binary-protocol round trip.
func TestBinaryTimingSignalSurvives(t *testing.T) {
	cfg := testConfig()
	cfg.Scheme = SchemeNone // no remapping noise: pure device timing
	_, c, _ := startBinaryServer(t, cfg)

	if ns := c.Write(8, pcm.Zeros); ns != pcm.DefaultTiming.ResetNs {
		t.Fatalf("ALL-0 write: %d ns over the binary wire, want RESET %d", ns, pcm.DefaultTiming.ResetNs)
	}
	if ns := c.Write(8, pcm.Ones); ns != pcm.DefaultTiming.SetNs {
		t.Fatalf("ALL-1 write: %d ns over the binary wire, want SET %d", ns, pcm.DefaultTiming.SetNs)
	}
	if _, ns := c.Read(8); ns != pcm.DefaultTiming.ReadNs {
		t.Fatalf("read: %d ns over the binary wire, want %d", ns, pcm.DefaultTiming.ReadNs)
	}
}

// rtaConfig is the single-bank RTA geometry shared with the JSON wire
// test (attack_test.go).
func rtaConfig() Config {
	return Config{
		Banks: 1, Lines: 256, Scheme: SchemeRBSG,
		Regions: 8, Interval: 4, Seed: 5,
		Endurance: 500, QueueDepth: 64, SnapshotEvery: 1,
	}
}

// runRTA drives the paper's RTA against target, with oracle polling
// the server's own telemetry.
func runRTA(t *testing.T, target attack.Target, oracle func() bool) (*attack.RTARBSG, attack.Result) {
	t.Helper()
	a := &attack.RTARBSG{
		Target: target,
		Lines:  256, Regions: 8, Interval: 4,
		Li:     17,
		SeqLen: 6,
		Oracle: oracle,
	}
	res, err := a.Run()
	if err != nil {
		t.Fatalf("attack over the wire: %v", err)
	}
	return a, res
}

// TestBinaryRTARecoversSequence runs the RTA over the binary listener
// and then pins transport equivalence: a second, identically seeded
// server attacked over JSON must cost the attacker exactly the same
// number of writes in every phase — the per-op latencies, and with
// them the whole side channel, are serialization-independent.
func TestBinaryRTARecoversSequence(t *testing.T) {
	// Binary transport. The oracle (failed-lines telemetry) polls the
	// HTTP control plane, which stays up alongside the binary listener —
	// exactly the split memctld deploys.
	s, bc, _ := startBinaryServer(t, rtaConfig())
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	mc := NewClient(ts.URL)
	ba, bres := runRTA(t, bc, wireOracle(mc, 64))
	if !bres.Failed && bres.Writes == 0 {
		t.Fatal("attack issued no writes")
	}

	// Ground truth from the scheme internals the attacker never saw
	// (static randomizer; safe to read — nothing below mutates it).
	scheme := s.Memory().Bank(0).Scheme().(*rbsg.Scheme)
	want := groundTruthSequence(scheme, 17, 6)
	got := ba.Sequence()
	if len(got) < len(want) {
		t.Fatalf("recovered %d addresses, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence[%d] = %d over the binary wire, ground truth %d (got %v want %v)",
				i, got[i], want[i], got, want)
		}
	}
	m, err := mc.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m["memctld_failed_lines"] == 0 {
		t.Fatal("wear-out phase did not register a failed line in /metrics")
	}

	// JSON transport, identical seed: the servers are deterministic
	// given the op stream, and the attacker is deterministic given the
	// latencies, so every phase's write count must match exactly.
	_, jc := startServer(t, rtaConfig())
	ja, jres := runRTA(t, jc, wireOracle(jc, 64))
	if bres.Writes != jres.Writes ||
		ba.AlignmentWrites != ja.AlignmentWrites ||
		ba.DetectionWrites != ja.DetectionWrites ||
		ba.WearWrites != ja.WearWrites {
		t.Fatalf("transport changed the attack cost: binary writes=%d (align %d, detect %d, wear %d), json writes=%d (align %d, detect %d, wear %d)",
			bres.Writes, ba.AlignmentWrites, ba.DetectionWrites, ba.WearWrites,
			jres.Writes, ja.AlignmentWrites, ja.DetectionWrites, ja.WearWrites)
	}
	t.Logf("binary RTA: %d writes (align %d, detect %d, wear %d), json identical",
		bres.Writes, ba.AlignmentWrites, ba.DetectionWrites, ba.WearWrites)
}

// TestBinaryAdaptiveEscalates: the detector-driven level controller
// sees binary-transport hammering exactly as it sees JSON hammering.
func TestBinaryAdaptiveEscalates(t *testing.T) {
	s, c, _ := startBinaryServer(t, adaptiveConfig())
	ops := make([]BatchOp, 256)
	for i := range ops {
		ops[i] = BatchOp{Line: 13, Data: 2}
	}
	for round := 0; round < 80; round++ {
		if _, err := c.Batch(ops); err != nil {
			t.Fatal(err)
		}
	}
	m := ParseMetrics(s.MetricsText())
	if m["memctld_level_raises_total"] == 0 {
		t.Fatalf("binary hammer stream applied no escalation:\n%s", s.MetricsText())
	}
	if m["memctld_security_level"] <= 4 {
		t.Fatalf("security level %v under binary-transport attack, want above the boot level 4", m["memctld_security_level"])
	}
	if m["memctld_detector_alarms_total"] == 0 {
		t.Fatal("monitor registered no alarm under the binary hammer")
	}
}

package memserver

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// handleMetrics renders Prometheus-style text metrics. Everything comes
// from the actors' published snapshots plus a handful of submitter-side
// atomics, so scraping never blocks the simulation hot path and keeps
// working after a drain (the final snapshot is exact).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b strings.Builder
	s.renderMetrics(&b)
	fmt.Fprint(w, b.String())
}

// MetricsText returns the /metrics payload (used by tests and tooling).
func (s *Server) MetricsText() string {
	var b strings.Builder
	s.renderMetrics(&b)
	return b.String()
}

func (s *Server) renderMetrics(b *strings.Builder) {
	gauge := func(name, help string, v uint64) {
		fmt.Fprintf(b, "# HELP memctld_%s %s\n# TYPE memctld_%s gauge\nmemctld_%s %d\n",
			name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(b, "# HELP memctld_%s %s\n# TYPE memctld_%s counter\nmemctld_%s %d\n",
			name, help, name, name, v)
	}
	gauge("banks", "Number of independently wear-leveled banks.", uint64(s.cfg.Banks))
	gauge("lines", "Total logical line count across banks.", s.cfg.Lines)
	draining := uint64(0)
	if s.Draining() {
		draining = 1
	}
	gauge("draining", "1 while the server drains, else 0.", draining)

	// Per-protocol serving counters: the binary listener's frame and
	// reject totals, and the line ops applied through each transport
	// (their sum tracks demand_writes_total + demand_reads_total).
	counter("binary_frames_total", "Frames processed on the binary listener.", s.binFrames.Load())
	counter("binary_reject_total", "Binary frames rejected before execution (malformed, version-skewed, oversized, or bad op).", s.binRejects.Load())
	counter("binary_line_ops_total", "Line ops applied via the binary protocol.", s.binLineOps.Load())
	counter("binary_read_batch_ops_total", "Reads served through streaming read-batch frames (no per-op ns echo).", s.binReadOps.Load())
	counter("json_line_ops_total", "Line ops applied via the JSON HTTP API.", s.jsonLineOps.Load())

	type metric struct {
		name, help, kind string
		value            func(a *actor, snap *BankSnapshot) uint64
	}
	metrics := []metric{
		{"demand_writes_total", "Demand writes served.", "counter",
			func(a *actor, s *BankSnapshot) uint64 { return s.Stats.DemandWrites }},
		{"demand_reads_total", "Demand reads served.", "counter",
			func(a *actor, s *BankSnapshot) uint64 { return s.Stats.DemandReads }},
		{"set_writes_total", "Demand writes paying the SET latency (ALL-1 or MIXED).", "counter",
			func(a *actor, s *BankSnapshot) uint64 { return s.SetWrites }},
		{"reset_writes_total", "Demand writes paying only the RESET latency (ALL-0).", "counter",
			func(a *actor, s *BankSnapshot) uint64 { return s.ResetWrites }},
		{"remap_events_total", "Writes that triggered wear-leveling movements.", "counter",
			func(a *actor, s *BankSnapshot) uint64 { return s.Stats.RemapEvents }},
		{"remap_ns_total", "Simulated nanoseconds spent in remapping movements.", "counter",
			func(a *actor, s *BankSnapshot) uint64 { return s.Stats.RemapNs }},
		{"device_writes_total", "Device-level writes (demand + remapping).", "counter",
			func(a *actor, s *BankSnapshot) uint64 { return s.Stats.DeviceWrites }},
		{"device_reads_total", "Device-level reads (demand + remapping).", "counter",
			func(a *actor, s *BankSnapshot) uint64 { return s.Stats.DeviceReads }},
		{"sim_elapsed_ns_total", "Accumulated simulated device time in nanoseconds.", "counter",
			func(a *actor, s *BankSnapshot) uint64 { return s.Stats.ElapsedNs }},
		{"failed_lines", "Physical lines worn past endurance.", "gauge",
			func(a *actor, s *BankSnapshot) uint64 { return s.Stats.FailedLines }},
		{"detector_alarms_total", "Detector alarms raised (regions crossing the traffic-share threshold).", "counter",
			func(a *actor, s *BankSnapshot) uint64 { return s.Alarms }},
		{"detector_boosted_moves_total", "Extra gap movements issued while alarmed.", "counter",
			func(a *actor, s *BankSnapshot) uint64 { return s.BoostedMoves }},
		{"detector_alarmed_regions", "Regions currently under alarm.", "gauge",
			func(a *actor, s *BankSnapshot) uint64 { return uint64(s.AlarmedRegions) }},
		{"security_level", "DFN stage count currently in effect (srbsg+adaptive).", "gauge",
			func(a *actor, s *BankSnapshot) uint64 { return uint64(s.SecurityLevel) }},
		{"level_raises_total", "Security-level escalations applied by the controller.", "counter",
			func(a *actor, s *BankSnapshot) uint64 { return s.LevelRaises }},
		{"level_lowers_total", "Security-level relaxations applied by the controller.", "counter",
			func(a *actor, s *BankSnapshot) uint64 { return s.LevelLowers }},
		{"wear_max", "Highest wear count of any physical line.", "gauge",
			func(a *actor, s *BankSnapshot) uint64 { return s.Stats.MaxWear }},
		{"wear_p50", "Median wear count over physical lines.", "gauge",
			func(a *actor, s *BankSnapshot) uint64 { return s.WearP50 }},
		{"wear_p90", "90th-percentile wear count over physical lines.", "gauge",
			func(a *actor, s *BankSnapshot) uint64 { return s.WearP90 }},
		{"wear_p99", "99th-percentile wear count over physical lines.", "gauge",
			func(a *actor, s *BankSnapshot) uint64 { return s.WearP99 }},
		{"queue_depth", "Requests currently queued for the bank's actor.", "gauge",
			func(a *actor, s *BankSnapshot) uint64 { return uint64(len(a.ch)) }},
		{"queue_rejected_total", "Submissions rejected with backpressure (429).", "counter",
			func(a *actor, s *BankSnapshot) uint64 { return a.rejected.Load() }},
	}
	for _, m := range metrics {
		fmt.Fprintf(b, "# HELP memctld_%s %s\n# TYPE memctld_%s %s\n", m.name, m.help, m.name, m.kind)
		for _, a := range s.actors {
			fmt.Fprintf(b, "memctld_%s{bank=%q} %d\n", m.name, fmt.Sprint(a.bank), m.value(a, a.Snapshot()))
		}
	}
}

// ParseMetrics parses a Prometheus-style text payload into per-name
// totals, summing over labels — the aggregation tests and the load
// generator need ("how many alarms across all banks?").
func ParseMetrics(text string) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		var v float64
		if _, err := fmt.Sscanf(fields[1], "%g", &v); err != nil {
			continue
		}
		out[name] += v
	}
	return out
}

// MetricNames lists the names in a parsed payload, sorted (test helper).
func MetricNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

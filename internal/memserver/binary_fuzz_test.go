package memserver

import (
	"bytes"
	"testing"
)

// FuzzBinaryFrameDecode throws arbitrary frame bodies at the server's
// frame processor: it must never panic, never read past the body, and
// must hold the round-trip property — any BatchReq payload the strict
// decoder accepts re-encodes to the identical bytes (there is exactly
// one wire form per batch, so nothing an attacker appends, pads, or
// re-flags survives decode unnoticed).
func FuzzBinaryFrameDecode(f *testing.F) {
	// Seed corpus: the shapes the protocol defines, plus each reject
	// class the tests pin — truncated, version-skewed, wrong-typed,
	// count-mismatched, flag-corrupted, oversized-count bodies.
	valid := appendBatchReqBody(nil, wireVersion, []BatchOp{
		{Line: 1}, {Line: 4095, Read: true}, {Line: 7, Data: 2},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                                         // truncated mid-op
	f.Add([]byte{})                                                     // empty body
	f.Add([]byte{wireVersion})                                          // no type byte
	f.Add([]byte{wireVersion + 1, frameBatchReq})                       // version skew
	f.Add([]byte{wireVersion, frameErr})                                // wrong direction
	f.Add([]byte{wireVersion, 0xff, 1, 2, 3})                           // unknown type
	f.Add(appendBatchReqBody(nil, wireVersion, nil))                    // zero ops
	count := []byte{wireVersion, frameBatchReq, 0xff, 0xff, 0xff, 0xff} // 4G ops, no payload
	f.Add(count)
	flag := appendBatchReqBody(nil, wireVersion, []BatchOp{{Line: 9}})
	flag[len(flag)-2] = 0x80 // flags outside {0,1}
	f.Add(flag)
	validRead := appendReadReqBody(nil, wireVersion, []uint64{0, 3, 2047})
	f.Add(validRead)
	f.Add(validRead[:len(validRead)-5])                              // truncated mid-line
	f.Add(appendReadReqBody(nil, wireVersion, nil))                  // zero reads
	f.Add([]byte{wireVersion, frameReadReq, 0xff, 0xff, 0xff, 0xff}) // 4G reads, no payload
	f.Add(appendReadReqBody(nil, wireVersion, []uint64{1 << 62}))    // line out of space

	s := MustNew(Config{
		Banks: 2, Lines: 2048, Scheme: SchemeNone,
		QueueDepth: 16, SnapshotEvery: 1,
	})
	s.Start()
	sc := &connScratch{batch: getBatchScratch(s.cfg.Banks)}

	f.Fuzz(func(t *testing.T, body []byte) {
		// The frame processor on the raw body: must not panic and must
		// always answer (every frame gets a response frame, even the
		// ones that cost the connection).
		out, _ := s.processFrame(sc, body)
		if len(out) < 4+wireHdrSize {
			t.Fatalf("processFrame returned %d-byte frame, below prefix+header", len(out))
		}

		// Round-trip property on the strict decoders: accepted payloads
		// re-encode byte-identically.
		if len(body) >= wireHdrSize && body[0] == wireVersion && body[1] == frameBatchReq {
			payload := body[wireHdrSize:]
			ops, code := decodeBatchReq(payload, nil)
			if code == 0 {
				re := appendBatchReqBody(nil, wireVersion, ops)
				if !bytes.Equal(re[wireHdrSize:], payload) {
					t.Fatalf("accepted payload is not canonical:\n in % x\nout % x", payload, re[wireHdrSize:])
				}
			}
		}
		if len(body) >= wireHdrSize && body[0] == wireVersion && body[1] == frameReadReq {
			payload := body[wireHdrSize:]
			ops, code := decodeReadReqOps(payload, nil)
			if code == 0 {
				lines := make([]uint64, len(ops))
				for i, o := range ops {
					if !o.Read || o.Data != 0 {
						t.Fatalf("read decode produced non-read op %+v", o)
					}
					lines[i] = o.Line
				}
				re := appendReadReqBody(nil, wireVersion, lines)
				if !bytes.Equal(re[wireHdrSize:], payload) {
					t.Fatalf("accepted read payload is not canonical:\n in % x\nout % x", payload, re[wireHdrSize:])
				}
			}
		}
	})
}

package memserver

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"securityrbsg/internal/pcm"
	"securityrbsg/internal/stats"
)

// testConfig is a small server: 4 banks × 1024 lines, snapshots after
// every op so metrics are exact in assertions.
func testConfig() Config {
	return Config{
		Banks: 4, Lines: 4096, Scheme: SchemeRBSGDetector,
		Regions: 8, Interval: 4, Seed: 42,
		QueueDepth: 32, SnapshotEvery: 1,
	}
}

// startServer builds, starts and registers cleanup for a server plus
// its HTTP front end.
func startServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close() // waits for in-flight handlers, then Drain is safe
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, NewClient(ts.URL)
}

func TestWriteReadRoundTrip(t *testing.T) {
	_, c := startServer(t, testConfig())
	for _, la := range []uint64{0, 1, 2, 3, 4095, 1234} {
		want := pcm.Content(la % 3)
		if ns := c.Write(la, want); ns == 0 {
			t.Fatalf("write LA %d: zero latency", la)
		}
		got, ns := c.Read(la)
		if got != want {
			t.Fatalf("read LA %d = %v, want %v", la, got, want)
		}
		if ns < pcm.DefaultTiming.ReadNs {
			t.Fatalf("read LA %d: latency %d below device read time", la, ns)
		}
	}
}

// TestBatchMatchesSequential drives two identically seeded servers,
// one op at a time vs one big coalesced batch. Per-bank op order is
// identical, and every bank is deterministic given its op subsequence,
// so per-op latencies and final telemetry must agree exactly — batch
// coalescing must not change what the memory does.
func TestBatchMatchesSequential(t *testing.T) {
	rng := stats.NewRNG(7)
	n := 500
	ops := make([]BatchOp, n)
	for i := range ops {
		ops[i] = BatchOp{Line: rng.Uint64n(4096), Data: uint8(rng.Uint64n(3))}
		if rng.Float64() < 0.2 {
			ops[i].Read = true
			ops[i].Data = 0
		}
	}

	_, seqClient := startServer(t, testConfig())
	seqNs := make([]uint64, n)
	for i, o := range ops {
		if o.Read {
			_, seqNs[i] = seqClient.Read(o.Line)
		} else {
			seqNs[i] = seqClient.Write(o.Line, pcm.Content(o.Data))
		}
	}

	_, batchClient := startServer(t, testConfig())
	resp, err := batchClient.Batch(ops)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Applied != n || resp.Rejected != 0 {
		t.Fatalf("batch applied %d rejected %d, want %d/0", resp.Applied, resp.Rejected, n)
	}
	for i := range ops {
		if resp.Ns[i] != seqNs[i] {
			t.Fatalf("op %d (%+v): batch ns %d != sequential ns %d",
				i, ops[i], resp.Ns[i], seqNs[i])
		}
	}

	seqM, _ := seqClient.Metrics()
	batM, _ := batchClient.Metrics()
	for _, name := range []string{
		"memctld_demand_writes_total", "memctld_demand_reads_total",
		"memctld_set_writes_total", "memctld_reset_writes_total",
		"memctld_remap_events_total", "memctld_sim_elapsed_ns_total", "memctld_wear_max",
	} {
		if seqM[name] != batM[name] {
			t.Errorf("%s: sequential %v != batch %v", name, seqM[name], batM[name])
		}
	}
}

// TestBackpressure429 fills a bank queue (actors deliberately not
// started, so nothing dequeues) and checks the API answers 429 with
// Retry-After instead of blocking.
func TestBackpressure429(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Stuff bank 0's queue to capacity by hand.
	for i := 0; i < cfg.QueueDepth; i++ {
		s.actors[0].ch <- bankReq{}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)

	// LA 0 routes to bank 0 → full queue → 429. Use Batch (which does
	// not retry) to observe the rejection.
	resp, err := c.Batch([]BatchOp{{Line: 0}})
	be, ok := err.(*BackpressureError)
	if !ok {
		t.Fatalf("want BackpressureError, got resp=%+v err=%v", resp, err)
	}
	if be.RetryAfter <= 0 {
		t.Fatalf("Retry-After not propagated: %+v", be)
	}
	if be.Resp == nil || be.Resp.Rejected != 1 || be.Resp.Applied != 0 {
		t.Fatalf("partial accounting wrong: %+v", be.Resp)
	}
	// LA 1 routes to bank 1, whose queue is empty — but its actor is
	// not running either, so only check the rejected counter stayed put.
	if got := s.actors[0].rejected.Load(); got != 1 {
		t.Fatalf("bank 0 rejected counter = %d, want 1", got)
	}
}

// TestMixedBankBatchPartialRejection: a batch spanning a full bank and
// an empty bank applies the empty bank's share and reports the rest
// rejected with 429.
func TestMixedBankBatchPartialRejection(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Bank 0 full; start only bank 1's actor so its share completes.
	s.actors[0].ch <- bankReq{}
	go s.actors[1].run()
	defer close(s.actors[1].ch)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)

	// LA 0 → bank 0 (rejected), LA 1 → bank 1 (applied).
	_, err = c.Batch([]BatchOp{{Line: 0, Data: 1}, {Line: 1, Data: 1}})
	be, ok := err.(*BackpressureError)
	if !ok {
		t.Fatalf("want BackpressureError, got %v", err)
	}
	if be.Resp == nil || be.Resp.Applied != 1 || be.Resp.Rejected != 1 {
		t.Fatalf("partial accounting: %+v", be.Resp)
	}
	if be.Resp.Ns[1] == 0 {
		t.Fatal("applied op lost its latency")
	}
	if be.Resp.Ns[0] != 0 {
		t.Fatal("rejected op reported a latency")
	}
}

func TestHealthzAndDrain(t *testing.T) {
	cfg := testConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)

	if err := c.Healthz(); err != nil {
		t.Fatal(err)
	}
	c.Write(5, pcm.Ones)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Healthz(); err == nil {
		t.Fatal("healthz must fail while drained")
	}
	// New traffic is refused, not queued.
	if _, err := c.Batch([]BatchOp{{Line: 0}}); err == nil {
		t.Fatal("batch must fail after drain")
	}
	// Metrics stay up and reflect the final exact state.
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m["memctld_demand_writes_total"] != 1 || m["memctld_set_writes_total"] != 1 {
		t.Fatalf("post-drain metrics wrong: writes %v set %v",
			m["memctld_demand_writes_total"], m["memctld_set_writes_total"])
	}
	if m["memctld_draining"] == 0 {
		t.Fatal("draining gauge not set")
	}
	// Drain is idempotent.
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsCounters(t *testing.T) {
	_, c := startServer(t, testConfig())
	for i := uint64(0); i < 40; i++ {
		c.Write(i, pcm.Zeros)
	}
	for i := uint64(0); i < 24; i++ {
		c.Write(i, pcm.Ones)
	}
	for i := uint64(0); i < 10; i++ {
		c.Read(i)
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		"memctld_demand_writes_total": 64,
		"memctld_demand_reads_total":  10,
		"memctld_reset_writes_total":  40,
		"memctld_set_writes_total":    24,
		"memctld_banks":               4,
		"memctld_lines":               4096,
	}
	for name, want := range checks {
		if got := m[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if m["memctld_device_writes_total"] < 64 {
		t.Errorf("device writes %v below demand writes", m["memctld_device_writes_total"])
	}
	if m["memctld_wear_max"] == 0 {
		t.Error("wear max still zero after 64 writes")
	}
}

func TestBadRequests(t *testing.T) {
	_, c := startServer(t, testConfig())
	cases := []struct {
		path, body string
	}{
		{"/v1/write", `{"l": 999999, "d": 0}`}, // out of range
		{"/v1/write", `{"l": 1, "d": 9}`},      // bad content class
		{"/v1/write", `not json`},
		{"/v1/batch", `{"ops": []}`},
		{"/v1/batch", `{"ops": [{"l": 999999}]}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(c.BaseURL+tc.path, "application/json",
			strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %q: status %d, want 400", tc.path, tc.body, resp.StatusCode)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Banks: 3, Lines: 100}); err == nil {
		t.Error("non-dividing lines must fail")
	}
	if _, err := New(Config{Banks: 2, Lines: 2 * 1000}); err == nil {
		t.Error("non-power-of-two per-bank lines must fail for randomized schemes")
	}
	if _, err := New(Config{Banks: 2, Lines: 2000, Scheme: SchemeNone}); err != nil {
		t.Errorf("passthrough scheme needs no power of two: %v", err)
	}
	if _, err := New(Config{Scheme: "bogus"}); err == nil {
		t.Error("unknown scheme must fail")
	}
}

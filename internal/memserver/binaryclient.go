package memserver

import (
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"securityrbsg/internal/pcm"
)

// BinaryClient speaks the binary wire protocol (wire.go) over one TCP
// connection. Like the HTTP Client, its Write and Read methods satisfy
// attack.Target — logical address in, simulated latency out — so every
// attacker in internal/attack runs unmodified over the binary
// transport; that is what the binary-transport RTA regression drives.
//
// A BinaryClient is not safe for concurrent use: it owns one
// connection and reuses its encode/decode buffers and its response
// struct across calls (Batch's result is valid until the next call).
// loadgen gives each worker its own client, mirroring how each worker
// owns an HTTP connection in the JSON path.
type BinaryClient struct {
	conn net.Conn
	// Version overrides the wire version byte on outgoing frames; zero
	// means the current protocol version. Tests use it to probe how
	// servers answer version skew.
	Version uint8

	hdr  [4]byte
	buf  []byte
	op   [1]BatchOp
	resp BatchResponse
}

// DialBinary connects to a memctld binary listener (host:port).
func DialBinary(addr string) (*BinaryClient, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("binary dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // closed-loop batches must not wait out Nagle
	}
	return &BinaryClient{conn: conn}, nil
}

// Close tears down the connection.
func (c *BinaryClient) Close() error { return c.conn.Close() }

// version resolves the wire version to send.
func (c *BinaryClient) version() uint8 {
	if c.Version != 0 {
		return c.Version
	}
	return wireVersion
}

// Batch sends one batch frame and decodes the answer. On a Nack frame
// it returns a *BackpressureError carrying the retry-after and the
// partial accounting, mirroring the JSON client's 429 handling; on an
// Err frame it returns the typed *WireError. The returned response is
// the client's own buffer, valid until the next call.
func (c *BinaryClient) Batch(ops []BatchOp) (*BatchResponse, error) {
	// Compose the body after a 4-byte hole, then fill the length prefix:
	// one buffer, one conn.Write, no staging copy.
	if cap(c.buf) < 4 {
		c.buf = make([]byte, 4)
	}
	c.buf = appendBatchReqBody(c.buf[:4], c.version(), ops)
	binary.LittleEndian.PutUint32(c.buf[:4], uint32(len(c.buf)-4))
	if _, err := c.conn.Write(c.buf); err != nil {
		return nil, fmt.Errorf("binary write: %w", err)
	}
	body, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	if len(body) < wireHdrSize {
		return nil, fmt.Errorf("binary response body %d bytes, below header size", len(body))
	}
	if body[0] != wireVersion {
		return nil, fmt.Errorf("binary response version %d, client speaks %d", body[0], wireVersion)
	}
	switch body[1] {
	case frameBatchResp:
		if code := decodeBatchRespPayload(body[wireHdrSize:], &c.resp); code != 0 {
			return nil, fmt.Errorf("binary response payload failed decode (code %d)", code)
		}
		return &c.resp, nil
	case frameNack:
		payload := body[wireHdrSize:]
		if len(payload) < 4 {
			return nil, fmt.Errorf("binary nack payload %d bytes, below retry-after field", len(payload))
		}
		be := &BackpressureError{
			RetryAfter: time.Duration(binary.LittleEndian.Uint32(payload)) * time.Second,
		}
		if decodeBatchRespPayload(payload[4:], &c.resp) == 0 {
			be.Resp = &c.resp
		}
		return nil, be
	case frameErr:
		we, ok := decodeErrBody(body[wireHdrSize:])
		if !ok {
			return nil, fmt.Errorf("binary err frame payload failed decode")
		}
		return nil, we
	default:
		return nil, fmt.Errorf("binary response frame type %d unknown", body[1])
	}
}

// readFrame reads one length-prefixed frame body into the client's
// buffer.
func (c *BinaryClient) readFrame() ([]byte, error) {
	if err := readFull(c.conn, c.hdr[:]); err != nil {
		return nil, fmt.Errorf("binary read header: %w", err)
	}
	n := binary.LittleEndian.Uint32(c.hdr[:])
	if n > wireMaxBody {
		return nil, fmt.Errorf("binary response body %d bytes over limit %d", n, wireMaxBody)
	}
	if cap(c.buf) < int(n) {
		c.buf = make([]byte, n)
	}
	c.buf = c.buf[:n]
	if err := readFull(c.conn, c.buf); err != nil {
		return nil, fmt.Errorf("binary read body: %w", err)
	}
	return c.buf, nil
}

// retryBatch is Batch with bounded backpressure retries — demand ops
// must not be silently dropped (an attacker's write stream, like a
// CPU's, just stalls until the controller accepts it).
func (c *BinaryClient) retryBatch(ops []BatchOp) *BatchResponse {
	for {
		resp, err := c.Batch(ops)
		if err == nil {
			return resp
		}
		be, ok := err.(*BackpressureError)
		if !ok {
			panic(fmt.Errorf("memserver binary client: batch: %w", err)) //rbsglint:allow panicpolicy -- documented attack.Target contract: a broken server is fatal in the tests/demos this client exists for
		}
		time.Sleep(be.RetryAfter)
	}
}

// Write issues one demand write and returns the simulated latency in
// nanoseconds. It panics on transport errors: it exists to satisfy
// attack.Target for tests and demos, where a broken server is fatal.
func (c *BinaryClient) Write(la uint64, content pcm.Content) uint64 {
	c.op[0] = BatchOp{Line: la, Data: uint8(content)}
	resp := c.retryBatch(c.op[:1])
	return resp.Ns[0]
}

// Read issues one demand read; same contract as Write.
func (c *BinaryClient) Read(la uint64) (pcm.Content, uint64) {
	c.op[0] = BatchOp{Line: la, Read: true}
	resp := c.retryBatch(c.op[:1])
	return pcm.Content(resp.Data[0]), resp.Ns[0]
}

package memserver

import (
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"securityrbsg/internal/pcm"
)

// BinaryClient speaks the binary wire protocol (wire.go) over one TCP
// connection. Like the HTTP Client, its Write and Read methods satisfy
// attack.Target — logical address in, simulated latency out — so every
// attacker in internal/attack runs unmodified over the binary
// transport; that is what the binary-transport RTA regression drives.
//
// The client supports two calling styles over the same connection:
//
//   - Lockstep: Batch / ReadBatch send one frame and block for its
//     response — the PR 9 behavior, one request in flight.
//   - Pipelined: SendBatch / SendReadBatch enqueue frames without
//     waiting, RecvBatch / RecvReadBatch complete them strictly in
//     send order (the server processes a connection's frames
//     sequentially and answers in order, so in-order completion is a
//     protocol property, not a client guess). The caller owns the
//     window: keep at most a bounded number of sends un-received so a
//     stalled server backs pressure up instead of ballooning socket
//     buffers. Pipelining changes nothing on the wire — every frame is
//     a v1 frame an unpipelined server answers identically — so there
//     is no negotiation and no fallback to manage.
//
// Concurrency: send-side state (the encode buffer) and recv-side state
// (the header and decode buffers) are disjoint, so ONE goroutine may
// send while ONE other goroutine receives — the shape the router's
// per-connection sender/receiver pairs use. The client is not safe for
// two concurrent senders or two concurrent receivers, and the lockstep
// calls (which both send and receive) must not overlap pipelined use.
// loadgen gives each worker its own client, mirroring how each worker
// owns an HTTP connection in the JSON path.
type BinaryClient struct {
	conn net.Conn
	// Version overrides the wire version byte on outgoing frames; zero
	// means the current protocol version. Tests use it to probe how
	// servers answer version skew.
	Version uint8

	// Send-side state: owned by the sending goroutine.
	wbuf []byte

	// Recv-side state: owned by the receiving goroutine.
	hdr  [4]byte
	rbuf []byte

	// Lockstep-call state (Batch/ReadBatch/Write/Read only).
	op           [1]BatchOp
	resp         BatchResponse
	rresp        ReadBatchResponse
	fallbackOps  []BatchOp
	readFallback bool // server rejected read-req frames; use full batches
}

// DialBinary connects to a memctld binary listener (host:port).
func DialBinary(addr string) (*BinaryClient, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("binary dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // closed-loop batches must not wait out Nagle
	}
	return &BinaryClient{conn: conn}, nil
}

// Close tears down the connection.
func (c *BinaryClient) Close() error { return c.conn.Close() }

// version resolves the wire version to send.
func (c *BinaryClient) version() uint8 {
	if c.Version != 0 {
		return c.Version
	}
	return wireVersion
}

// SendBatch writes one batch frame without waiting for its response.
// The ops are fully serialized before this returns; the caller may
// reuse the slice immediately. Complete the frame with RecvBatch —
// responses arrive in send order.
//
//rbsglint:hotpath
func (c *BinaryClient) SendBatch(ops []BatchOp) error {
	// Compose the body after a 4-byte hole, then fill the length prefix:
	// one buffer, one conn.Write, no staging copy.
	if cap(c.wbuf) < 4 {
		c.wbuf = make([]byte, 4)
	}
	c.wbuf = appendBatchReqBody(c.wbuf[:4], c.version(), ops)
	binary.LittleEndian.PutUint32(c.wbuf[:4], uint32(len(c.wbuf)-4))
	if _, err := c.conn.Write(c.wbuf); err != nil {
		return fmt.Errorf("binary write: %w", err)
	}
	return nil
}

// SendReadBatch writes one streaming read-batch frame (no per-op ns in
// the response) without waiting. Complete it with RecvReadBatch.
// Pipelined reads do not auto-fall back on old servers — use the
// lockstep ReadBatch when the server version is unknown.
//
//rbsglint:hotpath
func (c *BinaryClient) SendReadBatch(lines []uint64) error {
	if cap(c.wbuf) < 4 {
		c.wbuf = make([]byte, 4)
	}
	c.wbuf = appendReadReqBody(c.wbuf[:4], c.version(), lines)
	binary.LittleEndian.PutUint32(c.wbuf[:4], uint32(len(c.wbuf)-4))
	if _, err := c.conn.Write(c.wbuf); err != nil {
		return fmt.Errorf("binary write: %w", err)
	}
	return nil
}

// RecvBatch reads the oldest outstanding batch response into resp,
// reusing resp's slice capacity. On a Nack frame it returns a
// *BackpressureError carrying the retry-after and the partial
// accounting (decoded into resp), mirroring the JSON client's 429
// handling; on an Err frame it returns the typed *WireError.
//
//rbsglint:hotpath
func (c *BinaryClient) RecvBatch(resp *BatchResponse) error {
	body, err := c.readFrame()
	if err != nil {
		return err
	}
	if len(body) < wireHdrSize {
		return fmt.Errorf("binary response body %d bytes, below header size", len(body))
	}
	if body[0] != wireVersion {
		return fmt.Errorf("binary response version %d, client speaks %d", body[0], wireVersion)
	}
	switch body[1] {
	case frameBatchResp:
		if code := decodeBatchRespPayload(body[wireHdrSize:], resp); code != 0 {
			return fmt.Errorf("binary response payload failed decode (code %d)", code)
		}
		return nil
	case frameNack:
		payload := body[wireHdrSize:]
		if len(payload) < 4 {
			return fmt.Errorf("binary nack payload %d bytes, below retry-after field", len(payload))
		}
		//rbsglint:allow hotpathalloc -- backpressure branch only; one error value per Nacked frame
		be := &BackpressureError{
			RetryAfter: time.Duration(binary.LittleEndian.Uint32(payload)) * time.Second,
		}
		if decodeBatchRespPayload(payload[4:], resp) == 0 {
			be.Resp = resp
		}
		return be
	case frameErr:
		//rbsglint:allow hotpathalloc -- protocol-reject branch only; never on the steady-state path
		we, ok := decodeErrBody(body[wireHdrSize:])
		if !ok {
			return fmt.Errorf("binary err frame payload failed decode")
		}
		return we
	default:
		//rbsglint:allow hotpathalloc -- unknown-frame error path
		return fmt.Errorf("binary response frame type %d unknown", body[1])
	}
}

// RecvReadBatch reads the oldest outstanding read-batch response into
// r. Nacks decode the partial read accounting into r and return a
// *BackpressureError; Err frames return the typed *WireError.
//
//rbsglint:hotpath
func (c *BinaryClient) RecvReadBatch(r *ReadBatchResponse) error {
	body, err := c.readFrame()
	if err != nil {
		return err
	}
	if len(body) < wireHdrSize {
		return fmt.Errorf("binary response body %d bytes, below header size", len(body))
	}
	if body[0] != wireVersion {
		return fmt.Errorf("binary response version %d, client speaks %d", body[0], wireVersion)
	}
	switch body[1] {
	case frameReadResp:
		if code := decodeReadRespPayload(body[wireHdrSize:], r); code != 0 {
			return fmt.Errorf("binary read response payload failed decode (code %d)", code)
		}
		return nil
	case frameNack:
		payload := body[wireHdrSize:]
		if len(payload) < 4 {
			return fmt.Errorf("binary nack payload %d bytes, below retry-after field", len(payload))
		}
		//rbsglint:allow hotpathalloc -- backpressure branch only; one error value per Nacked frame
		be := &BackpressureError{
			RetryAfter: time.Duration(binary.LittleEndian.Uint32(payload)) * time.Second,
		}
		if decodeReadRespPayload(payload[4:], r) == 0 {
			be.ReadResp = r
		}
		return be
	case frameErr:
		//rbsglint:allow hotpathalloc -- protocol-reject branch only; never on the steady-state path
		we, ok := decodeErrBody(body[wireHdrSize:])
		if !ok {
			return fmt.Errorf("binary err frame payload failed decode")
		}
		return we
	default:
		//rbsglint:allow hotpathalloc -- unknown-frame error path
		return fmt.Errorf("binary read response frame type %d unknown", body[1])
	}
}

// Batch sends one batch frame and blocks for its answer (lockstep).
// The returned response is the client's own buffer, valid until the
// next lockstep call.
func (c *BinaryClient) Batch(ops []BatchOp) (*BatchResponse, error) {
	if err := c.SendBatch(ops); err != nil {
		return nil, err
	}
	if err := c.RecvBatch(&c.resp); err != nil {
		return nil, err
	}
	return &c.resp, nil
}

// ReadBatch reads lines through the streaming read-batch frame
// (lockstep): the response carries data and batch accounting but no
// per-op latencies. Against a server that predates read frames it
// falls back — transparently and stickily for this connection — to a
// full BatchReq of reads, so callers get identical data either way
// (the fallback just pays the fatter response body). The returned
// response is the client's own buffer, valid until the next lockstep
// call.
func (c *BinaryClient) ReadBatch(lines []uint64) (*ReadBatchResponse, error) {
	if !c.readFallback {
		if err := c.SendReadBatch(lines); err != nil {
			return nil, err
		}
		err := c.RecvReadBatch(&c.rresp)
		if we, ok := err.(*WireError); ok && we.Code == wireErrMalformed {
			// An old server answers an unknown frame type with a typed
			// malformed-frame Err and keeps the connection: the designed
			// signal to fall back to the frames it does speak.
			c.readFallback = true
		} else {
			return &c.rresp, err
		}
	}
	if cap(c.fallbackOps) < len(lines) {
		c.fallbackOps = make([]BatchOp, 0, len(lines))
	}
	c.fallbackOps = c.fallbackOps[:0]
	for _, l := range lines {
		c.fallbackOps = append(c.fallbackOps, BatchOp{Line: l, Read: true})
	}
	resp, err := c.Batch(c.fallbackOps)
	if be, ok := err.(*BackpressureError); ok && be.Resp != nil {
		c.rresp = readRespFromBatch(resp)
		be.Resp, be.ReadResp = nil, &c.rresp
		return nil, be
	}
	if err != nil {
		return nil, err
	}
	c.rresp = readRespFromBatch(resp)
	return &c.rresp, nil
}

// readRespFromBatch projects a full batch response onto the thin read
// response shape (the fallback path's translation).
func readRespFromBatch(r *BatchResponse) ReadBatchResponse {
	return ReadBatchResponse{
		Applied: r.Applied, Rejected: r.Rejected,
		NsSum: r.NsSum, NsMax: r.NsMax,
		Data: r.Data,
	}
}

// readFrame reads one length-prefixed frame body into the client's
// receive buffer.
//
//rbsglint:hotpath
func (c *BinaryClient) readFrame() ([]byte, error) {
	if err := readFull(c.conn, c.hdr[:]); err != nil {
		return nil, fmt.Errorf("binary read header: %w", err)
	}
	n := binary.LittleEndian.Uint32(c.hdr[:])
	if n > wireMaxBody {
		return nil, fmt.Errorf("binary response body %d bytes over limit %d", n, wireMaxBody)
	}
	if cap(c.rbuf) < int(n) {
		c.rbuf = make([]byte, n)
	}
	c.rbuf = c.rbuf[:n]
	if err := readFull(c.conn, c.rbuf); err != nil {
		return nil, fmt.Errorf("binary read body: %w", err)
	}
	return c.rbuf, nil
}

// retryBatch is Batch with bounded backpressure retries — demand ops
// must not be silently dropped (an attacker's write stream, like a
// CPU's, just stalls until the controller accepts it).
func (c *BinaryClient) retryBatch(ops []BatchOp) *BatchResponse {
	for {
		resp, err := c.Batch(ops)
		if err == nil {
			return resp
		}
		be, ok := err.(*BackpressureError)
		if !ok {
			panic(fmt.Errorf("memserver binary client: batch: %w", err)) //rbsglint:allow panicpolicy -- documented attack.Target contract: a broken server is fatal in the tests/demos this client exists for
		}
		time.Sleep(be.RetryAfter)
	}
}

// Write issues one demand write and returns the simulated latency in
// nanoseconds. It panics on transport errors: it exists to satisfy
// attack.Target for tests and demos, where a broken server is fatal.
func (c *BinaryClient) Write(la uint64, content pcm.Content) uint64 {
	c.op[0] = BatchOp{Line: la, Data: uint8(content)}
	resp := c.retryBatch(c.op[:1])
	return resp.Ns[0]
}

// Read issues one demand read; same contract as Write.
func (c *BinaryClient) Read(la uint64) (pcm.Content, uint64) {
	c.op[0] = BatchOp{Line: la, Read: true}
	resp := c.retryBatch(c.op[:1])
	return pcm.Content(resp.Data[0]), resp.Ns[0]
}

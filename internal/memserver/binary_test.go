package memserver

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"securityrbsg/internal/pcm"
	"securityrbsg/internal/stats"
)

// startBinaryListener attaches a binary-protocol listener to s and
// registers its shutdown (before any drain cleanup the caller has
// already registered — t.Cleanup runs LIFO, and ShutdownBinary must
// run while the actors still do).
func startBinaryListener(t *testing.T, s *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.ServeBinary(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.ShutdownBinary(ctx); err != nil {
			t.Errorf("binary shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve binary: %v", err)
		}
	})
	return ln.Addr().String()
}

// startBinaryServer builds and starts a server with a binary listener
// and returns a connected client plus the listener address.
func startBinaryServer(t *testing.T, cfg Config) (*Server, *BinaryClient, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	addr := startBinaryListener(t, s)
	c := dialBinary(t, addr)
	return s, c, addr
}

func dialBinary(t *testing.T, addr string) *BinaryClient {
	t.Helper()
	c, err := DialBinary(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestBinaryWriteReadRoundTrip(t *testing.T) {
	_, c, _ := startBinaryServer(t, testConfig())
	for _, la := range []uint64{0, 1, 2, 3, 4095, 1234} {
		want := pcm.Content(la % 3)
		if ns := c.Write(la, want); ns == 0 {
			t.Fatalf("write LA %d: zero latency", la)
		}
		got, ns := c.Read(la)
		if got != want {
			t.Fatalf("read LA %d = %v, want %v", la, got, want)
		}
		if ns < pcm.DefaultTiming.ReadNs {
			t.Fatalf("read LA %d: latency %d below device read time", la, ns)
		}
	}
}

// TestBinaryMatchesJSON is the differential proof the two transports
// front the same machine: identically seeded servers fed the same op
// stream — one over HTTP+JSON, one over the binary protocol — must
// report identical per-op latencies, data, and accounting.
func TestBinaryMatchesJSON(t *testing.T) {
	_, jc := startServer(t, testConfig())
	_, bc, _ := startBinaryServer(t, testConfig())

	rng := stats.NewRNG(7)
	ops := make([]BatchOp, 100)
	for round := 0; round < 5; round++ {
		for i := range ops {
			ops[i] = BatchOp{Line: rng.Uint64n(4096), Data: uint8(rng.Uint64n(3))}
			if rng.Float64() < 0.2 {
				ops[i].Read = true
				ops[i].Data = 0
			}
		}
		jr, err := jc.Batch(ops)
		if err != nil {
			t.Fatal(err)
		}
		br, err := bc.Batch(ops)
		if err != nil {
			t.Fatal(err)
		}
		if jr.Applied != br.Applied || jr.Rejected != br.Rejected ||
			jr.NsSum != br.NsSum || jr.NsMax != br.NsMax {
			t.Fatalf("round %d accounting: json %+v != binary %+v", round, jr, br)
		}
		for i := range ops {
			if jr.Ns[i] != br.Ns[i] || jr.Data[i] != br.Data[i] {
				t.Fatalf("round %d op %d (%+v): json ns=%d d=%d, binary ns=%d d=%d",
					round, i, ops[i], jr.Ns[i], jr.Data[i], br.Ns[i], br.Data[i])
			}
		}
	}
}

// TestBinaryVersionSkew pins the versioning rule: a frame from the
// future gets a typed Err frame back — listable by the client — and
// the connection survives to serve the current version.
func TestBinaryVersionSkew(t *testing.T) {
	_, c, _ := startBinaryServer(t, testConfig())
	c.Version = wireVersion + 1
	_, err := c.Batch([]BatchOp{{Line: 1}})
	var we *WireError
	if !errors.As(err, &we) {
		t.Fatalf("skewed batch: got %v, want *WireError", err)
	}
	if we.Code != wireErrVersion {
		t.Fatalf("skewed batch: code %d, want %d (unsupported-version)", we.Code, wireErrVersion)
	}
	if !strings.Contains(we.Error(), "unsupported-version") ||
		!strings.Contains(we.Error(), "known codes:") {
		t.Fatalf("skew error not listable: %q", we.Error())
	}
	// Same connection, correct version: framing stayed intact.
	c.Version = 0
	resp, err := c.Batch([]BatchOp{{Line: 1}})
	if err != nil || resp.Applied != 1 {
		t.Fatalf("post-skew batch on same conn: resp=%+v err=%v", resp, err)
	}
}

// TestBinaryNackBackpressure mirrors TestBackpressure429: a full bank
// queue answers with a Nack frame carrying retry-after and partial
// accounting instead of an HTTP 429.
func TestBinaryNackBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.QueueDepth; i++ {
		s.actors[0].ch <- bankReq{}
	}
	addr := startBinaryListener(t, s)
	c := dialBinary(t, addr)

	resp, err := c.Batch([]BatchOp{{Line: 0}})
	be, ok := err.(*BackpressureError)
	if !ok {
		t.Fatalf("want BackpressureError, got resp=%+v err=%v", resp, err)
	}
	if be.RetryAfter != nackRetryAfterSecs*time.Second {
		t.Fatalf("retry-after %v, want %ds", be.RetryAfter, nackRetryAfterSecs)
	}
	if be.Resp == nil || be.Resp.Rejected != 1 || be.Resp.Applied != 0 {
		t.Fatalf("partial accounting wrong: %+v", be.Resp)
	}
	if got := s.actors[0].rejected.Load(); got != 1 {
		t.Fatalf("bank 0 rejected counter = %d, want 1", got)
	}
}

// rawDial opens a plain TCP connection to the binary listener for
// tests that speak the protocol by hand.
func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// readRawFrame reads one frame body off a raw connection.
func readRawFrame(t *testing.T, conn net.Conn) []byte {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		t.Fatalf("read frame header: %v", err)
	}
	body := make([]byte, binary.LittleEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(conn, body); err != nil {
		t.Fatalf("read frame body: %v", err)
	}
	return body
}

// wantErrFrame asserts body is an Err frame with the given code.
func wantErrFrame(t *testing.T, body []byte, code uint16) {
	t.Helper()
	if len(body) < wireHdrSize || body[0] != wireVersion || body[1] != frameErr {
		t.Fatalf("want Err frame, got body % x", body)
	}
	we, ok := decodeErrBody(body[wireHdrSize:])
	if !ok {
		t.Fatalf("Err frame payload failed decode: % x", body)
	}
	if we.Code != code {
		t.Fatalf("Err code %d (%s), want %d", we.Code, we.Msg, code)
	}
}

// TestBinaryOversizedFrameClosesConn: a length prefix over wireMaxBody
// is answered with a typed Err frame and the connection closes — the
// server will not stream-skip an attacker-sized body.
func TestBinaryOversizedFrameClosesConn(t *testing.T) {
	s, _, addr := startBinaryServer(t, testConfig())
	conn := rawDial(t, addr)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], wireMaxBody+1)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	wantErrFrame(t, readRawFrame(t, conn), wireErrTooLarge)
	if _, err := conn.Read(hdr[:1]); err != io.EOF {
		t.Fatalf("connection not closed after oversized frame: %v", err)
	}
	if got := s.binRejects.Load(); got != 1 {
		t.Fatalf("binary_reject_total = %d, want 1", got)
	}
}

// TestBinaryMalformedKeepsConn: structurally broken bodies get typed
// Err frames but — being length-delimited — do not cost the
// connection.
func TestBinaryMalformedKeepsConn(t *testing.T) {
	_, _, addr := startBinaryServer(t, testConfig())
	conn := rawDial(t, addr)

	send := func(body []byte) {
		t.Helper()
		if _, err := conn.Write(appendFrame(nil, body)); err != nil {
			t.Fatal(err)
		}
	}

	// Body below the version+type prelude.
	send([]byte{wireVersion})
	wantErrFrame(t, readRawFrame(t, conn), wireErrMalformed)

	// Unknown frame type.
	send([]byte{wireVersion, 0x7f})
	wantErrFrame(t, readRawFrame(t, conn), wireErrMalformed)

	// Count disagreeing with the payload length.
	body := []byte{wireVersion, frameBatchReq}
	body = binary.LittleEndian.AppendUint32(body, 3) // claims 3 ops, carries none
	send(body)
	wantErrFrame(t, readRawFrame(t, conn), wireErrMalformed)

	// Flags outside {0,1}.
	body = appendBatchReqBody(nil, wireVersion, []BatchOp{{Line: 1}})
	body[len(body)-2] = 2
	send(body)
	wantErrFrame(t, readRawFrame(t, conn), wireErrMalformed)

	// Zero ops.
	send(appendBatchReqBody(nil, wireVersion, nil))
	wantErrFrame(t, readRawFrame(t, conn), wireErrEmpty)

	// The same connection still serves a valid batch.
	send(appendBatchReqBody(nil, wireVersion, []BatchOp{{Line: 1}}))
	resp := readRawFrame(t, conn)
	if len(resp) < wireHdrSize || resp[0] != wireVersion || resp[1] != frameBatchResp {
		t.Fatalf("valid batch after rejects: got frame % x", resp)
	}
}

// TestBinaryBadOp: semantically invalid ops are rejected whole with a
// typed Err frame, before any bank sees the batch.
func TestBinaryBadOp(t *testing.T) {
	_, c, _ := startBinaryServer(t, testConfig())
	for _, ops := range [][]BatchOp{
		{{Line: 4096}},               // out of the 4096-line space
		{{Line: 1, Data: 3}},         // content class outside {0,1,2}
		{{Line: 1}, {Line: 1 << 40}}, // one good op does not save the batch
	} {
		_, err := c.Batch(ops)
		var we *WireError
		if !errors.As(err, &we) || we.Code != wireErrBadOp {
			t.Fatalf("ops %+v: got %v, want WireError bad-op", ops, err)
		}
	}
	// Rejection is pre-execution: nothing was applied.
	if got, _ := c.Read(1); got != pcm.Zeros {
		t.Fatalf("rejected batch mutated line 1: %v", got)
	}
}

// TestBinaryDrainGoodbye: a connection parked in a read when shutdown
// begins is told why (a draining Err frame) before the socket closes.
func TestBinaryDrainGoodbye(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.ServeBinary(ln) }()

	conn := rawDial(t, ln.Addr().String())
	// Prove the connection is live, then leave its reader parked.
	if _, err := conn.Write(appendFrame(nil, appendBatchReqBody(nil, wireVersion, []BatchOp{{Line: 9}}))); err != nil {
		t.Fatal(err)
	}
	readRawFrame(t, conn)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.ShutdownBinary(ctx); err != nil {
		t.Fatalf("binary shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve binary: %v", err)
	}
	wantErrFrame(t, readRawFrame(t, conn), wireErrDraining)
	var one [1]byte
	if _, err := conn.Read(one[:]); err != io.EOF {
		t.Fatalf("connection not closed after drain goodbye: %v", err)
	}
}

// TestBinaryRejectPathZeroAlloc pins the satellite contract directly:
// once warm, every pre-execution reject path through processFrame
// allocates nothing.
func TestBinaryRejectPathZeroAlloc(t *testing.T) {
	s := MustNew(testConfig()) // actors never started: rejects must not reach them
	sc := &connScratch{batch: getBatchScratch(s.cfg.Banks)}
	defer putBatchScratch(sc.batch)

	badop := appendBatchReqBody(nil, wireVersion, []BatchOp{{Line: 1 << 40}})
	flags := appendBatchReqBody(nil, wireVersion, []BatchOp{{Line: 1}})
	flags[len(flags)-2] = 2
	cases := map[string][]byte{
		"short":    {wireVersion},
		"skew":     {wireVersion + 1, frameBatchReq, 0, 0, 0, 0},
		"badtype":  {wireVersion, 0x7f},
		"truncate": {wireVersion, frameBatchReq, 9, 0, 0, 0},
		"empty":    appendBatchReqBody(nil, wireVersion, nil),
		"badop":    badop,
		"flags":    flags,
	}
	for name, body := range cases {
		s.processFrame(sc, body) // warm the scratch buffers
		if n := testing.AllocsPerRun(200, func() { s.processFrame(sc, body) }); n != 0 {
			t.Errorf("%s reject path allocates %.1f per frame, want 0", name, n)
		}
	}
}

// TestBinaryMetricsCounters: the per-protocol counters split serving
// traffic by transport.
func TestBinaryMetricsCounters(t *testing.T) {
	s, c, _ := startBinaryServer(t, testConfig())
	for round := 0; round < 2; round++ {
		if _, err := c.Batch([]BatchOp{{Line: 1}, {Line: 2}, {Line: 3}}); err != nil {
			t.Fatal(err)
		}
	}
	c.Version = wireVersion + 1
	if _, err := c.Batch([]BatchOp{{Line: 1}}); err == nil {
		t.Fatal("skewed batch not rejected")
	}
	c.Version = 0

	m := ParseMetrics(s.MetricsText())
	for name, want := range map[string]float64{
		"memctld_binary_frames_total":   3,
		"memctld_binary_reject_total":   1,
		"memctld_binary_line_ops_total": 6,
		"memctld_json_line_ops_total":   0,
	} {
		if m[name] != want {
			t.Errorf("%s = %v, want %v", name, m[name], want)
		}
	}
}

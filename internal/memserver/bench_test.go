package memserver

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"securityrbsg/internal/stats"
)

// BenchmarkMemserverBatchWrite measures the service hot path — JSON
// decode, per-bank coalescing, actor round trip, JSON encode — with no
// sockets: requests go straight into the handler. This is the number
// every future transport or queueing change gets compared against
// (bench-smoke in CI executes it once on every push).
func BenchmarkMemserverBatchWrite(b *testing.B) {
	const batch = 256
	s := MustNew(Config{
		Banks: 8, Lines: 8 << 14, Scheme: SchemeRBSGDetector,
		Regions: 32, Interval: 100, Seed: 1, QueueDepth: 256,
	})
	s.Start()
	handler := s.Handler()

	rng := stats.NewRNG(3)
	ops := make([]BatchOp, batch)
	for i := range ops {
		ops[i] = BatchOp{Line: rng.Uint64n(s.Config().Lines), Data: 2}
	}
	body, err := json.Marshal(BatchRequest{Ops: ops})
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/batch", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "lines/s")
}

// BenchmarkMemserverBatchWriteAdaptive is the same hot path with the
// adaptive security level in the loop (perf-gate guard: the bench gate
// fails if its allocs/op ever exceeds the static-scheme batch path's).
// The controller must ride the writes the scheme already does — its
// monitor feed and round-boundary checks live inside NoteWrite, and a
// level decision only redraws keys the remap round was redrawing
// anyway — so steady-state batches allocate nothing beyond what
// BenchmarkMemserverBatchWrite pays.
func BenchmarkMemserverBatchWriteAdaptive(b *testing.B) {
	const batch = 256
	s := MustNew(Config{
		Banks: 8, Lines: 8 << 14, Scheme: SchemeAdaptive,
		Regions: 32, Interval: 100, Stages: 4, Seed: 1, QueueDepth: 256,
	})
	s.Start()
	handler := s.Handler()

	rng := stats.NewRNG(3)
	ops := make([]BatchOp, batch)
	for i := range ops {
		ops[i] = BatchOp{Line: rng.Uint64n(s.Config().Lines), Data: 2}
	}
	body, err := json.Marshal(BatchRequest{Ops: ops})
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/batch", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "lines/s")
}

// BenchmarkBinaryBatchWrite is the binary-protocol counterpart of
// BenchmarkMemserverBatchWrite: the same banks, the same 256-op batch
// shape, but frames through processFrame — the whole binary hot path
// minus socket I/O, exactly as the JSON bench skips sockets by calling
// the handler. The bench gate holds this to ≥3× the JSON path's
// lines/s: if framing ever grows JSON-shaped overhead, the gate sees
// it.
func BenchmarkBinaryBatchWrite(b *testing.B) {
	const batch = 256
	s := MustNew(Config{
		Banks: 8, Lines: 8 << 14, Scheme: SchemeRBSGDetector,
		Regions: 32, Interval: 100, Seed: 1, QueueDepth: 256,
	})
	s.Start()

	rng := stats.NewRNG(3)
	ops := make([]BatchOp, batch)
	for i := range ops {
		ops[i] = BatchOp{Line: rng.Uint64n(s.Config().Lines), Data: 2}
	}
	body := appendBatchReqBody(nil, wireVersion, ops)
	sc := &connScratch{batch: getBatchScratch(s.cfg.Banks)}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, fatal := s.processFrame(sc, body)
		if fatal || len(out) < 4+wireHdrSize || out[4+1] != frameBatchResp {
			b.Fatalf("frame %d: fatal=%v out=% x", i, fatal, out[:min(len(out), 8)])
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "lines/s")
}

// BenchmarkBinaryDecodeFrame isolates the wire decode: one 256-op
// frame body into the pooled op scratch. The gate pins its allocs/op
// at zero — the decode path must stay alloc-free or the protocol has
// lost its reason to exist.
func BenchmarkBinaryDecodeFrame(b *testing.B) {
	const batch = 256
	rng := stats.NewRNG(3)
	ops := make([]BatchOp, batch)
	for i := range ops {
		ops[i] = BatchOp{Line: rng.Uint64n(8 << 14), Data: 2}
		if i%5 == 0 {
			ops[i].Read = true
			ops[i].Data = 0
		}
	}
	payload := appendBatchReqBody(nil, wireVersion, ops)[wireHdrSize:]
	dst := make([]BatchOp, 0, batch)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decoded, code := decodeBatchReq(payload, dst)
		if code != 0 || len(decoded) != batch {
			b.Fatalf("decode: code %d, %d ops", code, len(decoded))
		}
		dst = decoded
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "lines/s")
}

// BenchmarkMemserverSingleWrite is the uncoalesced per-request cost:
// one line per HTTP round trip through the handler.
func BenchmarkMemserverSingleWrite(b *testing.B) {
	s := MustNew(Config{
		Banks: 8, Lines: 8 << 14, Scheme: SchemeRBSGDetector,
		Regions: 32, Interval: 100, Seed: 1, QueueDepth: 256,
	})
	s.Start()
	handler := s.Handler()
	body, _ := json.Marshal(WriteRequest{Line: 12345, Data: 2})

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/write", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

package memserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"securityrbsg/internal/pcm"
)

// Client speaks the memctld wire API. Its Write and Read methods match
// attack.Target — logical address in, simulated latency out — so every
// attacker in internal/attack can run unmodified against a live server,
// which is exactly what the wire-level regression test does.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8100".
	BaseURL string
	// HTTP is the transport; nil means a default client.
	HTTP *http.Client
}

// NewClient returns a client for the server at base.
func NewClient(base string) *Client {
	return &Client{BaseURL: base, HTTP: &http.Client{Timeout: 30 * time.Second}}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// BackpressureError reports a 429 and how long the server asked us to
// back off.
type BackpressureError struct {
	RetryAfter time.Duration
	// Resp holds the partial batch accounting when the 429 answered a
	// batch (nil for single ops).
	Resp *BatchResponse
	// ReadResp holds the partial accounting when a binary read-batch
	// frame was Nacked (nil otherwise).
	ReadResp *ReadBatchResponse
}

func (e *BackpressureError) Error() string {
	return fmt.Sprintf("server backpressure, retry after %v", e.RetryAfter)
}

// post sends a JSON body and decodes a JSON reply into out.
func (c *Client) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Post(c.BaseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		be := &BackpressureError{RetryAfter: time.Second}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			be.RetryAfter = time.Duration(secs) * time.Second
		}
		if br, ok := out.(*BatchResponse); ok && json.NewDecoder(resp.Body).Decode(br) == nil {
			be.Resp = br
		}
		return be
	}
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// retryPost is post with bounded backpressure retries — single demand
// ops must not be silently dropped (an attacker's write stream, like a
// CPU's, just stalls until the controller accepts it).
func (c *Client) retryPost(path string, in, out any) error {
	for {
		err := c.post(path, in, out)
		be, ok := err.(*BackpressureError)
		if !ok {
			return err
		}
		time.Sleep(be.RetryAfter)
	}
}

// Write issues one demand write and returns the simulated latency in
// nanoseconds. It panics on transport errors: it exists to satisfy
// attack.Target for tests and demos, where a broken server is fatal.
func (c *Client) Write(la uint64, content pcm.Content) uint64 {
	var resp WriteResponse
	if err := c.retryPost("/v1/write", WriteRequest{Line: la, Data: uint8(content)}, &resp); err != nil {
		panic(fmt.Errorf("memserver client: write LA %d: %w", la, err)) //rbsglint:allow panicpolicy -- documented attack.Target contract: a broken server is fatal in the tests/demos this client exists for
	}
	return resp.Ns
}

// Read issues one demand read; same contract as Write.
func (c *Client) Read(la uint64) (pcm.Content, uint64) {
	var resp ReadResponse
	if err := c.retryPost("/v1/read", ReadRequest{Line: la}, &resp); err != nil {
		panic(fmt.Errorf("memserver client: read LA %d: %w", la, err)) //rbsglint:allow panicpolicy -- documented attack.Target contract: a broken server is fatal in the tests/demos this client exists for
	}
	return pcm.Content(resp.Data), resp.Ns
}

// Batch submits ops to /v1/batch. On backpressure it returns a
// *BackpressureError carrying the partial accounting.
func (c *Client) Batch(ops []BatchOp) (*BatchResponse, error) {
	var resp BatchResponse
	if err := c.post("/v1/batch", BatchRequest{Ops: ops}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Healthz returns nil while the server accepts traffic.
func (c *Client) Healthz() error {
	resp, err := c.httpClient().Get(c.BaseURL + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: %s", resp.Status)
	}
	return nil
}

// Metrics scrapes /metrics and returns per-name totals summed over
// banks (see ParseMetrics).
func (c *Client) Metrics() (map[string]float64, error) {
	resp, err := c.httpClient().Get(c.BaseURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: %s", resp.Status)
	}
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return ParseMetrics(string(text)), nil
}

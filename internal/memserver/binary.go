package memserver

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// The binary listener: the same pooled batch engine as /v1/batch behind
// the length-prefixed wire protocol (wire.go) instead of HTTP+JSON.
// One goroutine per connection reads frames, decodes them zero-copy
// into the connection's pooled batch scratch, runs them through
// executeBatch (the identical coalesce/enqueue/collect core the JSON
// handler uses — banks cannot tell the protocols apart), and writes
// the response frame from the same scratch. Backpressure maps the JSON
// 429+Retry-After onto a Nack frame carrying the retry-after seconds
// and the partial accounting; draining maps 503 onto a typed Err
// frame. Per-op simulated latencies cross this wire exactly as they
// cross the JSON one, so the timing side channel is transport-neutral.

// binaryState tracks the listeners and live connections of the binary
// protocol so a drain can stop them gracefully.
type binaryState struct {
	mu      sync.Mutex
	lns     []net.Listener
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
	closing bool
}

// connScratch is one connection's reusable frame state: the length
// prefix, the frame body buffer, and the pooled batch scratch that op
// decode, execution, and response encode all share.
type connScratch struct {
	hdr   [4]byte
	body  []byte
	batch *batchScratch
}

// ServeBinary accepts binary-protocol connections on ln until the
// listener closes (ShutdownBinary closes it, as does memctld on
// SIGTERM). It returns nil on a clean close.
func (s *Server) ServeBinary(ln net.Listener) error {
	s.bin.mu.Lock()
	if s.bin.conns == nil {
		s.bin.conns = make(map[net.Conn]struct{})
	}
	s.bin.lns = append(s.bin.lns, ln)
	s.bin.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.bin.mu.Lock()
		if s.bin.closing {
			s.bin.mu.Unlock()
			c.Close()
			continue
		}
		s.bin.conns[c] = struct{}{}
		s.bin.wg.Add(1)
		s.bin.mu.Unlock()
		go s.handleBinaryConn(c)
	}
}

// ShutdownBinary stops the binary protocol: listeners close, blocked
// reads are woken by an immediate deadline so each connection can
// answer its client with a draining Err frame, and every connection
// goroutine is waited for (or force-closed when ctx expires). Call it
// before Drain, like http.Server.Shutdown: the actors must still be
// running while in-flight frames finish.
func (s *Server) ShutdownBinary(ctx context.Context) error {
	s.bin.mu.Lock()
	s.bin.closing = true
	for _, ln := range s.bin.lns {
		ln.Close()
	}
	s.bin.lns = nil
	for c := range s.bin.conns {
		// Wake the reader; the handler sees closing and says goodbye.
		c.SetReadDeadline(time.Unix(0, 1)) //rbsglint:allow simdeterminism -- connection teardown plumbing, not simulation state
	}
	s.bin.mu.Unlock()

	done := make(chan struct{})
	go func() { s.bin.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.bin.mu.Lock()
		for c := range s.bin.conns {
			c.Close()
		}
		s.bin.mu.Unlock()
		return fmt.Errorf("memserver: binary shutdown: %w", ctx.Err())
	}
}

// binaryClosing reports whether ShutdownBinary has begun.
func (s *Server) binaryClosing() bool {
	s.bin.mu.Lock()
	defer s.bin.mu.Unlock()
	return s.bin.closing
}

// handleBinaryConn is one connection's frame loop. Connection setup and
// teardown may allocate; the per-frame path (readFrame → processFrame →
// write) must not.
func (s *Server) handleBinaryConn(c net.Conn) {
	defer func() {
		s.bin.mu.Lock()
		delete(s.bin.conns, c)
		s.bin.mu.Unlock()
		s.bin.wg.Done()
		c.Close()
	}()
	sc := &connScratch{batch: getBatchScratch(s.cfg.Banks)}
	defer putBatchScratch(sc.batch)
	for {
		body, err := s.readFrame(c, sc)
		if err != nil {
			// A reader woken mid-drain gets told why before the
			// connection goes away; any other read error is the client
			// hanging up (or a hard reject that already answered).
			if s.binaryClosing() {
				c.Write(frameOut(sc.batch, appendErrBody(frameReserve(sc.batch), wireErrDraining, "server draining")))
			}
			return
		}
		out, fatal := s.processFrame(sc, body)
		if len(out) > 0 {
			if _, err := c.Write(out); err != nil {
				return
			}
		}
		if fatal {
			return
		}
	}
}

// readFrame reads one length-prefixed frame body into the connection's
// buffer. An oversized length prefix is a hard reject: the client is
// sent a typed Err frame, the caller gets errFrameTooLarge, and the
// connection closes (the server will not stream-skip an attacker-sized
// body to stay in frame sync).
//
//rbsglint:hotpath
func (s *Server) readFrame(c net.Conn, sc *connScratch) ([]byte, error) {
	if err := readFull(c, sc.hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(sc.hdr[:])
	if n > wireMaxBody {
		s.binRejects.Add(1)
		c.Write(frameOut(sc.batch, appendErrBody(frameReserve(sc.batch), wireErrTooLarge, "frame body over limit")))
		return nil, errFrameTooLarge
	}
	if cap(sc.body) < int(n) {
		sc.body = make([]byte, n)
	}
	sc.body = sc.body[:n]
	if err := readFull(c, sc.body); err != nil {
		return nil, err
	}
	return sc.body, nil
}

var errFrameTooLarge = fmt.Errorf("memserver: binary frame over size limit")

// processFrame decodes one frame body, executes it, and encodes the
// response frame into the connection scratch. fatal reports that the
// connection must close (the server is draining). This is the whole
// binary hot path minus the socket I/O — BenchmarkBinaryBatchWrite
// drives it directly.
//
//rbsglint:hotpath
func (s *Server) processFrame(sc *connScratch, body []byte) (out []byte, fatal bool) {
	s.binFrames.Add(1)
	b := sc.batch
	if len(body) < wireHdrSize {
		s.binRejects.Add(1)
		return frameOut(b, appendErrBody(frameReserve(b), wireErrMalformed, "frame body under header size")), false
	}
	if body[0] != wireVersion {
		// Version skew: the frame was length-delimited, so framing is
		// intact — answer with a typed Err and keep the connection.
		s.binRejects.Add(1)
		return frameOut(b, appendErrBody(frameReserve(b), wireErrVersion, "server speaks version 1")), false
	}
	var (
		ops  []BatchOp
		code uint16
	)
	read := false
	switch body[1] {
	case frameBatchReq:
		ops, code = decodeBatchReq(body[wireHdrSize:], b.req.Ops)
	case frameReadReq:
		// Streaming read-mostly mode: the reads run through the same
		// batch engine, only the response encoding is thinner.
		read = true
		ops, code = decodeReadReqOps(body[wireHdrSize:], b.req.Ops)
	default:
		s.binRejects.Add(1)
		return frameOut(b, appendErrBody(frameReserve(b), wireErrMalformed, "frame type not batch-req or read-req")), false
	}
	b.req.Ops = ops
	if code != 0 {
		s.binRejects.Add(1)
		return frameOut(b, appendErrBody(frameReserve(b), code, "batch payload failed decode")), false
	}
	for _, o := range ops {
		if o.Line >= s.cfg.Lines || o.Data > 2 {
			s.binRejects.Add(1)
			return frameOut(b, appendErrBody(frameReserve(b), wireErrBadOp, "op line out of space or content class not in {0,1,2}")), false
		}
	}

	draining := s.executeBatch(b)
	resetRuns(b) // the scratch lives as long as the connection
	resp := &b.resp
	s.binLineOps.Add(uint64(resp.Applied))
	if read {
		s.binReadOps.Add(uint64(resp.Applied))
	}
	switch {
	case resp.Applied == 0 && draining:
		return frameOut(b, appendErrBody(frameReserve(b), wireErrDraining, "server draining")), true
	case resp.Rejected > 0:
		o := frameReserve(b)
		o = append(o, wireVersion, frameNack)
		o = binary.LittleEndian.AppendUint32(o, nackRetryAfterSecs)
		if read {
			o = appendReadRespPayload(o, resp)
		} else {
			o = appendBatchRespPayload(o, resp)
		}
		return frameOut(b, o), false
	case read:
		o := frameReserve(b)
		o = append(o, wireVersion, frameReadResp)
		o = appendReadRespPayload(o, resp)
		return frameOut(b, o), false
	default:
		o := frameReserve(b)
		o = append(o, wireVersion, frameBatchResp)
		o = appendBatchRespPayload(o, resp)
		return frameOut(b, o), false
	}
}

// nackRetryAfterSecs mirrors the JSON API's Retry-After header value.
const nackRetryAfterSecs = 1

// frameReserve starts a response frame in the batch scratch's out
// buffer, leaving room for the length prefix frameOut fills in.
//
//rbsglint:hotpath
func frameReserve(b *batchScratch) []byte {
	if cap(b.out) < 4 {
		b.out = make([]byte, 4)
	}
	return b.out[:4]
}

// frameOut finishes a frame started by frameReserve: the body length
// lands in the reserved prefix and the whole buffer is the frame.
//
//rbsglint:hotpath
func frameOut(b *batchScratch, buf []byte) []byte {
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	b.out = buf
	return buf
}

// readFull fills buf from c (io.ReadFull without the out-of-module
// call: c.Read is dynamic dispatch the hot-path contract trusts).
//
//rbsglint:hotpath
func readFull(c net.Conn, buf []byte) error {
	for len(buf) > 0 {
		n, err := c.Read(buf)
		buf = buf[n:]
		if err != nil {
			if len(buf) == 0 {
				return nil
			}
			return err
		}
	}
	return nil
}

package memserver

import (
	"encoding/binary"
	"fmt"
)

// The binary wire protocol: the hot serving path without JSON framing.
//
// Every frame is length-prefixed and little-endian:
//
//	frame := u32 bodyLen | body                    (bodyLen = len(body))
//	body  := u8 version | u8 type | payload
//
// Payloads by frame type:
//
//	BatchReq  := u32 count | count × (u64 line | u8 flags | u8 content)
//	BatchResp := u32 applied | u32 rejected | u64 nsSum | u64 nsMax |
//	             u32 count | count × (u64 ns | u8 data)
//	ReadReq   := u32 count | count × u64 line
//	ReadResp  := u32 applied | u32 rejected | u64 nsSum | u64 nsMax |
//	             u32 count | count × u8 data
//	Nack      := u32 retryAfterSecs | <payload of the response the
//	             request would have gotten: BatchResp for a BatchReq,
//	             ReadResp for a ReadReq>
//	Err       := u16 code | u16 msgLen | msg bytes
//
// ReadReq is the streaming read-mostly mode: a batch of reads whose
// response carries the data bytes and the batch-level accounting
// (applied/rejected/nsSum/nsMax) but skips the 8-byte per-op ns echo —
// 1 byte per op instead of 9 on the response body, for read-dominated
// streams that only need the data. The ops execute through the same
// per-bank engine as a full batch, so what the banks do (and the
// aggregate timing they emit) is identical; only the response encoding
// is thinner (the differential test pins data equality against the
// full-fat path).
//
// Versioning rules: the u32 length prefix and the leading version byte
// never change meaning — they are the layer a server of any version can
// parse, which is what lets a version-skewed frame be answered with a
// typed Err frame instead of a connection drop (the server skips the
// length-delimited body it cannot interpret and stays in sync).
// Everything after the version byte is owned by that version; new op
// kinds or fields mean a new version value, never a silent re-reading
// of v1 bytes. New frame *type* values are the one additive escape
// hatch: a server that predates a type cannot misread it — it answers
// a typed malformed-frame Err and keeps the connection — so a client
// probing a new type gets an explicit signal to fall back to the
// frames the server does speak (BinaryClient.ReadBatch falls back to a
// full BatchReq of reads this way).
//
// Op records are fixed width (wireOpSize bytes), so the decoder indexes
// the request payload directly — no reflection, no per-op allocation —
// and the count is cross-checked against the payload length before any
// op is read: a frame whose count disagrees with its byte length is
// rejected whole.
//
// The timing side channel crosses this wire exactly as it crosses the
// JSON API: per-op simulated latencies travel in the response payload
// uncompressed and unaggregated, so the remap-latency signal the
// paper's RTA reads is serialization-independent (the binary attack
// regression test pins this).

const (
	// wireVersion is the protocol version this build speaks.
	wireVersion = 1

	// wireMaxBody bounds one frame body. A length prefix above this is
	// a hard reject: the server answers with an Err frame and closes
	// the connection, since it will not stream-skip an attacker-sized
	// body to stay in sync.
	wireMaxBody = 1 << 20

	// wireMaxOps bounds the ops in one batch frame (it is what
	// wireMaxBody admits, stated in ops).
	wireMaxOps = (wireMaxBody - wireHdrSize - 4) / wireOpSize

	// wireHdrSize is the body prelude: version byte + type byte.
	wireHdrSize = 2

	// wireOpSize is one fixed-width op record: u64 line, u8 flags
	// (bit 0 = read), u8 content class.
	wireOpSize = 10

	// wireResSize is one fixed-width result record: u64 ns, u8 data.
	wireResSize = 9

	// wireReadOpSize is one read-batch op record: just the u64 line.
	wireReadOpSize = 8

	// wireMaxReadOps bounds the ops in one read-batch frame.
	wireMaxReadOps = (wireMaxBody - wireHdrSize - 4) / wireReadOpSize
)

// Frame types.
const (
	frameBatchReq  = 0x01 // client → server: a batch of ops
	frameBatchResp = 0x02 // server → client: per-op latencies + accounting
	frameNack      = 0x03 // server → client: backpressure (429 + Retry-After equivalent)
	frameErr       = 0x04 // server → client: typed error
	frameReadReq   = 0x05 // client → server: a batch of reads (streaming read-mostly mode)
	frameReadResp  = 0x06 // server → client: data bytes + accounting, no per-op ns echo
)

// Err frame codes. The name table keeps client-surfaced errors
// listable: an unknown code still renders, a known one names itself.
const (
	wireErrVersion   = 0x01 // frame version not spoken by this server
	wireErrMalformed = 0x02 // frame failed structural decode
	wireErrTooLarge  = 0x03 // length prefix above wireMaxBody (connection closes)
	wireErrBadOp     = 0x04 // op failed semantic validation (line range / content class)
	wireErrDraining  = 0x05 // server is draining; no more work accepted
	wireErrEmpty     = 0x06 // batch carried zero ops
)

// wireErrName maps Err codes to stable names (client error listings).
var wireErrName = map[uint16]string{
	wireErrVersion:   "unsupported-version",
	wireErrMalformed: "malformed-frame",
	wireErrTooLarge:  "frame-too-large",
	wireErrBadOp:     "bad-op",
	wireErrDraining:  "draining",
	wireErrEmpty:     "empty-batch",
}

// WireError is an Err frame surfaced by the binary client. It is a
// typed, listable error: Code names the failure class (String form in
// the message), Msg carries the server's detail line.
type WireError struct {
	Code uint16
	Msg  string
}

func (e *WireError) Error() string {
	name := wireErrName[e.Code]
	if name == "" {
		name = fmt.Sprintf("code-%d", e.Code)
	}
	known := "known codes:"
	for c := uint16(1); c <= wireErrEmpty; c++ {
		if n, ok := wireErrName[c]; ok {
			known += " " + n
		}
	}
	return fmt.Sprintf("binary wire error %s: %s (%s)", name, e.Msg, known)
}

// appendFrame wraps a finished body with its length prefix. The body
// must already start with the version and type bytes.
func appendFrame(b, body []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(body)))
	return append(b, body...)
}

// appendBatchReqBody appends the body (version|type|payload) of a batch
// request for ops. The caller frames it with appendFrame or by
// reserving the prefix itself.
func appendBatchReqBody(b []byte, version uint8, ops []BatchOp) []byte {
	b = append(b, version, frameBatchReq)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ops)))
	for _, o := range ops {
		b = binary.LittleEndian.AppendUint64(b, o.Line)
		var flags uint8
		if o.Read {
			flags = 1
		}
		b = append(b, flags, o.Data)
	}
	return b
}

// decodeBatchReq parses a BatchReq payload into ops (appended to
// ops[:0], capacity reused). It is the zero-copy hot decode: fixed
// offsets into payload, no reads past len(payload), and nothing
// allocated on any reject path (the returned code is the entire error).
//
//rbsglint:hotpath
func decodeBatchReq(payload []byte, ops []BatchOp) ([]BatchOp, uint16) {
	ops = ops[:0]
	if len(payload) < 4 {
		return ops, wireErrMalformed
	}
	count := binary.LittleEndian.Uint32(payload)
	if count == 0 {
		return ops, wireErrEmpty
	}
	if uint64(count) > wireMaxOps {
		return ops, wireErrMalformed
	}
	rest := payload[4:]
	if uint64(len(rest)) != uint64(count)*wireOpSize {
		return ops, wireErrMalformed
	}
	for off := 0; off < len(rest); off += wireOpSize {
		rec := rest[off : off+wireOpSize]
		flags := rec[8]
		if flags > 1 {
			return ops[:0], wireErrMalformed
		}
		ops = append(ops, BatchOp{
			Line: binary.LittleEndian.Uint64(rec),
			Read: flags == 1,
			Data: rec[9],
		})
	}
	return ops, 0
}

// appendBatchRespPayload appends the BatchResp payload for r. Per-op
// latencies travel verbatim: this is the serialization the timing side
// channel crosses.
//
//rbsglint:hotpath
func appendBatchRespPayload(b []byte, r *BatchResponse) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(r.Applied))
	b = binary.LittleEndian.AppendUint32(b, uint32(r.Rejected))
	b = binary.LittleEndian.AppendUint64(b, r.NsSum)
	b = binary.LittleEndian.AppendUint64(b, r.NsMax)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Ns)))
	for i, ns := range r.Ns {
		b = binary.LittleEndian.AppendUint64(b, ns)
		b = append(b, r.Data[i])
	}
	return b
}

// decodeBatchRespPayload parses a BatchResp (or the tail of a Nack)
// payload into r, reusing r's slice capacity.
func decodeBatchRespPayload(payload []byte, r *BatchResponse) uint16 {
	if len(payload) < 28 {
		return wireErrMalformed
	}
	r.Applied = int(binary.LittleEndian.Uint32(payload))
	r.Rejected = int(binary.LittleEndian.Uint32(payload[4:]))
	r.NsSum = binary.LittleEndian.Uint64(payload[8:])
	r.NsMax = binary.LittleEndian.Uint64(payload[16:])
	count := binary.LittleEndian.Uint32(payload[24:])
	rest := payload[28:]
	if uint64(len(rest)) != uint64(count)*wireResSize {
		return wireErrMalformed
	}
	r.Ns = resizeZeroed(r.Ns, int(count))
	r.Data = resizeZeroed(r.Data, int(count))
	for i := 0; i < int(count); i++ {
		rec := rest[i*wireResSize:]
		r.Ns[i] = binary.LittleEndian.Uint64(rec)
		r.Data[i] = rec[8]
	}
	return 0
}

// appendErrBody appends a complete Err frame body. Messages are static
// strings chosen by code so the reject path composes nothing.
//
//rbsglint:hotpath
func appendErrBody(b []byte, code uint16, msg string) []byte {
	b = append(b, wireVersion, frameErr)
	b = binary.LittleEndian.AppendUint16(b, code)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(msg)))
	return append(b, msg...)
}

// ReadBatchResponse answers a streaming read batch (ReadReq frame):
// the batch-level accounting a BatchResponse carries, and the data
// bytes aligned with the requested lines — but no per-op latency echo,
// which is the mode's reason to exist (1 response byte per op instead
// of 9). Rejected ops report zero data.
type ReadBatchResponse struct {
	Applied  int
	Rejected int
	NsSum    uint64
	NsMax    uint64
	Data     []uint8
}

// appendReadReqBody appends the body (version|type|payload) of a
// read-batch request for lines.
func appendReadReqBody(b []byte, version uint8, lines []uint64) []byte {
	b = append(b, version, frameReadReq)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(lines)))
	for _, l := range lines {
		b = binary.LittleEndian.AppendUint64(b, l)
	}
	return b
}

// decodeReadReqOps parses a ReadReq payload into read ops (appended to
// ops[:0], capacity reused) so the batch engine runs them unchanged:
// every decoded op has Read set and Data zero.
//
//rbsglint:hotpath
func decodeReadReqOps(payload []byte, ops []BatchOp) ([]BatchOp, uint16) {
	ops = ops[:0]
	if len(payload) < 4 {
		return ops, wireErrMalformed
	}
	count := binary.LittleEndian.Uint32(payload)
	if count == 0 {
		return ops, wireErrEmpty
	}
	if uint64(count) > wireMaxReadOps {
		return ops, wireErrMalformed
	}
	rest := payload[4:]
	if uint64(len(rest)) != uint64(count)*wireReadOpSize {
		return ops, wireErrMalformed
	}
	for off := 0; off < len(rest); off += wireReadOpSize {
		ops = append(ops, BatchOp{
			Line: binary.LittleEndian.Uint64(rest[off : off+wireReadOpSize]),
			Read: true,
		})
	}
	return ops, 0
}

// appendReadRespPayload appends the ReadResp payload for r: the
// accounting header and the data bytes, no per-op ns.
//
//rbsglint:hotpath
func appendReadRespPayload(b []byte, r *BatchResponse) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(r.Applied))
	b = binary.LittleEndian.AppendUint32(b, uint32(r.Rejected))
	b = binary.LittleEndian.AppendUint64(b, r.NsSum)
	b = binary.LittleEndian.AppendUint64(b, r.NsMax)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Data)))
	return append(b, r.Data...)
}

// decodeReadRespPayload parses a ReadResp (or the tail of a read Nack)
// payload into r, reusing r's slice capacity.
func decodeReadRespPayload(payload []byte, r *ReadBatchResponse) uint16 {
	if len(payload) < 28 {
		return wireErrMalformed
	}
	r.Applied = int(binary.LittleEndian.Uint32(payload))
	r.Rejected = int(binary.LittleEndian.Uint32(payload[4:]))
	r.NsSum = binary.LittleEndian.Uint64(payload[8:])
	r.NsMax = binary.LittleEndian.Uint64(payload[16:])
	count := binary.LittleEndian.Uint32(payload[24:])
	rest := payload[28:]
	if uint64(len(rest)) != uint64(count) {
		return wireErrMalformed
	}
	r.Data = resizeZeroed(r.Data, int(count))
	copy(r.Data, rest)
	return 0
}

// decodeErrBody parses an Err frame payload.
func decodeErrBody(payload []byte) (*WireError, bool) {
	if len(payload) < 4 {
		return nil, false
	}
	code := binary.LittleEndian.Uint16(payload)
	n := int(binary.LittleEndian.Uint16(payload[2:]))
	if len(payload) < 4+n {
		return nil, false
	}
	return &WireError{Code: code, Msg: string(payload[4 : 4+n])}, true
}

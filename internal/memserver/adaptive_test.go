package memserver

import (
	"context"
	"sync"
	"testing"
	"time"

	"securityrbsg/internal/attack"
	"securityrbsg/internal/pcm"
	"securityrbsg/internal/rbsg"
	"securityrbsg/internal/seclevel"
	"securityrbsg/internal/stats"
	"securityrbsg/internal/wear"
)

// The tests in this file close the loop over the wire: the adaptive
// security level must escalate under attack-shaped traffic, stay put
// under benign traffic, keep the timing side channel intact (adaptivity
// must not open a new oracle — the PRAC lesson), and escalate *before*
// a timing attacker could recover the mapping.

// adaptiveConfig is the single-bank escalation geometry: 256 lines in 8
// regions with a short interval so remap rounds (the only instants the
// controller acts) close every ~1.1k writes.
func adaptiveConfig() Config {
	return Config{
		Banks: 1, Lines: 256, Scheme: SchemeAdaptive,
		Regions: 8, Interval: 4, Stages: 4, Seed: 5,
		QueueDepth: 64, SnapshotEvery: 1,
	}
}

// adaptiveScheme digs the per-bank closed loop out of a drained server.
func adaptiveScheme(t *testing.T, s *Server, bank int) *seclevel.Adaptive {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	a, ok := s.Memory().Bank(bank).Scheme().(*seclevel.Adaptive)
	if !ok {
		t.Fatalf("bank %d scheme is %T, want *seclevel.Adaptive", bank, s.Memory().Bank(bank).Scheme())
	}
	return a
}

func TestWireAdaptiveEscalatesUnderAttack(t *testing.T) {
	var mu sync.Mutex
	var events []seclevel.Decision
	cfg := adaptiveConfig()
	cfg.OnLevelChange = func(bank int, d seclevel.Decision) {
		if bank != 0 {
			t.Errorf("level change on bank %d of a 1-bank server", bank)
		}
		mu.Lock()
		events = append(events, d)
		mu.Unlock()
	}
	s, c := startServer(t, cfg)

	ops := make([]BatchOp, 256)
	for i := range ops {
		ops[i] = BatchOp{Line: 13, Data: 2}
	}
	for round := 0; round < 80; round++ {
		if _, err := c.Batch(ops); err != nil {
			t.Fatal(err)
		}
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m["memctld_level_raises_total"] == 0 {
		t.Fatalf("hammer stream applied no escalation:\n%s", s.MetricsText())
	}
	if m["memctld_security_level"] <= 4 {
		t.Fatalf("security level %v under attack, want above the boot level 4", m["memctld_security_level"])
	}
	if m["memctld_detector_alarms_total"] == 0 {
		t.Fatal("monitor registered no alarm under the hammer")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(events) == 0 {
		t.Fatal("OnLevelChange observed no transitions")
	}
	if events[0].Action != seclevel.Raise {
		t.Fatalf("first level-change event is %s, want raise: %v", events[0].Action, events[0])
	}
}

func TestWireAdaptiveStaysDownUnderBenign(t *testing.T) {
	s, c := startServer(t, adaptiveConfig())
	rng := stats.NewRNG(11)
	ops := make([]BatchOp, 256)
	for round := 0; round < 80; round++ {
		for i := range ops {
			ops[i] = BatchOp{Line: rng.Uint64n(256), Data: 2}
		}
		if _, err := c.Batch(ops); err != nil {
			t.Fatal(err)
		}
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m["memctld_level_raises_total"] != 0 {
		t.Fatalf("benign traffic applied %v escalations:\n%s",
			m["memctld_level_raises_total"], s.MetricsText())
	}
	if m["memctld_security_level"] > 4 {
		t.Fatalf("security level %v rose under benign traffic", m["memctld_security_level"])
	}
}

// TestWireAdaptiveTimingSignalIntact pins the PRAC constraint: with the
// controller enabled, per-request latency still reflects exactly the
// device timing plus whatever remapping the scheme was already doing —
// the first writes after boot (before any gap-movement interval
// elapses) must carry the bare RESET and SET pulses, byte-identical to
// the static scheme. Adaptivity adds no observable event of its own.
func TestWireAdaptiveTimingSignalIntact(t *testing.T) {
	_, c := startServer(t, adaptiveConfig())
	if ns := c.Write(8, pcm.Zeros); ns != pcm.DefaultTiming.ResetNs {
		t.Fatalf("ALL-0 write: %d ns over the wire, want RESET %d", ns, pcm.DefaultTiming.ResetNs)
	}
	if ns := c.Write(9, pcm.Ones); ns != pcm.DefaultTiming.SetNs {
		t.Fatalf("ALL-1 write: %d ns over the wire, want SET %d", ns, pcm.DefaultTiming.SetNs)
	}
	if _, ns := c.Read(8); ns != pcm.DefaultTiming.ReadNs {
		t.Fatalf("read: %d ns over the wire, want %d", ns, pcm.DefaultTiming.ReadNs)
	}
}

// TestWireAdaptiveEscalatesBeforeRTARecovery is the closed-loop proof
// the acceptance criteria ask for. First it measures, in process, what
// mapping recovery costs the paper's timing attacker against plain RBSG
// on this geometry (alignment + detection writes — the attack works
// there and wears out a line). Then it runs the same attacker over the
// wire against the adaptive scheme: the attack must fail to kill
// anything, and the defender's first escalation must land within fewer
// writes than the mapping recovery cost — the level (and with it the
// keys the attacker is modeling) moves before the attacker can finish
// learning them.
func TestWireAdaptiveEscalatesBeforeRTARecovery(t *testing.T) {
	const (
		lines    = 256
		regions  = 8
		interval = 4
		seed     = 5
	)

	// Baseline: the identical attack against plain RBSG recovers the
	// mapping and kills a line (same geometry as the wire RTA test).
	base, err := rbsg.New(rbsg.Config{Lines: lines, Regions: regions, Interval: interval, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	bctrl := wear.MustNewController(pcm.Config{LineBytes: 256, Endurance: 500, Timing: pcm.DefaultTiming}, base)
	ba := &attack.RTARBSG{
		Target: bctrl,
		Lines:  lines, Regions: regions, Interval: interval,
		Li: 17, SeqLen: 6,
		Oracle: func() bool { return bctrl.Bank().Failed() },
	}
	bres, err := ba.Run()
	if err != nil {
		t.Fatalf("baseline RTA vs plain RBSG: %v", err)
	}
	if !bres.Failed {
		t.Fatal("baseline RTA did not wear out a line — no recovery cost to compare against")
	}
	recovery := ba.AlignmentWrites + ba.DetectionWrites
	if recovery == 0 {
		t.Fatal("baseline RTA reported no recovery phase")
	}

	// Adaptive over the wire: same attacker, same geometry, high
	// endurance (the defense should hold regardless).
	cfg := adaptiveConfig()
	cfg.Endurance = 1 << 20
	s, c := startServer(t, cfg)
	wa := &attack.RTARBSG{
		Target: c,
		Lines:  lines, Regions: regions, Interval: interval,
		Li: 17, SeqLen: 6,
		MaxWrites: 4 * recovery,
		Oracle:    wireOracle(c, 64),
	}
	wres, werr := wa.Run()
	if wres.Failed {
		t.Fatal("RTA killed a line through the adaptive scheme")
	}

	// The attacker's own probe stream is attack-shaped; if it aborted
	// before the first escalation could land, keep the same hammer shape
	// flowing up to the recovery budget — the question under test is how
	// many attack-shaped writes the defender needs, not how long this
	// attacker variant persists before giving up.
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for issued := wres.Writes; m["memctld_level_raises_total"] == 0 && issued < recovery; issued += 256 {
		ops := make([]BatchOp, 256)
		for i := range ops {
			ops[i] = BatchOp{Line: 17, Data: 2}
		}
		if _, err := c.Batch(ops); err != nil {
			t.Fatal(err)
		}
		if m, err = c.Metrics(); err != nil {
			t.Fatal(err)
		}
	}

	a := adaptiveScheme(t, s, 0)
	first, ok := a.FirstRaiseWrite()
	if !ok {
		t.Fatalf("no escalation within the %d-write recovery budget (attack: writes=%d err=%v)",
			recovery, wres.Writes, werr)
	}
	if first >= recovery {
		t.Fatalf("first escalation at write %d, after the attacker's %d-write mapping recovery",
			first, recovery)
	}
	t.Logf("baseline recovery %d writes (align %d + detect %d); adaptive first raise at write %d (attack err: %v)",
		recovery, ba.AlignmentWrites, ba.DetectionWrites, first, werr)
}

package memserver

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"securityrbsg/internal/pcm"
)

// The wire API. Content classes travel as the pcm.Content integers:
// 0 = ALL-0 (RESET write), 1 = ALL-1 (SET write), 2 = MIXED. Responses
// carry simulated device latency in nanoseconds — the value the paper's
// attacker observes — so the timing side channel crosses the wire
// intact (internal/memserver's attack regression test depends on it).

// WriteRequest is the body of POST /v1/write.
type WriteRequest struct {
	Line uint64 `json:"l"`
	Data uint8  `json:"d"`
}

// WriteResponse answers a single write.
type WriteResponse struct {
	Ns uint64 `json:"ns"`
}

// ReadRequest is the body of POST /v1/read.
type ReadRequest struct {
	Line uint64 `json:"l"`
}

// ReadResponse answers a single read.
type ReadResponse struct {
	Ns   uint64 `json:"ns"`
	Data uint8  `json:"d"`
}

// BatchOp is one operation inside POST /v1/batch. The zero op is a
// write of ALL-0; set R for a read, D for the content class.
type BatchOp struct {
	Line uint64 `json:"l"`
	Read bool   `json:"r,omitempty"`
	Data uint8  `json:"d,omitempty"`
}

// BatchRequest is the body of POST /v1/batch. Ops are coalesced into
// one queue entry per touched bank; op order is preserved within each
// bank but banks execute concurrently, so ops to different banks may
// interleave with other requests. A batch is not atomic under
// backpressure: banks whose queues are full reject their share while
// the rest applies (the response says how much of each happened).
type BatchRequest struct {
	Ops []BatchOp `json:"ops"`
}

// BatchResponse answers a batch. Ns and Data align with Ops; rejected
// ops report zero latency. NsMax is the slowest op — the latency a
// stalled demand request would have observed behind remapping.
type BatchResponse struct {
	Applied  int      `json:"applied"`
	Rejected int      `json:"rejected"`
	NsSum    uint64   `json:"ns_sum"`
	NsMax    uint64   `json:"ns_max"`
	Ns       []uint64 `json:"ns"`
	Data     []uint8  `json:"d"`
}

// errorResponse is the JSON body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

// retryAfter is the Retry-After header value (seconds) sent with 429.
const retryAfter = "1"

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/write", s.handleWrite)
	mux.HandleFunc("POST /v1/read", s.handleRead)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	//rbsglint:allow hotpathalloc -- error/utility responses only; the hot endpoints answer through writeRaw's pooled buffers
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	//rbsglint:allow hotpathalloc -- encoder allocation is confined to the error/utility path above
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	//rbsglint:allow hotpathalloc -- runs once per rejected request, never on the steady-state path
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// submitErr maps a submit failure to its HTTP status.
func (s *Server) submitErr(w http.ResponseWriter, err error) {
	switch err {
	case errBusy:
		//rbsglint:allow hotpathalloc -- backpressure branch only; one header slice per 429
		w.Header().Set("Retry-After", retryAfter)
		writeErr(w, http.StatusTooManyRequests, "bank queue full, retry later")
	case errDraining:
		writeErr(w, http.StatusServiceUnavailable, "server draining")
	default:
		writeErr(w, http.StatusInternalServerError, "%v", err)
	}
}

// decodeInto reads the whole body into the caller's pooled buffer and
// unmarshals from its bytes, so the hot endpoints pay no per-request
// decoder or read-buffer allocations (json.Unmarshal reuses slice
// capacity already present in v, e.g. BatchRequest.Ops).
func (s *Server) decodeInto(w http.ResponseWriter, r *http.Request, buf *bytes.Buffer, v any) bool {
	buf.Reset()
	//rbsglint:allow hotpathalloc -- reads into the pooled request buffer; growth amortizes to zero once the pool is warm
	if _, err := buf.ReadFrom(r.Body); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	//rbsglint:allow hotpathalloc -- stdlib Unmarshal is the accepted decode cost; it fills caller-owned slices whose capacity the pooled scratch retains
	if err := json.Unmarshal(buf.Bytes(), v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// writeRaw sends a pre-encoded JSON body.
func writeRaw(w http.ResponseWriter, status int, body []byte) {
	//rbsglint:allow hotpathalloc -- one constant Content-Type header slice per response; does not scale with ops
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// The hot-path responses are appended by hand into pooled buffers —
// byte-for-byte what encoding/json would emit for the response structs
// (including []uint8 as base64 and the encoder's trailing newline), so
// any stdlib-JSON client decodes them unchanged, without the marshal
// machinery's per-request allocations.

func appendWriteResponse(b []byte, ns uint64) []byte {
	b = append(b, `{"ns":`...)
	b = strconv.AppendUint(b, ns, 10)
	return append(b, "}\n"...)
}

func appendReadResponse(b []byte, ns uint64, data uint8) []byte {
	b = append(b, `{"ns":`...)
	b = strconv.AppendUint(b, ns, 10)
	b = append(b, `,"d":`...)
	b = strconv.AppendUint(b, uint64(data), 10)
	return append(b, "}\n"...)
}

func appendBatchResponse(b []byte, r *BatchResponse) []byte {
	b = append(b, `{"applied":`...)
	b = strconv.AppendInt(b, int64(r.Applied), 10)
	b = append(b, `,"rejected":`...)
	b = strconv.AppendInt(b, int64(r.Rejected), 10)
	b = append(b, `,"ns_sum":`...)
	b = strconv.AppendUint(b, r.NsSum, 10)
	b = append(b, `,"ns_max":`...)
	b = strconv.AppendUint(b, r.NsMax, 10)
	b = append(b, `,"ns":[`...)
	for i, v := range r.Ns {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendUint(b, v, 10)
	}
	b = append(b, `],"d":"`...)
	b = base64.StdEncoding.AppendEncode(b, r.Data)
	return append(b, "\"}\n"...)
}

func (s *Server) checkOp(w http.ResponseWriter, line uint64, data uint8) bool {
	if line >= s.cfg.Lines {
		writeErr(w, http.StatusBadRequest, "line %d out of space of %d lines", line, s.cfg.Lines)
		return false
	}
	if data > 2 {
		writeErr(w, http.StatusBadRequest, "content class %d not in {0,1,2}", data)
		return false
	}
	return true
}

//rbsglint:hotpath
func (s *Server) handleWrite(w http.ResponseWriter, r *http.Request) {
	sc := opScratchPool.Get().(*opScratch)
	defer opScratchPool.Put(sc)
	var req WriteRequest
	if !s.decodeInto(w, r, &sc.body, &req) || !s.checkOp(w, req.Line, req.Data) {
		return
	}
	bank, local := s.mem.Route(req.Line)
	sc.ops[0] = op{local: local, content: pcm.Content(req.Data)}
	rb, err := s.submit(bank, sc.ops[:1])
	if err != nil {
		s.submitErr(w, err)
		return
	}
	ns := rb.res[0].ns
	putResBuf(rb)
	s.jsonLineOps.Add(1)
	sc.out = appendWriteResponse(sc.out[:0], ns)
	writeRaw(w, http.StatusOK, sc.out)
}

//rbsglint:hotpath
func (s *Server) handleRead(w http.ResponseWriter, r *http.Request) {
	sc := opScratchPool.Get().(*opScratch)
	defer opScratchPool.Put(sc)
	var req ReadRequest
	if !s.decodeInto(w, r, &sc.body, &req) || !s.checkOp(w, req.Line, 0) {
		return
	}
	bank, local := s.mem.Route(req.Line)
	sc.ops[0] = op{local: local, read: true}
	rb, err := s.submit(bank, sc.ops[:1])
	if err != nil {
		s.submitErr(w, err)
		return
	}
	ns, data := rb.res[0].ns, uint8(rb.res[0].content)
	putResBuf(rb)
	s.jsonLineOps.Add(1)
	sc.out = appendReadResponse(sc.out[:0], ns, data)
	writeRaw(w, http.StatusOK, sc.out)
}

// handleBatch coalesces the request per bank, enqueues every touched
// bank without blocking, then collects. Banks run concurrently; a full
// queue rejects only that bank's share (reported via 429 + counts).
//
//rbsglint:hotpath
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	sc := getBatchScratch(s.cfg.Banks)
	defer putBatchScratch(sc)
	resetBatchOps(sc)
	if !s.decodeInto(w, r, &sc.body, &sc.req) {
		return
	}
	ops := sc.req.Ops
	if len(ops) == 0 {
		writeErr(w, http.StatusBadRequest, "empty batch")
		return
	}
	for _, o := range ops {
		if !s.checkOp(w, o.Line, o.Data) {
			return
		}
	}

	draining := s.executeBatch(sc)
	resp := &sc.resp
	s.jsonLineOps.Add(uint64(resp.Applied))
	sc.out = appendBatchResponse(sc.out[:0], resp)
	switch {
	case resp.Applied == 0 && draining:
		writeErr(w, http.StatusServiceUnavailable, "server draining")
	case resp.Rejected > 0:
		//rbsglint:allow hotpathalloc -- backpressure branch only; one header slice per 429
		w.Header().Set("Retry-After", retryAfter)
		writeRaw(w, http.StatusTooManyRequests, sc.out)
	default:
		writeRaw(w, http.StatusOK, sc.out)
	}
}

// executeBatch is the transport-independent batch engine: coalesce the
// already-validated ops in sc.req.Ops into one run per touched bank
// (preserving request order), enqueue every run without blocking, then
// collect into sc.resp, whose Ns/Data align with the ops (rejected ops
// report zero). Both the JSON handler and the binary frame processor
// call it, so the banks — and the timing signal they emit — cannot
// tell the protocols apart. It reports whether a drain caused any of
// the rejections.
//
//rbsglint:hotpath
func (s *Server) executeBatch(sc *batchScratch) (draining bool) {
	ops := sc.req.Ops
	for i, o := range ops {
		bank, local := s.mem.Route(o.Line)
		run := &sc.runs[bank]
		if len(run.idx) == 0 {
			run.bank = bank
			sc.order = append(sc.order, bank)
		}
		run.ops = append(run.ops, op{local: local, read: o.Read, content: pcm.Content(o.Data)})
		run.idx = append(run.idx, i)
	}

	// Phase 1: enqueue everything (non-blocking), phase 2: collect.
	resp := &sc.resp
	resp.Applied, resp.Rejected, resp.NsSum, resp.NsMax = 0, 0, 0, 0
	resp.Ns = resizeZeroed(resp.Ns, len(ops))
	resp.Data = resizeZeroed(resp.Data, len(ops))
	for _, b := range sc.order {
		run := &sc.runs[b]
		reply, err := s.enqueue(run.bank, run.ops)
		switch err {
		case nil:
			run.reply = reply
		case errDraining:
			draining = true
			resp.Rejected += len(run.ops)
		default:
			resp.Rejected += len(run.ops)
		}
	}
	for _, b := range sc.order {
		run := &sc.runs[b]
		if run.reply == nil {
			continue
		}
		rb := <-run.reply
		putReply(run.reply)
		for j, res := range rb.res {
			i := run.idx[j]
			resp.Ns[i] = res.ns
			resp.Data[i] = uint8(res.content)
			resp.NsSum += res.ns
			if res.ns > resp.NsMax {
				resp.NsMax = res.ns
			}
		}
		resp.Applied += len(rb.res)
		putResBuf(rb)
	}
	return draining
}

// resetBatchOps prepares sc.req.Ops for a JSON decode: length zero and
// the whole reusable backing array zeroed. json.Unmarshal writes only
// the fields present in the payload, so without the clear an op whose
// omitempty fields were omitted (e.g. {"l":42}, a RESET write) would
// inherit Read/Data from whatever request last used this pooled
// scratch. The binary path needs no such guard: decodeBatchReq writes
// every field of every op.
//
//rbsglint:hotpath
func resetBatchOps(sc *batchScratch) {
	ops := sc.req.Ops[:cap(sc.req.Ops)]
	clear(ops)
	sc.req.Ops = ops[:0]
}

// resizeZeroed returns s with length n and every element zeroed
// (rejected batch ops must report zero, not a previous request's data).
func resizeZeroed[T uint8 | uint64](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// bankRun is one bank's slice of a batch plus where its results land.
// Runs are embedded in the pooled batch scratch; the ops/idx backing
// arrays are reused across requests.
type bankRun struct {
	bank  int
	ops   []op
	idx   []int
	reply chan *resBuf
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeErr(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

package memserver

import (
	"encoding/json"
	"fmt"
	"net/http"

	"securityrbsg/internal/pcm"
)

// The wire API. Content classes travel as the pcm.Content integers:
// 0 = ALL-0 (RESET write), 1 = ALL-1 (SET write), 2 = MIXED. Responses
// carry simulated device latency in nanoseconds — the value the paper's
// attacker observes — so the timing side channel crosses the wire
// intact (internal/memserver's attack regression test depends on it).

// WriteRequest is the body of POST /v1/write.
type WriteRequest struct {
	Line uint64 `json:"l"`
	Data uint8  `json:"d"`
}

// WriteResponse answers a single write.
type WriteResponse struct {
	Ns uint64 `json:"ns"`
}

// ReadRequest is the body of POST /v1/read.
type ReadRequest struct {
	Line uint64 `json:"l"`
}

// ReadResponse answers a single read.
type ReadResponse struct {
	Ns   uint64 `json:"ns"`
	Data uint8  `json:"d"`
}

// BatchOp is one operation inside POST /v1/batch. The zero op is a
// write of ALL-0; set R for a read, D for the content class.
type BatchOp struct {
	Line uint64 `json:"l"`
	Read bool   `json:"r,omitempty"`
	Data uint8  `json:"d,omitempty"`
}

// BatchRequest is the body of POST /v1/batch. Ops are coalesced into
// one queue entry per touched bank; op order is preserved within each
// bank but banks execute concurrently, so ops to different banks may
// interleave with other requests. A batch is not atomic under
// backpressure: banks whose queues are full reject their share while
// the rest applies (the response says how much of each happened).
type BatchRequest struct {
	Ops []BatchOp `json:"ops"`
}

// BatchResponse answers a batch. Ns and Data align with Ops; rejected
// ops report zero latency. NsMax is the slowest op — the latency a
// stalled demand request would have observed behind remapping.
type BatchResponse struct {
	Applied  int      `json:"applied"`
	Rejected int      `json:"rejected"`
	NsSum    uint64   `json:"ns_sum"`
	NsMax    uint64   `json:"ns_max"`
	Ns       []uint64 `json:"ns"`
	Data     []uint8  `json:"d"`
}

// errorResponse is the JSON body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

// retryAfter is the Retry-After header value (seconds) sent with 429.
const retryAfter = "1"

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/write", s.handleWrite)
	mux.HandleFunc("POST /v1/read", s.handleRead)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// submitErr maps a submit failure to its HTTP status.
func (s *Server) submitErr(w http.ResponseWriter, err error) {
	switch err {
	case errBusy:
		w.Header().Set("Retry-After", retryAfter)
		writeErr(w, http.StatusTooManyRequests, "bank queue full, retry later")
	case errDraining:
		writeErr(w, http.StatusServiceUnavailable, "server draining")
	default:
		writeErr(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *Server) checkOp(w http.ResponseWriter, line uint64, data uint8) bool {
	if line >= s.cfg.Lines {
		writeErr(w, http.StatusBadRequest, "line %d out of space of %d lines", line, s.cfg.Lines)
		return false
	}
	if data > 2 {
		writeErr(w, http.StatusBadRequest, "content class %d not in {0,1,2}", data)
		return false
	}
	return true
}

func (s *Server) handleWrite(w http.ResponseWriter, r *http.Request) {
	var req WriteRequest
	if !s.decode(w, r, &req) || !s.checkOp(w, req.Line, req.Data) {
		return
	}
	bank, local := s.mem.Route(req.Line)
	res, err := s.submit(bank, []op{{local: local, content: pcm.Content(req.Data)}})
	if err != nil {
		s.submitErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, WriteResponse{Ns: res[0].ns})
}

func (s *Server) handleRead(w http.ResponseWriter, r *http.Request) {
	var req ReadRequest
	if !s.decode(w, r, &req) || !s.checkOp(w, req.Line, 0) {
		return
	}
	bank, local := s.mem.Route(req.Line)
	res, err := s.submit(bank, []op{{local: local, read: true}})
	if err != nil {
		s.submitErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ReadResponse{Ns: res[0].ns, Data: uint8(res[0].content)})
}

// handleBatch coalesces the request per bank, enqueues every touched
// bank without blocking, then collects. Banks run concurrently; a full
// queue rejects only that bank's share (reported via 429 + counts).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Ops) == 0 {
		writeErr(w, http.StatusBadRequest, "empty batch")
		return
	}
	for _, o := range req.Ops {
		if !s.checkOp(w, o.Line, o.Data) {
			return
		}
	}

	// Coalesce: one op run per touched bank, preserving request order.
	perBank := make(map[int]*bankRun, s.cfg.Banks)
	order := make([]*bankRun, 0, s.cfg.Banks)
	for i, o := range req.Ops {
		bank, local := s.mem.Route(o.Line)
		run := perBank[bank]
		if run == nil {
			run = &bankRun{bank: bank}
			perBank[bank] = run
			order = append(order, run)
		}
		run.ops = append(run.ops, op{local: local, read: o.Read, content: pcm.Content(o.Data)})
		run.idx = append(run.idx, i)
	}

	// Phase 1: enqueue everything (non-blocking), phase 2: collect.
	resp := BatchResponse{
		Ns:   make([]uint64, len(req.Ops)),
		Data: make([]uint8, len(req.Ops)),
	}
	draining := false
	for _, run := range order {
		reply, err := s.enqueue(run.bank, run.ops)
		switch err {
		case nil:
			run.reply = reply
		case errDraining:
			draining = true
			resp.Rejected += len(run.ops)
		default:
			resp.Rejected += len(run.ops)
		}
	}
	for _, run := range order {
		if run.reply == nil {
			continue
		}
		results := <-run.reply
		for j, res := range results {
			i := run.idx[j]
			resp.Ns[i] = res.ns
			resp.Data[i] = uint8(res.content)
			resp.NsSum += res.ns
			if res.ns > resp.NsMax {
				resp.NsMax = res.ns
			}
		}
		resp.Applied += len(results)
	}

	switch {
	case resp.Applied == 0 && draining:
		writeErr(w, http.StatusServiceUnavailable, "server draining")
	case resp.Rejected > 0:
		w.Header().Set("Retry-After", retryAfter)
		writeJSON(w, http.StatusTooManyRequests, resp)
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

// bankRun is one bank's slice of a batch plus where its results land.
type bankRun struct {
	bank  int
	ops   []op
	idx   []int
	reply <-chan []opResult
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeErr(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

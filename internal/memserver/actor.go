package memserver

import (
	"slices"
	"sync/atomic"

	"securityrbsg/internal/detector"
	"securityrbsg/internal/pcm"
	"securityrbsg/internal/seclevel"
	"securityrbsg/internal/wear"
)

// op is one routed memory operation, already translated to a bank-local
// line by the HTTP layer.
type op struct {
	local   uint64
	read    bool
	content pcm.Content
}

// opResult carries the simulated latency and, for reads, the content.
type opResult struct {
	ns      uint64
	content pcm.Content
}

// bankReq is one queue entry: a run of ops for a single bank, executed
// in order, answered on reply. The ops slice stays owned by the sender;
// the actor reads it but never retains or recycles it. The reply buffer
// travels the other way: allocated by the actor from the pool, freed by
// the receiver.
type bankReq struct {
	ops   []op
	reply chan<- *resBuf
}

// BankSnapshot is the immutable telemetry record an actor publishes.
// Everything in it is computed by the bank's own goroutine, so readers
// never race with the scheme or the PCM model.
type BankSnapshot struct {
	Bank  int
	Stats wear.Stats
	// SET vs RESET demand-write split (the RTA side channel's two ends).
	SetWrites, ResetWrites uint64
	// Detector state (zero when the scheme has no detector).
	Alarms, BoostedMoves uint64
	AlarmedRegions       int
	// Adaptive security-level state (zero when the scheme has no level
	// controller): the DFN stage count currently in effect and the
	// controller's applied transition counts.
	SecurityLevel            int
	LevelRaises, LevelLowers uint64
	// Wear distribution percentiles over the bank's physical lines.
	WearP50, WearP90, WearP99 uint64
}

// actor is the single writer for one bank: exactly one goroutine runs
// run(), and only that goroutine touches ctrl, det, or the counters
// below (the atomics exist so snapshot readers need no lock).
type actor struct {
	bank      int
	ctrl      *wear.Controller
	det       *detector.AdaptiveRBSG
	adaptive  *seclevel.Adaptive
	ch        chan bankReq
	done      chan struct{}
	snapEvery uint64

	setWrites   uint64 // actor-private running split
	resetWrites uint64
	wearScratch []uint32      // publish-time sort buffer, actor-private
	rejected    atomic.Uint64 // written by submitters, not the actor
	snap        atomic.Pointer[BankSnapshot]
}

func newActor(bank int, ctrl *wear.Controller, det *detector.AdaptiveRBSG, adaptive *seclevel.Adaptive, depth int, snapEvery uint64) *actor {
	a := &actor{
		bank: bank, ctrl: ctrl, det: det, adaptive: adaptive,
		ch:        make(chan bankReq, depth),
		done:      make(chan struct{}),
		snapEvery: snapEvery,
	}
	a.publish()
	return a
}

// run is the actor loop: drain the queue until it closes, republishing
// telemetry every snapEvery ops and once more on exit so post-drain
// metrics are exact.
//
//rbsglint:hotpath
func (a *actor) run() {
	defer close(a.done)
	defer a.publish()
	var sinceSnap uint64
	for req := range a.ch {
		rb := getResBuf(len(req.ops))
		res := rb.res
		for i, o := range req.ops {
			if o.read {
				c, ns := a.ctrl.Read(o.local)
				res[i] = opResult{ns: ns, content: c}
			} else {
				ns := a.ctrl.Write(o.local, o.content)
				res[i] = opResult{ns: ns}
				if o.content == pcm.Zeros {
					a.resetWrites++
				} else {
					a.setWrites++
				}
			}
		}
		if req.reply != nil {
			req.reply <- rb
		} else {
			putResBuf(rb)
		}
		sinceSnap += uint64(len(req.ops))
		if sinceSnap >= a.snapEvery {
			a.publish()
			sinceSnap = 0
		}
	}
}

// publish computes a fresh snapshot and swaps it in.
func (a *actor) publish() {
	//rbsglint:allow hotpathalloc -- one immutable snapshot per snapEvery ops (and once on drain); readers hold the previous pointer, so the atomic swap needs fresh memory
	s := &BankSnapshot{
		Bank:        a.bank,
		Stats:       a.ctrl.Stats(),
		SetWrites:   a.setWrites,
		ResetWrites: a.resetWrites,
	}
	if a.det != nil {
		s.Alarms = a.det.Alarms()
		s.BoostedMoves = a.det.BoostedMovements()
		for r := uint64(0); r < a.det.Config().Regions; r++ {
			if a.det.Alarmed(r) {
				s.AlarmedRegions++
			}
		}
	}
	if a.adaptive != nil {
		s.Alarms = a.adaptive.Monitor().Alarms()
		s.AlarmedRegions = int(a.adaptive.Monitor().AlarmedRegions())
		s.SecurityLevel = a.adaptive.Level()
		s.LevelRaises = a.adaptive.Controller().Raises()
		s.LevelLowers = a.adaptive.Controller().Lowers()
	}
	s.WearP50, s.WearP90, s.WearP99 = a.wearPercentiles()
	a.snap.Store(s)
}

// Snapshot returns the latest published telemetry (never nil).
func (a *actor) Snapshot() *BankSnapshot { return a.snap.Load() }

// wearPercentiles summarizes the bank's wear distribution. It works on a
// WearSnapshot into a scratch buffer owned by the actor goroutine
// (publish is only ever called from it) — never on the live WearCounts
// slice, which aliases bank state — so steady-state snapshots allocate
// nothing and the subsequent sort cannot disturb the bank.
func (a *actor) wearPercentiles() (p50, p90, p99 uint64) {
	a.wearScratch = a.ctrl.Bank().WearSnapshot(a.wearScratch)
	sorted := a.wearScratch
	if len(sorted) == 0 {
		return 0, 0, 0
	}
	slices.Sort(sorted)
	return wearAt(sorted, 0.50), wearAt(sorted, 0.90), wearAt(sorted, 0.99)
}

// wearAt reads the q-quantile of an ascending wear snapshot.
func wearAt[T ~uint32 | ~uint64](sorted []T, q float64) uint64 {
	return uint64(sorted[int(q*float64(len(sorted)-1))])
}

package memserver

import (
	"context"
	"net"
	"testing"
	"time"

	"securityrbsg/internal/stats"
)

// Client-side pipelining benchmarks: the same server, the same 256-op
// batch shape, over a REAL loopback TCP connection — the socket round
// trip is the point. Lockstep pays one RTT per batch; the pipelined
// client keeps a window of frames in flight, so the RTT amortizes
// across the window and throughput approaches the server's serving
// rate. The bench gate asserts pipelined > lockstep: if the windowed
// client ever degrades to one-frame-at-a-time, the gate sees it.

// startBenchBinaryServer is startBinaryServer for benchmarks (the test
// helper wants *testing.T).
func startBenchBinaryServer(b *testing.B, cfg Config) string {
	b.Helper()
	s := MustNew(cfg)
	s.Start()
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go s.ServeBinary(ln)
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.ShutdownBinary(ctx); err != nil {
			b.Error(err)
		}
	})
	return ln.Addr().String()
}

func benchOps(lines uint64, batch int) []BatchOp {
	rng := stats.NewRNG(3)
	ops := make([]BatchOp, batch)
	for i := range ops {
		ops[i] = BatchOp{Line: rng.Uint64n(lines), Data: 2}
	}
	return ops
}

// BenchmarkBinaryClientLockstep: one batch in flight — send, wait out
// the round trip, repeat. The baseline the pipelined client must beat.
func BenchmarkBinaryClientLockstep(b *testing.B) {
	const batch = 256
	addr := startBenchBinaryServer(b, Config{
		Banks: 8, Lines: 8 << 14, Scheme: SchemeRBSGDetector,
		Regions: 32, Interval: 100, Seed: 1, QueueDepth: 256,
	})
	c, err := DialBinary(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ops := benchOps(8<<14, batch)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Batch(ops); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "lines/s")
}

// BenchmarkBinaryClientPipelined: the same traffic with a 16-frame
// window on one connection (send/receive halves are disjoint by the
// client's contract, so a plain in-order drain needs no goroutines).
func BenchmarkBinaryClientPipelined(b *testing.B) {
	const (
		batch  = 256
		window = 16
	)
	addr := startBenchBinaryServer(b, Config{
		Banks: 8, Lines: 8 << 14, Scheme: SchemeRBSGDetector,
		Regions: 32, Interval: 100, Seed: 1, QueueDepth: 256,
	})
	c, err := DialBinary(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ops := benchOps(8<<14, batch)

	var resp BatchResponse
	inflight := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if inflight == window {
			if err := c.RecvBatch(&resp); err != nil {
				b.Fatal(err)
			}
			inflight--
		}
		if err := c.SendBatch(ops); err != nil {
			b.Fatal(err)
		}
		inflight++
	}
	for ; inflight > 0; inflight-- {
		if err := c.RecvBatch(&resp); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "lines/s")
}

package memserver

import (
	"bytes"
	"sync"
)

// Serving-path buffer reuse. The batch hot path used to allocate per
// request: op slices and result slices crossing the actor queues, a
// reply channel per touched bank, a coalescing map, response arrays and
// JSON encoder state. Under a sustained loadgen stream those churned
// hundreds of megabytes per second of garbage; everything below is now
// pooled and recycled under a strict ownership rule:
//
//   - op slices are owned by the PRODUCER (the HTTP handler's scratch):
//     actors read them but never free them, and the handler returns its
//     scratch only after every submitted run has replied, so an actor
//     can never observe a recycled op slice.
//   - result buffers (resBuf) are allocated by the ACTOR from the pool
//     and freed by the CONSUMER once it has copied the latencies out.
//   - reply channels are taken from the pool by enqueue and returned by
//     whoever received the answer; each carries exactly one message per
//     use, so a pooled channel is always empty.
//
// All pools are package-level: sync.Pool is safe for concurrent use and
// none of the pooled objects carries bank state (bank isolation lives
// in the actors, not in these byte/slice carriers).

// resBuf carries one request's results from an actor to its consumer.
type resBuf struct {
	res []opResult
}

var resBufPool = sync.Pool{New: func() any { return new(resBuf) }}

// getResBuf returns a result buffer with length n.
func getResBuf(n int) *resBuf {
	rb := resBufPool.Get().(*resBuf)
	if cap(rb.res) < n {
		rb.res = make([]opResult, n)
	} else {
		rb.res = rb.res[:n]
	}
	return rb
}

func putResBuf(rb *resBuf) { resBufPool.Put(rb) }

var replyPool = sync.Pool{New: func() any { return make(chan *resBuf, 1) }}

func getReply() chan *resBuf  { return replyPool.Get().(chan *resBuf) }
func putReply(c chan *resBuf) { replyPool.Put(c) }

// opScratch is the per-request state of the single-op handlers: the op
// array submitted to the bank queue and the decode buffer.
type opScratch struct {
	body bytes.Buffer
	ops  [1]op
	out  []byte
}

var opScratchPool = sync.Pool{New: func() any { return new(opScratch) }}

// batchScratch is the per-request state of /v1/batch: decode buffer and
// request (Ops capacity reused by json.Unmarshal), the per-bank
// coalescing runs (indexed by bank, `order` listing the banks touched
// this request in first-touch order), the response with its aligned
// arrays, and the encode buffer.
type batchScratch struct {
	body  bytes.Buffer
	req   BatchRequest
	runs  []bankRun
	order []int
	resp  BatchResponse
	out   []byte
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// getBatchScratch returns a clean scratch sized for `banks` banks.
func getBatchScratch(banks int) *batchScratch {
	sc := batchScratchPool.Get().(*batchScratch)
	if len(sc.runs) < banks {
		sc.runs = make([]bankRun, banks)
	}
	return sc
}

// resetRuns clears the per-bank runs touched by the last batch so the
// scratch can host another one. The JSON path does this once per
// request on the way back to the pool; the binary connection loop does
// it per frame, since one scratch lives as long as its connection.
//
//rbsglint:hotpath
func resetRuns(sc *batchScratch) {
	for _, b := range sc.order {
		run := &sc.runs[b]
		run.ops = run.ops[:0]
		run.idx = run.idx[:0]
		run.reply = nil
	}
	sc.order = sc.order[:0]
}

// putBatchScratch resets the runs touched by this request and recycles
// the scratch. Oversized one-off requests are dropped instead of pinning
// megabytes in the pool.
func putBatchScratch(sc *batchScratch) {
	resetRuns(sc)
	if sc.body.Cap() > 1<<20 || cap(sc.resp.Ns) > 1<<16 {
		return
	}
	batchScratchPool.Put(sc)
}

// Package memserver turns the batch simulator into a long-running
// memory-controller service: a membank.Memory sharded across per-bank
// single-writer actors behind a stdlib net/http API.
//
// The paper deploys Security RBSG "in the memory controller, managing
// each bank separately" (Section IV-A); memserver is that controller as
// an online system. Every bank gets exactly one goroutine (its actor)
// that owns the bank's wear.Controller, its scheme, and its detector —
// so the existing non-thread-safe scheme/PCM code runs unmodified and
// unlocked, and the paper's bank-isolation property holds by
// construction: no request ever touches, or observes the timing of, a
// bank other than the one it addresses.
//
// Requests enter through bounded per-bank queues. A full queue is
// explicit backpressure (HTTP 429 + Retry-After), never an unbounded
// goroutine pileup. Batches are coalesced per bank: one queue entry per
// touched bank, preserving per-bank op order, with banks executing in
// parallel.
//
// Telemetry the batch tools compute only post-hoc is published live:
// each actor periodically (and at drain) publishes an immutable
// BankSnapshot through an atomic pointer, so /metrics never blocks on —
// or races with — the simulation hot path.
package memserver

import (
	"context"
	"fmt"
	"sync/atomic"

	"securityrbsg/internal/core"
	"securityrbsg/internal/detector"
	"securityrbsg/internal/membank"
	"securityrbsg/internal/pcm"
	"securityrbsg/internal/rbsg"
	"securityrbsg/internal/seclevel"
	"securityrbsg/internal/wear"
)

// Scheme names accepted by Config.Scheme.
const (
	SchemeRBSGDetector = "rbsg+detector"  // RBSG wrapped in the online attack detector (default)
	SchemeRBSG         = "rbsg"           // plain Region-Based Start-Gap
	SchemeSecurityRBSG = "srbsg"          // the paper's Security RBSG
	SchemeAdaptive     = "srbsg+adaptive" // Security RBSG + detector-driven level controller
	SchemeNone         = "none"           // passthrough baseline
)

// Config describes one memory-controller daemon instance.
type Config struct {
	// Banks is the number of independently wear-leveled banks; addresses
	// interleave across banks at line granularity (membank layout).
	Banks int
	// Lines is the total logical line count; Lines/Banks must be a power
	// of two for the randomized schemes.
	Lines uint64
	// Scheme selects the per-bank wear-leveling scheme (constants above).
	Scheme string
	// Regions and Interval configure RBSG per bank (defaults 32 / 100).
	Regions  uint64
	Interval uint64
	// Stages is the DFN stage count for srbsg (default 7).
	Stages int
	// Seed seeds per-bank key generation; bank i uses Seed+i so no two
	// banks share randomizer keys.
	Seed uint64
	// Endurance is per-line write endurance (default 2^30 so a demo
	// server does not wear out mid-run; lower it to study failures).
	Endurance uint64
	// LineBytes is the line size (default 256).
	LineBytes int
	// QueueDepth bounds each bank's request queue (default 256 entries).
	QueueDepth int
	// SnapshotEvery is how many ops an actor processes between telemetry
	// snapshots (default 8192; tests set 1 for exact live metrics).
	SnapshotEvery uint64
	// Detector tunes the per-bank online detector (rbsg+detector and
	// srbsg+adaptive).
	Detector detector.Config
	// Level tunes the per-bank security-level controller (srbsg+adaptive
	// only; zero fields take seclevel defaults).
	Level seclevel.Config
	// OnLevelChange, when set, observes every applied security-level
	// transition (srbsg+adaptive only). It runs on the bank's actor
	// goroutine, so it must not block; memctld uses it to log level-change
	// events.
	OnLevelChange func(bank int, d seclevel.Decision)
}

func (c *Config) normalize() error {
	if c.Banks <= 0 {
		c.Banks = 8
	}
	if c.Lines == 0 {
		c.Lines = uint64(c.Banks) << 14
	}
	if c.Lines%uint64(c.Banks) != 0 {
		return fmt.Errorf("memserver: %d lines do not divide across %d banks", c.Lines, c.Banks)
	}
	if c.Scheme == "" {
		c.Scheme = SchemeRBSGDetector
	}
	per := c.Lines / uint64(c.Banks)
	if c.Scheme != SchemeNone && per&(per-1) != 0 {
		return fmt.Errorf("memserver: per-bank lines %d must be a power of two for scheme %q", per, c.Scheme)
	}
	if c.Regions == 0 {
		c.Regions = 32
	}
	if c.Interval == 0 {
		c.Interval = 100
	}
	if c.Stages <= 0 {
		c.Stages = 7
	}
	if c.Endurance == 0 {
		c.Endurance = 1 << 30
	}
	if c.LineBytes <= 0 {
		c.LineBytes = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 8192
	}
	return nil
}

// Server is the memory-controller service: routing, actors, telemetry.
type Server struct {
	cfg       Config
	mem       *membank.Memory
	actors    []*actor
	detectors []*detector.AdaptiveRBSG // nil entries when the scheme has no detector
	adaptives []*seclevel.Adaptive     // nil entries when the scheme has no level controller
	draining  atomic.Bool
	started   atomic.Bool

	// Binary-protocol state (binary.go) and the per-protocol serving
	// counters /metrics splits by transport.
	bin         binaryState
	binFrames   atomic.Uint64 // frames processed on the binary listener
	binRejects  atomic.Uint64 // frames rejected before execution (malformed, skewed, oversized, bad op)
	binLineOps  atomic.Uint64 // line ops applied via the binary protocol
	binReadOps  atomic.Uint64 // of those, reads served through streaming read-batch frames
	jsonLineOps atomic.Uint64 // line ops applied via the JSON HTTP API
}

// New builds a server (actors not yet running; call Start).
func New(cfg Config) (*Server, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		detectors: make([]*detector.AdaptiveRBSG, cfg.Banks),
		adaptives: make([]*seclevel.Adaptive, cfg.Banks),
	}
	factory := func(bank int, lines uint64) (wear.Scheme, error) {
		seed := cfg.Seed + uint64(bank)
		switch cfg.Scheme {
		case SchemeNone:
			return wear.NewPassthrough(lines), nil
		case SchemeRBSG:
			return rbsg.New(rbsg.Config{
				Lines: lines, Regions: cfg.Regions, Interval: cfg.Interval, Seed: seed,
			})
		case SchemeSecurityRBSG:
			return core.New(core.Config{
				Lines: lines, Regions: cfg.Regions,
				InnerInterval: cfg.Interval, OuterInterval: cfg.Interval,
				Stages: cfg.Stages, Seed: seed,
			})
		case SchemeAdaptive:
			ad, err := seclevel.NewAdaptive(seclevel.AdaptiveConfig{
				Scheme: core.Config{
					Lines: lines, Regions: cfg.Regions,
					InnerInterval: cfg.Interval, OuterInterval: cfg.Interval,
					Stages: cfg.Stages, Seed: seed,
				},
				Detector: cfg.Detector,
				Level:    cfg.Level,
			})
			if err != nil {
				return nil, err
			}
			if cb := cfg.OnLevelChange; cb != nil {
				b := bank // the hook outlives the loop variable's iteration
				ad.Controller().OnApply = func(d seclevel.Decision) { cb(b, d) }
			}
			s.adaptives[bank] = ad
			return ad, nil
		case SchemeRBSGDetector:
			base, err := rbsg.New(rbsg.Config{
				Lines: lines, Regions: cfg.Regions, Interval: cfg.Interval, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			det, err := detector.NewAdaptiveRBSG(base, cfg.Detector)
			if err != nil {
				return nil, err
			}
			s.detectors[bank] = det
			return det, nil
		default:
			return nil, fmt.Errorf("memserver: unknown scheme %q", cfg.Scheme)
		}
	}
	bankCfg := pcm.Config{
		LineBytes: cfg.LineBytes,
		Endurance: cfg.Endurance,
		Timing:    pcm.DefaultTiming,
	}
	mem, err := membank.New(cfg.Banks, cfg.Lines, bankCfg, factory)
	if err != nil {
		return nil, err
	}
	s.mem = mem
	s.actors = make([]*actor, cfg.Banks)
	for i := range s.actors {
		s.actors[i] = newActor(i, mem.Bank(i), s.detectors[i], s.adaptives[i], cfg.QueueDepth, cfg.SnapshotEvery)
	}
	return s, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Server {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the normalized configuration.
func (s *Server) Config() Config { return s.cfg }

// Memory exposes the underlying sharded memory. Callers must not drive
// it while actors are running — it is for post-drain inspection.
func (s *Server) Memory() *membank.Memory { return s.mem }

// Start launches one actor goroutine per bank.
func (s *Server) Start() {
	if s.started.Swap(true) {
		return
	}
	for _, a := range s.actors {
		go a.run()
	}
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain stops accepting requests, lets every queued request finish, and
// waits for all actors to exit (or ctx to expire). The HTTP listener
// must already be shut down: Drain closes the bank queues, and a
// concurrent submit on a closed queue would be rejected only by the
// draining flag, which an in-flight handler may have checked earlier.
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.Swap(true) {
		return nil
	}
	if !s.started.Load() {
		return nil
	}
	for _, a := range s.actors {
		close(a.ch)
	}
	for _, a := range s.actors {
		select {
		case <-a.done:
		case <-ctx.Done():
			return fmt.Errorf("memserver: drain: bank %d still busy: %w", a.bank, ctx.Err())
		}
	}
	return nil
}

// errBusy marks a rejected (queue-full) submission.
var errBusy = fmt.Errorf("memserver: bank queue full")

// submit enqueues ops for one bank and waits for the result. It never
// blocks on a full queue: the caller gets errBusy to surface as 429.
// The returned buffer is owed back to the pool: callers putResBuf it
// once they have copied out what they need.
func (s *Server) submit(bank int, ops []op) (*resBuf, error) {
	p, err := s.enqueue(bank, ops)
	if err != nil {
		return nil, err
	}
	rb := <-p
	putReply(p)
	return rb, nil
}

// enqueue is the non-blocking half of submit, used by the batch path to
// keep all touched banks in flight at once. The reply channel comes
// from the pool; the receiver returns it (putReply) after the single
// answer arrives.
func (s *Server) enqueue(bank int, ops []op) (chan *resBuf, error) {
	if s.draining.Load() {
		return nil, errDraining
	}
	a := s.actors[bank]
	reply := getReply()
	select {
	case a.ch <- bankReq{ops: ops, reply: reply}:
		return reply, nil
	default:
		a.rejected.Add(1)
		putReply(reply)
		return nil, errBusy
	}
}

var errDraining = fmt.Errorf("memserver: draining")

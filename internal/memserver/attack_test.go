package memserver

import (
	"testing"

	"securityrbsg/internal/attack"
	"securityrbsg/internal/pcm"
	"securityrbsg/internal/rbsg"
	"securityrbsg/internal/stats"
)

// The tests in this file guard the property the whole paper rests on:
// the SET/RESET timing side channel must survive the service layer.
// If serialization, batching, or queueing ever flattened or perturbed
// per-request simulated latency, the repo would silently stop modeling
// the attack surface it exists to study.

// TestWireTimingSignalSurvives checks the two ends of the side channel
// byte-for-byte over a real HTTP round trip: an ALL-0 write costs the
// RESET pulse, an ALL-1 write the SET pulse.
func TestWireTimingSignalSurvives(t *testing.T) {
	cfg := testConfig()
	cfg.Scheme = SchemeNone // no remapping noise: pure device timing
	_, c := startServer(t, cfg)

	if ns := c.Write(8, pcm.Zeros); ns != pcm.DefaultTiming.ResetNs {
		t.Fatalf("ALL-0 write: %d ns over the wire, want RESET %d", ns, pcm.DefaultTiming.ResetNs)
	}
	if ns := c.Write(8, pcm.Ones); ns != pcm.DefaultTiming.SetNs {
		t.Fatalf("ALL-1 write: %d ns over the wire, want SET %d", ns, pcm.DefaultTiming.SetNs)
	}
	if _, ns := c.Read(8); ns != pcm.DefaultTiming.ReadNs {
		t.Fatalf("read: %d ns over the wire, want %d", ns, pcm.DefaultTiming.ReadNs)
	}
}

// wireOracle polls /metrics for failed lines every few writes — the
// attacker-side stop condition, built from public telemetry only.
func wireOracle(c *Client, every int) func() bool {
	calls := 0
	failed := false
	return func() bool {
		if failed {
			return true
		}
		calls++
		if calls%every != 0 {
			return false
		}
		m, err := c.Metrics()
		if err != nil {
			return false
		}
		failed = m["memctld_failed_lines"] > 0
		return failed
	}
}

// TestWireRTARecoversSequence runs the paper's Remapping Timing Attack
// from internal/attack, unmodified, against the HTTP API: the small-
// scale RTA aligns, recovers the physical-neighbor sequence bit by bit
// from serialized latencies, and wears out a line — proof the service
// layer cannot silently flatten the channel.
func TestWireRTARecoversSequence(t *testing.T) {
	const (
		lines     = 256
		regions   = 8
		interval  = 4
		seed      = 5
		endurance = 500
	)
	s, c := startServer(t, Config{
		Banks: 1, Lines: lines, Scheme: SchemeRBSG,
		Regions: regions, Interval: interval, Seed: seed,
		Endurance: endurance, QueueDepth: 64, SnapshotEvery: 1,
	})

	a := &attack.RTARBSG{
		Target: c,
		Lines:  lines, Regions: regions, Interval: interval,
		Li:     17,
		SeqLen: 6,
		Oracle: wireOracle(c, 64),
	}
	res, err := a.Run()
	if err != nil {
		t.Fatalf("attack over the wire: %v", err)
	}
	if !res.Failed && res.Writes == 0 {
		t.Fatal("attack issued no writes")
	}

	// Ground truth from scheme internals the attacker never saw. The
	// randomizer is static, so reading it after the run is exact; the
	// actor still owns the scheme, so go through its own goroutine by
	// draining first (cleanup does) — here the static permutation is
	// safe to read because nothing below ever mutates it.
	scheme := s.Memory().Bank(0).Scheme().(*rbsg.Scheme)
	want := groundTruthSequence(scheme, 17, 6)
	got := a.Sequence()
	if len(got) < len(want) {
		t.Fatalf("recovered %d addresses, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence[%d] = %d over the wire, ground truth %d (got %v want %v)",
				i, got[i], want[i], got, want)
		}
	}

	// The device must actually have failed, and telemetry must say so.
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m["memctld_failed_lines"] == 0 {
		t.Fatal("wear-out phase did not register a failed line in /metrics")
	}
	t.Logf("wire RTA: %d writes (align %d, detect %d, wear %d)",
		res.Writes, a.AlignmentWrites, a.DetectionWrites, a.WearWrites)
}

// groundTruthSequence mirrors the helper in internal/attack's tests:
// the true logical addresses physically preceding Li, from the static
// randomizer the attacker never sees.
func groundTruthSequence(s *rbsg.Scheme, li uint64, k int) []uint64 {
	n := s.LinesPerRegion()
	ia := s.Intermediate(li)
	region, off := ia/n, ia%n
	out := make([]uint64, 0, k)
	for i := 1; i <= k; i++ {
		prev := (off + n - uint64(i)%n) % n
		out = append(out, s.Randomizer().Decrypt(region*n+prev))
	}
	return out
}

// TestWireDetectorAlarms drives the two traffic shapes the acceptance
// criteria name through the batch API: the detector must stay quiet
// under uniform traffic and alarm under the repeated-address shape.
func TestWireDetectorAlarms(t *testing.T) {
	// Uniform: every region gets ≈1/R of the traffic, no alarm.
	_, quiet := startServer(t, testConfig())
	rng := stats.NewRNG(11)
	ops := make([]BatchOp, 256)
	for round := 0; round < 40; round++ {
		for i := range ops {
			ops[i] = BatchOp{Line: rng.Uint64n(4096), Data: 2}
		}
		if _, err := quiet.Batch(ops); err != nil {
			t.Fatal(err)
		}
	}
	m, err := quiet.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m["memctld_detector_alarms_total"] != 0 {
		t.Fatalf("uniform traffic raised %v alarms", m["memctld_detector_alarms_total"])
	}

	// Attack-shaped: hammer one line; its region sees ~100% share.
	_, noisy := startServer(t, testConfig())
	for i := range ops {
		ops[i] = BatchOp{Line: 0, Data: 1}
	}
	for round := 0; round < 40; round++ {
		if _, err := noisy.Batch(ops); err != nil {
			t.Fatal(err)
		}
	}
	m, err = noisy.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m["memctld_detector_alarms_total"] == 0 {
		t.Fatal("attack-shaped traffic raised no detector alarm")
	}
	if m["memctld_detector_boosted_moves_total"] == 0 {
		t.Fatal("alarm did not boost the remapping rate")
	}
}

package memserver

import "encoding/binary"

// The exported face of the binary wire protocol (wire.go): what a
// frontend that *speaks* the protocol — today internal/memrouter's
// shard router — needs to parse requests and compose responses without
// re-deriving the encoding. Everything here is a thin alias over the
// unexported codecs the server and BinaryClient share, so there is
// exactly one implementation of every frame shape in the tree; the
// router cannot drift from the daemon.
//
// The surface is deliberately request/response-shaped rather than
// byte-shaped: a caller decodes a request payload into typed ops and
// appends a complete response *body* (version byte, type byte,
// payload) that only needs the 4-byte length prefix a frame adds.

// Wire framing constants.
const (
	// WireVersion is the protocol version this build speaks.
	WireVersion = wireVersion
	// WireHdrSize is the body prelude: version byte + type byte.
	WireHdrSize = wireHdrSize
	// WireMaxBody bounds one frame body; a larger length prefix is a
	// hard reject that costs the connection.
	WireMaxBody = wireMaxBody
)

// Frame type bytes (body[1]).
const (
	WireFrameBatchReq  = frameBatchReq
	WireFrameBatchResp = frameBatchResp
	WireFrameNack      = frameNack
	WireFrameErr       = frameErr
	WireFrameReadReq   = frameReadReq
	WireFrameReadResp  = frameReadResp
)

// Err frame codes (see WireError).
const (
	WireErrVersion   = wireErrVersion
	WireErrMalformed = wireErrMalformed
	WireErrTooLarge  = wireErrTooLarge
	WireErrBadOp     = wireErrBadOp
	WireErrDraining  = wireErrDraining
	WireErrEmpty     = wireErrEmpty
)

// WireNackRetryAfterSecs is the Retry-After value the server's own
// Nack frames carry (the JSON API's Retry-After header equivalent).
const WireNackRetryAfterSecs = nackRetryAfterSecs

// AppendWireFrame wraps a finished body with its u32 length prefix.
func AppendWireFrame(b, body []byte) []byte { return appendFrame(b, body) }

// DecodeWireBatchReq parses a BatchReq payload (the body after the
// version and type bytes) into ops, reusing ops' capacity. A non-zero
// code is the Err code to answer with.
//
//rbsglint:hotpath
func DecodeWireBatchReq(payload []byte, ops []BatchOp) ([]BatchOp, uint16) {
	return decodeBatchReq(payload, ops)
}

// DecodeWireReadReq parses a ReadReq payload into read ops (Read set,
// Data zero), reusing ops' capacity.
//
//rbsglint:hotpath
func DecodeWireReadReq(payload []byte, ops []BatchOp) ([]BatchOp, uint16) {
	return decodeReadReqOps(payload, ops)
}

// AppendWireBatchResp appends a complete BatchResp body for r.
//
//rbsglint:hotpath
func AppendWireBatchResp(b []byte, r *BatchResponse) []byte {
	b = append(b, wireVersion, frameBatchResp)
	return appendBatchRespPayload(b, r)
}

// AppendWireReadResp appends a complete ReadResp body for r (data
// bytes and accounting, no per-op ns echo).
//
//rbsglint:hotpath
func AppendWireReadResp(b []byte, r *BatchResponse) []byte {
	b = append(b, wireVersion, frameReadResp)
	return appendReadRespPayload(b, r)
}

// AppendWireNack appends a complete Nack body: the retry-after seconds
// followed by the partial BatchResp payload for r.
//
//rbsglint:hotpath
func AppendWireNack(b []byte, retryAfterSecs uint32, r *BatchResponse) []byte {
	b = append(b, wireVersion, frameNack)
	b = binary.LittleEndian.AppendUint32(b, retryAfterSecs)
	return appendBatchRespPayload(b, r)
}

// AppendWireReadNack appends a complete Nack body answering a ReadReq:
// the retry-after seconds followed by the partial ReadResp payload.
//
//rbsglint:hotpath
func AppendWireReadNack(b []byte, retryAfterSecs uint32, r *BatchResponse) []byte {
	b = append(b, wireVersion, frameNack)
	b = binary.LittleEndian.AppendUint32(b, retryAfterSecs)
	return appendReadRespPayload(b, r)
}

// AppendWireErr appends a complete Err body. Use static message
// strings so reject paths compose nothing.
//
//rbsglint:hotpath
func AppendWireErr(b []byte, code uint16, msg string) []byte {
	return appendErrBody(b, code, msg)
}
